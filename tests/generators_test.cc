// Tests for the synthetic dataset generators: determinism, schema shape,
// statistics matching the paper's dataset profiles (Table 4 analogues).

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "gen/lubm.h"
#include "gen/scale_free.h"
#include "rdf/encoded_dataset.h"

namespace amber {
namespace {

TEST(LubmGeneratorTest, Deterministic) {
  LubmOptions options;
  options.universities = 1;
  options.seed = 9;
  auto a = GenerateLubm(options);
  auto b = GenerateLubm(options);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a, b);
}

TEST(LubmGeneratorTest, ThirteenResourcePredicates) {
  LubmOptions options;
  options.universities = 1;
  auto triples = GenerateLubm(options);
  std::set<std::string> edge_preds, literal_preds;
  for (const Triple& t : triples) {
    if (t.object.is_literal()) {
      literal_preds.insert(t.predicate.value);
    } else {
      edge_preds.insert(t.predicate.value);
    }
  }
  // The paper's Table 4 reports 13 edge types for LUBM.
  EXPECT_EQ(edge_preds.size(), 13u);
  EXPECT_GE(literal_preds.size(), 3u);
  // Literal and edge predicates are disjoint by construction.
  for (const auto& p : literal_preds) {
    EXPECT_FALSE(edge_preds.count(p)) << p;
  }
}

TEST(LubmGeneratorTest, ScalesWithUniversities) {
  LubmOptions one;
  one.universities = 1;
  LubmOptions two;
  two.universities = 2;
  auto t1 = GenerateLubm(one);
  auto t2 = GenerateLubm(two);
  EXPECT_GT(t2.size(), t1.size() * 3 / 2);
  // Roughly LUBM-like magnitude: tens of thousands of triples per
  // university.
  EXPECT_GT(t1.size(), 20000u);
  EXPECT_LT(t1.size(), 400000u);
}

TEST(LubmGeneratorTest, EncodesCleanly) {
  LubmOptions options;
  options.universities = 1;
  auto triples = GenerateLubm(options);
  auto encoded = EncodedDataset::Encode(triples);
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  EXPECT_EQ(encoded->dictionaries.edge_types().size(), 13u);
  EXPECT_GT(encoded->edges.size(), 0u);
  EXPECT_GT(encoded->attributes.size(), 0u);
}

TEST(ScaleFreeGeneratorTest, Deterministic) {
  ScaleFreeOptions options;
  options.num_entities = 500;
  options.num_edge_triples = 2000;
  options.num_predicates = 20;
  auto a = GenerateScaleFree(options);
  auto b = GenerateScaleFree(options);
  EXPECT_EQ(a, b);
}

TEST(ScaleFreeGeneratorTest, RespectsPredicateBudget) {
  ScaleFreeOptions options;
  options.num_entities = 2000;
  options.num_edge_triples = 20000;
  options.num_predicates = 44;
  options.num_literal_predicates = 6;
  auto triples = GenerateScaleFree(options);
  std::set<std::string> edge_preds;
  uint64_t literal_triples = 0;
  for (const Triple& t : triples) {
    if (t.object.is_literal()) {
      ++literal_triples;
    } else {
      edge_preds.insert(t.predicate.value);
    }
  }
  EXPECT_LE(edge_preds.size(), 44u);
  EXPECT_GE(edge_preds.size(), 30u);  // Zipf covers most of the budget
  EXPECT_NEAR(static_cast<double>(literal_triples),
              20000 * options.attr_fraction, 20000 * 0.05);
}

TEST(ScaleFreeGeneratorTest, DegreeSkewIsHeavyTailed) {
  ScaleFreeOptions options;
  options.num_entities = 3000;
  options.num_edge_triples = 15000;
  options.num_predicates = 50;
  auto triples = GenerateScaleFree(options);
  std::unordered_map<std::string, int> degree;
  for (const Triple& t : triples) {
    if (!t.object.is_literal()) {
      ++degree[t.subject.value];
      ++degree[t.object.value];
    }
  }
  int max_degree = 0;
  uint64_t total = 0;
  for (const auto& [e, d] : degree) {
    max_degree = std::max(max_degree, d);
    total += d;
  }
  double avg = static_cast<double>(total) / degree.size();
  // Preferential attachment: hub degree far above the mean.
  EXPECT_GT(max_degree, avg * 10);
}

TEST(ScaleFreeGeneratorTest, ProfilesMatchPaperShapes) {
  // DBpedia-like: 676 predicates; YAGO-like: 44 predicates (Table 4).
  auto dbp = DbpediaProfile(0.05);
  auto yago = YagoProfile(0.05);
  EXPECT_EQ(dbp.num_predicates, 676u);
  EXPECT_EQ(yago.num_predicates, 44u);
  auto dbp_triples = GenerateScaleFree(dbp);
  EXPECT_NEAR(static_cast<double>(dbp_triples.size()),
              static_cast<double>(dbp.num_edge_triples) *
                  (1.0 + dbp.attr_fraction),
              dbp.num_edge_triples * 0.05);
}

TEST(ScaleFreeGeneratorTest, EncodesCleanly) {
  ScaleFreeOptions options;
  options.num_entities = 300;
  options.num_edge_triples = 1200;
  options.num_predicates = 30;
  auto triples = GenerateScaleFree(options);
  auto encoded = EncodedDataset::Encode(triples);
  ASSERT_TRUE(encoded.ok());
  EXPECT_LE(encoded->dictionaries.vertices().size(), 300u);
  EXPECT_GT(encoded->dictionaries.attributes().size(), 0u);
}

}  // namespace
}  // namespace amber
