// Hardened-serving semantics: single-flight coalescing of concurrent
// cache misses (exactly one execution; leader outcomes — success, error,
// timeout — propagate to every follower and errors are never cached),
// deadline-aware transient-failure retries with bounded backoff, and
// graceful overload shedding (reduced thread budgets, not rejections).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/query_service.h"
#include "util/fault_injector.h"

namespace amber {
namespace {

const char* kQuery = "SELECT ?a WHERE { ?a <urn:p0> ?b . }";

/// Scriptable engine stub: optionally parks executions on a gate, fails
/// the first `fail_first` executions with a chosen code, and records the
/// thread budget each execution was handed.
class ScriptedEngine : public QueryEngine {
 public:
  std::string name() const override { return "Scripted"; }

  Result<CountResult> Count(const SelectQuery&,
                            const ExecOptions& options) override {
    AMBER_RETURN_IF_ERROR(Enter(options));
    CountResult r;
    r.count = 1;
    return r;
  }
  Result<MaterializedRows> Materialize(const SelectQuery& query,
                                       const ExecOptions& options) override {
    AMBER_RETURN_IF_ERROR(Enter(options));
    MaterializedRows r;
    r.var_names = query.projection;
    r.rows.push_back(std::vector<std::string>(query.projection.size(), "x"));
    return r;
  }

  /// The first `n` executions (1-based, over the engine's lifetime) fail
  /// with `code`.
  void FailFirst(int n, StatusCode code) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_first_ = n;
    fail_code_ = code;
  }

  /// When gated, executions block inside the engine until ReleaseAll().
  void SetGated(bool gated) {
    std::lock_guard<std::mutex> lock(mu_);
    gated_ = gated;
  }

  void AwaitEntered(int count) {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [&] { return entered_ >= count; });
  }

  void ReleaseAll() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    release_cv_.notify_all();
  }

  int entered() {
    std::lock_guard<std::mutex> lock(mu_);
    return entered_;
  }

  std::vector<int> SeenThreadBudgets() {
    std::lock_guard<std::mutex> lock(mu_);
    return seen_threads_;
  }

 private:
  Status Enter(const ExecOptions& options) {
    std::unique_lock<std::mutex> lock(mu_);
    const int my_entry = ++entered_;
    seen_threads_.push_back(options.num_threads);
    entered_cv_.notify_all();
    if (gated_) release_cv_.wait(lock, [&] { return released_; });
    if (my_entry <= fail_first_) {
      return Status::FromCode(fail_code_, "scripted failure");
    }
    return Status::OK();
  }

  std::mutex mu_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  int entered_ = 0;
  bool gated_ = false;
  bool released_ = false;
  int fail_first_ = 0;
  StatusCode fail_code_ = StatusCode::kUnavailable;
  std::vector<int> seen_threads_;
};

TEST(QueryServiceSingleFlightTest, SixteenConcurrentMissesExecuteOnce) {
  ScriptedEngine engine;
  engine.SetGated(true);
  ServiceOptions options;
  options.pool_threads = 1;
  options.max_in_flight = 16;
  options.cache_entries = 8;
  QueryService service(&engine, options);

  constexpr int kClients = 16;
  std::atomic<int> coalesced{0};
  std::atomic<int> executed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      auto resp = service.Query(kQuery, {});
      EXPECT_TRUE(resp.ok()) << resp.status();
      if (!resp.ok()) return;
      EXPECT_EQ(resp->rows,
                (std::vector<std::vector<std::string>>{{"x"}}));
      EXPECT_EQ(resp->var_names, (std::vector<std::string>{"a"}));
      if (resp->cache_hit) {
        ++coalesced;
      } else {
        ++executed;
      }
    });
  }
  // The leader is parked inside the engine; every other client must
  // attach to its flight (the attach is observable via the counter)
  // before the gate opens — this pins 15 followers, not "some".
  engine.AwaitEntered(1);
  while (service.Stats().single_flight_hits <
         static_cast<uint64_t>(kClients - 1)) {
    std::this_thread::yield();
  }
  engine.ReleaseAll();
  for (auto& t : clients) t.join();

  EXPECT_EQ(engine.entered(), 1);  // exactly one execution
  EXPECT_EQ(executed.load(), 1);
  EXPECT_EQ(coalesced.load(), kClients - 1);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.queries, 16u);
  EXPECT_EQ(stats.cache_misses, 16u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.single_flight_hits, 15u);
  EXPECT_EQ(stats.cache_entries, 1u);
}

TEST(QueryServiceSingleFlightTest, LeaderFailurePropagatesAndIsNeverCached) {
  ScriptedEngine engine;
  engine.SetGated(true);
  engine.FailFirst(1, StatusCode::kInternal);
  ServiceOptions options;
  options.pool_threads = 1;
  options.max_in_flight = 8;
  options.cache_entries = 8;
  QueryService service(&engine, options);

  constexpr int kClients = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      auto resp = service.Query(kQuery, {});
      EXPECT_FALSE(resp.ok());
      if (!resp.ok() &&
          resp.status().code() == StatusCode::kInternal) {
        ++failures;
      }
    });
  }
  engine.AwaitEntered(1);
  while (service.Stats().single_flight_hits <
         static_cast<uint64_t>(kClients - 1)) {
    std::this_thread::yield();
  }
  engine.ReleaseAll();
  for (auto& t : clients) t.join();

  // One execution failed; leader AND followers all saw the same error.
  EXPECT_EQ(engine.entered(), 1);
  EXPECT_EQ(failures.load(), kClients);
  EXPECT_EQ(service.Stats().cache_entries, 0u);  // never cached

  // The failure poisoned nothing: the next request executes afresh and
  // succeeds.
  auto retry = service.Query(kQuery, {});
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_FALSE(retry->cache_hit);
  EXPECT_EQ(engine.entered(), 2);
}

TEST(QueryServiceSingleFlightTest, FollowerDeadlineExpiresLeaderSurvives) {
  ScriptedEngine engine;
  engine.SetGated(true);
  ServiceOptions options;
  options.pool_threads = 1;
  options.max_in_flight = 8;
  options.cache_entries = 8;
  QueryService service(&engine, options);

  std::thread leader([&] {
    auto resp = service.Query(kQuery, {});
    EXPECT_TRUE(resp.ok()) << resp.status();
    EXPECT_FALSE(resp->timed_out);
  });
  engine.AwaitEntered(1);

  // A follower with its own small budget: it gives up on the flight and
  // answers timed_out WITHOUT cancelling the (unbounded) leader.
  RequestOptions req;
  req.deadline = std::chrono::milliseconds(60);
  const auto t0 = std::chrono::steady_clock::now();
  auto follower = service.Query(kQuery, req);
  const auto waited = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(follower.ok()) << follower.status();
  EXPECT_TRUE(follower->timed_out);
  EXPECT_GE(waited, std::chrono::milliseconds(55));
  EXPECT_LT(waited, std::chrono::seconds(5));
  EXPECT_EQ(engine.entered(), 1);  // the follower never re-executed

  engine.ReleaseAll();
  leader.join();
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.single_flight_hits, 1u);
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.cache_entries, 1u);  // the leader's result was cached
}

TEST(QueryServiceSingleFlightTest, DisabledFlagExecutesEveryMiss) {
  ScriptedEngine engine;
  engine.SetGated(true);
  ServiceOptions options;
  options.pool_threads = 1;
  options.max_in_flight = 4;
  options.cache_entries = 8;
  options.single_flight = false;
  QueryService service(&engine, options);

  constexpr int kClients = 3;
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      auto resp = service.Query(kQuery, {});
      EXPECT_TRUE(resp.ok()) << resp.status();
    });
  }
  // Without single-flight every concurrent miss reaches the engine.
  engine.AwaitEntered(kClients);
  engine.ReleaseAll();
  for (auto& t : clients) t.join();
  EXPECT_EQ(engine.entered(), kClients);
  EXPECT_EQ(service.Stats().single_flight_hits, 0u);
}

TEST(QueryServiceRetryTest, TransientFailuresRetryUntilSuccess) {
  ScriptedEngine engine;
  engine.FailFirst(2, StatusCode::kUnavailable);
  ServiceOptions options;
  options.pool_threads = 1;
  options.cache_entries = 8;
  options.max_retries = 3;
  options.initial_backoff = std::chrono::milliseconds(1);
  QueryService service(&engine, options);

  auto resp = service.Query(kQuery, {});
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_FALSE(resp->cache_hit);
  EXPECT_EQ(resp->rows, (std::vector<std::vector<std::string>>{{"x"}}));
  EXPECT_EQ(engine.entered(), 3);  // two transient failures + the success
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.queries, 1u);

  // The recovered result was cached like any healthy execution.
  auto hit = service.Query(kQuery, {});
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
}

TEST(QueryServiceRetryTest, RetriesAreOffByDefault) {
  ScriptedEngine engine;
  engine.FailFirst(1, StatusCode::kUnavailable);
  ServiceOptions options;
  options.pool_threads = 1;
  QueryService service(&engine, options);
  ASSERT_EQ(options.max_retries, 0);

  auto resp = service.Query(kQuery, {});
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(engine.entered(), 1);
  EXPECT_EQ(service.Stats().retries, 0u);
}

TEST(QueryServiceRetryTest, NonTransientFailuresAreNotRetried) {
  ScriptedEngine engine;
  engine.FailFirst(1, StatusCode::kInternal);
  ServiceOptions options;
  options.pool_threads = 1;
  options.max_retries = 3;
  options.initial_backoff = std::chrono::milliseconds(1);
  QueryService service(&engine, options);

  auto resp = service.Query(kQuery, {});
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kInternal);
  EXPECT_EQ(engine.entered(), 1);  // permanent errors surface immediately
  EXPECT_EQ(service.Stats().retries, 0u);
}

TEST(QueryServiceRetryTest, BackoffLargerThanRemainingBudgetFailsFast) {
  ScriptedEngine engine;
  engine.FailFirst(1000, StatusCode::kUnavailable);  // never recovers
  ServiceOptions options;
  options.pool_threads = 1;
  options.max_retries = 10;
  options.initial_backoff = std::chrono::milliseconds(200);
  QueryService service(&engine, options);

  RequestOptions req;
  req.deadline = std::chrono::milliseconds(100);
  const auto t0 = std::chrono::steady_clock::now();
  auto resp = service.Query(kQuery, req);
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  // The backoff (200 ms) exceeds the whole budget (100 ms): the failure
  // is returned immediately instead of burning the budget asleep.
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(engine.entered(), 1);
  EXPECT_EQ(service.Stats().retries, 0u);
  EXPECT_LT(elapsed, std::chrono::milliseconds(100));
}

TEST(QueryServiceRetryTest, InjectedServiceFaultsAreRetried) {
  ScriptedEngine engine;
  ServiceOptions options;
  options.pool_threads = 1;
  options.cache_entries = 8;
  options.max_retries = 1;
  options.initial_backoff = std::chrono::milliseconds(1);
  QueryService service(&engine, options);

  FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.fail_nth = 1;
  ScopedFault fault(faults::kServiceExecute, spec);

  auto resp = service.Query(kQuery, {});
  ASSERT_TRUE(resp.ok()) << resp.status();
  // The first attempt was consumed by the injector BEFORE the engine, so
  // the engine ran exactly once and the retry counter shows one retry.
  EXPECT_EQ(engine.entered(), 1);
  EXPECT_EQ(service.Stats().retries, 1u);
  EXPECT_EQ(FaultInjector::Global().Hits(faults::kServiceExecute), 2u);
  EXPECT_EQ(FaultInjector::Global().Fires(faults::kServiceExecute), 1u);
}

TEST(QueryServiceShedTest, OverloadShedsParallelismNotRequests) {
  ScriptedEngine engine;
  engine.SetGated(true);
  ServiceOptions options;
  options.pool_threads = 4;
  options.max_in_flight = 8;
  options.max_queued = 0;
  options.default_thread_budget = 4;
  options.shed_high_water = 2;
  options.shed_thread_budget = 1;
  QueryService service(&engine, options);

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      RequestOptions req;
      req.bypass_cache = true;
      auto resp = service.Query(kQuery, req);
      EXPECT_TRUE(resp.ok()) << resp.status();  // shed, never rejected
    });
  }
  engine.AwaitEntered(kClients);
  engine.ReleaseAll();
  for (auto& t : clients) t.join();

  // Admissions serialize: the first two concurrent executions keep the
  // full budget of 4 threads; the two past the high-water mark run with
  // the degraded budget of 1.
  std::vector<int> budgets = engine.SeenThreadBudgets();
  ASSERT_EQ(budgets.size(), 4u);
  EXPECT_EQ(std::count(budgets.begin(), budgets.end(), 4), 2);
  EXPECT_EQ(std::count(budgets.begin(), budgets.end(), 1), 2);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.shed_thread_budgets, 2u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.queries, 4u);
}

TEST(QueryServiceShedTest, SheddingDisabledKeepsFullBudgets) {
  ScriptedEngine engine;
  engine.SetGated(true);
  ServiceOptions options;
  options.pool_threads = 4;
  options.max_in_flight = 8;
  options.default_thread_budget = 4;
  QueryService service(&engine, options);
  ASSERT_EQ(options.shed_high_water, 0);  // off by default

  constexpr int kClients = 3;
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      RequestOptions req;
      req.bypass_cache = true;
      auto resp = service.Query(kQuery, req);
      EXPECT_TRUE(resp.ok()) << resp.status();
    });
  }
  engine.AwaitEntered(kClients);
  engine.ReleaseAll();
  for (auto& t : clients) t.join();

  for (int budget : engine.SeenThreadBudgets()) {
    EXPECT_EQ(budget, 4);
  }
  EXPECT_EQ(service.Stats().shed_thread_budgets, 0u);
}

}  // namespace
}  // namespace amber
