// Unit tests for the N-Triples parser/writer, including escape handling,
// malformed-input rejection and file round-trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "rdf/ntriples.h"

namespace amber {
namespace {

Triple MustParseLine(std::string_view line) {
  Triple t;
  auto r = NTriplesParser::ParseLine(line, &t);
  EXPECT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r.ok() && *r) << "expected a statement";
  return t;
}

TEST(NTriplesTest, BasicIriTriple) {
  Triple t = MustParseLine("<urn:s> <urn:p> <urn:o> .");
  EXPECT_TRUE(t.subject.is_iri());
  EXPECT_EQ(t.subject.value, "urn:s");
  EXPECT_EQ(t.predicate.value, "urn:p");
  EXPECT_EQ(t.object.value, "urn:o");
}

TEST(NTriplesTest, PlainLiteral) {
  Triple t = MustParseLine("<urn:s> <urn:p> \"hello world\" .");
  ASSERT_TRUE(t.object.is_literal());
  EXPECT_EQ(t.object.value, "hello world");
  EXPECT_TRUE(t.object.datatype.empty());
  EXPECT_TRUE(t.object.lang.empty());
}

TEST(NTriplesTest, TypedLiteral) {
  Triple t = MustParseLine(
      "<urn:s> <urn:p> \"90000\"^^<http://www.w3.org/2001/XMLSchema#int> .");
  ASSERT_TRUE(t.object.is_literal());
  EXPECT_EQ(t.object.value, "90000");
  EXPECT_EQ(t.object.datatype, "http://www.w3.org/2001/XMLSchema#int");
}

TEST(NTriplesTest, LanguageTaggedLiteral) {
  Triple t = MustParseLine("<urn:s> <urn:p> \"bonjour\"@fr .");
  ASSERT_TRUE(t.object.is_literal());
  EXPECT_EQ(t.object.lang, "fr");
}

TEST(NTriplesTest, BlankNodes) {
  Triple t = MustParseLine("_:b0 <urn:p> _:b1 .");
  EXPECT_TRUE(t.subject.is_blank());
  EXPECT_EQ(t.subject.value, "b0");
  EXPECT_TRUE(t.object.is_blank());
}

TEST(NTriplesTest, EscapesInsideLiteral) {
  Triple t = MustParseLine(R"(<urn:s> <urn:p> "line\nwith \"quote\" \\ end" .)");
  EXPECT_EQ(t.object.value, "line\nwith \"quote\" \\ end");
}

TEST(NTriplesTest, UnicodeEscapeInLiteral) {
  Triple t = MustParseLine(R"(<urn:s> <urn:p> "café" .)");
  EXPECT_EQ(t.object.value, "caf\xC3\xA9");
}

TEST(NTriplesTest, CommentsAndBlankLinesSkipped) {
  auto r = NTriplesParser::ParseString(
      "# a comment\n\n<urn:s> <urn:p> <urn:o> . # trailing\n");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 1u);
}

TEST(NTriplesTest, MalformedInputsRejectedWithLineNumbers) {
  const char* bad[] = {
      "<urn:s> <urn:p> <urn:o>",             // missing dot
      "<urn:s> <urn:p> .",                   // missing object
      "<urn:s> \"lit\" <urn:o> .",           // literal predicate
      "\"lit\" <urn:p> <urn:o> .",           // literal subject
      "<urn:s> <urn:p <urn:o> .",            // unterminated IRI
      "<urn:s> <urn:p> \"unterminated .",    // unterminated literal
      "<urn:s> <urn:p> <urn:o> . garbage",   // trailing garbage
      "<urn:s> _:b <urn:o> .",               // blank predicate
      "<urn:s> <urn:p> \"x\"^^bad .",        // datatype not an IRI
      "<> <urn:p> <urn:o> .",                // empty IRI
  };
  for (const char* line : bad) {
    Triple t;
    auto r = NTriplesParser::ParseLine(line, &t);
    EXPECT_FALSE(r.ok()) << "should reject: " << line;
  }
  auto doc = NTriplesParser::ParseString("<urn:s> <urn:p> <urn:o> .\nbad\n");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("line 2"), std::string::npos)
      << doc.status();
}

TEST(NTriplesTest, WriterRoundTrip) {
  std::vector<Triple> triples = {
      {Term::Iri("urn:s"), Term::Iri("urn:p"), Term::Iri("urn:o")},
      {Term::Iri("urn:s"), Term::Iri("urn:p"),
       Term::Literal("tricky\n\"value\"\\", "urn:dt")},
      {Term::Blank("node1"), Term::Iri("urn:p"), Term::Literal("x", "", "en")},
  };
  std::ostringstream os;
  NTriplesWriter::Write(os, triples);
  auto parsed = NTriplesParser::ParseString(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), triples.size());
  for (size_t i = 0; i < triples.size(); ++i) {
    EXPECT_EQ((*parsed)[i], triples[i]) << "triple " << i;
  }
}

TEST(NTriplesTest, FileRoundTrip) {
  std::string path =
      (std::filesystem::temp_directory_path() / "amber_nt_test.nt").string();
  std::vector<Triple> triples = {
      {Term::Iri("urn:a"), Term::Iri("urn:p"), Term::Literal("1994")},
      {Term::Iri("urn:b"), Term::Iri("urn:q"), Term::Iri("urn:a")},
  };
  ASSERT_TRUE(NTriplesWriter::WriteFile(path, triples).ok());
  auto parsed = NTriplesParser::ParseFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, triples);
  std::remove(path.c_str());
}

TEST(NTriplesTest, MissingFileIsIOError) {
  auto r = NTriplesParser::ParseFile("/nonexistent/amber/file.nt");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(TermTest, NTriplesTokens) {
  EXPECT_EQ(Term::Iri("urn:x").ToNTriples(), "<urn:x>");
  EXPECT_EQ(Term::Blank("b").ToNTriples(), "_:b");
  EXPECT_EQ(Term::Literal("v").ToNTriples(), "\"v\"");
  EXPECT_EQ(Term::Literal("v", "urn:dt").ToNTriples(), "\"v\"^^<urn:dt>");
  EXPECT_EQ(Term::Literal("v", "", "en").ToNTriples(), "\"v\"@en");
  EXPECT_EQ(Term::Literal("a\"b").ToNTriples(), "\"a\\\"b\"");
}

TEST(TermTest, OrderingAndEquality) {
  Term a = Term::Iri("urn:a");
  Term b = Term::Literal("urn:a");
  EXPECT_NE(a, b);  // same value, different kind
  EXPECT_TRUE(a < b);
  EXPECT_EQ(Term::Literal("x", "dt"), Term::Literal("x", "dt"));
  EXPECT_NE(Term::Literal("x", "dt"), Term::Literal("x"));
}

}  // namespace
}  // namespace amber
