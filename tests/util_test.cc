// Unit tests for the utility layer: Status/Result, string helpers, RNG and
// Zipf sampling, deadlines, serialization primitives and the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>

#include "core/exec.h"
#include "util/clock.h"
#include "util/random.h"
#include "util/serde.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace amber {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

// Exhaustive: every status code has a deliberate HTTP mapping (the wire
// error schema and the transport's response codes both ride on it).
TEST(StatusTest, StatusCodeToHttpCoversEveryCode) {
  const struct {
    StatusCode code;
    int http;
  } expected[] = {
      {StatusCode::kOk, 200},
      {StatusCode::kInvalidArgument, 400},
      {StatusCode::kNotFound, 404},
      {StatusCode::kCorruption, 500},
      {StatusCode::kUnimplemented, 501},
      {StatusCode::kTimeout, 504},
      {StatusCode::kIOError, 500},
      {StatusCode::kResourceExhausted, 429},
      {StatusCode::kInternal, 500},
      {StatusCode::kUnavailable, 503},
  };
  for (const auto& e : expected) {
    EXPECT_EQ(StatusCodeToHttp(e.code), e.http) << StatusCodeName(e.code);
  }
  // Compile-time usable (the server builds status lines in constexpr
  // contexts) and total: 4xx/5xx only for errors.
  static_assert(StatusCodeToHttp(StatusCode::kOk) == 200);
  static_assert(StatusCodeToHttp(StatusCode::kUnavailable) == 503);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllConstructorsProduceMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Doubler(Result<int> in) {
  AMBER_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_TRUE(Doubler(Status::NotFound("no")).status().IsNotFound());
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t "), "");
}

TEST(StringUtilTest, Split) {
  auto pieces = StrSplit("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
}

TEST(StringUtilTest, EscapeRoundTrip) {
  std::string nasty = "line\nwith \"quotes\" and \\slash\\ and\ttab";
  std::string unescaped;
  ASSERT_TRUE(UnescapeNTriples(EscapeNTriples(nasty), &unescaped));
  EXPECT_EQ(unescaped, nasty);
}

TEST(StringUtilTest, UnicodeEscapes) {
  std::string out;
  ASSERT_TRUE(UnescapeNTriples("caf\\u00E9", &out));
  EXPECT_EQ(out, "caf\xC3\xA9");
  ASSERT_TRUE(UnescapeNTriples("\\U0001F600", &out));
  EXPECT_EQ(out, "\xF0\x9F\x98\x80");
}

TEST(StringUtilTest, MalformedEscapesRejected) {
  std::string out;
  EXPECT_FALSE(UnescapeNTriples("\\q", &out));
  EXPECT_FALSE(UnescapeNTriples("\\u12", &out));       // truncated hex
  EXPECT_FALSE(UnescapeNTriples("\\uD800", &out));     // lone surrogate
  EXPECT_FALSE(UnescapeNTriples("trailing\\", &out));  // dangling backslash
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024ull * 1024), "3.0 MiB");
}

TEST(RngTest, DeterministicStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, SampleDistinct) {
  Rng rng(9);
  auto sample = rng.Sample(100, 20);
  ASSERT_EQ(sample.size(), 20u);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(std::unique(sample.begin(), sample.end()), sample.end());
  EXPECT_LT(sample.back(), 100u);
}

TEST(ZipfTest, SkewsTowardsLowRanks) {
  Rng rng(11);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> hits(100, 0);
  for (int i = 0; i < 20000; ++i) ++hits[zipf.Sample(&rng)];
  // Rank 0 should be sampled far more than rank 50.
  EXPECT_GT(hits[0], hits[50] * 5);
  int total = 0;
  for (int h : hits) total += h;
  EXPECT_EQ(total, 20000);
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d = Deadline::Infinite();
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_FALSE(Deadline::After(std::chrono::milliseconds(0)).Expired());
}

TEST(DeadlineTest, ExpiresAfterBudget) {
  Deadline d = Deadline::After(std::chrono::milliseconds(5));
  EXPECT_FALSE(d.infinite());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(d.Expired());
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(sw.Elapsed().count(), 5000);  // at least 5 ms in microseconds
  sw.Reset();
  EXPECT_LT(sw.ElapsedMillis(), 5.0);
}

TEST(SerdeTest, PodAndStringRoundTrip) {
  std::stringstream ss;
  serde::WritePod<uint64_t>(ss, 0xDEADBEEFCAFEBABEull);
  serde::WriteString(ss, "hello \x01 world");
  std::vector<uint32_t> v = {1, 2, 3, 5, 8, 13};
  serde::WriteVector(ss, v);

  uint64_t u = 0;
  ASSERT_TRUE(serde::ReadPod(ss, &u).ok());
  EXPECT_EQ(u, 0xDEADBEEFCAFEBABEull);
  std::string s;
  ASSERT_TRUE(serde::ReadString(ss, &s).ok());
  EXPECT_EQ(s, "hello \x01 world");
  std::vector<uint32_t> v2;
  ASSERT_TRUE(serde::ReadVector(ss, &v2).ok());
  EXPECT_EQ(v2, v);
}

TEST(SerdeTest, TruncatedStreamIsCorruption) {
  std::stringstream ss;
  serde::WritePod<uint32_t>(ss, 7);
  uint64_t big = 0;
  EXPECT_TRUE(serde::ReadPod(ss, &big).IsCorruption());
}

TEST(SerdeTest, HeaderMismatchRejected) {
  std::stringstream ss;
  serde::WriteHeader(ss, 0x1234, 1);
  EXPECT_TRUE(serde::CheckHeader(ss, 0x9999, 1).IsCorruption());
  std::stringstream ss2;
  serde::WriteHeader(ss2, 0x1234, 1);
  EXPECT_TRUE(serde::CheckHeader(ss2, 0x1234, 2).IsCorruption());
}

// Corruption injection: forged lengths and truncated payloads must come
// back as clean Status, never a crash or a giant allocation.

TEST(SerdeCorruptionTest, VectorLengthMultiplyOverflowRejected) {
  // n * sizeof(uint64_t) wraps around 2^64 to a tiny byte count; the
  // overflow check has to fire before any resize.
  std::stringstream ss;
  serde::WritePod<uint64_t>(ss, (1ULL << 62) + 3);
  std::vector<uint64_t> v;
  Status s = serde::ReadVector(ss, &v);
  EXPECT_TRUE(s.IsCorruption()) << s;
  EXPECT_TRUE(v.empty());
}

TEST(SerdeCorruptionTest, ImplausibleVectorLengthRejected) {
  std::stringstream ss;
  serde::WritePod<uint64_t>(ss, serde::kMaxPayloadBytes);  // > cap in bytes
  std::vector<uint32_t> v;
  EXPECT_TRUE(serde::ReadVector(ss, &v).IsCorruption());
  EXPECT_TRUE(v.empty());
}

TEST(SerdeCorruptionTest, OversizedLengthOnTruncatedStreamStaysBounded) {
  // A "plausible" but huge length (256 MiB of elements) over a 12-byte
  // payload: the chunked reader must fail after at most one chunk, not
  // allocate the full claimed size.
  std::stringstream ss;
  serde::WritePod<uint64_t>(ss, (256ULL << 20) / sizeof(uint32_t));
  serde::WritePod<uint32_t>(ss, 1);
  serde::WritePod<uint64_t>(ss, 2);
  std::vector<uint32_t> v;
  EXPECT_TRUE(serde::ReadVector(ss, &v).IsCorruption());
  EXPECT_LE(v.capacity() * sizeof(uint32_t), 2 * serde::kReadChunkBytes);
}

TEST(SerdeCorruptionTest, TruncatedVectorPayloadRejected) {
  std::stringstream good;
  std::vector<uint32_t> v = {1, 2, 3, 4, 5, 6, 7, 8};
  serde::WriteVector(good, v);
  std::string bytes = good.str();
  for (size_t keep : {bytes.size() - 1, bytes.size() / 2, size_t{9}}) {
    std::stringstream truncated(bytes.substr(0, keep));
    std::vector<uint32_t> out;
    EXPECT_TRUE(serde::ReadVector(truncated, &out).IsCorruption())
        << "accepted truncation to " << keep;
  }
}

TEST(SerdeCorruptionTest, OversizedStringLengthRejected) {
  std::stringstream ss;
  serde::WritePod<uint64_t>(ss, serde::kMaxPayloadBytes + 1);
  std::string s;
  EXPECT_TRUE(serde::ReadString(ss, &s).IsCorruption());

  std::stringstream truncated;
  serde::WritePod<uint64_t>(truncated, 1ULL << 30);  // 1 GiB claimed
  truncated << "short";
  std::string out;
  EXPECT_TRUE(serde::ReadString(truncated, &out).IsCorruption());
  EXPECT_LE(out.capacity(), 2 * serde::kReadChunkBytes);
}

TEST(SerdeCorruptionTest, ChunkedReadRoundTripsLargePayload) {
  // A payload larger than one read chunk must still round-trip intact.
  std::vector<uint64_t> v((serde::kReadChunkBytes / sizeof(uint64_t)) + 777);
  for (size_t i = 0; i < v.size(); ++i) v[i] = i * 2654435761u;
  std::stringstream ss;
  serde::WriteVector(ss, v);
  std::vector<uint64_t> out;
  ASSERT_TRUE(serde::ReadVector(ss, &out).ok());
  EXPECT_EQ(out, v);

  std::string s(serde::kReadChunkBytes + 123, 'x');
  s[serde::kReadChunkBytes] = 'y';
  std::stringstream ss2;
  serde::WriteString(ss2, s);
  std::string s2;
  ASSERT_TRUE(serde::ReadString(ss2, &s2).ok());
  EXPECT_EQ(s2, s);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(50, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ExecUtilTest, SaturatingArithmetic) {
  const uint64_t max = std::numeric_limits<uint64_t>::max();
  EXPECT_EQ(SaturatingMul(1ull << 40, 1ull << 40), max);
  EXPECT_EQ(SaturatingMul(3, 7), 21u);
  EXPECT_EQ(SaturatingAdd(max, 1), max);
  EXPECT_EQ(SaturatingAdd(40, 2), 42u);
}

}  // namespace
}  // namespace amber
