// Factorized answer graphs (core/factorized.h): representation units —
// builder totals, DISTINCT collision fallback, cursor order and Skip
// arithmetic — plus engine-level differential checks that the factorized
// result form counts, paginates and expands bit-identically to the flat
// row pipeline, serially and in parallel.

#include "core/factorized.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/amber_engine.h"
#include "core/explain.h"
#include "sparql/parser.h"
#include "test_util.h"

namespace amber {
namespace {

std::vector<std::vector<VertexId>> AllRows(const FactorizedResult& r) {
  std::vector<std::vector<VertexId>> rows;
  FactorizedResult::Cursor cur = r.Expand();
  while (cur.Next()) {
    rows.emplace_back(cur.Row().begin(), cur.Row().end());
  }
  return rows;
}

TEST(FactorizedResultTest, GroupCardinalityIsProductTimesMultiplicity) {
  FactorizedResult::Group g;
  g.fixed = {1, 0, 0};
  g.lists = {{10, 11}, {20, 21, 22}};
  g.multiplicity = 4;
  EXPECT_EQ(g.Cardinality(), 4u * 2u * 3u);

  g.lists[0].clear();
  EXPECT_EQ(g.Cardinality(), 0u);
}

TEST(FactorizedResultTest, CursorReplaysOdometerOrder) {
  // Order contract: each row repeats `multiplicity` times consecutively,
  // then list 0 advances fastest — exactly the matcher's flat Emit loop.
  FactorizedResult r;
  r.num_slots = 3;
  r.slot_list = {kNoGroupList, 0, 1};
  FactorizedResult::Group g;
  g.fixed = {7, 0, 0};
  g.lists = {{1, 2}, {5, 6}};
  g.multiplicity = 2;
  r.groups.push_back(g);
  r.total_rows = g.Cardinality();

  const std::vector<std::vector<VertexId>> want = {
      {7, 1, 5}, {7, 1, 5}, {7, 2, 5}, {7, 2, 5},
      {7, 1, 6}, {7, 1, 6}, {7, 2, 6}, {7, 2, 6},
  };
  EXPECT_EQ(AllRows(r), want);

  FactorizedResult::Cursor cur = r.Expand();
  EXPECT_TRUE(cur.Next());
  EXPECT_EQ(cur.rows_expanded(), 1u);
}

TEST(FactorizedResultTest, SkipMatchesStepwiseIteration) {
  FactorizedResult r;
  r.num_slots = 2;
  r.slot_list = {kNoGroupList, 0};
  for (VertexId c = 0; c < 3; ++c) {
    FactorizedResult::Group g;
    g.fixed = {c, 0};
    g.lists = {{10, 11, 12}};
    g.multiplicity = 1 + c;  // cardinalities 3, 6, 9
    r.groups.push_back(std::move(g));
  }
  r.total_rows = 3 + 6 + 9;

  const std::vector<std::vector<VertexId>> all = AllRows(r);
  ASSERT_EQ(all.size(), r.total_rows);
  for (uint64_t n = 0; n <= r.total_rows + 1; ++n) {
    FactorizedResult::Cursor cur = r.Expand();
    cur.Skip(n);
    if (n >= all.size()) {
      EXPECT_FALSE(cur.Next()) << "skip " << n;
      continue;
    }
    ASSERT_TRUE(cur.Next()) << "skip " << n;
    EXPECT_EQ(std::vector<VertexId>(cur.Row().begin(), cur.Row().end()),
              all[n])
        << "skip " << n;
    // Whole-group skips never expand: only the returned row counts.
    EXPECT_EQ(cur.rows_expanded(), 1u) << "skip " << n;
  }
}

TEST(FactorizedResultTest, BuilderAccumulatesTotals) {
  FactorizedBuilder builder(2, {kNoGroupList, 0}, /*distinct=*/false,
                            /*cap=*/0);
  FactorizedResult::Group a;
  a.fixed = {1, 0};
  a.lists = {{10, 11}};
  FactorizedResult::Group b;
  b.fixed = {2, 0};
  b.lists = {{10, 11, 12}};
  b.multiplicity = 2;
  EXPECT_TRUE(builder.Add(std::move(a)));
  EXPECT_TRUE(builder.Add(std::move(b)));
  FactorizedResult r = builder.Finish();
  EXPECT_EQ(r.total_rows, 2u + 6u);
  EXPECT_EQ(r.represented_rows, 8u);
  EXPECT_FALSE(r.truncated);
  EXPECT_FALSE(r.needs_row_dedup);
  EXPECT_GT(r.ByteSize(), 0u);
}

TEST(FactorizedResultTest, BuilderCapStopsAndMarksTruncated) {
  FactorizedBuilder builder(2, {kNoGroupList, 0}, /*distinct=*/false,
                            /*cap=*/3);
  FactorizedResult::Group a;
  a.fixed = {1, 0};
  a.lists = {{10, 11}};
  FactorizedResult::Group b = a;
  b.fixed = {2, 0};
  EXPECT_TRUE(builder.Add(std::move(a)));   // total 2 < 3
  EXPECT_FALSE(builder.Add(std::move(b)));  // total 4 >= 3: stop, keep group
  FactorizedResult r = builder.Finish();
  EXPECT_EQ(r.groups.size(), 2u);
  EXPECT_EQ(r.total_rows, 4u);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.row_limit, 3u);
}

TEST(FactorizedResultTest, DistinctCollisionKeepsExactTotals) {
  // Two groups share the projected-core key {1}; their lists overlap on
  // 6. The builder must flag both, route them through the row-level set,
  // and report the exact distinct total.
  FactorizedBuilder builder(2, {kNoGroupList, 0}, /*distinct=*/true,
                            /*cap=*/0);
  FactorizedResult::Group a;
  a.fixed = {1, 0};
  a.lists = {{5, 6}};
  FactorizedResult::Group b;
  b.fixed = {1, 0};
  b.lists = {{6, 7}};
  FactorizedResult::Group c;  // distinct key: stays compact
  c.fixed = {2, 0};
  c.lists = {{5, 6}};
  EXPECT_TRUE(builder.Add(std::move(a)));
  EXPECT_TRUE(builder.Add(std::move(b)));
  EXPECT_TRUE(builder.Add(std::move(c)));
  EXPECT_EQ(builder.rows_expanded(), 4u);  // both colliding groups expanded
  FactorizedResult r = builder.Finish();
  EXPECT_EQ(r.total_rows, 3u + 2u);  // {1,5},{1,6},{1,7} + {2,5},{2,6}
  EXPECT_TRUE(r.needs_row_dedup);
  ASSERT_EQ(r.groups.size(), 3u);
  EXPECT_TRUE(r.groups[0].needs_dedup);
  EXPECT_TRUE(r.groups[1].needs_dedup);
  EXPECT_FALSE(r.groups[2].needs_dedup);

  const std::vector<std::vector<VertexId>> want = {
      {1, 5}, {1, 6}, {1, 7}, {2, 5}, {2, 6}};
  EXPECT_EQ(AllRows(r), want);

  // Skip through the flagged region still lands on the right row (the
  // skipped duplicates feed the dedup set instead of counting).
  FactorizedResult::Cursor cur = r.Expand();
  cur.Skip(2);
  ASSERT_TRUE(cur.Next());
  EXPECT_EQ(cur.Row()[1], 7u);
}

TEST(FactorizedResultTest, BuildSlotListFirstAppearanceOrder) {
  const std::vector<uint32_t> projection = {0, 2, 1, 2};
  const std::vector<bool> is_core = {true, false, false};
  const std::vector<uint32_t> slots = BuildSlotList(projection, is_core);
  const std::vector<uint32_t> want = {kNoGroupList, 0, 1, 0};
  EXPECT_EQ(slots, want);
}

// ---------------------------------------------------------------------------
// Engine-level differential checks.
// ---------------------------------------------------------------------------

// `centers` star centers, each with `fanout` p0-objects and `fanout`
// p1-objects: the two-satellite query below has centers * fanout^2 rows
// but only `centers` groups.
std::vector<Triple> FanoutDataset(int centers, int fanout,
                                  int shared_objects = 0) {
  std::vector<Triple> data;
  for (int c = 0; c < centers; ++c) {
    Term center = Term::Iri("urn:c" + std::to_string(c));
    for (int i = 0; i < fanout; ++i) {
      data.emplace_back(
          center, Term::Iri("urn:p0"),
          Term::Iri("urn:a" + std::to_string(c) + "_" + std::to_string(i)));
      data.emplace_back(
          center, Term::Iri("urn:p1"),
          Term::Iri("urn:b" + std::to_string(c) + "_" + std::to_string(i)));
    }
    for (int i = 0; i < shared_objects; ++i) {
      data.emplace_back(center, Term::Iri("urn:p0"),
                        Term::Iri("urn:shared" + std::to_string(i)));
    }
  }
  return data;
}

constexpr char kTwoSatelliteQuery[] =
    "SELECT ?c ?a ?b WHERE { ?c <urn:p0> ?a . ?c <urn:p1> ?b . }";

class FactorizedEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto engine = AmberEngine::Build(FanoutDataset(4, 5, /*shared=*/2));
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::make_unique<AmberEngine>(std::move(engine).value());
  }

  SelectQuery Parse(const std::string& text) {
    auto parsed = SparqlParser::Parse(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    return std::move(parsed).value();
  }

  std::unique_ptr<AmberEngine> engine_;
};

TEST_F(FactorizedEngineTest, CountNeverTouchesTheOdometer) {
  SelectQuery q = Parse(kTwoSatelliteQuery);
  auto count = engine_->Count(q, {});
  ASSERT_TRUE(count.ok());
  // 4 centers × (5 own + 2 shared) p0-objects × 5 p1-objects.
  EXPECT_EQ(count->count, 4u * 7u * 5u);
  EXPECT_EQ(count->stats.rows_expanded, 0u);
  EXPECT_EQ(count->stats.groups_emitted, 4u);
  EXPECT_EQ(count->stats.factorized_rows_represented, count->count);
}

TEST_F(FactorizedEngineTest, FactorizeCountsWithoutExpansion) {
  SelectQuery q = Parse(kTwoSatelliteQuery);
  ExecOptions opts;
  opts.result_form = ResultForm::kFactorized;
  auto fact = engine_->Factorize(q, opts);
  ASSERT_TRUE(fact.ok()) << fact.status();
  EXPECT_EQ(fact->result.total_rows, 4u * 7u * 5u);
  EXPECT_EQ(fact->result.groups.size(), 4u);
  EXPECT_EQ(fact->stats.rows_expanded, 0u);
  EXPECT_GT(fact->stats.bytes_factorized, 0u);
  ASSERT_EQ(fact->var_names.size(), 3u);
  EXPECT_EQ(fact->var_names[0], "c");
}

TEST_F(FactorizedEngineTest, MaterializeBitIdenticalAcrossForms) {
  for (const char* text :
       {kTwoSatelliteQuery,
        "SELECT ?a ?c WHERE { ?c <urn:p0> ?a . }",
        "SELECT DISTINCT ?a WHERE { ?c <urn:p0> ?a . }",
        "SELECT ?c ?a ?b WHERE { ?c <urn:p0> ?a . ?c <urn:p1> ?b . } "
        "LIMIT 11"}) {
    SCOPED_TRACE(text);
    SelectQuery q = Parse(text);
    auto flat = engine_->Materialize(q, {});
    ASSERT_TRUE(flat.ok());
    for (ResultForm form : {ResultForm::kFactorized, ResultForm::kAuto}) {
      ExecOptions opts;
      opts.result_form = form;
      auto got = engine_->Materialize(q, opts);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got->rows, flat->rows);  // exact order, not canonical
      EXPECT_EQ(got->stats.rows, flat->stats.rows);
      EXPECT_EQ(got->stats.truncated, flat->stats.truncated);
    }
  }
}

TEST_F(FactorizedEngineTest, ExpandedCursorMatchesMaterialize) {
  SelectQuery q = Parse(kTwoSatelliteQuery);
  auto flat = engine_->Materialize(q, {});
  ASSERT_TRUE(flat.ok());

  ExecOptions opts;
  opts.result_form = ResultForm::kFactorized;
  auto fact = engine_->Factorize(q, opts);
  ASSERT_TRUE(fact.ok());
  EXPECT_EQ(fact->var_names, flat->var_names);

  std::vector<std::vector<std::string>> expanded;
  FactorizedResult::Cursor cur = fact->result.Expand();
  while (cur.Next()) {
    expanded.push_back(engine_->TranslateRow(cur.Row()));
  }
  EXPECT_EQ(expanded, flat->rows);
  EXPECT_EQ(cur.rows_expanded(), flat->rows.size());
}

TEST_F(FactorizedEngineTest, DeepOffsetPageExpandsOnlyTheBoundary) {
  SelectQuery q = Parse(kTwoSatelliteQuery);
  auto flat = engine_->Materialize(q, {});
  ASSERT_TRUE(flat.ok());
  const uint64_t total = flat->rows.size();
  ASSERT_GT(total, 20u);

  ExecOptions opts;
  opts.result_form = ResultForm::kFactorized;
  auto fact = engine_->Factorize(q, opts);
  ASSERT_TRUE(fact.ok());

  uint64_t max_group_card = 0;
  for (const FactorizedResult::Group& g : fact->result.groups) {
    max_group_card = std::max(max_group_card, g.Cardinality());
  }

  const uint64_t page = 5;
  for (uint64_t offset : {uint64_t{0}, total / 2, total - 7, total - 1}) {
    FactorizedResult::Cursor cur = fact->result.Expand();
    cur.Skip(offset);
    std::vector<std::vector<std::string>> rows;
    for (uint64_t i = 0; i < page && cur.Next(); ++i) {
      rows.push_back(engine_->TranslateRow(cur.Row()));
    }
    const uint64_t end = std::min(offset + page, total);
    ASSERT_EQ(rows.size(), end - offset) << "offset " << offset;
    for (uint64_t i = offset; i < end; ++i) {
      EXPECT_EQ(rows[i - offset], flat->rows[i]) << "row " << i;
    }
    // The pagination bound: only the page itself is ever expanded (plus,
    // in the worst case, the remainder of the boundary group — which
    // Skip's division positioning avoids here entirely).
    EXPECT_LE(cur.rows_expanded(), page + max_group_card)
        << "offset " << offset;
  }
}

TEST_F(FactorizedEngineTest, ParallelFactorizedMatchesSerial) {
  for (const char* text :
       {kTwoSatelliteQuery,
        "SELECT DISTINCT ?a WHERE { ?c <urn:p0> ?a . }",
        "SELECT ?c ?a WHERE { ?c <urn:p0> ?a . } LIMIT 9"}) {
    SCOPED_TRACE(text);
    SelectQuery q = Parse(text);
    ExecOptions serial;
    serial.result_form = ResultForm::kFactorized;
    ExecOptions par = serial;
    par.num_threads = 3;

    auto sf = engine_->Factorize(q, serial);
    auto pf = engine_->Factorize(q, par);
    ASSERT_TRUE(sf.ok());
    ASSERT_TRUE(pf.ok());
    EXPECT_EQ(pf->result.total_rows, sf->result.total_rows);
    EXPECT_EQ(pf->result.groups.size(), sf->result.groups.size());
    EXPECT_EQ(AllRows(pf->result), AllRows(sf->result));

    auto sm = engine_->Materialize(q, serial);
    auto pm = engine_->Materialize(q, par);
    ASSERT_TRUE(sm.ok());
    ASSERT_TRUE(pm.ok());
    EXPECT_EQ(pm->rows, sm->rows);
  }
}

TEST_F(FactorizedEngineTest, FlatFormWrapsSingletonGroups) {
  SelectQuery q = Parse("SELECT ?a ?c WHERE { ?c <urn:p0> ?a . }");
  auto flat = engine_->Materialize(q, {});
  ASSERT_TRUE(flat.ok());
  auto fact = engine_->Factorize(q, {});  // default kFlat
  ASSERT_TRUE(fact.ok());
  EXPECT_EQ(fact->result.groups.size(), flat->rows.size());
  EXPECT_EQ(fact->result.total_rows, flat->rows.size());
  std::vector<std::vector<std::string>> expanded;
  FactorizedResult::Cursor cur = fact->result.Expand();
  while (cur.Next()) expanded.push_back(engine_->TranslateRow(cur.Row()));
  EXPECT_EQ(expanded, flat->rows);
}

TEST_F(FactorizedEngineTest, EmptyResultFactorizes) {
  SelectQuery q =
      Parse("SELECT ?x ?y WHERE { ?x <urn:nosuch> ?y . }");
  ExecOptions opts;
  opts.result_form = ResultForm::kFactorized;
  auto fact = engine_->Factorize(q, opts);
  ASSERT_TRUE(fact.ok());
  EXPECT_EQ(fact->result.total_rows, 0u);
  EXPECT_TRUE(fact->result.groups.empty());
  FactorizedResult::Cursor cur = fact->result.Expand();
  EXPECT_FALSE(cur.Next());
}

TEST_F(FactorizedEngineTest, ExplainReportsResultForm) {
  SelectQuery q = Parse(kTwoSatelliteQuery);
  ExecOptions opts;
  opts.result_form = ResultForm::kAuto;
  auto text = ExplainQuery(q, engine_->dictionaries(), &engine_->indexes(),
                           {}, &opts);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("Result form: factorized (auto)"), std::string::npos)
      << *text;

  auto count = engine_->Count(q, {});
  ASSERT_TRUE(count.ok());
  auto with_stats = ExplainQuery(q, engine_->dictionaries(),
                                 &engine_->indexes(), {}, &opts,
                                 &count->stats);
  ASSERT_TRUE(with_stats.ok());
  EXPECT_NE(with_stats->find("groups emitted: 4"), std::string::npos)
      << *with_stats;
  EXPECT_NE(with_stats->find("(never expanded)"), std::string::npos)
      << *with_stats;

  ExecOptions flat;
  auto flat_text = ExplainQuery(q, engine_->dictionaries(),
                                &engine_->indexes(), {}, &flat);
  ASSERT_TRUE(flat_text.ok());
  EXPECT_NE(flat_text->find("Result form: flat"), std::string::npos);
}

// Random differential sweep: flat vs factorized materialization must stay
// bit-identical over random data/queries, serial and parallel, with and
// without DISTINCT and caps.
TEST(FactorizedDifferentialTest, RandomQueriesAgreeAcrossForms) {
  for (uint64_t seed : {41u, 42u, 43u}) {
    auto data = testutil::RandomDataset(seed, 12, 60, 3);
    auto engine = AmberEngine::Build(data);
    ASSERT_TRUE(engine.ok());
    for (int qi = 0; qi < 8; ++qi) {
      std::string text =
          testutil::RandomQueryFromData(data, seed * 100 + qi, 3);
      SCOPED_TRACE(text);
      auto parsed = SparqlParser::Parse(text);
      ASSERT_TRUE(parsed.ok());
      auto flat = engine->Materialize(*parsed, {});
      ASSERT_TRUE(flat.ok());
      for (int threads : {1, 2}) {
        for (uint64_t cap : {uint64_t{0}, uint64_t{3}}) {
          ExecOptions opts;
          opts.result_form = ResultForm::kFactorized;
          opts.num_threads = threads;
          opts.max_rows = cap;
          auto got = engine->Materialize(*parsed, opts);
          ASSERT_TRUE(got.ok());
          std::vector<std::vector<std::string>> want = flat->rows;
          if (cap != 0 && want.size() > cap) want.resize(cap);
          EXPECT_EQ(got->rows, want)
              << "threads=" << threads << " cap=" << cap;
        }
      }
    }
  }
}

}  // namespace
}  // namespace amber
