// Admission control and deadline semantics under saturation: rejected
// requests fail fast with kResourceExhausted and leak NOTHING — no pool
// tasks, no scratch arenas, not one heap allocation left behind (verified
// with the counting global allocator in the style of matcher_alloc_test.cc,
// extended to track live allocations) — and deadlines stay per-QUERY
// budgets even when the request spends its life waiting in the queue.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/amber_engine.h"
#include "server/query_service.h"
#include "test_util.h"

namespace {
std::atomic<int64_t> g_live_allocs{0};
}  // namespace

// Global allocator replacement tracking LIVE allocations (news minus
// deletes): a balanced diff around a rejected request proves the service
// released every byte it touched. Every form routes through malloc/free so
// plain and sized/aligned news and deletes stay paired.
void* operator new(std::size_t size) {
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept {
  if (p) g_live_allocs.fetch_sub(1, std::memory_order_relaxed);
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete(void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}

namespace amber {
namespace {

/// Engine stub whose executions block on a gate until released: the
/// deterministic way to hold execution slots and saturate admission.
class BlockingEngine : public QueryEngine {
 public:
  std::string name() const override { return "Blocking"; }

  Result<CountResult> Count(const SelectQuery&,
                            const ExecOptions& options) override {
    RecordAndBlock(options);
    CountResult r;
    r.count = 1;
    return r;
  }
  Result<MaterializedRows> Materialize(const SelectQuery& query,
                                       const ExecOptions& options) override {
    RecordAndBlock(options);
    MaterializedRows r;
    r.var_names = query.projection;
    r.rows.push_back(std::vector<std::string>(query.projection.size(), "x"));
    return r;
  }

  /// Blocks the caller until `count` executions have entered the engine.
  void AwaitEntered(int count) {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [&] { return entered_ >= count; });
  }

  void ReleaseAll() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    release_cv_.notify_all();
  }

  /// Re-arms the gate so later executions block again.
  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = false;
  }

  /// Timeout budgets the service passed down, in entry order.
  std::vector<std::chrono::milliseconds> SeenTimeouts() {
    std::lock_guard<std::mutex> lock(mu_);
    return seen_timeouts_;
  }

  int entered() {
    std::lock_guard<std::mutex> lock(mu_);
    return entered_;
  }

 private:
  void RecordAndBlock(const ExecOptions& options) {
    std::unique_lock<std::mutex> lock(mu_);
    seen_timeouts_.push_back(options.timeout);
    ++entered_;
    entered_cv_.notify_all();
    release_cv_.wait(lock, [&] { return released_; });
  }

  std::mutex mu_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  int entered_ = 0;
  bool released_ = false;
  std::vector<std::chrono::milliseconds> seen_timeouts_;
};

const char* kQuery = "SELECT ?a WHERE { ?a <urn:p0> ?b . }";

/// Starts `n` client threads that each run one request and park inside the
/// blocking engine; returns once all have entered.
std::vector<std::thread> Saturate(QueryService& service,
                                  BlockingEngine& engine, int n) {
  std::vector<std::thread> holders;
  for (int i = 0; i < n; ++i) {
    holders.emplace_back([&service] {
      RequestOptions req;
      req.bypass_cache = true;
      auto resp = service.Query(kQuery, req);
      EXPECT_TRUE(resp.ok()) << resp.status();
    });
  }
  engine.AwaitEntered(n);
  return holders;
}

TEST(QueryServiceAdmissionTest, SaturationRejectsWithResourceExhausted) {
  BlockingEngine engine;
  ServiceOptions options;
  options.pool_threads = 1;
  options.max_in_flight = 2;
  options.max_queued = 0;  // no waiting room: reject immediately
  QueryService service(&engine, options);

  auto holders = Saturate(service, engine, 2);

  // Every further request must be rejected at the door.
  for (int i = 0; i < 3; ++i) {
    RequestOptions req;
    req.bypass_cache = true;
    auto resp = service.Query(kQuery, req);
    ASSERT_FALSE(resp.ok());
    EXPECT_EQ(resp.status().code(), StatusCode::kResourceExhausted)
        << resp.status();
  }
  EXPECT_EQ(service.Stats().rejected, 3u);
  EXPECT_EQ(engine.entered(), 2);  // rejections never touched the engine

  engine.ReleaseAll();
  for (auto& t : holders) t.join();

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.peak_in_flight, 2u);
}

TEST(QueryServiceAdmissionTest, RejectionsLeakNoAllocationsOrTasks) {
  BlockingEngine engine;
  ServiceOptions options;
  options.pool_threads = 1;
  options.max_in_flight = 1;
  options.max_queued = 0;
  options.cache_entries = 8;
  QueryService service(&engine, options);

  auto holders = Saturate(service, engine, 1);

  // Warm-up rejection: lets one-time lazies (gtest internals, hash table
  // growth in the miss counter path) settle before the measured window.
  {
    auto resp = service.Query(kQuery, {});
    ASSERT_FALSE(resp.ok());
  }

  const uint64_t tasks_before = service.Stats().exec.tasks_dispatched;
  const int64_t live_before = g_live_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 16; ++i) {
    RequestOptions req;
    req.thread_budget = 2;  // would borrow pool workers if admitted
    auto resp = service.Query(kQuery, req);
    ASSERT_FALSE(resp.ok());
    EXPECT_EQ(resp.status().code(), StatusCode::kResourceExhausted);
  }
  const int64_t live_after = g_live_allocs.load(std::memory_order_relaxed);
  const uint64_t tasks_after = service.Stats().exec.tasks_dispatched;

  // No scratch arenas, retained handles or queue nodes left behind...
  EXPECT_EQ(live_after - live_before, 0)
      << "rejected requests leaked " << (live_after - live_before)
      << " live heap allocations";
  // ...and no work was ever handed to the shared pool.
  EXPECT_EQ(tasks_after, tasks_before);

  engine.ReleaseAll();
  for (auto& t : holders) t.join();
}

TEST(QueryServiceAdmissionTest, QueueOverflowRejectsButQueueAdmitsLater) {
  BlockingEngine engine;
  ServiceOptions options;
  options.pool_threads = 1;
  options.max_in_flight = 1;
  options.max_queued = 1;  // one seat of waiting room
  QueryService service(&engine, options);

  auto holders = Saturate(service, engine, 1);

  // One request may queue; it will be admitted once the holder finishes.
  std::thread queued([&] {
    RequestOptions req;
    req.bypass_cache = true;
    auto resp = service.Query(kQuery, req);
    EXPECT_TRUE(resp.ok()) << resp.status();
  });
  // Wait until it occupies the queue seat.
  while (service.Stats().queued == 0) {
    std::this_thread::yield();
  }

  // The waiting room is full: the next request overflows.
  auto resp = service.Query(kQuery, {});
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kResourceExhausted);

  engine.ReleaseAll();
  queued.join();
  for (auto& t : holders) t.join();
  EXPECT_EQ(service.Stats().queries, 2u);  // holder + queued, not overflow
}

TEST(QueryServiceAdmissionTest, DeadlineExpiresInQueueAsTimeoutResponse) {
  BlockingEngine engine;
  ServiceOptions options;
  options.pool_threads = 1;
  options.max_in_flight = 1;
  options.max_queued = 4;
  QueryService service(&engine, options);

  auto holders = Saturate(service, engine, 1);

  // Budget far smaller than the holder's occupancy: expires in the queue.
  RequestOptions req;
  req.deadline = std::chrono::milliseconds(50);
  const auto t0 = std::chrono::steady_clock::now();
  auto resp = service.Query(kQuery, req);
  const auto waited = std::chrono::steady_clock::now() - t0;

  ASSERT_TRUE(resp.ok()) << resp.status();  // a timeout is a RESPONSE
  EXPECT_TRUE(resp->timed_out);
  EXPECT_FALSE(resp->cache_hit);
  EXPECT_TRUE(resp->rows.empty());
  // It gave up around its own budget — not the holder's release time.
  EXPECT_GE(waited, std::chrono::milliseconds(45));
  EXPECT_LT(waited, std::chrono::seconds(5));
  EXPECT_EQ(engine.entered(), 1);  // never reached the engine

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.queued, 0u);  // the expired waiter left the queue

  engine.ReleaseAll();
  for (auto& t : holders) t.join();
}

TEST(QueryServiceAdmissionTest, DeadlineIsPerQueryBudgetUnderContention) {
  BlockingEngine engine;
  ServiceOptions options;
  options.pool_threads = 1;
  options.max_in_flight = 1;
  options.max_queued = 4;
  QueryService service(&engine, options);

  auto holders = Saturate(service, engine, 1);

  // A queued request with a generous budget: it is admitted after the
  // holder releases, and the timeout handed to the engine must be its OWN
  // remaining budget — strictly less than the full deadline (queue wait is
  // charged), strictly more than zero.
  const auto deadline = std::chrono::milliseconds(60000);
  std::thread queued([&] {
    RequestOptions req;
    req.deadline = deadline;
    req.bypass_cache = true;
    auto resp = service.Query(kQuery, req);
    EXPECT_TRUE(resp.ok()) << resp.status();
  });
  while (service.Stats().queued == 0) {
    std::this_thread::yield();
  }
  // Make the queue wait measurable before releasing the holder.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  engine.ReleaseAll();
  queued.join();
  for (auto& t : holders) t.join();

  const auto seen = engine.SeenTimeouts();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].count(), 0);  // the holder ran without a deadline
  EXPECT_GT(seen[1].count(), 0);  // the queued one got a bounded budget...
  EXPECT_LT(seen[1], deadline);   // ...already charged for its queue wait
  EXPECT_LE(seen[1], deadline - std::chrono::milliseconds(50));
}

TEST(QueryServiceAdmissionTest, CacheHitsBypassAdmissionWhenSaturated) {
  BlockingEngine engine;
  ServiceOptions options;
  options.pool_threads = 1;
  options.max_in_flight = 1;
  options.max_queued = 0;
  options.cache_entries = 8;
  QueryService service(&engine, options);

  // Prime the cache: one request runs through the gate and is retained.
  std::thread primer([&] {
    auto resp = service.Query(kQuery, {});
    EXPECT_TRUE(resp.ok());
  });
  engine.AwaitEntered(1);
  engine.ReleaseAll();
  primer.join();
  ASSERT_EQ(service.Stats().cache_entries, 1u);

  // Re-arm the gate and occupy the single execution slot. (Saturate's own
  // AwaitEntered(1) is already satisfied by the primer, so wait for the
  // holder's entry — the second overall — explicitly.)
  engine.CloseGate();
  auto holders = Saturate(service, engine, 1);
  engine.AwaitEntered(2);

  // Even with zero free slots and zero waiting room, cache hits are served
  // (they never enter admission), and a non-cached request is rejected.
  std::vector<std::thread> clients;
  std::atomic<int> hits{0};
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&] {
      auto resp = service.Query(kQuery, {});
      ASSERT_TRUE(resp.ok()) << resp.status();
      if (resp->cache_hit) ++hits;
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(hits.load(), 4);
  EXPECT_EQ(service.Stats().rejected, 0u);

  RequestOptions bypass;
  bypass.bypass_cache = true;
  auto rejected = service.Query(kQuery, bypass);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  engine.ReleaseAll();
  for (auto& t : holders) t.join();
}

}  // namespace
}  // namespace amber
