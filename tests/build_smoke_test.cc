// Build smoke test: guards the public surface documented in README.md.
//
// Exercises only the published entry points — AmberEngine::Build over parsed
// N-Triples, then the QueryEngine interface (CountSparql / MaterializeSparql)
// on the paper's Figure 2 running-example query. Deliberately avoids every
// internal header so that a change breaking the public API fails here even
// if the internal suites still compile.

#include <gtest/gtest.h>

#include "core/amber_engine.h"
#include "core/query_engine.h"
#include "gen/paper_example.h"
#include "rdf/ntriples.h"

namespace amber {
namespace {

TEST(BuildSmokeTest, PaperExampleThroughPublicApi) {
  auto triples = NTriplesParser::ParseString(kPaperExampleNTriples);
  ASSERT_TRUE(triples.ok()) << triples.status();

  auto engine = AmberEngine::Build(triples.value());
  ASSERT_TRUE(engine.ok()) << engine.status();

  QueryEngine& public_api = engine.value();
  EXPECT_EQ(public_api.name(), "AMbER");

  auto count = public_api.CountSparql(kPaperExampleQuery);
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(count.value().count, 2u);

  auto rows = public_api.MaterializeSparql(kPaperExampleQuery);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows.value().var_names.size(), 7u);
  EXPECT_EQ(rows.value().rows.size(), 2u);
}

TEST(BuildSmokeTest, ParseErrorsSurfaceAsStatus) {
  auto engine = AmberEngine::Build({});
  ASSERT_TRUE(engine.ok()) << engine.status();

  auto bad = engine.value().CountSparql("SELECT WHERE { this is not sparql");
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace amber
