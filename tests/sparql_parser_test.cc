// Unit tests for the SPARQL parser: the paper's fragment plus the ';'/','
// abbreviations, prefixed names, 'a', literals, DISTINCT/LIMIT, and
// rejection of malformed or out-of-scope constructs.

#include <gtest/gtest.h>

#include "sparql/parser.h"

namespace amber {
namespace {

SelectQuery MustParse(std::string_view text) {
  auto r = SparqlParser::Parse(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? *std::move(r) : SelectQuery{};
}

TEST(SparqlParserTest, MinimalQuery) {
  SelectQuery q = MustParse("SELECT ?x WHERE { ?x <urn:p> ?y . }");
  EXPECT_FALSE(q.select_all);
  EXPECT_FALSE(q.distinct);
  ASSERT_EQ(q.projection.size(), 1u);
  EXPECT_EQ(q.projection[0], "x");
  ASSERT_EQ(q.patterns.size(), 1u);
  EXPECT_TRUE(q.patterns[0].subject.is_variable());
  EXPECT_EQ(q.patterns[0].predicate.value, "urn:p");
  EXPECT_EQ(q.patterns[0].object.value, "y");
}

TEST(SparqlParserTest, WhereKeywordOptionalAndCaseInsensitive) {
  SelectQuery q1 = MustParse("select ?x { ?x <urn:p> ?y }");
  EXPECT_EQ(q1.patterns.size(), 1u);
  SelectQuery q2 = MustParse("SeLeCt DiStInCt ?x WhErE { ?x <urn:p> ?y . }");
  EXPECT_TRUE(q2.distinct);
}

TEST(SparqlParserTest, SelectStar) {
  SelectQuery q = MustParse("SELECT * WHERE { ?a <urn:p> ?b . }");
  EXPECT_TRUE(q.select_all);
  EXPECT_TRUE(q.projection.empty());
}

TEST(SparqlParserTest, PrefixResolution) {
  SelectQuery q = MustParse(
      "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
      "PREFIX : <http://example.org/>\n"
      "SELECT ?x WHERE { ?x foaf:knows :alice . }");
  ASSERT_EQ(q.patterns.size(), 1u);
  EXPECT_EQ(q.patterns[0].predicate.value, "http://xmlns.com/foaf/0.1/knows");
  EXPECT_EQ(q.patterns[0].object.value, "http://example.org/alice");
}

TEST(SparqlParserTest, UndeclaredPrefixRejected) {
  auto r = SparqlParser::Parse("SELECT ?x WHERE { ?x oops:p ?y . }");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(SparqlParserTest, RdfTypeAbbreviation) {
  SelectQuery q = MustParse("SELECT ?x WHERE { ?x a <urn:Person> . }");
  EXPECT_EQ(q.patterns[0].predicate.value,
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
}

TEST(SparqlParserTest, SemicolonAndCommaAbbreviations) {
  SelectQuery q = MustParse(
      "SELECT ?x WHERE { ?x <urn:p> ?a , ?b ; <urn:q> ?c . "
      "?y <urn:r> ?x . }");
  ASSERT_EQ(q.patterns.size(), 4u);
  // ?x p ?a / ?x p ?b / ?x q ?c / ?y r ?x
  EXPECT_EQ(q.patterns[0].subject.value, "x");
  EXPECT_EQ(q.patterns[1].subject.value, "x");
  EXPECT_EQ(q.patterns[1].object.value, "b");
  EXPECT_EQ(q.patterns[2].predicate.value, "urn:q");
  EXPECT_EQ(q.patterns[3].subject.value, "y");
}

TEST(SparqlParserTest, LiteralForms) {
  SelectQuery q = MustParse(
      "SELECT ?x WHERE { "
      "?x <urn:a> \"plain\" . "
      "?x <urn:b> \"typed\"^^<urn:dt> . "
      "?x <urn:c> \"tagged\"@en . "
      "?x <urn:d> 90000 . "
      "?x <urn:e> 3.25 . "
      "?x <urn:f> \"esc\\\"aped\" . }");
  ASSERT_EQ(q.patterns.size(), 6u);
  EXPECT_EQ(q.patterns[0].object.value, "plain");
  EXPECT_EQ(q.patterns[1].object.datatype, "urn:dt");
  EXPECT_EQ(q.patterns[2].object.lang, "en");
  EXPECT_EQ(q.patterns[3].object.value, "90000");
  EXPECT_EQ(q.patterns[3].object.datatype,
            "http://www.w3.org/2001/XMLSchema#integer");
  EXPECT_EQ(q.patterns[4].object.datatype,
            "http://www.w3.org/2001/XMLSchema#decimal");
  EXPECT_EQ(q.patterns[5].object.value, "esc\"aped");
}

TEST(SparqlParserTest, TypedLiteralWithPrefixedDatatype) {
  SelectQuery q = MustParse(
      "PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n"
      "SELECT ?x WHERE { ?x <urn:p> \"5\"^^xsd:int . }");
  EXPECT_EQ(q.patterns[0].object.datatype,
            "http://www.w3.org/2001/XMLSchema#int");
}

TEST(SparqlParserTest, LimitClause) {
  SelectQuery q = MustParse("SELECT ?x WHERE { ?x <urn:p> ?y . } LIMIT 25");
  EXPECT_EQ(q.limit, 25u);
  EXPECT_EQ(MustParse("SELECT ?x WHERE { ?x <urn:p> ?y }").limit, 0u);
}

TEST(SparqlParserTest, CommentsIgnored) {
  SelectQuery q = MustParse(
      "# leading comment\n"
      "SELECT ?x # trailing\n"
      "WHERE { ?x <urn:p> ?y . # in body\n }");
  EXPECT_EQ(q.patterns.size(), 1u);
}

TEST(SparqlParserTest, VariablePredicateParsesButIsFlaggedLater) {
  // Variable predicates are syntactically valid SPARQL; rejection happens
  // at query-graph build time (paper scope).
  SelectQuery q = MustParse("SELECT ?x WHERE { ?x ?p ?y . }");
  EXPECT_TRUE(q.patterns[0].predicate.is_variable());
}

TEST(SparqlParserTest, UnsupportedOperatorsAreUnimplemented) {
  const char* queries[] = {
      "SELECT ?x WHERE { OPTIONAL { ?x <urn:p> ?y } }",
      "SELECT ?x WHERE { MINUS { ?x <urn:p> ?y } }",
  };
  for (const char* text : queries) {
    auto r = SparqlParser::Parse(text);
    ASSERT_FALSE(r.ok()) << text;
    EXPECT_TRUE(r.status().IsUnimplemented()) << r.status();
  }
}

TEST(SparqlParserTest, FilterComparisons) {
  SelectQuery q = MustParse(
      "SELECT ?x WHERE { ?x <urn:age> ?y . FILTER(?y > 25) }");
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(q.filters[0].var, "y");
  EXPECT_EQ(q.filters[0].op, CompareOp::kGt);
  EXPECT_EQ(q.filters[0].value.value, "25");
  EXPECT_EQ(q.filters[0].value.datatype,
            "http://www.w3.org/2001/XMLSchema#integer");

  // All six operators, string and decimal constants.
  SelectQuery ops = MustParse(
      "SELECT ?a WHERE { ?a <urn:p> ?v . ?a <urn:q> ?w . "
      "FILTER(?v = 1) FILTER(?v != 2) FILTER(?v < 3) "
      "FILTER(?v <= 4.5) FILTER(?w >= \"m\") FILTER(?w > \"a\"@en) }");
  ASSERT_EQ(ops.filters.size(), 6u);
  EXPECT_EQ(ops.filters[0].op, CompareOp::kEq);
  EXPECT_EQ(ops.filters[1].op, CompareOp::kNe);
  EXPECT_EQ(ops.filters[2].op, CompareOp::kLt);
  EXPECT_EQ(ops.filters[3].op, CompareOp::kLe);
  EXPECT_EQ(ops.filters[3].value.datatype,
            "http://www.w3.org/2001/XMLSchema#decimal");
  EXPECT_EQ(ops.filters[4].op, CompareOp::kGe);
  EXPECT_EQ(ops.filters[5].value.lang, "en");
}

TEST(SparqlParserTest, FilterConjunctionFlattens) {
  SelectQuery q = MustParse(
      "SELECT ?x WHERE { ?x <urn:age> ?y . "
      "FILTER(?y >= 10 && ?y <= 30 && ?y != 20) }");
  ASSERT_EQ(q.filters.size(), 3u);
  EXPECT_EQ(q.filters[0].op, CompareOp::kGe);
  EXPECT_EQ(q.filters[1].op, CompareOp::kLe);
  EXPECT_EQ(q.filters[2].op, CompareOp::kNe);
}

TEST(SparqlParserTest, FilterConstantOnLeftIsMirrored) {
  SelectQuery q = MustParse(
      "SELECT ?x WHERE { ?x <urn:age> ?y . FILTER(25 < ?y) }");
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(q.filters[0].var, "y");
  EXPECT_EQ(q.filters[0].op, CompareOp::kGt);  // 25 < ?y  ==  ?y > 25
  // Symmetric ops stay put.
  SelectQuery e = MustParse(
      "SELECT ?x WHERE { ?x <urn:age> ?y . FILTER(\"a\" = ?y) }");
  EXPECT_EQ(e.filters[0].op, CompareOp::kEq);
}

TEST(SparqlParserTest, FilterWhitespaceInsensitiveOperators) {
  // '<' must lex as an operator (not an IRI opener) with and without
  // spaces around it.
  SelectQuery q1 = MustParse(
      "SELECT ?x WHERE { ?x <urn:age> ?y . FILTER(?y<25) }");
  EXPECT_EQ(q1.filters[0].op, CompareOp::kLt);
  SelectQuery q2 = MustParse(
      "SELECT ?x WHERE { ?x <urn:age> ?y . FILTER(?y <= 25) }");
  EXPECT_EQ(q2.filters[0].op, CompareOp::kLe);
}

TEST(SparqlParserTest, MinifiedFilterQueriesLex) {
  // No whitespace anywhere: the FILTER-paren tracking must still lex the
  // comparison '<' as an operator even though an IRI's '>' follows later
  // in the same unbroken run of text.
  SelectQuery q = MustParse(
      "SELECT ?x WHERE{?x<urn:p>?y.FILTER(?y<5).?x<urn:q>?z}");
  ASSERT_EQ(q.patterns.size(), 2u);
  EXPECT_EQ(q.patterns[1].predicate.value, "urn:q");
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(q.filters[0].op, CompareOp::kLt);
  // IRIs with parentheses (DBpedia-style) still lex outside FILTER.
  SelectQuery p = MustParse(
      "SELECT ?x WHERE { ?x <urn:Paris_(France)> ?y . FILTER(?y1 > 1) . "
      "?x <urn:r> ?y1 . }");
  EXPECT_EQ(p.patterns[0].predicate.value, "urn:Paris_(France)");
}

TEST(SparqlParserTest, UnsupportedFilterConstructsAreUnimplemented) {
  const char* queries[] = {
      "SELECT ?x WHERE { ?x <urn:p> ?y . FILTER(?y > 1 || ?y < 0) }",
      "SELECT ?x WHERE { ?x <urn:p> ?y . FILTER(!(?y > 1)) }",
      "SELECT ?x WHERE { ?x <urn:p> ?y . FILTER(regex(?y, \"a\")) }",
      "SELECT ?x WHERE { ?x <urn:p> ?y . FILTER(bound(?y)) }",
      "SELECT ?x WHERE { ?x <urn:p> ?y . ?x <urn:q> ?z . FILTER(?y < ?z) }",
      "SELECT ?x WHERE { ?x <urn:p> ?y . FILTER(1 < 2) }",
      "SELECT ?x WHERE { ?x <urn:p> ?y . FILTER(?y = <urn:a>) }",
      "SELECT ?x WHERE { ?x <urn:p> ?y . FILTER(?y + 1 > 2) }",
      "SELECT ?x WHERE { ?x <urn:p> ?y . FILTER((?y > 1) && (?y < 9)) }",
  };
  for (const char* text : queries) {
    auto r = SparqlParser::Parse(text);
    ASSERT_FALSE(r.ok()) << text;
    EXPECT_TRUE(r.status().IsUnimplemented()) << text << "\n" << r.status();
  }
}

TEST(SparqlParserTest, MalformedFiltersRejected) {
  const char* bad[] = {
      "SELECT ?x WHERE { ?x <urn:p> ?y . FILTER ?y > 3 }",     // no parens
      "SELECT ?x WHERE { ?x <urn:p> ?y . FILTER(?y > 3 }",     // no ')'
      "SELECT ?x WHERE { ?x <urn:p> ?y . FILTER(?y >) }",      // no operand
      "SELECT ?x WHERE { ?x <urn:p> ?y . FILTER(?y 3) }",      // no operator
      "SELECT ?x WHERE { ?x <urn:p> ?y . FILTER(?y == 3) }",   // '=='
      "SELECT ?x WHERE { ?x <urn:p> ?y . FILTER(?y > 3 &&) }",  // dangling &&
  };
  for (const char* text : bad) {
    auto r = SparqlParser::Parse(text);
    EXPECT_FALSE(r.ok()) << "should reject: " << text;
  }
}

TEST(SparqlParserTest, MalformedQueriesRejected) {
  const char* bad[] = {
      "",
      "WHERE { ?x <urn:p> ?y . }",             // missing SELECT
      "SELECT WHERE { ?x <urn:p> ?y . }",      // no projection
      "SELECT ?x WHERE { ?x <urn:p> ?y . ",    // unterminated brace
      "SELECT ?x WHERE { }",                   // empty pattern
      "SELECT ?x WHERE { ?x <urn:p> . }",      // missing object
      "SELECT ?x WHERE { ?x \"lit\" ?y . }",   // literal predicate
      "SELECT ?x WHERE { ?x <urn:p> ?y . } LIMIT abc",
      "SELECT ?x WHERE { ?x <urn:p ?y . }",    // unterminated IRI
      "SELECT ?x WHERE { ?x <urn:p> ?y . } extra",
      "PREFIX x <urn:a> SELECT ?x WHERE { ?x <urn:p> ?y . }",  // bad prefix
  };
  for (const char* text : bad) {
    auto r = SparqlParser::Parse(text);
    EXPECT_FALSE(r.ok()) << "should reject: " << text;
  }
}

TEST(SparqlParserTest, BlankNodeTerms) {
  SelectQuery q = MustParse("SELECT ?x WHERE { _:b <urn:p> ?x . }");
  EXPECT_EQ(q.patterns[0].subject.kind, PatternTerm::Kind::kBlank);
  EXPECT_EQ(q.patterns[0].subject.value, "b");
}

TEST(SparqlParserTest, PaperQueryShapeParses) {
  // The Figure 2a query (13 patterns, mixed literals and constants).
  SelectQuery q = MustParse(
      "PREFIX x: <http://dbpedia.org/resource/> "
      "PREFIX y: <http://dbpedia.org/ontology/> "
      "SELECT ?X0 ?X1 ?X2 ?X3 ?X4 ?X5 ?X6 WHERE { "
      "?X0 y:livedIn ?X1 . ?X1 y:isPartOf ?X2 . ?X2 y:hasCapital ?X1 . "
      "?X1 y:hasStadium ?X4 . ?X3 y:wasBornIn ?X1 . ?X3 y:diedIn ?X1 . "
      "?X3 y:isMarriedTo ?X6 . ?X3 y:wasPartOf ?X5 . "
      "?X5 y:wasFormedIn ?X1 . ?X4 y:hasCapacity \"90000\" . "
      "?X5 y:hasName \"MCA_Band\" . ?X5 y:foundedIn \"1934\" . "
      "?X3 y:livedIn x:United_States . }");
  EXPECT_EQ(q.size(), 13u);
  EXPECT_EQ(q.projection.size(), 7u);
}

}  // namespace
}  // namespace amber
