// Randomized round-trip suite ("fuzz-lite"): random terms with hostile
// characters must survive N-Triples write->parse, dictionary encoding, and
// full engine persistence, bit for bit. Parameterized over seeds so each
// case is independently reproducible.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/amber_engine.h"
#include "rdf/ntriples.h"
#include "sparql/formatter.h"
#include "sparql/parser.h"
#include "util/random.h"

namespace amber {
namespace {

std::string RandomNasty(Rng* rng, bool iri_safe) {
  static const char* kPieces[] = {
      "plain", "with space", "tab\t", "newline\n", "quote\"", "back\\slash",
      "caf\xC3\xA9", "emoji\xF0\x9F\x98\x80", "uni\xE4\xB8\xAD",
      "cr\r", "hash#frag", "percent%20", "tick'", "angle",
  };
  std::string out;
  const size_t n = 1 + rng->Uniform(4);
  for (size_t i = 0; i < n; ++i) {
    std::string piece = kPieces[rng->Uniform(std::size(kPieces))];
    if (iri_safe) {
      // IRIs cannot contain spaces or control characters unescaped; keep
      // only printable non-space pieces for them.
      for (char& c : piece) {
        if (c == ' ' || c == '\n' || c == '\t' || c == '\r') c = '_';
      }
    }
    out += piece;
  }
  return out;
}

Term RandomTerm(Rng* rng, bool allow_literal) {
  const uint64_t kind = rng->Uniform(allow_literal ? 3 : 2);
  switch (kind) {
    case 0:
      return Term::Iri("http://fuzz.example/" + RandomNasty(rng, true));
    case 1:
      return Term::Blank("b" + std::to_string(rng->Uniform(10)));
    default: {
      const uint64_t flavor = rng->Uniform(3);
      if (flavor == 0) return Term::Literal(RandomNasty(rng, false));
      if (flavor == 1) {
        return Term::Literal(RandomNasty(rng, false),
                             "http://fuzz.example/dt" +
                                 std::to_string(rng->Uniform(3)));
      }
      return Term::Literal(RandomNasty(rng, false), "", "en-GB");
    }
  }
}

class RoundTripFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripFuzzTest, NTriplesWriteParseIdentity) {
  Rng rng(GetParam());
  std::vector<Triple> triples;
  for (int i = 0; i < 200; ++i) {
    Triple t;
    t.subject = RandomTerm(&rng, /*allow_literal=*/false);
    t.predicate = Term::Iri("http://fuzz.example/p" +
                            std::to_string(rng.Uniform(5)));
    t.object = RandomTerm(&rng, /*allow_literal=*/true);
    triples.push_back(std::move(t));
  }
  std::ostringstream os;
  NTriplesWriter::Write(os, triples);
  auto parsed = NTriplesParser::ParseString(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), triples.size());
  for (size_t i = 0; i < triples.size(); ++i) {
    EXPECT_EQ((*parsed)[i], triples[i]) << "triple " << i;
  }
}

TEST_P(RoundTripFuzzTest, EnginePersistenceIdentity) {
  Rng rng(GetParam() ^ 0xF00D);
  std::vector<Triple> triples;
  for (int i = 0; i < 120; ++i) {
    Triple t;
    t.subject = RandomTerm(&rng, false);
    t.predicate =
        Term::Iri("http://fuzz.example/p" + std::to_string(rng.Uniform(4)));
    t.object = RandomTerm(&rng, true);
    triples.push_back(std::move(t));
  }
  auto engine = AmberEngine::Build(triples);
  ASSERT_TRUE(engine.ok()) << engine.status();
  std::stringstream ss;
  ASSERT_TRUE(engine->Save(ss).ok());
  auto loaded = AmberEngine::Load(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->graph() == engine->graph());

  // Same query, same answers, over hostile vocabularies.
  auto a = engine->CountSparql(
      "SELECT ?x ?y WHERE { ?x <http://fuzz.example/p0> ?y . }", {});
  auto b = loaded->CountSparql(
      "SELECT ?x ?y WHERE { ?x <http://fuzz.example/p0> ?y . }", {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->count, b->count);
}

// Random FILTER expressions must hit a parse -> format -> reparse fixpoint:
// reparsing the formatted text reproduces the same AST (patterns, filters,
// projection), and formatting again is byte-identical.
TEST_P(RoundTripFuzzTest, FilterQueryFormatParseFixpoint) {
  Rng rng(GetParam() ^ 0xF1157E5);
  static const CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe,
                                   CompareOp::kLt, CompareOp::kLe,
                                   CompareOp::kGt, CompareOp::kGe};
  for (int qi = 0; qi < 40; ++qi) {
    std::string text = "SELECT ?x WHERE { ?x <urn:p> ?y . ?x <urn:q> ?z .";
    const int num_filters = 1 + static_cast<int>(rng.Uniform(3));
    for (int f = 0; f < num_filters; ++f) {
      const char* var = rng.Chance(0.5) ? "?y" : "?z";
      std::string op(CompareOpToken(kOps[rng.Uniform(std::size(kOps))]));
      std::string constant;
      switch (rng.Uniform(4)) {
        case 0:
          constant = std::to_string(rng.Uniform(1000));
          break;
        case 1:
          constant = std::to_string(rng.Uniform(100)) + "." +
                     std::to_string(rng.Uniform(10));
          break;
        case 2:
          constant = "\"s" + std::to_string(rng.Uniform(10)) + "\"";
          break;
        default:
          constant = "\"t" + std::to_string(rng.Uniform(10)) +
                     "\"^^<urn:dt>";
          break;
      }
      // Mix standalone FILTERs and && conjunctions, both operand orders.
      if (rng.Chance(0.3)) {
        text += " FILTER(" + constant + " " + op + " " + var + ")";
      } else if (rng.Chance(0.3)) {
        text += " FILTER(" + std::string(var) + " " + op + " " + constant +
                " && " + var + " != 999999)";
      } else {
        text += " FILTER(" + std::string(var) + " " + op + " " + constant +
                ")";
      }
    }
    text += " }";

    auto q1 = SparqlParser::Parse(text);
    ASSERT_TRUE(q1.ok()) << q1.status() << "\n" << text;
    std::string formatted = FormatQuery(*q1);
    auto q2 = SparqlParser::Parse(formatted);
    ASSERT_TRUE(q2.ok()) << q2.status() << "\n" << formatted;
    EXPECT_EQ(q2->patterns, q1->patterns) << formatted;
    ASSERT_EQ(q2->filters.size(), q1->filters.size()) << formatted;
    for (size_t i = 0; i < q1->filters.size(); ++i) {
      EXPECT_EQ(q2->filters[i], q1->filters[i]) << formatted;
    }
    EXPECT_EQ(FormatQuery(*q2), formatted);
  }
}

// The still-unsupported FILTER constructs stay Unimplemented under fuzzed
// whitespace (the '<'-as-operator lexer heuristic must not change the
// rejection class).
TEST_P(RoundTripFuzzTest, RejectedFilterConstructsStayUnimplemented) {
  Rng rng(GetParam() ^ 0xBAD);
  const char* templates[] = {
      "SELECT ?x WHERE { ?x <urn:p> ?y .%sFILTER(?y > 1 || ?y < 0) }",
      "SELECT ?x WHERE { ?x <urn:p> ?y .%sFILTER(!(?y = 1)) }",
      "SELECT ?x WHERE { ?x <urn:p> ?y .%sFILTER(regex(?y, \"a\")) }",
      "SELECT ?x WHERE { ?x <urn:p> ?y . ?x <urn:q> ?z .%sFILTER(?y<?z) }",
      "SELECT ?x WHERE { ?x <urn:p> ?y .%sFILTER(?y = <urn:iri>) }",
  };
  const char* spacings[] = {" ", "\n", "\t ", "  \n  "};
  for (const char* tmpl : templates) {
    const char* spacing = spacings[rng.Uniform(std::size(spacings))];
    char buf[256];
    std::snprintf(buf, sizeof(buf), tmpl, spacing);
    auto r = SparqlParser::Parse(buf);
    ASSERT_FALSE(r.ok()) << buf;
    EXPECT_TRUE(r.status().IsUnimplemented()) << buf << "\n" << r.status();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace amber
