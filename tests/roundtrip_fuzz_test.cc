// Randomized round-trip suite ("fuzz-lite"): random terms with hostile
// characters must survive N-Triples write->parse, dictionary encoding, and
// full engine persistence, bit for bit. Parameterized over seeds so each
// case is independently reproducible.

#include <gtest/gtest.h>

#include <sstream>

#include "core/amber_engine.h"
#include "rdf/ntriples.h"
#include "util/random.h"

namespace amber {
namespace {

std::string RandomNasty(Rng* rng, bool iri_safe) {
  static const char* kPieces[] = {
      "plain", "with space", "tab\t", "newline\n", "quote\"", "back\\slash",
      "caf\xC3\xA9", "emoji\xF0\x9F\x98\x80", "uni\xE4\xB8\xAD",
      "cr\r", "hash#frag", "percent%20", "tick'", "angle",
  };
  std::string out;
  const size_t n = 1 + rng->Uniform(4);
  for (size_t i = 0; i < n; ++i) {
    std::string piece = kPieces[rng->Uniform(std::size(kPieces))];
    if (iri_safe) {
      // IRIs cannot contain spaces or control characters unescaped; keep
      // only printable non-space pieces for them.
      for (char& c : piece) {
        if (c == ' ' || c == '\n' || c == '\t' || c == '\r') c = '_';
      }
    }
    out += piece;
  }
  return out;
}

Term RandomTerm(Rng* rng, bool allow_literal) {
  const uint64_t kind = rng->Uniform(allow_literal ? 3 : 2);
  switch (kind) {
    case 0:
      return Term::Iri("http://fuzz.example/" + RandomNasty(rng, true));
    case 1:
      return Term::Blank("b" + std::to_string(rng->Uniform(10)));
    default: {
      const uint64_t flavor = rng->Uniform(3);
      if (flavor == 0) return Term::Literal(RandomNasty(rng, false));
      if (flavor == 1) {
        return Term::Literal(RandomNasty(rng, false),
                             "http://fuzz.example/dt" +
                                 std::to_string(rng->Uniform(3)));
      }
      return Term::Literal(RandomNasty(rng, false), "", "en-GB");
    }
  }
}

class RoundTripFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripFuzzTest, NTriplesWriteParseIdentity) {
  Rng rng(GetParam());
  std::vector<Triple> triples;
  for (int i = 0; i < 200; ++i) {
    Triple t;
    t.subject = RandomTerm(&rng, /*allow_literal=*/false);
    t.predicate = Term::Iri("http://fuzz.example/p" +
                            std::to_string(rng.Uniform(5)));
    t.object = RandomTerm(&rng, /*allow_literal=*/true);
    triples.push_back(std::move(t));
  }
  std::ostringstream os;
  NTriplesWriter::Write(os, triples);
  auto parsed = NTriplesParser::ParseString(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), triples.size());
  for (size_t i = 0; i < triples.size(); ++i) {
    EXPECT_EQ((*parsed)[i], triples[i]) << "triple " << i;
  }
}

TEST_P(RoundTripFuzzTest, EnginePersistenceIdentity) {
  Rng rng(GetParam() ^ 0xF00D);
  std::vector<Triple> triples;
  for (int i = 0; i < 120; ++i) {
    Triple t;
    t.subject = RandomTerm(&rng, false);
    t.predicate =
        Term::Iri("http://fuzz.example/p" + std::to_string(rng.Uniform(4)));
    t.object = RandomTerm(&rng, true);
    triples.push_back(std::move(t));
  }
  auto engine = AmberEngine::Build(triples);
  ASSERT_TRUE(engine.ok()) << engine.status();
  std::stringstream ss;
  ASSERT_TRUE(engine->Save(ss).ok());
  auto loaded = AmberEngine::Load(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->graph() == engine->graph());

  // Same query, same answers, over hostile vocabularies.
  auto a = engine->CountSparql(
      "SELECT ?x ?y WHERE { ?x <http://fuzz.example/p0> ?y . }", {});
  auto b = loaded->CountSparql(
      "SELECT ?x ?y WHERE { ?x <http://fuzz.example/p0> ?y . }", {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->count, b->count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace amber
