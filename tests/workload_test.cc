// Tests for the Section 7.2 workload generator: query sizes, shapes,
// parseability, guaranteed answerability (the source entities are a
// homomorphism witness), and constant injection.

#include <gtest/gtest.h>

#include "core/amber_engine.h"
#include "gen/scale_free.h"
#include "gen/workload.h"
#include "sparql/parser.h"
#include "test_util.h"

namespace amber {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ScaleFreeOptions options;
    options.seed = 77;
    options.num_entities = 800;
    options.num_edge_triples = 6000;
    options.num_predicates = 25;
    options.attr_fraction = 0.3;
    data_ = GenerateScaleFree(options);
  }
  std::vector<Triple> data_;
};

TEST_F(WorkloadTest, StarQueriesHaveRequestedSizeAndShape) {
  WorkloadGenerator gen(data_);
  WorkloadOptions options;
  options.query_size = 8;
  options.count = 20;
  auto queries = gen.Generate(QueryShape::kStar, options);
  ASSERT_EQ(queries.size(), 20u);
  for (const std::string& text : queries) {
    auto parsed = SparqlParser::Parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
    EXPECT_EQ(parsed->size(), 8u) << text;
    // Star shape: ?X0 occurs in every pattern.
    for (const TriplePattern& p : parsed->patterns) {
      bool touches_center =
          (p.subject.is_variable() && p.subject.value == "X0") ||
          (p.object.is_variable() && p.object.value == "X0");
      EXPECT_TRUE(touches_center) << text;
    }
  }
}

TEST_F(WorkloadTest, ComplexQueriesParseAndConnect) {
  WorkloadGenerator gen(data_);
  WorkloadOptions options;
  options.query_size = 10;
  options.count = 20;
  auto queries = gen.Generate(QueryShape::kComplex, options);
  ASSERT_EQ(queries.size(), 20u);
  for (const std::string& text : queries) {
    auto parsed = SparqlParser::Parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
    EXPECT_EQ(parsed->size(), 10u);
  }
}

TEST_F(WorkloadTest, QueriesAreAnswerable) {
  // Grown-from-data queries always admit at least one homomorphic
  // embedding (the source entities themselves).
  auto engine = AmberEngine::Build(data_);
  ASSERT_TRUE(engine.ok());
  WorkloadGenerator gen(data_);
  WorkloadOptions options;
  options.query_size = 6;
  options.count = 15;
  for (QueryShape shape : {QueryShape::kStar, QueryShape::kComplex}) {
    auto queries = gen.Generate(shape, options);
    ASSERT_GE(queries.size(), 10u);
    for (const std::string& text : queries) {
      auto count = engine->CountSparql(text, {});
      ASSERT_TRUE(count.ok()) << count.status() << "\n" << text;
      EXPECT_GE(count->count, 1u) << text;
    }
  }
}

TEST_F(WorkloadTest, DeterministicPerSeed) {
  WorkloadGenerator gen(data_);
  WorkloadOptions options;
  options.query_size = 5;
  options.count = 10;
  auto a = gen.Generate(QueryShape::kStar, options);
  auto b = gen.Generate(QueryShape::kStar, options);
  EXPECT_EQ(a, b);
  options.seed = 8;
  auto c = gen.Generate(QueryShape::kStar, options);
  EXPECT_NE(a, c);
}

TEST_F(WorkloadTest, ConstantInjection) {
  WorkloadGenerator gen(data_);
  WorkloadOptions options;
  options.query_size = 10;
  options.count = 30;
  options.constant_iri_probability = 0.4;
  options.literal_fraction = 0.4;
  auto queries = gen.Generate(QueryShape::kComplex, options);
  int with_constants = 0, with_literals = 0;
  for (const std::string& text : queries) {
    auto parsed = SparqlParser::Parse(text);
    ASSERT_TRUE(parsed.ok());
    bool has_const = false, has_lit = false;
    for (const TriplePattern& p : parsed->patterns) {
      if (p.subject.is_iri() || p.object.is_iri()) has_const = true;
      if (p.object.is_literal()) has_lit = true;
    }
    with_constants += has_const;
    with_literals += has_lit;
  }
  EXPECT_GT(with_constants, 10);
  EXPECT_GT(with_literals, 10);
}

TEST_F(WorkloadTest, OversizedRequestReturnsFewerQueries) {
  // Ask for stars larger than any entity's neighbourhood.
  std::vector<Triple> tiny = {
      {Term::Iri("urn:a"), Term::Iri("urn:p"), Term::Iri("urn:b")},
      {Term::Iri("urn:b"), Term::Iri("urn:p"), Term::Iri("urn:c")},
  };
  WorkloadGenerator gen(tiny);
  WorkloadOptions options;
  options.query_size = 50;
  options.count = 5;
  auto queries = gen.Generate(QueryShape::kStar, options);
  EXPECT_TRUE(queries.empty());
}

}  // namespace
}  // namespace amber
