// Tests for the Section 7.2 workload generator: query sizes, shapes,
// parseability, guaranteed answerability (the source entities are a
// homomorphism witness), and constant injection.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <utility>

#include "core/amber_engine.h"
#include "gen/scale_free.h"
#include "gen/workload.h"
#include "sparql/parser.h"
#include "test_util.h"

namespace amber {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ScaleFreeOptions options;
    options.seed = 77;
    options.num_entities = 800;
    options.num_edge_triples = 6000;
    options.num_predicates = 25;
    options.attr_fraction = 0.3;
    data_ = GenerateScaleFree(options);
  }
  std::vector<Triple> data_;
};

TEST_F(WorkloadTest, StarQueriesHaveRequestedSizeAndShape) {
  WorkloadGenerator gen(data_);
  WorkloadOptions options;
  options.query_size = 8;
  options.count = 20;
  auto queries = gen.Generate(QueryShape::kStar, options);
  ASSERT_EQ(queries.size(), 20u);
  for (const std::string& text : queries) {
    auto parsed = SparqlParser::Parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
    EXPECT_EQ(parsed->size(), 8u) << text;
    // Star shape: ?X0 occurs in every pattern.
    for (const TriplePattern& p : parsed->patterns) {
      bool touches_center =
          (p.subject.is_variable() && p.subject.value == "X0") ||
          (p.object.is_variable() && p.object.value == "X0");
      EXPECT_TRUE(touches_center) << text;
    }
  }
}

TEST_F(WorkloadTest, ComplexQueriesParseAndConnect) {
  WorkloadGenerator gen(data_);
  WorkloadOptions options;
  options.query_size = 10;
  options.count = 20;
  auto queries = gen.Generate(QueryShape::kComplex, options);
  ASSERT_EQ(queries.size(), 20u);
  for (const std::string& text : queries) {
    auto parsed = SparqlParser::Parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
    EXPECT_EQ(parsed->size(), 10u);
  }
}

TEST_F(WorkloadTest, QueriesAreAnswerable) {
  // Grown-from-data queries always admit at least one homomorphic
  // embedding (the source entities themselves).
  auto engine = AmberEngine::Build(data_);
  ASSERT_TRUE(engine.ok());
  WorkloadGenerator gen(data_);
  WorkloadOptions options;
  options.query_size = 6;
  options.count = 15;
  for (QueryShape shape : {QueryShape::kStar, QueryShape::kComplex}) {
    auto queries = gen.Generate(shape, options);
    ASSERT_GE(queries.size(), 10u);
    for (const std::string& text : queries) {
      auto count = engine->CountSparql(text, {});
      ASSERT_TRUE(count.ok()) << count.status() << "\n" << text;
      EXPECT_GE(count->count, 1u) << text;
    }
  }
}

TEST_F(WorkloadTest, DeterministicPerSeed) {
  WorkloadGenerator gen(data_);
  WorkloadOptions options;
  options.query_size = 5;
  options.count = 10;
  auto a = gen.Generate(QueryShape::kStar, options);
  auto b = gen.Generate(QueryShape::kStar, options);
  EXPECT_EQ(a, b);
  options.seed = 8;
  auto c = gen.Generate(QueryShape::kStar, options);
  EXPECT_NE(a, c);
}

TEST_F(WorkloadTest, ConstantInjection) {
  WorkloadGenerator gen(data_);
  WorkloadOptions options;
  options.query_size = 10;
  options.count = 30;
  options.constant_iri_probability = 0.4;
  options.literal_fraction = 0.4;
  auto queries = gen.Generate(QueryShape::kComplex, options);
  int with_constants = 0, with_literals = 0;
  for (const std::string& text : queries) {
    auto parsed = SparqlParser::Parse(text);
    ASSERT_TRUE(parsed.ok());
    bool has_const = false, has_lit = false;
    for (const TriplePattern& p : parsed->patterns) {
      if (p.subject.is_iri() || p.object.is_iri()) has_const = true;
      if (p.object.is_literal()) has_lit = true;
    }
    with_constants += has_const;
    with_literals += has_lit;
  }
  EXPECT_GT(with_constants, 10);
  EXPECT_GT(with_literals, 10);
}

class FilterWorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ScaleFreeOptions options;
    options.seed = 99;
    options.num_entities = 600;
    options.num_edge_triples = 4000;
    options.num_predicates = 20;
    options.attr_fraction = 0.4;
    options.numeric_attr_fraction = 0.7;
    options.num_numeric_predicates = 4;
    options.numeric_value_range = 500;
    data_ = GenerateScaleFree(options);
  }
  std::vector<Triple> data_;
};

TEST_F(FilterWorkloadTest, FilterQueriesParseAndStayAnswerable) {
  auto engine = AmberEngine::Build(data_);
  ASSERT_TRUE(engine.ok());
  WorkloadGenerator gen(data_);
  WorkloadOptions options;
  options.query_size = 6;
  options.count = 15;
  options.literal_fraction = 0.5;
  options.filter_probability = 1.0;
  options.filter_selectivity = 0.2;
  auto queries = gen.Generate(QueryShape::kStar, options);
  ASSERT_GE(queries.size(), 10u);
  int with_filters = 0;
  for (const std::string& text : queries) {
    auto parsed = SparqlParser::Parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
    with_filters += !parsed->filters.empty();
    // The window is slid to contain the source triple's value, so every
    // query keeps its witness embedding.
    auto count = engine->CountSparql(text, {});
    ASSERT_TRUE(count.ok()) << count.status() << "\n" << text;
    EXPECT_GE(count->count, 1u) << text;
  }
  EXPECT_GT(with_filters, 5);
}

TEST_F(FilterWorkloadTest, SelectivityKnobTracksValueCoverage) {
  // The knob's contract: a FILTER window covers ~the requested fraction of
  // the predicate's global (multiset) value list.
  std::map<std::string, std::vector<double>> values_of;
  for (const Triple& t : data_) {
    if (!t.object.is_literal()) continue;
    LiteralValue v = LiteralValueOf(t.object);
    if (v.numeric) values_of[t.predicate.value].push_back(v.number);
  }

  WorkloadGenerator gen(data_);
  auto coverage_at = [&](double selectivity) -> double {
    WorkloadOptions options;
    options.query_size = 4;
    options.count = 12;
    options.literal_fraction = 0.6;
    options.filter_probability = 1.0;
    options.filter_selectivity = selectivity;
    double coverage_sum = 0;
    int filters_seen = 0;
    for (const std::string& text :
         gen.Generate(QueryShape::kStar, options)) {
      auto parsed = SparqlParser::Parse(text);
      EXPECT_TRUE(parsed.ok()) << parsed.status();
      if (!parsed.ok()) continue;
      // Group the >= / <= pair per variable into one window.
      std::map<std::string, std::pair<double, double>> window;
      for (const FilterPredicate& f : parsed->filters) {
        double c = std::strtod(f.value.value.c_str(), nullptr);
        auto [it, inserted] = window.try_emplace(f.var, c, c);
        if (f.op == CompareOp::kGe) it->second.first = c;
        if (f.op == CompareOp::kLe) it->second.second = c;
      }
      for (const auto& [var, bounds] : window) {
        // Find the predicate of the pattern binding this variable.
        for (const TriplePattern& p : parsed->patterns) {
          if (!p.object.is_variable() || p.object.value != var) continue;
          const std::vector<double>& values = values_of[p.predicate.value];
          EXPECT_FALSE(values.empty()) << p.predicate.value;
          if (values.empty()) continue;
          int inside = 0;
          for (double v : values) {
            inside += (v >= bounds.first && v <= bounds.second);
          }
          coverage_sum += static_cast<double>(inside) / values.size();
          ++filters_seen;
        }
      }
    }
    EXPECT_GT(filters_seen, 0);
    return filters_seen ? coverage_sum / filters_seen : 0.0;
  };

  const double narrow = coverage_at(0.02);
  const double wide = coverage_at(0.9);
  EXPECT_LT(narrow, 0.3);
  EXPECT_GT(wide, 0.5);
  EXPECT_LT(narrow, wide);
}

TEST_F(WorkloadTest, OversizedRequestReturnsFewerQueries) {
  // Ask for stars larger than any entity's neighbourhood.
  std::vector<Triple> tiny = {
      {Term::Iri("urn:a"), Term::Iri("urn:p"), Term::Iri("urn:b")},
      {Term::Iri("urn:b"), Term::Iri("urn:p"), Term::Iri("urn:c")},
  };
  WorkloadGenerator gen(tiny);
  WorkloadOptions options;
  options.query_size = 50;
  options.count = 5;
  auto queries = gen.Generate(QueryShape::kStar, options);
  EXPECT_TRUE(queries.empty());
}

TEST_F(WorkloadTest, SatelliteFanoutZeroIsBitIdentical) {
  // The knob must be purely additive: at 0 the generated text is exactly
  // the pre-knob output (no rng draws are spent on the feature).
  WorkloadGenerator gen(data_);
  WorkloadOptions base;
  base.query_size = 5;
  base.count = 10;
  WorkloadOptions zero = base;
  zero.satellite_fanout = 0;
  for (QueryShape shape : {QueryShape::kStar, QueryShape::kComplex}) {
    EXPECT_EQ(gen.Generate(shape, base), gen.Generate(shape, zero));
  }
}

TEST_F(WorkloadTest, SatelliteFanoutAppendsAnswerableProjectedSatellites) {
  auto engine = AmberEngine::Build(data_);
  ASSERT_TRUE(engine.ok());
  WorkloadGenerator gen(data_);
  WorkloadOptions base;
  base.query_size = 4;
  base.count = 8;
  WorkloadOptions fanned = base;
  fanned.satellite_fanout = 3;

  for (QueryShape shape : {QueryShape::kStar, QueryShape::kComplex}) {
    auto plain = gen.Generate(shape, base);
    auto queries = gen.Generate(shape, fanned);
    ASSERT_EQ(queries.size(), plain.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      const std::string& text = queries[i];
      // Additive: the fanned query is the plain query plus ?SF patterns.
      EXPECT_NE(text.find("?SF0"), std::string::npos) << text;
      EXPECT_NE(text.find("?SF2"), std::string::npos) << text;
      auto parsed = SparqlParser::Parse(text);
      ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
      // The ?SF variables are projected (they multiply the result).
      int projected_sf = 0;
      for (const std::string& v : parsed->projection) {
        if (v.rfind("SF", 0) == 0) ++projected_sf;
      }
      EXPECT_EQ(projected_sf, 3) << text;
      // Still answerable: the anchor's own edges witness every pattern.
      auto count = engine->CountSparql(text, {});
      ASSERT_TRUE(count.ok()) << count.status() << "\n" << text;
      EXPECT_GE(count->count, 1u) << text;
      // The fanout multiplies cardinality relative to the plain query.
      auto plain_count = engine->CountSparql(plain[i], {});
      ASSERT_TRUE(plain_count.ok());
      EXPECT_GE(count->count, plain_count->count) << text;
    }
  }
}

}  // namespace
}  // namespace amber
