// Tests for the SPARQL formatter (round-trip property) and the EXPLAIN
// facility (decomposition and candidate counts surfaced correctly).

#include <gtest/gtest.h>

#include "core/amber_engine.h"
#include "core/explain.h"
#include "gen/paper_example.h"
#include "sparql/formatter.h"
#include "sparql/parser.h"
#include "test_util.h"

namespace amber {
namespace {

TEST(FormatterTest, RoundTripSimple) {
  auto q = SparqlParser::Parse(
      "SELECT DISTINCT ?x ?y WHERE { ?x <urn:p> ?y . "
      "?x <urn:q> \"lit\"@en . ?y <urn:r> \"5\"^^<urn:dt> . } LIMIT 9");
  ASSERT_TRUE(q.ok());
  std::string text = FormatQuery(*q);
  auto q2 = SparqlParser::Parse(text);
  ASSERT_TRUE(q2.ok()) << q2.status() << "\n" << text;
  EXPECT_EQ(q2->patterns, q->patterns);
  EXPECT_EQ(q2->projection, q->projection);
  EXPECT_EQ(q2->distinct, q->distinct);
  EXPECT_EQ(q2->limit, q->limit);
}

TEST(FormatterTest, RoundTripSelectStar) {
  auto q = SparqlParser::Parse("SELECT * WHERE { ?a <urn:p> _:b . }");
  ASSERT_TRUE(q.ok());
  auto q2 = SparqlParser::Parse(FormatQuery(*q));
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(q2->select_all);
  EXPECT_EQ(q2->patterns, q->patterns);
}

class FormatterRoundTripProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(FormatterRoundTripProperty, ParseFormatParseIsIdentity) {
  auto data = testutil::RandomDataset(GetParam(), 12, 50, 3);
  for (int i = 0; i < 10; ++i) {
    std::string text =
        testutil::RandomQueryFromData(data, GetParam() * 100 + i, 4);
    auto q1 = SparqlParser::Parse(text);
    ASSERT_TRUE(q1.ok()) << text;
    auto q2 = SparqlParser::Parse(FormatQuery(*q1));
    ASSERT_TRUE(q2.ok()) << FormatQuery(*q1);
    EXPECT_EQ(q2->patterns, q1->patterns);
    EXPECT_EQ(q2->projection, q1->projection);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatterRoundTripProperty,
                         ::testing::Values(1, 2, 3, 4),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(ExplainTest, PaperQueryPlan) {
  auto triples = testutil::MustParse(kPaperExampleNTriples);
  auto engine = AmberEngine::Build(triples);
  ASSERT_TRUE(engine.ok());
  auto parsed = SparqlParser::Parse(kPaperExampleQuery);
  ASSERT_TRUE(parsed.ok());

  auto explained = ExplainQuery(*parsed, engine->dictionaries(),
                                &engine->indexes());
  ASSERT_TRUE(explained.ok()) << explained.status();
  const std::string& text = *explained;
  // Decomposition of Figure 4: 3 core, 4 satellites, one component.
  EXPECT_NE(text.find("3 core, 4 satellite, 1 component(s)"),
            std::string::npos)
      << text;
  // The initial vertex is ?X1 and the S index yields exactly one candidate
  // (London).
  EXPECT_NE(text.find("[init] ?X1"), std::string::npos) << text;
  EXPECT_NE(text.find("|C^S| = 1"), std::string::npos) << text;
  // Satellites listed with their host.
  EXPECT_NE(text.find("satellites:"), std::string::npos);
}

TEST(ExplainTest, FilterConstraintsShowPushdownClass) {
  auto data = testutil::RandomDataset(21, 10, 50, 3, 4, 30);
  auto engine = AmberEngine::Build(data);
  ASSERT_TRUE(engine.ok());

  // Core vertex (?x has two variable neighbours): index-pushed.
  auto core_q = SparqlParser::Parse(
      "SELECT ?x WHERE { ?x <urn:p0> ?y . ?x <urn:p1> ?z . "
      "?x <urn:num0> ?a . FILTER(?a > 10 && ?a <= 40) }");
  ASSERT_TRUE(core_q.ok());
  auto core_text = ExplainQuery(*core_q, engine->dictionaries(),
                                &engine->indexes());
  ASSERT_TRUE(core_text.ok()) << core_text.status();
  EXPECT_NE(core_text->find("preds={<urn:num0> > 10 <= 40 [index-pushed]}"),
            std::string::npos)
      << *core_text;

  // Satellite vertex (?y has degree 1): residual evaluation.
  auto sat_q = SparqlParser::Parse(
      "SELECT ?x WHERE { ?x <urn:p0> ?y . ?x <urn:p1> ?z . "
      "?y <urn:num1> ?b . FILTER(?b < 25) }");
  ASSERT_TRUE(sat_q.ok());
  auto sat_text =
      ExplainQuery(*sat_q, engine->dictionaries(), &engine->indexes());
  ASSERT_TRUE(sat_text.ok());
  EXPECT_NE(sat_text->find("preds={<urn:num1> < 25 [residual]}"),
            std::string::npos)
      << *sat_text;
}

TEST(ExplainTest, GroundPredicateChecksCounted) {
  auto data = testutil::RandomDataset(21, 10, 50, 3, 4, 30);
  auto engine = AmberEngine::Build(data);
  ASSERT_TRUE(engine.ok());
  // Find an entity with a numeric attribute so the subject resolves.
  std::string subject;
  for (const Triple& t : data) {
    if (t.predicate.value == "urn:num0") {
      subject = t.subject.ToNTriples();
      break;
    }
  }
  ASSERT_FALSE(subject.empty());
  auto q = SparqlParser::Parse("SELECT ?z WHERE { " + subject +
                               " <urn:num0> ?a . ?z <urn:p0> ?w . "
                               "FILTER(?a >= 0) }");
  ASSERT_TRUE(q.ok()) << q.status();
  auto text = ExplainQuery(*q, engine->dictionaries(), &engine->indexes());
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("1 ground predicate checks"), std::string::npos)
      << *text;
}

TEST(ExplainTest, UnsatisfiableIsReported) {
  auto triples = testutil::MustParse(kPaperExampleNTriples);
  auto engine = AmberEngine::Build(triples);
  ASSERT_TRUE(engine.ok());
  auto parsed = SparqlParser::Parse(
      "SELECT ?x WHERE { ?x <urn:nope> ?y . }");
  ASSERT_TRUE(parsed.ok());
  auto explained =
      ExplainQuery(*parsed, engine->dictionaries(), &engine->indexes());
  ASSERT_TRUE(explained.ok());
  EXPECT_NE(explained->find("UNSATISFIABLE"), std::string::npos);
}

TEST(ExplainTest, WorksWithoutIndexes) {
  auto triples = testutil::MustParse(kPaperExampleNTriples);
  auto engine = AmberEngine::Build(triples);
  ASSERT_TRUE(engine.ok());
  auto parsed = SparqlParser::Parse(kPaperExampleQuery);
  ASSERT_TRUE(parsed.ok());
  auto explained =
      ExplainQuery(*parsed, engine->dictionaries(), /*indexes=*/nullptr);
  ASSERT_TRUE(explained.ok());
  EXPECT_EQ(explained->find("|C^S|"), std::string::npos);
  EXPECT_NE(explained->find("anchor="), std::string::npos);  // ?X3's anchor
}

}  // namespace
}  // namespace amber
