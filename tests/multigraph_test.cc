// Unit tests for the CSR multigraph: construction, neighbour groups,
// multi-edge lookup, deduplication, attributes, serialization.

#include <gtest/gtest.h>

#include <sstream>

#include "graph/multigraph.h"
#include "rdf/encoded_dataset.h"

namespace amber {
namespace {

Multigraph SmallGraph() {
  // 0 --{0,1}--> 1, 0 --{2}--> 2, 2 --{0}--> 1, 1 --{1}--> 1 (self loop).
  Multigraph::Builder b;
  b.AddEdge(0, 1, 1);
  b.AddEdge(0, 0, 1);
  b.AddEdge(0, 2, 2);
  b.AddEdge(2, 0, 1);
  b.AddEdge(1, 1, 1);
  b.AddEdge(0, 0, 1);  // duplicate statement: must dedup
  b.AddAttribute(2, 5);
  b.AddAttribute(2, 3);
  b.AddAttribute(2, 3);  // duplicate attribute
  return std::move(b).Build();
}

TEST(MultigraphTest, CountsAndDedup) {
  Multigraph g = SmallGraph();
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 5u);  // duplicate (0,0,1) collapsed
  EXPECT_EQ(g.NumEdgeTypes(), 3u);
  EXPECT_EQ(g.NumAttributes(), 6u);  // max attribute id 5 -> id space 6
  EXPECT_EQ(g.NumAttributeAssignments(), 2u);
}

TEST(MultigraphTest, OutGroupsSortedByNeighborWithSortedTypes) {
  Multigraph g = SmallGraph();
  ASSERT_EQ(g.GroupCount(0, Direction::kOut), 2u);
  GroupView g0 = g.Group(0, Direction::kOut, 0);
  EXPECT_EQ(g0.neighbor, 1u);
  ASSERT_EQ(g0.types.size(), 2u);
  EXPECT_EQ(g0.types[0], 0u);
  EXPECT_EQ(g0.types[1], 1u);
  GroupView g1 = g.Group(0, Direction::kOut, 1);
  EXPECT_EQ(g1.neighbor, 2u);
  ASSERT_EQ(g1.types.size(), 1u);
  EXPECT_EQ(g1.types[0], 2u);
}

TEST(MultigraphTest, InGroupsMirrorOutEdges) {
  Multigraph g = SmallGraph();
  // Vertex 1 in-neighbours: 0 (types {0,1}), 1 (self, {1}), 2 ({0}).
  ASSERT_EQ(g.GroupCount(1, Direction::kIn), 3u);
  EXPECT_EQ(g.Group(1, Direction::kIn, 0).neighbor, 0u);
  EXPECT_EQ(g.Group(1, Direction::kIn, 1).neighbor, 1u);
  EXPECT_EQ(g.Group(1, Direction::kIn, 2).neighbor, 2u);
}

TEST(MultigraphTest, MultiEdgeLookup) {
  Multigraph g = SmallGraph();
  auto types = g.MultiEdge(0, Direction::kOut, 1);
  ASSERT_EQ(types.size(), 2u);
  EXPECT_TRUE(g.MultiEdge(1, Direction::kOut, 0).empty());  // no reverse edge
  EXPECT_TRUE(g.MultiEdge(0, Direction::kOut, 0).empty());  // no self loop at 0
  // Directional symmetry: MultiEdge(1, kIn, 0) == MultiEdge(0, kOut, 1).
  auto in_types = g.MultiEdge(1, Direction::kIn, 0);
  ASSERT_EQ(in_types.size(), types.size());
  EXPECT_TRUE(std::equal(types.begin(), types.end(), in_types.begin()));
}

TEST(MultigraphTest, HasEdgeAndSupersets) {
  Multigraph g = SmallGraph();
  EXPECT_TRUE(g.HasEdge(0, 0, 1));
  EXPECT_TRUE(g.HasEdge(0, 1, 1));
  EXPECT_FALSE(g.HasEdge(0, 2, 1));
  EXPECT_TRUE(g.HasEdge(1, 1, 1));  // self loop

  std::vector<EdgeTypeId> both = {0, 1};
  EXPECT_TRUE(g.HasMultiEdgeSuperset(0, Direction::kOut, 1, both));
  std::vector<EdgeTypeId> missing = {0, 2};
  EXPECT_FALSE(g.HasMultiEdgeSuperset(0, Direction::kOut, 1, missing));
  std::vector<EdgeTypeId> empty;
  EXPECT_TRUE(g.HasMultiEdgeSuperset(0, Direction::kOut, 1, empty));
}

TEST(MultigraphTest, AttributesSortedAndDeduped) {
  Multigraph g = SmallGraph();
  auto attrs = g.Attributes(2);
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0], 3u);
  EXPECT_EQ(attrs[1], 5u);
  EXPECT_TRUE(g.Attributes(0).empty());
}

TEST(MultigraphTest, IsolatedVerticesSupported) {
  Multigraph::Builder b;
  b.AddAttribute(4, 0);  // vertex 4 exists only through an attribute
  b.EnsureVertexCount(7);
  Multigraph g = std::move(b).Build();
  EXPECT_EQ(g.NumVertices(), 7u);
  EXPECT_EQ(g.GroupCount(6, Direction::kOut), 0u);
  EXPECT_EQ(g.Attributes(4).size(), 1u);
}

TEST(MultigraphTest, EmptyGraph) {
  Multigraph g = Multigraph::Builder().Build();
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  // Only the sentinel offset entries remain.
  EXPECT_LE(g.ByteSize(), 64u);
}

TEST(MultigraphTest, FromDatasetUsesDictionarySizes) {
  std::vector<Triple> triples = {
      {Term::Iri("urn:a"), Term::Iri("urn:p"), Term::Iri("urn:b")},
      {Term::Iri("urn:c"), Term::Iri("urn:q"), Term::Literal("x")},
  };
  auto encoded = EncodedDataset::Encode(triples);
  ASSERT_TRUE(encoded.ok());
  Multigraph g = Multigraph::FromDataset(*encoded);
  EXPECT_EQ(g.NumVertices(), 3u);  // a, b, c
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.NumAttributes(), 1u);
}

TEST(MultigraphTest, SaveLoadRoundTrip) {
  Multigraph g = SmallGraph();
  std::stringstream ss;
  g.Save(ss);
  Multigraph loaded;
  ASSERT_TRUE(loaded.Load(ss).ok());
  EXPECT_TRUE(loaded == g);
  EXPECT_EQ(loaded.NumEdges(), g.NumEdges());
  EXPECT_TRUE(loaded.HasEdge(1, 1, 1));
}

TEST(MultigraphTest, LoadRejectsCorruptHeader) {
  std::stringstream ss;
  ss << "garbage bytes here and then some";
  Multigraph g;
  EXPECT_TRUE(g.Load(ss).IsCorruption());
}

TEST(MultigraphTest, LoadRejectsForgedGroupCount) {
  // A valid prefix followed by a forged group count must fail cleanly
  // without a giant upfront allocation (the count field bypasses
  // serde::ReadVector, so Load has its own cap + incremental growth).
  Multigraph g = SmallGraph();
  std::stringstream good;
  g.Save(good);
  std::string bytes = good.str();
  // Layout: header (8) + four u64 counts (32) + dir0 offsets vector
  // (8 + (V+1)*8) + u64 group count.
  const size_t count_pos = 8 + 32 + 8 + (g.NumVertices() + 1) * 8;
  ASSERT_LT(count_pos + 8, bytes.size());
  const uint64_t forged = 1ULL << 50;
  std::memcpy(bytes.data() + count_pos, &forged, sizeof(forged));
  std::stringstream bad(bytes);
  Multigraph loaded;
  EXPECT_TRUE(loaded.Load(bad).IsCorruption());
}

}  // namespace
}  // namespace amber
