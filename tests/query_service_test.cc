// Concurrency battery for the serving runtime: N client threads hammer one
// QueryService with a mixed workload (plain SELECT, DISTINCT, LIMIT in the
// query text, OFFSET/LIMIT pagination, counting and materializing, cached
// and cache-bypassing, serial and multi-threaded budgets) against all three
// engine restore paths (fresh build, stream Load, mmap OpenFile). EVERY
// response must be bit-identical to a serial single-engine reference
// computed up front — rows, row order, var names, counts. This is the suite
// the TSan CI job runs to pin the shared pool, the admission state and the
// cache against data races.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/amber_engine.h"
#include "server/query_service.h"
#include "sparql/parser.h"
#include "test_util.h"

namespace amber {
namespace {

AmberEngine MustBuild(const std::vector<Triple>& data) {
  auto engine = AmberEngine::Build(data);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).value();
}

/// One request of the mixed workload plus its precomputed reference.
struct RequestCase {
  std::string text;
  RequestOptions options;
  // Reference (from a serial single-engine run, sliced the same way).
  std::vector<std::string> want_var_names;
  std::vector<std::vector<std::string>> want_rows;
  uint64_t want_total = 0;
};

/// Builds the mixed workload with serial references from `reference_engine`.
std::vector<RequestCase> BuildWorkload(AmberEngine& reference,
                                       const std::vector<Triple>& data) {
  std::vector<std::string> texts;
  for (int qi = 0; qi < 5; ++qi) {
    texts.push_back(testutil::RandomQueryFromData(data, 900 + qi, 3));
  }
  texts.push_back("SELECT DISTINCT ?a WHERE { ?a <urn:p0> ?b . }");
  texts.push_back(
      "SELECT DISTINCT ?a ?c WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . }");
  texts.push_back(
      "SELECT ?a ?c WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . } LIMIT 7");
  texts.push_back(
      "SELECT DISTINCT ?a WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . } "
      "LIMIT 3");

  // Pagination shapes: full result, tight pages, offset past the end.
  const struct {
    uint64_t offset, limit;
  } pages[] = {{0, 0}, {0, 2}, {1, 2}, {3, 0}, {1000000, 5}};

  std::vector<RequestCase> cases;
  for (const std::string& text : texts) {
    ExecOptions serial;  // num_threads = 1: THE reference semantics
    auto full = reference.MaterializeSparql(text, serial);
    EXPECT_TRUE(full.ok()) << full.status();
    for (const auto& page : pages) {
      RequestCase c;
      c.text = text;
      c.options.offset = page.offset;
      c.options.limit = page.limit;
      c.want_var_names = full->var_names;
      c.want_total = full->rows.size();
      const uint64_t begin =
          std::min<uint64_t>(page.offset, full->rows.size());
      uint64_t end = full->rows.size();
      if (page.limit != 0) end = std::min<uint64_t>(begin + page.limit, end);
      c.want_rows.assign(full->rows.begin() + static_cast<ptrdiff_t>(begin),
                         full->rows.begin() + static_cast<ptrdiff_t>(end));
      cases.push_back(std::move(c));
    }
    // A counting request per query text.
    RequestCase count;
    count.text = text;
    count.options.count_only = true;
    count.want_total = full->rows.size();
    cases.push_back(std::move(count));
  }
  return cases;
}

void CheckResponse(const RequestCase& c, const QueryResponse& resp) {
  if (c.options.count_only) {
    EXPECT_EQ(resp.total_rows, c.want_total) << "count mismatch: " << c.text;
    EXPECT_TRUE(resp.rows.empty());
    return;
  }
  EXPECT_EQ(resp.var_names, c.want_var_names) << c.text;
  EXPECT_EQ(resp.total_rows, c.want_total) << c.text;
  // Exact equality: rows AND their order must match the serial reference.
  EXPECT_EQ(resp.rows, c.want_rows)
      << "rows differ from serial reference: " << c.text << " offset "
      << c.options.offset << " limit " << c.options.limit;
}

/// Runs the battery: `clients` threads, each iterating the whole workload
/// `rounds` times with per-thread variations of cache bypass and thread
/// budget. Every response is checked against the serial reference.
void RunBattery(QueryService& service, const std::vector<RequestCase>& cases,
                int clients, int rounds) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < rounds; ++r) {
        for (size_t i = 0; i < cases.size(); ++i) {
          // Stagger start positions so threads collide on different keys.
          const RequestCase& c =
              cases[(i + static_cast<size_t>(t) * 7) % cases.size()];
          RequestOptions options = c.options;
          // Thread t alternates: bypass cache on odd rounds, vary budget.
          options.bypass_cache = ((t + r) % 2) == 1;
          options.thread_budget = 1 + ((t + r) % 4);
          auto resp = service.Query(c.text, options);
          if (!resp.ok()) {
            ++failures;
            ADD_FAILURE() << "Query failed: " << resp.status() << "\n"
                          << c.text;
            continue;
          }
          CheckResponse(c, *resp);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

ServiceOptions BatteryServiceOptions() {
  ServiceOptions options;
  options.pool_threads = 4;
  options.max_in_flight = 16;  // admission must not reject the battery
  options.max_queued = 64;
  options.cache_entries = 32;
  return options;
}

TEST(QueryServiceTest, EightClientsMixedWorkloadBitIdenticalFreshEngine) {
  auto data = testutil::RandomDataset(11, 15, 90, 3);
  AmberEngine engine = MustBuild(data);
  auto cases = BuildWorkload(engine, data);
  QueryService service(&engine, BatteryServiceOptions());
  RunBattery(service, cases, /*clients=*/8, /*rounds=*/3);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.queries, 8u * 3u * cases.size());
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.cache_misses, 0u);
}

TEST(QueryServiceTest, StreamAndMmapEnginesBitIdentical) {
  auto data = testutil::RandomDataset(23, 14, 80, 3);
  AmberEngine fresh = MustBuild(data);
  auto cases = BuildWorkload(fresh, data);

  std::stringstream ss;
  ASSERT_TRUE(fresh.Save(ss).ok());
  auto streamed = AmberEngine::Load(ss);
  ASSERT_TRUE(streamed.ok()) << streamed.status();

  const std::string path = testing::TempDir() + "/query_service_" +
                           std::to_string(::getpid()) + ".amf";
  ASSERT_TRUE(fresh.SaveFile(path).ok());
  auto mapped = AmberEngine::OpenFile(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();

  // The references came from the FRESH engine; serving them through the
  // restored engines must produce the very same bytes.
  for (AmberEngine* engine : {&*streamed, &*mapped}) {
    QueryService service(engine, BatteryServiceOptions());
    RunBattery(service, cases, /*clients=*/8, /*rounds=*/2);
  }
  ::unlink(path.c_str());
}

TEST(QueryServiceTest, SingleClientMatchesEngineDirectly) {
  auto data = testutil::RandomDataset(31, 12, 70, 3);
  AmberEngine engine = MustBuild(data);
  QueryService service(&engine, BatteryServiceOptions());

  for (int qi = 0; qi < 6; ++qi) {
    const std::string text = testutil::RandomQueryFromData(data, 70 + qi, 3);
    auto direct = engine.MaterializeSparql(text, {});
    ASSERT_TRUE(direct.ok()) << direct.status();
    for (bool bypass : {false, true, false}) {  // miss, bypass, hit
      RequestOptions options;
      options.bypass_cache = bypass;
      auto resp = service.Query(text, options);
      ASSERT_TRUE(resp.ok()) << resp.status();
      EXPECT_EQ(resp->var_names, direct->var_names);
      EXPECT_EQ(resp->rows, direct->rows);
      EXPECT_EQ(resp->total_rows, direct->rows.size());
    }
  }
}

TEST(QueryServiceTest, MultiThreadBudgetsShareThePersistentPool) {
  auto data = testutil::RandomDataset(41, 20, 140, 3);
  AmberEngine engine = MustBuild(data);
  ServiceOptions options = BatteryServiceOptions();
  QueryService service(&engine, options);

  const std::string text =
      "SELECT ?a ?c WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . }";
  auto reference = engine.MaterializeSparql(text, {});
  ASSERT_TRUE(reference.ok());

  // Concurrent clients all requesting parallel execution: helpers for every
  // request multiplex the one service pool.
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < 10; ++r) {
        RequestOptions req;
        req.thread_budget = 4;
        req.bypass_cache = true;  // force real executions
        auto resp = service.Query(text, req);
        ASSERT_TRUE(resp.ok()) << resp.status();
        EXPECT_EQ(resp->rows, reference->rows);
      }
    });
  }
  for (auto& th : threads) th.join();

  ServiceStats stats = service.Stats();
  EXPECT_GT(stats.exec.tasks_dispatched, 0u);
  EXPECT_GT(stats.exec.threads_used, 1u);
  EXPECT_GT(stats.peak_in_flight, 1u);
}

TEST(QueryServiceTest, ParseErrorsPropagateAsStatus) {
  auto data = testutil::RandomDataset(3, 8, 30, 2);
  AmberEngine engine = MustBuild(data);
  QueryService service(&engine, BatteryServiceOptions());
  auto resp = service.Query("SELECT WHERE {", {});
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(service.Stats().queries, 0u);
}

}  // namespace
}  // namespace amber
