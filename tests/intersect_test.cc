// Fuzz-style property tests for the sorted-set intersection kernels
// (util/intersect.h) against a naive std::set_intersection reference, over
// randomized sorted lists with sizes 0–10k and skew ratios up to 1000x, and
// for the OTIL probe primitives (NeighborhoodIndex::Contains/NeighborCount)
// against fully materialized Superset lists.

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <span>
#include <vector>

#include "index/neighborhood_index.h"
#include "rdf/encoded_dataset.h"
#include "test_util.h"
#include "util/intersect.h"
#include "util/random.h"

namespace amber {
namespace {

std::vector<VertexId> RandomSortedList(Rng* rng, size_t size,
                                       uint64_t universe) {
  std::vector<VertexId> out;
  out.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    out.push_back(static_cast<VertexId>(rng->Uniform(universe)));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<VertexId> NaiveIntersect(std::span<const VertexId> a,
                                     std::span<const VertexId> b) {
  std::vector<VertexId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

TEST(GallopLowerBoundTest, AgreesWithStdLowerBound) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const auto list = RandomSortedList(&rng, rng.Uniform(500), 2000);
    const VertexId key = static_cast<VertexId>(rng.Uniform(2200));
    const VertexId* expect =
        std::lower_bound(list.data(), list.data() + list.size(), key);
    // From every possible starting cursor, not just the front.
    for (size_t start = 0; start <= list.size(); start += 7) {
      const VertexId* got = GallopLowerBound(
          list.data() + start, list.data() + list.size(), key);
      const VertexId* expect_from = std::max(expect, list.data() + start);
      EXPECT_EQ(got, expect_from) << "key=" << key << " start=" << start;
    }
  }
}

TEST(IntersectKernelsTest, PairwiseFuzzAgainstNaive) {
  // Sizes 0..10k with skew up to 1000x, dense and sparse universes.
  Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t size_a = rng.Uniform(101);           // 0..100
    const size_t skew = 1 + rng.Uniform(1000);        // up to 1000x
    const size_t size_b = std::min<size_t>(size_a * skew + rng.Uniform(32),
                                           10000);
    const uint64_t universe = 1 + rng.Uniform(20000);
    auto a = RandomSortedList(&rng, size_a, universe);
    auto b = RandomSortedList(&rng, size_b, universe);
    const auto expect = NaiveIntersect(a, b);

    IntersectCounters counters;
    std::vector<VertexId> out;
    IntersectSortedAppend(std::span<const VertexId>(a),
                          std::span<const VertexId>(b), &out, &counters);
    EXPECT_EQ(out, expect) << "|a|=" << a.size() << " |b|=" << b.size();

    // Symmetric arguments must agree.
    out.clear();
    IntersectSortedAppend(std::span<const VertexId>(b),
                          std::span<const VertexId>(a), &out);
    EXPECT_EQ(out, expect);

    // In-place variant, both orientations.
    std::vector<VertexId> in_place = a;
    IntersectInPlace(&in_place, std::span<const VertexId>(b), &counters);
    EXPECT_EQ(in_place, expect);
    in_place = b;
    IntersectInPlace(&in_place, std::span<const VertexId>(a));
    EXPECT_EQ(in_place, expect);
  }
}

TEST(IntersectKernelsTest, AppendPreservesExistingContents) {
  std::vector<VertexId> a = {1, 3, 5};
  std::vector<VertexId> b = {3, 5, 7};
  std::vector<VertexId> out = {99};
  IntersectSortedAppend(std::span<const VertexId>(a),
                        std::span<const VertexId>(b), &out);
  EXPECT_EQ(out, (std::vector<VertexId>{99, 3, 5}));
}

TEST(IntersectKernelsTest, KWayFuzzAgainstIteratedNaive) {
  Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t k = 1 + rng.Uniform(5);  // 1..5 lists
    const uint64_t universe = 1 + rng.Uniform(5000);
    std::vector<std::vector<VertexId>> lists;
    for (size_t i = 0; i < k; ++i) {
      // Mix tiny and huge lists so the leapfrog cursors really gallop.
      const size_t size =
          rng.Uniform(2) == 0 ? rng.Uniform(20) : rng.Uniform(10000);
      lists.push_back(RandomSortedList(&rng, size, universe));
    }
    std::vector<VertexId> expect = lists[0];
    for (size_t i = 1; i < k; ++i) expect = NaiveIntersect(expect, lists[i]);

    std::vector<std::span<const VertexId>> views;
    for (const auto& l : lists) views.emplace_back(l.data(), l.size());
    std::vector<const VertexId*> cursors;
    std::vector<VertexId> out = {123};  // must be overwritten, not appended
    IntersectCounters counters;
    IntersectKWay(std::span<const std::span<const VertexId>>(views), &cursors,
                  &out, &counters);
    EXPECT_EQ(out, expect) << "k=" << k;
  }
}

TEST(IntersectKernelsTest, EmptyAndDegenerateInputs) {
  std::vector<VertexId> empty;
  std::vector<VertexId> some = {1, 2, 3};
  std::vector<VertexId> out;

  IntersectSortedAppend(std::span<const VertexId>(empty),
                        std::span<const VertexId>(some), &out);
  EXPECT_TRUE(out.empty());

  std::vector<VertexId> in_place = some;
  IntersectInPlace(&in_place, std::span<const VertexId>(empty));
  EXPECT_TRUE(in_place.empty());

  std::vector<const VertexId*> cursors;
  IntersectKWay(std::span<const std::span<const VertexId>>{}, &cursors, &out);
  EXPECT_TRUE(out.empty());

  std::vector<std::span<const VertexId>> single = {
      std::span<const VertexId>(some)};
  IntersectKWay(std::span<const std::span<const VertexId>>(single), &cursors,
                &out);
  EXPECT_EQ(out, some);
}

// --- OTIL probe primitives vs materialized lists ---------------------------

TEST(OtilProbeTest, ContainsMatchesMaterializedSuperset) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    auto triples = testutil::RandomDataset(seed, 20, 250, 5);
    auto encoded = EncodedDataset::Encode(triples);
    ASSERT_TRUE(encoded.ok());
    Multigraph g = Multigraph::FromDataset(*encoded);
    NeighborhoodIndex index = NeighborhoodIndex::Build(g);
    NeighborhoodIndex::Scratch scratch;

    Rng rng(seed * 77 + 1);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      for (Direction d : {Direction::kIn, Direction::kOut}) {
        for (int trial = 0; trial < 5; ++trial) {
          std::vector<EdgeTypeId> types;
          const size_t qsize = rng.Uniform(4);  // 0..3, incl. unknown ids
          for (size_t i = 0; i < qsize; ++i) {
            types.push_back(static_cast<EdgeTypeId>(rng.Uniform(7)));
          }
          std::sort(types.begin(), types.end());
          types.erase(std::unique(types.begin(), types.end()), types.end());

          const auto materialized = index.Superset(v, d, types);
          // Every materialized neighbour must probe true; a sample of
          // other vertices must probe false.
          for (VertexId n : materialized) {
            EXPECT_TRUE(index.Contains(v, d, types, n, &scratch))
                << "v=" << v << " n=" << n;
          }
          for (int probe = 0; probe < 8; ++probe) {
            const VertexId n =
                static_cast<VertexId>(rng.Uniform(g.NumVertices() + 2));
            const bool expect = std::binary_search(materialized.begin(),
                                                   materialized.end(), n);
            EXPECT_EQ(index.Contains(v, d, types, n, &scratch), expect)
                << "v=" << v << " n=" << n;
          }
        }
      }
    }
  }
}

TEST(OtilProbeTest, NeighborCountMatchesEmptyQuerySuperset) {
  auto triples = testutil::RandomDataset(9, 25, 300, 4);
  auto encoded = EncodedDataset::Encode(triples);
  ASSERT_TRUE(encoded.ok());
  Multigraph g = Multigraph::FromDataset(*encoded);
  NeighborhoodIndex index = NeighborhoodIndex::Build(g);

  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (Direction d : {Direction::kIn, Direction::kOut}) {
      EXPECT_EQ(index.NeighborCount(v, d), index.Superset(v, d, {}).size());
      EXPECT_EQ(index.NeighborCount(v, d), g.GroupCount(v, d));
    }
  }
  // Out-of-range vertices are a safe zero.
  EXPECT_EQ(index.NeighborCount(static_cast<VertexId>(g.NumVertices() + 5),
                                Direction::kIn),
            0u);
}

TEST(OtilProbeTest, ContainsOnEmptyTypesScansAdjacency) {
  Multigraph::Builder b;
  b.AddEdge(1, 2, 0);
  b.AddEdge(3, 4, 0);
  Multigraph g = std::move(b).Build();
  NeighborhoodIndex index = NeighborhoodIndex::Build(g);

  EXPECT_TRUE(index.Contains(0, Direction::kIn, {}, 1));
  EXPECT_TRUE(index.Contains(0, Direction::kIn, {}, 3));
  EXPECT_FALSE(index.Contains(0, Direction::kIn, {}, 2));
  EXPECT_FALSE(index.Contains(0, Direction::kOut, {}, 1));
}

}  // namespace
}  // namespace amber
