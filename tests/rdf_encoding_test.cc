// Unit tests for the dictionaries and the tripleset encoder (Section 2.1.1 /
// Table 2): literal objects become attributes, IRI objects become edges,
// ids are dense and stable, round-trips hold.

#include <gtest/gtest.h>

#include <sstream>

#include "rdf/dictionary.h"
#include "rdf/encoded_dataset.h"

namespace amber {
namespace {

TEST(StringDictionaryTest, DenseIdsInInsertionOrder) {
  StringDictionary dict;
  EXPECT_EQ(dict.GetOrAdd("a"), 0u);
  EXPECT_EQ(dict.GetOrAdd("b"), 1u);
  EXPECT_EQ(dict.GetOrAdd("a"), 0u);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Lookup(1), "b");
  EXPECT_TRUE(dict.Contains("a"));
  EXPECT_FALSE(dict.Contains("c"));
  EXPECT_FALSE(dict.Find("c").has_value());
  EXPECT_EQ(*dict.Find("b"), 1u);
}

TEST(StringDictionaryTest, StableAcrossManyInsertions) {
  // The reverse map holds views into deque storage; growth must not
  // invalidate them.
  StringDictionary dict;
  for (int i = 0; i < 10000; ++i) {
    dict.GetOrAdd("key_with_some_length_" + std::to_string(i));
  }
  for (int i = 0; i < 10000; ++i) {
    std::string key = "key_with_some_length_" + std::to_string(i);
    ASSERT_EQ(*dict.Find(key), static_cast<DictId>(i));
    ASSERT_EQ(dict.Lookup(i), key);
  }
}

TEST(StringDictionaryTest, SaveLoadRoundTrip) {
  StringDictionary dict;
  dict.GetOrAdd("alpha");
  dict.GetOrAdd("beta \x1f with separator");
  dict.GetOrAdd("");
  std::stringstream ss;
  dict.Save(ss);
  StringDictionary loaded;
  ASSERT_TRUE(loaded.Load(ss).ok());
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(*loaded.Find("alpha"), 0u);
  EXPECT_EQ(loaded.Lookup(2), "");
}

TEST(EncodedDatasetTest, LiteralsBecomeAttributes) {
  std::vector<Triple> triples = {
      {Term::Iri("urn:a"), Term::Iri("urn:knows"), Term::Iri("urn:b")},
      {Term::Iri("urn:a"), Term::Iri("urn:age"), Term::Literal("30")},
      {Term::Iri("urn:b"), Term::Iri("urn:age"), Term::Literal("30")},
      {Term::Iri("urn:b"), Term::Iri("urn:age"), Term::Literal("31")},
  };
  auto encoded = EncodedDataset::Encode(triples);
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  EXPECT_EQ(encoded->num_triples, 4u);
  EXPECT_EQ(encoded->edges.size(), 1u);
  EXPECT_EQ(encoded->attributes.size(), 3u);
  // Two vertices, one edge type (urn:age never appears with an IRI object),
  // two attributes (<age,30>, <age,31>).
  EXPECT_EQ(encoded->dictionaries.vertices().size(), 2u);
  EXPECT_EQ(encoded->dictionaries.edge_types().size(), 1u);
  EXPECT_EQ(encoded->dictionaries.attributes().size(), 2u);
  // a and b share the <age,"30"> attribute id.
  EXPECT_EQ(encoded->attributes[0].attribute, encoded->attributes[1].attribute);
  EXPECT_NE(encoded->attributes[1].attribute, encoded->attributes[2].attribute);
}

TEST(EncodedDatasetTest, TypedValuesSurfacedDuringEncode) {
  std::vector<Triple> triples = {
      {Term::Iri("urn:a"), Term::Iri("urn:age"),
       Term::Literal("30", "http://www.w3.org/2001/XMLSchema#integer")},
      {Term::Iri("urn:a"), Term::Iri("urn:age"),
       Term::Literal("30.5", "http://www.w3.org/2001/XMLSchema#decimal")},
      {Term::Iri("urn:a"), Term::Iri("urn:name"), Term::Literal("Ann")},
      // Numeric datatype with a non-numeric lexical form: string value.
      {Term::Iri("urn:a"), Term::Iri("urn:age"),
       Term::Literal("unknown", "http://www.w3.org/2001/XMLSchema#integer")},
      // Plain numeric lexical without a numeric datatype: string value.
      {Term::Iri("urn:a"), Term::Iri("urn:shoe"), Term::Literal("42")},
      {Term::Iri("urn:a"), Term::Iri("urn:knows"), Term::Iri("urn:b")},
  };
  auto encoded = EncodedDataset::Encode(triples);
  ASSERT_TRUE(encoded.ok());
  // Attribute predicates: age, name, shoe (knows is an edge type).
  EXPECT_EQ(encoded->dictionaries.attr_predicates().size(), 3u);
  EXPECT_EQ(encoded->dictionaries.edge_types().size(), 1u);
  ASSERT_EQ(encoded->attribute_values.size(), 5u);

  auto age = encoded->dictionaries.attr_predicates().Find("urn:age");
  ASSERT_TRUE(age.has_value());
  EXPECT_EQ(encoded->attribute_values[0].predicate, *age);
  EXPECT_TRUE(encoded->attribute_values[0].value.numeric);
  EXPECT_EQ(encoded->attribute_values[0].value.number, 30.0);
  EXPECT_TRUE(encoded->attribute_values[1].value.numeric);
  EXPECT_EQ(encoded->attribute_values[1].value.number, 30.5);
  EXPECT_FALSE(encoded->attribute_values[2].value.numeric);
  EXPECT_EQ(encoded->attribute_values[2].value.text, "Ann");
  EXPECT_FALSE(encoded->attribute_values[3].value.numeric);
  EXPECT_EQ(encoded->attribute_values[3].value.text, "unknown");
  EXPECT_FALSE(encoded->attribute_values[4].value.numeric);
  EXPECT_EQ(encoded->attribute_values[4].value.text, "42");
}

TEST(EncodedDatasetTest, AttrPredicateDictionaryRoundTrips) {
  std::vector<Triple> triples = {
      {Term::Iri("urn:a"), Term::Iri("urn:age"), Term::Literal("30")},
      {Term::Iri("urn:a"), Term::Iri("urn:p"), Term::Iri("urn:b")},
  };
  auto encoded = EncodedDataset::Encode(triples);
  ASSERT_TRUE(encoded.ok());
  std::stringstream ss;
  encoded->dictionaries.Save(ss);
  RdfDictionaries loaded;
  ASSERT_TRUE(loaded.Load(ss).ok());
  EXPECT_EQ(loaded.attr_predicates().size(), 1u);
  EXPECT_EQ(loaded.AttrPredicateIri(0), "urn:age");
}

TEST(EncodedDatasetTest, AttributeKeyDistinguishesPredicate) {
  // <p1,"v"> and <p2,"v"> must be different attributes.
  std::string k1 = RdfDictionaries::AttributeKey(Term::Iri("urn:p1"),
                                                 Term::Literal("v"));
  std::string k2 = RdfDictionaries::AttributeKey(Term::Iri("urn:p2"),
                                                 Term::Literal("v"));
  EXPECT_NE(k1, k2);
  // ...and datatype/lang distinguish literals.
  std::string k3 = RdfDictionaries::AttributeKey(
      Term::Iri("urn:p1"), Term::Literal("v", "urn:dt"));
  std::string k4 = RdfDictionaries::AttributeKey(
      Term::Iri("urn:p1"), Term::Literal("v", "", "en"));
  EXPECT_NE(k1, k3);
  EXPECT_NE(k3, k4);
}

TEST(EncodedDatasetTest, BlankNodesAreVertices) {
  std::vector<Triple> triples = {
      {Term::Blank("x"), Term::Iri("urn:p"), Term::Iri("urn:a")},
      {Term::Iri("urn:a"), Term::Iri("urn:p"), Term::Blank("x")},
  };
  auto encoded = EncodedDataset::Encode(triples);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->dictionaries.vertices().size(), 2u);
  EXPECT_EQ(encoded->edges.size(), 2u);
  // The same blank node maps to the same vertex on both sides.
  EXPECT_EQ(encoded->edges[0].subject, encoded->edges[1].object);
}

TEST(EncodedDatasetTest, LiteralSubjectRejected) {
  std::vector<Triple> triples = {
      {Term::Literal("oops"), Term::Iri("urn:p"), Term::Iri("urn:a")},
  };
  auto encoded = EncodedDataset::Encode(triples);
  ASSERT_FALSE(encoded.ok());
  EXPECT_TRUE(encoded.status().IsInvalidArgument());
}

TEST(EncodedDatasetTest, IriVsLiteralTokensNeverCollide) {
  // "<urn:x>" as a literal value must not collide with the IRI urn:x.
  std::vector<Triple> triples = {
      {Term::Iri("urn:s"), Term::Iri("urn:p"), Term::Iri("urn:x")},
      {Term::Iri("urn:s2"), Term::Iri("urn:p2"), Term::Literal("<urn:x>")},
  };
  auto encoded = EncodedDataset::Encode(triples);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->dictionaries.vertices().size(), 3u);  // s, x, s2
}

TEST(RdfDictionariesTest, SaveLoadRoundTrip) {
  std::vector<Triple> triples = {
      {Term::Iri("urn:a"), Term::Iri("urn:p"), Term::Iri("urn:b")},
      {Term::Iri("urn:a"), Term::Iri("urn:q"), Term::Literal("42")},
  };
  auto encoded = EncodedDataset::Encode(triples);
  ASSERT_TRUE(encoded.ok());
  std::stringstream ss;
  encoded->dictionaries.Save(ss);
  RdfDictionaries loaded;
  ASSERT_TRUE(loaded.Load(ss).ok());
  EXPECT_EQ(loaded.vertices().size(), 2u);
  EXPECT_EQ(loaded.edge_types().size(), 1u);
  EXPECT_EQ(loaded.attributes().size(), 1u);
  EXPECT_EQ(loaded.VertexToken(0), "<urn:a>");
  EXPECT_EQ(loaded.PredicateIri(0), "urn:p");
  EXPECT_EQ(loaded.AttributeDescription(0), "<urn:q> -> \"42\"");
}

}  // namespace
}  // namespace amber
