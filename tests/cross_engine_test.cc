// Cross-engine agreement property suite: on random datasets and random
// queries, AMbER, the triple-store baseline (both join orders), the graph
// backtracking baseline and the term-level brute-force oracle must produce
// the exact same bag of rows. This is the strongest correctness check in
// the repository — it exercises parser, query graph, planner, matcher,
// indexes and both baselines together.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <sstream>

#include "baseline/graph_backtrack.h"
#include "baseline/triple_store.h"
#include "core/amber_engine.h"
#include "gen/paper_example.h"
#include "sparql/parser.h"
#include "test_util.h"

namespace amber {
namespace {

struct CrossParam {
  uint64_t seed;
  int num_entities;
  int num_edges;
  int num_predicates;
  int query_patterns;
};

class CrossEngineTest : public ::testing::TestWithParam<CrossParam> {};

TEST_P(CrossEngineTest, AllEnginesAgreeWithOracle) {
  const CrossParam param = GetParam();
  auto data = testutil::RandomDataset(param.seed, param.num_entities,
                                      param.num_edges, param.num_predicates);

  auto amber = AmberEngine::Build(data);
  ASSERT_TRUE(amber.ok()) << amber.status();
  TripleStoreEngine::Options naive_opts;
  naive_opts.reorder_patterns = false;
  naive_opts.display_name = "TripleStore-naive";
  auto store = TripleStoreEngine::Build(data);
  ASSERT_TRUE(store.ok()) << store.status();
  auto store_naive = TripleStoreEngine::Build(data, naive_opts);
  ASSERT_TRUE(store_naive.ok());
  auto graph_bt = GraphBacktrackEngine::Build(data);
  ASSERT_TRUE(graph_bt.ok());

  testutil::BruteForceReference oracle(data);

  for (int qi = 0; qi < 12; ++qi) {
    std::string text = testutil::RandomQueryFromData(
        data, param.seed * 1000 + qi, param.query_patterns);
    SCOPED_TRACE("query:\n" + text);
    auto parsed = SparqlParser::Parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();

    auto expected = testutil::CanonicalRows(oracle.Evaluate(*parsed));

    QueryEngine* engines[] = {&*amber, &*store, &*store_naive, &*graph_bt};
    for (QueryEngine* engine : engines) {
      auto rows = engine->Materialize(*parsed, {});
      ASSERT_TRUE(rows.ok()) << engine->name() << ": " << rows.status();
      EXPECT_EQ(testutil::CanonicalRows(rows->rows), expected)
          << engine->name() << " disagrees with the oracle";

      auto count = engine->Count(*parsed, {});
      ASSERT_TRUE(count.ok()) << engine->name();
      EXPECT_EQ(count->count, expected.size())
          << engine->name() << " count() disagrees with materialize()";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossEngineTest,
    ::testing::Values(CrossParam{1, 8, 25, 2, 2}, CrossParam{2, 10, 40, 3, 3},
                      CrossParam{3, 12, 60, 3, 4}, CrossParam{4, 6, 30, 2, 4},
                      CrossParam{5, 15, 50, 4, 3}, CrossParam{6, 20, 80, 5, 3},
                      CrossParam{7, 5, 40, 2, 5}, CrossParam{8, 25, 60, 6, 2},
                      CrossParam{9, 10, 70, 3, 5},
                      CrossParam{10, 18, 90, 4, 4}),
    [](const ::testing::TestParamInfo<CrossParam>& info) {
      return "s" + std::to_string(info.param.seed) + "_e" +
             std::to_string(info.param.num_entities) + "_m" +
             std::to_string(info.param.num_edges) + "_q" +
             std::to_string(info.param.query_patterns);
    });

// DISTINCT agreement (deduplication paths differ per engine).
TEST(CrossEngineDistinctTest, DistinctAgreesAcrossEngines) {
  auto data = testutil::RandomDataset(99, 10, 50, 2);
  auto amber = AmberEngine::Build(data);
  ASSERT_TRUE(amber.ok());
  auto store = TripleStoreEngine::Build(data);
  ASSERT_TRUE(store.ok());
  auto graph_bt = GraphBacktrackEngine::Build(data);
  ASSERT_TRUE(graph_bt.ok());

  for (int qi = 0; qi < 8; ++qi) {
    std::string base =
        testutil::RandomQueryFromData(data, 7000 + qi, 3);
    // Keep only the first projected variable and add DISTINCT to force
    // duplicate collapse.
    size_t select_pos = base.find("SELECT");
    size_t where_pos = base.find(" WHERE");
    ASSERT_NE(where_pos, std::string::npos);
    std::string head = base.substr(select_pos + 6, where_pos - 6);
    size_t first_var_end = head.find(' ', head.find('?'));
    std::string var = (first_var_end == std::string::npos)
                          ? head.substr(head.find('?'))
                          : head.substr(head.find('?'),
                                        first_var_end - head.find('?'));
    std::string text =
        "SELECT DISTINCT " + var + base.substr(where_pos);
    SCOPED_TRACE(text);
    auto parsed = SparqlParser::Parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();

    testutil::BruteForceReference oracle(data);
    auto expected = testutil::CanonicalRows(oracle.Evaluate(*parsed));

    QueryEngine* engines[] = {&*amber, &*store, &*graph_bt};
    for (QueryEngine* engine : engines) {
      auto rows = engine->Materialize(*parsed, {});
      ASSERT_TRUE(rows.ok()) << engine->name() << rows.status();
      EXPECT_EQ(testutil::CanonicalRows(rows->rows), expected)
          << engine->name();
      auto count = engine->Count(*parsed, {});
      EXPECT_EQ(count->count, expected.size()) << engine->name();
    }
  }
}

// Persisted-artifact agreement: an engine restored from either artifact
// format (length-prefixed stream or mmap'ed AMF) must produce byte-
// identical query results to the freshly built engine, across the paper
// example and generated workloads.
class ArtifactRoundTripTest : public ::testing::Test {
 protected:
  void RunWorkload(const std::vector<Triple>& data,
                   const std::vector<std::string>& queries,
                   const std::string& tag) {
    auto fresh = AmberEngine::Build(data);
    ASSERT_TRUE(fresh.ok()) << fresh.status();

    std::stringstream ss;
    ASSERT_TRUE(fresh->Save(ss).ok());
    auto streamed = AmberEngine::Load(ss);
    ASSERT_TRUE(streamed.ok()) << streamed.status();

    const std::string path = testing::TempDir() + "/cross_" + tag + "_" +
                             std::to_string(::getpid()) + ".amf";
    ASSERT_TRUE(fresh->SaveFile(path).ok());
    auto mapped = AmberEngine::OpenFile(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status();

    for (const std::string& text : queries) {
      SCOPED_TRACE("query:\n" + text);
      auto parsed = SparqlParser::Parse(text);
      ASSERT_TRUE(parsed.ok()) << parsed.status();

      auto want_rows = fresh->Materialize(*parsed, {});
      ASSERT_TRUE(want_rows.ok());
      auto want = testutil::CanonicalRows(want_rows->rows);

      for (AmberEngine* engine : {&*streamed, &*mapped}) {
        auto rows = engine->Materialize(*parsed, {});
        ASSERT_TRUE(rows.ok()) << rows.status();
        EXPECT_EQ(testutil::CanonicalRows(rows->rows), want);
        auto count = engine->Count(*parsed, {});
        ASSERT_TRUE(count.ok());
        EXPECT_EQ(count->count, want_rows->rows.size());
      }
    }
  }
};

TEST_F(ArtifactRoundTripTest, PaperExampleAgrees) {
  auto data = testutil::MustParse(kPaperExampleNTriples);
  RunWorkload(data,
              {kPaperExampleQuery, kPaperExampleQueryLiteralFig2a},
              "paper");
}

TEST_F(ArtifactRoundTripTest, GeneratedWorkloadsAgree) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    auto data = testutil::RandomDataset(seed, 15, 70, 4);
    std::vector<std::string> queries;
    for (int qi = 0; qi < 6; ++qi) {
      queries.push_back(
          testutil::RandomQueryFromData(data, seed * 100 + qi, 3));
    }
    RunWorkload(data, queries, "gen" + std::to_string(seed));
  }
}

// FILTER differential coverage (the acceptance gate of the FILTER
// pipeline): handcrafted and random FILTER queries must return identical
// rows across AmberEngine (fresh, stream-restored, mmap-restored),
// TripleStore (both join orders), GraphBacktrack, and the brute-force
// oracle — in both pushdown and post-filter-only modes.
class CrossEngineFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = testutil::RandomDataset(17, 10, 50, 3, 4, /*num_numeric_attrs=*/40);

    auto amber = AmberEngine::Build(data_);
    ASSERT_TRUE(amber.ok()) << amber.status();
    amber_ = std::make_unique<AmberEngine>(std::move(amber).value());

    std::stringstream ss;
    ASSERT_TRUE(amber_->Save(ss).ok());
    auto streamed = AmberEngine::Load(ss);
    ASSERT_TRUE(streamed.ok()) << streamed.status();
    streamed_ = std::make_unique<AmberEngine>(std::move(streamed).value());

    // Unique per process: ctest -j runs this fixture's cases as concurrent
    // processes, and writing one shared path while a sibling has it mmap'ed
    // is a SIGBUS.
    const std::string path = testing::TempDir() + "/cross_filter_" +
                             std::to_string(::getpid()) + ".amf";
    ASSERT_TRUE(amber_->SaveFile(path).ok());
    auto mapped = AmberEngine::OpenFile(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status();
    mapped_ = std::make_unique<AmberEngine>(std::move(mapped).value());

    auto store = TripleStoreEngine::Build(data_);
    ASSERT_TRUE(store.ok());
    store_ = std::make_unique<TripleStoreEngine>(std::move(store).value());
    TripleStoreEngine::Options naive;
    naive.reorder_patterns = false;
    naive.display_name = "TripleStore-naive";
    auto store_naive = TripleStoreEngine::Build(data_, naive);
    ASSERT_TRUE(store_naive.ok());
    store_naive_ =
        std::make_unique<TripleStoreEngine>(std::move(store_naive).value());

    auto graph_bt = GraphBacktrackEngine::Build(data_);
    ASSERT_TRUE(graph_bt.ok());
    graph_bt_ =
        std::make_unique<GraphBacktrackEngine>(std::move(graph_bt).value());
  }

  void CheckQuery(const std::string& text) {
    SCOPED_TRACE("query:\n" + text);
    auto parsed = SparqlParser::Parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();

    testutil::BruteForceReference oracle(data_);
    auto expected = testutil::CanonicalRows(oracle.Evaluate(*parsed));

    ExecOptions pushdown;
    ExecOptions post_filter;
    post_filter.use_value_index = false;

    struct Mode {
      QueryEngine* engine;
      const ExecOptions* options;
      const char* label;
    };
    const Mode modes[] = {
        {amber_.get(), &pushdown, "AMbER"},
        {amber_.get(), &post_filter, "AMbER-postfilter"},
        {streamed_.get(), &pushdown, "AMbER-streamed"},
        {mapped_.get(), &pushdown, "AMbER-mmap"},
        {store_.get(), &pushdown, "TripleStore"},
        {store_naive_.get(), &pushdown, "TripleStore-naive"},
        {graph_bt_.get(), &pushdown, "GraphBT"},
    };
    for (const Mode& mode : modes) {
      auto rows = mode.engine->Materialize(*parsed, *mode.options);
      ASSERT_TRUE(rows.ok()) << mode.label << ": " << rows.status();
      EXPECT_EQ(testutil::CanonicalRows(rows->rows), expected)
          << mode.label << " disagrees with the oracle";
      auto count = mode.engine->Count(*parsed, *mode.options);
      ASSERT_TRUE(count.ok()) << mode.label;
      EXPECT_EQ(count->count, expected.size())
          << mode.label << " count() disagrees with materialize()";
    }
  }

  std::vector<Triple> data_;
  std::unique_ptr<AmberEngine> amber_, streamed_, mapped_;
  std::unique_ptr<TripleStoreEngine> store_, store_naive_;
  std::unique_ptr<GraphBacktrackEngine> graph_bt_;
};

TEST_F(CrossEngineFilterTest, HandcraftedFilterQueriesAgree) {
  const char* queries[] = {
      // Plain ranges over a numeric predicate (core vertex seed).
      "SELECT ?x WHERE { ?x <urn:num0> ?a . FILTER(?a > 20) }",
      "SELECT ?x WHERE { ?x <urn:num0> ?a . FILTER(?a >= 10 && ?a <= 30) }",
      "SELECT ?x WHERE { ?x <urn:num1> ?a . FILTER(?a != 25) }",
      "SELECT ?x WHERE { ?x <urn:num0> ?a . FILTER(?a = 7) }",
      "SELECT ?x WHERE { ?x <urn:num0> ?a . FILTER(?a < 49 && ?a != 3) }",
      // Empty and full ranges.
      "SELECT ?x WHERE { ?x <urn:num0> ?a . FILTER(?a > 100) }",
      "SELECT ?x WHERE { ?x <urn:num0> ?a . FILTER(?a >= 0) }",
      "SELECT ?x WHERE { ?x <urn:num0> ?a . FILTER(?a > 30 && ?a < 10) }",
      // String comparisons over the shared v0..v3 literal pool.
      "SELECT ?x WHERE { ?x <urn:p0> ?s . FILTER(?s >= \"v1\") }",
      "SELECT ?x WHERE { ?x <urn:p1> ?s . FILTER(?s = \"v2\") }",
      "SELECT ?x WHERE { ?x <urn:p0> ?s . FILTER(?s != \"v0\" && "
      "?s < \"v3\") }",
      // Kind mismatch: numeric constant against a string-valued predicate.
      "SELECT ?x WHERE { ?x <urn:p0> ?s . FILTER(?s > 5) }",
      // Structural joins around the filtered vertex.
      "SELECT ?x ?y WHERE { ?x <urn:p0> ?y . ?x <urn:num0> ?a . "
      "FILTER(?a < 25) }",
      "SELECT ?x ?y WHERE { ?x <urn:p1> ?y . ?y <urn:num0> ?a . "
      "FILTER(?a > 5) }",
      "SELECT ?x WHERE { ?x <urn:p0> ?y . ?y <urn:p1> ?x . "
      "?x <urn:num1> ?a . FILTER(?a >= 12) }",
      // Two filtered predicates on one vertex; filters on two vertices.
      "SELECT ?x WHERE { ?x <urn:num0> ?a . ?x <urn:num1> ?b . "
      "FILTER(?a > 10) FILTER(?b < 40) }",
      "SELECT ?x ?y WHERE { ?x <urn:p0> ?y . ?x <urn:num0> ?a . "
      "?y <urn:num1> ?b . FILTER(?a > 5 && ?a < 45) FILTER(?b != 20) }",
      // Constant subject (ground predicate check).
      "SELECT ?z WHERE { <urn:e1> <urn:num0> ?a . ?z <urn:p0> <urn:e1> . "
      "FILTER(?a >= 0) }",
      "SELECT ?z WHERE { <urn:e1> <urn:num0> ?a . ?z <urn:p0> <urn:e1> . "
      "FILTER(?a > 99) }",
      // DISTINCT + LIMIT-free dedup over the filtered existential.
      "SELECT DISTINCT ?x WHERE { ?x <urn:p0> ?y . ?x <urn:num0> ?a . "
      "FILTER(?a <= 40) }",
      // SELECT * excludes the filtered literal variable.
      "SELECT * WHERE { ?x <urn:p0> ?y . ?x <urn:num0> ?a . "
      "FILTER(?a > 15) }",
      // Unknown attribute predicate: provably unsatisfiable.
      "SELECT ?x WHERE { ?x <urn:nosuch> ?a . FILTER(?a > 1) }",
  };
  for (const char* text : queries) CheckQuery(text);
}

TEST_F(CrossEngineFilterTest, RandomFilterQueriesAgree) {
  for (int qi = 0; qi < 25; ++qi) {
    CheckQuery(testutil::RandomFilterQueryFromData(data_, 9100 + qi, 3));
  }
}

// Star-heavy queries stress the satellite fast path specifically.
TEST(CrossEngineStarTest, StarQueriesAgree) {
  auto data = testutil::RandomDataset(123, 6, 60, 3);
  auto amber = AmberEngine::Build(data);
  ASSERT_TRUE(amber.ok());
  auto store = TripleStoreEngine::Build(data);
  ASSERT_TRUE(store.ok());
  testutil::BruteForceReference oracle(data);

  const char* star_queries[] = {
      "SELECT ?c ?a ?b WHERE { ?c <urn:p0> ?a . ?c <urn:p1> ?b . }",
      "SELECT ?c WHERE { ?c <urn:p0> ?a . ?c <urn:p0> ?b . ?x <urn:p1> ?c }",
      "SELECT ?a ?b ?c ?d WHERE { ?c <urn:p0> ?a . ?c <urn:p1> ?b . "
      "?c <urn:p2> ?d . }",
      "SELECT ?c ?a WHERE { ?c <urn:p0> ?a . ?a <urn:p0> ?c . }",
  };
  for (const char* text : star_queries) {
    SCOPED_TRACE(text);
    auto parsed = SparqlParser::Parse(text);
    ASSERT_TRUE(parsed.ok());
    auto expected = testutil::CanonicalRows(oracle.Evaluate(*parsed));
    auto amber_rows = amber->Materialize(*parsed, {});
    ASSERT_TRUE(amber_rows.ok());
    EXPECT_EQ(testutil::CanonicalRows(amber_rows->rows), expected) << "AMbER";
    auto store_rows = store->Materialize(*parsed, {});
    ASSERT_TRUE(store_rows.ok());
    EXPECT_EQ(testutil::CanonicalRows(store_rows->rows), expected)
        << "TripleStore";
  }
}

// Factorized differential: every artifact form (fresh build, stream
// round-trip, mmap'ed AMF) × serial/parallel × result form (flat,
// factorized, auto) must materialize the exact same row vectors — order
// included — and the factorized handles must agree on totals. DISTINCT and
// tight LIMIT/OFFSET queries ride along because they exercise the
// group-dedup fallback and the truncation bookkeeping.
TEST(CrossEngineFactorizedTest, ArtifactsAgreeAcrossResultForms) {
  auto data = testutil::RandomDataset(77, 14, 70, 3);
  auto fresh = AmberEngine::Build(data);
  ASSERT_TRUE(fresh.ok()) << fresh.status();

  std::stringstream ss;
  ASSERT_TRUE(fresh->Save(ss).ok());
  auto streamed = AmberEngine::Load(ss);
  ASSERT_TRUE(streamed.ok()) << streamed.status();

  const std::string path = testing::TempDir() + "/cross_fact_" +
                           std::to_string(::getpid()) + ".amf";
  ASSERT_TRUE(fresh->SaveFile(path).ok());
  auto mapped = AmberEngine::OpenFile(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();

  struct EngineUnderTest {
    AmberEngine* engine;
    const char* label;
  };
  const EngineUnderTest engines[] = {{&fresh.value(), "fresh"},
                                     {&streamed.value(), "streamed"},
                                     {&mapped.value(), "mapped"}};

  std::vector<std::string> queries = {
      "SELECT DISTINCT ?a ?b WHERE { ?a <urn:p0> ?b . }",
      "SELECT ?a ?b ?c WHERE { ?a <urn:p0> ?b . ?a <urn:p1> ?c . } LIMIT 5",
  };
  for (int qi = 0; qi < 5; ++qi) {
    queries.push_back(testutil::RandomQueryFromData(data, 770 + qi, 3));
  }

  for (const std::string& text : queries) {
    SCOPED_TRACE("query:\n" + text);
    auto parsed = SparqlParser::Parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();

    // Reference: fresh engine, serial, flat.
    auto want = fresh->Materialize(*parsed, {});
    ASSERT_TRUE(want.ok());

    for (const EngineUnderTest& e : engines) {
      for (int threads : {1, 3}) {
        for (ResultForm form :
             {ResultForm::kFlat, ResultForm::kFactorized, ResultForm::kAuto}) {
          ExecOptions opts;
          opts.num_threads = threads;
          opts.result_form = form;
          auto got = e.engine->Materialize(*parsed, opts);
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(got->rows, want->rows)
              << e.label << " threads=" << threads
              << " form=" << static_cast<int>(form);
        }

        ExecOptions fopts;
        fopts.num_threads = threads;
        fopts.result_form = ResultForm::kFactorized;
        auto fact = e.engine->Factorize(*parsed, fopts);
        ASSERT_TRUE(fact.ok()) << fact.status();
        const uint64_t cap = EffectiveRowCap(*parsed, fopts);
        const uint64_t want_total =
            cap == 0
                ? want->rows.size()
                : std::min<uint64_t>(want->rows.size(), fact->result.total_rows);
        std::vector<std::vector<std::string>> expanded;
        FactorizedResult::Cursor cur = fact->result.Expand();
        while (expanded.size() < want->rows.size() && cur.Next()) {
          expanded.push_back(e.engine->TranslateRow(cur.Row()));
        }
        ASSERT_GE(fact->result.total_rows, want_total) << e.label;
        EXPECT_EQ(expanded,
                  std::vector<std::vector<std::string>>(
                      want->rows.begin(), want->rows.begin() + expanded.size()))
            << e.label << " threads=" << threads;
        EXPECT_GE(expanded.size(),
                  std::min<uint64_t>(want->rows.size(),
                                     fact->result.total_rows))
            << e.label;
      }
    }
  }
}

}  // namespace
}  // namespace amber
