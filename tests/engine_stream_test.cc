// Engine-level streaming (QueryEngine::Stream): rows leave through the
// RowSink in exact Materialize order — serial, parallel (the ordered
// chunk fan-in), DISTINCT, LIMIT — so a streamed result is bit-identical
// to the materialized one, and a stopped stream is an exact prefix.
// Also covers the base-class materialize-and-replay default against a
// baseline engine.

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "baseline/triple_store.h"
#include "core/amber_engine.h"
#include "test_util.h"

namespace amber {
namespace {

AmberEngine MustBuild(const std::vector<Triple>& data) {
  auto engine = AmberEngine::Build(data);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).value();
}

/// Collects streamed rows; optionally stops after `stop_after` rows.
class CollectingRowSink : public RowSink {
 public:
  explicit CollectingRowSink(uint64_t stop_after = 0)
      : stop_after_(stop_after) {}

  bool OnRow(std::span<const std::string> row) override {
    // Reject (without storing) once the quota is reached: StreamResult::rows
    // counts ACCEPTED rows, so collected == reported by construction.
    if (stop_after_ != 0 && rows_.size() >= stop_after_) return false;
    rows_.emplace_back(row.begin(), row.end());
    return true;
  }

  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  uint64_t stop_after_;
  std::vector<std::vector<std::string>> rows_;
};

/// The mixed query shapes every test streams: random conjunctive queries
/// plus explicit DISTINCT and LIMIT forms.
std::vector<std::string> QueryTexts(const std::vector<Triple>& data) {
  std::vector<std::string> texts;
  for (int qi = 0; qi < 6; ++qi) {
    texts.push_back(testutil::RandomQueryFromData(data, 1500 + qi, 3));
  }
  texts.push_back("SELECT DISTINCT ?a WHERE { ?a <urn:p0> ?b . }");
  texts.push_back(
      "SELECT DISTINCT ?a ?c WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . }");
  texts.push_back(
      "SELECT ?a ?c WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . } LIMIT 7");
  return texts;
}

/// Streams `text` under `options` and checks the result is bit-identical
/// to the SERIAL materialized reference (rows, order, var names, counts).
void CheckStreamMatchesSerialReference(AmberEngine& engine,
                                       const std::string& text,
                                       const ExecOptions& options) {
  SCOPED_TRACE(text);
  ExecOptions serial;  // num_threads = 1: THE reference semantics
  serial.max_rows = options.max_rows;
  auto ref = engine.MaterializeSparql(text, serial);
  ASSERT_TRUE(ref.ok()) << ref.status();

  CollectingRowSink sink;
  auto streamed = engine.StreamSparql(text, options, &sink);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  EXPECT_EQ(streamed->var_names, ref->var_names);
  EXPECT_EQ(sink.rows(), ref->rows);
  EXPECT_EQ(streamed->rows, ref->rows.size());
  EXPECT_EQ(streamed->stats.rows, ref->rows.size());
  EXPECT_FALSE(streamed->sink_stopped);
  EXPECT_EQ(streamed->stats.truncated, ref->stats.truncated);
}

class AmberEngineStreamTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new std::vector<Triple>(testutil::RandomDataset(61, 18, 110, 3));
    engine_ = new AmberEngine(MustBuild(*data_));
    texts_ = new std::vector<std::string>(QueryTexts(*data_));
  }
  static void TearDownTestSuite() {
    delete texts_;
    delete engine_;
    delete data_;
    texts_ = nullptr;
    engine_ = nullptr;
    data_ = nullptr;
  }

  static std::vector<Triple>* data_;
  static AmberEngine* engine_;
  static std::vector<std::string>* texts_;
};

std::vector<Triple>* AmberEngineStreamTest::data_ = nullptr;
AmberEngine* AmberEngineStreamTest::engine_ = nullptr;
std::vector<std::string>* AmberEngineStreamTest::texts_ = nullptr;

TEST_F(AmberEngineStreamTest, SerialStreamMatchesMaterialize) {
  for (const std::string& text : *texts_) {
    CheckStreamMatchesSerialReference(*engine_, text, ExecOptions{});
  }
}

TEST_F(AmberEngineStreamTest, ParallelStreamMatchesSerialMaterialize) {
  ExecOptions options;
  options.num_threads = 4;
  for (const std::string& text : *texts_) {
    CheckStreamMatchesSerialReference(*engine_, text, options);
  }
}

TEST_F(AmberEngineStreamTest, TinyChunkBufferStillDeterministic) {
  // buffer_rows = 1 forces maximal backpressure: every non-head producer
  // blocks after one row. Order and content must not change.
  ExecOptions options;
  options.num_threads = 4;
  options.stream_chunk_buffer_rows = 1;
  for (const std::string& text : *texts_) {
    CheckStreamMatchesSerialReference(*engine_, text, options);
  }
}

TEST_F(AmberEngineStreamTest, MaxRowsCapsStream) {
  ExecOptions options;
  options.max_rows = 5;
  for (const std::string& text : *texts_) {
    CheckStreamMatchesSerialReference(*engine_, text, options);
  }
  ExecOptions parallel = options;
  parallel.num_threads = 3;
  for (const std::string& text : *texts_) {
    CheckStreamMatchesSerialReference(*engine_, text, parallel);
  }
}

TEST_F(AmberEngineStreamTest, SinkStopDeliversExactPrefix) {
  for (int threads : {1, 4}) {
    ExecOptions options;
    options.num_threads = threads;
    for (const std::string& text : *texts_) {
      SCOPED_TRACE(text + " threads=" + std::to_string(threads));
      auto ref = engine_->MaterializeSparql(text, ExecOptions{});
      ASSERT_TRUE(ref.ok()) << ref.status();
      if (ref->rows.size() < 2) continue;
      const uint64_t stop_after = ref->rows.size() / 2;
      CollectingRowSink sink(stop_after);
      auto streamed = engine_->StreamSparql(text, options, &sink);
      ASSERT_TRUE(streamed.ok()) << streamed.status();
      EXPECT_TRUE(streamed->sink_stopped);
      EXPECT_EQ(streamed->rows, stop_after);
      ASSERT_EQ(sink.rows().size(), stop_after);
      for (size_t i = 0; i < stop_after; ++i) {
        EXPECT_EQ(sink.rows()[i], ref->rows[i]) << "row " << i;
      }
    }
  }
}

TEST_F(AmberEngineStreamTest, BaseEngineMaterializeReplay) {
  // The QueryEngine default (materialize, then replay through the sink)
  // gives every baseline engine the same streaming surface.
  auto store = TripleStoreEngine::Build(*data_);
  ASSERT_TRUE(store.ok()) << store.status();
  for (const std::string& text : *texts_) {
    SCOPED_TRACE(text);
    auto ref = store->MaterializeSparql(text, ExecOptions{});
    ASSERT_TRUE(ref.ok()) << ref.status();
    CollectingRowSink sink;
    auto streamed = store->StreamSparql(text, ExecOptions{}, &sink);
    ASSERT_TRUE(streamed.ok()) << streamed.status();
    EXPECT_EQ(sink.rows(), ref->rows);
    EXPECT_EQ(streamed->rows, ref->rows.size());
    // Prefix property holds on the replay path too.
    if (ref->rows.size() >= 2) {
      CollectingRowSink prefix(1);
      auto stopped = store->StreamSparql(text, ExecOptions{}, &prefix);
      ASSERT_TRUE(stopped.ok()) << stopped.status();
      EXPECT_TRUE(stopped->sink_stopped);
      ASSERT_EQ(prefix.rows().size(), 1u);
      EXPECT_EQ(prefix.rows()[0], ref->rows[0]);
    }
  }
}

}  // namespace
}  // namespace amber
