// Chaos battery for the hardened serving runtime: randomized, seed-logged
// fault schedules (transient kUnavailable, allocation-pressure
// kResourceExhausted, permanent kInternal, latency padding) armed at the
// service.execute / engine.execute / parallel.chunk sites while 8
// concurrent clients hammer one QueryService over every engine restore
// path (fresh build, stream Load, mmap OpenFile). The invariants, per
// response, every schedule:
//
//   - a clean success is bit-identical to the serial fault-free reference
//     (rows, row order, var names, totals);
//   - a failure is one of the injected codes or admission's
//     kResourceExhausted — never a crash, a hang, or a garbled row;
//   - a timeout is a RESPONSE (timed_out set), possibly partial by
//     contract, and is the only shape allowed to differ from reference.
//
// A separate window (counting global allocator, matcher_alloc style)
// proves whole schedules — faults, retries, evictions, coalesced flights,
// service teardown — leak not one live heap allocation. Every schedule
// logs its seed so any failure replays exactly.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/amber_engine.h"
#include "server/query_service.h"
#include "test_util.h"
#include "util/fault_injector.h"

namespace {
std::atomic<int64_t> g_live_allocs{0};
}  // namespace

// Global allocator replacement tracking LIVE allocations (news minus
// deletes): a balanced diff around a chaos window proves the service
// released every byte it touched, faults and all. Every form routes
// through malloc/free so plain and sized/aligned news and deletes pair.
void* operator new(std::size_t size) {
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept {
  if (p) g_live_allocs.fetch_sub(1, std::memory_order_relaxed);
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete(void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}

namespace amber {
namespace {

AmberEngine MustBuild(const std::vector<Triple>& data) {
  auto engine = AmberEngine::Build(data);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).value();
}

/// One (query text, request shape) with its fault-free serial reference.
struct ChaosCase {
  std::string text;
  RequestOptions request;
  std::vector<std::string> want_var_names;
  std::vector<std::vector<std::string>> want_rows;
  uint64_t want_total = 0;
  bool want_truncated = false;
};

/// The fixed request shapes every query text is exercised through.
std::vector<RequestOptions> RequestShapes() {
  std::vector<RequestOptions> shapes;
  shapes.push_back({});  // full materialize
  RequestOptions page;
  page.offset = 2;
  page.limit = 3;
  shapes.push_back(page);
  RequestOptions count;
  count.count_only = true;
  shapes.push_back(count);
  return shapes;
}

/// Builds the chaos workload with references from a clean serial service
/// over `reference` (no faults armed when this runs).
std::vector<ChaosCase> BuildCases(AmberEngine& reference,
                                  const std::vector<Triple>& data) {
  std::vector<std::string> texts;
  for (int qi = 0; qi < 4; ++qi) {
    texts.push_back(testutil::RandomQueryFromData(data, 700 + qi, 3));
  }
  texts.push_back("SELECT DISTINCT ?a WHERE { ?a <urn:p0> ?b . }");
  texts.push_back(
      "SELECT ?a ?c WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . } LIMIT 7");

  ServiceOptions serial;
  serial.pool_threads = 1;
  serial.cache_entries = 0;  // every reference is a fresh execution
  QueryService service(&reference, serial);

  std::vector<ChaosCase> cases;
  for (const std::string& text : texts) {
    for (const RequestOptions& shape : RequestShapes()) {
      auto resp = service.Query(text, shape);
      EXPECT_TRUE(resp.ok()) << resp.status() << "\n" << text;
      if (!resp.ok()) continue;
      EXPECT_FALSE(resp->timed_out);
      ChaosCase c;
      c.text = text;
      c.request = shape;
      c.want_var_names = resp->var_names;
      c.want_rows = resp->rows;
      c.want_total = resp->total_rows;
      c.want_truncated = resp->truncated;
      cases.push_back(std::move(c));
    }
  }
  return cases;
}

/// Arms a randomized, replayable fault schedule drawn from `rng` on the
/// serving-path sites (plus the page-handoff site for stream schedules).
/// Returns a description for failure logs.
std::string ArmRandomSchedule(std::mt19937_64& rng,
                              bool with_stream_site = false) {
  std::vector<const char*> sites = {faults::kServiceExecute,
                                    faults::kEngineExecute,
                                    faults::kParallelChunk};
  if (with_stream_site) sites.push_back(faults::kServiceStream);
  const StatusCode codes[] = {
      StatusCode::kUnavailable,       // transient (retried)
      StatusCode::kUnavailable,       // biased: transients dominate
      StatusCode::kInternal,          // permanent
      StatusCode::kResourceExhausted  // allocation pressure
  };
  std::string desc;
  for (const char* site : sites) {
    // Each site is armed with probability 2/3 — except the last, which is
    // forced on when the draw left everything disarmed so every schedule
    // injects SOMETHING.
    if (rng() % 3 == 0 && !(desc.empty() && site == sites.back())) continue;
    FaultSpec spec;
    spec.code = codes[rng() % 4];
    switch (rng() % 3) {
      case 0:
        spec.probability = 0.05 + static_cast<double>(rng() % 30) / 100.0;
        spec.seed = rng() | 1;
        break;
      case 1:
        spec.fail_every = 2 + rng() % 4;
        break;
      default:
        spec.fail_nth = 1 + rng() % 5;
        break;
    }
    if (rng() % 3 == 0) spec.delay = std::chrono::milliseconds(1);
    FaultInjector::Global().Arm(site, spec);
    desc += std::string(site) + " code=" +
            std::to_string(static_cast<int>(spec.code)) + "; ";
  }
  return desc;
}

/// Random ServiceOptions for one schedule: every robustness knob varies.
ServiceOptions RandomOptions(std::mt19937_64& rng) {
  ServiceOptions options;
  options.pool_threads = 2;
  options.max_in_flight = 4 + rng() % 5;
  options.max_queued = rng() % 9;
  options.default_thread_budget = 1 + rng() % 3;
  options.cache_entries = (rng() % 2 == 0) ? 8 : 0;
  options.cache_bytes = (rng() % 2 == 0) ? (16ull << 10) : (64ull << 20);
  options.single_flight = rng() % 2 == 0;
  options.max_retries = rng() % 3;
  options.initial_backoff = std::chrono::milliseconds(1);
  options.shed_high_water = (rng() % 2 == 0) ? 2 : 0;
  options.shed_thread_budget = 1;
  if (rng() % 4 == 0) {
    options.default_deadline = std::chrono::milliseconds(25);
  }
  return options;
}

/// Runs one schedule: 8 clients × 3 requests against `engine` under the
/// armed faults, checking every response against its reference.
void RunOneSchedule(QueryEngine* engine, const std::vector<ChaosCase>& cases,
                    uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::string faults_desc = ArmRandomSchedule(rng);
  // The replay handle: every assertion below carries it (SCOPED_TRACE is
  // thread-local, so client-thread failures must embed it themselves).
  const std::string trace = " [chaos seed=" + std::to_string(seed) +
                            " faults: " + faults_desc + "]";
  const ServiceOptions options = RandomOptions(rng);
  {
    QueryService service(engine, options);
    constexpr int kClients = 8;
    constexpr int kRequestsPerClient = 3;
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int ci = 0; ci < kClients; ++ci) {
      const uint64_t client_seed = seed ^ (0x9E3779B97F4A7C15ull * (ci + 1));
      clients.emplace_back([&service, &cases, &trace, client_seed] {
        std::mt19937_64 crng(client_seed);
        for (int qi = 0; qi < kRequestsPerClient; ++qi) {
          const ChaosCase& c = cases[crng() % cases.size()];
          RequestOptions req = c.request;
          req.thread_budget = 1 + crng() % 3;
          if (crng() % 8 == 0) req.bypass_cache = true;
          auto resp = service.Query(c.text, req);
          if (!resp.ok()) {
            // Failures must be clean, known codes: the injected ones or
            // admission's rejection — nothing else, ever.
            const StatusCode code = resp.status().code();
            EXPECT_TRUE(code == StatusCode::kUnavailable ||
                        code == StatusCode::kInternal ||
                        code == StatusCode::kResourceExhausted)
                << resp.status() << trace;
            continue;
          }
          // A timeout is a response and may hold a partial (prefix) row
          // set by contract; anything else must match the reference bit
          // for bit.
          if (resp->timed_out) continue;
          EXPECT_EQ(resp->var_names, c.want_var_names) << c.text << trace;
          EXPECT_EQ(resp->rows, c.want_rows) << c.text << trace;
          EXPECT_EQ(resp->total_rows, c.want_total) << c.text << trace;
          EXPECT_EQ(resp->truncated, c.want_truncated) << c.text << trace;
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  FaultInjector::Global().Reset();
}

// ---------------------------------------------------------------------------
// Streaming chaos: randomized mid-stream abandonment schedules.

/// One streamable query with its full-result serial reference (the plain,
/// unpaginated shapes of the materializing workload).
struct StreamCase {
  std::string text;
  std::vector<std::string> want_var_names;
  std::vector<std::vector<std::string>> want_rows;
};

std::vector<StreamCase> StreamCasesFrom(const std::vector<ChaosCase>& cases) {
  std::vector<StreamCase> out;
  for (const ChaosCase& c : cases) {
    if (c.request.count_only || c.request.offset != 0 ||
        c.request.limit != 0) {
      continue;
    }
    out.push_back({c.text, c.want_var_names, c.want_rows});
  }
  return out;
}

/// Chaos page consumer: collects rows, asserts page continuity as pages
/// arrive, and — per its mode — aborts or trips the client token after a
/// drawn number of pages (mid-stream abandonment).
class ChaosPageSink : public PageSink {
 public:
  bool OnPage(StreamPage&& page) override {
    EXPECT_EQ(page.first_row, rows.size())
        << "page skipped or repeated" << *trace;
    for (auto& row : page.rows) rows.push_back(std::move(row));
    ++pages;
    if (page.last) saw_last = true;
    if (cancel_after_pages != 0 && pages >= cancel_after_pages &&
        cancel_source != nullptr) {
      cancel_source->Cancel();
    }
    return abort_after_pages == 0 || pages < abort_after_pages;
  }

  const std::string* trace = nullptr;
  std::vector<std::vector<std::string>> rows;
  uint64_t pages = 0;
  bool saw_last = false;
  uint64_t abort_after_pages = 0;
  uint64_t cancel_after_pages = 0;
  CancellationSource* cancel_source = nullptr;
};

/// Runs one streaming schedule: 6 clients × 3 requests mixing full
/// consumption, sink aborts, token trips after K pages, pre-cancelled
/// materializing requests and delayed cancels (token trips during retry
/// backoff) — under randomized faults on all four serving-path sites.
/// Invariants, per response:
///
///   - an error is one of the injected codes or admission's rejection;
///   - an ok stream ends in EXACTLY one of complete/cancelled/timed_out;
///   - the streamed rows are a bit-identical PREFIX of the serial
///     reference (the full reference when complete).
void RunOneStreamSchedule(QueryEngine* engine,
                          const std::vector<StreamCase>& cases,
                          uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::string faults_desc =
      ArmRandomSchedule(rng, /*with_stream_site=*/true);
  const std::string trace = " [stream-chaos seed=" + std::to_string(seed) +
                            " faults: " + faults_desc + "]";
  ServiceOptions options = RandomOptions(rng);
  options.stream_page_rows = 1 + rng() % 4;
  if (rng() % 2 == 0) options.stream_buffer_bytes = 64 + rng() % 256;
  {
    QueryService service(engine, options);
    constexpr int kClients = 6;
    constexpr int kRequestsPerClient = 3;
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int ci = 0; ci < kClients; ++ci) {
      const uint64_t client_seed = seed ^ (0xD1B54A32D192ED03ull * (ci + 1));
      clients.emplace_back([&service, &cases, &trace, client_seed] {
        std::mt19937_64 crng(client_seed);
        for (int qi = 0; qi < kRequestsPerClient; ++qi) {
          const StreamCase& c = cases[crng() % cases.size()];
          RequestOptions req;
          req.thread_budget = 1 + crng() % 3;
          const int mode = crng() % 5;

          if (mode == 3) {
            // Pre-cancelled materializing request: must answer cancelled
            // (or time out in the queue / fail with an injected code) —
            // and must never reach a full execution.
            CancellationSource client_cancel;
            client_cancel.Cancel();
            req.cancel = client_cancel.token();
            auto resp = service.Query(c.text, req);
            if (resp.ok()) {
              // A pre-cancelled request never EXECUTES — but an already
              // materialized answer (cache hit, single-flight attach) may
              // still be served, and then it must be the full reference.
              EXPECT_TRUE(resp->cancelled || resp->timed_out ||
                          resp->cache_hit)
                  << trace;
              if (resp->cache_hit && !resp->cancelled && !resp->timed_out) {
                EXPECT_EQ(resp->rows, c.want_rows) << c.text << trace;
              }
            }
            continue;
          }
          if (mode == 4) {
            // Delayed trip: lands before, during (backoff included) or
            // after the execution — every landing must classify cleanly.
            CancellationSource client_cancel;
            req.cancel = client_cancel.token();
            std::thread canceller([&client_cancel, &crng] {
              std::this_thread::sleep_for(
                  std::chrono::milliseconds(crng() % 8));
              client_cancel.Cancel();
            });
            auto resp = service.Query(c.text, req);
            canceller.join();
            if (resp.ok() && !resp->cancelled && !resp->timed_out) {
              EXPECT_EQ(resp->rows, c.want_rows) << c.text << trace;
            }
            continue;
          }

          CancellationSource client_cancel;
          ChaosPageSink sink;
          sink.trace = &trace;
          if (mode == 1) sink.abort_after_pages = 1 + crng() % 3;
          if (mode == 2) {
            sink.cancel_after_pages = 1 + crng() % 3;
            sink.cancel_source = &client_cancel;
            req.cancel = client_cancel.token();
          }
          auto resp = service.QueryStream(c.text, req, &sink);
          if (!resp.ok()) {
            const StatusCode code = resp.status().code();
            EXPECT_TRUE(code == StatusCode::kUnavailable ||
                        code == StatusCode::kInternal ||
                        code == StatusCode::kResourceExhausted)
                << resp.status() << trace;
          } else {
            EXPECT_EQ((resp->complete ? 1 : 0) + (resp->cancelled ? 1 : 0) +
                          (resp->timed_out ? 1 : 0),
                      1)
                << trace;
            if (resp->complete) {
              EXPECT_TRUE(sink.saw_last) << trace;
              EXPECT_EQ(sink.rows, c.want_rows) << c.text << trace;
            }
          }
          // Delivered pages are ALWAYS a bit-identical prefix of the
          // serial reference — complete, abandoned, timed out or errored
          // mid-stream alike.
          ASSERT_LE(sink.rows.size(), c.want_rows.size()) << c.text << trace;
          for (size_t i = 0; i < sink.rows.size(); ++i) {
            ASSERT_EQ(sink.rows[i], c.want_rows[i])
                << "prefix diverged at row " << i << ": " << c.text << trace;
          }
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  FaultInjector::Global().Reset();
}

constexpr int kSchedulesPerEngine = 70;

class QueryServiceChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new std::vector<Triple>(testutil::RandomDataset(41, 14, 80, 3));
    fresh_ = new AmberEngine(MustBuild(*data_));
    cases_ = new std::vector<ChaosCase>(BuildCases(*fresh_, *data_));
    ASSERT_FALSE(cases_->empty());

    std::stringstream buffer;
    ASSERT_TRUE(fresh_->Save(buffer).ok());
    auto loaded = AmberEngine::Load(buffer);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    stream_ = new AmberEngine(std::move(loaded).value());

    mmap_path_ = new std::string("/tmp/amber_chaos_" +
                                 std::to_string(::getpid()) + ".amf");
    ASSERT_TRUE(fresh_->SaveFile(*mmap_path_).ok());
    auto mapped = AmberEngine::OpenFile(*mmap_path_);
    ASSERT_TRUE(mapped.ok()) << mapped.status();
    mmap_ = new AmberEngine(std::move(mapped).value());
  }

  static void TearDownTestSuite() {
    delete mmap_;
    std::remove(mmap_path_->c_str());
    delete mmap_path_;
    delete stream_;
    delete cases_;
    delete fresh_;
    delete data_;
    mmap_ = stream_ = fresh_ = nullptr;
    mmap_path_ = nullptr;
    cases_ = nullptr;
    data_ = nullptr;
  }

  static std::vector<Triple>* data_;
  static AmberEngine* fresh_;
  static AmberEngine* stream_;
  static AmberEngine* mmap_;
  static std::string* mmap_path_;
  static std::vector<ChaosCase>* cases_;
};

std::vector<Triple>* QueryServiceChaosTest::data_ = nullptr;
AmberEngine* QueryServiceChaosTest::fresh_ = nullptr;
AmberEngine* QueryServiceChaosTest::stream_ = nullptr;
AmberEngine* QueryServiceChaosTest::mmap_ = nullptr;
std::string* QueryServiceChaosTest::mmap_path_ = nullptr;
std::vector<ChaosCase>* QueryServiceChaosTest::cases_ = nullptr;

TEST_F(QueryServiceChaosTest, FreshEngineSurvivesRandomSchedules) {
  for (int s = 0; s < kSchedulesPerEngine; ++s) {
    RunOneSchedule(fresh_, *cases_, 0x0F00D000ull + s);
  }
}

TEST_F(QueryServiceChaosTest, StreamLoadedEngineSurvivesRandomSchedules) {
  for (int s = 0; s < kSchedulesPerEngine; ++s) {
    RunOneSchedule(stream_, *cases_, 0x5EED1000ull + s);
  }
}

TEST_F(QueryServiceChaosTest, MmapEngineSurvivesRandomSchedules) {
  for (int s = 0; s < kSchedulesPerEngine; ++s) {
    RunOneSchedule(mmap_, *cases_, 0xCAFE2000ull + s);
  }
}

TEST_F(QueryServiceChaosTest, StreamingSchedulesSurviveChaos) {
  const std::vector<StreamCase> stream_cases = StreamCasesFrom(*cases_);
  ASSERT_FALSE(stream_cases.empty());
  for (int s = 0; s < 30; ++s) {
    RunOneStreamSchedule(fresh_, stream_cases, 0x57AE3000ull + s);
  }
}

TEST_F(QueryServiceChaosTest, MmapStreamingSchedulesSurviveChaos) {
  const std::vector<StreamCase> stream_cases = StreamCasesFrom(*cases_);
  ASSERT_FALSE(stream_cases.empty());
  for (int s = 0; s < 15; ++s) {
    RunOneStreamSchedule(mmap_, stream_cases, 0x57AE4000ull + s);
  }
}

TEST_F(QueryServiceChaosTest, StreamingSchedulesLeakNoAllocations) {
  const std::vector<StreamCase> stream_cases = StreamCasesFrom(*cases_);
  ASSERT_FALSE(stream_cases.empty());
  // Warm-up settles lazy one-shot allocations (see below).
  RunOneStreamSchedule(fresh_, stream_cases, 0x57AEA000ull);
  RunOneStreamSchedule(fresh_, stream_cases, 0x57AEA001ull);

  const int64_t live_before = g_live_allocs.load(std::memory_order_relaxed);
  for (int s = 0; s < 8; ++s) {
    RunOneStreamSchedule(fresh_, stream_cases, 0x57AEA100ull + s);
  }
  const int64_t live_after = g_live_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(live_after - live_before, 0)
      << "streaming chaos schedules leaked " << (live_after - live_before)
      << " live heap allocations";
}

TEST_F(QueryServiceChaosTest, SchedulesLeakNoAllocations) {
  // Warm-up: settles every lazy one-shot allocation (gtest internals,
  // FaultInjector's site map buckets, thread-local machinery) before the
  // measured window.
  RunOneSchedule(fresh_, *cases_, 0xA110C000ull);
  RunOneSchedule(fresh_, *cases_, 0xA110C001ull);

  const int64_t live_before = g_live_allocs.load(std::memory_order_relaxed);
  for (int s = 0; s < 8; ++s) {
    RunOneSchedule(fresh_, *cases_, 0xA110C100ull + s);
  }
  const int64_t live_after = g_live_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(live_after - live_before, 0)
      << "chaos schedules leaked " << (live_after - live_before)
      << " live heap allocations";
}

}  // namespace
}  // namespace amber
