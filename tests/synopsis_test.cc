// Unit and property tests for vertex signatures/synopses (Section 4.2):
// field semantics, dominance, and the Lemma 1 completeness guarantee that
// synopsis dominance never prunes a true homomorphic candidate.

#include <gtest/gtest.h>

#include "graph/multigraph.h"
#include "graph/synopsis.h"
#include "test_util.h"
#include "util/random.h"

namespace amber {
namespace {

TEST(SynopsisTest, EmptyVertexIsAllZero) {
  Multigraph::Builder b;
  b.EnsureVertexCount(1);
  Multigraph g = std::move(b).Build();
  Synopsis s = ComputeVertexSynopsis(g, 0);
  for (int32_t f : s.f) EXPECT_EQ(f, 0);
}

TEST(SynopsisTest, FieldSemantics) {
  // Vertex 0: out-groups {1:{2,5}}, {2:{3}}; in-groups {3:{0}}.
  Multigraph::Builder b;
  b.AddEdge(0, 2, 1);
  b.AddEdge(0, 5, 1);
  b.AddEdge(0, 3, 2);
  b.AddEdge(3, 0, 0);
  Multigraph g = std::move(b).Build();
  Synopsis s = ComputeVertexSynopsis(g, 0);
  // In side: one multi-edge {0}: f1=1, f2=1, f3=-0, f4=0.
  EXPECT_EQ(s.f[0], 1);
  EXPECT_EQ(s.f[1], 1);
  EXPECT_EQ(s.f[2], 0);
  EXPECT_EQ(s.f[3], 0);
  // Out side: max cardinality 2, distinct types {2,3,5}, min 2, max 5.
  EXPECT_EQ(s.f[4], 2);
  EXPECT_EQ(s.f[5], 3);
  EXPECT_EQ(s.f[6], -2);
  EXPECT_EQ(s.f[7], 5);
}

TEST(SynopsisTest, DominanceIsComponentWise) {
  Synopsis big, small;
  big.f = {2, 4, -1, 6, 1, 2, 0, 2};
  small.f = {1, 1, -3, 3, 0, 0, 0, 0};
  EXPECT_TRUE(big.Dominates(small));
  EXPECT_FALSE(small.Dominates(big));
  EXPECT_TRUE(big.Dominates(big));
  // One violated field suffices.
  Synopsis q = small;
  q.f[3] = 7;  // requires max in-type >= 7
  EXPECT_FALSE(big.Dominates(q));
}

TEST(SynopsisTest, SelfLoopCountsOnBothSides) {
  Multigraph::Builder b;
  b.AddEdge(0, 4, 0);
  Multigraph g = std::move(b).Build();
  Synopsis s = ComputeVertexSynopsis(g, 0);
  EXPECT_EQ(s.f[0], 1);  // in
  EXPECT_EQ(s.f[4], 1);  // out
  EXPECT_EQ(s.f[3], 4);
  EXPECT_EQ(s.f[7], 4);
}

TEST(SynopsisTest, ComputeAllMatchesPerVertex) {
  auto triples = testutil::RandomDataset(/*seed=*/3, 40, 120, 6);
  auto encoded = EncodedDataset::Encode(triples);
  ASSERT_TRUE(encoded.ok());
  Multigraph g = Multigraph::FromDataset(*encoded);
  std::vector<Synopsis> all = ComputeAllSynopses(g);
  ASSERT_EQ(all.size(), g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(all[v], ComputeVertexSynopsis(g, v)) << "vertex " << v;
  }
}

// Lemma 1 (completeness): if there is a homomorphism mapping query vertex u
// to data vertex v, then v's synopsis dominates u's. We verify the
// contrapositive construction: embed a random sub-multigraph of the data
// around a vertex v as a "query" signature; v must dominate it.
TEST(SynopsisTest, Lemma1CompletenessProperty) {
  auto triples = testutil::RandomDataset(/*seed=*/17, 30, 150, 5);
  auto encoded = EncodedDataset::Encode(triples);
  ASSERT_TRUE(encoded.ok());
  Multigraph g = Multigraph::FromDataset(*encoded);
  Rng rng(99);

  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    // Build a query signature that drops random groups / random types from
    // v's signature — any homomorphic image of such a query fits v.
    SynopsisBuilder qb;
    for (Direction d : {Direction::kIn, Direction::kOut}) {
      const size_t n = g.GroupCount(v, d);
      for (size_t i = 0; i < n; ++i) {
        if (rng.Chance(0.4)) continue;  // drop the whole multi-edge
        GroupView view = g.Group(v, d, i);
        std::vector<EdgeTypeId> subset;
        for (EdgeTypeId t : view.types) {
          if (rng.Chance(0.7)) subset.push_back(t);
        }
        if (subset.empty()) subset.push_back(view.types[0]);
        qb.AddMultiEdge(d, subset);
      }
    }
    Synopsis query = qb.Build().NormalizedForQuery();
    Synopsis data = ComputeVertexSynopsis(g, v);
    EXPECT_TRUE(data.Dominates(query))
        << "v=" << v << " data=" << data.ToString()
        << " query=" << query.ToString();
  }
}

}  // namespace
}  // namespace amber
