// The HTTP transport (server/http_server.h) end to end over loopback:
// byte-identity with the in-process wire serialization, chunked NDJSON
// streaming (concat identity, groups-mode byte savings), client
// abandonment tripping request cancellation, transport-level error
// mapping, keep-alive, admission at the door, framing fuzz, write-fault
// chaos, and the Stop() drain contract.

#include "server/http_server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/amber_engine.h"
#include "rdf/term.h"
#include "server/http_client.h"
#include "server/query_service.h"
#include "server/wire.h"
#include "test_util.h"
#include "util/fault_injector.h"
#include "util/json.h"
#include "util/random.h"

namespace amber {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

AmberEngine MustBuild(const std::vector<Triple>& data) {
  auto engine = AmberEngine::Build(data);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).value();
}

/// A p0-chain over `n` entities (the edge query yields n-1 rows).
std::vector<Triple> ChainData(int n) {
  std::vector<Triple> data;
  auto ent = [](int i) { return Term::Iri("urn:e" + std::to_string(i)); };
  for (int i = 0; i + 1 < n; ++i) {
    data.emplace_back(ent(i), Term::Iri("urn:p0"), ent(i + 1));
  }
  return data;
}

/// `hubs` star centers, each with `fanout` private p0-satellites — the
/// factorization stressor: k satellite patterns expand to fanout^k rows
/// per hub while the groups form stays O(fanout * k).
std::vector<Triple> StarData(int hubs, int fanout) {
  std::vector<Triple> data;
  for (int h = 0; h < hubs; ++h) {
    Term hub = Term::Iri("urn:hub" + std::to_string(h));
    for (int s = 0; s < fanout; ++s) {
      data.emplace_back(hub, Term::Iri("urn:p0"),
                        Term::Iri("urn:hub" + std::to_string(h) + "sat" +
                                  std::to_string(s)));
    }
  }
  return data;
}

/// A star query with `satellites` distinct projected satellite variables
/// on one hub (the "satellite_fanout" shape of gen/workload.h).
std::string StarQuery(int satellites) {
  std::string q = "SELECT ?h";
  for (int i = 0; i < satellites; ++i) q += " ?s" + std::to_string(i);
  q += " WHERE {";
  for (int i = 0; i < satellites; ++i) {
    q += " ?h <urn:p0> ?s" + std::to_string(i) + " .";
  }
  q += " }";
  return q;
}

constexpr char kEdgeQuery[] = "SELECT ?a ?b WHERE { ?a <urn:p0> ?b . }";

/// Builds a wire request body ({"query":...} plus options).
std::string ReqBody(const std::string& query, uint64_t offset = 0,
                    uint64_t limit = 0, bool count_only = false,
                    const char* result_form = nullptr) {
  json::Writer w;
  w.BeginObject();
  w.KV("query", query);
  if (offset != 0) w.KV("offset", offset);
  if (limit != 0) w.KV("limit", limit);
  if (count_only) w.KV("count_only", true);
  w.KV("bypass_cache", true);
  if (result_form != nullptr) w.KV("result_form", result_form);
  w.EndObject();
  return w.Take();
}

/// Decodes the "rows" array of one NDJSON page line.
std::vector<std::vector<std::string>> PageRows(const std::string& line) {
  auto doc = json::Parse(line);
  EXPECT_TRUE(doc.ok()) << doc.status() << " line: " << line;
  std::vector<std::vector<std::string>> out;
  if (!doc.ok()) return out;
  const json::Value* rows = doc->Find("rows");
  if (rows == nullptr) return out;
  for (const json::Value& row : rows->array) {
    std::vector<std::string> cells;
    for (const json::Value& cell : row.array) cells.push_back(cell.str_v);
    out.push_back(std::move(cells));
  }
  return out;
}

class HttpServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new std::vector<Triple>(testutil::RandomDataset(83, 16, 90, 3));
    engine_ = new AmberEngine(MustBuild(*data_));
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete data_;
    engine_ = nullptr;
    data_ = nullptr;
  }

  static std::vector<Triple>* data_;
  static AmberEngine* engine_;
};

std::vector<Triple>* HttpServerTest::data_ = nullptr;
AmberEngine* HttpServerTest::engine_ = nullptr;

TEST_F(HttpServerTest, HealthzAndStats) {
  ServiceOptions sopts;
  sopts.pool_threads = 3;
  QueryService service(engine_, sopts);
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  HttpClient client(server.port());
  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body, "{\"status\":\"ok\"}");
  ASSERT_NE(health->Header("content-type"), nullptr);
  EXPECT_EQ(*health->Header("content-type"), "application/json");

  auto q = client.Post("/query", ReqBody(kEdgeQuery));
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->status, 200);

  auto stats = client.Get("/stats");
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->status, 200);
  auto doc = json::Parse(stats->body);
  ASSERT_TRUE(doc.ok()) << doc.status();
  const json::Value* svc = doc->Find("service");
  const json::Value* srv = doc->Find("server");
  ASSERT_NE(svc, nullptr);
  ASSERT_NE(srv, nullptr);
  ASSERT_NE(svc->Find("queries"), nullptr);
  EXPECT_GE(svc->Find("queries")->uint_v, 1u);
  ASSERT_NE(srv->Find("requests"), nullptr);
  EXPECT_GE(srv->Find("requests")->uint_v, 2u);
  EXPECT_GE(srv->Find("bytes_written")->uint_v, q->body.size());
}

// The acceptance bar of the transport: the HTTP response body for a
// /query request is byte-identical to serializing the in-process
// QueryService::Query answer of the same request.
TEST_F(HttpServerTest, QueryResponseBytesMatchInProcessWire) {
  ServiceOptions sopts;
  sopts.pool_threads = 3;
  QueryService service(engine_, sopts);
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client(server.port());

  std::vector<std::string> texts;
  for (int qi = 0; qi < 3; ++qi) {
    texts.push_back(testutil::RandomQueryFromData(*data_, 4400 + qi, 3));
  }
  texts.push_back(kEdgeQuery);
  texts.push_back("SELECT DISTINCT ?a WHERE { ?a <urn:p0> ?b . }");

  const struct {
    uint64_t offset, limit;
    bool count_only;
  } shapes[] = {{0, 0, false}, {2, 3, false}, {1, 0, false}, {0, 0, true}};

  for (const std::string& text : texts) {
    for (const auto& shape : shapes) {
      SCOPED_TRACE(text + " offset=" + std::to_string(shape.offset) +
                   " limit=" + std::to_string(shape.limit) +
                   " count=" + std::to_string(shape.count_only));
      RequestOptions request;
      request.offset = shape.offset;
      request.limit = shape.limit;
      request.count_only = shape.count_only;
      request.bypass_cache = true;
      auto ref = service.Query(text, request);
      ASSERT_TRUE(ref.ok()) << ref.status();

      auto http = client.Post(
          "/query",
          ReqBody(text, shape.offset, shape.limit, shape.count_only));
      ASSERT_TRUE(http.ok()) << http.status();
      EXPECT_EQ(http->status, 200);
      EXPECT_EQ(http->body, wire::SerializeResponse(*ref));

      // And the client-side decode round-trips the payload.
      auto decoded = wire::ParseResponse(http->body);
      ASSERT_TRUE(decoded.ok()) << decoded.status();
      EXPECT_EQ(decoded->rows, ref->rows);
      EXPECT_EQ(decoded->total_rows, ref->total_rows);
      EXPECT_EQ(decoded->var_names, ref->var_names);
    }
  }
}

TEST_F(HttpServerTest, StreamConcatenationMatchesQuery) {
  ServiceOptions sopts;
  sopts.pool_threads = 3;
  sopts.stream_page_rows = 3;
  QueryService service(engine_, sopts);
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client(server.port());

  for (int qi = 0; qi < 3; ++qi) {
    const std::string text =
        testutil::RandomQueryFromData(*data_, 5200 + qi, 3);
    SCOPED_TRACE(text);
    RequestOptions request;
    request.bypass_cache = true;
    auto ref = service.Query(text, request);
    ASSERT_TRUE(ref.ok()) << ref.status();

    auto stream = client.PostStream("/query/stream", ReqBody(text),
                                    [](std::string_view) { return true; });
    ASSERT_TRUE(stream.ok()) << stream.status();
    EXPECT_EQ(stream->status, 200);
    EXPECT_TRUE(stream->chunked_complete) << "missing 0-chunk terminator";
    ASSERT_NE(stream->Header("content-type"), nullptr);
    EXPECT_EQ(*stream->Header("content-type"), "application/x-ndjson");

    std::vector<std::string> lines = stream->Lines();
    ASSERT_FALSE(lines.empty());
    // The last line is the summary; everything before it is a page.
    auto summary = json::Parse(lines.back());
    ASSERT_TRUE(summary.ok()) << summary.status();
    const json::Value* s = summary->Find("summary");
    ASSERT_NE(s, nullptr);
    EXPECT_TRUE(s->Find("complete")->bool_v);
    EXPECT_EQ(s->Find("rows_streamed")->uint_v, ref->rows.size());

    std::vector<std::vector<std::string>> streamed;
    for (size_t i = 0; i + 1 < lines.size(); ++i) {
      for (auto& row : PageRows(lines[i])) streamed.push_back(std::move(row));
    }
    EXPECT_EQ(streamed, ref->rows);
  }
}

// PR 9's factorized compression over the wire: the same satellite-heavy
// query streamed as groups ships at least 5x fewer payload bytes than as
// rows, and client-side expansion reproduces the rows payload exactly.
TEST(HttpGroupsTest, GroupsStreamShipsAtLeastFiveTimesFewerBytes) {
  // Fanout-3 hubs, 6 satellite patterns: 3^6 = 729 rows per hub in rows
  // mode, one group of 6 short lists in groups mode.
  AmberEngine engine = MustBuild(StarData(/*hubs=*/2, /*fanout=*/3));
  ServiceOptions sopts;
  sopts.pool_threads = 3;
  QueryService service(&engine, sopts);
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client(server.port());

  const std::string text = StarQuery(/*satellites=*/6);

  auto rows_resp = client.PostStream("/query/stream", ReqBody(text),
                                     [](std::string_view) { return true; });
  ASSERT_TRUE(rows_resp.ok()) << rows_resp.status();
  ASSERT_EQ(rows_resp->status, 200);
  ASSERT_TRUE(rows_resp->chunked_complete);

  auto groups_resp =
      client.PostStream("/query/stream", ReqBody(text, 0, 0, false, "groups"),
                        [](std::string_view) { return true; });
  ASSERT_TRUE(groups_resp.ok()) << groups_resp.status();
  ASSERT_EQ(groups_resp->status, 200);
  ASSERT_TRUE(groups_resp->chunked_complete);

  // The stream really was granted groups form (no silent rows fallback).
  auto summary = json::Parse(groups_resp->Lines().back());
  ASSERT_TRUE(summary.ok()) << summary.status();
  const json::Value* s = summary->Find("summary");
  ASSERT_NE(s, nullptr);
  ASSERT_NE(s->Find("result_form"), nullptr);
  ASSERT_EQ(s->Find("result_form")->str_v, "groups");
  EXPECT_EQ(s->Find("rows_streamed")->uint_v, 2u * 729u);

  EXPECT_GE(rows_resp->body.size(), 5 * groups_resp->body.size())
      << "rows bytes: " << rows_resp->body.size()
      << " groups bytes: " << groups_resp->body.size();

  // Buffered-response identity: expanding the groups payload client-side
  // reproduces the rows payload exactly.
  auto rows_q = client.Post("/query", ReqBody(text));
  ASSERT_TRUE(rows_q.ok()) << rows_q.status();
  ASSERT_EQ(rows_q->status, 200);
  auto rows_decoded = wire::ParseResponse(rows_q->body);
  ASSERT_TRUE(rows_decoded.ok()) << rows_decoded.status();

  auto groups_q = client.Post("/query", ReqBody(text, 0, 0, false, "groups"));
  ASSERT_TRUE(groups_q.ok()) << groups_q.status();
  ASSERT_EQ(groups_q->status, 200);
  auto groups_decoded = wire::ParseResponse(groups_q->body);
  ASSERT_TRUE(groups_decoded.ok()) << groups_decoded.status();
  ASSERT_TRUE(groups_decoded->groups_form);
  EXPECT_EQ(groups_decoded->total_rows, rows_decoded->total_rows);
  EXPECT_GE(rows_q->body.size(), 5 * groups_q->body.size());

  EXPECT_EQ(
      wire::ExpandGroups(groups_decoded->slot_list, groups_decoded->groups),
      rows_decoded->rows);
}

// A client that walks away mid-stream trips the request's cancellation:
// the next page write fails, the matcher unwinds, and the service counts
// a cancelled request.
TEST(HttpDisconnectTest, AbandonedStreamCancelsRequest) {
  // Pad the entity names so the full stream (~1 MB) cannot fit in the
  // loopback socket buffers: the server must still be writing when the
  // client walks away, so a page write really fails.
  std::vector<Triple> data;
  const std::string pad(240, 'x');
  auto ent = [&pad](int i) {
    return Term::Iri("urn:" + pad + std::to_string(i));
  };
  for (int i = 0; i + 1 < 2000; ++i) {
    data.emplace_back(ent(i), Term::Iri("urn:p0"), ent(i + 1));
  }
  AmberEngine engine = MustBuild(data);
  ServiceOptions sopts;
  sopts.pool_threads = 3;
  sopts.stream_page_rows = 1;  // one row per chunk: many write points
  QueryService service(&engine, sopts);
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client(server.port());

  int lines_seen = 0;
  auto resp = client.PostStream("/query/stream", ReqBody(kEdgeQuery),
                                [&lines_seen](std::string_view) {
                                  return ++lines_seen < 3;  // then walk away
                                });
  // The abandoned call still reports what arrived before the walk-away.
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  EXPECT_FALSE(resp->chunked_complete);
  EXPECT_GE(lines_seen, 3);

  // The server notices the dead socket on a subsequent page write and
  // trips the request token; poll until the cancellation lands.
  const auto deadline = steady_clock::now() + std::chrono::seconds(10);
  while (service.Stats().cancelled == 0 && steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  EXPECT_GE(service.Stats().cancelled, 1u);
  EXPECT_GE(server.stats().aborted_responses, 1u);

  // The transport survives: a fresh request on a fresh connection works.
  auto again = client.Post("/query", ReqBody(kEdgeQuery, 0, 5));
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->status, 200);
}

TEST(HttpTransportErrorTest, ErrorMapping) {
  AmberEngine engine = MustBuild(ChainData(8));
  ServiceOptions sopts;
  sopts.pool_threads = 3;
  QueryService service(&engine, sopts);
  HttpServerOptions hopts;
  hopts.max_header_bytes = 512;
  hopts.max_request_bytes = 2048;
  hopts.read_timeout = milliseconds(500);
  HttpServer server(&service, hopts);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client(server.port());

  // Unknown route -> 404 with the wire error body.
  auto nf = client.Get("/nope");
  ASSERT_TRUE(nf.ok()) << nf.status();
  EXPECT_EQ(nf->status, 404);
  auto nf_doc = json::Parse(nf->body);
  ASSERT_TRUE(nf_doc.ok()) << nf_doc.status();
  ASSERT_NE(nf_doc->Find("error"), nullptr);
  EXPECT_EQ(nf_doc->Find("error")->Find("code")->str_v, "NotFound");
  EXPECT_EQ(nf_doc->Find("error")->Find("http")->uint_v, 404u);

  // Wrong method on a service route -> 405.
  auto wm = client.Get("/query");
  ASSERT_TRUE(wm.ok()) << wm.status();
  EXPECT_EQ(wm->status, 405);

  // Malformed JSON and unknown request keys -> 400 (bad_requests counts).
  for (const char* body : {"{", "not json", "{\"nope\":1}",
                           "{\"query\":42}", "{\"query\":\"x\",\"zzz\":1}"}) {
    SCOPED_TRACE(body);
    auto bad = client.Post("/query", body);
    ASSERT_TRUE(bad.ok()) << bad.status();
    EXPECT_EQ(bad->status, 400);
  }
  EXPECT_GE(server.stats().bad_requests, 5u);

  // A parseable request whose query text is invalid SPARQL -> 400 too
  // (the service's kInvalidArgument maps through StatusCodeToHttp).
  auto bad_q = client.Post("/query", ReqBody("SELECT WHERE garbage"));
  ASSERT_TRUE(bad_q.ok()) << bad_q.status();
  EXPECT_EQ(bad_q->status, 400);

  // want_groups + pagination is a request-contract error, not a 500.
  auto bad_combo =
      client.Post("/query", ReqBody(kEdgeQuery, 0, 3, false, "groups"));
  ASSERT_TRUE(bad_combo.ok()) << bad_combo.status();
  EXPECT_EQ(bad_combo->status, 400);

  // Oversized body -> 413.
  std::string big(4096, 'x');
  auto too_big = client.Post("/query", big);
  ASSERT_TRUE(too_big.ok()) << too_big.status();
  EXPECT_EQ(too_big->status, 413);

  // Oversized header block -> 431.
  std::string raw = "GET /healthz HTTP/1.1\r\nhost: x\r\nx-pad: " +
                    std::string(1024, 'p') + "\r\n\r\n";
  auto hdr = client.Raw(raw);
  ASSERT_TRUE(hdr.ok()) << hdr.status();
  EXPECT_EQ(hdr->status, 431);

  // Transfer-Encoding request bodies are not supported -> 411.
  auto te = client.Raw(
      "POST /query HTTP/1.1\r\nhost: x\r\ntransfer-encoding: chunked\r\n"
      "\r\n0\r\n\r\n");
  ASSERT_TRUE(te.ok()) << te.status();
  EXPECT_EQ(te->status, 411);

  // Unsupported HTTP version -> 505.
  auto ver = client.Raw("GET /healthz HTTP/2.0\r\nhost: x\r\n\r\n");
  ASSERT_TRUE(ver.ok()) << ver.status();
  EXPECT_EQ(ver->status, 505);

  // A garbage request line -> 400 (or a clean close; both acceptable).
  auto garbage = client.Raw("THIS IS NOT HTTP\r\n\r\n");
  if (garbage.ok()) {
    EXPECT_EQ(garbage->status, 400);
  }
}

TEST(HttpKeepAliveTest, OneConnectionManyRequests) {
  AmberEngine engine = MustBuild(ChainData(8));
  ServiceOptions sopts;
  sopts.pool_threads = 3;
  QueryService service(&engine, sopts);
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client(server.port());

  for (int i = 0; i < 5; ++i) {
    auto resp = client.Post("/query", ReqBody(kEdgeQuery));
    ASSERT_TRUE(resp.ok()) << resp.status();
    EXPECT_EQ(resp->status, 200);
  }
  HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.requests, 5u);
}

TEST(HttpAdmissionTest, OverflowConnectionsShedAtTheDoor) {
  AmberEngine engine = MustBuild(ChainData(8));
  ServiceOptions sopts;
  sopts.pool_threads = 2;  // effective max_connections = 1
  QueryService service(&engine, sopts);
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  HttpClient holder(server.port());
  auto held = holder.Get("/healthz");  // keep-alive: holds the one slot
  ASSERT_TRUE(held.ok()) << held.status();
  ASSERT_EQ(held->status, 200);

  HttpClient overflow(server.port());
  auto shed = overflow.Get("/healthz");
  ASSERT_TRUE(shed.ok()) << shed.status();
  EXPECT_EQ(shed->status, 503);
  EXPECT_GE(server.stats().connections_rejected, 1u);

  // Releasing the slot lets the next connection in.
  holder.Close();
  const auto deadline = steady_clock::now() + std::chrono::seconds(5);
  int status = 0;
  while (steady_clock::now() < deadline) {
    overflow.Close();
    auto retry = overflow.Get("/healthz");
    if (retry.ok() && (status = retry->status) == 200) break;
    std::this_thread::sleep_for(milliseconds(20));
  }
  EXPECT_EQ(status, 200);
}

TEST(HttpAdmissionTest, StartRejectsCapacityInvariantViolation) {
  AmberEngine engine = MustBuild(ChainData(8));
  ServiceOptions sopts;
  sopts.pool_threads = 3;
  QueryService service(&engine, sopts);
  HttpServerOptions hopts;
  hopts.max_connections = 3;  // == pool_threads: no spare worker
  HttpServer server(&service, hopts);
  Status s = server.Start();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

// Framing fuzz: hostile byte streams must never crash the server —
// every input yields a 4xx/431-class response or a clean close, and the
// server keeps serving clean requests afterwards.
TEST(HttpChaosTest, FramingFuzzNeverKillsTheServer) {
  AmberEngine engine = MustBuild(ChainData(8));
  ServiceOptions sopts;
  sopts.pool_threads = 3;
  QueryService service(&engine, sopts);
  HttpServerOptions hopts;
  hopts.read_timeout = milliseconds(300);
  hopts.max_header_bytes = 1024;
  HttpServer server(&service, hopts);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client(server.port());
  client.set_recv_timeout(milliseconds(2000));

  // Deterministic malformed heads: these MUST produce an error status
  // (the response may also simply not arrive if the server closes).
  const char* malformed[] = {
      "\r\n\r\n",
      "GET\r\n\r\n",
      "GET /healthz\r\n\r\n",
      "GET  /healthz HTTP/1.1\r\n\r\n",
      "GET /healthz HTTP/1.1\r\nno-colon-here\r\n\r\n",
      "GET relative HTTP/1.1\r\n\r\n",
      "POST /query HTTP/1.1\r\ncontent-length: -5\r\n\r\n",
      "POST /query HTTP/1.1\r\ncontent-length: huge\r\n\r\n",
      "GET /healthz HTTP/9.9\r\n\r\n",
  };
  for (const char* bytes : malformed) {
    SCOPED_TRACE(bytes);
    auto resp = client.Raw(bytes);
    if (resp.ok()) {
      EXPECT_GE(resp->status, 400);
      EXPECT_LT(resp->status, 600);
    }
  }

  // Randomized corruption of a valid request (replayable seed). The
  // server must survive every variant; corrupted bytes that land in
  // ignored headers may still parse, so only no-crash is asserted.
  const std::string valid = "POST /query HTTP/1.1\r\nhost: x\r\n"
                            "content-length: 13\r\n\r\n{\"query\":\"z\"}";
  Rng rng(20260808);
  for (int i = 0; i < 60; ++i) {
    std::string mutated = valid;
    const int edits = 1 + static_cast<int>(rng.Uniform(3));
    for (int e = 0; e < edits; ++e) {
      mutated[rng.Uniform(mutated.size())] =
          static_cast<char>(rng.Uniform(256));
    }
    auto resp = client.Raw(mutated);
    if (resp.ok()) {
      EXPECT_GE(resp->status, 100);
      EXPECT_LT(resp->status, 600);
    }
  }

  // The server is still healthy.
  client.Close();
  auto clean = client.Post("/query", ReqBody(kEdgeQuery));
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(clean->status, 200);
}

// The server.write fault site: mid-write failures abort connections but
// never wedge the transport, and service errors map onto live sockets.
TEST(HttpChaosTest, WriteFaultsAbortConnectionsNotTheServer) {
  AmberEngine engine = MustBuild(ChainData(8));
  ServiceOptions sopts;
  sopts.pool_threads = 3;
  QueryService service(&engine, sopts);
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client(server.port());
  client.set_recv_timeout(milliseconds(2000));

  {
    FaultSpec spec;
    spec.code = StatusCode::kIOError;
    spec.probability = 0.4;
    spec.seed = 97;
    ScopedFault fault(faults::kServerWrite, spec);
    int ok_count = 0;
    for (int i = 0; i < 25; ++i) {
      auto resp = client.Post("/query", ReqBody(kEdgeQuery));
      if (resp.ok() && resp->status == 200) ++ok_count;
      // Aborted connections surface as transport errors; reconnect.
      if (!resp.ok()) client.Close();
    }
    // The fault schedule fired on some writes and spared others.
    EXPECT_GT(ok_count, 0);
  }
  EXPECT_GE(server.stats().aborted_responses, 1u);

  // Disarmed: back to fully healthy.
  client.Close();
  auto clean = client.Post("/query", ReqBody(kEdgeQuery));
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(clean->status, 200);
}

TEST(HttpShutdownTest, StopDrainsServerAndService) {
  AmberEngine engine = MustBuild(ChainData(8));
  ServiceOptions sopts;
  sopts.pool_threads = 3;
  QueryService service(&engine, sopts);
  HttpServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  {
    HttpClient client(port);
    auto resp = client.Post("/query", ReqBody(kEdgeQuery));
    ASSERT_TRUE(resp.ok()) << resp.status();
    EXPECT_EQ(resp->status, 200);
  }

  server.Stop();
  EXPECT_FALSE(server.running());

  // Stop() drained the service too: it rejects new work permanently.
  auto post_stop = service.Query(kEdgeQuery);
  ASSERT_FALSE(post_stop.ok());
  EXPECT_EQ(post_stop.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(service.Stats().shutdown_rejects, 1u);

  server.Stop();  // idempotent
}

}  // namespace
}  // namespace amber
