// util/json.h: the hand-rolled JSON layer under the wire protocol. The
// writer must be deterministic (the transport's byte-identity contract
// rides on it) and the parser must survive arbitrary untrusted bytes —
// every malformed input is a Status, never a crash (fuzzed below).

#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/random.h"

namespace amber {
namespace json {
namespace {

TEST(JsonTest, WriterComposesNestedStructures) {
  Writer w;
  w.BeginObject();
  w.KV("name", "amber");
  w.KV("ok", true);
  w.KV("count", static_cast<uint64_t>(42));
  w.Key("rows");
  w.BeginArray();
  w.BeginArray();
  w.String("a");
  w.String("b");
  w.EndArray();
  w.BeginArray();
  w.EndArray();
  w.EndArray();
  w.Key("nothing");
  w.Null();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"amber\",\"ok\":true,\"count\":42,"
            "\"rows\":[[\"a\",\"b\"],[]],\"nothing\":null}");
}

TEST(JsonTest, WriterEscapesStrings) {
  Writer w;
  w.String("a\"b\\c\n\t\x01z");
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\n\\t\\u0001z\"");
}

TEST(JsonTest, ParseAcceptsScalars) {
  auto null_v = Parse("null");
  ASSERT_TRUE(null_v.ok());
  EXPECT_TRUE(null_v->is_null());

  auto true_v = Parse(" true ");
  ASSERT_TRUE(true_v.ok());
  EXPECT_TRUE(true_v->is_bool());
  EXPECT_TRUE(true_v->bool_v);

  auto num = Parse("-12.5e2");
  ASSERT_TRUE(num.ok());
  EXPECT_TRUE(num->is_number());
  EXPECT_DOUBLE_EQ(num->num_v, -1250.0);

  auto str = Parse("\"hi\"");
  ASSERT_TRUE(str.ok());
  EXPECT_TRUE(str->is_string());
  EXPECT_EQ(str->str_v, "hi");
}

TEST(JsonTest, IntegersRoundTripExactly) {
  const uint64_t big = std::numeric_limits<uint64_t>::max();
  auto v = Parse(std::to_string(big));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_uint);
  EXPECT_EQ(v->uint_v, big);
  EXPECT_FALSE(v->is_int);  // out of int64 range

  const int64_t negative = std::numeric_limits<int64_t>::min();
  auto n = Parse(std::to_string(negative));
  ASSERT_TRUE(n.ok());
  EXPECT_TRUE(n->is_int);
  EXPECT_EQ(n->int_v, negative);
}

TEST(JsonTest, ObjectPreservesOrderAndFinds) {
  auto v = Parse("{\"b\":1,\"a\":{\"x\":[true,false]}}");
  ASSERT_TRUE(v.ok()) << v.status();
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->object[0].first, "b");
  EXPECT_EQ(v->object[1].first, "a");
  const Value* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  const Value* x = a->Find("x");
  ASSERT_NE(x, nullptr);
  ASSERT_TRUE(x->is_array());
  EXPECT_EQ(x->array.size(), 2u);
  EXPECT_EQ(v->Find("zzz"), nullptr);
}

TEST(JsonTest, UnicodeEscapesIncludingSurrogates) {
  auto v = Parse("\"\\u0041\\u00e9\\ud83d\\ude00\"");
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->str_v, "A\xC3\xA9\xF0\x9F\x98\x80");
  // Lone surrogate: rejected, not crashed.
  EXPECT_FALSE(Parse("\"\\ud83d\"").ok());
}

TEST(JsonTest, WriterOutputParsesBack) {
  Writer w;
  w.BeginObject();
  w.KV("text", "quote\" slash\\ ctrl\x02 unicode\xC3\xA9");
  w.Key("nums");
  w.BeginArray();
  w.UInt(18446744073709551615ull);
  w.Int(-42);
  w.Double(0.1);
  w.EndArray();
  w.EndObject();
  auto v = Parse(w.str());
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->Find("text")->str_v, "quote\" slash\\ ctrl\x02 unicode\xC3\xA9");
  EXPECT_EQ(v->Find("nums")->array[0].uint_v, 18446744073709551615ull);
  EXPECT_EQ(v->Find("nums")->array[1].int_v, -42);
  EXPECT_DOUBLE_EQ(v->Find("nums")->array[2].num_v, 0.1);
}

TEST(JsonTest, NonFiniteDoublesSerializeAsNull) {
  Writer w;
  w.BeginArray();
  w.Double(std::nan(""));
  w.Double(std::numeric_limits<double>::infinity());
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonTest, MalformedInputsAreStatusesNotCrashes) {
  const char* cases[] = {
      "",
      "   ",
      "{",
      "}",
      "[",
      "{\"a\":}",
      "{\"a\":1,}",
      "[1,]",
      "{\"a\" 1}",
      "{a:1}",
      "\"unterminated",
      "\"bad\\escape\"",
      "\"bad\\u12g4\"",
      "tru",
      "nulll",
      "01",
      "1.",
      "1e",
      "-",
      "+1",
      "{\"dup\":1,\"dup\":2}",
      "1 2",            // trailing garbage
      "{} extra",       // trailing garbage
      "\"ctrl\x01raw\"",  // unescaped control character
  };
  for (const char* text : cases) {
    auto v = Parse(text);
    EXPECT_FALSE(v.ok()) << "accepted: " << text;
    if (!v.ok()) {
      EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument) << text;
    }
  }
}

TEST(JsonTest, DepthCapRejectsDeepNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(Parse(deep, /*max_depth=*/64).ok());
  EXPECT_TRUE(Parse(deep, /*max_depth=*/128).ok());
}

// Mutation fuzz: corrupt a valid document at every position with a
// spread of hostile bytes, plus random truncations. The parser must
// return (ok or InvalidArgument) — never crash, hang, or over-read.
TEST(JsonTest, MutationFuzzNeverCrashes) {
  const std::string seed_doc =
      "{\"query\":\"SELECT ?a WHERE { ?a <urn:p0> ?b . }\","
      "\"limit\":18446744073709551615,\"count_only\":false,"
      "\"nested\":[1,-2.5e3,\"\\u00e9\\n\",null,{\"k\":[true]}]}";
  const char hostile[] = {'\0', '\x01', '"', '\\', '{', '}', '[',
                          ']',  ',',    ':', '\n', '\x7f', '\xff'};
  int parsed_ok = 0;
  for (size_t pos = 0; pos < seed_doc.size(); ++pos) {
    for (char b : hostile) {
      std::string mutated = seed_doc;
      mutated[pos] = b;
      auto v = Parse(mutated);
      if (v.ok()) {
        ++parsed_ok;
      } else {
        EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
      }
    }
  }
  // Truncations at every prefix length.
  for (size_t len = 0; len < seed_doc.size(); ++len) {
    auto v = Parse(seed_doc.substr(0, len));
    EXPECT_FALSE(v.ok()) << "accepted truncation at " << len;
  }
  // Random splices from a seeded rng (replayable).
  Rng rng(20260808);
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = seed_doc;
    const int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits; ++e) {
      mutated[rng.Uniform(mutated.size())] =
          static_cast<char>(rng.Uniform(256));
    }
    auto v = Parse(mutated);
    if (!v.ok()) {
      EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
    }
  }
  // Sanity: some single-byte mutations (e.g. inside string payloads)
  // must still parse, or the fuzz corpus is degenerate.
  EXPECT_GT(parsed_ok, 0);
}

}  // namespace
}  // namespace json
}  // namespace amber
