// Cache correctness for the serving runtime: key normalization
// (whitespace / comment / variable-rename equivalences collapse to one
// key; semantically different queries never collide), LRU eviction and the
// hit/miss/eviction counters, differential identity of cached vs uncached
// responses, count/rows handle sharing, and the no-caching-of-timeouts
// rule.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/amber_engine.h"
#include "server/query_service.h"
#include "sparql/parser.h"
#include "test_util.h"

namespace amber {
namespace {

AmberEngine MustBuild(const std::vector<Triple>& data) {
  auto engine = AmberEngine::Build(data);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).value();
}

std::string MustKey(const std::string& text) {
  auto nq = NormalizeQuery(text);
  EXPECT_TRUE(nq.ok()) << nq.status() << "\n" << text;
  return nq.ok() ? nq->key : "<parse error: " + text + ">";
}

TEST(QueryServiceCacheTest, NormalizationCollapsesSpellingVariants) {
  const std::string canonical = MustKey(
      "SELECT ?a ?c WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . }");

  // Whitespace and newlines.
  EXPECT_EQ(MustKey("SELECT   ?a\t?c\nWHERE  {\n  ?a <urn:p0> ?b .\n"
                    "  ?b <urn:p1> ?c .\n}"),
            canonical);
  // Comments.
  EXPECT_EQ(MustKey("# leading comment\nSELECT ?a ?c # trailing\n"
                    "WHERE { ?a <urn:p0> ?b . # mid\n ?b <urn:p1> ?c . }"),
            canonical);
  // Variable renaming (including $-style variables).
  EXPECT_EQ(MustKey("SELECT ?x ?z WHERE { ?x <urn:p0> ?y . "
                    "?y <urn:p1> ?z . }"),
            canonical);
  EXPECT_EQ(MustKey("SELECT $s $o WHERE { $s <urn:p0> $m . "
                    "$m <urn:p1> $o . }"),
            canonical);

  // FILTER queries normalize too (filter variable renamed consistently).
  EXPECT_EQ(
      MustKey("SELECT ?a WHERE { ?a <urn:num0> ?v . FILTER(?v > 10) }"),
      MustKey("SELECT ?x WHERE { ?x <urn:num0> ?w .\n# c\nFILTER(?w > 10)\n"
              "}"));
}

TEST(QueryServiceCacheTest, SemanticallyDifferentQueriesNeverCollide) {
  const char* base = "SELECT ?a WHERE { ?a <urn:p0> ?b . }";
  const char* variants[] = {
      // Different predicate.
      "SELECT ?a WHERE { ?a <urn:p1> ?b . }",
      // Different projected position.
      "SELECT ?b WHERE { ?a <urn:p0> ?b . }",
      // Extra pattern.
      "SELECT ?a WHERE { ?a <urn:p0> ?b . ?b <urn:p0> ?c . }",
      // DISTINCT.
      "SELECT DISTINCT ?a WHERE { ?a <urn:p0> ?b . }",
      // LIMIT (different cap = different result set).
      "SELECT ?a WHERE { ?a <urn:p0> ?b . } LIMIT 2",
      // Reversed direction.
      "SELECT ?a WHERE { ?b <urn:p0> ?a . }",
      // Same shape but the two variables collapsed into one (self-loop).
      "SELECT ?a WHERE { ?a <urn:p0> ?a . }",
  };
  const std::string base_key = MustKey(base);
  for (const char* v : variants) {
    EXPECT_NE(MustKey(v), base_key) << v;
  }
  // Projection ORDER is semantic (column order): must not collide.
  EXPECT_NE(
      MustKey("SELECT ?a ?b WHERE { ?a <urn:p0> ?b . }"),
      MustKey("SELECT ?b ?a WHERE { ?a <urn:p0> ?b . }"));
  // Different FILTER constants / operators must not collide.
  EXPECT_NE(
      MustKey("SELECT ?a WHERE { ?a <urn:num0> ?v . FILTER(?v > 10) }"),
      MustKey("SELECT ?a WHERE { ?a <urn:num0> ?v . FILTER(?v > 11) }"));
  EXPECT_NE(
      MustKey("SELECT ?a WHERE { ?a <urn:num0> ?v . FILTER(?v > 10) }"),
      MustKey("SELECT ?a WHERE { ?a <urn:num0> ?v . FILTER(?v >= 10) }"));
}

TEST(QueryServiceCacheTest, SpellingVariantsHitAndKeepRequestVarNames) {
  auto data = testutil::RandomDataset(7, 12, 70, 3);
  AmberEngine engine = MustBuild(data);
  ServiceOptions options;
  options.cache_entries = 8;
  QueryService service(&engine, options);

  auto first = service.Query(
      "SELECT ?a ?c WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . }", {});
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->cache_hit);
  EXPECT_EQ(first->var_names, (std::vector<std::string>{"a", "c"}));

  // Renamed + reformatted variant: must HIT, and must come back with the
  // *request's* variable spellings, not the cached canonical ones.
  auto second = service.Query(
      "# cached?\nSELECT ?first ?last\nWHERE {\n ?first <urn:p0> ?mid .\n"
      " ?mid <urn:p1> ?last . }",
      {});
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->var_names, (std::vector<std::string>{"first", "last"}));
  EXPECT_EQ(second->rows, first->rows);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_entries, 1u);
}

TEST(QueryServiceCacheTest, EvictionIsLruAndCountersArePinned) {
  auto data = testutil::RandomDataset(9, 12, 60, 3);
  AmberEngine engine = MustBuild(data);
  ServiceOptions options;
  options.cache_entries = 2;
  QueryService service(&engine, options);

  const std::string q1 = "SELECT ?a WHERE { ?a <urn:p0> ?b . }";
  const std::string q2 = "SELECT ?a WHERE { ?a <urn:p1> ?b . }";
  const std::string q3 = "SELECT ?a WHERE { ?a <urn:p2> ?b . }";

  ASSERT_TRUE(service.Query(q1, {}).ok());  // miss -> {q1}
  ASSERT_TRUE(service.Query(q2, {}).ok());  // miss -> {q1, q2}
  ASSERT_TRUE(service.Query(q1, {}).ok());  // hit, q1 now most recent
  ASSERT_TRUE(service.Query(q3, {}).ok());  // miss -> evicts q2 (LRU)

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_misses, 3u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_evictions, 1u);
  EXPECT_EQ(stats.cache_entries, 2u);

  // q1 must still be cached (was touched); q2 must have been evicted.
  auto r1 = service.Query(q1, {});
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->cache_hit);
  auto r2 = service.Query(q2, {});
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->cache_hit);
}

TEST(QueryServiceCacheTest, CachedAndUncachedResponsesDifferentiallyIdentical) {
  auto data = testutil::RandomDataset(13, 15, 90, 3);
  AmberEngine engine = MustBuild(data);
  ServiceOptions options;
  options.cache_entries = 32;
  QueryService service(&engine, options);

  std::vector<std::string> texts;
  for (int qi = 0; qi < 6; ++qi) {
    texts.push_back(testutil::RandomQueryFromData(data, 300 + qi, 3));
  }
  texts.push_back(
      "SELECT DISTINCT ?a WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . } "
      "LIMIT 3");
  texts.push_back(
      "SELECT ?a ?c WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . } LIMIT 5");

  for (const std::string& text : texts) {
    for (const auto& [offset, limit] :
         std::vector<std::pair<uint64_t, uint64_t>>{
             {0, 0}, {0, 3}, {2, 2}, {5, 0}}) {
      RequestOptions cached;
      cached.offset = offset;
      cached.limit = limit;
      RequestOptions bypass = cached;
      bypass.bypass_cache = true;

      auto warm = service.Query(text, cached);   // miss or hit
      auto hit = service.Query(text, cached);    // definitely a hit
      auto raw = service.Query(text, bypass);    // fresh execution
      ASSERT_TRUE(warm.ok() && hit.ok() && raw.ok());
      EXPECT_TRUE(hit->cache_hit);
      EXPECT_FALSE(raw->cache_hit);
      EXPECT_EQ(hit->rows, raw->rows) << text;
      EXPECT_EQ(warm->rows, raw->rows) << text;
      EXPECT_EQ(hit->var_names, raw->var_names);
      EXPECT_EQ(hit->total_rows, raw->total_rows);
      EXPECT_EQ(hit->truncated, raw->truncated);
    }
  }
}

TEST(QueryServiceCacheTest, CountServedFromCompleteRowHandle) {
  auto data = testutil::RandomDataset(17, 12, 70, 3);
  AmberEngine engine = MustBuild(data);
  ServiceOptions options;
  options.cache_entries = 8;
  QueryService service(&engine, options);

  const std::string text =
      "SELECT ?a ?c WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . }";
  auto rows = service.Query(text, {});
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(rows->truncated);

  RequestOptions count;
  count.count_only = true;
  auto counted = service.Query(text, count);
  ASSERT_TRUE(counted.ok());
  EXPECT_TRUE(counted->cache_hit);  // complete row handle answers counts
  EXPECT_EQ(counted->total_rows, rows->total_rows);

  // The reverse: a count-only entry canNOT answer a materializing request.
  const std::string other =
      "SELECT ?a WHERE { ?a <urn:p1> ?b . }";
  auto counted_first = service.Query(other, count);
  ASSERT_TRUE(counted_first.ok());
  EXPECT_FALSE(counted_first->cache_hit);
  auto rows_after = service.Query(other, {});
  ASSERT_TRUE(rows_after.ok());
  EXPECT_FALSE(rows_after->cache_hit);  // rows were not retained yet
  EXPECT_EQ(rows_after->total_rows, counted_first->total_rows);
  // ... but now the entry holds both handles: both modes hit.
  auto both = service.Query(other, count);
  ASSERT_TRUE(both.ok());
  EXPECT_TRUE(both->cache_hit);
}

TEST(QueryServiceCacheTest, TruncatedHandleDoesNotAnswerCounts) {
  auto data = testutil::RandomDataset(19, 15, 120, 3);
  AmberEngine engine = MustBuild(data);
  ServiceOptions options;
  options.cache_entries = 8;
  options.max_result_rows = 2;  // force truncation of retained handles
  QueryService service(&engine, options);

  const std::string text =
      "SELECT ?a ?c WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . }";
  ExecOptions serial;
  auto reference = engine.MaterializeSparql(text, serial);
  ASSERT_TRUE(reference.ok());
  ASSERT_GT(reference->rows.size(), 2u) << "fixture must exceed the cap";

  auto rows = service.Query(text, {});
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->truncated);
  EXPECT_EQ(rows->total_rows, 2u);
  // The truncated prefix is still the serial prefix, bit for bit.
  EXPECT_EQ(rows->rows[0], reference->rows[0]);
  EXPECT_EQ(rows->rows[1], reference->rows[1]);

  // A count request must NOT be served from the truncated handle: it
  // re-executes (uncapped count) and returns the true total.
  RequestOptions count;
  count.count_only = true;
  auto counted = service.Query(text, count);
  ASSERT_TRUE(counted.ok());
  EXPECT_FALSE(counted->cache_hit);
  EXPECT_EQ(counted->total_rows, reference->rows.size());
}

/// Engine stub whose executions always report a timeout: pins the rule
/// that timed-out (partial) results never enter the cache.
class TimingOutEngine : public QueryEngine {
 public:
  std::string name() const override { return "TimingOut"; }
  Result<CountResult> Count(const SelectQuery&,
                            const ExecOptions&) override {
    ++executions;
    CountResult r;
    r.count = 0;
    r.stats.timed_out = true;
    return r;
  }
  Result<MaterializedRows> Materialize(const SelectQuery&,
                                       const ExecOptions&) override {
    ++executions;
    MaterializedRows r;
    r.stats.timed_out = true;
    return r;
  }
  int executions = 0;
};

TEST(QueryServiceCacheTest, TimedOutResultsAreNeverCached) {
  TimingOutEngine engine;
  ServiceOptions options;
  options.cache_entries = 8;
  QueryService service(&engine, options);

  const std::string text = "SELECT ?a WHERE { ?a <urn:p0> ?b . }";
  for (int i = 0; i < 3; ++i) {
    auto resp = service.Query(text, {});
    ASSERT_TRUE(resp.ok());
    EXPECT_TRUE(resp->timed_out);
    EXPECT_FALSE(resp->cache_hit);
  }
  EXPECT_EQ(engine.executions, 3);  // every request re-executed
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_entries, 0u);
  EXPECT_EQ(stats.timed_out, 3u);
}

/// Engine stub returning a fixed number of fixed-size rows: entry sizes
/// are identical across queries, so byte-budget arithmetic is exact.
class SizedRowsEngine : public QueryEngine {
 public:
  SizedRowsEngine(uint64_t rows, size_t cell_chars)
      : rows_(rows), cell_chars_(cell_chars) {}
  std::string name() const override { return "SizedRows"; }
  Result<CountResult> Count(const SelectQuery&,
                            const ExecOptions&) override {
    ++executions;
    CountResult r;
    r.count = rows_;
    return r;
  }
  Result<MaterializedRows> Materialize(const SelectQuery& query,
                                       const ExecOptions&) override {
    ++executions;
    MaterializedRows r;
    r.var_names = query.projection;
    for (uint64_t i = 0; i < rows_; ++i) {
      r.rows.push_back(std::vector<std::string>(
          query.projection.size(), std::string(cell_chars_, 'x')));
    }
    return r;
  }
  int executions = 0;

 private:
  uint64_t rows_;
  size_t cell_chars_;
};

// Three queries whose normalized keys have identical length (only the
// predicate digit differs), so their accounted entry sizes are equal.
const char* kSizedQ1 = "SELECT ?a WHERE { ?a <urn:p0> ?b . }";
const char* kSizedQ2 = "SELECT ?a WHERE { ?a <urn:p1> ?b . }";
const char* kSizedQ3 = "SELECT ?a WHERE { ?a <urn:p2> ?b . }";

/// Accounted bytes of one retained entry of `engine`'s making.
uint64_t OneEntryBytes(SizedRowsEngine* engine) {
  ServiceOptions options;
  options.pool_threads = 1;
  options.cache_entries = 4;
  QueryService service(engine, options);
  EXPECT_TRUE(service.Query(kSizedQ1, {}).ok());
  const uint64_t bytes = service.Stats().bytes_cached;
  EXPECT_GT(bytes, 0u);
  return bytes;
}

TEST(QueryServiceCacheTest, ByteBudgetEvictsByBytesAndTracksGauge) {
  SizedRowsEngine probe(8, 64);
  const uint64_t entry_bytes = OneEntryBytes(&probe);

  SizedRowsEngine engine(8, 64);
  ServiceOptions options;
  options.pool_threads = 1;
  options.cache_entries = 64;  // not binding: bytes evict first
  options.cache_bytes = entry_bytes * 5 / 2;  // room for two entries
  QueryService service(&engine, options);

  ASSERT_TRUE(service.Query(kSizedQ1, {}).ok());
  ASSERT_TRUE(service.Query(kSizedQ2, {}).ok());
  ServiceStats mid = service.Stats();
  EXPECT_EQ(mid.cache_entries, 2u);
  EXPECT_EQ(mid.bytes_cached, 2 * entry_bytes);
  EXPECT_EQ(mid.cache_evictions, 0u);

  // A third entry busts the byte budget: the LRU tail (q1) goes.
  ASSERT_TRUE(service.Query(kSizedQ3, {}).ok());
  ServiceStats after = service.Stats();
  EXPECT_EQ(after.cache_entries, 2u);
  EXPECT_EQ(after.cache_evictions, 1u);
  EXPECT_EQ(after.bytes_cached, 2 * entry_bytes);
  EXPECT_LE(after.bytes_cached, options.cache_bytes);

  auto q2 = service.Query(kSizedQ2, {});
  auto q3 = service.Query(kSizedQ3, {});
  auto q1 = service.Query(kSizedQ1, {});
  ASSERT_TRUE(q1.ok() && q2.ok() && q3.ok());
  EXPECT_TRUE(q2->cache_hit);
  EXPECT_TRUE(q3->cache_hit);
  EXPECT_FALSE(q1->cache_hit);  // evicted
}

TEST(QueryServiceCacheTest, OversizedEntryBypassesCache) {
  SizedRowsEngine probe(8, 64);
  const uint64_t entry_bytes = OneEntryBytes(&probe);

  SizedRowsEngine engine(8, 64);
  ServiceOptions options;
  options.pool_threads = 1;
  options.cache_entries = 64;
  options.cache_bytes = entry_bytes - 1;  // one row entry never fits
  QueryService service(&engine, options);

  // The oversized result is still SERVED in full — only retention is
  // skipped (it would have evicted the whole cache and then itself).
  auto first = service.Query(kSizedQ1, {});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->rows.size(), 8u);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_entries, 0u);
  EXPECT_EQ(stats.bytes_cached, 0u);
  EXPECT_EQ(stats.cache_evictions, 0u);

  auto second = service.Query(kSizedQ1, {});
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->cache_hit);  // nothing was retained
  EXPECT_EQ(engine.executions, 2);  // both requests re-executed
  EXPECT_EQ(second->rows, first->rows);

  // A small (count-only) entry still fits under the same budget.
  RequestOptions count;
  count.count_only = true;
  ASSERT_TRUE(service.Query(kSizedQ2, count).ok());
  EXPECT_EQ(service.Stats().cache_entries, 1u);
}

TEST(QueryServiceCacheTest, ByteBudgetZeroIsUnboundedButStillAccounted) {
  SizedRowsEngine engine(8, 64);
  ServiceOptions options;
  options.pool_threads = 1;
  options.cache_entries = 64;
  options.cache_bytes = 0;  // unbounded bytes
  QueryService service(&engine, options);

  ASSERT_TRUE(service.Query(kSizedQ1, {}).ok());
  ASSERT_TRUE(service.Query(kSizedQ2, {}).ok());
  ASSERT_TRUE(service.Query(kSizedQ3, {}).ok());
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_entries, 3u);
  EXPECT_EQ(stats.cache_evictions, 0u);
  EXPECT_GT(stats.bytes_cached, 0u);  // the gauge is maintained anyway
}

TEST(QueryServiceCacheTest, MergeGrowsTheByteGauge) {
  SizedRowsEngine engine(8, 64);
  ServiceOptions options;
  options.pool_threads = 1;
  options.cache_entries = 8;
  QueryService service(&engine, options);

  // Count first (small entry), then rows (the entry grows in place).
  RequestOptions count;
  count.count_only = true;
  ASSERT_TRUE(service.Query(kSizedQ1, count).ok());
  const uint64_t count_bytes = service.Stats().bytes_cached;
  EXPECT_GT(count_bytes, 0u);
  ASSERT_TRUE(service.Query(kSizedQ1, {}).ok());
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_entries, 1u);
  EXPECT_GT(stats.bytes_cached, count_bytes);
}

TEST(QueryServiceCacheTest, DefaultByteBudgetIs64MiB) {
  // PR 6 shipped the cache with unbounded bytes; the default budget is
  // the fix. Pinned so a silent default change fails loudly.
  EXPECT_EQ(ServiceOptions{}.cache_bytes, 64ull << 20);
}

TEST(QueryServiceCacheTest, CacheDisabledAlwaysExecutes) {
  auto data = testutil::RandomDataset(29, 10, 50, 3);
  AmberEngine engine = MustBuild(data);
  ServiceOptions options;
  options.cache_entries = 0;  // disabled
  QueryService service(&engine, options);

  const std::string text = "SELECT ?a WHERE { ?a <urn:p0> ?b . }";
  auto a = service.Query(text, {});
  auto b = service.Query(text, {});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(a->cache_hit);
  EXPECT_FALSE(b->cache_hit);
  EXPECT_EQ(a->rows, b->rows);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);  // disabled cache records nothing
  EXPECT_EQ(stats.cache_entries, 0u);
}

// ---------------------------------------------------------------------------
// Factorized result handles (ServiceOptions::result_form).
// ---------------------------------------------------------------------------

// 6 star centers × 8 p0-objects × 8 p1-objects: the query below has
// 6 groups of 64 rows each (384 total) in factorized form.
std::vector<Triple> FanoutData() {
  std::vector<Triple> data;
  for (int c = 0; c < 6; ++c) {
    Term center = Term::Iri("urn:c" + std::to_string(c));
    for (int i = 0; i < 8; ++i) {
      data.emplace_back(center, Term::Iri("urn:p0"),
                        Term::Iri("urn:a" + std::to_string(c) + "_" +
                                  std::to_string(i)));
      data.emplace_back(center, Term::Iri("urn:p1"),
                        Term::Iri("urn:b" + std::to_string(c) + "_" +
                                  std::to_string(i)));
    }
  }
  return data;
}

constexpr char kFanoutQuery[] =
    "SELECT ?c ?a ?b WHERE { ?c <urn:p0> ?a . ?c <urn:p1> ?b . }";
constexpr uint64_t kFanoutGroupCard = 64;  // 8 × 8 rows per group

TEST(QueryServiceCacheTest, FactorizedHandleServesDeepOffsetPages) {
  AmberEngine engine = MustBuild(FanoutData());
  auto flat = engine.MaterializeSparql(kFanoutQuery, {});
  ASSERT_TRUE(flat.ok());
  const uint64_t total = flat->rows.size();
  ASSERT_EQ(total, 6u * kFanoutGroupCard);

  ServiceOptions options;
  options.cache_entries = 8;
  options.result_form = ResultForm::kAuto;
  QueryService service(&engine, options);

  // Miss: the execution retains the factorized handle; the first page
  // expands only its own rows.
  RequestOptions first;
  first.limit = 4;
  auto warm = service.Query(kFanoutQuery, first);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_FALSE(warm->cache_hit);
  EXPECT_EQ(warm->total_rows, total);
  ASSERT_EQ(warm->rows.size(), 4u);
  for (size_t i = 0; i < warm->rows.size(); ++i) {
    EXPECT_EQ(warm->rows[i], flat->rows[i]);
  }
  EXPECT_LE(warm->stats.rows_expanded, 4 + kFanoutGroupCard);

  // Deep-OFFSET page from the cached handle: the prefix is skipped by
  // group arithmetic, never re-enumerated — the acceptance bound is
  // page size plus (at most) one boundary group's cardinality.
  RequestOptions deep;
  deep.offset = total - 12;
  deep.limit = 10;
  auto page = service.Query(kFanoutQuery, deep);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(page->cache_hit);
  ASSERT_EQ(page->rows.size(), 10u);
  for (size_t i = 0; i < page->rows.size(); ++i) {
    EXPECT_EQ(page->rows[i], flat->rows[deep.offset + i]) << i;
  }
  EXPECT_LE(page->stats.rows_expanded, 10 + kFanoutGroupCard);

  // Counts come straight from total_rows — no expansion at all.
  RequestOptions count;
  count.count_only = true;
  auto counted = service.Query(kFanoutQuery, count);
  ASSERT_TRUE(counted.ok());
  EXPECT_TRUE(counted->cache_hit);
  EXPECT_EQ(counted->total_rows, total);
  EXPECT_EQ(counted->stats.rows_expanded, 0u);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.factorized_hits, 2u);  // the deep page and the count
}

TEST(QueryServiceCacheTest, FactorizedEntriesChargedAtGroupStorageSize) {
  AmberEngine engine = MustBuild(FanoutData());

  ServiceOptions flat_opts;
  flat_opts.cache_entries = 8;
  QueryService flat_service(&engine, flat_opts);
  ASSERT_TRUE(flat_service.Query(kFanoutQuery, {}).ok());
  const uint64_t flat_bytes = flat_service.Stats().bytes_cached;

  ServiceOptions fact_opts = flat_opts;
  fact_opts.result_form = ResultForm::kFactorized;
  QueryService fact_service(&engine, fact_opts);
  ASSERT_TRUE(fact_service.Query(kFanoutQuery, {}).ok());
  const uint64_t fact_bytes = fact_service.Stats().bytes_cached;

  // 384 expanded rows of IRI strings vs 6 groups of id lists: the
  // factorized entry must be charged at its (much smaller) group storage.
  EXPECT_GT(fact_bytes, 0u);
  EXPECT_LT(fact_bytes, flat_bytes / 4) << "flat=" << flat_bytes;

  // The charge tracks FactorizedResult::ByteSize (plus key/var-name
  // overhead shared with flat entries).
  auto parsed = SparqlParser::Parse(kFanoutQuery);
  ASSERT_TRUE(parsed.ok());
  ExecOptions fexec;
  fexec.result_form = ResultForm::kFactorized;
  auto fact = engine.Factorize(*parsed, fexec);
  ASSERT_TRUE(fact.ok());
  EXPECT_GE(fact_bytes, fact->result.ByteSize());
}

TEST(QueryServiceCacheTest, FactorizedResponsesDifferentiallyIdentical) {
  auto data = testutil::RandomDataset(23, 14, 80, 3);
  AmberEngine engine = MustBuild(data);

  ServiceOptions flat_opts;
  flat_opts.cache_entries = 32;
  QueryService flat_service(&engine, flat_opts);
  ServiceOptions fact_opts = flat_opts;
  fact_opts.result_form = ResultForm::kAuto;
  QueryService fact_service(&engine, fact_opts);

  std::vector<std::string> texts;
  for (int qi = 0; qi < 5; ++qi) {
    texts.push_back(testutil::RandomQueryFromData(data, 500 + qi, 3));
  }
  texts.push_back("SELECT DISTINCT ?a WHERE { ?a <urn:p0> ?b . }");
  texts.push_back(
      "SELECT ?a ?c WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . } LIMIT 4");

  for (const std::string& text : texts) {
    for (const auto& [offset, limit] :
         std::vector<std::pair<uint64_t, uint64_t>>{
             {0, 0}, {0, 3}, {2, 2}, {7, 0}}) {
      RequestOptions request;
      request.offset = offset;
      request.limit = limit;
      auto want = flat_service.Query(text, request);
      auto miss_or_hit = fact_service.Query(text, request);
      auto hit = fact_service.Query(text, request);  // definitely cached
      ASSERT_TRUE(want.ok() && miss_or_hit.ok() && hit.ok()) << text;
      EXPECT_EQ(miss_or_hit->rows, want->rows) << text;
      EXPECT_EQ(hit->rows, want->rows) << text;
      EXPECT_EQ(hit->total_rows, want->total_rows) << text;
      EXPECT_EQ(hit->truncated, want->truncated) << text;
      EXPECT_EQ(hit->var_names, want->var_names) << text;
    }
  }
}

}  // namespace
}  // namespace amber
