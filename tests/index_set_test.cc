// Tests for the IndexSet ensemble: joint build, byte accounting, and the
// combined save/load round trip used by the offline stage.

#include <gtest/gtest.h>

#include <sstream>

#include "index/index_set.h"
#include "test_util.h"

namespace amber {
namespace {

TEST(IndexSetTest, BuildAllThree) {
  auto triples = testutil::RandomDataset(4, 40, 200, 6);
  auto encoded = EncodedDataset::Encode(triples);
  ASSERT_TRUE(encoded.ok());
  Multigraph g = Multigraph::FromDataset(*encoded);
  IndexSet set =
      IndexSet::Build(g, encoded->attribute_values,
                      encoded->dictionaries.attr_predicates().size());
  EXPECT_EQ(set.signature.NumVertices(), g.NumVertices());
  EXPECT_EQ(set.neighborhood.NumVertices(), g.NumVertices());
  EXPECT_EQ(set.attribute.NumAttributes(), g.NumAttributes());
  EXPECT_EQ(set.value.NumAttributes(), g.NumAttributes());
  EXPECT_GT(set.ByteSize(), 0u);
  EXPECT_EQ(set.ByteSize(),
            set.attribute.ByteSize() + set.signature.ByteSize() +
                set.neighborhood.ByteSize() + set.value.ByteSize());
}

TEST(IndexSetTest, SaveLoadRoundTripPreservesAnswers) {
  auto triples = testutil::RandomDataset(8, 30, 250, 5);
  auto encoded = EncodedDataset::Encode(triples);
  ASSERT_TRUE(encoded.ok());
  Multigraph g = Multigraph::FromDataset(*encoded);
  IndexSet set =
      IndexSet::Build(g, encoded->attribute_values,
                      encoded->dictionaries.attr_predicates().size());

  std::stringstream ss;
  set.Save(ss);
  IndexSet loaded;
  ASSERT_TRUE(loaded.Load(ss).ok());

  // Compare probe answers from all three indexes.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    Synopsis q = ComputeVertexSynopsis(g, v).NormalizedForQuery();
    EXPECT_EQ(loaded.signature.Candidates(q), set.signature.Candidates(q));
    std::vector<EdgeTypeId> t = {0};
    EXPECT_EQ(loaded.neighborhood.Superset(v, Direction::kIn, t),
              set.neighborhood.Superset(v, Direction::kIn, t));
  }
  for (AttributeId a = 0; a < g.NumAttributes(); ++a) {
    std::vector<AttributeId> attrs = {a};
    EXPECT_EQ(loaded.attribute.Candidates(attrs),
              set.attribute.Candidates(attrs));
  }
}

TEST(IndexSetTest, LoadFailsOnTruncatedStream) {
  auto triples = testutil::RandomDataset(9, 10, 40, 3);
  auto encoded = EncodedDataset::Encode(triples);
  ASSERT_TRUE(encoded.ok());
  Multigraph g = Multigraph::FromDataset(*encoded);
  IndexSet set =
      IndexSet::Build(g, encoded->attribute_values,
                      encoded->dictionaries.attr_predicates().size());
  std::stringstream ss;
  set.Save(ss);
  std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  IndexSet loaded;
  EXPECT_FALSE(loaded.Load(truncated).ok());
}

// Lemma 1 end-to-end at index level: the S candidates for a query synopsis
// derived from a real embedding always contain the embedded vertex.
TEST(IndexSetTest, SignatureIndexCompletenessOnQuerySynopses) {
  auto triples = testutil::RandomDataset(10, 25, 150, 4);
  auto encoded = EncodedDataset::Encode(triples);
  ASSERT_TRUE(encoded.ok());
  Multigraph g = Multigraph::FromDataset(*encoded);
  IndexSet set =
      IndexSet::Build(g, encoded->attribute_values,
                      encoded->dictionaries.attr_predicates().size());
  Rng rng(5);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    SynopsisBuilder qb;
    for (Direction d : {Direction::kIn, Direction::kOut}) {
      const size_t n = g.GroupCount(v, d);
      for (size_t i = 0; i < n; ++i) {
        if (rng.Chance(0.5)) continue;
        qb.AddMultiEdge(d, g.Group(v, d, i).types);
      }
    }
    Synopsis q = qb.Build().NormalizedForQuery();
    auto cand = set.signature.Candidates(q);
    EXPECT_TRUE(std::binary_search(cand.begin(), cand.end(), v))
        << "S index dropped vertex " << v;
  }
}

}  // namespace
}  // namespace amber
