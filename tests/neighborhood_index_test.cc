// Property tests for the OTIL neighbourhood index (Section 4.3): superset
// queries must equal a brute-force scan of the adjacency groups for every
// (graph shape, query size, seed) combination; plus structural edge cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "graph/multigraph.h"
#include "index/neighborhood_index.h"
#include "test_util.h"
#include "util/random.h"

namespace amber {
namespace {

std::vector<VertexId> BruteForceSuperset(const Multigraph& g, VertexId v,
                                         Direction d,
                                         std::span<const EdgeTypeId> types) {
  std::vector<VertexId> out;
  const size_t n = g.GroupCount(v, d);
  for (size_t i = 0; i < n; ++i) {
    GroupView view = g.Group(v, d, i);
    size_t k = 0;
    bool contains = true;
    for (EdgeTypeId t : types) {
      while (k < view.types.size() && view.types[k] < t) ++k;
      if (k == view.types.size() || view.types[k] != t) {
        contains = false;
        break;
      }
      ++k;
    }
    if (contains) out.push_back(view.neighbor);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(NeighborhoodIndexTest, PaperFigure3Example) {
  // v2's (London's) N+ trie from Figure 3: multi-edges {t1}<-v3, {t5}<-v1
  // and v7, {t6}<-v0, {t4,t5}<-v1.
  Multigraph::Builder b;
  b.AddEdge(3, 1, 2);
  b.AddEdge(1, 5, 2);
  b.AddEdge(7, 5, 2);
  b.AddEdge(0, 6, 2);
  b.AddEdge(1, 4, 2);
  b.EnsureVertexCount(8);
  Multigraph g = std::move(b).Build();
  NeighborhoodIndex index = NeighborhoodIndex::Build(g);

  std::vector<EdgeTypeId> t5 = {5};
  EXPECT_EQ(index.Superset(2, Direction::kIn, t5),
            (std::vector<VertexId>{1, 7}));
  std::vector<EdgeTypeId> t45 = {4, 5};
  EXPECT_EQ(index.Superset(2, Direction::kIn, t45),
            (std::vector<VertexId>{1}));
  std::vector<EdgeTypeId> t6 = {6};
  EXPECT_EQ(index.Superset(2, Direction::kIn, t6),
            (std::vector<VertexId>{0}));
  std::vector<EdgeTypeId> t9 = {9};
  EXPECT_TRUE(index.Superset(2, Direction::kIn, t9).empty());
  // Empty query: all in-neighbours.
  EXPECT_EQ(index.Superset(2, Direction::kIn, {}),
            (std::vector<VertexId>{0, 1, 3, 7}));
  // Out side of v2 is empty here.
  EXPECT_TRUE(index.Superset(2, Direction::kOut, t5).empty());
}

TEST(NeighborhoodIndexTest, SharedPrefixesInTrie) {
  // Multi-edges {1}, {1,2}, {1,2,3}, {1,3}, {2,3} towards vertex 0.
  Multigraph::Builder b;
  b.AddEdge(10, 1, 0);
  b.AddEdge(11, 1, 0);
  b.AddEdge(11, 2, 0);
  b.AddEdge(12, 1, 0);
  b.AddEdge(12, 2, 0);
  b.AddEdge(12, 3, 0);
  b.AddEdge(13, 1, 0);
  b.AddEdge(13, 3, 0);
  b.AddEdge(14, 2, 0);
  b.AddEdge(14, 3, 0);
  Multigraph g = std::move(b).Build();
  NeighborhoodIndex index = NeighborhoodIndex::Build(g);

  std::vector<EdgeTypeId> q1 = {1};
  EXPECT_EQ(index.Superset(0, Direction::kIn, q1),
            (std::vector<VertexId>{10, 11, 12, 13}));
  std::vector<EdgeTypeId> q13 = {1, 3};
  EXPECT_EQ(index.Superset(0, Direction::kIn, q13),
            (std::vector<VertexId>{12, 13}));
  std::vector<EdgeTypeId> q23 = {2, 3};
  EXPECT_EQ(index.Superset(0, Direction::kIn, q23),
            (std::vector<VertexId>{12, 14}));
  std::vector<EdgeTypeId> q123 = {1, 2, 3};
  EXPECT_EQ(index.Superset(0, Direction::kIn, q123),
            (std::vector<VertexId>{12}));
  std::vector<EdgeTypeId> q3 = {3};
  EXPECT_EQ(index.Superset(0, Direction::kIn, q3),
            (std::vector<VertexId>{12, 13, 14}));
}

struct OtilParam {
  int num_entities;
  int num_edges;
  int num_predicates;
  uint64_t seed;
};

class OtilPropertyTest : public ::testing::TestWithParam<OtilParam> {};

TEST_P(OtilPropertyTest, MatchesBruteForceScan) {
  const OtilParam param = GetParam();
  auto triples = testutil::RandomDataset(param.seed, param.num_entities,
                                         param.num_edges,
                                         param.num_predicates);
  auto encoded = EncodedDataset::Encode(triples);
  ASSERT_TRUE(encoded.ok());
  Multigraph g = Multigraph::FromDataset(*encoded);
  NeighborhoodIndex index = NeighborhoodIndex::Build(g);

  Rng rng(param.seed ^ 0x515151);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (Direction d : {Direction::kIn, Direction::kOut}) {
      // Random query type sets of size 0..3.
      for (int trial = 0; trial < 6; ++trial) {
        size_t qsize = rng.Uniform(4);
        std::vector<EdgeTypeId> types;
        for (size_t i = 0; i < qsize; ++i) {
          types.push_back(static_cast<EdgeTypeId>(
              rng.Uniform(param.num_predicates + 2)));  // incl. unknown ids
        }
        std::sort(types.begin(), types.end());
        types.erase(std::unique(types.begin(), types.end()), types.end());
        EXPECT_EQ(index.Superset(v, d, types), BruteForceSuperset(g, v, d,
                                                                  types))
            << "v=" << v << " d=" << static_cast<int>(d);
      }
      // Exact multi-edges of real groups (guaranteed hits).
      const size_t n = g.GroupCount(v, d);
      for (size_t i = 0; i < n && i < 4; ++i) {
        GroupView view = g.Group(v, d, i);
        std::vector<EdgeTypeId> types(view.types.begin(), view.types.end());
        auto got = index.Superset(v, d, types);
        EXPECT_EQ(got, BruteForceSuperset(g, v, d, types));
        EXPECT_TRUE(std::binary_search(got.begin(), got.end(),
                                       view.neighbor));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OtilPropertyTest,
    ::testing::Values(OtilParam{5, 10, 2, 1}, OtilParam{10, 60, 3, 2},
                      OtilParam{20, 200, 4, 3}, OtilParam{30, 400, 8, 4},
                      OtilParam{15, 300, 2, 5}, OtilParam{50, 150, 20, 6},
                      OtilParam{8, 256, 3, 7}),
    [](const ::testing::TestParamInfo<OtilParam>& info) {
      return "e" + std::to_string(info.param.num_entities) + "_m" +
             std::to_string(info.param.num_edges) + "_p" +
             std::to_string(info.param.num_predicates) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(NeighborhoodIndexTest, SaveLoadRoundTrip) {
  auto triples = testutil::RandomDataset(21, 25, 300, 5);
  auto encoded = EncodedDataset::Encode(triples);
  ASSERT_TRUE(encoded.ok());
  Multigraph g = Multigraph::FromDataset(*encoded);
  NeighborhoodIndex index = NeighborhoodIndex::Build(g);

  std::stringstream ss;
  index.Save(ss);
  NeighborhoodIndex loaded;
  ASSERT_TRUE(loaded.Load(ss).ok());

  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (Direction d : {Direction::kIn, Direction::kOut}) {
      EXPECT_EQ(loaded.Superset(v, d, {}), index.Superset(v, d, {}));
      std::vector<EdgeTypeId> q = {1, 3};
      EXPECT_EQ(loaded.Superset(v, d, q), index.Superset(v, d, q));
    }
  }
}

TEST(NeighborhoodIndexTest, EmptyGraph) {
  Multigraph g = Multigraph::Builder().Build();
  NeighborhoodIndex index = NeighborhoodIndex::Build(g);
  EXPECT_EQ(index.NumVertices(), 0u);
}

}  // namespace
}  // namespace amber
