// End-to-end tests of the AMbER engine: counting vs materializing, DISTINCT,
// LIMIT, timeouts, unsatisfiable queries, disconnected queries, self-loops,
// parallel mode, offline-artifact round-trips and ablation options.

#include <gtest/gtest.h>

#include <sstream>

#include "core/amber_engine.h"
#include "gen/paper_example.h"
#include "test_util.h"

namespace amber {
namespace {

AmberEngine MustBuild(const std::vector<Triple>& triples) {
  auto engine = AmberEngine::Build(triples);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).value();
}

std::vector<Triple> ChainData() {
  // a -p-> b -p-> c -p-> d, plus attributes and a side edge.
  return {
      {Term::Iri("urn:a"), Term::Iri("urn:p"), Term::Iri("urn:b")},
      {Term::Iri("urn:b"), Term::Iri("urn:p"), Term::Iri("urn:c")},
      {Term::Iri("urn:c"), Term::Iri("urn:p"), Term::Iri("urn:d")},
      {Term::Iri("urn:a"), Term::Iri("urn:t"), Term::Literal("x")},
      {Term::Iri("urn:c"), Term::Iri("urn:t"), Term::Literal("x")},
      {Term::Iri("urn:b"), Term::Iri("urn:q"), Term::Iri("urn:a")},
  };
}

TEST(AmberEngineTest, SimpleEdgeQuery) {
  AmberEngine engine = MustBuild(ChainData());
  auto count = engine.CountSparql("SELECT ?x ?y WHERE { ?x <urn:p> ?y . }", {});
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(count->count, 3u);
  EXPECT_FALSE(count->stats.timed_out);
}

TEST(AmberEngineTest, PathQueryBagSemantics) {
  AmberEngine engine = MustBuild(ChainData());
  // Two 2-hop paths: a-b-c, b-c-d.
  auto count = engine.CountSparql(
      "SELECT ?x ?z WHERE { ?x <urn:p> ?y . ?y <urn:p> ?z . }", {});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->count, 2u);
}

TEST(AmberEngineTest, HomomorphismAllowsVertexReuse) {
  // Query triangle of distinct variables can map onto a 2-cycle via
  // homomorphism (no injectivity).
  std::vector<Triple> data = {
      {Term::Iri("urn:a"), Term::Iri("urn:p"), Term::Iri("urn:b")},
      {Term::Iri("urn:b"), Term::Iri("urn:p"), Term::Iri("urn:a")},
  };
  AmberEngine engine = MustBuild(data);
  auto count = engine.CountSparql(
      "SELECT ?x WHERE { ?x <urn:p> ?y . ?y <urn:p> ?x . }", {});
  ASSERT_TRUE(count.ok());
  // (a,b) and (b,a).
  EXPECT_EQ(count->count, 2u);
}

TEST(AmberEngineTest, AttributeFilteredQuery) {
  AmberEngine engine = MustBuild(ChainData());
  auto rows = engine.MaterializeSparql(
      "SELECT ?x ?y WHERE { ?x <urn:p> ?y . ?x <urn:t> \"x\" . }", {});
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->rows.size(), 2u);  // a and c qualify
}

TEST(AmberEngineTest, DistinctCollapsesDuplicates) {
  AmberEngine engine = MustBuild(ChainData());
  // ?x has p-successors; project only ?x: b appears for both targets... each
  // subject has exactly one p edge here, so craft duplicates via ?y fan-in.
  auto bag = engine.CountSparql("SELECT ?y WHERE { ?x <urn:p> ?y . }", {});
  auto distinct = engine.CountSparql(
      "SELECT DISTINCT ?y WHERE { ?x <urn:p> ?y . }", {});
  ASSERT_TRUE(bag.ok());
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(bag->count, 3u);
  EXPECT_EQ(distinct->count, 3u);

  // A true duplicate case: unprojected satellite multiplies rows.
  std::vector<Triple> fan = ChainData();
  fan.push_back({Term::Iri("urn:e"), Term::Iri("urn:p"), Term::Iri("urn:b")});
  AmberEngine engine2 = MustBuild(fan);
  auto bag2 = engine2.CountSparql("SELECT ?y WHERE { ?x <urn:p> ?y . }", {});
  auto distinct2 = engine2.CountSparql(
      "SELECT DISTINCT ?y WHERE { ?x <urn:p> ?y . }", {});
  EXPECT_EQ(bag2->count, 4u);       // a->b, e->b, b->c, c->d
  EXPECT_EQ(distinct2->count, 3u);  // b, c, d
}

TEST(AmberEngineTest, LimitClauseTruncates) {
  AmberEngine engine = MustBuild(ChainData());
  auto rows = engine.MaterializeSparql(
      "SELECT ?x ?y WHERE { ?x <urn:p> ?y . } LIMIT 2", {});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 2u);
  EXPECT_TRUE(rows->stats.truncated);

  ExecOptions options;
  options.max_rows = 1;
  auto count = engine.CountSparql("SELECT ?x ?y WHERE { ?x <urn:p> ?y . }",
                                  options);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->count, 1u);
}

TEST(AmberEngineTest, UnsatisfiableQueriesReturnZeroQuickly) {
  AmberEngine engine = MustBuild(ChainData());
  const char* queries[] = {
      "SELECT ?x WHERE { ?x <urn:missing> ?y . }",
      "SELECT ?x WHERE { ?x <urn:p> <urn:zz> . }",
      "SELECT ?x WHERE { ?x <urn:t> \"nope\" . }",
      "SELECT ?x WHERE { <urn:zz> <urn:p> ?x . }",
  };
  for (const char* text : queries) {
    auto count = engine.CountSparql(text, {});
    ASSERT_TRUE(count.ok()) << text << ": " << count.status();
    EXPECT_EQ(count->count, 0u) << text;
  }
}

TEST(AmberEngineTest, GroundPatternGatesResults) {
  AmberEngine engine = MustBuild(ChainData());
  // True ground fact: results unaffected.
  auto with_true = engine.CountSparql(
      "SELECT ?x WHERE { <urn:a> <urn:p> <urn:b> . ?x <urn:p> ?y . }", {});
  ASSERT_TRUE(with_true.ok());
  EXPECT_EQ(with_true->count, 3u);
  // False ground fact: zero.
  auto with_false = engine.CountSparql(
      "SELECT ?x WHERE { <urn:a> <urn:p> <urn:d> . ?x <urn:p> ?y . }", {});
  ASSERT_TRUE(with_false.ok());
  EXPECT_EQ(with_false->count, 0u);
  // Ground attribute checks too.
  auto attr_true = engine.CountSparql(
      "SELECT ?x WHERE { <urn:a> <urn:t> \"x\" . ?x <urn:p> ?y . }", {});
  EXPECT_EQ(attr_true->count, 3u);
}

TEST(AmberEngineTest, DisconnectedQueryIsCrossProduct) {
  AmberEngine engine = MustBuild(ChainData());
  auto count = engine.CountSparql(
      "SELECT ?x ?a WHERE { ?x <urn:p> ?y . ?a <urn:q> ?b . }", {});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->count, 3u * 1u);
}

TEST(AmberEngineTest, SelfLoopQuery) {
  std::vector<Triple> data = ChainData();
  data.push_back({Term::Iri("urn:s"), Term::Iri("urn:p"), Term::Iri("urn:s")});
  AmberEngine engine = MustBuild(data);
  auto rows = engine.MaterializeSparql(
      "SELECT ?x WHERE { ?x <urn:p> ?x . }", {});
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0], "<urn:s>");
}

TEST(AmberEngineTest, TimeoutIsReportedNotFatal) {
  // A large random graph and a hub-heavy query: with a 0-ish budget the
  // deadline must fire and be reported via stats.
  auto triples = testutil::RandomDataset(5, 200, 6000, 2);
  AmberEngine engine = MustBuild(triples);
  ExecOptions options;
  options.timeout = std::chrono::milliseconds(1);
  auto count = engine.CountSparql(
      "SELECT ?a WHERE { ?a <urn:p0> ?b . ?b <urn:p0> ?c . ?c <urn:p0> ?d . "
      "?d <urn:p0> ?e . ?e <urn:p0> ?f . }",
      options);
  ASSERT_TRUE(count.ok()) << count.status();
  // Either it finished very fast or it timed out; both are legal, but the
  // call must return promptly and without error.
  if (count->stats.timed_out) {
    EXPECT_LT(count->stats.elapsed_ms, 1000.0);
  }
}

TEST(AmberEngineTest, ParallelCountMatchesSerial) {
  auto triples = testutil::RandomDataset(11, 60, 500, 3);
  AmberEngine engine = MustBuild(triples);
  const char* query =
      "SELECT ?a ?c WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . "
      "?a <urn:p2> ?d . }";
  auto serial = engine.CountSparql(query, {});
  ASSERT_TRUE(serial.ok());
  ExecOptions parallel;
  parallel.num_threads = 4;
  auto par = engine.CountSparql(query, parallel);
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(par->count, serial->count);
}

TEST(AmberEngineTest, AblationOptionsPreserveResults) {
  auto triples = testutil::RandomDataset(13, 50, 400, 4);
  AmberEngine engine = MustBuild(triples);
  const char* query =
      "SELECT ?a WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . ?a <urn:p2> ?d }";
  auto base = engine.CountSparql(query, {});
  ASSERT_TRUE(base.ok());

  ExecOptions no_sig;
  no_sig.use_signature_index = false;
  auto without_sig = engine.CountSparql(query, no_sig);
  ASSERT_TRUE(without_sig.ok());
  EXPECT_EQ(without_sig->count, base->count);

  ExecOptions no_order;
  no_order.plan.use_ordering_heuristics = false;
  auto without_order = engine.CountSparql(query, no_order);
  ASSERT_TRUE(without_order.ok());
  EXPECT_EQ(without_order->count, base->count);
}

TEST(AmberEngineTest, SaveLoadRoundTripPreservesResults) {
  auto triples = testutil::MustParse(kPaperExampleNTriples);
  AmberEngine engine = MustBuild(triples);
  std::stringstream ss;
  ASSERT_TRUE(engine.Save(ss).ok());
  auto loaded = AmberEngine::Load(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  auto a = engine.CountSparql(kPaperExampleQuery, {});
  auto b = loaded->CountSparql(kPaperExampleQuery, {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->count, b->count);
  EXPECT_EQ(loaded->graph().NumEdges(), engine.graph().NumEdges());
}

TEST(AmberEngineTest, LoadRejectsGarbage) {
  std::stringstream ss;
  ss << "this is not an engine file";
  auto loaded = AmberEngine::Load(ss);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST(AmberEngineTest, BuildTimingsPopulated) {
  AmberEngine engine = MustBuild(ChainData());
  EXPECT_GE(engine.timings().encode_seconds, 0.0);
  EXPECT_GE(engine.timings().graph_seconds, 0.0);
  EXPECT_GE(engine.timings().index_seconds, 0.0);
  EXPECT_GT(engine.graph().ByteSize(), 0u);
  EXPECT_GT(engine.indexes().ByteSize(), 0u);
}

TEST(AmberEngineTest, StatsExposeSearchEffort) {
  AmberEngine engine = MustBuild(ChainData());
  auto count = engine.CountSparql(
      "SELECT ?x ?z WHERE { ?x <urn:p> ?y . ?y <urn:p> ?z . }", {});
  ASSERT_TRUE(count.ok());
  EXPECT_GT(count->stats.initial_candidates, 0u);
  EXPECT_GT(count->stats.recursion_calls, 0u);
  EXPECT_EQ(count->stats.embeddings_found, 2u);
}

TEST(AmberEngineTest, EmptyDataset) {
  AmberEngine engine = MustBuild({});
  auto count = engine.CountSparql("SELECT ?x WHERE { ?x <urn:p> ?y . }", {});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->count, 0u);
}

}  // namespace
}  // namespace amber
