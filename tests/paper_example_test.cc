// Ground-truth tests against every worked example in the paper: the Figure 1
// multigraph, the Table 2 dictionaries, the Table 3 synopses, the Figure 2
// query multigraph, the Figure 4 decomposition, the Section 4/5 candidate
// sets, and the end-to-end embeddings of the running query.

#include <gtest/gtest.h>

#include <map>

#include "core/amber_engine.h"
#include "core/query_plan.h"
#include "gen/paper_example.h"
#include "graph/synopsis.h"
#include "sparql/parser.h"
#include "sparql/query_graph.h"
#include "test_util.h"

namespace amber {
namespace {

constexpr const char* kRes = "http://dbpedia.org/resource/";
constexpr const char* kOnt = "http://dbpedia.org/ontology/";

class PaperExampleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto triples = testutil::MustParse(kPaperExampleNTriples);
    auto engine = AmberEngine::Build(triples);
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = new AmberEngine(std::move(engine).value());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }

  static VertexId V(const std::string& local) {
    auto id = engine_->dictionaries().vertices().Find("<" +
                                                      std::string(kRes) +
                                                      local + ">");
    EXPECT_TRUE(id.has_value()) << "unknown vertex " << local;
    return id.value_or(kInvalidId);
  }
  static EdgeTypeId T(const std::string& local) {
    auto id = engine_->dictionaries().edge_types().Find(std::string(kOnt) +
                                                        local);
    EXPECT_TRUE(id.has_value()) << "unknown predicate " << local;
    return id.value_or(kInvalidId);
  }

  static AmberEngine* engine_;
};

AmberEngine* PaperExampleTest::engine_ = nullptr;

TEST_F(PaperExampleTest, Table4StyleGraphStatistics) {
  const Multigraph& g = engine_->graph();
  EXPECT_EQ(g.NumVertices(), 9u);   // v0..v8 of Table 2a
  EXPECT_EQ(g.NumEdges(), 13u);     // 16 triples - 3 literal triples
  EXPECT_EQ(g.NumEdgeTypes(), 9u);  // t0..t8 of Table 2b
  EXPECT_EQ(g.NumAttributes(), 3u);  // a0..a2 of Table 2c
}

TEST_F(PaperExampleTest, Table2EdgeTypeDictionaryOrder) {
  // The fixture lists triples so that predicates are first seen in the
  // exact Table 2b order.
  EXPECT_EQ(T("isPartOf"), 0u);
  EXPECT_EQ(T("hasCapital"), 1u);
  EXPECT_EQ(T("hasStadium"), 2u);
  EXPECT_EQ(T("livedIn"), 3u);
  EXPECT_EQ(T("diedIn"), 4u);
  EXPECT_EQ(T("wasBornIn"), 5u);
  EXPECT_EQ(T("wasFormedIn"), 6u);
  EXPECT_EQ(T("wasPartOf"), 7u);
  EXPECT_EQ(T("wasMarriedTo"), 8u);
}

// Table 3, all nine rows: synopsis = [f1+ f2+ f3+ f4+ | f1- f2- f3- f4-].
TEST_F(PaperExampleTest, Table3Synopses) {
  const Multigraph& g = engine_->graph();
  auto synopsis_of = [&](const std::string& name) {
    return ComputeVertexSynopsis(g, V(name));
  };
  using A = std::array<int32_t, 8>;
  const std::map<std::string, A> expected = {
      {"Music_Band", A{1, 1, -7, 7, 1, 1, -6, 6}},          // v0
      {"Amy_Winehouse", A{0, 0, 0, 0, 2, 5, -3, 8}},        // v1
      {"London", A{2, 4, -1, 6, 1, 2, 0, 2}},               // v2
      {"England", A{1, 2, 0, 3, 1, 1, -1, 1}},              // v3
      {"WembleyStadium", A{1, 1, -2, 2, 0, 0, 0, 0}},       // v4
      {"United_States", A{1, 1, -3, 3, 0, 0, 0, 0}},        // v5
      {"Blake_Fielder-Civil", A{1, 1, -8, 8, 1, 1, -3, 3}},  // v6
      {"Christopher_Nolan", A{0, 0, 0, 0, 1, 3, 0, 5}},     // v7
      {"Dark_Knight_Trilogy", A{1, 1, 0, 0, 0, 0, 0, 0}},   // v8
  };
  for (const auto& [name, fields] : expected) {
    EXPECT_EQ(synopsis_of(name).f, fields) << "synopsis mismatch for " << name
                                           << ": "
                                           << synopsis_of(name).ToString();
  }
  // Note: Table 3 prints v3 (England) as f+ = [1 2 0 3]; our value matches.
  // The paper's v2 row and all others also match bit for bit.
}

// Section 4.2's worked query: a vertex whose signature is {-t5} has synopsis
// [0 0 0 0 | 1 1 -5 5] (f3 negated); the R-tree must return exactly
// {Amy, Christopher_Nolan} — the paper's C^S_u0 = {v1, v7}.
TEST_F(PaperExampleTest, Section42SignatureCandidates) {
  Synopsis q;
  q.f = {0, 0, 0, 0, 1, 1, -5, 5};
  std::vector<VertexId> cand = engine_->indexes().signature.Candidates(q);
  std::vector<VertexId> expected = {V("Amy_Winehouse"),
                                    V("Christopher_Nolan")};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(cand, expected);
}

// Section 4.1's worked example: C^A_u5 for attributes {a1, a2}
// (<foundedIn,"1994">, <hasName,"MCA_Band">) is exactly {Music_Band}.
TEST_F(PaperExampleTest, Section41AttributeCandidates) {
  const auto& dicts = engine_->dictionaries();
  auto a1 = dicts.attributes().Find(RdfDictionaries::AttributeKey(
      Term::Iri(std::string(kOnt) + "foundedIn"), Term::Literal("1994")));
  auto a2 = dicts.attributes().Find(RdfDictionaries::AttributeKey(
      Term::Iri(std::string(kOnt) + "hasName"), Term::Literal("MCA_Band")));
  ASSERT_TRUE(a1.has_value());
  ASSERT_TRUE(a2.has_value());
  std::vector<AttributeId> attrs = {*a1, *a2};
  std::vector<VertexId> cand = engine_->indexes().attribute.Candidates(attrs);
  EXPECT_EQ(cand, std::vector<VertexId>{V("Music_Band")});
}

// Section 4.3's worked example: neighbours of London reachable by an
// incoming wasBornIn (t5) edge are {Amy, Christopher_Nolan} (C^N_u0).
TEST_F(PaperExampleTest, Section43NeighborhoodCandidates) {
  std::vector<EdgeTypeId> types = {T("wasBornIn")};
  std::vector<VertexId> cand = engine_->indexes().neighborhood.Superset(
      V("London"), Direction::kIn, types);
  std::vector<VertexId> expected = {V("Amy_Winehouse"),
                                    V("Christopher_Nolan")};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(cand, expected);

  // The multi-edge {t4, t5} (diedIn + wasBornIn) into London matches Amy
  // only.
  std::vector<EdgeTypeId> multi = {T("diedIn"), T("wasBornIn")};
  std::sort(multi.begin(), multi.end());
  EXPECT_EQ(engine_->indexes().neighborhood.Superset(V("London"),
                                                     Direction::kIn, multi),
            std::vector<VertexId>{V("Amy_Winehouse")});
}

// Section 5.1's IRI-anchor example: candidates for u3 via the anchor
// x:United_States through multi-edge {-t3} are the in-neighbours of
// United_States over livedIn. (The paper's prose says {v1}; by Figure 1
// Blake also livedIn United_States, so the complete candidate set is
// {Amy, Blake} — the prose appears to drop v6; the *final* embedding still
// binds u3 = Amy once the remaining constraints apply.)
TEST_F(PaperExampleTest, Section51IriAnchorCandidates) {
  std::vector<EdgeTypeId> types = {T("livedIn")};
  std::vector<VertexId> cand = engine_->indexes().neighborhood.Superset(
      V("United_States"), Direction::kIn, types);
  std::vector<VertexId> expected = {V("Amy_Winehouse"),
                                    V("Blake_Fielder-Civil")};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(cand, expected);
}

// Figure 4: Uc = {u1, u3, u5}, Us = {u0, u2, u4, u6}, initial vertex u1.
TEST_F(PaperExampleTest, Figure4Decomposition) {
  auto parsed = SparqlParser::Parse(kPaperExampleQuery);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto qg = QueryGraph::Build(*parsed, engine_->dictionaries());
  ASSERT_TRUE(qg.ok()) << qg.status();
  ASSERT_FALSE(qg->unsatisfiable()) << qg->unsatisfiable_reason();

  QueryPlan plan = PlanQuery(*qg);
  ASSERT_EQ(plan.components.size(), 1u);
  const ComponentPlan& cp = plan.components[0];

  auto name_of = [&](uint32_t u) { return qg->vertices()[u].name; };
  ASSERT_EQ(cp.core_order.size(), 3u);
  // u1 first (3 satellites), then u3 (1 satellite, adjacent), then u5.
  EXPECT_EQ(name_of(cp.core_order[0]), "X1");
  EXPECT_EQ(name_of(cp.core_order[1]), "X3");
  EXPECT_EQ(name_of(cp.core_order[2]), "X5");

  // Satellites: u1 hosts {X0, X2, X4}; u3 hosts {X6}; u5 hosts none.
  std::vector<std::string> sat0;
  for (uint32_t u : cp.satellites[0]) sat0.push_back(name_of(u));
  std::sort(sat0.begin(), sat0.end());
  EXPECT_EQ(sat0, (std::vector<std::string>{"X0", "X2", "X4"}));
  ASSERT_EQ(cp.satellites[1].size(), 1u);
  EXPECT_EQ(name_of(cp.satellites[1][0]), "X6");
  EXPECT_TRUE(cp.satellites[2].empty());
}

// End-to-end: the running query has exactly two embeddings (?X0 in
// {Amy, Christopher_Nolan}); the Fig. 2a-literal variant has zero.
TEST_F(PaperExampleTest, EndToEndEmbeddings) {
  auto count = engine_->CountSparql(kPaperExampleQuery, {});
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(count->count, 2u);

  auto rows = engine_->MaterializeSparql(kPaperExampleQuery, {});
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->rows.size(), 2u);
  // Shared bindings across both rows.
  const auto& names = rows->var_names;
  ASSERT_EQ(names.size(), 7u);
  auto col = [&](const std::string& var) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == var) return i;
    }
    ADD_FAILURE() << "missing var " << var;
    return size_t{0};
  };
  for (const auto& row : rows->rows) {
    EXPECT_EQ(row[col("X1")], "<" + std::string(kRes) + "London>");
    EXPECT_EQ(row[col("X2")], "<" + std::string(kRes) + "England>");
    EXPECT_EQ(row[col("X3")], "<" + std::string(kRes) + "Amy_Winehouse>");
    EXPECT_EQ(row[col("X4")], "<" + std::string(kRes) + "WembleyStadium>");
    EXPECT_EQ(row[col("X5")], "<" + std::string(kRes) + "Music_Band>");
    EXPECT_EQ(row[col("X6")],
              "<" + std::string(kRes) + "Blake_Fielder-Civil>");
  }
  std::vector<std::string> x0s = {rows->rows[0][col("X0")],
                                  rows->rows[1][col("X0")]};
  std::sort(x0s.begin(), x0s.end());
  EXPECT_EQ(x0s[0], "<" + std::string(kRes) + "Amy_Winehouse>");
  EXPECT_EQ(x0s[1], "<" + std::string(kRes) + "Christopher_Nolan>");

  auto zero = engine_->CountSparql(kPaperExampleQueryLiteralFig2a, {});
  ASSERT_TRUE(zero.ok()) << zero.status();
  EXPECT_EQ(zero->count, 0u);
}

// The brute-force oracle agrees with AMbER on the running example.
TEST_F(PaperExampleTest, OracleAgreement) {
  auto triples = testutil::MustParse(kPaperExampleNTriples);
  auto parsed = SparqlParser::Parse(kPaperExampleQuery);
  ASSERT_TRUE(parsed.ok());
  testutil::BruteForceReference oracle(triples);
  auto expected = testutil::CanonicalRows(oracle.Evaluate(*parsed));

  auto rows = engine_->MaterializeSparql(kPaperExampleQuery, {});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(testutil::CanonicalRows(rows->rows), expected);
}

}  // namespace
}  // namespace amber
