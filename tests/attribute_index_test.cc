// Unit tests for the attribute inverted-list index A (Section 4.1).

#include <gtest/gtest.h>

#include <sstream>

#include "index/attribute_index.h"
#include "test_util.h"

namespace amber {
namespace {

Multigraph AttributedGraph() {
  Multigraph::Builder b;
  // attr 0 on {0, 2, 4}; attr 1 on {2, 3}; attr 2 on {2}; attr 3 unused.
  b.AddAttribute(0, 0);
  b.AddAttribute(2, 0);
  b.AddAttribute(4, 0);
  b.AddAttribute(2, 1);
  b.AddAttribute(3, 1);
  b.AddAttribute(2, 2);
  b.EnsureVertexCount(5);
  Multigraph g = std::move(b).Build();
  return g;
}

TEST(AttributeIndexTest, InvertedListsSorted) {
  AttributeIndex index = AttributeIndex::Build(AttributedGraph());
  auto l0 = index.Vertices(0);
  EXPECT_EQ(std::vector<VertexId>(l0.begin(), l0.end()),
            (std::vector<VertexId>{0, 2, 4}));
  auto l1 = index.Vertices(1);
  EXPECT_EQ(std::vector<VertexId>(l1.begin(), l1.end()),
            (std::vector<VertexId>{2, 3}));
  EXPECT_TRUE(index.Vertices(7).empty());  // unknown attribute id
}

TEST(AttributeIndexTest, IntersectionCandidates) {
  AttributeIndex index = AttributeIndex::Build(AttributedGraph());
  std::vector<AttributeId> q01 = {0, 1};
  EXPECT_EQ(index.Candidates(q01), std::vector<VertexId>{2});
  std::vector<AttributeId> q012 = {0, 1, 2};
  EXPECT_EQ(index.Candidates(q012), std::vector<VertexId>{2});
  std::vector<AttributeId> q0 = {0};
  EXPECT_EQ(index.Candidates(q0), (std::vector<VertexId>{0, 2, 4}));
  // Unknown attribute kills the intersection.
  std::vector<AttributeId> q_unknown = {0, 9};
  EXPECT_TRUE(index.Candidates(q_unknown).empty());
  EXPECT_TRUE(index.Candidates({}).empty());
}

TEST(AttributeIndexTest, VertexHasAll) {
  AttributeIndex index = AttributeIndex::Build(AttributedGraph());
  std::vector<AttributeId> q01 = {0, 1};
  EXPECT_TRUE(index.VertexHasAll(2, q01));
  EXPECT_FALSE(index.VertexHasAll(0, q01));
  EXPECT_FALSE(index.VertexHasAll(3, q01));
  EXPECT_TRUE(index.VertexHasAll(1, {}));  // vacuous
}

TEST(AttributeIndexTest, SaveLoadRoundTrip) {
  AttributeIndex index = AttributeIndex::Build(AttributedGraph());
  std::stringstream ss;
  index.Save(ss);
  AttributeIndex loaded;
  ASSERT_TRUE(loaded.Load(ss).ok());
  EXPECT_TRUE(loaded == index);
}

TEST(AttributeIndexTest, EmptyGraph) {
  Multigraph g = Multigraph::Builder().Build();
  AttributeIndex index = AttributeIndex::Build(g);
  EXPECT_EQ(index.NumAttributes(), 0u);
  EXPECT_TRUE(index.Vertices(0).empty());
}

TEST(IntersectSortedTest, Basics) {
  std::vector<VertexId> a = {1, 3, 5, 7, 9};
  std::vector<VertexId> b = {3, 4, 5, 9, 11};
  EXPECT_EQ(IntersectSorted(a, b), (std::vector<VertexId>{3, 5, 9}));
  EXPECT_TRUE(IntersectSorted(a, {}).empty());
  EXPECT_EQ(IntersectSorted(a, a), a);
}

// Property: Candidates == brute-force intersection over random data.
TEST(AttributeIndexTest, MatchesBruteForceProperty) {
  auto triples = testutil::RandomDataset(/*seed=*/41, 30, 90, 4,
                                         /*num_literal_values=*/3);
  auto encoded = EncodedDataset::Encode(triples);
  ASSERT_TRUE(encoded.ok());
  Multigraph g = Multigraph::FromDataset(*encoded);
  AttributeIndex index = AttributeIndex::Build(g);

  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    size_t k = 1 + rng.Uniform(3);
    std::vector<AttributeId> attrs;
    for (size_t i = 0; i < k; ++i) {
      attrs.push_back(
          static_cast<AttributeId>(rng.Uniform(g.NumAttributes() + 1)));
    }
    std::sort(attrs.begin(), attrs.end());
    attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());

    std::vector<VertexId> expected;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      auto have = g.Attributes(v);
      bool all = true;
      for (AttributeId a : attrs) {
        if (!std::binary_search(have.begin(), have.end(), a)) {
          all = false;
          break;
        }
      }
      if (all) expected.push_back(v);
    }
    EXPECT_EQ(index.Candidates(attrs), expected) << "trial " << trial;
  }
}

}  // namespace
}  // namespace amber
