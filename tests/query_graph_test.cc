// Unit tests for the query-multigraph builder (Section 2.2.1): variable
// mapping, attribute/IRI-anchor constraints, multi-edge merging, ground
// patterns, unsatisfiability, projection validation, synopses.

#include <gtest/gtest.h>

#include "rdf/encoded_dataset.h"
#include "sparql/parser.h"
#include "sparql/query_graph.h"
#include "test_util.h"

namespace amber {
namespace {

class QueryGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<Triple> triples = {
        {Term::Iri("urn:a"), Term::Iri("urn:p"), Term::Iri("urn:b")},
        {Term::Iri("urn:a"), Term::Iri("urn:q"), Term::Iri("urn:b")},
        {Term::Iri("urn:b"), Term::Iri("urn:p"), Term::Iri("urn:c")},
        {Term::Iri("urn:a"), Term::Iri("urn:age"), Term::Literal("30")},
        {Term::Iri("urn:a"), Term::Iri("urn:name"), Term::Literal("Ann")},
        {Term::Iri("urn:c"), Term::Iri("urn:p"), Term::Iri("urn:c")},
    };
    auto encoded = EncodedDataset::Encode(triples);
    ASSERT_TRUE(encoded.ok());
    dicts_ = std::move(encoded->dictionaries);
  }

  QueryGraph MustBuild(std::string_view text) {
    auto parsed = SparqlParser::Parse(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    auto qg = QueryGraph::Build(*parsed, dicts_);
    EXPECT_TRUE(qg.ok()) << qg.status();
    return std::move(qg).value();
  }

  RdfDictionaries dicts_;
};

TEST_F(QueryGraphTest, VariablesBecomeVerticesInFirstUseOrder) {
  QueryGraph q = MustBuild(
      "SELECT ?y ?x WHERE { ?x <urn:p> ?y . ?y <urn:p> ?z . }");
  ASSERT_EQ(q.NumVertices(), 3u);
  EXPECT_EQ(q.vertices()[0].name, "x");
  EXPECT_EQ(q.vertices()[1].name, "y");
  EXPECT_EQ(q.vertices()[2].name, "z");
  // Projection follows SELECT order, not vertex order.
  ASSERT_EQ(q.projection().size(), 2u);
  EXPECT_EQ(q.projection()[0], 1u);
  EXPECT_EQ(q.projection()[1], 0u);
}

TEST_F(QueryGraphTest, ParallelPatternsMergeIntoOneMultiEdge) {
  QueryGraph q = MustBuild(
      "SELECT ?x WHERE { ?x <urn:p> ?y . ?x <urn:q> ?y . ?x <urn:p> ?y . }");
  ASSERT_EQ(q.edges().size(), 1u);
  EXPECT_EQ(q.edges()[0].types.size(), 2u);  // {p, q}, deduped
}

TEST_F(QueryGraphTest, OppositeDirectionsStayDistinctEdges) {
  QueryGraph q = MustBuild(
      "SELECT ?x WHERE { ?x <urn:p> ?y . ?y <urn:q> ?x . }");
  ASSERT_EQ(q.edges().size(), 2u);
  // Degree counts distinct neighbours, so both endpoints have degree 1.
  EXPECT_EQ(q.Degree(0), 1u);
  EXPECT_EQ(q.Degree(1), 1u);
}

TEST_F(QueryGraphTest, LiteralObjectBecomesAttribute) {
  QueryGraph q = MustBuild(
      "SELECT ?x WHERE { ?x <urn:age> \"30\" . ?x <urn:name> \"Ann\" . }");
  ASSERT_EQ(q.NumVertices(), 1u);
  EXPECT_EQ(q.vertices()[0].attrs.size(), 2u);
  EXPECT_TRUE(q.edges().empty());
  EXPECT_FALSE(q.unsatisfiable());
}

TEST_F(QueryGraphTest, UnknownLiteralMakesQueryUnsatisfiable) {
  QueryGraph q = MustBuild("SELECT ?x WHERE { ?x <urn:age> \"99\" . }");
  EXPECT_TRUE(q.unsatisfiable());
  QueryGraph q2 = MustBuild("SELECT ?x WHERE { ?x <urn:nope> \"30\" . }");
  EXPECT_TRUE(q2.unsatisfiable());
}

TEST_F(QueryGraphTest, ConstantObjectBecomesIriAnchor) {
  QueryGraph q = MustBuild("SELECT ?x WHERE { ?x <urn:p> <urn:b> . }");
  ASSERT_EQ(q.NumVertices(), 1u);
  ASSERT_EQ(q.vertices()[0].iris.size(), 1u);
  const IriConstraint& c = q.vertices()[0].iris[0];
  EXPECT_EQ(c.out_types.size(), 1u);
  EXPECT_TRUE(c.in_types.empty());
  EXPECT_EQ(dicts_.VertexToken(c.anchor), "<urn:b>");
}

TEST_F(QueryGraphTest, ConstantSubjectBecomesReverseIriAnchor) {
  QueryGraph q = MustBuild("SELECT ?x WHERE { <urn:a> <urn:p> ?x . }");
  ASSERT_EQ(q.vertices()[0].iris.size(), 1u);
  const IriConstraint& c = q.vertices()[0].iris[0];
  EXPECT_TRUE(c.out_types.empty());
  EXPECT_EQ(c.in_types.size(), 1u);
}

TEST_F(QueryGraphTest, AnchorsToSameConstantMerge) {
  QueryGraph q = MustBuild(
      "SELECT ?x WHERE { ?x <urn:p> <urn:b> . ?x <urn:q> <urn:b> . "
      "<urn:b> <urn:p> ?x . }");
  ASSERT_EQ(q.vertices()[0].iris.size(), 1u);
  const IriConstraint& c = q.vertices()[0].iris[0];
  EXPECT_EQ(c.out_types.size(), 2u);
  EXPECT_EQ(c.in_types.size(), 1u);
}

TEST_F(QueryGraphTest, UnknownConstantIriIsUnsatisfiable) {
  QueryGraph q = MustBuild("SELECT ?x WHERE { ?x <urn:p> <urn:missing> . }");
  EXPECT_TRUE(q.unsatisfiable());
  EXPECT_FALSE(q.unsatisfiable_reason().empty());
}

TEST_F(QueryGraphTest, SelfLoopPattern) {
  QueryGraph q = MustBuild("SELECT ?x WHERE { ?x <urn:p> ?x . }");
  ASSERT_EQ(q.NumVertices(), 1u);
  EXPECT_TRUE(q.edges().empty());
  ASSERT_EQ(q.vertices()[0].self_types.size(), 1u);
  EXPECT_EQ(q.Degree(0), 0u);  // self loops do not create neighbours
}

TEST_F(QueryGraphTest, GroundPatternsCollected) {
  QueryGraph q = MustBuild(
      "SELECT ?x WHERE { <urn:a> <urn:p> <urn:b> . "
      "<urn:a> <urn:age> \"30\" . ?x <urn:p> ?y . }");
  EXPECT_EQ(q.ground_edges().size(), 1u);
  EXPECT_EQ(q.ground_attributes().size(), 1u);
  EXPECT_FALSE(q.unsatisfiable());
}

TEST_F(QueryGraphTest, FilteredObjectBecomesPredicateConstraint) {
  QueryGraph q = MustBuild(
      "SELECT ?x WHERE { ?x <urn:p> ?y . ?x <urn:age> ?a . "
      "FILTER(?a > 25 && ?a < 40) }");
  // ?a is consumed by the FILTER: only ?x and ?y are vertices.
  ASSERT_EQ(q.NumVertices(), 2u);
  ASSERT_EQ(q.vertices()[0].preds.size(), 1u);
  const PredicateConstraint& pc = q.vertices()[0].preds[0];
  ASSERT_EQ(pc.comparisons.size(), 2u);
  EXPECT_EQ(pc.comparisons[0].op, CompareOp::kGt);
  EXPECT_TRUE(pc.comparisons[0].value.numeric);
  EXPECT_EQ(pc.comparisons[0].value.number, 25.0);
  EXPECT_TRUE(q.vertices()[0].HasLocalConstraints());
  EXPECT_FALSE(q.unsatisfiable());
  // The filtered pattern contributes no edge.
  EXPECT_EQ(q.edges().size(), 1u);
}

TEST_F(QueryGraphTest, FilteredConstantSubjectBecomesGroundPredicate) {
  QueryGraph q = MustBuild(
      "SELECT ?x WHERE { ?x <urn:p> ?y . <urn:a> <urn:age> ?v . "
      "FILTER(?v >= 30) }");
  ASSERT_EQ(q.ground_predicates().size(), 1u);
  EXPECT_EQ(q.ground_predicates()[0].comparisons.size(), 1u);
}

TEST_F(QueryGraphTest, FilterOnUnknownAttrPredicateIsUnsatisfiable) {
  // urn:p only ever has IRI objects, so it has no literal values.
  QueryGraph q = MustBuild(
      "SELECT ?x WHERE { ?x <urn:p> ?y . ?x <urn:p> ?v . FILTER(?v > 1) }");
  EXPECT_TRUE(q.unsatisfiable());
}

TEST_F(QueryGraphTest, UnsupportedFilterShapesAreUnimplemented) {
  const char* queries[] = {
      // Filtered variable in subject position.
      "SELECT ?v WHERE { ?x <urn:age> ?v . ?v <urn:p> ?y . FILTER(?v > 1) }",
      // Filtered variable joined across two patterns.
      "SELECT ?x WHERE { ?x <urn:age> ?v . ?y <urn:age> ?v . "
      "FILTER(?v > 1) }",
      // Projecting the filtered variable.
      "SELECT ?v WHERE { ?x <urn:age> ?v . FILTER(?v > 1) }",
  };
  for (const char* text : queries) {
    auto parsed = SparqlParser::Parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    auto qg = QueryGraph::Build(*parsed, dicts_);
    ASSERT_FALSE(qg.ok()) << text;
    EXPECT_TRUE(qg.status().IsUnimplemented()) << text << "\n" << qg.status();
  }
  // Filter on a variable absent from WHERE is an input error.
  auto parsed = SparqlParser::Parse(
      "SELECT ?x WHERE { ?x <urn:p> ?y . FILTER(?nope > 1) }");
  ASSERT_TRUE(parsed.ok());
  auto qg = QueryGraph::Build(*parsed, dicts_);
  ASSERT_FALSE(qg.ok());
  EXPECT_TRUE(qg.status().IsInvalidArgument()) << qg.status();
}

TEST_F(QueryGraphTest, VariablePredicateIsUnimplemented) {
  auto parsed = SparqlParser::Parse("SELECT ?x WHERE { ?x ?p ?y . }");
  ASSERT_TRUE(parsed.ok());
  auto qg = QueryGraph::Build(*parsed, dicts_);
  ASSERT_FALSE(qg.ok());
  EXPECT_TRUE(qg.status().IsUnimplemented());
}

TEST_F(QueryGraphTest, ProjectionMustOccurInWhere) {
  auto parsed = SparqlParser::Parse("SELECT ?nope WHERE { ?x <urn:p> ?y . }");
  ASSERT_TRUE(parsed.ok());
  auto qg = QueryGraph::Build(*parsed, dicts_);
  ASSERT_FALSE(qg.ok());
  EXPECT_TRUE(qg.status().IsInvalidArgument());
}

TEST_F(QueryGraphTest, SelectStarProjectsAllVariables) {
  QueryGraph q = MustBuild("SELECT * WHERE { ?a <urn:p> ?b . ?b <urn:q> ?c }");
  EXPECT_EQ(q.projection().size(), 3u);
}

TEST_F(QueryGraphTest, SynopsisIncludesAnchorsAndSelfLoops) {
  QueryGraph q = MustBuild(
      "SELECT ?x WHERE { ?x <urn:p> ?y . ?x <urn:q> <urn:b> . "
      "?x <urn:p> ?x . }");
  Synopsis s = q.VertexSynopsis(0);
  // Out side: multi-edges {p}(to y), {q}(to anchor), {p}(self) -> f1-=1,
  // f2- counts distinct {p,q} = 2.
  EXPECT_EQ(s.f[4], 1);
  EXPECT_EQ(s.f[5], 2);
  // In side: the self loop only -> f1+=1.
  EXPECT_EQ(s.f[0], 1);
  // r2 counts each type instance: p + q + 2*self.
  EXPECT_EQ(q.SignatureEdgeCount(0), 4u);
}

TEST_F(QueryGraphTest, EmptySideSynopsisIsNormalized) {
  QueryGraph q = MustBuild("SELECT ?x WHERE { ?x <urn:p> ?y . }");
  Synopsis s = q.VertexSynopsis(0);  // x has only an outgoing edge
  EXPECT_EQ(s.f[2], Synopsis::kEmptySideQueryF3);
  Synopsis sy = q.VertexSynopsis(1);  // y has only an incoming edge
  EXPECT_EQ(sy.f[6], Synopsis::kEmptySideQueryF3);
}

}  // namespace
}  // namespace amber
