// Unit tests for the six-permutation triple-store baseline: pattern range
// scans, join ordering, paper-model semantics (variables never bind
// literals), timeouts and naive-order mode.

#include <gtest/gtest.h>

#include "baseline/triple_store.h"
#include "sparql/parser.h"
#include "test_util.h"

namespace amber {
namespace {

std::vector<Triple> SocialData() {
  return {
      {Term::Iri("urn:alice"), Term::Iri("urn:knows"), Term::Iri("urn:bob")},
      {Term::Iri("urn:bob"), Term::Iri("urn:knows"), Term::Iri("urn:carol")},
      {Term::Iri("urn:alice"), Term::Iri("urn:likes"), Term::Iri("urn:carol")},
      {Term::Iri("urn:carol"), Term::Iri("urn:knows"), Term::Iri("urn:alice")},
      {Term::Iri("urn:alice"), Term::Iri("urn:age"), Term::Literal("30")},
      {Term::Iri("urn:bob"), Term::Iri("urn:age"), Term::Literal("30")},
  };
}

TripleStoreEngine MustBuild(const std::vector<Triple>& data,
                            bool reorder = true) {
  TripleStoreEngine::Options options;
  options.reorder_patterns = reorder;
  auto store = TripleStoreEngine::Build(data, options);
  EXPECT_TRUE(store.ok()) << store.status();
  return std::move(store).value();
}

TEST(TripleStoreTest, SingleEdgePattern) {
  TripleStoreEngine store = MustBuild(SocialData());
  auto count = store.CountSparql(
      "SELECT ?x ?y WHERE { ?x <urn:knows> ?y . }", {});
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(count->count, 3u);
  EXPECT_EQ(store.NumTriples(), 6u);
}

TEST(TripleStoreTest, BoundSubjectAndObject) {
  TripleStoreEngine store = MustBuild(SocialData());
  auto c1 = store.CountSparql(
      "SELECT ?y WHERE { <urn:alice> <urn:knows> ?y . }", {});
  EXPECT_EQ(c1->count, 1u);
  auto c2 = store.CountSparql(
      "SELECT ?x WHERE { ?x <urn:knows> <urn:alice> . }", {});
  EXPECT_EQ(c2->count, 1u);
  auto c3 = store.CountSparql(
      "SELECT ?p WHERE { ?p <urn:age> \"30\" . }", {});
  EXPECT_EQ(c3->count, 2u);
}

TEST(TripleStoreTest, VariablesNeverBindLiterals) {
  // ?y ranges over resources only (paper model): the age triples with
  // literal objects must not contribute.
  TripleStoreEngine store = MustBuild(SocialData());
  auto count = store.CountSparql("SELECT ?x ?y WHERE { ?x <urn:age> ?y . }",
                                 {});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->count, 0u);
}

TEST(TripleStoreTest, JoinAcrossPatterns) {
  TripleStoreEngine store = MustBuild(SocialData());
  // Friend-of-friend cycle: alice->bob->carol->alice.
  auto rows = store.MaterializeSparql(
      "SELECT ?a ?b ?c WHERE { ?a <urn:knows> ?b . ?b <urn:knows> ?c . "
      "?c <urn:knows> ?a . }",
      {});
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->rows.size(), 3u);  // three rotations of the cycle
}

TEST(TripleStoreTest, NaiveOrderSameResults) {
  TripleStoreEngine fast = MustBuild(SocialData(), /*reorder=*/true);
  TripleStoreEngine naive = MustBuild(SocialData(), /*reorder=*/false);
  EXPECT_EQ(naive.name(), "TripleStore");
  const char* query =
      "SELECT ?a ?c WHERE { ?a <urn:knows> ?b . ?b <urn:knows> ?c . "
      "?a <urn:age> \"30\" . }";
  auto f = fast.CountSparql(query, {});
  auto n = naive.CountSparql(query, {});
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(f->count, n->count);
}

TEST(TripleStoreTest, UnknownConstantsGiveZero) {
  TripleStoreEngine store = MustBuild(SocialData());
  auto c = store.CountSparql(
      "SELECT ?x WHERE { ?x <urn:nope> ?y . }", {});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->count, 0u);
  auto c2 = store.CountSparql(
      "SELECT ?x WHERE { ?x <urn:knows> <urn:nobody> . }", {});
  EXPECT_EQ(c2->count, 0u);
}

TEST(TripleStoreTest, VariablePredicateUnimplemented) {
  TripleStoreEngine store = MustBuild(SocialData());
  auto c = store.CountSparql("SELECT ?x WHERE { ?x ?p ?y . }", {});
  ASSERT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsUnimplemented());
}

TEST(TripleStoreTest, LimitAndDistinct) {
  TripleStoreEngine store = MustBuild(SocialData());
  auto rows = store.MaterializeSparql(
      "SELECT ?x ?y WHERE { ?x <urn:knows> ?y . } LIMIT 2", {});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 2u);
  auto d = store.CountSparql(
      "SELECT DISTINCT ?x WHERE { ?x <urn:knows> ?y . }", {});
  EXPECT_EQ(d->count, 3u);  // alice, bob, carol
}

TEST(TripleStoreTest, DuplicateInputTriplesDeduped) {
  auto data = SocialData();
  data.push_back(data[0]);
  data.push_back(data[0]);
  TripleStoreEngine store = MustBuild(data);
  EXPECT_EQ(store.NumTriples(), 6u);
  auto count = store.CountSparql(
      "SELECT ?x ?y WHERE { ?x <urn:knows> ?y . }", {});
  EXPECT_EQ(count->count, 3u);
}

TEST(TripleStoreTest, TimeoutReported) {
  auto data = testutil::RandomDataset(3, 80, 4000, 2);
  TripleStoreEngine store = MustBuild(data);
  ExecOptions options;
  options.timeout = std::chrono::milliseconds(1);
  auto count = store.CountSparql(
      "SELECT ?a WHERE { ?a <urn:p0> ?b . ?b <urn:p0> ?c . ?c <urn:p0> ?d . "
      "?d <urn:p0> ?e . ?e <urn:p0> ?f . ?f <urn:p0> ?g . }",
      options);
  ASSERT_TRUE(count.ok());
  if (count->stats.timed_out) {
    EXPECT_LT(count->stats.elapsed_ms, 1000.0);
  }
}

TEST(TripleStoreTest, ByteSizeNonZero) {
  TripleStoreEngine store = MustBuild(SocialData());
  EXPECT_GT(store.ByteSize(), 0u);
}

}  // namespace
}  // namespace amber
