// Property tests for the 8-D R-tree: dominance query results must equal a
// brute-force scan for every (size, shape, seed) combination, including
// degenerate trees (empty, single point, all-identical points).

#include <gtest/gtest.h>

#include <sstream>

#include "index/rtree.h"
#include "util/random.h"

namespace amber {
namespace {

std::vector<Synopsis> RandomPoints(uint64_t seed, size_t n, int32_t range) {
  Rng rng(seed);
  std::vector<Synopsis> points(n);
  for (Synopsis& p : points) {
    for (int i = 0; i < Synopsis::kNumFields; ++i) {
      // f3 fields are negated mins: allow negative coordinates everywhere.
      p.f[i] = static_cast<int32_t>(rng.UniformRange(-range, range));
    }
  }
  return points;
}

std::vector<uint32_t> BruteForceDominating(const std::vector<Synopsis>& pts,
                                           const Synopsis& q) {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < pts.size(); ++i) {
    if (pts[i].Dominates(q)) out.push_back(i);
  }
  return out;
}

TEST(RTreeTest, EmptyTree) {
  SynopsisRTree tree = SynopsisRTree::Build({});
  std::vector<uint32_t> out;
  tree.QueryDominating(Synopsis{}, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree.NumPoints(), 0u);
}

TEST(RTreeTest, SinglePoint) {
  Synopsis p;
  p.f = {1, 2, 3, 4, 5, 6, 7, 8};
  SynopsisRTree tree = SynopsisRTree::Build(std::vector<Synopsis>{p});
  std::vector<uint32_t> out;
  tree.QueryDominating(Synopsis{}, &out);  // all-zero query: p >= 0
  EXPECT_EQ(out, std::vector<uint32_t>{0});
  out.clear();
  Synopsis q = p;
  q.f[3] += 1;  // now p no longer dominates
  tree.QueryDominating(q, &out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeTest, AllIdenticalPoints) {
  Synopsis p;
  p.f = {2, 2, 2, 2, 2, 2, 2, 2};
  std::vector<Synopsis> pts(500, p);
  SynopsisRTree tree = SynopsisRTree::Build(pts);
  std::vector<uint32_t> out;
  tree.QueryDominating(p, &out);
  EXPECT_EQ(out.size(), 500u);
  // Sorted ascending ids.
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

struct RTreeParam {
  size_t num_points;
  int32_t coord_range;
  uint64_t seed;
};

class RTreePropertyTest : public ::testing::TestWithParam<RTreeParam> {};

TEST_P(RTreePropertyTest, MatchesBruteForceScan) {
  const RTreeParam param = GetParam();
  std::vector<Synopsis> pts =
      RandomPoints(param.seed, param.num_points, param.coord_range);
  SynopsisRTree tree = SynopsisRTree::Build(pts);

  Rng rng(param.seed ^ 0xABCDEF);
  for (int trial = 0; trial < 50; ++trial) {
    Synopsis q;
    for (int i = 0; i < Synopsis::kNumFields; ++i) {
      q.f[i] = static_cast<int32_t>(
          rng.UniformRange(-param.coord_range, param.coord_range));
    }
    std::vector<uint32_t> got;
    tree.QueryDominating(q, &got);
    EXPECT_EQ(got, BruteForceDominating(pts, q)) << "trial " << trial;
  }
  // Also query with existing points (guaranteed non-empty results).
  for (int trial = 0; trial < 20 && !pts.empty(); ++trial) {
    const Synopsis& q = pts[rng.Uniform(pts.size())];
    std::vector<uint32_t> got;
    tree.QueryDominating(q, &got);
    EXPECT_EQ(got, BruteForceDominating(pts, q));
    EXPECT_FALSE(got.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RTreePropertyTest,
    ::testing::Values(RTreeParam{1, 3, 1}, RTreeParam{10, 2, 2},
                      RTreeParam{100, 5, 3}, RTreeParam{100, 1, 4},
                      RTreeParam{1000, 8, 5}, RTreeParam{1000, 2, 6},
                      RTreeParam{5000, 20, 7}, RTreeParam{5000, 3, 8},
                      RTreeParam{20000, 10, 9}),
    [](const ::testing::TestParamInfo<RTreeParam>& info) {
      return "n" + std::to_string(info.param.num_points) + "_r" +
             std::to_string(info.param.coord_range) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(RTreeTest, BulkAcceptPathIsExercised) {
  // Many points far above the query: the all-inside fast path must fire and
  // still produce exact results.
  std::vector<Synopsis> pts;
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    Synopsis p;
    for (int j = 0; j < Synopsis::kNumFields; ++j) {
      p.f[j] = 100 + static_cast<int32_t>(rng.Uniform(10));
    }
    pts.push_back(p);
  }
  SynopsisRTree tree = SynopsisRTree::Build(pts);
  Synopsis q;
  q.f = {1, 1, 1, 1, 1, 1, 1, 1};
  std::vector<uint32_t> out;
  tree.QueryDominating(q, &out);
  EXPECT_EQ(out.size(), 2000u);
}

TEST(RTreeTest, SaveLoadRoundTrip) {
  std::vector<Synopsis> pts = RandomPoints(77, 3000, 10);
  SynopsisRTree tree = SynopsisRTree::Build(pts);
  std::stringstream ss;
  tree.Save(ss);
  SynopsisRTree loaded;
  ASSERT_TRUE(loaded.Load(ss).ok());
  EXPECT_EQ(loaded.NumPoints(), tree.NumPoints());
  EXPECT_EQ(loaded.NumNodes(), tree.NumNodes());
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    Synopsis q;
    for (int i = 0; i < Synopsis::kNumFields; ++i) {
      q.f[i] = static_cast<int32_t>(rng.UniformRange(-10, 10));
    }
    std::vector<uint32_t> a, b;
    tree.QueryDominating(q, &a);
    loaded.QueryDominating(q, &b);
    EXPECT_EQ(a, b);
  }
}

TEST(RTreeTest, CustomFanoutStillExact) {
  std::vector<Synopsis> pts = RandomPoints(31, 4000, 6);
  SynopsisRTree::Options opts;
  opts.leaf_capacity = 4;
  opts.fanout = 3;
  SynopsisRTree tree = SynopsisRTree::Build(pts, opts);
  Rng rng(32);
  for (int trial = 0; trial < 30; ++trial) {
    Synopsis q;
    for (int i = 0; i < Synopsis::kNumFields; ++i) {
      q.f[i] = static_cast<int32_t>(rng.UniformRange(-6, 6));
    }
    std::vector<uint32_t> got;
    tree.QueryDominating(q, &got);
    EXPECT_EQ(got, BruteForceDominating(pts, q));
  }
}

}  // namespace
}  // namespace amber
