// Cooperative cancellation: token/source unit semantics plus the
// bounded-overshoot contract of the matcher integration — a tripped token
// unwinds execution within one tick window (~64 recursion steps / scanned
// candidates), exactly like a deadline expiry, reporting
// ExecStats::cancelled; parallel chunks not yet claimed never start.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/amber_engine.h"
#include "rdf/term.h"
#include "test_util.h"
#include "util/cancellation.h"

namespace amber {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Token/source unit semantics.

TEST(CancellationTokenTest, DefaultTokenNeverFires) {
  CancellationToken token;
  EXPECT_FALSE(token.can_be_cancelled());
  EXPECT_FALSE(token.cancelled());
  // WaitFor on the default token is a plain bounded sleep.
  EXPECT_FALSE(token.WaitFor(milliseconds(1)));
}

TEST(CancellationTokenTest, CancelIsStickyAndIdempotent) {
  CancellationSource source;
  CancellationToken token = source.token();
  EXPECT_TRUE(token.can_be_cancelled());
  EXPECT_FALSE(token.cancelled());
  source.Cancel();
  EXPECT_TRUE(token.cancelled());
  source.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  // Tokens taken after the fact observe the sticky flag too.
  EXPECT_TRUE(source.token().cancelled());
}

TEST(CancellationTokenTest, TokensAreCheapCopies) {
  CancellationSource source;
  CancellationToken a = source.token();
  CancellationToken b = a;  // copy shares the state
  source.Cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
}

TEST(CancellationTokenTest, ParentLinkMergesCancellation) {
  CancellationSource parent;
  CancellationSource child(parent.token());
  EXPECT_FALSE(child.cancelled());
  parent.Cancel();
  // The child's tokens observe the parent chain...
  EXPECT_TRUE(child.token().cancelled());
  // ...but not the other way around: a fresh child of the same parent
  // cancelling itself must never trip the parent.
  CancellationSource parent2;
  CancellationSource child2(parent2.token());
  child2.Cancel();
  EXPECT_TRUE(child2.cancelled());
  EXPECT_FALSE(parent2.cancelled());
}

TEST(CancellationTokenTest, GrandparentChainObserved) {
  CancellationSource root;
  CancellationSource mid(root.token());
  CancellationSource leaf(mid.token());
  EXPECT_FALSE(leaf.token().cancelled());
  root.Cancel();
  EXPECT_TRUE(leaf.token().cancelled());
}

TEST(CancellationTokenTest, WaitForWakesOnOwnCancel) {
  CancellationSource source;
  CancellationToken token = source.token();
  std::thread canceller([&source] {
    std::this_thread::sleep_for(milliseconds(20));
    source.Cancel();
  });
  const auto t0 = steady_clock::now();
  EXPECT_TRUE(token.WaitFor(milliseconds(5000)));
  const auto elapsed = steady_clock::now() - t0;
  // The cv notification wakes the wait long before the full timeout.
  EXPECT_LT(elapsed, milliseconds(2000));
  canceller.join();
}

TEST(CancellationTokenTest, WaitForNoticesParentCancelViaPolling) {
  CancellationSource parent;
  CancellationSource child(parent.token());
  CancellationToken token = child.token();
  std::thread canceller([&parent] {
    std::this_thread::sleep_for(milliseconds(20));
    parent.Cancel();
  });
  const auto t0 = steady_clock::now();
  // Parent cancels don't notify the child's cv; the bounded poll slices
  // must still notice well inside the timeout.
  EXPECT_TRUE(token.WaitFor(milliseconds(5000)));
  EXPECT_LT(steady_clock::now() - t0, milliseconds(2000));
  canceller.join();
}

TEST(CancellationTokenTest, WaitForTimesOutUncancelled) {
  CancellationSource source;
  EXPECT_FALSE(source.token().WaitFor(milliseconds(10)));
  EXPECT_FALSE(source.cancelled());
}

// ---------------------------------------------------------------------------
// Matcher integration: bounded overshoot after a trip.

/// A 1-regular p0-cycle over `n` entities: every vertex matches
/// `?a <urn:p0> ?b`, so the ablation-B full scan visits all n vertices and
/// the query yields exactly n rows.
std::vector<Triple> CycleData(int n) {
  std::vector<Triple> data;
  auto ent = [](int i) { return Term::Iri("urn:e" + std::to_string(i)); };
  for (int i = 0; i < n; ++i) {
    data.emplace_back(ent(i), Term::Iri("urn:p0"), ent((i + 1) % n));
  }
  return data;
}

/// A hub with `n` outgoing p0 edges: `SELECT ?a WHERE { ?a <urn:p0> ?b }`
/// emits n rows through the satellite-multiplicity loop of one embedding.
std::vector<Triple> StarData(int n) {
  std::vector<Triple> data;
  for (int i = 0; i < n; ++i) {
    data.emplace_back(Term::Iri("urn:hub"), Term::Iri("urn:p0"),
                      Term::Iri("urn:leaf" + std::to_string(i)));
  }
  return data;
}

AmberEngine MustBuild(const std::vector<Triple>& data) {
  auto engine = AmberEngine::Build(data);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).value();
}

constexpr char kEdgeQuery[] = "SELECT ?a ?b WHERE { ?a <urn:p0> ?b . }";
constexpr char kStarQuery[] = "SELECT ?a WHERE { ?a <urn:p0> ?b . }";

// One matcher tick window: interrupt checks are amortized over 64 steps,
// so a trip is honoured with at most this much overshoot per loop.
constexpr uint64_t kTickWindow = 64;

TEST(CancellationMatcherTest, PreCancelledAblationScanStopsWithinTickWindow) {
  AmberEngine engine = MustBuild(CycleData(400));

  // Reference: the uncancelled full scan sees all 400 root candidates.
  ExecOptions full;
  full.use_signature_index = false;  // ablation B: full synopsis scan
  auto ref = engine.MaterializeSparql(kEdgeQuery, full);
  ASSERT_TRUE(ref.ok()) << ref.status();
  EXPECT_EQ(ref->stats.initial_candidates, 400u);
  EXPECT_EQ(ref->rows.size(), 400u);
  EXPECT_FALSE(ref->stats.cancelled);

  // Pre-cancelled: the scan must break within one tick window instead of
  // walking all 400 vertices (satellite fix: long CandInit range scans
  // poll the token too, not just the recursion).
  CancellationSource source;
  source.Cancel();
  ExecOptions cancelled = full;
  cancelled.cancel = source.token();
  auto out = engine.MaterializeSparql(kEdgeQuery, cancelled);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->stats.cancelled);
  EXPECT_FALSE(out->stats.timed_out);
  EXPECT_LE(out->stats.initial_candidates, kTickWindow);
  EXPECT_LE(out->rows.size(), kTickWindow);
}

TEST(CancellationMatcherTest, EmitMultiplicityLoopHonoursCancel) {
  AmberEngine engine = MustBuild(StarData(500));

  // Uncancelled: one embedding, 500 rows via satellite multiplicity.
  auto ref = engine.MaterializeSparql(kStarQuery, ExecOptions{});
  ASSERT_TRUE(ref.ok()) << ref.status();
  ASSERT_EQ(ref->rows.size(), 500u);

  // The sink trips the token on the first delivered row; the per-row tick
  // inside the multiplicity loop must stop emission within one window
  // even though no further recursion happens.
  CancellationSource source;
  ExecOptions options;
  options.cancel = source.token();
  struct TrippingSink : RowSink {
    CancellationSource* source;
    uint64_t rows = 0;
    bool OnRow(std::span<const std::string>) override {
      if (++rows == 1) source->Cancel();
      return true;  // never stops via the sink: only the token acts
    }
  } sink;
  sink.source = &source;
  auto out = engine.StreamSparql(kStarQuery, options, &sink);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->stats.cancelled);
  EXPECT_FALSE(out->sink_stopped);
  EXPECT_GE(out->rows, 1u);
  EXPECT_LE(out->rows, kTickWindow + 2);
  EXPECT_EQ(out->rows, sink.rows);
}

TEST(CancellationMatcherTest, ParallelPreCancelledScanDispatchesNothing) {
  // Ablation-B root scan: the interrupt is noticed DURING the scan, so a
  // partial candidate list never reaches the workers — zero dispatches.
  AmberEngine engine = MustBuild(CycleData(400));
  CancellationSource source;
  source.Cancel();
  ExecOptions options;
  options.num_threads = 4;
  options.use_signature_index = false;
  options.cancel = source.token();
  auto out = engine.MaterializeSparql(kEdgeQuery, options);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->stats.cancelled);
  EXPECT_EQ(out->rows.size(), 0u);
  EXPECT_EQ(out->stats.tasks_dispatched, 0u);
}

TEST(CancellationMatcherTest, ParallelPreCancelledChunksNeverRun) {
  // R-tree root path: candidates compute, chunks are dispatched — but the
  // claim gate sees the trip before ANY chunk executes, so the matcher
  // never recurses and zero rows come back.
  AmberEngine engine = MustBuild(CycleData(400));
  CancellationSource source;
  source.Cancel();
  ExecOptions options;
  options.num_threads = 4;
  options.cancel = source.token();
  auto out = engine.MaterializeSparql(kEdgeQuery, options);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->stats.cancelled);
  EXPECT_EQ(out->rows.size(), 0u);
  EXPECT_EQ(out->stats.recursion_calls, 0u);
}

TEST(CancellationMatcherTest, ParallelMidStreamCancelStopsEarly) {
  AmberEngine engine = MustBuild(StarData(500));
  CancellationSource source;
  ExecOptions options;
  options.num_threads = 4;
  options.cancel = source.token();
  struct TrippingSink : RowSink {
    CancellationSource* source;
    uint64_t rows = 0;
    bool OnRow(std::span<const std::string>) override {
      if (++rows == 1) source->Cancel();
      return true;
    }
  } sink;
  sink.source = &source;
  auto out = engine.StreamSparql(kStarQuery, options, &sink);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->stats.cancelled);
  EXPECT_GE(out->rows, 1u);
  EXPECT_LT(out->rows, 500u);  // stopped well before the full result
}

TEST(CancellationMatcherTest, CancelledRunNeverPoisonsLaterRuns) {
  // A cancelled execution must leave no partial candidate caches behind:
  // the same engine answers the same query completely afterwards.
  AmberEngine engine = MustBuild(CycleData(100));
  CancellationSource source;
  source.Cancel();
  ExecOptions cancelled;
  cancelled.use_signature_index = false;
  cancelled.cancel = source.token();
  auto partial = engine.MaterializeSparql(kEdgeQuery, cancelled);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_TRUE(partial->stats.cancelled);

  ExecOptions clean;
  clean.use_signature_index = false;
  auto full = engine.MaterializeSparql(kEdgeQuery, clean);
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_FALSE(full->stats.cancelled);
  EXPECT_EQ(full->rows.size(), 100u);
}

}  // namespace
}  // namespace amber
