// Proves the tentpole property of the matching hot path: after a warm-up
// run has grown the Matcher's scratch arena, a second Run over the same
// query performs ZERO heap allocations — every Recurse/MatchSatellites/
// RefineByVertex step works in reusable storage. Verified by replacing the
// global allocator with a counting one and diffing the counter around the
// steady-state run.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/matcher.h"
#include "core/query_plan.h"
#include "graph/multigraph.h"
#include "index/index_set.h"
#include "rdf/encoded_dataset.h"
#include "rdf/term.h"
#include "sparql/parser.h"
#include "sparql/query_graph.h"

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

// Global allocator replacement: every form routes through malloc/free so
// plain and sized/aligned news and deletes stay paired.
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace amber {
namespace {

Term I(const std::string& s) { return Term::Iri("urn:" + s); }

/// Triangles with satellite leaves: core vertices ?h ?m ?t plus a
/// satellite ?l, so the steady-state run exercises Recurse (k-way core
/// extension), MatchSatellites, RefineByVertex and Emit.
std::vector<Triple> TriangleDataset() {
  std::vector<Triple> data;
  for (int i = 0; i < 24; ++i) {
    const std::string mid = "mid" + std::to_string(i);
    const std::string tail = "tail" + std::to_string(i);
    // Two hubs share each triangle so candidate lists have length > 1.
    for (int h = 0; h < 2; ++h) {
      const std::string hub = "hub" + std::to_string((i + h) % 24);
      data.push_back({I(hub), I("p"), I(mid)});
      data.push_back({I(hub), I("r"), I(tail)});
    }
    data.push_back({I(mid), I("q"), I(tail)});
    for (int j = 0; j < 3; ++j) {
      data.push_back({I("hub" + std::to_string(i)), I("s"),
                      I("leaf" + std::to_string(i) + "_" + std::to_string(j))});
    }
  }
  return data;
}

struct EngineParts {
  Multigraph graph;
  IndexSet indexes;
  RdfDictionaries dicts;
};

EngineParts BuildParts(const std::vector<Triple>& triples) {
  auto encoded = EncodedDataset::Encode(triples);
  EXPECT_TRUE(encoded.ok()) << encoded.status();
  EngineParts parts;
  parts.graph = Multigraph::FromDataset(*encoded);
  parts.indexes =
      IndexSet::Build(parts.graph, encoded->attribute_values,
                      encoded->dictionaries.attr_predicates().size());
  parts.dicts = std::move(encoded->dictionaries);
  return parts;
}

TEST(MatcherAllocTest, SteadyStateRunIsAllocationFree) {
  EngineParts parts = BuildParts(TriangleDataset());
  auto parsed = SparqlParser::Parse(
      "SELECT ?h ?m ?t ?l WHERE { ?h <urn:p> ?m . ?m <urn:q> ?t . "
      "?h <urn:r> ?t . ?h <urn:s> ?l . }");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto qg = QueryGraph::Build(*parsed, parts.dicts);
  ASSERT_TRUE(qg.ok()) << qg.status();
  QueryPlan plan = PlanQuery(*qg);
  ASSERT_GT(plan.NumCoreVertices(), 1u);
  ASSERT_GT(plan.NumSatelliteVertices(), 0u);

  ExecOptions options;
  Matcher matcher(parts.graph, parts.indexes, *qg, plan, options);

  // Warm-up: grows the arena (depth scratch, satellite buffers, caches).
  CountingSink warm;
  ExecStats warm_stats;
  ASSERT_TRUE(matcher.Run(&warm, &warm_stats).ok());
  ASSERT_GT(warm.count(), 0u);
  ASSERT_GT(warm_stats.recursion_calls, 0u);

  // Steady state: identical run, zero heap allocations.
  CountingSink sink;
  ExecStats stats;
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  Status status = matcher.Run(&sink, &stats);
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);

  ASSERT_TRUE(status.ok());
  EXPECT_EQ(after - before, 0u)
      << "steady-state Run performed " << (after - before)
      << " heap allocations";
  EXPECT_EQ(sink.count(), warm.count());
  EXPECT_EQ(stats.recursion_calls, warm_stats.recursion_calls);
  EXPECT_EQ(stats.embeddings_found, warm_stats.embeddings_found);
}

TEST(MatcherAllocTest, SteadyStateWorkerChunkRunsAreAllocationFree) {
  // The parallel mode's worker loop: one MatcherScratch per worker, one
  // Matcher borrowing it, Run() per claimed chunk over a slice of the root
  // candidates. After the first (warm-up) chunk grows the arena,
  // subsequent chunk runs must allocate nothing — the property that makes
  // per-worker arenas safe to keep across a whole chunk queue.
  EngineParts parts = BuildParts(TriangleDataset());
  auto parsed = SparqlParser::Parse(
      "SELECT ?h ?m ?t ?l WHERE { ?h <urn:p> ?m . ?m <urn:q> ?t . "
      "?h <urn:r> ?t . ?h <urn:s> ?l . }");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto qg = QueryGraph::Build(*parsed, parts.dicts);
  ASSERT_TRUE(qg.ok()) << qg.status();
  QueryPlan plan = PlanQuery(*qg);

  ExecOptions options;
  MatcherScratch scratch(parts.graph, parts.indexes, *qg, plan, options);
  Matcher matcher(parts.graph, parts.indexes, *qg, plan, options, &scratch);

  Matcher root(parts.graph, parts.indexes, *qg, plan, options);
  const std::vector<VertexId> all = root.ComputeRootCandidates();
  ASSERT_GT(all.size(), 4u);
  const size_t chunk = (all.size() + 3) / 4;

  // Warm-up run over the full candidate set (grows the worker arena to its
  // high-water mark, as a worker's first chunks do).
  CountingSink warm;
  ExecStats warm_stats;
  ASSERT_TRUE(matcher.Run(&warm, &warm_stats).ok());
  ASSERT_GT(warm.count(), 0u);

  // Steady state: every chunk run allocates nothing, and the chunk counts
  // sum to the full serial count.
  uint64_t total = 0;
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (size_t begin = 0; begin < all.size(); begin += chunk) {
    const size_t len = std::min(chunk, all.size() - begin);
    CountingSink sink;
    ExecStats stats;
    ASSERT_TRUE(matcher
                    .Run(&sink, &stats,
                         std::span<const VertexId>(all.data() + begin, len))
                    .ok());
    total += sink.count();
  }
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state worker chunk runs performed " << (after - before)
      << " heap allocations";
  EXPECT_EQ(total, warm.count());
}

TEST(MatcherAllocTest, ExecStatsExposeArenaAndKernelCounters) {
  EngineParts parts = BuildParts(TriangleDataset());
  auto parsed = SparqlParser::Parse(
      "SELECT ?h ?m ?t WHERE { ?h <urn:p> ?m . ?m <urn:q> ?t . "
      "?h <urn:r> ?t . }");
  ASSERT_TRUE(parsed.ok());
  auto qg = QueryGraph::Build(*parsed, parts.dicts);
  ASSERT_TRUE(qg.ok());
  QueryPlan plan = PlanQuery(*qg);

  ExecOptions options;
  Matcher matcher(parts.graph, parts.indexes, *qg, plan, options);
  CountingSink sink;
  ExecStats stats;
  ASSERT_TRUE(matcher.Run(&sink, &stats).ok());

  EXPECT_GT(sink.count(), 0u);
  EXPECT_GT(stats.lists_materialized, 0u);
  EXPECT_GT(stats.peak_arena_bytes, 0u);
  // MergeFrom takes the max of peaks and sums the rest.
  ExecStats merged;
  merged.peak_arena_bytes = 1;
  merged.MergeFrom(stats);
  EXPECT_EQ(merged.peak_arena_bytes, stats.peak_arena_bytes);
  EXPECT_EQ(merged.lists_materialized, stats.lists_materialized);
}

}  // namespace
}  // namespace amber
