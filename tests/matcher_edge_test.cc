// Edge-case tests for the matcher that go beyond the paper's examples:
// satellites with bidirectional multi-edges, multiple IRI anchors, counting
// overflow saturation, Cartesian expansion interaction with LIMIT and
// projection, and component chaining.

#include <gtest/gtest.h>

#include "core/amber_engine.h"
#include "test_util.h"

namespace amber {
namespace {

AmberEngine MustBuild(const std::vector<Triple>& triples) {
  auto engine = AmberEngine::Build(triples);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).value();
}

Term I(const std::string& s) { return Term::Iri("urn:" + s); }

TEST(MatcherEdgeTest, SatelliteWithBidirectionalEdges) {
  // u2-style satellite (paper Fig. 2c): connected to the core by edges in
  // BOTH directions; only data vertices satisfying both qualify.
  std::vector<Triple> data = {
      {I("hub"), I("p"), I("good")},   {I("good"), I("q"), I("hub")},
      {I("hub"), I("p"), I("bad")},    // missing the return edge
      {I("other"), I("q"), I("hub")},  // missing the forward edge
      {I("hub"), I("r"), I("x")},      // makes hub a core vertex
      {I("x"), I("r"), I("hub")},
  };
  AmberEngine engine = MustBuild(data);
  auto rows = engine.MaterializeSparql(
      "SELECT ?s WHERE { ?h <urn:p> ?s . ?s <urn:q> ?h . ?h <urn:r> ?x . "
      "?x <urn:r> ?h . }",
      {});
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0], "<urn:good>");
}

TEST(MatcherEdgeTest, MultipleIriAnchorsBothDirections) {
  std::vector<Triple> data = {
      {I("a"), I("p"), I("anchor1")}, {I("anchor2"), I("q"), I("a")},
      {I("b"), I("p"), I("anchor1")},  // b lacks the anchor2 edge
      {I("anchor2"), I("q"), I("c")},  // c lacks the anchor1 edge
  };
  AmberEngine engine = MustBuild(data);
  auto rows = engine.MaterializeSparql(
      "SELECT ?x WHERE { ?x <urn:p> <urn:anchor1> . "
      "<urn:anchor2> <urn:q> ?x . }",
      {});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0], "<urn:a>");
}

TEST(MatcherEdgeTest, CountSaturatesInsteadOfOverflowing) {
  // A star with two satellites over a hub connected to many leaves:
  // count = leaves^2 per hub assignment. With 2^17 leaves the bag count
  // would exceed 2^34 per embedding — grow it to force saturation checks
  // on the 64-bit path without overflow UB. (Scaled down: verify exact
  // squares instead, and saturation via max_rows.)
  std::vector<Triple> data;
  const int kLeaves = 300;
  for (int i = 0; i < kLeaves; ++i) {
    data.push_back({I("hub"), I("p"), I("leaf" + std::to_string(i))});
  }
  AmberEngine engine = MustBuild(data);
  auto count = engine.CountSparql(
      "SELECT ?a ?b WHERE { ?h <urn:p> ?a . ?h <urn:p> ?b . }", {});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->count, static_cast<uint64_t>(kLeaves) * kLeaves);
  // The fast path must not have expanded rows to count them.
  EXPECT_EQ(count->stats.embeddings_found, 1u);
}

TEST(MatcherEdgeTest, LimitAppliesDuringCartesianExpansion) {
  std::vector<Triple> data;
  for (int i = 0; i < 50; ++i) {
    data.push_back({I("hub"), I("p"), I("leaf" + std::to_string(i))});
  }
  AmberEngine engine = MustBuild(data);
  auto rows = engine.MaterializeSparql(
      "SELECT ?a ?b WHERE { ?h <urn:p> ?a . ?h <urn:p> ?b . } LIMIT 7", {});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 7u);
  EXPECT_TRUE(rows->stats.truncated);
}

TEST(MatcherEdgeTest, UnprojectedSatelliteMultiplicityInBagSemantics) {
  // SELECT ?h over a star: each satellite assignment multiplies the count
  // even though only ?h is projected (bag semantics).
  std::vector<Triple> data = {
      {I("hub"), I("p"), I("l1")},
      {I("hub"), I("p"), I("l2")},
      {I("hub"), I("p"), I("l3")},
  };
  AmberEngine engine = MustBuild(data);
  auto bag = engine.CountSparql("SELECT ?h WHERE { ?h <urn:p> ?a . }", {});
  EXPECT_EQ(bag->count, 3u);
  auto rows = engine.MaterializeSparql(
      "SELECT ?h WHERE { ?h <urn:p> ?a . }", {});
  EXPECT_EQ(rows->rows.size(), 3u);  // identical rows repeated
  auto distinct = engine.CountSparql(
      "SELECT DISTINCT ?h WHERE { ?h <urn:p> ?a . }", {});
  EXPECT_EQ(distinct->count, 1u);
}

TEST(MatcherEdgeTest, RepeatedVariableInProjection) {
  std::vector<Triple> data = {{I("a"), I("p"), I("b")}};
  AmberEngine engine = MustBuild(data);
  auto rows = engine.MaterializeSparql(
      "SELECT ?x ?x ?y WHERE { ?x <urn:p> ?y . }", {});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0], rows->rows[0][1]);
}

TEST(MatcherEdgeTest, ThreeComponentCrossProduct) {
  std::vector<Triple> data = {
      {I("a1"), I("p"), I("a2")}, {I("b1"), I("q"), I("b2")},
      {I("b3"), I("q"), I("b4")}, {I("c1"), I("r"), I("c2")},
      {I("c3"), I("r"), I("c4")}, {I("c5"), I("r"), I("c6")},
  };
  AmberEngine engine = MustBuild(data);
  auto count = engine.CountSparql(
      "SELECT ?a ?b ?c WHERE { ?a <urn:p> ?x . ?b <urn:q> ?y . "
      "?c <urn:r> ?z . }",
      {});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->count, 1u * 2u * 3u);
}

TEST(MatcherEdgeTest, SatelliteSelfLoopFilter) {
  // A degree-1 variable that also has a self-loop: ?s must be a p-neighbor
  // of the hub AND have a q self-loop.
  std::vector<Triple> data = {
      {I("hub"), I("p"), I("s1")}, {I("s1"), I("q"), I("s1")},
      {I("hub"), I("p"), I("s2")},  // no self loop
      {I("hub"), I("r"), I("z")},  {I("z"), I("r"), I("hub")},
  };
  AmberEngine engine = MustBuild(data);
  auto rows = engine.MaterializeSparql(
      "SELECT ?s WHERE { ?h <urn:p> ?s . ?s <urn:q> ?s . ?h <urn:r> ?z . "
      "?z <urn:r> ?h . }",
      {});
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0], "<urn:s1>");
}

TEST(MatcherEdgeTest, CoreChainWithPerDepthSatellites) {
  // Path core with satellites hanging at both core vertices, checking that
  // satellite sets are rebuilt per recursion branch.
  std::vector<Triple> data = {
      {I("x1"), I("p"), I("y1")}, {I("x1"), I("s"), I("sx1")},
      {I("y1"), I("s"), I("sy1")}, {I("y1"), I("s"), I("sy2")},
      {I("x2"), I("p"), I("y2")}, {I("x2"), I("s"), I("sx2")},
      // y2 has no s-satellite: the (x2, y2) branch must die.
      {I("x1"), I("q"), I("x2")}, {I("x2"), I("q"), I("x1")},
      {I("y1"), I("q"), I("y2")}, {I("y2"), I("q"), I("y1")},
  };
  AmberEngine engine = MustBuild(data);
  auto rows = engine.MaterializeSparql(
      "SELECT ?x ?y ?sy WHERE { ?x <urn:p> ?y . ?x <urn:s> ?sx . "
      "?y <urn:s> ?sy . ?x <urn:q> ?x2 . ?x2 <urn:q> ?x . }",
      {});
  ASSERT_TRUE(rows.ok()) << rows.status();
  // Only (x1, y1) survives; sy in {sy1, sy2}.
  ASSERT_EQ(rows->rows.size(), 2u);
  for (const auto& row : rows->rows) {
    EXPECT_EQ(row[0], "<urn:x1>");
    EXPECT_EQ(row[1], "<urn:y1>");
  }
}

TEST(MatcherEdgeTest, ParallelAndSerialAgreeUnderLimit) {
  auto data = testutil::RandomDataset(31, 40, 600, 3);
  AmberEngine engine = MustBuild(data);
  ExecOptions par;
  par.num_threads = 4;
  par.max_rows = 100;
  auto r = engine.CountSparql(
      "SELECT ?a WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . }", par);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->count, 100u);
}

TEST(MatcherEdgeTest, AnchorOnSatelliteVertex) {
  // The satellite itself carries an IRI anchor: candidates must satisfy
  // both the core edge and the anchor.
  std::vector<Triple> data = {
      {I("hub"), I("p"), I("s1")}, {I("s1"), I("k"), I("target")},
      {I("hub"), I("p"), I("s2")},  // s2 lacks the anchor edge
      {I("hub"), I("r"), I("z")},  {I("z"), I("r"), I("hub")},
  };
  AmberEngine engine = MustBuild(data);
  auto rows = engine.MaterializeSparql(
      "SELECT ?s WHERE { ?h <urn:p> ?s . ?s <urn:k> <urn:target> . "
      "?h <urn:r> ?z . ?z <urn:r> ?h . }",
      {});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0], "<urn:s1>");
}

}  // namespace
}  // namespace amber
