// QueryService::QueryStream: ordered page delivery with bounded in-flight
// buffering, plus the request-cancellation surface of Query() — client
// tokens, sink aborts, backoff interruption, and the orphaned single-flight
// leader retirement. Streamed pages concatenated must equal the rows the
// materializing Query() of the same request returns (the determinism
// contract extends to streamed prefixes); cancelled partials are never
// cached.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/amber_engine.h"
#include "rdf/term.h"
#include "server/query_service.h"
#include "test_util.h"
#include "util/fault_injector.h"

namespace amber {
namespace {

using std::chrono::milliseconds;

AmberEngine MustBuild(const std::vector<Triple>& data) {
  auto engine = AmberEngine::Build(data);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).value();
}

/// A p0-chain over `n` entities: the edge query below yields n-1 rows.
std::vector<Triple> ChainData(int n) {
  std::vector<Triple> data;
  auto ent = [](int i) { return Term::Iri("urn:e" + std::to_string(i)); };
  for (int i = 0; i + 1 < n; ++i) {
    data.emplace_back(ent(i), Term::Iri("urn:p0"), ent(i + 1));
  }
  return data;
}

constexpr char kEdgeQuery[] = "SELECT ?a ?b WHERE { ?a <urn:p0> ?b . }";

/// Collects pages, verifying first_row continuity as they arrive; can
/// abort (OnPage returns false) or trip a cancellation source after a
/// given number of pages.
class CollectingPageSink : public PageSink {
 public:
  bool OnPage(StreamPage&& page) override {
    EXPECT_EQ(page.first_row, rows.size()) << "page skipped or repeated";
    for (auto& row : page.rows) rows.push_back(std::move(row));
    ++pages;
    if (page.last) saw_last = true;
    if (cancel_after_pages != 0 && pages >= cancel_after_pages &&
        cancel_source != nullptr) {
      cancel_source->Cancel();
    }
    return abort_after_pages == 0 || pages < abort_after_pages;
  }

  std::vector<std::vector<std::string>> rows;
  uint64_t pages = 0;
  bool saw_last = false;
  uint64_t abort_after_pages = 0;   // 0 = never abort
  uint64_t cancel_after_pages = 0;  // 0 = never cancel
  CancellationSource* cancel_source = nullptr;
};

/// Exactly one of complete / cancelled / timed_out.
void CheckClassification(const StreamResponse& resp) {
  EXPECT_EQ((resp.complete ? 1 : 0) + (resp.cancelled ? 1 : 0) +
                (resp.timed_out ? 1 : 0),
            1)
      << "complete=" << resp.complete << " cancelled=" << resp.cancelled
      << " timed_out=" << resp.timed_out;
}

class QueryServiceStreamTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new std::vector<Triple>(testutil::RandomDataset(83, 16, 90, 3));
    engine_ = new AmberEngine(MustBuild(*data_));
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete data_;
    engine_ = nullptr;
    data_ = nullptr;
  }

  static std::vector<Triple>* data_;
  static AmberEngine* engine_;
};

std::vector<Triple>* QueryServiceStreamTest::data_ = nullptr;
AmberEngine* QueryServiceStreamTest::engine_ = nullptr;

TEST_F(QueryServiceStreamTest, PagesConcatenateToQueryReference) {
  ServiceOptions options;
  options.pool_threads = 2;
  options.stream_page_rows = 3;
  QueryService service(engine_, options);

  std::vector<std::string> texts;
  for (int qi = 0; qi < 4; ++qi) {
    texts.push_back(testutil::RandomQueryFromData(*data_, 2100 + qi, 3));
  }
  texts.push_back("SELECT DISTINCT ?a WHERE { ?a <urn:p0> ?b . }");
  texts.push_back(
      "SELECT ?a ?c WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . } LIMIT 7");

  const struct {
    uint64_t offset, limit;
  } shapes[] = {{0, 0}, {2, 3}, {1, 0}, {0, 5}};

  for (const std::string& text : texts) {
    for (const auto& shape : shapes) {
      for (int threads : {1, 3}) {
        SCOPED_TRACE(text + " offset=" + std::to_string(shape.offset) +
                     " limit=" + std::to_string(shape.limit) +
                     " threads=" + std::to_string(threads));
        RequestOptions request;
        request.offset = shape.offset;
        request.limit = shape.limit;
        request.thread_budget = threads;
        request.bypass_cache = true;
        auto ref = service.Query(text, request);
        ASSERT_TRUE(ref.ok()) << ref.status();

        CollectingPageSink sink;
        auto resp = service.QueryStream(text, request, &sink);
        ASSERT_TRUE(resp.ok()) << resp.status();
        CheckClassification(*resp);
        EXPECT_TRUE(resp->complete);
        EXPECT_TRUE(sink.saw_last);
        EXPECT_EQ(resp->var_names, ref->var_names);
        EXPECT_EQ(sink.rows, ref->rows);
        EXPECT_EQ(resp->rows_streamed, ref->rows.size());
        EXPECT_EQ(resp->pages, sink.pages);
      }
    }
  }
}

TEST_F(QueryServiceStreamTest, EmptyResultStreamsLoneTerminator) {
  QueryService service(engine_, ServiceOptions{});
  CollectingPageSink sink;
  auto resp = service.QueryStream(
      "SELECT ?a WHERE { ?a <urn:nosuchpred> ?b . }", RequestOptions{}, &sink);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_TRUE(resp->complete);
  EXPECT_EQ(resp->rows_streamed, 0u);
  EXPECT_EQ(resp->pages, 1u);  // the empty terminator page
  EXPECT_TRUE(sink.saw_last);
  EXPECT_TRUE(sink.rows.empty());
}

TEST_F(QueryServiceStreamTest, CountOnlyCannotStream) {
  QueryService service(engine_, ServiceOptions{});
  RequestOptions request;
  request.count_only = true;
  CollectingPageSink sink;
  auto resp = service.QueryStream(kEdgeQuery, request, &sink);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(QueryServiceStreamTest, SinglePagesKeepContinuity) {
  AmberEngine chain = MustBuild(ChainData(40));
  ServiceOptions options;
  options.stream_page_rows = 1;
  QueryService service(&chain, options);
  CollectingPageSink sink;
  auto resp = service.QueryStream(kEdgeQuery, RequestOptions{}, &sink);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_TRUE(resp->complete);
  EXPECT_EQ(resp->rows_streamed, 39u);
  // 39 one-row pages plus the empty terminator (continuity is asserted
  // inside the sink as the pages arrive).
  EXPECT_EQ(resp->pages, 40u);
  EXPECT_TRUE(sink.saw_last);
}

TEST_F(QueryServiceStreamTest, ByteBudgetBoundsInFlightPage) {
  AmberEngine chain = MustBuild(ChainData(40));
  ServiceOptions options;
  options.stream_page_rows = 1000000;  // rows bound never hits
  options.stream_buffer_bytes = 1;     // every row overflows the byte bound
  QueryService service(&chain, options);
  CollectingPageSink sink;
  auto resp = service.QueryStream(kEdgeQuery, RequestOptions{}, &sink);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_TRUE(resp->complete);
  EXPECT_EQ(resp->rows_streamed, 39u);
  EXPECT_EQ(resp->pages, 40u);  // one row per page + terminator
  EXPECT_GT(resp->peak_buffered_bytes, 0u);
  // The in-flight page never held more than one (small) row.
  EXPECT_LT(resp->peak_buffered_bytes, 1024u);
}

TEST_F(QueryServiceStreamTest, SinkAbortEndsCancelled) {
  AmberEngine chain = MustBuild(ChainData(40));
  ServiceOptions options;
  options.stream_page_rows = 1;
  QueryService service(&chain, options);
  CollectingPageSink sink;
  sink.abort_after_pages = 1;
  auto resp = service.QueryStream(kEdgeQuery, RequestOptions{}, &sink);
  ASSERT_TRUE(resp.ok()) << resp.status();
  CheckClassification(*resp);
  EXPECT_TRUE(resp->cancelled);
  EXPECT_FALSE(sink.saw_last);
  EXPECT_EQ(sink.pages, 1u);
  EXPECT_GE(service.Stats().cancelled, 1u);
}

TEST_F(QueryServiceStreamTest, ClientCancelMidStreamStopsExecution) {
  AmberEngine chain = MustBuild(ChainData(300));
  ServiceOptions options;
  options.stream_page_rows = 1;
  QueryService service(&chain, options);

  CancellationSource client;
  RequestOptions request;
  request.cancel = client.token();
  CollectingPageSink sink;
  sink.cancel_after_pages = 1;
  sink.cancel_source = &client;
  auto resp = service.QueryStream(kEdgeQuery, request, &sink);
  ASSERT_TRUE(resp.ok()) << resp.status();
  CheckClassification(*resp);
  EXPECT_TRUE(resp->cancelled);
  EXPECT_FALSE(sink.saw_last);
  // The matcher unwound within one tick window of the trip instead of
  // walking the remaining ~299 rows to the deadline (or forever).
  EXPECT_GE(resp->rows_streamed, 1u);
  EXPECT_LE(resp->rows_streamed, 100u);
  EXPECT_TRUE(resp->stats.cancelled);
}

TEST_F(QueryServiceStreamTest, PageHandoffFaultSurfacesError) {
  AmberEngine chain = MustBuild(ChainData(40));
  ServiceOptions options;
  options.stream_page_rows = 1;
  options.max_retries = 3;  // must NOT apply: streams never retry
  QueryService service(&chain, options);
  FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.fail_nth = 1;
  ScopedFault fault(faults::kServiceStream, spec);
  CollectingPageSink sink;
  auto resp = service.QueryStream(kEdgeQuery, RequestOptions{}, &sink);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(sink.pages, 0u);  // the faulted page was never delivered
  EXPECT_EQ(FaultInjector::Global().Fires(faults::kServiceStream), 1u);
}

TEST_F(QueryServiceStreamTest, StreamsBypassCacheAndSingleFlight) {
  ServiceOptions options;
  options.cache_entries = 16;
  QueryService service(engine_, options);
  for (int i = 0; i < 2; ++i) {
    CollectingPageSink sink;
    auto resp = service.QueryStream(kEdgeQuery, RequestOptions{}, &sink);
    ASSERT_TRUE(resp.ok()) << resp.status();
    EXPECT_TRUE(resp->complete);
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(stats.cache_entries, 0u);
  EXPECT_EQ(stats.single_flight_hits, 0u);
  EXPECT_EQ(stats.queries, 2u);
}

TEST_F(QueryServiceStreamTest, PreCancelledQueryAnswersCancelledUncached) {
  ServiceOptions options;
  options.cache_entries = 16;
  QueryService service(engine_, options);

  CancellationSource client;
  client.Cancel();
  RequestOptions abandoned;
  abandoned.cancel = client.token();
  auto resp = service.Query(kEdgeQuery, abandoned);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_TRUE(resp->cancelled);
  EXPECT_TRUE(resp->rows.empty());
  EXPECT_EQ(service.Stats().cancelled, 1u);
  // The cancelled partial was not cached: the next request executes and
  // returns the full result.
  EXPECT_EQ(service.Stats().cache_entries, 0u);
  auto full = service.Query(kEdgeQuery, RequestOptions{});
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_FALSE(full->cancelled);
  EXPECT_FALSE(full->cache_hit);
  EXPECT_GT(full->rows.size(), 0u);
  auto cached = service.Query(kEdgeQuery, RequestOptions{});
  ASSERT_TRUE(cached.ok()) << cached.status();
  EXPECT_TRUE(cached->cache_hit);
  EXPECT_EQ(cached->rows, full->rows);
}

TEST_F(QueryServiceStreamTest, CancelDuringRetryBackoffAnswersCancelled) {
  ServiceOptions options;
  options.max_retries = 3;
  options.initial_backoff = milliseconds(2000);
  QueryService service(engine_, options);
  FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.fail_every = 1;  // every attempt fails: the request must back off
  ScopedFault fault(faults::kServiceExecute, spec);

  CancellationSource client;
  RequestOptions request;
  request.cancel = client.token();
  std::thread canceller([&client] {
    std::this_thread::sleep_for(milliseconds(50));
    client.Cancel();
  });
  const auto t0 = std::chrono::steady_clock::now();
  auto resp = service.Query(kEdgeQuery, request);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  canceller.join();
  // The trip interrupted the backoff sleep: a cancelled RESPONSE, well
  // before the 2s backoff (let alone the full retry ladder) elapsed.
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_TRUE(resp->cancelled);
  EXPECT_LT(elapsed, milliseconds(1900));
  EXPECT_GE(service.Stats().cancelled, 1u);
}

// ---------------------------------------------------------------------------
// Orphaned single-flight leader retirement.

/// An engine that blocks until its execution token trips (3 s failsafe),
/// then reports a cancelled partial — models an execution that outlives
/// every client still interested in it.
class BlockingEngine : public QueryEngine {
 public:
  std::string name() const override { return "Blocking"; }

  Result<CountResult> Count(const SelectQuery&,
                            const ExecOptions& options) override {
    CountResult out;
    options.cancel.WaitFor(std::chrono::milliseconds(3000));
    out.stats.cancelled = options.cancel.cancelled();
    return out;
  }

  Result<MaterializedRows> Materialize(const SelectQuery& query,
                                       const ExecOptions& options) override {
    MaterializedRows out;
    for (const std::string& v : query.projection) out.var_names.push_back(v);
    options.cancel.WaitFor(std::chrono::milliseconds(3000));
    out.stats.cancelled = options.cancel.cancelled();
    return out;
  }
};

TEST(QueryServiceOrphanTest, OrphanedLeaderCancelledOnLastFollowerExit) {
  BlockingEngine engine;
  ServiceOptions options;
  options.pool_threads = 1;
  options.single_flight = true;
  options.cache_entries = 16;
  QueryService service(&engine, options);

  // Leader: budget 150 ms, but the engine ignores deadlines — without the
  // orphan machinery it would block for the full 3 s failsafe.
  Result<QueryResponse> leader_resp = QueryResponse{};
  std::thread leader([&] {
    RequestOptions request;
    request.deadline = milliseconds(150);
    leader_resp = service.Query(kEdgeQuery, request);
  });
  // Follower: attaches to the leader's flight, waits under its own 400 ms
  // budget, and on expiry — past the leader's own deadline, with no other
  // waiters — cancels the orphaned leader.
  std::this_thread::sleep_for(milliseconds(50));
  Result<QueryResponse> follower_resp = QueryResponse{};
  std::thread follower([&] {
    RequestOptions request;
    request.deadline = milliseconds(400);
    follower_resp = service.Query(kEdgeQuery, request);
  });
  const auto t0 = std::chrono::steady_clock::now();
  follower.join();
  leader.join();
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  ASSERT_TRUE(follower_resp.ok()) << follower_resp.status();
  EXPECT_TRUE(follower_resp->timed_out);
  ASSERT_TRUE(leader_resp.ok()) << leader_resp.status();
  EXPECT_TRUE(leader_resp->cancelled);
  // The leader unblocked on the orphan cancel, nowhere near the 3 s
  // failsafe.
  EXPECT_LT(elapsed, milliseconds(2500));

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.orphaned_flights, 1u);
  EXPECT_GE(stats.cancelled, 1u);
  // The cancelled partial was never cached.
  EXPECT_EQ(stats.cache_entries, 0u);
}

TEST(QueryServiceOrphanTest, ResolvedFollowersNeverOrphanTheLeader) {
  // Followers that get a result (leader publishes in time) must not touch
  // the orphan path.
  AmberEngine engine =
      MustBuild(testutil::RandomDataset(19, 10, 40, 2));
  ServiceOptions options;
  options.single_flight = true;
  QueryService service(&engine, options);
  std::vector<std::thread> clients;
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&service] {
      auto resp = service.Query(kEdgeQuery, RequestOptions{});
      EXPECT_TRUE(resp.ok()) << resp.status();
      EXPECT_FALSE(resp->cancelled);
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(service.Stats().orphaned_flights, 0u);
}

// Factorized streaming (ServiceOptions::result_form): the stream is fed
// from a lazily-expanded answer-graph cursor instead of engine row
// emission; pages, end-state flags and row payloads must be bit-identical
// to the flat stream, and a deep offset expands only the delivered rows.
TEST_F(QueryServiceStreamTest, FactorizedStreamMatchesFlatStream) {
  ServiceOptions flat_opts;
  flat_opts.pool_threads = 2;
  flat_opts.stream_page_rows = 3;
  QueryService flat_service(engine_, flat_opts);
  ServiceOptions fact_opts = flat_opts;
  fact_opts.result_form = ResultForm::kAuto;
  QueryService fact_service(engine_, fact_opts);

  std::vector<std::string> texts;
  for (int qi = 0; qi < 3; ++qi) {
    texts.push_back(testutil::RandomQueryFromData(*data_, 3100 + qi, 3));
  }
  texts.push_back("SELECT DISTINCT ?a WHERE { ?a <urn:p0> ?b . }");
  texts.push_back(
      "SELECT ?a ?c WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . } LIMIT 7");

  const struct {
    uint64_t offset, limit;
  } shapes[] = {{0, 0}, {2, 3}, {5, 0}, {0, 4}};

  for (const std::string& text : texts) {
    for (const auto& shape : shapes) {
      SCOPED_TRACE(text + " offset=" + std::to_string(shape.offset) +
                   " limit=" + std::to_string(shape.limit));
      RequestOptions request;
      request.offset = shape.offset;
      request.limit = shape.limit;

      CollectingPageSink flat_sink;
      auto flat = flat_service.QueryStream(text, request, &flat_sink);
      CollectingPageSink fact_sink;
      auto fact = fact_service.QueryStream(text, request, &fact_sink);
      ASSERT_TRUE(flat.ok() && fact.ok())
          << flat.status() << " / " << fact.status();

      CheckClassification(*fact);
      EXPECT_EQ(fact_sink.rows, flat_sink.rows);
      EXPECT_EQ(fact->rows_streamed, flat->rows_streamed);
      EXPECT_EQ(fact->complete, flat->complete);
      EXPECT_EQ(fact->truncated, flat->truncated);
      EXPECT_EQ(fact->var_names, flat->var_names);
      EXPECT_TRUE(fact_sink.saw_last);
    }
  }
}

}  // namespace
}  // namespace amber
