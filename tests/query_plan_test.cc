// Unit tests for query decomposition and vertex ordering (Sections 3, 5.3):
// core/satellite classification, r1/r2 ranking, connectivity constraint,
// component handling and the ordering-ablation flag.

#include <gtest/gtest.h>

#include "core/query_plan.h"
#include "rdf/encoded_dataset.h"
#include "sparql/parser.h"
#include "sparql/query_graph.h"

namespace amber {
namespace {

class QueryPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Dictionaries with predicates p,q,r and a literal attribute.
    std::vector<Triple> triples = {
        {Term::Iri("urn:a"), Term::Iri("urn:p"), Term::Iri("urn:b")},
        {Term::Iri("urn:a"), Term::Iri("urn:q"), Term::Iri("urn:b")},
        {Term::Iri("urn:a"), Term::Iri("urn:r"), Term::Iri("urn:b")},
        {Term::Iri("urn:a"), Term::Iri("urn:k"), Term::Literal("1")},
    };
    auto encoded = EncodedDataset::Encode(triples);
    ASSERT_TRUE(encoded.ok());
    dicts_ = std::move(encoded->dictionaries);
  }

  QueryGraph MustBuild(std::string_view text) {
    auto parsed = SparqlParser::Parse(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    auto qg = QueryGraph::Build(*parsed, dicts_);
    EXPECT_TRUE(qg.ok()) << qg.status();
    return std::move(qg).value();
  }

  RdfDictionaries dicts_;
};

TEST_F(QueryPlanTest, StarQueryHasOneCoreVertex) {
  QueryGraph q = MustBuild(
      "SELECT ?c WHERE { ?c <urn:p> ?l1 . ?c <urn:q> ?l2 . ?l3 <urn:r> ?c }");
  QueryPlan plan = PlanQuery(q);
  ASSERT_EQ(plan.components.size(), 1u);
  EXPECT_EQ(plan.components[0].core_order.size(), 1u);
  EXPECT_EQ(plan.components[0].core_order[0], 0u);  // the center ?c
  EXPECT_EQ(plan.components[0].satellites[0].size(), 3u);
  EXPECT_EQ(plan.NumSatelliteVertices(), 3u);
}

TEST_F(QueryPlanTest, SingleVertexQuery) {
  QueryGraph q = MustBuild("SELECT ?x WHERE { ?x <urn:k> \"1\" . }");
  QueryPlan plan = PlanQuery(q);
  ASSERT_EQ(plan.components.size(), 1u);
  EXPECT_EQ(plan.components[0].core_order.size(), 1u);
  EXPECT_TRUE(plan.components[0].satellites[0].empty());
  EXPECT_TRUE(plan.is_core[0]);
}

TEST_F(QueryPlanTest, SingleEdgePairPromotesRicherVertex) {
  // ?y carries an extra anchor edge -> higher r2 -> promoted to core.
  QueryGraph q = MustBuild(
      "SELECT ?x WHERE { ?x <urn:p> ?y . ?y <urn:q> <urn:b> . }");
  QueryPlan plan = PlanQuery(q);
  ASSERT_EQ(plan.components.size(), 1u);
  ASSERT_EQ(plan.components[0].core_order.size(), 1u);
  EXPECT_EQ(q.vertices()[plan.components[0].core_order[0]].name, "y");
  ASSERT_EQ(plan.components[0].satellites[0].size(), 1u);
  EXPECT_EQ(q.vertices()[plan.components[0].satellites[0][0]].name, "x");
}

TEST_F(QueryPlanTest, PathQueryCoreIsInterior) {
  QueryGraph q = MustBuild(
      "SELECT ?a WHERE { ?a <urn:p> ?b . ?b <urn:p> ?c . ?c <urn:p> ?d . }");
  QueryPlan plan = PlanQuery(q);
  const ComponentPlan& cp = plan.components[0];
  // b and c have degree 2 (core); a and d are satellites.
  ASSERT_EQ(cp.core_order.size(), 2u);
  EXPECT_TRUE(plan.is_core[1]);
  EXPECT_TRUE(plan.is_core[2]);
  EXPECT_FALSE(plan.is_core[0]);
  EXPECT_FALSE(plan.is_core[3]);
  // Connectivity: the two core vertices are adjacent; any order works, but
  // each must host its own satellite.
  EXPECT_EQ(cp.satellites[0].size(), 1u);
  EXPECT_EQ(cp.satellites[1].size(), 1u);
}

TEST_F(QueryPlanTest, OrderingPrefersMoreSatellites) {
  // hub1 has 3 satellites, hub2 has 1; hubs are connected.
  QueryGraph q = MustBuild(
      "SELECT ?h1 WHERE { ?h1 <urn:p> ?s1 . ?h1 <urn:p> ?s2 . "
      "?h1 <urn:q> ?s3 . ?h1 <urn:p> ?h2 . ?h2 <urn:q> ?s4 . "
      "?h2 <urn:r> ?h3 . ?h3 <urn:p> ?h1 . }");
  QueryPlan plan = PlanQuery(q);
  const ComponentPlan& cp = plan.components[0];
  ASSERT_GE(cp.core_order.size(), 2u);
  EXPECT_EQ(q.vertices()[cp.core_order[0]].name, "h1");  // r1 = 3 wins
}

TEST_F(QueryPlanTest, ConnectivityConstraintHolds) {
  QueryGraph q = MustBuild(
      "SELECT ?a WHERE { ?a <urn:p> ?b . ?b <urn:p> ?c . ?c <urn:p> ?d . "
      "?d <urn:p> ?a . ?a <urn:q> ?b . }");
  QueryPlan plan = PlanQuery(q);
  const ComponentPlan& cp = plan.components[0];
  // Every core vertex after the first must neighbour an earlier one.
  for (size_t i = 1; i < cp.core_order.size(); ++i) {
    bool connected = false;
    for (size_t j = 0; j < i; ++j) {
      const auto& nbrs = q.Neighbors(cp.core_order[i]);
      if (std::find(nbrs.begin(), nbrs.end(), cp.core_order[j]) !=
          nbrs.end()) {
        connected = true;
      }
    }
    EXPECT_TRUE(connected) << "position " << i;
  }
}

TEST_F(QueryPlanTest, DisconnectedQueryYieldsMultipleComponents) {
  QueryGraph q = MustBuild(
      "SELECT ?a ?x WHERE { ?a <urn:p> ?b . ?x <urn:q> ?y . }");
  QueryPlan plan = PlanQuery(q);
  EXPECT_EQ(plan.components.size(), 2u);
  EXPECT_EQ(plan.NumCoreVertices(), 2u);
  EXPECT_EQ(plan.NumSatelliteVertices(), 2u);
}

TEST_F(QueryPlanTest, OrderingAblationKeepsDecomposition) {
  QueryGraph q = MustBuild(
      "SELECT ?a WHERE { ?a <urn:p> ?b . ?b <urn:p> ?c . ?c <urn:p> ?a . "
      "?a <urn:q> ?s . }");
  PlanOptions options;
  options.use_ordering_heuristics = false;
  QueryPlan plan = PlanQuery(q, options);
  // Same core set, order by index but still connectivity-constrained.
  EXPECT_EQ(plan.components[0].core_order.size(), 3u);
  EXPECT_EQ(plan.components[0].core_order[0], 0u);
  EXPECT_EQ(plan.NumSatelliteVertices(), 1u);
}

TEST_F(QueryPlanTest, EveryVertexAppearsExactlyOnce) {
  QueryGraph q = MustBuild(
      "SELECT ?a WHERE { ?a <urn:p> ?b . ?b <urn:q> ?c . ?c <urn:r> ?a . "
      "?b <urn:p> ?d . ?x <urn:p> ?y . ?y <urn:q> ?x . }");
  QueryPlan plan = PlanQuery(q);
  std::vector<int> seen(q.NumVertices(), 0);
  for (const ComponentPlan& cp : plan.components) {
    for (size_t i = 0; i < cp.core_order.size(); ++i) {
      ++seen[cp.core_order[i]];
      for (uint32_t s : cp.satellites[i]) ++seen[s];
    }
  }
  for (uint32_t u = 0; u < q.NumVertices(); ++u) {
    EXPECT_EQ(seen[u], 1) << "vertex " << q.vertices()[u].name;
  }
}

}  // namespace
}  // namespace amber
