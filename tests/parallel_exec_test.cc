// Determinism suite for the parallel online matching stage: for every
// execution shape (SELECT, DISTINCT, tight LIMITs, counting and
// materializing) and every engine restore path (fresh build, stream Load,
// mmap OpenFile), serial and 2/4/8-thread execution must return
// BIT-IDENTICAL result rows — same rows, same order — and identical
// counts. Also pins the parallel ExecStats contract (threads_used /
// tasks_dispatched, counter aggregation) and edge cases (empty results,
// single root candidate, multi-component cross products, ground-only
// queries).

#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/amber_engine.h"
#include "core/explain.h"
#include "gen/paper_example.h"
#include "sparql/parser.h"
#include "test_util.h"

namespace amber {
namespace {

AmberEngine MustBuild(const std::vector<Triple>& data) {
  auto engine = AmberEngine::Build(data);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).value();
}

/// Runs `text` serially and at 2/4/8 threads and asserts bit-identical
/// materialized rows (order included) plus matching counts.
void CheckDeterminism(AmberEngine& engine, const std::string& text,
                      const ExecOptions& base = {}) {
  SCOPED_TRACE("query:\n" + text);
  ExecOptions serial = base;
  serial.num_threads = 1;
  auto want = engine.MaterializeSparql(text, serial);
  ASSERT_TRUE(want.ok()) << want.status();
  auto want_count = engine.CountSparql(text, serial);
  ASSERT_TRUE(want_count.ok());

  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExecOptions parallel = base;
    parallel.num_threads = threads;
    auto got = engine.MaterializeSparql(text, parallel);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->var_names, want->var_names);
    // Exact vector equality: rows AND their order must match serial.
    EXPECT_EQ(got->rows, want->rows) << "rows differ from serial";
    EXPECT_EQ(got->stats.truncated, want->stats.truncated);

    auto count = engine.CountSparql(text, parallel);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(count->count, want_count->count);
  }
}

TEST(ParallelExecTest, RandomWorkloadsBitIdentical) {
  for (uint64_t seed : {3u, 7u, 21u}) {
    auto data = testutil::RandomDataset(seed, 15, 80, 4);
    AmberEngine engine = MustBuild(data);
    for (int qi = 0; qi < 8; ++qi) {
      CheckDeterminism(engine,
                       testutil::RandomQueryFromData(data, seed * 77 + qi, 3));
    }
  }
}

TEST(ParallelExecTest, PaperExampleBitIdentical) {
  AmberEngine engine = MustBuild(testutil::MustParse(kPaperExampleNTriples));
  CheckDeterminism(engine, kPaperExampleQuery);
  CheckDeterminism(engine, kPaperExampleQueryLiteralFig2a);
}

TEST(ParallelExecTest, DistinctBitIdentical) {
  auto data = testutil::RandomDataset(42, 12, 70, 3);
  AmberEngine engine = MustBuild(data);
  const char* queries[] = {
      "SELECT DISTINCT ?a WHERE { ?a <urn:p0> ?b . }",
      "SELECT DISTINCT ?a WHERE { ?a <urn:p0> ?b . ?a <urn:p1> ?c . }",
      "SELECT DISTINCT ?b WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . }",
      "SELECT DISTINCT ?a ?c WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . "
      "?a <urn:p2> ?d . }",
  };
  for (const char* text : queries) CheckDeterminism(engine, text);
}

TEST(ParallelExecTest, TightLimitsBitIdentical) {
  auto data = testutil::RandomDataset(5, 20, 140, 3);
  AmberEngine engine = MustBuild(data);
  const char* base = "SELECT ?a ?c WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . }";
  // LIMIT via options.max_rows: 1 row, a handful, more than the result.
  for (uint64_t cap : {1u, 2u, 3u, 7u, 100000u}) {
    ExecOptions options;
    options.max_rows = cap;
    CheckDeterminism(engine, base, options);
  }
  // LIMIT clause in the query text, DISTINCT + LIMIT combined.
  CheckDeterminism(engine, std::string(base) + " LIMIT 1");
  CheckDeterminism(engine, std::string(base) + " LIMIT 5");
  CheckDeterminism(
      engine,
      "SELECT DISTINCT ?a WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . } "
      "LIMIT 3");
  CheckDeterminism(
      engine,
      "SELECT DISTINCT ?a WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . } "
      "LIMIT 1");
}

TEST(ParallelExecTest, RestoredEnginesBitIdentical) {
  auto data = testutil::RandomDataset(9, 15, 90, 3);
  AmberEngine fresh = MustBuild(data);

  std::stringstream ss;
  ASSERT_TRUE(fresh.Save(ss).ok());
  auto streamed = AmberEngine::Load(ss);
  ASSERT_TRUE(streamed.ok()) << streamed.status();

  const std::string path = testing::TempDir() + "/parallel_exec_" +
                           std::to_string(::getpid()) + ".amf";
  ASSERT_TRUE(fresh.SaveFile(path).ok());
  auto mapped = AmberEngine::OpenFile(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();

  for (int qi = 0; qi < 5; ++qi) {
    std::string text = testutil::RandomQueryFromData(data, 500 + qi, 3);
    for (AmberEngine* engine : {&fresh, &*streamed, &*mapped}) {
      CheckDeterminism(*engine, text);
    }
    // And the three engines agree with each other at 4 threads.
    ExecOptions par;
    par.num_threads = 4;
    auto a = fresh.MaterializeSparql(text, par);
    auto b = streamed->MaterializeSparql(text, par);
    auto c = mapped->MaterializeSparql(text, par);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_EQ(a->rows, b->rows);
    EXPECT_EQ(a->rows, c->rows);
  }
}

TEST(ParallelExecTest, FilterQueriesBitIdentical) {
  auto data =
      testutil::RandomDataset(17, 12, 60, 3, 4, /*num_numeric_attrs=*/40);
  AmberEngine engine = MustBuild(data);
  CheckDeterminism(engine,
                   "SELECT ?x WHERE { ?x <urn:num0> ?a . FILTER(?a > 20) }");
  CheckDeterminism(engine,
                   "SELECT ?x ?y WHERE { ?x <urn:p0> ?y . ?x <urn:num0> ?a . "
                   "FILTER(?a < 35) }");
  for (int qi = 0; qi < 6; ++qi) {
    CheckDeterminism(engine,
                     testutil::RandomFilterQueryFromData(data, 8800 + qi, 3));
  }
  // Post-filter ablation mode is parallelized identically.
  ExecOptions post_filter;
  post_filter.use_value_index = false;
  CheckDeterminism(engine,
                   "SELECT ?x ?y WHERE { ?x <urn:p0> ?y . ?x <urn:num0> ?a . "
                   "FILTER(?a < 35) }",
                   post_filter);
}

TEST(ParallelExecTest, EdgeShapesBitIdentical) {
  auto data = testutil::RandomDataset(13, 10, 50, 3);
  AmberEngine engine = MustBuild(data);
  // Multi-component cross product (components after the first are chained
  // inside each worker).
  CheckDeterminism(engine,
                   "SELECT ?a ?x WHERE { ?a <urn:p0> ?b . ?x <urn:p1> ?y . }");
  // Star with satellites (Cartesian expansion inside chunks).
  CheckDeterminism(engine,
                   "SELECT ?c ?a ?b WHERE { ?c <urn:p0> ?a . ?c <urn:p1> ?b "
                   ". }");
  // Empty result.
  CheckDeterminism(
      engine, "SELECT ?a WHERE { ?a <urn:p0> ?b . ?b <urn:nosuch> ?c . }");
  // Ground-only query (stays on the serial path; must still work with
  // num_threads set).
  auto dict_rows = engine.MaterializeSparql(
      "SELECT ?a WHERE { ?a <urn:p0> ?b . }", {});
  ASSERT_TRUE(dict_rows.ok());
  if (!dict_rows->rows.empty()) {
    const std::string subject = dict_rows->rows[0][0];
    CheckDeterminism(engine, "SELECT ?z WHERE { ?z <urn:p0> ?y . " + subject +
                                 " <urn:p0> ?w . }");
  }
}

TEST(ParallelExecTest, StatsReportFanOutAndAggregation) {
  auto data = testutil::RandomDataset(11, 40, 400, 3);
  AmberEngine engine = MustBuild(data);
  const char* text =
      "SELECT ?a ?c WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . }";

  ExecOptions serial;
  auto s = engine.CountSparql(text, serial);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->stats.threads_used, 0u);
  EXPECT_EQ(s->stats.tasks_dispatched, 0u);
  ASSERT_GT(s->stats.initial_candidates, 1u);

  ExecOptions par;
  par.num_threads = 4;
  auto p = engine.CountSparql(text, par);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->count, s->count);
  EXPECT_GE(p->stats.threads_used, 2u);
  EXPECT_LE(p->stats.threads_used, 4u);
  EXPECT_GE(p->stats.tasks_dispatched, p->stats.threads_used);
  // CandInit is attributed once, not per worker.
  EXPECT_EQ(p->stats.initial_candidates, s->stats.initial_candidates);
  // The same total matching work happened (recursion is partition-
  // independent for a fixed root candidate set).
  EXPECT_EQ(p->stats.recursion_calls, s->stats.recursion_calls);
  EXPECT_EQ(p->stats.embeddings_found, s->stats.embeddings_found);
  EXPECT_GT(p->stats.peak_arena_bytes, 0u);
}

TEST(ParallelExecTest, ExplainReportsParallelStage) {
  auto data = testutil::RandomDataset(11, 12, 60, 3);
  AmberEngine engine = MustBuild(data);
  auto parsed = SparqlParser::Parse(
      "SELECT ?a WHERE { ?a <urn:p0> ?b . ?b <urn:p1> ?c . }");
  ASSERT_TRUE(parsed.ok());

  ExecOptions par;
  par.num_threads = 4;
  auto text = ExplainQuery(*parsed, engine.dictionaries(), &engine.indexes(),
                           {}, &par);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("Parallel online stage: 4 threads"), std::string::npos)
      << *text;
  EXPECT_NE(text->find("chunk-order merge"), std::string::npos);

  ExecOptions serial;
  auto serial_text = ExplainQuery(*parsed, engine.dictionaries(),
                                  &engine.indexes(), {}, &serial);
  ASSERT_TRUE(serial_text.ok());
  EXPECT_NE(serial_text->find("Parallel online stage: serial"),
            std::string::npos);

  // Without exec options the plan text is unchanged (no parallel line).
  auto plain = ExplainQuery(*parsed, engine.dictionaries(), &engine.indexes());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->find("Parallel online stage"), std::string::npos);
}

TEST(ParallelExecTest, TimeoutIsAPerQueryBudgetAcrossChunks) {
  // A 4-cycle over a dense single-predicate graph: every variable is core
  // (degree 2), so enumeration is real recursion — millions of extension
  // steps, unfinishable inside the budget. The shared absolute deadline
  // must bound the whole parallel run near the per-QUERY timeout — not
  // timeout-per-chunk (the old failure mode: each chunk Run restarting
  // the clock, stretching wall time towards timeout * num_chunks).
  auto data = testutil::RandomDataset(2, 200, 20000, 1);
  AmberEngine engine = MustBuild(data);
  const char* text =
      "SELECT ?a ?b ?c ?d WHERE { ?a <urn:p0> ?b . ?b <urn:p0> ?c . "
      "?c <urn:p0> ?d . ?d <urn:p0> ?a . }";

  ExecOptions par;
  par.num_threads = 4;
  par.timeout = std::chrono::milliseconds(40);
  auto r = engine.CountSparql(text, par);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->stats.timed_out);
  ASSERT_GT(r->stats.tasks_dispatched, 2u);
  // Generous slack for loaded/sanitized CI: fail only on the per-chunk
  // restart pathology, which lands near 40ms * tasks_dispatched.
  EXPECT_LT(r->stats.elapsed_ms,
            40.0 * static_cast<double>(r->stats.tasks_dispatched) / 2.0);
}

TEST(ParallelExecTest, ThreadCountBeyondCandidatesIsGraceful) {
  // More threads than root candidates: workers clamp to the candidate
  // count and results stay identical.
  std::vector<Triple> data;
  auto iri = [](const std::string& s) { return Term::Iri("urn:" + s); };
  data.push_back({iri("a"), iri("p"), iri("b")});
  data.push_back({iri("b"), iri("q"), iri("c")});
  AmberEngine engine = MustBuild(data);
  CheckDeterminism(engine,
                   "SELECT ?x ?z WHERE { ?x <urn:p> ?y . ?y <urn:q> ?z . }");
}

}  // namespace
}  // namespace amber
