// Unit tests for the ValueIndex: typed-value classification, numeric and
// string range scans (bounds, exclusions, dedup), selectivity estimates,
// residual vertex checks, stream round trip, and AMF corruption discipline.

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>

#include "core/amber_engine.h"
#include "index/value_index.h"
#include "rdf/encoded_dataset.h"
#include "test_util.h"
#include "util/mmap_file.h"

namespace amber {
namespace {

constexpr const char* kXsdInt = "http://www.w3.org/2001/XMLSchema#integer";
constexpr const char* kXsdDec = "http://www.w3.org/2001/XMLSchema#decimal";

struct Fixture {
  EncodedDataset dataset;
  Multigraph graph;
  ValueIndex index;
  RdfDictionaries dicts;
};

// e0..e3 with ages {10, 25, 25, 40}; names {"ann", "bob", "ann"}; e0 also
// has a non-numeric "age" (string "old") and an edge so the graph has both
// kinds of triples.
Fixture MakeFixture() {
  auto iri = [](const std::string& s) { return Term::Iri("urn:" + s); };
  std::vector<Triple> triples = {
      {iri("e0"), iri("age"), Term::Literal("10", kXsdInt)},
      {iri("e1"), iri("age"), Term::Literal("25", kXsdInt)},
      {iri("e2"), iri("age"), Term::Literal("25.0", kXsdDec)},
      {iri("e3"), iri("age"), Term::Literal("40", kXsdInt)},
      {iri("e0"), iri("age"), Term::Literal("old")},
      {iri("e0"), iri("name"), Term::Literal("ann")},
      {iri("e1"), iri("name"), Term::Literal("bob")},
      {iri("e2"), iri("name"), Term::Literal("ann")},
      {iri("e0"), iri("knows"), iri("e1")},
  };
  auto encoded = EncodedDataset::Encode(triples);
  EXPECT_TRUE(encoded.ok());
  Fixture f;
  f.dataset = std::move(encoded).value();
  f.graph = Multigraph::FromDataset(f.dataset);
  f.index = ValueIndex::Build(f.graph, f.dataset.attribute_values,
                              f.dataset.dictionaries.attr_predicates().size());
  f.dicts = std::move(f.dataset.dictionaries);
  return f;
}

AttrPredId PredOf(const Fixture& f, const std::string& iri) {
  auto id = f.dicts.attr_predicates().Find(iri);
  EXPECT_TRUE(id.has_value()) << iri;
  return id.value_or(kInvalidId);
}

ValueComparison Num(CompareOp op, double v) {
  ValueComparison c;
  c.op = op;
  c.value.numeric = true;
  c.value.number = v;
  return c;
}

ValueComparison Str(CompareOp op, std::string s) {
  ValueComparison c;
  c.op = op;
  c.value.text = std::move(s);
  return c;
}

std::vector<VertexId> Scan(const ValueIndex& index, AttrPredId pred,
                           std::vector<ValueComparison> cmps) {
  std::vector<VertexId> out;
  index.RangeScan(pred, cmps, &out);
  return out;
}

TEST(ValueIndexTest, EncodeSurfacesTypedValues) {
  Fixture f = MakeFixture();
  // 7 distinct <predicate, literal> pairs; 2 attribute predicates.
  EXPECT_EQ(f.index.NumAttributes(), 7u);
  EXPECT_EQ(f.index.NumPredicates(), 2u);
  // "25" (int) and "25.0" (decimal) are distinct attributes with the same
  // numeric value; "old" under age is a string value.
  AttrPredId age = PredOf(f, "urn:age");
  EXPECT_EQ(Scan(f.index, age, {Num(CompareOp::kEq, 25)}).size(), 2u);
  EXPECT_EQ(Scan(f.index, age, {Str(CompareOp::kEq, "old")}).size(), 1u);
}

TEST(ValueIndexTest, NumericRangeScans) {
  Fixture f = MakeFixture();
  AttrPredId age = PredOf(f, "urn:age");
  VertexId e0 = *f.dicts.vertices().Find("<urn:e0>");
  VertexId e1 = *f.dicts.vertices().Find("<urn:e1>");
  VertexId e2 = *f.dicts.vertices().Find("<urn:e2>");
  VertexId e3 = *f.dicts.vertices().Find("<urn:e3>");

  EXPECT_EQ(Scan(f.index, age, {Num(CompareOp::kGt, 10)}),
            testutil::CanonicalIds({e1, e2, e3}));
  EXPECT_EQ(Scan(f.index, age, {Num(CompareOp::kGe, 10)}),
            testutil::CanonicalIds({e0, e1, e2, e3}));
  EXPECT_EQ(Scan(f.index, age, {Num(CompareOp::kLt, 25)}),
            testutil::CanonicalIds({e0}));
  EXPECT_EQ(Scan(f.index, age,
                 {Num(CompareOp::kGe, 20), Num(CompareOp::kLe, 30)}),
            testutil::CanonicalIds({e1, e2}));
  EXPECT_EQ(Scan(f.index, age, {Num(CompareOp::kNe, 25)}),
            testutil::CanonicalIds({e0, e3}));
  EXPECT_TRUE(Scan(f.index, age,
                   {Num(CompareOp::kGt, 30), Num(CompareOp::kLt, 20)})
                  .empty());
  // Mixed-kind conjunctions are unsatisfiable.
  EXPECT_TRUE(
      Scan(f.index, age, {Num(CompareOp::kGt, 0), Str(CompareOp::kEq, "old")})
          .empty());
}

TEST(ValueIndexTest, StringRangeScans) {
  Fixture f = MakeFixture();
  AttrPredId name = PredOf(f, "urn:name");
  VertexId e0 = *f.dicts.vertices().Find("<urn:e0>");
  VertexId e1 = *f.dicts.vertices().Find("<urn:e1>");
  VertexId e2 = *f.dicts.vertices().Find("<urn:e2>");

  EXPECT_EQ(Scan(f.index, name, {Str(CompareOp::kEq, "ann")}),
            testutil::CanonicalIds({e0, e2}));
  EXPECT_EQ(Scan(f.index, name, {Str(CompareOp::kGt, "ann")}),
            testutil::CanonicalIds({e1}));
  EXPECT_EQ(Scan(f.index, name, {Str(CompareOp::kLe, "bob")}),
            testutil::CanonicalIds({e0, e1, e2}));
  EXPECT_EQ(Scan(f.index, name, {Str(CompareOp::kNe, "ann")}),
            testutil::CanonicalIds({e1}));
}

TEST(ValueIndexTest, EstimateTracksRangeWidth) {
  Fixture f = MakeFixture();
  AttrPredId age = PredOf(f, "urn:age");
  // 4 numeric entries in total.
  EXPECT_EQ(f.index.EstimateRange(
                age, std::vector<ValueComparison>{Num(CompareOp::kGe, 0)}),
            4u);
  EXPECT_EQ(f.index.EstimateRange(
                age, std::vector<ValueComparison>{Num(CompareOp::kGt, 25)}),
            1u);
  EXPECT_EQ(f.index.EstimateRange(
                age, std::vector<ValueComparison>{Num(CompareOp::kEq, 25)}),
            2u);
  // Unknown predicate id.
  EXPECT_EQ(f.index.EstimateRange(
                999, std::vector<ValueComparison>{Num(CompareOp::kGe, 0)}),
            0u);
}

TEST(ValueIndexTest, VertexMatchesIsResidualTruth) {
  Fixture f = MakeFixture();
  AttrPredId age = PredOf(f, "urn:age");
  for (VertexId v = 0; v < f.graph.NumVertices(); ++v) {
    std::vector<ValueComparison> cmps = {Num(CompareOp::kGt, 20)};
    std::vector<VertexId> scanned = Scan(f.index, age, cmps);
    const bool in_scan =
        std::binary_search(scanned.begin(), scanned.end(), v);
    EXPECT_EQ(f.index.VertexMatches(f.graph.Attributes(v), age, cmps),
              in_scan)
        << "vertex " << v;
  }
}

TEST(ValueIndexTest, StreamRoundTrip) {
  Fixture f = MakeFixture();
  std::stringstream ss;
  f.index.Save(ss);
  ValueIndex loaded;
  ASSERT_TRUE(loaded.Load(ss).ok());
  EXPECT_TRUE(loaded == f.index);

  std::string full = ss.str();
  f.index.Save(ss);
  std::stringstream truncated(full.substr(0, full.size() / 2));
  ValueIndex bad;
  EXPECT_FALSE(bad.Load(truncated).ok());
}

// AMF corruption: flipping a value-index section's contents must surface
// as Status::Corruption at OpenFile, with the same discipline as the
// other indexes.
TEST(ValueIndexTest, AmfCorruptionRejected) {
  auto data = testutil::RandomDataset(3, 12, 60, 3, 4, 30);
  auto engine = AmberEngine::Build(data);
  ASSERT_TRUE(engine.ok());
  const std::string path = testing::TempDir() + "/value_index_corrupt.amf";
  ASSERT_TRUE(engine->SaveFile(path).ok());

  std::ifstream is(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());
  amf::FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  auto find_section = [&](uint32_t id) -> amf::SectionEntry {
    for (uint64_t i = 0; i < header.section_count; ++i) {
      amf::SectionEntry entry;
      std::memcpy(&entry, bytes.data() + sizeof(header) + i * sizeof(entry),
                  sizeof(entry));
      if (entry.id == id) return entry;
    }
    ADD_FAILURE() << "section " << id << " not found";
    return {};
  };

  // 0x6007 = numeric column vertices: out-of-range vertex id.
  {
    amf::SectionEntry section = find_section(0x6007);
    ASSERT_GE(section.length, sizeof(uint32_t));
    std::vector<char> patched = bytes;
    uint32_t huge = 0xFFFFFFF0u;
    std::memcpy(patched.data() + section.offset, &huge, sizeof(huge));
    const std::string bad = testing::TempDir() + "/value_index_bad1.amf";
    std::ofstream os(bad, std::ios::binary | std::ios::trunc);
    os.write(patched.data(), static_cast<std::streamsize>(patched.size()));
    os.close();
    auto loaded = AmberEngine::OpenFile(bad);
    ASSERT_FALSE(loaded.ok()) << "accepted corrupt value-index vertex";
    EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
  }
  // 0x6000 = attribute predicate table: id beyond the predicate space.
  {
    amf::SectionEntry section = find_section(0x6000);
    ASSERT_GE(section.length, sizeof(uint32_t));
    std::vector<char> patched = bytes;
    uint32_t huge = 0xFFFFFFF0u;
    std::memcpy(patched.data() + section.offset, &huge, sizeof(huge));
    const std::string bad = testing::TempDir() + "/value_index_bad2.amf";
    std::ofstream os(bad, std::ios::binary | std::ios::trunc);
    os.write(patched.data(), static_cast<std::streamsize>(patched.size()));
    os.close();
    auto loaded = AmberEngine::OpenFile(bad);
    ASSERT_FALSE(loaded.ok()) << "accepted corrupt attribute predicate";
    EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
  }
}

// The mmap-restored index serves the same scans as the built one, borrowed
// straight from the mapping.
TEST(ValueIndexTest, MmapRestoredScansAgree) {
  auto data = testutil::RandomDataset(5, 15, 80, 3, 4, 40);
  auto built = AmberEngine::Build(data);
  ASSERT_TRUE(built.ok());
  const std::string path = testing::TempDir() + "/value_index_mmap.amf";
  ASSERT_TRUE(built->SaveFile(path).ok());
  auto mapped = AmberEngine::OpenFile(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();

  for (AttrPredId p = 0;
       p < built->dictionaries().attr_predicates().size(); ++p) {
    for (double threshold : {0.0, 10.0, 25.0, 49.0}) {
      std::vector<ValueComparison> cmps = {Num(CompareOp::kGt, threshold)};
      std::vector<VertexId> a, b;
      built->indexes().value.RangeScan(p, cmps, &a);
      mapped->indexes().value.RangeScan(p, cmps, &b);
      EXPECT_EQ(a, b) << "pred " << p << " > " << threshold;
    }
  }
}

}  // namespace
}  // namespace amber
