// AMF artifact format suite: zero-copy mmap round trips, corruption
// injection (every format violation must come back as a clean Status,
// never a crash or an over-allocation), and bit-identical output of the
// parallel offline build.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/amber_engine.h"
#include "gen/paper_example.h"
#include "sparql/parser.h"
#include "test_util.h"
#include "util/amf.h"
#include "util/fault_injector.h"
#include "util/mmap_file.h"

namespace amber {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(is),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

AmberEngine MustBuild(const std::vector<Triple>& triples) {
  auto engine = AmberEngine::Build(triples);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).value();
}

TEST(AmfWriterReaderTest, RoundTripsSections) {
  amf::Writer writer;
  std::vector<uint64_t> big = {1, 2, 3, 4, 5};
  std::vector<uint32_t> small = {7};
  writer.AddArray<uint64_t>(10, big);
  writer.AddArray<uint32_t>(20, small);
  writer.AddOwned<char>(30, {'a', 'b', 'c'});
  const std::string path = TempPath("amf_roundtrip.amf");
  ASSERT_TRUE(writer.WriteTo(path).ok());

  auto file = MappedFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status();
  auto reader = amf::Reader::Open(file->data());
  ASSERT_TRUE(reader.ok()) << reader.status();

  auto a = reader->Array<uint64_t>(10);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(std::vector<uint64_t>(a->begin(), a->end()), big);
  auto b = reader->Array<uint32_t>(20);
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(b->size(), 1u);
  EXPECT_EQ((*b)[0], 7u);
  auto c = reader->Array<char>(30);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(std::string(c->begin(), c->end()), "abc");

  EXPECT_TRUE(reader->Has(10));
  EXPECT_FALSE(reader->Has(99));
  EXPECT_TRUE(reader->Array<uint64_t>(99).status().IsNotFound());
}

TEST(AmfWriterReaderTest, SectionsAre64ByteAligned) {
  amf::Writer writer;
  writer.AddOwned<char>(1, {'x'});  // 1-byte payload forces padding
  writer.AddOwned<uint64_t>(2, {42});
  const std::string path = TempPath("amf_align.amf");
  ASSERT_TRUE(writer.WriteTo(path).ok());

  std::vector<char> bytes = ReadAll(path);
  ASSERT_EQ(bytes.size() % amf::kSectionAlign, 0u);
  amf::FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  EXPECT_EQ(header.file_length, bytes.size());
  for (uint64_t i = 0; i < header.section_count; ++i) {
    amf::SectionEntry entry;
    std::memcpy(&entry,
                bytes.data() + sizeof(header) + i * sizeof(entry),
                sizeof(entry));
    EXPECT_EQ(entry.offset % amf::kSectionAlign, 0u);
  }
}

class AmfEngineTest : public ::testing::Test {
 protected:
  // One saved artifact per corruption test. The path embeds the test name:
  // ctest runs each TEST_F as its own process, so a shared path would race
  // one process's mmap against another's rewrite (SIGBUS on truncation).
  void SetUp() override {
    path_ = TempPath(std::string("amf_engine_") +
                     ::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name() +
                     ".amf");
    AmberEngine engine = MustBuild(testutil::MustParse(kPaperExampleNTriples));
    ASSERT_TRUE(engine.SaveFile(path_).ok());
    baseline_count_ = engine.CountSparql(kPaperExampleQuery, {})->count;
  }

  std::string path_;
  uint64_t baseline_count_ = 0;
};

TEST_F(AmfEngineTest, OpenFilePreservesResultsAndGraph) {
  auto loaded = AmberEngine::OpenFile(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto count = loaded->CountSparql(kPaperExampleQuery, {});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->count, baseline_count_);

  AmberEngine built = MustBuild(testutil::MustParse(kPaperExampleNTriples));
  EXPECT_TRUE(loaded->graph() == built.graph());
}

TEST_F(AmfEngineTest, OpenFileIsZeroCopy) {
  auto loaded = AmberEngine::OpenFile(path_);
  ASSERT_TRUE(loaded.ok());
  std::span<const std::byte> region = loaded->MappedRegion();
  ASSERT_FALSE(region.empty());
  auto within = [&region](const void* p) {
    return p >= region.data() && p < region.data() + region.size();
  };
  // CSR payloads point straight into the mapping, not at heap copies.
  const Multigraph& g = loaded->graph();
  bool checked_group = false;
  for (VertexId v = 0; v < g.NumVertices() && !checked_group; ++v) {
    if (g.GroupCount(v, Direction::kOut) > 0) {
      EXPECT_TRUE(within(g.Group(v, Direction::kOut, 0).types.data()));
      checked_group = true;
    }
  }
  EXPECT_TRUE(checked_group);
  bool checked_attr = false;
  for (VertexId v = 0; v < g.NumVertices() && !checked_attr; ++v) {
    if (!g.Attributes(v).empty()) {
      EXPECT_TRUE(within(g.Attributes(v).data()));
      checked_attr = true;
    }
  }
  EXPECT_TRUE(checked_attr);
  // Dictionary string bytes are borrowed from the mapping too.
  EXPECT_TRUE(within(loaded->dictionaries().VertexToken(0).data()));
}

TEST_F(AmfEngineTest, SaveOfMmapLoadedEngineIsByteIdentical) {
  auto loaded = AmberEngine::OpenFile(path_);
  ASSERT_TRUE(loaded.ok());
  const std::string resaved = TempPath("amf_engine_resaved.amf");
  ASSERT_TRUE(loaded->SaveFile(resaved).ok());
  EXPECT_EQ(ReadAll(path_), ReadAll(resaved));
}

TEST_F(AmfEngineTest, RejectsTruncation) {
  std::vector<char> bytes = ReadAll(path_);
  const std::string bad = TempPath("amf_truncated.amf");
  for (size_t keep : {size_t{0}, size_t{10}, size_t{100},
                      bytes.size() / 2, bytes.size() - 1}) {
    WriteAll(bad, std::vector<char>(bytes.begin(), bytes.begin() + keep));
    auto loaded = AmberEngine::OpenFile(bad);
    ASSERT_FALSE(loaded.ok()) << "accepted truncation to " << keep;
    EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
  }
}

TEST_F(AmfEngineTest, RejectsTruncationAtEverySectionBoundary) {
  // A torn write (crash mid-copy, partial download) most plausibly stops
  // at a section edge. Sweep EVERY boundary — each section's start and
  // end, plus one byte either side — and demand a clean Corruption
  // status, never a crash or a partial engine.
  std::vector<char> bytes = ReadAll(path_);
  amf::FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  std::vector<size_t> cuts = {sizeof(amf::FileHeader),
                              sizeof(amf::FileHeader) +
                                  header.section_count *
                                      sizeof(amf::SectionEntry)};
  for (uint64_t i = 0; i < header.section_count; ++i) {
    amf::SectionEntry entry;
    std::memcpy(&entry,
                bytes.data() + sizeof(header) + i * sizeof(entry),
                sizeof(entry));
    for (size_t cut : {entry.offset - 1, entry.offset, entry.offset + 1,
                       entry.offset + entry.length}) {
      cuts.push_back(cut);
    }
  }
  const std::string bad = TempPath("amf_boundary_cut.amf");
  for (size_t cut : cuts) {
    if (cut >= bytes.size()) continue;  // not a truncation
    WriteAll(bad, std::vector<char>(bytes.begin(), bytes.begin() + cut));
    auto loaded = AmberEngine::OpenFile(bad);
    ASSERT_FALSE(loaded.ok()) << "accepted truncation at byte " << cut;
    EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
  }
}

TEST_F(AmfEngineTest, RejectsEveryBitFlipInSectionTable) {
  // Flip one bit in every byte of the section table. The table checksum
  // in the header covers all of it, so every flip — even in a reserved
  // field, even an offset flip that stays aligned and in bounds — must
  // be rejected with a clean Corruption status. Never a crash, never a
  // silently redirected section.
  std::vector<char> bytes = ReadAll(path_);
  amf::FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  const size_t table_begin = sizeof(amf::FileHeader);
  const size_t table_end =
      table_begin + header.section_count * sizeof(amf::SectionEntry);
  const std::string bad = TempPath("amf_bitflip.amf");
  for (size_t pos = table_begin; pos < table_end; ++pos) {
    std::vector<char> patched = bytes;
    patched[pos] ^= static_cast<char>(1u << (pos % 8));
    WriteAll(bad, patched);
    auto loaded = AmberEngine::OpenFile(bad);
    ASSERT_FALSE(loaded.ok()) << "accepted flip at byte " << pos;
    EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
  }
}

TEST_F(AmfEngineTest, InjectedArtifactReadFaultsSurfaceAsStatus) {
  // The restore path has two read-fault sites: the mmap itself and the
  // AMF section-table parse. Injected IO errors at either must come back
  // through OpenFile as that Status — the engine is never half-built.
  {
    FaultSpec spec;
    spec.code = StatusCode::kIOError;
    spec.message = "disk read failed";
    spec.fail_nth = 1;
    ScopedFault fault(faults::kMmapOpen, spec);
    auto loaded = AmberEngine::OpenFile(path_);
    ASSERT_FALSE(loaded.ok());
    EXPECT_TRUE(loaded.status().IsIOError()) << loaded.status();
    EXPECT_EQ(FaultInjector::Global().Fires(faults::kMmapOpen), 1u);
  }
  {
    FaultSpec spec;
    spec.code = StatusCode::kIOError;
    spec.message = "torn section table";
    spec.fail_nth = 1;
    ScopedFault fault(faults::kAmfOpen, spec);
    auto loaded = AmberEngine::OpenFile(path_);
    ASSERT_FALSE(loaded.ok());
    EXPECT_TRUE(loaded.status().IsIOError()) << loaded.status();
  }
  // Disarmed again: the same artifact opens cleanly and answers.
  auto loaded = AmberEngine::OpenFile(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto count = loaded->CountSparql(kPaperExampleQuery, {});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->count, baseline_count_);
}

TEST_F(AmfEngineTest, RejectsBadMagicAndVersion) {
  std::vector<char> bytes = ReadAll(path_);
  const std::string bad = TempPath("amf_bad_header.amf");

  std::vector<char> bad_magic = bytes;
  bad_magic[0] = 'X';
  WriteAll(bad, bad_magic);
  auto loaded = AmberEngine::OpenFile(bad);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());

  std::vector<char> bad_version = bytes;
  bad_version[4] = 99;  // version field
  WriteAll(bad, bad_version);
  loaded = AmberEngine::OpenFile(bad);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(AmfEngineTest, RejectsMisalignedAndOutOfBoundsSections) {
  std::vector<char> bytes = ReadAll(path_);
  const std::string bad = TempPath("amf_bad_table.amf");

  // First section entry starts right after the 64-byte header; its offset
  // field is at +8 within the entry.
  const size_t entry0_offset_field = sizeof(amf::FileHeader) + 8;

  std::vector<char> misaligned = bytes;
  uint64_t off;
  std::memcpy(&off, misaligned.data() + entry0_offset_field, sizeof(off));
  off += 1;  // break 64-byte alignment
  std::memcpy(misaligned.data() + entry0_offset_field, &off, sizeof(off));
  WriteAll(bad, misaligned);
  auto loaded = AmberEngine::OpenFile(bad);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());

  std::vector<char> oob = bytes;
  const size_t entry0_length_field = sizeof(amf::FileHeader) + 16;
  uint64_t huge = bytes.size() + amf::kSectionAlign;
  std::memcpy(oob.data() + entry0_length_field, &huge, sizeof(huge));
  WriteAll(bad, oob);
  loaded = AmberEngine::OpenFile(bad);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(AmfEngineTest, RejectsCorruptIntraArrayIndices) {
  // Sections can be structurally valid (aligned, in bounds, right length)
  // while their *contents* point outside sibling arrays; loaders must
  // reject that too, or the first query walks wild pointers.
  std::vector<char> bytes = ReadAll(path_);
  amf::FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  auto find_section = [&](uint32_t id) -> amf::SectionEntry {
    for (uint64_t i = 0; i < header.section_count; ++i) {
      amf::SectionEntry entry;
      std::memcpy(&entry,
                  bytes.data() + sizeof(header) + i * sizeof(entry),
                  sizeof(entry));
      if (entry.id == id) return entry;
    }
    ADD_FAILURE() << "section " << id << " not found";
    return {};
  };

  const std::string bad = TempPath("amf_bad_contents.amf");
  // Out-direction adjacency groups (0x1011): GroupEntry.type_begin is at
  // byte offset 4 of the first 12-byte entry.
  {
    amf::SectionEntry groups = find_section(0x1011);
    ASSERT_GE(groups.length, 12u);
    std::vector<char> patched = bytes;
    uint32_t huge = 0xFFFFFFF0u;
    std::memcpy(patched.data() + groups.offset + 4, &huge, sizeof(huge));
    WriteAll(bad, patched);
    auto loaded = AmberEngine::OpenFile(bad);
    ASSERT_FALSE(loaded.ok()) << "accepted corrupt group type_begin";
    EXPECT_TRUE(loaded.status().IsCorruption());
  }
  // In-direction neighborhood trie nodes (0x4012): Node.subtree_end is at
  // byte offset 4 of the first 16-byte node; zero breaks DFS progress.
  {
    amf::SectionEntry nodes = find_section(0x4012);
    ASSERT_GE(nodes.length, 16u);
    std::vector<char> patched = bytes;
    uint32_t zero = 0;
    std::memcpy(patched.data() + nodes.offset + 4, &zero, sizeof(zero));
    WriteAll(bad, patched);
    auto loaded = AmberEngine::OpenFile(bad);
    ASSERT_FALSE(loaded.ok()) << "accepted corrupt trie subtree_end";
    EXPECT_TRUE(loaded.status().IsCorruption());
  }
  // Attribute index pool (0x2001): vertex ids must be < NumVertices.
  {
    amf::SectionEntry pool = find_section(0x2001);
    ASSERT_GE(pool.length, sizeof(uint32_t));
    std::vector<char> patched = bytes;
    uint32_t huge = 0xFFFFFFF0u;
    std::memcpy(patched.data() + pool.offset, &huge, sizeof(huge));
    WriteAll(bad, patched);
    auto loaded = AmberEngine::OpenFile(bad);
    ASSERT_FALSE(loaded.ok()) << "accepted corrupt attribute pool entry";
    EXPECT_TRUE(loaded.status().IsCorruption());
  }
}

TEST_F(AmfEngineTest, RejectsDictionaryNotCoveringGraph) {
  // Shrink the vertex dictionary by one entry, keeping its own blob/offset
  // invariants intact, so only the engine-level cross-check can notice
  // that the graph references vertex ids the dictionary cannot translate.
  std::vector<char> bytes = ReadAll(path_);
  amf::FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  size_t blob_entry_pos = 0, offsets_entry_pos = 0;
  amf::SectionEntry blob_entry{}, offsets_entry{};
  for (uint64_t i = 0; i < header.section_count; ++i) {
    const size_t pos = sizeof(header) + i * sizeof(amf::SectionEntry);
    amf::SectionEntry entry;
    std::memcpy(&entry, bytes.data() + pos, sizeof(entry));
    if (entry.id == 0x5010) {  // vertex dictionary blob
      blob_entry = entry;
      blob_entry_pos = pos;
    } else if (entry.id == 0x5011) {  // vertex dictionary offsets
      offsets_entry = entry;
      offsets_entry_pos = pos;
    }
  }
  ASSERT_GT(offsets_entry.length, 2 * sizeof(uint64_t));

  const uint64_t count = offsets_entry.length / sizeof(uint64_t);
  uint64_t new_back = 0;
  std::memcpy(&new_back,
              bytes.data() + offsets_entry.offset +
                  (count - 2) * sizeof(uint64_t),
              sizeof(new_back));
  std::vector<char> patched = bytes;
  const uint64_t new_offsets_len = offsets_entry.length - sizeof(uint64_t);
  std::memcpy(patched.data() + offsets_entry_pos + 16, &new_offsets_len,
              sizeof(new_offsets_len));
  std::memcpy(patched.data() + blob_entry_pos + 16, &new_back,
              sizeof(new_back));
  const std::string bad = TempPath("amf_short_dict.amf");
  WriteAll(bad, patched);
  auto loaded = AmberEngine::OpenFile(bad);
  ASSERT_FALSE(loaded.ok()) << "accepted dictionary smaller than graph";
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
}

TEST(AmfEdgeCaseTest, EmptyDatasetRoundTrips) {
  AmberEngine engine = MustBuild({});
  const std::string path = TempPath("amf_empty.amf");
  ASSERT_TRUE(engine.SaveFile(path).ok());
  auto loaded = AmberEngine::OpenFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->graph().NumVertices(), 0u);
  auto count = loaded->CountSparql(
      "SELECT ?a WHERE { ?a <urn:p> ?b . }", {});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->count, 0u);
}

TEST(AmfParallelBuildTest, ThreadedBuildProducesBitIdenticalArtifact) {
  auto triples = testutil::RandomDataset(42, 60, 400, 5);
  AmberEngine::BuildOptions serial;
  serial.num_threads = 1;
  AmberEngine::BuildOptions threaded;
  threaded.num_threads = 4;

  auto a = AmberEngine::Build(triples, serial);
  ASSERT_TRUE(a.ok());
  auto b = AmberEngine::Build(triples, threaded);
  ASSERT_TRUE(b.ok());

  const std::string path_a = TempPath("amf_serial.amf");
  const std::string path_b = TempPath("amf_threaded.amf");
  ASSERT_TRUE(a->SaveFile(path_a).ok());
  ASSERT_TRUE(b->SaveFile(path_b).ok());
  EXPECT_EQ(ReadAll(path_a), ReadAll(path_b));

  // The stream format must agree as well.
  std::stringstream sa, sb;
  ASSERT_TRUE(a->Save(sa).ok());
  ASSERT_TRUE(b->Save(sb).ok());
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(AmfParallelBuildTest, ThreadedBuildAnswersQueries) {
  auto triples = testutil::RandomDataset(7, 40, 300, 4);
  AmberEngine::BuildOptions threaded;
  threaded.num_threads = 3;
  auto serial = AmberEngine::Build(triples);
  ASSERT_TRUE(serial.ok());
  auto parallel = AmberEngine::Build(triples, threaded);
  ASSERT_TRUE(parallel.ok());
  for (int qi = 0; qi < 8; ++qi) {
    std::string text = testutil::RandomQueryFromData(triples, 500 + qi, 3);
    auto want = serial->CountSparql(text, {});
    auto got = parallel->CountSparql(text, {});
    ASSERT_TRUE(want.ok() && got.ok());
    EXPECT_EQ(got->count, want->count) << text;
  }
}

}  // namespace
}  // namespace amber
