// Shared helpers for the AMbER test suite: paper-example fixtures, random
// dataset/query generators for property tests, and a term-level brute-force
// reference evaluator used as the oracle for cross-engine agreement.

#ifndef AMBER_TESTS_TEST_UTIL_H_
#define AMBER_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "rdf/literal_value.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"
#include "sparql/ast.h"
#include "sparql/filters.h"
#include "util/random.h"

namespace amber {
namespace testutil {

/// Parses N-Triples text, aborting the test on failure.
inline std::vector<Triple> MustParse(std::string_view ntriples) {
  auto result = NTriplesParser::ParseString(ntriples);
  if (!result.ok()) {
    ADD_FAILURE() << "fixture parse failed: " << result.status();
    return {};
  }
  return std::move(result).value();
}

/// Canonical form of a result table: each row joined with '\x1f', rows
/// sorted. Two engines agree iff their canonical forms are equal (bag
/// semantics).
inline std::vector<std::string> CanonicalRows(
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    std::string joined;
    for (const auto& cell : row) {
      joined += cell;
      joined += '\x1f';
    }
    out.push_back(std::move(joined));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Sorted, deduplicated vertex-id list (expected form of index scans).
inline std::vector<uint32_t> CanonicalIds(std::vector<uint32_t> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

/// \brief Term-level brute-force evaluator of the paper's query model.
///
/// Variables bind resources only; literal objects are constants. Used as
/// the oracle: O(|data|^|patterns|), fine for the small random fixtures.
class BruteForceReference {
 public:
  explicit BruteForceReference(const std::vector<Triple>& data)
      : data_(data) {
    // RDF graphs are *sets* of statements; duplicate input triples must not
    // inflate result multiplicities (the engines dedup during build too).
    std::sort(data_.begin(), data_.end());
    data_.erase(std::unique(data_.begin(), data_.end()), data_.end());
  }

  /// Returns rows of N-Triples tokens for the projected variables
  /// (bag semantics; deduplicated under DISTINCT). FILTERed literal
  /// variables follow the shared existential semantics (sparql/filters.h):
  /// they bind satisfying literals while matching, are excluded from
  /// SELECT *, and assignments differing only in them collapse to one row.
  std::vector<std::vector<std::string>> Evaluate(const SelectQuery& query) {
    bindings_.clear();
    rows_.clear();
    witness_seen_.clear();
    filter_cmps_.clear();
    query_ = &query;
    auto analysis = AnalyzeFilters(query);
    EXPECT_TRUE(analysis.ok()) << analysis.status();
    if (!analysis.ok()) return {};
    for (const VarFilter& vf : analysis->var_filters) {
      filter_cmps_[vf.var] = &vf.comparisons;
    }
    CollectVariables();
    Recurse(0);
    if (query.distinct) {
      std::sort(rows_.begin(), rows_.end());
      rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
    }
    return rows_;
  }

 private:
  void CollectVariables() {
    vars_.clear();
    auto add = [this](const PatternTerm& t) {
      if (t.is_variable() && !filter_cmps_.count(t.value) &&
          std::find(vars_.begin(), vars_.end(), t.value) == vars_.end()) {
        vars_.push_back(t.value);
      }
    };
    for (const TriplePattern& p : query_->patterns) {
      add(p.subject);
      add(p.predicate);
      add(p.object);
    }
  }

  bool Unify(const PatternTerm& slot, const Term& term,
             std::vector<std::pair<std::string, std::string>>* trail) {
    if (!slot.is_variable()) {
      return slot.ToTerm() == term;
    }
    auto fit = filter_cmps_.find(slot.value);
    if (fit != filter_cmps_.end()) {
      // FILTERed literal variable: binds literals passing its conjunction.
      if (!term.is_literal()) return false;
      if (!SatisfiesAll(LiteralValueOf(term), *fit->second)) return false;
    } else if (term.is_literal()) {
      return false;  // paper model: resource variables never bind literals
    }
    std::string token = term.ToNTriples();
    auto it = bindings_.find(slot.value);
    if (it != bindings_.end()) return it->second == token;
    bindings_[slot.value] = token;
    trail->emplace_back(slot.value, token);
    return true;
  }

  void Recurse(size_t depth) {
    if (depth == query_->patterns.size()) {
      if (!filter_cmps_.empty()) {
        // Existential collapse: assignments that differ only in FILTERed
        // variables produce one row (vars_ excludes them).
        std::string key;
        for (const std::string& v : vars_) {
          key += bindings_.at(v);
          key += '\x1f';
        }
        if (!witness_seen_.insert(std::move(key)).second) return;
      }
      std::vector<std::string> row;
      if (query_->select_all) {
        for (const std::string& v : vars_) row.push_back(bindings_.at(v));
      } else {
        for (const std::string& v : query_->projection) {
          row.push_back(bindings_.at(v));
        }
      }
      rows_.push_back(std::move(row));
      return;
    }
    const TriplePattern& p = query_->patterns[depth];
    for (const Triple& t : data_) {
      std::vector<std::pair<std::string, std::string>> trail;
      bool ok = Unify(p.subject, t.subject, &trail) &&
                Unify(p.predicate, t.predicate, &trail) &&
                Unify(p.object, t.object, &trail);
      if (ok) Recurse(depth + 1);
      for (auto& [var, token] : trail) {
        (void)token;
        bindings_.erase(var);
      }
    }
  }

  std::vector<Triple> data_;
  const SelectQuery* query_ = nullptr;
  std::vector<std::string> vars_;  // non-FILTERed variables only
  std::map<std::string, std::string> bindings_;
  std::map<std::string, const std::vector<ValueComparison>*> filter_cmps_;
  std::set<std::string> witness_seen_;
  std::vector<std::vector<std::string>> rows_;
};

/// Random small multigraph dataset for property tests: `num_entities`
/// resources, `num_edges` edges over `num_predicates` predicates, plus
/// literal attributes. `num_numeric_attrs` additionally draws integer-typed
/// literals (values in [0, 50)) under `urn:num0` / `urn:num1` — the
/// substrate of FILTER range tests — from an independent rng stream, so
/// passing 0 reproduces the historical datasets exactly.
inline std::vector<Triple> RandomDataset(uint64_t seed, int num_entities,
                                         int num_edges, int num_predicates,
                                         int num_literal_values = 4,
                                         int num_numeric_attrs = 0) {
  Rng rng(seed);
  std::vector<Triple> data;
  auto ent = [](uint64_t i) {
    return Term::Iri("urn:e" + std::to_string(i));
  };
  auto pred = [](uint64_t i) {
    return Term::Iri("urn:p" + std::to_string(i));
  };
  for (int i = 0; i < num_edges; ++i) {
    data.emplace_back(ent(rng.Uniform(num_entities)),
                      pred(rng.Uniform(num_predicates)),
                      ent(rng.Uniform(num_entities)));
  }
  const int num_attrs = num_edges / 3 + 1;
  for (int i = 0; i < num_attrs; ++i) {
    // Built in two steps: GCC 12 misfires -Wrestrict on the inlined
    // `const char* + std::string&&` at -O2.
    std::string value = "v";
    value += std::to_string(rng.Uniform(num_literal_values));
    data.emplace_back(ent(rng.Uniform(num_entities)),
                      pred(rng.Uniform(num_predicates)),
                      Term::Literal(value));
  }
  Rng nrng(seed * 0x9E3779B97F4A7C15ull + 1);
  for (int i = 0; i < num_numeric_attrs; ++i) {
    // Two-step strings: GCC 12 misfires -Wrestrict on the inlined
    // `const char* + std::string&&` at -O2 (see above).
    std::string pred_iri = "urn:num";
    pred_iri += std::to_string(nrng.Uniform(2));
    data.emplace_back(
        ent(nrng.Uniform(num_entities)), Term::Iri(std::move(pred_iri)),
        Term::Literal(std::to_string(nrng.Uniform(50)),
                      "http://www.w3.org/2001/XMLSchema#integer"));
  }
  return data;
}

/// Random connected conjunctive query drawn from the dataset (so it usually
/// has answers); mirrors the complex-shaped workload at miniature scale.
inline std::string RandomQueryFromData(const std::vector<Triple>& data,
                                       uint64_t seed, int num_patterns,
                                       double constant_prob = 0.2) {
  Rng rng(seed);
  if (data.empty()) return "SELECT ?X0 WHERE { ?X0 <urn:p0> ?X1 . }";

  std::vector<const Triple*> chosen;
  std::vector<std::string> frontier;  // entity tokens in the query so far
  const Triple& first = data[rng.Uniform(data.size())];
  chosen.push_back(&first);
  frontier.push_back(first.subject.ToNTriples());
  if (first.object.is_resource()) {
    frontier.push_back(first.object.ToNTriples());
  }
  int guard = 0;
  while (static_cast<int>(chosen.size()) < num_patterns && guard++ < 500) {
    const Triple& t = data[rng.Uniform(data.size())];
    std::string s = t.subject.ToNTriples();
    std::string o = t.object.ToNTriples();
    bool touches = false;
    for (const std::string& f : frontier) {
      if (f == s || (t.object.is_resource() && f == o)) touches = true;
    }
    if (!touches) continue;
    chosen.push_back(&t);
    frontier.push_back(s);
    if (t.object.is_resource()) frontier.push_back(o);
  }

  std::map<std::string, std::string> var_of;
  std::vector<std::string> var_order;
  auto slot = [&](const Term& term) -> std::string {
    std::string token = term.ToNTriples();
    auto it = var_of.find(token);
    if (it != var_of.end()) return it->second;
    if (rng.NextDouble() < constant_prob) return token;
    std::string v = "?X" + std::to_string(var_order.size());
    var_order.push_back(v);
    var_of[token] = v;
    return v;
  };
  std::string body;
  for (const Triple* t : chosen) {
    std::string s = slot(t->subject);
    std::string o =
        t->object.is_literal() ? t->object.ToNTriples() : slot(t->object);
    body += "  " + s + " " + t->predicate.ToNTriples() + " " + o + " .\n";
  }
  if (var_order.empty()) {
    // Ensure at least one variable so SELECT is well-formed.
    return "SELECT ?X0 WHERE { ?X0 " +
           chosen[0]->predicate.ToNTriples() + " " +
           (chosen[0]->object.is_literal()
                ? chosen[0]->object.ToNTriples()
                : chosen[0]->object.ToNTriples()) +
           " . }";
  }
  std::string head = "SELECT";
  for (const std::string& v : var_order) head += " " + v;
  return head + " WHERE {\n" + body + "}";
}

/// Random conjunctive query with a FILTER predicate attached: a base query
/// from RandomQueryFromData plus one filtered pattern `?s <urn:numK> ?F .
/// FILTER(?F op c)` on one of its subject variables (or a fresh variable
/// when the base query kept everything constant). Thresholds span the
/// numeric value range of RandomDataset, so generated queries cover empty,
/// partial, and full selectivities.
inline std::string RandomFilterQueryFromData(const std::vector<Triple>& data,
                                             uint64_t seed,
                                             int num_patterns) {
  Rng rng(seed ^ 0xF117E4);
  std::string base = RandomQueryFromData(data, seed, num_patterns);

  // Pick a variable to constrain: the first one mentioned in the query.
  size_t qpos = base.find('?');
  if (qpos == std::string::npos) return base;
  size_t qend = qpos + 1;
  while (qend < base.size() &&
         (std::isalnum(static_cast<unsigned char>(base[qend])) ||
          base[qend] == '_')) {
    ++qend;
  }
  std::string var = base.substr(qpos, qend - qpos);

  static const char* kOps[] = {">", ">=", "<", "<=", "=", "!="};
  const char* op = kOps[rng.Uniform(std::size(kOps))];
  const uint64_t threshold = rng.Uniform(55);  // values live in [0, 50)
  const std::string pred = "urn:num" + std::to_string(rng.Uniform(2));

  std::string pattern = "  " + var + " <" + pred + "> ?FQ .\n  FILTER(?FQ " +
                        op + " " + std::to_string(threshold) + ")\n";
  size_t close = base.rfind('}');
  if (close == std::string::npos) return base;
  return base.substr(0, close) + pattern + base.substr(close);
}

}  // namespace testutil
}  // namespace amber

#endif  // AMBER_TESTS_TEST_UTIL_H_
