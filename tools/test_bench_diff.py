#!/usr/bin/env python3
"""Unit tests for tools/bench_diff.py (the CI perf-regression gate).

Written as plain pytest-collectable functions (CI runs `pytest
tools/test_bench_diff.py`), with a no-dependency fallback runner so
`python3 tools/test_bench_diff.py` works on hosts without pytest.
"""

import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_diff  # noqa: E402


def harness(avg_ms=1.0, answered=2, total=2, qps=None, config=None,
            engine="AMbER", size=10):
    """One harness-schema bench dict with a single (engine, size) point."""
    point = {"size": size, "avg_ms": avg_ms, "unanswered_pct": 0.0,
             "answered": answered, "total": total}
    if qps is not None:
        point["qps"] = qps
        point["p50_ms"] = avg_ms
        point["p99_ms"] = avg_ms * 2
    return {
        "figure": "Test figure",
        "config": config or {"scale": 0.05, "queries_per_point": 2,
                             "timeout_ms": 500},
        "engines": [{"name": engine, "series": [point]}],
    }


def write_dirs(baseline, current, name="BENCH_test.json"):
    """Writes two temp dirs holding one bench file each; returns paths."""
    root = Path(tempfile.mkdtemp(prefix="bench_diff_test_"))
    base_dir = root / "base"
    cur_dir = root / "cur"
    base_dir.mkdir()
    cur_dir.mkdir()
    if baseline is not None:
        (base_dir / name).write_text(json.dumps(baseline))
    if current is not None:
        (cur_dir / name).write_text(json.dumps(current))
    return base_dir, cur_dir


def run_main(base_dir, cur_dir, *extra):
    return bench_diff.main([str(base_dir), str(cur_dir), *extra])


# ---------------------------------------------------------------------------
# Latency gate.
# ---------------------------------------------------------------------------

def test_equal_results_pass():
    base, cur = write_dirs(harness(avg_ms=2.0), harness(avg_ms=2.0))
    assert run_main(base, cur) == 0


def test_within_tolerance_passes():
    # 3x slower is under the default ratio 4 + 25ms slack.
    base, cur = write_dirs(harness(avg_ms=10.0), harness(avg_ms=30.0))
    assert run_main(base, cur) == 0


def test_step_function_regression_fails():
    # 100ms -> 1000ms blows through 100*4 + 25.
    base, cur = write_dirs(harness(avg_ms=100.0), harness(avg_ms=1000.0))
    assert run_main(base, cur) == 1


def test_slack_absorbs_sub_millisecond_noise():
    # 0.1ms -> 5ms is a 50x ratio but far inside the 25ms slack.
    base, cur = write_dirs(harness(avg_ms=0.1), harness(avg_ms=5.0))
    assert run_main(base, cur) == 0


def test_custom_ratio_and_slack():
    base, cur = write_dirs(harness(avg_ms=100.0), harness(avg_ms=250.0))
    assert run_main(base, cur, "--ratio", "2.0", "--slack-ms", "0") == 1
    assert run_main(base, cur, "--ratio", "3.0", "--slack-ms", "0") == 0


def test_stopped_answering_fails():
    base, cur = write_dirs(harness(answered=2),
                           harness(answered=0, avg_ms=0.0))
    assert run_main(base, cur) == 1


def test_never_answered_engine_is_not_gated():
    # An engine at 0 answered in the BASELINE can't regress.
    base, cur = write_dirs(harness(answered=0, avg_ms=0.0),
                           harness(answered=0, avg_ms=0.0))
    assert run_main(base, cur) == 0


def test_series_disappearing_fails():
    base, cur = write_dirs(harness(size=10), harness(size=20))
    assert run_main(base, cur) == 1


# ---------------------------------------------------------------------------
# File-level behavior.
# ---------------------------------------------------------------------------

def test_missing_current_file_fails():
    base, cur = write_dirs(harness(), None)
    assert run_main(base, cur) == 1


def test_missing_baseline_dir_is_usage_error():
    base, cur = write_dirs(harness(), harness())
    assert run_main(base / "nope", cur) == 2


def test_empty_baseline_dir_is_usage_error():
    base, cur = write_dirs(None, harness())
    assert run_main(base, cur) == 2


def test_non_harness_baseline_skipped():
    # google-benchmark-style JSON (no "engines") must be ignored, and with
    # nothing else to compare the gate still passes.
    base, cur = write_dirs({"benchmarks": [{"name": "x", "real_time": 1}]},
                           None)
    assert run_main(base, cur) == 0


def test_unreadable_current_file_fails():
    base, cur = write_dirs(harness(), None)
    (cur / "BENCH_test.json").write_text("{not json")
    assert run_main(base, cur) == 1


def test_config_change_skips_comparison():
    # Different config tuple: timings aren't comparable; even a huge
    # "regression" must be skipped rather than failed.
    base, cur = write_dirs(
        harness(avg_ms=1.0, config={"scale": 1.0}),
        harness(avg_ms=9999.0, config={"scale": 0.05}))
    assert run_main(base, cur) == 0


# ---------------------------------------------------------------------------
# Throughput (BENCH_throughput.json) qps gate.
# ---------------------------------------------------------------------------

def throughput(qps, avg_ms=1.0):
    return harness(avg_ms=avg_ms, qps=qps, engine="service-pooled", size=4)


def test_throughput_schema_passes_when_stable():
    base, cur = write_dirs(throughput(qps=500.0), throughput(qps=480.0),
                           name="BENCH_throughput.json")
    assert run_main(base, cur) == 0


def test_qps_collapse_fails():
    # 500 -> 100 qps is below 500/4: a step-function throughput loss.
    base, cur = write_dirs(throughput(qps=500.0), throughput(qps=100.0),
                           name="BENCH_throughput.json")
    assert run_main(base, cur) == 1


def test_qps_above_quarter_of_baseline_passes():
    base, cur = write_dirs(throughput(qps=500.0), throughput(qps=130.0),
                           name="BENCH_throughput.json")
    assert run_main(base, cur) == 0


def test_qps_floor_shields_tiny_smoke_points():
    # Baseline under the 10-qps floor: scheduling noise, never gated.
    base, cur = write_dirs(throughput(qps=8.0), throughput(qps=1.0),
                           name="BENCH_throughput.json")
    assert run_main(base, cur) == 0
    # Raising the floor shields bigger points too.
    big_base, big_cur = write_dirs(throughput(qps=500.0),
                                   throughput(qps=100.0),
                                   name="BENCH_throughput.json")
    assert run_main(big_base, big_cur, "--qps-floor", "1000") == 0


def test_points_without_qps_skip_the_qps_gate():
    # Plain figure files have no qps field; only the latency gate applies.
    base, cur = write_dirs(harness(avg_ms=1.0), harness(avg_ms=1.0))
    assert run_main(base, cur) == 0


# ---------------------------------------------------------------------------
# Answered-ratio collapse gate (the service-degraded fault-sweep series).
# ---------------------------------------------------------------------------

def degraded(answered, total=100, qps=200.0):
    return harness(avg_ms=1.0, answered=answered, total=total, qps=qps,
                   engine="service-degraded-10pct", size=4)


def test_answered_ratio_collapse_fails():
    # 100/100 -> 10/100 is below 1.0/4: the degraded service gave up on
    # requests instead of answering them more slowly.
    base, cur = write_dirs(degraded(answered=100), degraded(answered=10),
                           name="BENCH_throughput.json")
    assert run_main(base, cur) == 1


def test_answered_ratio_within_tolerance_passes():
    # 100/100 -> 30/100 stays above the 1.0/4 limit.
    base, cur = write_dirs(degraded(answered=100), degraded(answered=30),
                           name="BENCH_throughput.json")
    assert run_main(base, cur) == 0


def test_low_baseline_ratio_is_not_gated():
    # A point that never answered half its requests in the baseline is
    # noise-dominated; only total silence (answered=0) fails it.
    base, cur = write_dirs(degraded(answered=40), degraded(answered=1),
                           name="BENCH_throughput.json")
    assert run_main(base, cur) == 0


def test_degraded_series_qps_gate_applies():
    # The generic qps gate covers the fault-sweep series by name too.
    base, cur = write_dirs(degraded(answered=100, qps=500.0),
                           degraded(answered=100, qps=50.0),
                           name="BENCH_throughput.json")
    assert run_main(base, cur) == 1


# ---------------------------------------------------------------------------
# Buffered-bytes ceiling gate (the service-streaming series).
# ---------------------------------------------------------------------------

def streaming(peak_buffered_bytes=None, qps=200.0):
    data = harness(avg_ms=1.0, qps=qps, engine="service-streaming", size=4)
    if peak_buffered_bytes is not None:
        data["engines"][0]["series"][0]["peak_buffered_bytes"] = \
            peak_buffered_bytes
    return data


def test_streaming_buffer_stable_passes():
    base, cur = write_dirs(streaming(peak_buffered_bytes=4096),
                           streaming(peak_buffered_bytes=5000),
                           name="BENCH_throughput.json")
    assert run_main(base, cur) == 0


def test_streaming_buffer_under_floor_never_gated():
    # 4 KiB -> 512 KiB blows the 4x ratio but sits under the 1 MiB
    # absolute floor: small-baseline jitter, not an O(result) balloon.
    base, cur = write_dirs(streaming(peak_buffered_bytes=4096),
                           streaming(peak_buffered_bytes=512 * 1024),
                           name="BENCH_throughput.json")
    assert run_main(base, cur) == 0


def test_streaming_buffer_balloon_fails():
    # 1 MiB -> 64 MiB clears both the ratio ceiling and the floor: the
    # stream stopped honouring its bounded-memory contract.
    base, cur = write_dirs(streaming(peak_buffered_bytes=1 << 20),
                           streaming(peak_buffered_bytes=64 << 20),
                           name="BENCH_throughput.json")
    assert run_main(base, cur) == 1


def test_streaming_buffer_floor_is_configurable():
    base, cur = write_dirs(streaming(peak_buffered_bytes=4096),
                           streaming(peak_buffered_bytes=512 * 1024),
                           name="BENCH_throughput.json")
    assert run_main(base, cur, "--buffer-floor-bytes", "65536") == 1


def test_points_without_buffer_field_skip_the_buffer_gate():
    # Older baselines / non-streaming series carry no field; a current
    # point growing one (or a huge value) must not trip anything.
    base, cur = write_dirs(streaming(peak_buffered_bytes=None),
                           streaming(peak_buffered_bytes=256 << 20),
                           name="BENCH_throughput.json")
    assert run_main(base, cur) == 0


# ---------------------------------------------------------------------------
# Wire-bytes ceiling gate (the http-wire-rows / http-wire-groups series).
# ---------------------------------------------------------------------------

def wire(bytes_on_wire=None, engine="http-wire-groups", size=6):
    data = harness(avg_ms=1.0, engine=engine, size=size)
    if bytes_on_wire is not None:
        data["engines"][0]["series"][0]["bytes_on_wire"] = bytes_on_wire
    return data


def test_wire_bytes_stable_passes():
    base, cur = write_dirs(wire(bytes_on_wire=3000),
                           wire(bytes_on_wire=3500),
                           name="BENCH_throughput.json")
    assert run_main(base, cur) == 0


def test_wire_bytes_under_floor_never_gated():
    # 3 KB -> 48 KB blows the 4x ratio but sits under the 64 KiB absolute
    # floor: short-list payload jitter, not a lost-compression balloon.
    base, cur = write_dirs(wire(bytes_on_wire=3000),
                           wire(bytes_on_wire=48 * 1024),
                           name="BENCH_throughput.json")
    assert run_main(base, cur) == 0


def test_wire_bytes_balloon_fails():
    # The groups series shipping rows-sized payloads again (3 KB ->
    # 512 KB, the expanded cross-product) clears both ratio and floor.
    base, cur = write_dirs(wire(bytes_on_wire=3000),
                           wire(bytes_on_wire=512 * 1024),
                           name="BENCH_throughput.json")
    assert run_main(base, cur) == 1


def test_wire_bytes_floor_is_configurable():
    base, cur = write_dirs(wire(bytes_on_wire=3000),
                           wire(bytes_on_wire=48 * 1024),
                           name="BENCH_throughput.json")
    assert run_main(base, cur, "--wire-floor-bytes", "8192") == 1


def test_points_without_wire_field_skip_the_wire_gate():
    base, cur = write_dirs(wire(bytes_on_wire=None),
                           wire(bytes_on_wire=1 << 30),
                           name="BENCH_throughput.json")
    assert run_main(base, cur) == 0


if __name__ == "__main__":
    failures = 0
    for name, fn in sorted(globals().items()):
        if name.startswith("test_") and callable(fn):
            try:
                fn()
                print(f"PASS {name}")
            except AssertionError as e:
                failures += 1
                print(f"FAIL {name}: {e}")
    sys.exit(1 if failures else 0)
