#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_*.json trajectory.

Compares a directory of freshly produced bench results (the CI bench-smoke
output) against a committed baseline directory (bench/results/ci-smoke/)
and fails on *step-function* regressions. CI runners are noisy, so the
tolerance is deliberately generous: a point only fails when it is slower
than `baseline * ratio + slack_ms`, when an engine that used to answer
queries stops answering entirely, or when a point's answered ratio
collapses (below baseline_ratio/ratio for a point that used to answer at
least half its requests — the gate for the fault-injected
service-degraded throughput series, whose whole claim is "keeps
answering under faults").

Only files following the harness schema of docs/BENCHMARKS.md (a top-level
"engines" list of {"name", "series": [{"size", "avg_ms", ...}]}) are
compared; other JSON (e.g. google-benchmark's BENCH_micro_index.json) is
skipped. Files whose "config" tuple differs between baseline and current
are skipped too — cross-config timings are not comparable.

Usage:
  tools/bench_diff.py BASELINE_DIR CURRENT_DIR [--ratio R] [--slack-ms S]

Exit status: 0 = no regressions, 1 = at least one regression, 2 = usage or
missing-file error (a tracked baseline file absent from CURRENT_DIR fails
the gate: a bench silently dropping out of CI is itself a regression).
"""

import argparse
import json
import sys
from pathlib import Path


def load_harness_json(path):
    """Returns the parsed file, or None when it is not harness-schema."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"  ERROR reading {path}: {e}")
        return None
    if not isinstance(data, dict) or "engines" not in data:
        return None
    return data


def index_points(data):
    """(engine_name, size) -> point dict."""
    points = {}
    for engine in data.get("engines", []):
        for point in engine.get("series", []):
            points[(engine.get("name"), point.get("size"))] = point
    return points


def compare_file(name, base, cur, ratio, slack_ms, qps_floor=10.0,
                 buffer_floor_bytes=1 << 20, wire_floor_bytes=1 << 16):
    """Returns a list of regression strings for one bench file."""
    if base.get("config") != cur.get("config"):
        print(f"  SKIP {name}: config changed "
              f"{base.get('config')} -> {cur.get('config')}")
        return []

    regressions = []
    base_points = index_points(base)
    cur_points = index_points(cur)
    for key, bp in sorted(base_points.items(), key=lambda kv: str(kv[0])):
        engine, size = key
        cp = cur_points.get(key)
        if cp is None:
            regressions.append(
                f"{name}: series ({engine}, size {size}) disappeared")
            continue
        b_answered = bp.get("answered", 0)
        c_answered = cp.get("answered", 0)
        if b_answered > 0 and c_answered == 0:
            regressions.append(
                f"{name}: {engine} @ size {size} stopped answering "
                f"(was {b_answered}/{bp.get('total')})")
            continue
        # Answered-ratio collapse: a series that used to answer at least
        # half its requests must not drop below baseline_ratio/ratio. This
        # is the gate for the fault-injected service-degraded series —
        # degraded qps is expected there, giving up on requests is not.
        b_ratio = b_answered / max(1, bp.get("total", 0))
        c_ratio = c_answered / max(1, cp.get("total", 0))
        if b_ratio >= 0.5 and c_ratio < b_ratio / ratio:
            regressions.append(
                f"{name}: {engine} @ size {size} answered ratio collapsed "
                f"{b_ratio:.2f} -> {c_ratio:.2f} "
                f"(limit {b_ratio / ratio:.2f})")
        b_ms = bp.get("avg_ms", 0.0)
        c_ms = cp.get("avg_ms", 0.0)
        if b_answered > 0 and b_ms > 0 and c_ms > b_ms * ratio + slack_ms:
            regressions.append(
                f"{name}: {engine} @ size {size} regressed "
                f"{b_ms:.3f}ms -> {c_ms:.3f}ms "
                f"(limit {b_ms * ratio + slack_ms:.3f}ms)")
        else:
            delta = (c_ms / b_ms - 1.0) * 100.0 if b_ms > 0 else 0.0
            print(f"  ok   {name}: {engine} @ {size}: "
                  f"{b_ms:.3f}ms -> {c_ms:.3f}ms ({delta:+.0f}%)")
        # Throughput points additionally gate on sustained qps: fail when a
        # series that used to clear the noise floor drops below
        # baseline/ratio. The floor keeps near-idle points (tiny smoke
        # windows) from tripping on scheduling noise.
        b_qps = bp.get("qps", 0.0)
        c_qps = cp.get("qps", 0.0)
        if b_qps >= qps_floor and c_qps < b_qps / ratio:
            regressions.append(
                f"{name}: {engine} @ size {size} qps collapsed "
                f"{b_qps:.1f} -> {c_qps:.1f} "
                f"(limit {b_qps / ratio:.1f})")
        elif b_qps > 0:
            print(f"  ok   {name}: {engine} @ {size}: "
                  f"{b_qps:.1f} -> {c_qps:.1f} qps")
        # Streaming points carry peak_buffered_bytes — the in-flight-page
        # memory high-water mark QueryStream guarantees stays O(buffer).
        # Gate it with a ceiling: fail when the current peak exceeds
        # max(baseline * ratio, buffer_floor_bytes). The absolute floor
        # keeps tiny baselines (a few small pages) from turning row-size
        # jitter into failures; a real regression here is the stream
        # ballooning toward O(result) memory. Points without the field
        # (older baselines, non-streaming series) are never gated.
        b_buf = bp.get("peak_buffered_bytes", 0)
        c_buf = cp.get("peak_buffered_bytes", 0)
        if b_buf > 0:
            limit = max(b_buf * ratio, float(buffer_floor_bytes))
            if c_buf > limit:
                regressions.append(
                    f"{name}: {engine} @ size {size} buffered bytes "
                    f"ballooned {b_buf} -> {c_buf} (limit {limit:.0f})")
            else:
                print(f"  ok   {name}: {engine} @ {size}: "
                      f"{b_buf} -> {c_buf} peak buffered bytes")
        # Wire points carry bytes_on_wire — the payload the HTTP transport
        # actually shipped. Ceiling gate like the buffer gate: the
        # http-wire-groups series ballooning back toward rows-sized
        # payloads means the factorized transport lost its compression,
        # a regression even at equal timings. The absolute floor keeps
        # small payloads (headers, short lists) from gating on jitter.
        b_wire = bp.get("bytes_on_wire", 0)
        c_wire = cp.get("bytes_on_wire", 0)
        if b_wire > 0:
            limit = max(b_wire * ratio, float(wire_floor_bytes))
            if c_wire > limit:
                regressions.append(
                    f"{name}: {engine} @ size {size} wire bytes ballooned "
                    f"{b_wire} -> {c_wire} (limit {limit:.0f})")
            else:
                print(f"  ok   {name}: {engine} @ {size}: "
                      f"{b_wire} -> {c_wire} bytes on wire")
    return regressions


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline_dir", type=Path)
    parser.add_argument("current_dir", type=Path)
    parser.add_argument("--ratio", type=float, default=4.0,
                        help="fail when current > baseline*ratio + slack "
                             "(default %(default)s)")
    parser.add_argument("--slack-ms", type=float, default=25.0,
                        help="absolute grace so sub-millisecond noise never "
                             "trips the ratio (default %(default)s)")
    parser.add_argument("--qps-floor", type=float, default=10.0,
                        help="qps points below this baseline rate are never "
                             "gated (default %(default)s)")
    parser.add_argument("--buffer-floor-bytes", type=int, default=1 << 20,
                        help="peak_buffered_bytes ceilings are never lower "
                             "than this (default %(default)s)")
    parser.add_argument("--wire-floor-bytes", type=int, default=1 << 16,
                        help="bytes_on_wire ceilings are never lower than "
                             "this (default %(default)s)")
    args = parser.parse_args(argv)

    if not args.baseline_dir.is_dir():
        print(f"baseline dir {args.baseline_dir} does not exist")
        return 2
    if not args.current_dir.is_dir():
        print(f"current dir {args.current_dir} does not exist")
        return 2

    baseline_files = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"no BENCH_*.json baselines under {args.baseline_dir}")
        return 2

    regressions = []
    compared = 0
    for base_path in baseline_files:
        base = load_harness_json(base_path)
        if base is None:
            print(f"  SKIP {base_path.name}: not harness schema")
            continue
        cur_path = args.current_dir / base_path.name
        if not cur_path.exists():
            regressions.append(
                f"{base_path.name}: missing from {args.current_dir} "
                "(bench dropped out of the smoke run?)")
            continue
        cur = load_harness_json(cur_path)
        if cur is None:
            regressions.append(f"{base_path.name}: current file unreadable "
                               "or not harness schema")
            continue
        compared += 1
        regressions.extend(
            compare_file(base_path.name, base, cur, args.ratio,
                         args.slack_ms, args.qps_floor,
                         args.buffer_floor_bytes, args.wire_floor_bytes))

    print(f"\ncompared {compared} bench file(s) against "
          f"{args.baseline_dir} (ratio {args.ratio}, slack "
          f"{args.slack_ms}ms)")
    if regressions:
        print(f"\n{len(regressions)} PERF REGRESSION(S):")
        for r in regressions:
            print(f"  FAIL {r}")
        return 1
    print("no step-function regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
