// Query decomposition and vertex ordering (Sections 3 and 5.3).
//
// The query vertices U are split into core vertices Uc (degree > 1 among
// variables) and satellite vertices Us (degree 1); for a component whose
// maximum degree is <= 1, one vertex is promoted to core. The recursion
// runs over Uc only; satellites are resolved set-at-a-time from their core
// vertex (Algorithm 2).
//
// Core ordering uses two ranking functions:
//   r1(u) = number of satellites attached to u        (primary when the
//           component has satellites),
//   r2(u) = total edge-type count over u's signature  (primary otherwise,
//           tie-break when r1 applies),
// with the connectivity constraint that each subsequent core vertex must be
// adjacent to an already ordered one. When a ValueIndex is supplied,
// vertices whose FILTER constraints pass the RangeScanWorthPushing cutover
// are ranked first by their estimated range width (narrower range = more
// selective seed = earlier), ahead of r1/r2; wide residual-evaluated
// constraints and filter-free queries are ordered exactly as before.
//
// Disconnected queries (legal SPARQL, a cross product) are planned per
// connected component; the matcher chains components and combines their
// solutions.
//
// The first core vertex of the first component doubles as the *parallel
// seed*: the parallel online stage (core/parallel_exec.h) partitions its
// CandInit candidate list across workers, so the ordering heuristics above
// also pick the fan-out axis — a selective seed means fewer, heavier root
// candidates per chunk; a wide seed means many cheap chunks for the queue
// to balance.

#ifndef AMBER_CORE_QUERY_PLAN_H_
#define AMBER_CORE_QUERY_PLAN_H_

#include <cstdint>
#include <vector>

#include "sparql/query_graph.h"
#include "util/status.h"

namespace amber {

class ValueIndex;

/// Plan for one connected component of the query multigraph.
struct ComponentPlan {
  /// Core vertices in matching order (Uord_c). Never empty.
  std::vector<uint32_t> core_order;
  /// satellites[i] = satellite vertices attached to core_order[i].
  std::vector<std::vector<uint32_t>> satellites;
};

/// Plan for the whole query.
struct QueryPlan {
  std::vector<ComponentPlan> components;
  /// Per query vertex: true if core.
  std::vector<bool> is_core;

  size_t NumCoreVertices() const {
    size_t n = 0;
    for (const ComponentPlan& c : components) n += c.core_order.size();
    return n;
  }
  size_t NumSatelliteVertices() const {
    size_t n = 0;
    for (const ComponentPlan& c : components) {
      for (const auto& s : c.satellites) n += s.size();
    }
    return n;
  }
};

/// Options steering plan construction (ablation hooks).
struct PlanOptions {
  /// When false, core vertices are ordered by index (still connectivity-
  /// constrained) instead of by the r1/r2 heuristics — Ablation A.
  bool use_ordering_heuristics = true;
};

/// Decomposes and orders the query (QueryDecompose + VertexOrdering).
/// `values` (optional) supplies range-width selectivity estimates for
/// FILTER predicate constraints; without it the ordering is the paper's
/// r1/r2 heuristic alone. `num_vertices` (the data graph's vertex count)
/// feeds the RangeScanWorthPushing cutover so only ranges the matcher will
/// actually push influence the ordering.
QueryPlan PlanQuery(const QueryGraph& q, const PlanOptions& options = {},
                    const ValueIndex* values = nullptr,
                    uint64_t num_vertices = 0);

}  // namespace amber

#endif  // AMBER_CORE_QUERY_PLAN_H_
