#include "core/query_plan.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "index/value_index.h"

namespace amber {

namespace {

// Connected components over the variable graph; returns component id per
// vertex and the number of components.
size_t FindComponents(const QueryGraph& q, std::vector<uint32_t>* comp) {
  const size_t n = q.NumVertices();
  comp->assign(n, kInvalidId);
  size_t num_components = 0;
  std::vector<uint32_t> stack;
  for (uint32_t start = 0; start < n; ++start) {
    if ((*comp)[start] != kInvalidId) continue;
    uint32_t id = static_cast<uint32_t>(num_components++);
    stack.push_back(start);
    (*comp)[start] = id;
    while (!stack.empty()) {
      uint32_t u = stack.back();
      stack.pop_back();
      for (uint32_t w : q.Neighbors(u)) {
        if ((*comp)[w] == kInvalidId) {
          (*comp)[w] = id;
          stack.push_back(w);
        }
      }
    }
  }
  return num_components;
}

}  // namespace

QueryPlan PlanQuery(const QueryGraph& q, const PlanOptions& options,
                    const ValueIndex* values, uint64_t num_vertices) {
  QueryPlan plan;
  const size_t n = q.NumVertices();
  plan.is_core.assign(n, false);
  if (n == 0) return plan;

  // Range-width selectivity of FILTER predicate constraints: the estimated
  // number of ValueIndex entries the vertex's narrowest *pushable*
  // constraint scans. Constraints the matcher will evaluate residually
  // (too wide for the RangeScanWorthPushing cutover) don't reorder
  // anything, and filter-free queries keep the paper's r1/r2 ordering
  // untouched (UINT64_MAX everywhere).
  std::vector<uint64_t> range_width(n, std::numeric_limits<uint64_t>::max());
  if (values != nullptr) {
    for (uint32_t u = 0; u < n; ++u) {
      for (const PredicateConstraint& pc : q.vertices()[u].preds) {
        const uint64_t width =
            values->EstimateRange(pc.predicate, pc.comparisons);
        if (RangeScanWorthPushing(width, num_vertices)) {
          range_width[u] = std::min(range_width[u], width);
        }
      }
    }
  }

  std::vector<uint32_t> comp;
  const size_t num_components = FindComponents(q, &comp);
  std::vector<std::vector<uint32_t>> members(num_components);
  for (uint32_t u = 0; u < n; ++u) members[comp[u]].push_back(u);

  for (size_t ci = 0; ci < num_components; ++ci) {
    const std::vector<uint32_t>& verts = members[ci];
    ComponentPlan cplan;

    // --- QueryDecompose: classify core vs satellite.
    size_t max_degree = 0;
    for (uint32_t u : verts) max_degree = std::max(max_degree, q.Degree(u));

    std::vector<uint32_t> core;
    if (max_degree > 1) {
      for (uint32_t u : verts) {
        if (q.Degree(u) > 1) core.push_back(u);
      }
    } else {
      // Single vertex or single multi-edge pair: promote one vertex to core
      // (the paper picks at random; we pick the structurally richer one for
      // determinism, falling back to the smaller index).
      uint32_t chosen = verts[0];
      for (uint32_t u : verts) {
        size_t ru = q.SignatureEdgeCount(u), rc = q.SignatureEdgeCount(chosen);
        if (ru > rc || (ru == rc && u < chosen)) chosen = u;
      }
      core.push_back(chosen);
    }
    for (uint32_t u : core) plan.is_core[u] = true;

    // Satellites attach to their unique core neighbour.
    std::vector<std::vector<uint32_t>> sat_of(n);
    for (uint32_t u : verts) {
      if (plan.is_core[u]) continue;
      assert(q.Degree(u) <= 1);
      // Its single neighbour is core (removing leaves keeps the rest
      // connected, and in pair components the partner was promoted).
      if (!q.Neighbors(u).empty()) {
        uint32_t host = q.Neighbors(u)[0];
        assert(plan.is_core[host]);
        sat_of[host].push_back(u);
      }
    }

    // --- VertexOrdering: r1 then r2 (or r2 alone without satellites),
    // connectivity-constrained greedy.
    auto r1 = [&](uint32_t u) { return sat_of[u].size(); };
    auto r2 = [&](uint32_t u) { return q.SignatureEdgeCount(u); };
    bool component_has_satellites = false;
    for (uint32_t u : core) {
      if (!sat_of[u].empty()) component_has_satellites = true;
    }

    // `better(a, b)`: should a be picked before b?
    auto better = [&](uint32_t a, uint32_t b) {
      if (!options.use_ordering_heuristics) return a < b;
      // Index-served FILTER constraints first, narrowest range first: a
      // selective range scan is the cheapest seed the matcher can get.
      if (range_width[a] != range_width[b]) {
        return range_width[a] < range_width[b];
      }
      if (component_has_satellites) {
        if (r1(a) != r1(b)) return r1(a) > r1(b);
        if (r2(a) != r2(b)) return r2(a) > r2(b);
      } else {
        if (r2(a) != r2(b)) return r2(a) > r2(b);
        if (r1(a) != r1(b)) return r1(a) > r1(b);
      }
      return a < b;
    };

    std::vector<bool> chosen(n, false);
    std::vector<bool> frontier(n, false);
    for (size_t step = 0; step < core.size(); ++step) {
      uint32_t best = kInvalidId;
      for (uint32_t u : core) {
        if (chosen[u]) continue;
        // After the first pick, require adjacency to the ordered prefix.
        if (step > 0 && !frontier[u]) continue;
        if (best == kInvalidId || better(u, best)) best = u;
      }
      if (best == kInvalidId) {
        // Should not happen (core subgraph of a component is connected),
        // but degrade gracefully instead of looping forever.
        for (uint32_t u : core) {
          if (!chosen[u]) {
            best = u;
            break;
          }
        }
      }
      chosen[best] = true;
      cplan.core_order.push_back(best);
      cplan.satellites.push_back(sat_of[best]);
      for (uint32_t w : q.Neighbors(best)) {
        if (plan.is_core[w]) frontier[w] = true;
      }
    }

    plan.components.push_back(std::move(cplan));
  }
  return plan;
}

}  // namespace amber
