// The parallel online matching stage (the paper's explicit "parallel
// processing version" future-work item; docs/ARCHITECTURE.md, "The parallel
// online stage").
//
// Unit of parallelism: one CandInit candidate of the first component's
// initial vertex. The root candidate list is split into fixed chunks that
// workers claim from a shared queue (util/thread_pool.h); each worker owns
// a MatcherScratch arena reused across all the chunks it processes, so the
// per-worker steady state stays allocation-free.
//
// Pool ownership: when ExecOptions::pool is set, helper workers are
// borrowed from that externally owned pool (per-query completion tracked
// with a latch, so concurrent queries can multiplex one pool — the serving
// runtime of server/query_service.h owns one persistent pool per service).
// Otherwise a transient pool is spawned for this query and torn down at the
// end, exactly as before.
//
// Determinism contract: for every combination of SELECT / DISTINCT / LIMIT
// and counting vs materializing execution, the parallel mode returns rows
// (and counts) BIT-IDENTICAL to serial execution. Serial enumeration visits
// root candidates in CandInit order, so concatenating per-chunk results in
// chunk order reproduces the serial row order exactly; DISTINCT replays the
// chunks through one ordered global dedup; LIMIT takes the ordered prefix.
// A shared row budget provides early cutoff without breaking the contract:
// a chunk may only be skipped or stopped when chunks strictly *before* it
// have already produced the full row cap (their rows shadow everything this
// chunk could contribute). The only nondeterministic case is a timeout —
// exactly as in serial execution, a timed-out query reports partial
// results and stats.timed_out.

#ifndef AMBER_CORE_PARALLEL_EXEC_H_
#define AMBER_CORE_PARALLEL_EXEC_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/exec.h"
#include "core/factorized.h"
#include "graph/multigraph.h"
#include "index/index_set.h"
#include "sparql/query_graph.h"
#include "util/status.h"

namespace amber {

/// Outcome of a parallel matching run.
struct ParallelRunResult {
  /// Result rows (bag semantics; distinct rows under DISTINCT), capped.
  uint64_t rows = 0;
  /// True when the row cap stopped enumeration early (matches the serial
  /// sinks: set exactly when the cap was reached).
  bool truncated = false;
};

/// \brief Streaming consumer for RunMatcherParallel (the engine Stream
/// path).
///
/// Rows arrive in the EXACT serial order (the deterministic chunk-order
/// contract): each chunk's finished prefix is streamed as soon as every
/// earlier chunk has fully drained, while later chunks buffer at most
/// ExecOptions::stream_chunk_buffer_rows rows before their producer blocks
/// (bounded-memory backpressure). `emit` is invoked from worker threads but
/// never concurrently (the internal single-emitter protocol serializes it
/// and hands off with a happens-before edge); return false to stop the
/// stream — remaining workers unwind like a row-cap stop.
struct ParallelStreamSink {
  std::function<bool(std::span<const VertexId>)> emit;
};

/// \brief Factorized output mode of RunMatcherParallel.
///
/// Each chunk collects raw groups through its own FactorizedBuilder (the
/// shared row budget charged in group-cardinality units); the merge then
/// re-feeds every chunk's groups, in chunk order, through ONE global
/// builder — the exact code path the serial FactorizedSink drives — so the
/// merged result (collision flags, totals, cap cut) and its expansion are
/// identical to a serial factorized run by construction.
struct ParallelFactorizeRequest {
  /// Projection slots per row and the per-slot list mapping (BuildSlotList).
  uint32_t num_slots = 0;
  std::vector<uint32_t> slot_list;
  /// Receives the merged result.
  FactorizedResult* out = nullptr;
  /// Out: rows the merge-time DISTINCT collision fallback expanded
  /// (chunk-local expansions are already in the merged worker stats).
  uint64_t rows_expanded = 0;
};

/// Runs the matcher across `options.num_threads` workers and merges
/// deterministically. `cap` is the effective row cap (0 = unlimited).
/// When `materialize_into` is non-null it receives the result rows in
/// serial order; when `stream` is non-null rows are instead pushed into it
/// incrementally; when `factorize` is non-null the result is retained as a
/// factorized answer graph (at most one of the three may be set). Requires
/// a satisfiable query with at least one component (the engine keeps
/// ground-only queries on the serial path) and `options.num_threads > 1`.
///
/// Cancellation: ExecOptions::cancel is observed at chunk claiming (chunks
/// not yet claimed are never started) and inside every chunk Run; a
/// cancelled query returns partial results with stats->cancelled set, like
/// a timeout.
///
/// Stats: per-counter sums over workers, max for peak_arena_bytes, plus
/// threads_used / tasks_dispatched; initial_candidates is attributed once
/// (to the root CandInit computation), as in serial execution.
Result<ParallelRunResult> RunMatcherParallel(
    const Multigraph& g, const IndexSet& indexes, const QueryGraph& q,
    const QueryPlan& plan, const ExecOptions& options, uint64_t cap,
    ExecStats* stats,
    std::vector<std::vector<VertexId>>* materialize_into,
    ParallelStreamSink* stream = nullptr,
    ParallelFactorizeRequest* factorize = nullptr);

}  // namespace amber

#endif  // AMBER_CORE_PARALLEL_EXEC_H_
