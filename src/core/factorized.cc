#include "core/factorized.h"

#include <utility>

namespace amber {

namespace {

/// Invokes `fn(row)` for every expansion row of `g` with multiplicity
/// collapsed to 1 (used only by the DISTINCT fallback, where multiplicity
/// is always 1). Odometer order: list 0 fastest — the same order the
/// cursor and the flat Emit() produce.
template <typename Fn>
void ForEachGroupRow(uint32_t num_slots,
                     const std::vector<uint32_t>& slot_list,
                     const FactorizedResult::Group& g, Fn&& fn) {
  for (const std::vector<VertexId>& l : g.lists) {
    if (l.empty()) return;
  }
  std::vector<VertexId> row(g.fixed.begin(), g.fixed.end());
  row.resize(num_slots);
  std::vector<size_t> pick(g.lists.size(), 0);
  while (true) {
    for (uint32_t i = 0; i < num_slots; ++i) {
      const uint32_t sl = slot_list[i];
      if (sl != kNoGroupList) row[i] = g.lists[sl][pick[sl]];
    }
    fn(std::span<const VertexId>(row));
    size_t d = 0;
    while (d < pick.size()) {
      if (++pick[d] < g.lists[d].size()) break;
      pick[d] = 0;
      ++d;
    }
    if (d == pick.size()) return;  // odometer wrapped: all rows visited
  }
}

}  // namespace

uint64_t FactorizedResult::Group::ByteSize() const {
  uint64_t bytes = sizeof(Group);
  bytes += fixed.size() * sizeof(VertexId);
  bytes += lists.size() * sizeof(std::vector<VertexId>);
  for (const std::vector<VertexId>& l : lists) {
    bytes += l.size() * sizeof(VertexId);
  }
  return bytes;
}

uint64_t FactorizedResult::ByteSize() const {
  uint64_t bytes = sizeof(FactorizedResult);
  bytes += slot_list.size() * sizeof(uint32_t);
  for (const Group& g : groups) bytes += g.ByteSize();
  return bytes;
}

// ---------------------------------------------------------------------------
// Cursor
// ---------------------------------------------------------------------------

FactorizedResult::Cursor::Cursor(const FactorizedResult* r)
    : r_(r), row_(r->num_slots) {}

void FactorizedResult::Cursor::LoadGroup() {
  const Group& g = r_->groups[gi_];
  row_.assign(g.fixed.begin(), g.fixed.end());
  row_.resize(r_->num_slots);
  pick_.assign(g.lists.size(), 0);
  rep_ = 0;
  done_in_group_ = 0;
  card_ = g.Cardinality();
  group_loaded_ = true;
}

void FactorizedResult::Cursor::BuildRow() {
  const Group& g = r_->groups[gi_];
  for (uint32_t i = 0; i < r_->num_slots; ++i) {
    const uint32_t sl = r_->slot_list[i];
    if (sl != kNoGroupList) row_[i] = g.lists[sl][pick_[sl]];
  }
}

bool FactorizedResult::Cursor::NextInGroup() {
  const Group& g = r_->groups[gi_];
  if (done_in_group_ >= card_) return false;
  BuildRow();
  ++rows_expanded_;
  ++done_in_group_;
  // Advance: repetitions first (flat Emit() repeats each row `multiplicity`
  // times consecutively), then the odometer with digit 0 fastest.
  if (++rep_ >= g.multiplicity) {
    rep_ = 0;
    size_t d = 0;
    while (d < pick_.size()) {
      if (++pick_[d] < g.lists[d].size()) break;
      pick_[d] = 0;
      ++d;
    }
  }
  return true;
}

bool FactorizedResult::Cursor::Next() {
  while (gi_ < r_->groups.size()) {
    if (!group_loaded_) LoadGroup();
    const bool dedup = GroupNeedsDedup(r_->groups[gi_]);
    if (NextInGroup()) {
      if (dedup && !seen_.insert(RowDedupKey(row_)).second) continue;
      return true;
    }
    ++gi_;
    group_loaded_ = false;
  }
  return false;
}

void FactorizedResult::Cursor::Skip(uint64_t n) {
  while (n > 0 && gi_ < r_->groups.size()) {
    const Group& g = r_->groups[gi_];
    if (GroupNeedsDedup(g)) {
      // Flagged groups expand row by row: their rows feed the dedup set
      // later flagged groups depend on, and duplicates don't count as
      // skipped rows.
      if (!Next()) return;
      --n;
      continue;
    }
    if (!group_loaded_) {
      const uint64_t card = g.Cardinality();
      if (card <= n) {  // skip the whole group without touching its lists
        n -= card;
        ++gi_;
        continue;
      }
      LoadGroup();
    }
    const uint64_t remaining = card_ - done_in_group_;
    if (remaining <= n) {
      n -= remaining;
      ++gi_;
      group_loaded_ = false;
      continue;
    }
    // Boundary group: position the odometer by division — O(lists), no row
    // materialization.
    const uint64_t target = done_in_group_ + n;
    rep_ = target % g.multiplicity;
    uint64_t state = target / g.multiplicity;
    for (size_t d = 0; d < pick_.size(); ++d) {
      pick_[d] = state % g.lists[d].size();
      state /= g.lists[d].size();
    }
    done_in_group_ = target;
    return;
  }
}

// ---------------------------------------------------------------------------
// FactorizedBuilder
// ---------------------------------------------------------------------------

FactorizedBuilder::FactorizedBuilder(uint32_t num_slots,
                                     std::vector<uint32_t> slot_list,
                                     bool distinct, uint64_t cap)
    : cap_(cap) {
  result_.num_slots = num_slots;
  result_.slot_list = std::move(slot_list);
  result_.distinct = distinct;
}

std::string FactorizedBuilder::CoreKey(
    const FactorizedResult::Group& g) const {
  std::string key;
  key.reserve(result_.num_slots * sizeof(VertexId));
  for (uint32_t i = 0; i < result_.num_slots; ++i) {
    if (result_.slot_list[i] != kNoGroupList) continue;
    const char* p = reinterpret_cast<const char*>(&g.fixed[i]);
    key.append(p, sizeof(VertexId));
  }
  return key;
}

uint64_t FactorizedBuilder::ExpandIntoSeen(const FactorizedResult::Group& g) {
  uint64_t fresh = 0;
  ForEachGroupRow(result_.num_slots, result_.slot_list, g,
                  [&](std::span<const VertexId> row) {
                    ++rows_expanded_;
                    if (seen_.insert(RowDedupKey(row)).second) ++fresh;
                  });
  return fresh;
}

bool FactorizedBuilder::Add(FactorizedResult::Group&& g) {
  g.needs_dedup = false;
  const uint64_t card = g.Cardinality();
  result_.represented_rows = SaturatingAdd(result_.represented_rows, card);
  if (!result_.distinct) {
    total_ = SaturatingAdd(total_, card);
    result_.groups.push_back(std::move(g));
  } else {
    auto [it, fresh_key] =
        key_to_group_.try_emplace(CoreKey(g), result_.groups.size());
    if (fresh_key) {
      // Sole holder of its core key: all `card` rows are distinct and
      // cannot recur (a later group with this key would collide below).
      total_ = SaturatingAdd(total_, card);
      result_.groups.push_back(std::move(g));
    } else {
      if (it->second != kInDedup) {
        // First collision on this key: retroactively flag the prior group
        // and seed the seen set with its rows (all fresh — no other key
        // can have produced equal rows), leaving its counted total intact.
        FactorizedResult::Group& prior = result_.groups[it->second];
        prior.needs_dedup = true;
        ExpandIntoSeen(prior);
        it->second = kInDedup;
      }
      g.needs_dedup = true;
      result_.needs_row_dedup = true;
      total_ = SaturatingAdd(total_, ExpandIntoSeen(g));
      result_.groups.push_back(std::move(g));
    }
  }
  return cap_ == 0 || total_ < cap_;
}

FactorizedResult FactorizedBuilder::Finish() {
  result_.total_rows = total_;
  result_.row_limit = cap_;
  result_.truncated = cap_ != 0 && total_ >= cap_;
  return std::move(result_);
}

// ---------------------------------------------------------------------------
// FactorizedSink
// ---------------------------------------------------------------------------

bool FactorizedSink::OnRow(std::span<const VertexId> row) {
  FactorizedResult::Group g;
  g.fixed.assign(row.begin(), row.end());
  return builder_->Add(std::move(g));
}

bool FactorizedSink::OnGroup(const EmbeddingGroupView& view) {
  FactorizedResult::Group g;
  g.fixed.assign(view.fixed.begin(), view.fixed.end());
  g.lists.reserve(view.lists.size());
  for (std::span<const VertexId> l : view.lists) {
    g.lists.emplace_back(l.begin(), l.end());
  }
  g.multiplicity = view.multiplicity;
  return builder_->Add(std::move(g));
}

// ---------------------------------------------------------------------------

std::vector<uint32_t> BuildSlotList(const std::vector<uint32_t>& projection,
                                    const std::vector<bool>& is_core) {
  std::vector<uint32_t> slot_list(projection.size(), kNoGroupList);
  std::vector<uint32_t> expand;  // satellites in first-appearance order
  for (size_t i = 0; i < projection.size(); ++i) {
    const uint32_t u = projection[i];
    if (u < is_core.size() && is_core[u]) continue;
    uint32_t idx = kNoGroupList;
    for (size_t j = 0; j < expand.size(); ++j) {
      if (expand[j] == u) {
        idx = static_cast<uint32_t>(j);
        break;
      }
    }
    if (idx == kNoGroupList) {
      idx = static_cast<uint32_t>(expand.size());
      expand.push_back(u);
    }
    slot_list[i] = idx;
  }
  return slot_list;
}

}  // namespace amber
