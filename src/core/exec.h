// Execution options, statistics and result sinks shared by all engines:
// the per-query timeout budget of Section 7.2, row caps (LIMIT), DISTINCT
// handling, and the counters (embeddings, candidates, recursion) that the
// benches and EXPLAIN report.

#ifndef AMBER_CORE_EXEC_H_
#define AMBER_CORE_EXEC_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/query_plan.h"
#include "rdf/encoded_dataset.h"
#include "util/cancellation.h"

namespace amber {

class ThreadPool;  // util/thread_pool.h

/// Result representation an execution produces (docs/ARCHITECTURE.md,
/// "Factorized answer graphs").
enum class ResultForm : uint8_t {
  /// Expanded rows — the classic cross-product enumeration.
  kFlat,
  /// Factorized answer graph: (core embedding × per-projected-satellite
  /// candidate lists) groups, expanded lazily. Expansion order is
  /// bit-identical to kFlat.
  kFactorized,
  /// kFactorized when the plan has satellite vertices (groups can represent
  /// more than one row), kFlat otherwise.
  kAuto,
};

/// Per-query execution options.
struct ExecOptions {
  /// Per-query wall-clock budget; zero means unlimited. The paper uses 60 s
  /// (Section 7.2); exceeding it marks the query unanswered, not an error.
  std::chrono::milliseconds timeout{0};

  /// Stop after this many result rows (0 = unlimited). Combined with the
  /// query's own LIMIT clause (the smaller wins).
  uint64_t max_rows = 0;

  /// Cooperative cancellation (util/cancellation.h). A cancelled query
  /// unwinds within one matcher tick window (~64 recursion steps) exactly
  /// like a deadline expiry, reporting ExecStats::cancelled; parallel
  /// chunks not yet claimed are never started. The default token can never
  /// fire and costs one pointer compare per tick.
  CancellationToken cancel;

  /// Streaming mode only: rows a non-head parallel chunk may buffer before
  /// its producer blocks for the ordered stream to catch up (bounded-memory
  /// backpressure; docs/ARCHITECTURE.md, "Streaming & cancellation").
  /// Ignored on the materializing and serial paths. Min 1.
  uint64_t stream_chunk_buffer_rows = 4096;

  /// Number of worker threads for root-candidate partitioning (>1 enables
  /// the parallel mode; the paper lists this as future work). The parallel
  /// mode covers SELECT, DISTINCT, LIMIT and materialization, and returns
  /// rows bit-identical to serial execution (deterministic chunk-order
  /// merge; see docs/ARCHITECTURE.md, "The parallel online stage").
  int num_threads = 1;

  /// When non-null, the parallel mode borrows its helper workers from this
  /// externally owned pool instead of spawning a transient one per query
  /// (thread spawn is ~0.1 ms — visible on microsecond queries). The pool
  /// is shared: helpers are plain Submit() tasks and completion is tracked
  /// per query, so many concurrent queries can borrow the same pool (the
  /// server/query_service.h runtime owns one per service). The caller must
  /// keep the pool alive for the duration of the call. Ignored when
  /// `num_threads <= 1`; null preserves the spawn-per-query behaviour.
  ThreadPool* pool = nullptr;

  /// Planner options (Ablation A: vertex-ordering heuristics).
  PlanOptions plan;

  /// When false, initial candidates are produced by a full synopsis scan
  /// instead of the R-tree (Ablation B: value of the S index).
  bool use_signature_index = true;

  /// When false, FILTER predicate constraints are never pushed into the
  /// ValueIndex range scans: every constraint is evaluated residually, per
  /// candidate, and the planner ignores range-width selectivity (the
  /// post-filter-only mode of bench/fig12_filter.cc).
  bool use_value_index = true;

  /// Result representation. kFlat (the default) is the classic expanded
  /// enumeration. kFactorized / kAuto route Materialize through the
  /// factorized collector and expand lazily afterwards (rows bit-identical
  /// to kFlat), and select the representation `Factorize` retains.
  ResultForm result_form = ResultForm::kFlat;
};

/// Saturating uint64 multiply (embedding counts can overflow).
inline uint64_t SaturatingMul(uint64_t a, uint64_t b) {
  __uint128_t p = static_cast<__uint128_t>(a) * b;
  if (p > std::numeric_limits<uint64_t>::max()) {
    return std::numeric_limits<uint64_t>::max();
  }
  return static_cast<uint64_t>(p);
}

/// Saturating uint64 add.
inline uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  uint64_t s = a + b;
  if (s < a) return std::numeric_limits<uint64_t>::max();
  return s;
}

/// Statistics reported by one query execution.
struct ExecStats {
  /// Result rows under bag semantics (or distinct rows when DISTINCT).
  uint64_t rows = 0;
  /// True when the deadline fired before enumeration finished.
  bool timed_out = false;
  /// True when max_rows / LIMIT stopped enumeration early.
  bool truncated = false;
  /// True when ExecOptions::cancel tripped before enumeration finished
  /// (rows/counters then cover a partial run, like a timeout).
  bool cancelled = false;
  /// Wall-clock time of the execution.
  double elapsed_ms = 0.0;
  /// Recursive HomomorphicMatch invocations.
  uint64_t recursion_calls = 0;
  /// Candidate set size for the initial query vertex (CandInit).
  uint64_t initial_candidates = 0;
  /// Solution records found (before Cartesian expansion of satellites).
  uint64_t embeddings_found = 0;

  // -- Hot-path observability (docs/ARCHITECTURE.md, "The matching hot
  // path"). These make the matcher's materialize-vs-probe cutover and the
  // intersection kernels' adaptive strategy visible per query.

  /// Neighbour/attribute lists fully materialized from the indexes.
  uint64_t lists_materialized = 0;
  /// Elements of long lists skipped by the galloping intersection kernels.
  uint64_t galloped_elements = 0;
  /// Elements visited one-by-one by the kernels' linear-merge strategy.
  uint64_t scanned_elements = 0;
  /// Candidates tested on the probe-without-materialize path.
  uint64_t probe_checks = 0;
  /// Of those, candidates that survived the probe.
  uint64_t probe_hits = 0;
  /// ValueIndex range scans pushed into candidate generation.
  uint64_t range_scans = 0;
  /// Column entries visited by those range scans.
  uint64_t range_scan_elements = 0;
  /// Residual per-candidate FILTER evaluations (satellite vertices, ground
  /// checks, and everything in post-filter mode).
  uint64_t predicate_checks = 0;
  /// High-water scratch-arena footprint of one Matcher (max over workers).
  uint64_t peak_arena_bytes = 0;

  // -- Parallel online stage (docs/ARCHITECTURE.md, "The parallel online
  // stage"). Zero on the serial path.

  /// Worker threads that participated in this execution (max over merges,
  /// so a query-level aggregate reports the widest fan-out).
  uint64_t threads_used = 0;
  /// Root-candidate chunks dispatched to the worker queue.
  uint64_t tasks_dispatched = 0;

  // -- Factorized answer graphs (docs/ARCHITECTURE.md, "Factorized answer
  // graphs"). groups_emitted / factorized_rows_represented track the
  // compact representation (also on the counting fast path, which is
  // group-at-a-time); rows_expanded counts rows actually materialized —
  // by the flat odometer, a lazy-expansion cursor, or the DISTINCT
  // collision fallback.

  /// Solution-record groups emitted without odometer expansion.
  uint64_t groups_emitted = 0;
  /// Rows those groups represent (product of list sizes × multiplicity).
  uint64_t factorized_rows_represented = 0;
  /// Rows actually expanded/materialized one by one.
  uint64_t rows_expanded = 0;
  /// Bytes retained by factorized results (FactorizedResult::ByteSize).
  uint64_t bytes_factorized = 0;

  void MergeFrom(const ExecStats& o) {
    rows += o.rows;
    timed_out = timed_out || o.timed_out;
    truncated = truncated || o.truncated;
    cancelled = cancelled || o.cancelled;
    recursion_calls += o.recursion_calls;
    initial_candidates += o.initial_candidates;
    embeddings_found += o.embeddings_found;
    lists_materialized += o.lists_materialized;
    galloped_elements += o.galloped_elements;
    scanned_elements += o.scanned_elements;
    probe_checks += o.probe_checks;
    probe_hits += o.probe_hits;
    range_scans += o.range_scans;
    range_scan_elements += o.range_scan_elements;
    predicate_checks += o.predicate_checks;
    peak_arena_bytes = std::max(peak_arena_bytes, o.peak_arena_bytes);
    threads_used = std::max(threads_used, o.threads_used);
    tasks_dispatched += o.tasks_dispatched;
    groups_emitted += o.groups_emitted;
    factorized_rows_represented =
        SaturatingAdd(factorized_rows_represented, o.factorized_rows_represented);
    rows_expanded += o.rows_expanded;
    bytes_factorized += o.bytes_factorized;
  }
};

/// Sentinel in EmbeddingGroupView::slot_list / FactorizedResult::slot_list
/// for projection slots bound by the core embedding (fixed per group).
inline constexpr uint32_t kNoGroupList = std::numeric_limits<uint32_t>::max();

/// \brief One factorized solution record, viewed zero-copy from the
/// matcher's scratch.
///
/// `fixed` has one entry per projection slot; entries whose `slot_list`
/// value is kNoGroupList hold the core-bound data vertex, the rest are
/// unspecified and draw from `lists[slot_list[i]]` instead. Each list is
/// the full candidate set of one distinct projected satellite (sorted,
/// duplicate-free — a NeighborhoodIndex invariant), in first-appearance
/// order over the projection. The view is valid only for the duration of
/// OnGroup; sinks that retain it must copy.
struct EmbeddingGroupView {
  std::span<const VertexId> fixed;
  std::span<const uint32_t> slot_list;
  std::span<const std::span<const VertexId>> lists;
  /// Row repetitions contributed by non-projected satellites (bag
  /// semantics; always 1 under DISTINCT).
  uint64_t multiplicity = 1;
};

/// \brief Consumer of matcher output.
///
/// Engines drive a sink with either expanded rows (OnRow) or, when the sink
/// does not need row contents, bulk counts (OnCount) that avoid the
/// Cartesian expansion of satellite sets entirely. Both return false to
/// stop enumeration early.
class EmbeddingSink {
 public:
  virtual ~EmbeddingSink() = default;

  /// True if the sink needs the actual rows; false enables the counting
  /// fast path.
  virtual bool wants_rows() const = 0;

  /// One result row; `row[i]` is the data vertex bound to projection slot i.
  virtual bool OnRow(std::span<const VertexId> row) = 0;

  /// `count` rows whose contents the sink does not need.
  virtual bool OnCount(uint64_t count) = 0;

  /// True if the sink consumes factorized groups: Emit() then calls
  /// OnGroup once per solution record instead of expanding the odometer.
  /// Only consulted when wants_rows() is true.
  virtual bool wants_groups() const { return false; }

  /// One factorized group (wants_groups() mode). Return false to stop
  /// enumeration early.
  virtual bool OnGroup(const EmbeddingGroupView&) { return true; }
};

/// Counts rows without materializing them (benchmark fast path).
class CountingSink : public EmbeddingSink {
 public:
  explicit CountingSink(uint64_t cap = 0)
      : cap_(cap == 0 ? std::numeric_limits<uint64_t>::max() : cap) {}

  bool wants_rows() const override { return false; }
  bool OnRow(std::span<const VertexId>) override { return OnCount(1); }
  bool OnCount(uint64_t count) override {
    count_ = SaturatingAdd(count_, count);
    return count_ < cap_;
  }

  uint64_t count() const { return std::min(count_, cap_); }

 private:
  uint64_t count_ = 0;
  uint64_t cap_;
};

/// Collects up to `cap` rows of data-vertex ids.
class CollectingSink : public EmbeddingSink {
 public:
  explicit CollectingSink(uint64_t cap = 0)
      : cap_(cap == 0 ? std::numeric_limits<uint64_t>::max() : cap) {}

  bool wants_rows() const override { return true; }
  bool OnRow(std::span<const VertexId> row) override {
    rows_.emplace_back(row.begin(), row.end());
    return rows_.size() < cap_;
  }
  bool OnCount(uint64_t) override { return true; }  // unused in row mode

  const std::vector<std::vector<VertexId>>& rows() const { return rows_; }
  std::vector<std::vector<VertexId>>&& TakeRows() { return std::move(rows_); }

 private:
  std::vector<std::vector<VertexId>> rows_;
  uint64_t cap_;
};

/// Byte key identifying a projected row for DISTINCT deduplication. The
/// parallel merge dedups across chunks with the same keys DistinctSink
/// builds per chunk — both MUST use this helper so the encodings can never
/// drift apart.
inline std::string RowDedupKey(std::span<const VertexId> row) {
  return std::string(reinterpret_cast<const char*>(row.data()),
                     row.size() * sizeof(VertexId));
}

/// Deduplicates projected rows (SELECT DISTINCT), optionally keeping them.
class DistinctSink : public EmbeddingSink {
 public:
  /// `keep_rows`: retain unique rows (Materialize) or only count them.
  DistinctSink(bool keep_rows, uint64_t cap)
      : keep_rows_(keep_rows),
        cap_(cap == 0 ? std::numeric_limits<uint64_t>::max() : cap) {}

  bool wants_rows() const override { return true; }
  bool OnRow(std::span<const VertexId> row) override {
    if (seen_.insert(RowDedupKey(row)).second) {
      if (keep_rows_) rows_.emplace_back(row.begin(), row.end());
      ++count_;
    }
    return count_ < cap_;
  }
  bool OnCount(uint64_t) override { return true; }

  uint64_t count() const { return count_; }
  const std::vector<std::vector<VertexId>>& rows() const { return rows_; }
  std::vector<std::vector<VertexId>>&& TakeRows() { return std::move(rows_); }
  /// The dedup key set (the parallel count-only merge unions these instead
  /// of retaining rows).
  std::unordered_set<std::string>&& TakeSeen() { return std::move(seen_); }

 private:
  bool keep_rows_;
  uint64_t cap_;
  uint64_t count_ = 0;
  std::unordered_set<std::string> seen_;
  std::vector<std::vector<VertexId>> rows_;
};

}  // namespace amber

#endif  // AMBER_CORE_EXEC_H_
