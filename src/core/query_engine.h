// Common interface implemented by AMbER and by the baseline engines, so the
// benchmark harness and the cross-engine consistency tests can drive them
// uniformly.
//
// All engines implement the *paper's* query model: variables bind to
// IRIs/blank nodes (multigraph vertices); literals occur only as constants
// (vertex attributes). Results are identical across engines by construction
// and verified by property tests.

#ifndef AMBER_CORE_QUERY_ENGINE_H_
#define AMBER_CORE_QUERY_ENGINE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/exec.h"
#include "core/factorized.h"
#include "sparql/ast.h"
#include "util/status.h"

namespace amber {

/// Result of a counting execution.
struct CountResult {
  uint64_t count = 0;
  ExecStats stats;
};

/// Result of a materializing execution: rows of N-Triples tokens.
struct MaterializedRows {
  std::vector<std::string> var_names;
  std::vector<std::vector<std::string>> rows;
  ExecStats stats;
};

/// \brief Consumer of a streaming execution (QueryEngine::Stream).
///
/// OnRow receives each result row of N-Triples tokens, in the SAME order a
/// Materialize call would produce (the deterministic chunk-order contract
/// holds for streams too); the span is only valid during the call. Return
/// false to stop the stream early — the engine unwinds cooperatively and
/// reports StreamResult::sink_stopped.
class RowSink {
 public:
  virtual ~RowSink() = default;
  virtual bool OnRow(std::span<const std::string> row) = 0;
};

/// Result of a factorizing execution: the unexpanded answer graph, in
/// data-vertex ids. Expand rows lazily via `result.Expand()` and translate
/// them with QueryEngine::TranslateRow.
struct FactorizedRows {
  std::vector<std::string> var_names;
  FactorizedResult result;
  ExecStats stats;
};

/// Result of a streaming execution. The rows themselves already left
/// through the RowSink; this carries the tail metadata.
struct StreamResult {
  std::vector<std::string> var_names;
  /// Rows delivered to the sink (distinct rows under DISTINCT).
  uint64_t rows = 0;
  /// True when the sink stopped the stream (OnRow returned false).
  bool sink_stopped = false;
  /// timed_out / truncated / cancelled describe the stream's end state;
  /// `stats.rows` equals `rows`.
  ExecStats stats;
};

/// \brief Abstract SPARQL (SELECT/WHERE fragment) query engine.
class QueryEngine {
 public:
  virtual ~QueryEngine() = default;

  /// Engine display name ("AMbER", "TripleStore", ...).
  virtual std::string name() const = 0;

  /// Counts result rows (bag semantics; distinct rows under DISTINCT)
  /// without materializing them. Timeouts are reported via
  /// `stats.timed_out`, not as an error.
  virtual Result<CountResult> Count(const SelectQuery& query,
                                    const ExecOptions& options) = 0;

  /// Materializes result rows as strings (subject to LIMIT / max_rows).
  virtual Result<MaterializedRows> Materialize(const SelectQuery& query,
                                               const ExecOptions& options) = 0;

  /// Streams result rows into `sink` instead of materializing them. Rows
  /// arrive in Materialize order; a false return from the sink stops the
  /// stream. The base implementation materializes and replays (correct
  /// for every engine, O(result) memory); AMbER overrides it with true
  /// incremental emission bounded by O(buffer) memory.
  virtual Result<StreamResult> Stream(const SelectQuery& query,
                                      const ExecOptions& options,
                                      RowSink* sink);

  /// Executes the query and retains the result in factorized form (see
  /// docs/ARCHITECTURE.md, "Factorized answer graphs") instead of
  /// expanding rows. `options.result_form` selects the representation:
  /// under kFlat (or kAuto on a satellite-free plan) each row becomes a
  /// singleton group, so the call succeeds for every form. The base
  /// implementation returns kUnimplemented — callers fall back to
  /// Materialize; AMbER overrides it.
  virtual Result<FactorizedRows> Factorize(const SelectQuery& query,
                                           const ExecOptions& options);

  /// Translates one expanded row of data-vertex ids into N-Triples tokens
  /// (the Materialize output format). Only meaningful on engines whose
  /// Factorize succeeds; the base implementation returns an empty row.
  virtual std::vector<std::string> TranslateRow(
      std::span<const VertexId> row) const;

  /// Parses `text` and counts.
  Result<CountResult> CountSparql(std::string_view text,
                                  const ExecOptions& options = {});

  /// Parses `text` and materializes.
  Result<MaterializedRows> MaterializeSparql(std::string_view text,
                                             const ExecOptions& options = {});

  /// Parses `text` and streams.
  Result<StreamResult> StreamSparql(std::string_view text,
                                    const ExecOptions& options, RowSink* sink);
};

/// The row cap implied by options.max_rows and the query's LIMIT (0 = none).
uint64_t EffectiveRowCap(const SelectQuery& query, const ExecOptions& options);

}  // namespace amber

#endif  // AMBER_CORE_QUERY_ENGINE_H_
