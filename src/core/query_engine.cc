#include "core/query_engine.h"

#include "sparql/parser.h"

namespace amber {

Result<CountResult> QueryEngine::CountSparql(std::string_view text,
                                             const ExecOptions& options) {
  AMBER_ASSIGN_OR_RETURN(SelectQuery query, SparqlParser::Parse(text));
  return Count(query, options);
}

Result<MaterializedRows> QueryEngine::MaterializeSparql(
    std::string_view text, const ExecOptions& options) {
  AMBER_ASSIGN_OR_RETURN(SelectQuery query, SparqlParser::Parse(text));
  return Materialize(query, options);
}

uint64_t EffectiveRowCap(const SelectQuery& query,
                         const ExecOptions& options) {
  uint64_t cap = options.max_rows;
  if (query.limit != 0 && (cap == 0 || query.limit < cap)) cap = query.limit;
  return cap;
}

}  // namespace amber
