#include "core/query_engine.h"

#include "sparql/parser.h"

namespace amber {

Result<CountResult> QueryEngine::CountSparql(std::string_view text,
                                             const ExecOptions& options) {
  AMBER_ASSIGN_OR_RETURN(SelectQuery query, SparqlParser::Parse(text));
  return Count(query, options);
}

Result<MaterializedRows> QueryEngine::MaterializeSparql(
    std::string_view text, const ExecOptions& options) {
  AMBER_ASSIGN_OR_RETURN(SelectQuery query, SparqlParser::Parse(text));
  return Materialize(query, options);
}

Result<StreamResult> QueryEngine::Stream(const SelectQuery& query,
                                         const ExecOptions& options,
                                         RowSink* sink) {
  // Fallback for engines without native streaming: materialize, then
  // replay through the sink. Order and contents match Materialize by
  // construction; only the memory bound is weaker (O(result)).
  AMBER_ASSIGN_OR_RETURN(MaterializedRows mat, Materialize(query, options));
  StreamResult out;
  out.var_names = std::move(mat.var_names);
  out.stats = mat.stats;
  for (const std::vector<std::string>& row : mat.rows) {
    if (!sink->OnRow(row)) {
      out.sink_stopped = true;
      break;
    }
    ++out.rows;
  }
  out.stats.rows = out.rows;
  return out;
}

Result<FactorizedRows> QueryEngine::Factorize(const SelectQuery&,
                                              const ExecOptions&) {
  return Status::Unimplemented(name() + " does not produce factorized results");
}

std::vector<std::string> QueryEngine::TranslateRow(
    std::span<const VertexId>) const {
  return {};
}

Result<StreamResult> QueryEngine::StreamSparql(std::string_view text,
                                               const ExecOptions& options,
                                               RowSink* sink) {
  AMBER_ASSIGN_OR_RETURN(SelectQuery query, SparqlParser::Parse(text));
  return Stream(query, options, sink);
}

uint64_t EffectiveRowCap(const SelectQuery& query,
                         const ExecOptions& options) {
  uint64_t cap = options.max_rows;
  if (query.limit != 0 && (cap == 0 || query.limit < cap)) cap = query.limit;
  return cap;
}

}  // namespace amber
