// AMbER engine facade (Section 3): offline stage (encode triples, build the
// multigraph and the index ensemble I = {A, S, N}) plus the online stage
// (SPARQL -> query multigraph -> decomposition -> sub-multigraph
// homomorphism via Matcher).

#ifndef AMBER_CORE_AMBER_ENGINE_H_
#define AMBER_CORE_AMBER_ENGINE_H_

#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/query_engine.h"
#include "graph/multigraph.h"
#include "index/index_set.h"
#include "rdf/encoded_dataset.h"
#include "rdf/term.h"
#include "sparql/query_graph.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace amber {

/// \brief The AMbER RDF query engine.
class AmberEngine : public QueryEngine {
 public:
  /// Offline-stage wall-clock breakdown (Table 5).
  struct BuildTimings {
    double encode_seconds = 0;  // tripleset -> dictionaries + encoded edges
    double graph_seconds = 0;   // multigraph construction
    double index_seconds = 0;   // I = {A, S, N}
    double database_seconds() const { return encode_seconds + graph_seconds; }
  };

  /// Offline-stage knobs.
  struct BuildOptions {
    /// Worker threads for the offline stage (multigraph CSRs, per-vertex
    /// synopsis/trie construction). Every parallel path is bit-identical
    /// to the serial build, so the persisted artifact does not depend on
    /// this value. <= 1 builds serially.
    int num_threads = 1;
  };

  /// Runs the full offline stage on a tripleset.
  static Result<AmberEngine> Build(const std::vector<Triple>& triples,
                                   const BuildOptions& options);
  static Result<AmberEngine> Build(const std::vector<Triple>& triples) {
    return Build(triples, BuildOptions());
  }

  /// Offline stage starting from an already encoded dataset.
  static AmberEngine FromEncoded(EncodedDataset dataset,
                                 const BuildOptions& options);
  static AmberEngine FromEncoded(EncodedDataset dataset) {
    return FromEncoded(std::move(dataset), BuildOptions());
  }

  /// Loads data from an N-Triples file and builds the engine.
  static Result<AmberEngine> BuildFromFile(const std::string& path);

  std::string name() const override { return "AMbER"; }

  Result<CountResult> Count(const SelectQuery& query,
                            const ExecOptions& options) override;
  Result<MaterializedRows> Materialize(const SelectQuery& query,
                                       const ExecOptions& options) override;

  /// True incremental streaming: rows leave through `sink` as the matcher
  /// finds them (serial path) or as the ordered parallel fan-in drains
  /// them (stream mode of parallel_exec.h), in exact Materialize order,
  /// with peak memory bounded by the chunk buffers instead of the result.
  Result<StreamResult> Stream(const SelectQuery& query,
                              const ExecOptions& options,
                              RowSink* sink) override;

  /// Executes and retains the result as a factorized answer graph (see
  /// docs/ARCHITECTURE.md, "Factorized answer graphs"). Under kFactorized
  /// (or kAuto on a plan with satellites) groups come straight from the
  /// matcher — the cross-product is never expanded; under kFlat each row
  /// becomes a singleton group, so every form yields a usable handle.
  Result<FactorizedRows> Factorize(const SelectQuery& query,
                                   const ExecOptions& options) override;

  /// Translates a row of data-vertex ids back to RDF terms via Mv^-1.
  std::vector<std::string> TranslateRow(
      std::span<const VertexId> row) const override;

  const Multigraph& graph() const { return graph_; }
  const IndexSet& indexes() const { return indexes_; }
  const RdfDictionaries& dictionaries() const { return dicts_; }
  const BuildTimings& timings() const { return timings_; }

  /// Serializes the offline artifacts (dictionaries, multigraph, indexes).
  Status Save(std::ostream& os) const;
  /// Restores an engine persisted with Save().
  static Result<AmberEngine> Load(std::istream& is);

  /// Writes the offline artifacts as one AMF file (the mmap-able format;
  /// see docs/ARCHITECTURE.md, "Artifact format"). Byte-identical output
  /// for identical engines, regardless of BuildOptions::num_threads.
  Status SaveFile(const std::string& path) const;

  /// Re-opens an AMF artifact via mmap. All CSR arrays, index pools and
  /// dictionary string bytes are borrowed straight from the mapping —
  /// zero per-element copies; only the dictionary hash indexes are
  /// rebuilt. The engine keeps the mapping alive for its lifetime.
  static Result<AmberEngine> OpenFile(const std::string& path);

  /// The raw bytes of the mapped artifact backing this engine, or an empty
  /// span when the engine owns its data (built or stream-loaded). Lets
  /// tests prove the zero-copy property.
  std::span<const std::byte> MappedRegion() const {
    return mapping_ != nullptr ? mapping_->data()
                               : std::span<const std::byte>{};
  }

 private:
  AmberEngine() = default;

  // Runs the matcher with the right sink into `stats`; reports the row
  // count. `materialize_into` non-null collects rows.
  Result<uint64_t> Execute(const SelectQuery& query,
                           const ExecOptions& options, ExecStats* stats,
                           std::vector<std::vector<VertexId>>* materialize_into);

  RdfDictionaries dicts_;
  Multigraph graph_;
  IndexSet indexes_;
  BuildTimings timings_;
  // Non-null iff this engine was restored via OpenFile(); owns the mapping
  // every borrowed span points into.
  std::shared_ptr<MappedFile> mapping_;
};

}  // namespace amber

#endif  // AMBER_CORE_AMBER_ENGINE_H_
