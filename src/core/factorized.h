// Factorized answer graphs (docs/ARCHITECTURE.md, "Factorized answer
// graphs"): the result representation, its lazy expansion cursor, and the
// builder shared by the serial sink and the parallel chunk merge.
//
// A FactorizedResult keeps each solution record as (core embedding ×
// per-projected-satellite candidate lists) instead of expanding the
// Cartesian product: COUNT is the saturating sum of group cardinalities,
// LIMIT/OFFSET skips whole groups through the cursor's prefix arithmetic,
// and expansion — when someone finally wants rows — replays Emit()'s
// odometer order exactly, so expanded rows are bit-identical to the flat
// enumeration.

#ifndef AMBER_CORE_FACTORIZED_H_
#define AMBER_CORE_FACTORIZED_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/exec.h"
#include "core/query_plan.h"
#include "rdf/encoded_dataset.h"

namespace amber {

/// A query result kept in factorized form.
struct FactorizedResult {
  /// Projection slots per row.
  uint32_t num_slots = 0;
  /// Per slot: index into Group::lists, or kNoGroupList for core-bound
  /// slots. Shared by every group (it derives from the plan, not the data).
  std::vector<uint32_t> slot_list;
  /// Built under SELECT DISTINCT semantics (multiplicity forced to 1;
  /// expansion dedups the flagged groups).
  bool distinct = false;

  struct Group {
    /// One entry per projection slot; satellite slots are unspecified and
    /// draw from `lists[slot_list[i]]` instead.
    std::vector<VertexId> fixed;
    /// One sorted, duplicate-free candidate list per distinct projected
    /// satellite (first-appearance order over the projection).
    std::vector<std::vector<VertexId>> lists;
    /// Row repetitions from non-projected satellites (1 under DISTINCT).
    uint64_t multiplicity = 1;
    /// DISTINCT only: this group's projected-core key collides with another
    /// group's, so its expansion routes through the row-level dedup set.
    bool needs_dedup = false;

    /// Rows this group represents: multiplicity × Π list sizes (saturating).
    uint64_t Cardinality() const {
      uint64_t card = multiplicity;
      for (const std::vector<VertexId>& l : lists) {
        card = SaturatingMul(card, l.size());
      }
      return card;
    }
    uint64_t ByteSize() const;
  };

  /// Groups in emission order (= the serial matcher's order; the parallel
  /// path concatenates chunks in chunk order, which is the same order).
  std::vector<Group> groups;

  /// Exact number of expansion rows: the saturating sum of group
  /// cardinalities, minus duplicates removed by the DISTINCT fallback
  /// (tracked exactly at build time — never an estimate).
  uint64_t total_rows = 0;
  /// Sum of group cardinalities (rows represented before any dedup).
  uint64_t represented_rows = 0;
  /// Some group carries needs_dedup (the row-level DISTINCT fallback).
  bool needs_row_dedup = false;
  /// The builder's cap stopped group collection early; the retained groups
  /// still cover at least `row_limit` rows, callers trim expansion.
  bool truncated = false;
  /// Row cap the result was built under (0 = none). Rows past this index
  /// may be missing (collection stopped at the group crossing the cap).
  uint64_t row_limit = 0;

  /// Deterministic byte accounting for cache budgets (charges group
  /// storage, not the expanded cross-product).
  uint64_t ByteSize() const;

  /// \brief Forward cursor over the expansion, in exactly the flat serial
  /// row order (list 0 advances fastest; each row repeats `multiplicity`
  /// times consecutively; DISTINCT-flagged groups replay first-occurrence
  /// filtering).
  class Cursor {
   public:
    explicit Cursor(const FactorizedResult* r);

    /// Advances to the next row; false at the end. Row() valid after true.
    bool Next();
    std::span<const VertexId> Row() const { return row_; }

    /// Skips `n` rows (distinct rows when the result is DISTINCT). Whole
    /// groups are skipped by cardinality without touching their lists and
    /// the boundary group's odometer is positioned by division; only
    /// DISTINCT-flagged groups must expand row by row (their rows feed the
    /// dedup set later groups depend on).
    void Skip(uint64_t n);

    /// Rows materialized so far (ExecStats::rows_expanded accounting):
    /// every row Next() produced plus rows the DISTINCT fallback had to
    /// expand during Skip.
    uint64_t rows_expanded() const { return rows_expanded_; }

   private:
    bool GroupNeedsDedup(const Group& g) const {
      return r_->distinct && g.needs_dedup;
    }
    void LoadGroup();
    bool NextInGroup();
    void BuildRow();

    const FactorizedResult* r_;
    size_t gi_ = 0;
    bool group_loaded_ = false;
    uint64_t card_ = 0;           // cached Cardinality() of groups[gi_]
    uint64_t done_in_group_ = 0;  // rows already produced from groups[gi_]
    uint64_t rep_ = 0;            // repetition index within multiplicity
    std::vector<uint64_t> pick_;  // odometer digits, one per list
    std::vector<VertexId> row_;
    std::unordered_set<std::string> seen_;  // DISTINCT-fallback rows
    uint64_t rows_expanded_ = 0;
  };

  Cursor Expand() const { return Cursor(this); }
};

/// \brief Accumulates groups in emission order into a FactorizedResult.
///
/// One code path serves both the serial FactorizedSink and the parallel
/// chunk merge, so the two produce identical results by construction.
///
/// Under DISTINCT the builder keys each group by the byte string of its
/// core-bound slots. Distinct keys can never yield equal rows (the rows
/// differ in a core slot) and rows within one group are always distinct
/// (candidate lists are duplicate-free), so duplicates are possible only
/// between groups sharing a key: on the first collision both groups are
/// flagged needs_dedup and their rows expanded into a row-level seen set,
/// keeping `total_rows` exact while everything else stays compact.
class FactorizedBuilder {
 public:
  /// `cap`: stop accepting once the (distinct-aware) total reaches this
  /// many rows; 0 = unlimited. The group that crosses the cap is kept, so
  /// the expansion's first `cap` rows equal the uncapped run's.
  FactorizedBuilder(uint32_t num_slots, std::vector<uint32_t> slot_list,
                    bool distinct, uint64_t cap);

  /// Appends one group (emission order). Returns false once the cap is
  /// reached — the group IS retained; the caller stops producing. Any
  /// incoming needs_dedup flag is recomputed (chunk-local flags from a
  /// parallel run carry no meaning across chunks).
  bool Add(FactorizedResult::Group&& g);

  /// Exact (distinct-aware) expansion rows accumulated so far.
  uint64_t total_rows() const { return total_; }
  /// Rows the DISTINCT collision fallback expanded (stats accounting).
  uint64_t rows_expanded() const { return rows_expanded_; }

  /// Finalizes totals and flags; the builder is spent afterwards.
  FactorizedResult Finish();

 private:
  static constexpr size_t kInDedup = std::numeric_limits<size_t>::max();

  std::string CoreKey(const FactorizedResult::Group& g) const;
  /// Expands `g` into the seen set; returns how many rows were fresh.
  uint64_t ExpandIntoSeen(const FactorizedResult::Group& g);

  FactorizedResult result_;
  uint64_t cap_;
  uint64_t total_ = 0;
  uint64_t rows_expanded_ = 0;
  /// Core key → index of the sole group holding it, or kInDedup once the
  /// key collided and its groups joined the row-level set.
  std::unordered_map<std::string, size_t> key_to_group_;
  std::unordered_set<std::string> seen_;
};

/// Collects matcher group emissions into a FactorizedBuilder (the serial
/// path; the parallel path runs one per chunk). Rows delivered through
/// OnRow — ground-only queries, which never reach the group path — are
/// wrapped as singleton groups so every query shape factorizes.
class FactorizedSink : public EmbeddingSink {
 public:
  explicit FactorizedSink(FactorizedBuilder* builder) : builder_(builder) {}

  bool wants_rows() const override { return true; }
  bool wants_groups() const override { return true; }
  bool OnRow(std::span<const VertexId> row) override;
  bool OnGroup(const EmbeddingGroupView& view) override;
  bool OnCount(uint64_t) override { return true; }

 private:
  FactorizedBuilder* builder_;
};

/// True when `form` resolves to factorized emission for `plan`. kAuto
/// picks factorized only when the plan has satellite vertices — without
/// them every group is a singleton and flat is strictly cheaper.
inline bool UseFactorizedForm(ResultForm form, const QueryPlan& plan) {
  switch (form) {
    case ResultForm::kFlat:
      return false;
    case ResultForm::kFactorized:
      return true;
    case ResultForm::kAuto:
      return plan.NumSatelliteVertices() > 0;
  }
  return false;
}

/// Derives FactorizedResult::slot_list for `projection` under `plan`:
/// kNoGroupList for core slots, otherwise the index of the satellite's
/// candidate list in first-appearance order (the same derivation the
/// matcher's scratch uses — the two must agree byte for byte).
std::vector<uint32_t> BuildSlotList(const std::vector<uint32_t>& projection,
                                    const std::vector<bool>& is_core);

}  // namespace amber

#endif  // AMBER_CORE_FACTORIZED_H_
