// The AMbER matching procedure (Section 5): ProcessVertex (Algorithm 1),
// MatchSatVertices (Algorithm 2), AMbER-Algo (Algorithm 3) and
// HomomorphicMatch (Algorithm 4), generalized to handle multiple connected
// components, self-loops and early termination.
//
// Semantics: sub-multigraph *homomorphism* (Definition 2) — no injectivity
// constraint, so distinct query vertices may map to the same data vertex and
// satellite vertices are resolved independently, set-at-a-time (Lemma 2).
// Each full assignment yields |sat set| products of embeddings via the
// Cartesian expansion of GenEmb.
//
// Hot-path engineering (docs/ARCHITECTURE.md, "The matching hot path"): the
// matcher owns a depth-indexed scratch arena — one reusable candidate
// buffer and list workspace per core-order depth, plus per-query-vertex
// satellite and local-candidate buffers — so steady-state recursion
// performs zero heap allocations. Intersections go through the galloping
// kernels of util/intersect.h, and hub-sized neighbour lists are probed
// per candidate via NeighborhoodIndex::Contains instead of materialized
// when an estimated-cost cutover says so.

#ifndef AMBER_CORE_MATCHER_H_
#define AMBER_CORE_MATCHER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/exec.h"
#include "core/query_plan.h"
#include "graph/multigraph.h"
#include "index/index_set.h"
#include "sparql/query_graph.h"
#include "util/clock.h"
#include "util/intersect.h"
#include "util/status.h"

namespace amber {

/// \brief One matching run of a query multigraph against a data multigraph.
///
/// A Matcher holds per-run mutable state (current core assignment, satellite
/// candidate sets, the scratch arena); create one per execution (they are
/// cheap, and their buffers warm up over the run). Thread-safety: none — the
/// parallel mode creates one Matcher per worker over a slice of the root
/// candidates, so arenas are never shared.
class Matcher {
 public:
  Matcher(const Multigraph& g, const IndexSet& indexes, const QueryGraph& q,
          const QueryPlan& plan, const ExecOptions& options);

  /// Computes CandInit for the first component's initial vertex (Algorithm
  /// 3, lines 4-5), already refined by ProcessVertex. Exposed so the
  /// parallel mode can shard it.
  std::vector<VertexId> ComputeRootCandidates();

  /// Enumerates all homomorphic embeddings into `sink`. When
  /// `root_candidates` is non-null, component 0's initial vertex iterates
  /// over that slice instead of recomputing CandInit.
  ///
  /// `bag_multiplicity`: when false (DISTINCT), identical projected rows
  /// arising from non-projected satellite multiplicity are emitted once.
  Status Run(EmbeddingSink* sink, ExecStats* stats,
             const std::vector<VertexId>* root_candidates = nullptr,
             bool bag_multiplicity = true);

  /// Flushes hot-path counters accumulated outside Run into `stats` and
  /// resets them. Run flushes automatically; the parallel mode calls this
  /// on the root matcher, whose ComputeRootCandidates work would otherwise
  /// be invisible in the merged stats.
  void FlushHotPathStats(ExecStats* stats);

 private:
  enum class Flow { kContinue, kStop, kTimeout };

  /// One core-extension constraint at a recursion step: query edge `e`
  /// towards the already-matched data vertex `vn`, with the O(1) upper
  /// bound on the neighbour list size that drives the cutover.
  struct Constraint {
    const QueryEdge* edge;
    VertexId vn;
    uint32_t bound;
    bool u_is_from;
    bool probe = false;  // deferred to the probe path by the cutover
  };

  /// Reusable per-depth workspace. Buffers only grow; after the first
  /// descent to a given depth, revisiting it allocates nothing.
  struct DepthScratch {
    std::vector<Constraint> constraints;
    std::vector<std::vector<VertexId>> lists;          // materialized lists
    std::vector<std::span<const VertexId>> views;      // k-way input
    std::vector<const VertexId*> cursors;              // k-way gallop state
    std::vector<VertexId> cand;                        // intersection result
  };

  /// Lazily-computed C^A_u ∩ C^I_u cache state (LocalCandidates).
  enum class LocalState : uint8_t { kUnknown, kNone, kCached };

  /// CandInit for an arbitrary component's initial vertex.
  std::vector<VertexId> InitialCandidates(uint32_t uinit);

  /// InitialCandidates(ci's initial vertex), cached per component: it does
  /// not depend on earlier components' assignments, so chained components
  /// compute it once per run instead of once per upstream embedding.
  const std::vector<VertexId>& CachedComponentCandidates(size_t ci);

  Flow MatchComponent(size_t ci, const std::vector<VertexId>* root);
  Flow Recurse(size_t ci, size_t depth);
  Flow Emit();

  /// Algorithm 2. Returns false when some satellite has no candidates for
  /// this assignment of `vc` to `uc`. Candidate sets are written into the
  /// reusable sat_match_ buffers.
  bool MatchSatellites(const std::vector<uint32_t>& sats, uint32_t uc,
                       VertexId vc);

  /// Algorithm 1, cached: candidates induced by u's attributes, IRI
  /// anchors, and (for core vertices, when pushdown is on) FILTER range
  /// scans. Returns nullptr when u has none of those; otherwise a pointer
  /// to the per-vertex cached list, computed on first use and shared by
  /// every subsequent refinement of u in this run.
  const std::vector<VertexId>* CachedLocalCandidates(uint32_t u);

  /// True when FILTER constraint `i` of vertex `u` is served by a
  /// ValueIndex range scan (inside CachedLocalCandidates) rather than
  /// evaluated residually: pushdown must be enabled, the vertex must be
  /// core, and the estimated range must pass the RangeScanWorthPushing
  /// cutover (wide ranges are cheaper to check per candidate). The
  /// decisions are precomputed in the constructor so the steady-state
  /// Recurse never re-estimates (or allocates) in RefineByVertex.
  bool ConstraintPushed(uint32_t u, size_t i) const {
    return preds_pushed_[u][i] != 0;
  }

  /// Intersects `cand` (in place) with CachedLocalCandidates(u), filters
  /// self-loop constraints, and evaluates residual FILTER predicates
  /// (satellite vertices; every vertex in post-filter mode).
  void RefineByVertex(uint32_t u, std::vector<VertexId>* cand);

  /// Candidates for `u` that respect the multi-edge of query edge `e`
  /// towards the already-matched data vertex `vn` (one index N walk).
  /// Appends to `*out`.
  void PairCandidates(const QueryEdge& e, bool u_is_from, VertexId vn,
                      std::vector<VertexId>* out);

  /// Probe-without-materialize: drops from `cand` every candidate whose
  /// multi-edge towards `vn` (oriented by `e`) does not cover e.types,
  /// checked per candidate from the *candidate's* (small) trie instead of
  /// materializing vn's (hub-sized) neighbour list.
  void ProbeFilter(const QueryEdge& e, bool u_is_from, VertexId vn,
                   std::vector<VertexId>* cand);

  bool DeadlineExpired();

  /// Current scratch-arena footprint (capacities of all reusable buffers).
  uint64_t ArenaBytes() const;

  const Multigraph& g_;
  const IndexSet& indexes_;
  const QueryGraph& q_;
  const QueryPlan& plan_;
  const ExecOptions& options_;

  Deadline deadline_;
  EmbeddingSink* sink_ = nullptr;
  ExecStats* stats_ = nullptr;
  bool bag_multiplicity_ = true;

  std::vector<VertexId> core_match_;              // per query vertex
  std::vector<std::vector<VertexId>> sat_match_;  // per query vertex
  std::vector<uint32_t> satellite_list_;          // all satellite vertices
  std::vector<VertexId> row_buffer_;
  uint32_t deadline_tick_ = 0;

  // -- Scratch arena (sized once in the constructor, grown on first use).
  std::vector<size_t> depth_base_;      // per component: global depth offset
  std::vector<DepthScratch> scratch_;   // per global core-order depth
  std::vector<VertexId> sat_tmp_;       // satellite second-list workspace
  NeighborhoodIndex::Scratch nbr_scratch_;  // trie DFS stack

  // Per-query-vertex LocalCandidates cache (immutable per run).
  std::vector<LocalState> local_state_;
  std::vector<std::vector<VertexId>> local_cache_;

  // Per (vertex, FILTER constraint): pushed range scan (1) or residual
  // evaluation (0). Precomputed once per Matcher.
  std::vector<std::vector<uint8_t>> preds_pushed_;

  // Per-component CandInit cache (components > 0 are re-entered once per
  // upstream embedding; their seed candidates never change).
  std::vector<bool> comp_cand_cached_;
  std::vector<std::vector<VertexId>> comp_cand_cache_;

  // Emit() workspace: projected satellites (unique) and the odometer.
  std::vector<uint32_t> expand_;
  std::vector<size_t> pick_;

  // Hot-path counters, flushed into stats_ at the end of Run (some grow
  // during ComputeRootCandidates, before stats_ is bound).
  IntersectCounters icounters_;
  uint64_t lists_materialized_ = 0;
  uint64_t probe_checks_ = 0;
  uint64_t probe_hits_ = 0;
  uint64_t range_scans_ = 0;
  uint64_t range_scan_elements_ = 0;
  uint64_t predicate_checks_ = 0;

  // Range-scan workspace for CachedLocalCandidates (cold path, but keep it
  // in the arena so the steady state stays allocation-free).
  std::vector<VertexId> range_tmp_;
};

}  // namespace amber

#endif  // AMBER_CORE_MATCHER_H_
