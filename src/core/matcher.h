// The AMbER matching procedure (Section 5): ProcessVertex (Algorithm 1),
// MatchSatVertices (Algorithm 2), AMbER-Algo (Algorithm 3) and
// HomomorphicMatch (Algorithm 4), generalized to handle multiple connected
// components, self-loops and early termination.
//
// Semantics: sub-multigraph *homomorphism* (Definition 2) — no injectivity
// constraint, so distinct query vertices may map to the same data vertex and
// satellite vertices are resolved independently, set-at-a-time (Lemma 2).
// Each full assignment yields |sat set| products of embeddings via the
// Cartesian expansion of GenEmb.

#ifndef AMBER_CORE_MATCHER_H_
#define AMBER_CORE_MATCHER_H_

#include <optional>
#include <vector>

#include "core/exec.h"
#include "core/query_plan.h"
#include "graph/multigraph.h"
#include "index/index_set.h"
#include "sparql/query_graph.h"
#include "util/clock.h"
#include "util/status.h"

namespace amber {

/// \brief One matching run of a query multigraph against a data multigraph.
///
/// A Matcher holds per-run mutable state (current core assignment, satellite
/// candidate sets); create one per execution (they are cheap). Thread-safety:
/// none — the parallel mode creates one Matcher per worker over a slice of
/// the root candidates.
class Matcher {
 public:
  Matcher(const Multigraph& g, const IndexSet& indexes, const QueryGraph& q,
          const QueryPlan& plan, const ExecOptions& options);

  /// Computes CandInit for the first component's initial vertex (Algorithm
  /// 3, lines 4-5), already refined by ProcessVertex. Exposed so the
  /// parallel mode can shard it.
  std::vector<VertexId> ComputeRootCandidates();

  /// Enumerates all homomorphic embeddings into `sink`. When
  /// `root_candidates` is non-null, component 0's initial vertex iterates
  /// over that slice instead of recomputing CandInit.
  ///
  /// `bag_multiplicity`: when false (DISTINCT), identical projected rows
  /// arising from non-projected satellite multiplicity are emitted once.
  Status Run(EmbeddingSink* sink, ExecStats* stats,
             const std::vector<VertexId>* root_candidates = nullptr,
             bool bag_multiplicity = true);

 private:
  enum class Flow { kContinue, kStop, kTimeout };

  /// CandInit for an arbitrary component's initial vertex.
  std::vector<VertexId> InitialCandidates(uint32_t uinit);

  Flow MatchComponent(size_t ci, const std::vector<VertexId>* root);
  Flow Recurse(size_t ci, size_t depth);
  Flow Emit();

  /// Algorithm 2. Returns false when some satellite has no candidates for
  /// this assignment of `vc` to `uc`.
  bool MatchSatellites(const std::vector<uint32_t>& sats, uint32_t uc,
                       VertexId vc);

  /// Algorithm 1: candidates induced by u's attributes and IRI anchors;
  /// nullopt when u has neither.
  std::optional<std::vector<VertexId>> LocalCandidates(uint32_t u);

  /// Intersects `cand` with LocalCandidates(u) and filters self-loop
  /// constraints.
  void RefineByVertex(uint32_t u, std::vector<VertexId>* cand);

  /// Candidates for `u` that respect the multi-edge of query edge `e`
  /// towards the already-matched data vertex `vn` (one index N probe).
  void PairCandidates(const QueryEdge& e, bool u_is_from, VertexId vn,
                      std::vector<VertexId>* out) const;

  bool DeadlineExpired();

  const Multigraph& g_;
  const IndexSet& indexes_;
  const QueryGraph& q_;
  const QueryPlan& plan_;
  const ExecOptions& options_;

  Deadline deadline_;
  EmbeddingSink* sink_ = nullptr;
  ExecStats* stats_ = nullptr;
  bool bag_multiplicity_ = true;

  std::vector<VertexId> core_match_;              // per query vertex
  std::vector<std::vector<VertexId>> sat_match_;  // per query vertex
  std::vector<uint32_t> satellite_list_;          // all satellite vertices
  std::vector<VertexId> row_buffer_;
  uint32_t deadline_tick_ = 0;
};

}  // namespace amber

#endif  // AMBER_CORE_MATCHER_H_
