// The AMbER matching procedure (Section 5): ProcessVertex (Algorithm 1),
// MatchSatVertices (Algorithm 2), AMbER-Algo (Algorithm 3) and
// HomomorphicMatch (Algorithm 4), generalized to handle multiple connected
// components, self-loops and early termination.
//
// Semantics: sub-multigraph *homomorphism* (Definition 2) — no injectivity
// constraint, so distinct query vertices may map to the same data vertex and
// satellite vertices are resolved independently, set-at-a-time (Lemma 2).
// Each full assignment yields |sat set| products of embeddings via the
// Cartesian expansion of GenEmb.
//
// Hot-path engineering (docs/ARCHITECTURE.md, "The matching hot path"): all
// per-query mutable state lives in a MatcherScratch value — a depth-indexed
// scratch arena (one reusable candidate buffer and list workspace per
// core-order depth, per-query-vertex satellite and local-candidate buffers,
// per-component CandInit caches) plus the hot-path counters — so
// steady-state recursion performs zero heap allocations. Intersections go
// through the galloping kernels of util/intersect.h, and hub-sized
// neighbour lists are probed per candidate via NeighborhoodIndex::Contains
// instead of materialized when an estimated-cost cutover says so.
//
// Parallel online stage (docs/ARCHITECTURE.md, "The parallel online
// stage"): the unit of parallelism is one CandInit candidate of the first
// component's initial vertex. Each worker owns a MatcherScratch and a
// Matcher borrowing it, and Run()s over chunk slices of the root candidate
// list; scratch arenas are never shared, and a worker's caches stay warm
// across the chunks it processes.

#ifndef AMBER_CORE_MATCHER_H_
#define AMBER_CORE_MATCHER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/exec.h"
#include "core/query_plan.h"
#include "graph/multigraph.h"
#include "index/index_set.h"
#include "index/neighborhood_index.h"
#include "sparql/query_graph.h"
#include "util/cancellation.h"
#include "util/clock.h"
#include "util/intersect.h"
#include "util/status.h"

namespace amber {

/// \brief All mutable per-query state of one matching run: the scratch
/// arena, the caches and the hot-path counters.
///
/// A MatcherScratch is a plain movable value bound to one (query graph,
/// plan, options) triple at construction; a Matcher borrows one (or owns a
/// private one via the convenience constructor). The parallel mode creates
/// one scratch per worker so arenas are never shared across threads, and
/// reuses it across every chunk the worker processes — buffers only grow,
/// so per-worker steady-state recursion allocates nothing.
struct MatcherScratch {
  /// One core-extension constraint at a recursion step: query edge `e`
  /// towards the already-matched data vertex `vn`, with the O(1) upper
  /// bound on the neighbour list size that drives the cutover.
  struct Constraint {
    const QueryEdge* edge;
    VertexId vn;
    uint32_t bound;
    bool u_is_from;
    bool probe = false;  // deferred to the probe path by the cutover
  };

  /// Reusable per-depth workspace. Buffers only grow; after the first
  /// descent to a given depth, revisiting it allocates nothing.
  struct DepthScratch {
    std::vector<Constraint> constraints;
    std::vector<std::vector<VertexId>> lists;          // materialized lists
    std::vector<std::span<const VertexId>> views;      // k-way input
    std::vector<const VertexId*> cursors;              // k-way gallop state
    std::vector<VertexId> cand;                        // intersection result
  };

  /// Lazily-computed C^A_u ∩ C^I_u cache state (LocalCandidates).
  enum class LocalState : uint8_t { kUnknown, kNone, kCached };

  /// Sizes every buffer for the query and precomputes the per-constraint
  /// pushdown decisions (which need the indexes and options).
  MatcherScratch(const Multigraph& g, const IndexSet& indexes,
                 const QueryGraph& q, const QueryPlan& plan,
                 const ExecOptions& options);

  /// Current arena footprint (capacities of all reusable buffers).
  uint64_t ArenaBytes() const;

  std::vector<VertexId> core_match;              // per query vertex
  std::vector<std::vector<VertexId>> sat_match;  // per query vertex
  std::vector<uint32_t> satellite_list;          // all satellite vertices
  std::vector<VertexId> row_buffer;

  // -- Scratch arena (sized once in the constructor, grown on first use).
  std::vector<size_t> depth_base;      // per component: global depth offset
  std::vector<DepthScratch> depths;    // per global core-order depth
  std::vector<VertexId> sat_tmp;       // satellite second-list workspace
  NeighborhoodIndex::Scratch nbr_scratch;  // trie DFS stack

  // Per-query-vertex LocalCandidates cache (immutable per run).
  std::vector<LocalState> local_state;
  std::vector<std::vector<VertexId>> local_cache;

  // Per (vertex, FILTER constraint): pushed range scan (1) or residual
  // evaluation (0). Precomputed once per scratch.
  std::vector<std::vector<uint8_t>> preds_pushed;

  // Per-component CandInit cache (components > 0 are re-entered once per
  // upstream embedding; their seed candidates never change).
  std::vector<bool> comp_cand_cached;
  std::vector<std::vector<VertexId>> comp_cand_cache;

  // Emit() workspace: projected satellites (unique) and the odometer.
  std::vector<uint32_t> expand;
  std::vector<size_t> pick;

  // Factorized emission workspace: per projection slot, the index of its
  // satellite's candidate list among `expand` (kNoGroupList for core
  // slots), plus reusable span views over sat_match for OnGroup.
  std::vector<uint32_t> slot_list;
  std::vector<std::span<const VertexId>> group_views;

  // Hot-path counters, flushed into ExecStats at the end of Run (some grow
  // during ComputeRootCandidates, before stats are bound).
  IntersectCounters icounters;
  uint64_t lists_materialized = 0;
  uint64_t probe_checks = 0;
  uint64_t probe_hits = 0;
  uint64_t range_scans = 0;
  uint64_t range_scan_elements = 0;
  uint64_t predicate_checks = 0;

  // Range-scan workspace for CachedLocalCandidates (cold path, but keep it
  // in the arena so the steady state stays allocation-free).
  std::vector<VertexId> range_tmp;
};

/// \brief One matching run of a query multigraph against a data multigraph.
///
/// A Matcher is a thin handle over immutable inputs plus a MatcherScratch
/// holding every mutable buffer. Thread-safety: none — the parallel mode
/// creates one (scratch, Matcher) pair per worker over chunk slices of the
/// root candidates, so arenas are never shared.
class Matcher {
 public:
  /// Borrows `scratch`, which must have been constructed from the same
  /// (q, plan, options) and outlive the Matcher. Reusing one scratch across
  /// multiple Runs/Matchers of the *same* query keeps its caches warm.
  Matcher(const Multigraph& g, const IndexSet& indexes, const QueryGraph& q,
          const QueryPlan& plan, const ExecOptions& options,
          MatcherScratch* scratch);

  /// Convenience: owns a private scratch (the serial path and tests).
  Matcher(const Multigraph& g, const IndexSet& indexes, const QueryGraph& q,
          const QueryPlan& plan, const ExecOptions& options);

  /// Per-Run knobs beyond the sink and stats. The parallel mode uses the
  /// optional fields; serial callers can use the convenience Run overload.
  struct RunControl {
    /// When set, component 0's initial vertex iterates over this slice
    /// instead of recomputing CandInit (the parallel mode passes chunk
    /// subspans of one shared root list; spans are only read during the
    /// call).
    std::optional<std::span<const VertexId>> root_candidates;

    /// When false (DISTINCT), identical projected rows arising from
    /// non-projected satellite multiplicity are emitted once.
    bool bag_multiplicity = true;

    /// When set, overrides the per-Run deadline (Deadline::After(timeout)).
    /// The parallel mode shares one absolute deadline across every chunk
    /// Run so ExecOptions::timeout stays a per-QUERY budget, not a
    /// per-chunk one.
    std::optional<Deadline> deadline;

    /// Skip the ground-check gate (Algorithm 3's constant-pattern checks).
    /// The parallel mode evaluates it once on the root matcher instead of
    /// once per chunk, keeping predicate_checks equal to serial.
    bool skip_ground_checks = false;

    /// When set, overrides ExecOptions::cancel for this Run (the serving
    /// layer reuses one matcher under per-request tokens).
    std::optional<CancellationToken> cancel;
  };

  /// Why a long scan or recursion was cut short. Run() consumes interrupts
  /// internally (mapping them to stats.timed_out / stats.cancelled); the
  /// parallel mode reads pending_interrupt() after ComputeRootCandidates,
  /// whose CandInit scan runs outside any Run.
  enum class InterruptKind { kNone, kTimeout, kCancelled };

  /// Computes CandInit for the first component's initial vertex (Algorithm
  /// 3, lines 4-5), already refined by ProcessVertex. Exposed so the
  /// parallel mode can shard it. The overload without arguments binds the
  /// deadline/token from ExecOptions; a scan cut short by either leaves
  /// pending_interrupt() set and returns the partial list — callers must
  /// check before using the result.
  std::vector<VertexId> ComputeRootCandidates();
  std::vector<VertexId> ComputeRootCandidates(const Deadline& deadline,
                                              const CancellationToken& cancel);

  /// The interrupt recorded by the last ComputeRootCandidates (or left by a
  /// scan loop for the next consumer inside Run).
  InterruptKind pending_interrupt() const { return pending_; }

  /// Evaluates the query's ground checks (patterns without variables).
  /// Returns false when some check fails — the query has no results.
  /// Counters accrue in the scratch; flush with FlushHotPathStats (Run
  /// does this itself when it runs the gate).
  bool GroundChecksPass();

  /// Enumerates all homomorphic embeddings into `sink`.
  Status Run(EmbeddingSink* sink, ExecStats* stats,
             const RunControl& control);

  /// Convenience overload for serial callers.
  Status Run(EmbeddingSink* sink, ExecStats* stats,
             std::optional<std::span<const VertexId>> root_candidates =
                 std::nullopt,
             bool bag_multiplicity = true) {
    RunControl control;
    control.root_candidates = root_candidates;
    control.bag_multiplicity = bag_multiplicity;
    return Run(sink, stats, control);
  }

  /// Flushes hot-path counters accumulated outside Run into `stats` and
  /// resets them. Run flushes automatically; the parallel mode calls this
  /// on the root matcher, whose ComputeRootCandidates work would otherwise
  /// be invisible in the merged stats.
  void FlushHotPathStats(ExecStats* stats);

 private:
  enum class Flow { kContinue, kStop, kTimeout, kCancelled };

  /// CandInit for an arbitrary component's initial vertex.
  std::vector<VertexId> InitialCandidates(uint32_t uinit);

  /// InitialCandidates(ci's initial vertex), cached per component: it does
  /// not depend on earlier components' assignments, so chained components
  /// compute it once per run instead of once per upstream embedding.
  const std::vector<VertexId>& CachedComponentCandidates(size_t ci);

  Flow MatchComponent(size_t ci,
                      const std::optional<std::span<const VertexId>>& root);
  Flow Recurse(size_t ci, size_t depth);
  Flow Emit();

  /// Algorithm 2. Returns false when some satellite has no candidates for
  /// this assignment of `vc` to `uc`. Candidate sets are written into the
  /// reusable sat_match buffers.
  bool MatchSatellites(const std::vector<uint32_t>& sats, uint32_t uc,
                       VertexId vc);

  /// Algorithm 1, cached: candidates induced by u's attributes, IRI
  /// anchors, and (for core vertices, when pushdown is on) FILTER range
  /// scans. Returns nullptr when u has none of those; otherwise a pointer
  /// to the per-vertex cached list, computed on first use and shared by
  /// every subsequent refinement of u in this run.
  const std::vector<VertexId>* CachedLocalCandidates(uint32_t u);

  /// True when FILTER constraint `i` of vertex `u` is served by a
  /// ValueIndex range scan (inside CachedLocalCandidates) rather than
  /// evaluated residually: pushdown must be enabled, the vertex must be
  /// core, and the estimated range must pass the RangeScanWorthPushing
  /// cutover (wide ranges are cheaper to check per candidate). The
  /// decisions are precomputed in the scratch constructor so the
  /// steady-state Recurse never re-estimates (or allocates) in
  /// RefineByVertex.
  bool ConstraintPushed(uint32_t u, size_t i) const {
    return s_->preds_pushed[u][i] != 0;
  }

  /// Intersects `cand` (in place) with CachedLocalCandidates(u), filters
  /// self-loop constraints, and evaluates residual FILTER predicates
  /// (satellite vertices; every vertex in post-filter mode).
  void RefineByVertex(uint32_t u, std::vector<VertexId>* cand);

  /// Candidates for `u` that respect the multi-edge of query edge `e`
  /// towards the already-matched data vertex `vn` (one index N walk).
  /// Appends to `*out`.
  void PairCandidates(const QueryEdge& e, bool u_is_from, VertexId vn,
                      std::vector<VertexId>* out);

  /// Probe-without-materialize: drops from `cand` every candidate whose
  /// multi-edge towards `vn` (oriented by `e`) does not cover e.types,
  /// checked per candidate from the *candidate's* (small) trie instead of
  /// materializing vn's (hub-sized) neighbour list.
  void ProbeFilter(const QueryEdge& e, bool u_is_from, VertexId vn,
                   std::vector<VertexId>* cand);

  /// The amortized interrupt check of the recursion hot path: every 64th
  /// call reads the clock and the cancellation token (plus any interrupt a
  /// scan loop recorded via PollInterrupt). kContinue when neither tripped.
  Flow CheckInterrupt();
  /// Immediate (un-amortized) check: token first, then deadline.
  Flow CheckInterruptNow();
  /// Scan-loop variant: same amortized check, but records the interrupt in
  /// pending_ (for the next CheckInterrupt consumer) instead of returning
  /// a Flow — long CandInit scans poll this per element and break out, so
  /// a deadline/cancellation can no longer overshoot by a full scan.
  void PollInterrupt();
  /// Consumes pending_, converting it to the matching Flow.
  Flow TakePendingInterrupt();

  const Multigraph& g_;
  const IndexSet& indexes_;
  const QueryGraph& q_;
  const QueryPlan& plan_;
  const ExecOptions& options_;

  // Set iff this Matcher was created via the convenience constructor.
  std::unique_ptr<MatcherScratch> owned_scratch_;
  MatcherScratch* s_;  // never null

  // Per-Run bindings (ComputeRootCandidates binds deadline_/cancel_ too).
  Deadline deadline_;
  CancellationToken cancel_;
  EmbeddingSink* sink_ = nullptr;
  ExecStats* stats_ = nullptr;
  bool bag_multiplicity_ = true;
  uint32_t deadline_tick_ = 0;
  InterruptKind pending_ = InterruptKind::kNone;
};

}  // namespace amber

#endif  // AMBER_CORE_MATCHER_H_
