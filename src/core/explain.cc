#include "core/explain.h"

#include <cstdio>
#include <string>

#include "core/factorized.h"

namespace amber {

namespace {

void AppendVertexLine(const QueryGraph& q, uint32_t u,
                      const RdfDictionaries& dicts, const QueryPlan& plan,
                      const IndexSet* indexes, std::string* out) {
  const QueryVertex& v = q.vertices()[u];
  *out += "  ?" + v.name;
  *out += " (degree " + std::to_string(q.Degree(u));
  *out += ", r2=" + std::to_string(q.SignatureEdgeCount(u)) + ")";
  if (!v.attrs.empty()) {
    *out += " attrs={";
    for (size_t i = 0; i < v.attrs.size(); ++i) {
      if (i) *out += ", ";
      *out += dicts.AttributeDescription(v.attrs[i]);
    }
    *out += "}";
  }
  if (!v.preds.empty()) {
    // Mirrors Matcher::ShouldPushConstraint under the default ExecOptions:
    // core vertices get selective constraints as ValueIndex range scans;
    // satellites and wide ranges are evaluated residually per candidate.
    *out += " preds={";
    for (size_t i = 0; i < v.preds.size(); ++i) {
      if (i) *out += ", ";
      const PredicateConstraint& pc = v.preds[i];
      *out += "<";
      *out += dicts.AttrPredicateIri(pc.predicate);
      *out += ">";
      for (const ValueComparison& c : pc.comparisons) {
        *out += " ";
        *out += CompareOpToken(c.op);
        *out += " " + c.value.ToString();
      }
      if (indexes != nullptr) {
        const bool pushed =
            plan.is_core[u] &&
            RangeScanWorthPushing(
                indexes->value.EstimateRange(pc.predicate, pc.comparisons),
                dicts.vertices().size());
        *out += pushed ? " [index-pushed]" : " [residual]";
      }
    }
    *out += "}";
  }
  for (const IriConstraint& c : v.iris) {
    *out += " anchor=";
    *out += dicts.VertexToken(c.anchor);
    if (!c.out_types.empty()) {
      *out += " out:" + std::to_string(c.out_types.size());
    }
    if (!c.in_types.empty()) {
      *out += " in:" + std::to_string(c.in_types.size());
    }
  }
  if (!v.self_types.empty()) {
    *out += " self-loop(" + std::to_string(v.self_types.size()) + ")";
  }
  *out += "\n";
}

}  // namespace

Result<std::string> ExplainQuery(const SelectQuery& query,
                                 const RdfDictionaries& dicts,
                                 const IndexSet* indexes,
                                 const PlanOptions& options,
                                 const ExecOptions* exec,
                                 const ExecStats* stats) {
  AMBER_ASSIGN_OR_RETURN(QueryGraph q, QueryGraph::Build(query, dicts));

  std::string out;
  out += "Query multigraph: " + std::to_string(q.NumVertices()) +
         " variable vertices, " + std::to_string(q.edges().size()) +
         " multi-edges, " + std::to_string(q.ground_edges().size()) +
         " ground edges, " + std::to_string(q.ground_attributes().size()) +
         " ground attributes";
  if (!q.ground_predicates().empty()) {
    out += ", " + std::to_string(q.ground_predicates().size()) +
           " ground predicate checks";
  }
  out += "\n";

  if (q.unsatisfiable()) {
    out += "UNSATISFIABLE: " + q.unsatisfiable_reason() + "\n";
    return out;
  }

  QueryPlan plan =
      PlanQuery(q, options, indexes != nullptr ? &indexes->value : nullptr,
                dicts.vertices().size());
  out += "Decomposition: " + std::to_string(plan.NumCoreVertices()) +
         " core, " + std::to_string(plan.NumSatelliteVertices()) +
         " satellite, " + std::to_string(plan.components.size()) +
         " component(s)\n";

  if (exec != nullptr) {
    // Mirrors AmberEngine::Execute's parallel gate: >1 threads and at
    // least one component (fully ground queries have nothing to shard).
    if (exec->num_threads > 1 && !plan.components.empty()) {
      const uint32_t uinit = plan.components[0].core_order[0];
      out += "Parallel online stage: " +
             std::to_string(exec->num_threads) + " threads over CandInit(?" +
             q.vertices()[uinit].name +
             ") chunks, deterministic chunk-order merge (rows bit-identical "
             "to serial)\n";
    } else {
      out += "Parallel online stage: serial (num_threads=" +
             std::to_string(exec->num_threads < 1 ? 1 : exec->num_threads) +
             ")\n";
    }

    // Result representation the options select for THIS plan (kAuto
    // factorizes exactly when the decomposition has satellites to group).
    const bool factorized = UseFactorizedForm(exec->result_form, plan);
    out += "Result form: ";
    out += factorized ? "factorized" : "flat";
    if (exec->result_form == ResultForm::kAuto) out += " (auto)";
    out += "\n";

    if (stats != nullptr && stats->groups_emitted > 0) {
      out += "  groups emitted: " + std::to_string(stats->groups_emitted) +
             ", rows represented: " +
             std::to_string(stats->factorized_rows_represented) +
             ", rows expanded: " + std::to_string(stats->rows_expanded);
      if (stats->rows_expanded == 0) {
        out += " (never expanded)";
      } else {
        char ratio[32];
        std::snprintf(ratio, sizeof(ratio), " (%.2fx)",
                      static_cast<double>(stats->factorized_rows_represented) /
                          static_cast<double>(stats->rows_expanded));
        out += ratio;
      }
      out += "\n";
    }
  }

  for (size_t ci = 0; ci < plan.components.size(); ++ci) {
    const ComponentPlan& cp = plan.components[ci];
    out += "Component " + std::to_string(ci) + " matching order:\n";
    for (size_t i = 0; i < cp.core_order.size(); ++i) {
      const uint32_t u = cp.core_order[i];
      out += (i == 0) ? "  [init] " : "  [" + std::to_string(i) + "]    ";
      out += "?" + q.vertices()[u].name;
      if (!cp.satellites[i].empty()) {
        out += "  satellites:";
        for (uint32_t s : cp.satellites[i]) {
          out += " ?" + q.vertices()[s].name;
        }
      }
      if (i == 0 && indexes != nullptr) {
        const Synopsis syn = q.VertexSynopsis(u);
        out += "  |C^S| = " +
               std::to_string(indexes->signature.Candidates(syn).size());
      }
      out += "\n";
    }
  }

  out += "Vertex detail:\n";
  for (uint32_t u = 0; u < q.NumVertices(); ++u) {
    AppendVertexLine(q, u, dicts, plan, indexes, &out);
  }
  return out;
}

}  // namespace amber
