#include "core/parallel_exec.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <latch>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>

#include "core/matcher.h"
#include "util/fault_injector.h"
#include "util/thread_pool.h"

namespace amber {

namespace {

// Chunks per worker in the shared queue. More chunks than workers gives
// work-stealing-style load balancing (a worker that drew a cheap chunk
// claims another) without the merge cost growing past O(#chunks).
constexpr size_t kChunksPerWorker = 8;

/// Counting sink with a shared row budget: the local count is exact (summed
/// at merge time), while the shared counter lets every worker stop as soon
/// as the fleet has counted `cap` rows in total — for counting, the result
/// is min(sum, cap) regardless of *which* rows were counted, so a global
/// (unordered) budget preserves determinism.
class BudgetCountingSink : public EmbeddingSink {
 public:
  BudgetCountingSink(uint64_t cap, std::atomic<uint64_t>* global)
      : cap_(cap), global_(global) {}

  bool wants_rows() const override { return false; }
  bool OnRow(std::span<const VertexId>) override { return OnCount(1); }
  bool OnCount(uint64_t count) override {
    local_ = SaturatingAdd(local_, count);
    if (cap_ == 0) return true;
    // Increments are clamped to the cap so the shared counter cannot wrap
    // even with saturated satellite products.
    const uint64_t inc = std::min(count, cap_);
    const uint64_t total =
        global_->fetch_add(inc, std::memory_order_relaxed) + inc;
    return total < cap_;
  }

  uint64_t count() const { return local_; }

 private:
  uint64_t cap_;
  std::atomic<uint64_t>* global_;
  uint64_t local_ = 0;
};

/// Collects up to `cap` rows for one chunk, aborting early when the
/// *completed prefix of earlier chunks* already holds the full cap — those
/// rows shadow anything this chunk could contribute, so stopping cannot
/// change the merged output (the ordered early-cutoff of the determinism
/// contract).
class OrderedChunkSink : public EmbeddingSink {
 public:
  OrderedChunkSink(uint64_t cap, const std::atomic<uint64_t>* prefix_rows,
                   std::vector<std::vector<VertexId>>* out)
      : cap_(cap), prefix_rows_(prefix_rows), out_(out) {}

  bool wants_rows() const override { return true; }
  bool OnRow(std::span<const VertexId> row) override {
    if (cap_ != 0 &&
        prefix_rows_->load(std::memory_order_acquire) >= cap_) {
      return false;
    }
    out_->emplace_back(row.begin(), row.end());
    return cap_ == 0 || out_->size() < cap_;
  }
  bool OnCount(uint64_t) override { return true; }  // unused in row mode

 private:
  uint64_t cap_;
  const std::atomic<uint64_t>* prefix_rows_;
  std::vector<std::vector<VertexId>>* out_;
};

/// \brief The ordered, bounded-memory fan-in of the streaming mode.
///
/// Chunk workers push rows via OnRow(chunk, row); the streamer forwards
/// them to the consumer in exact chunk order (== serial order). The *head*
/// chunk — the first one not yet fully drained — streams through
/// immediately; later chunks buffer locally and their producers BLOCK once
/// the per-chunk soft cap is hit, so peak buffered memory is bounded by
/// O(num_chunks × buffer_rows) regardless of result cardinality.
///
/// Single-emitter protocol: whichever thread finds the head drainable and
/// no emitter active becomes the emitter, drains batches with the lock
/// released, and re-checks under the lock before retiring — any row
/// buffered meanwhile is either seen by the active emitter or pumped by
/// its own producer after `emitting_` clears (both transitions happen
/// under `mu_`, so no row can be stranded). Consecutive emitters hand off
/// through `mu_`, so the consumer callback is serialized with
/// happens-before edges despite running on different worker threads.
///
/// Blocked producers wake on: space freed, head advance, stop, or (via
/// bounded wait slices) deadline expiry / cancellation — a stuck consumer
/// can therefore never deadlock a timed or cancelled query.
class OrderedStreamer {
 public:
  enum class StopReason { kNone, kConsumer, kCap, kAbort };

  OrderedStreamer(size_t num_chunks, uint64_t buffer_rows, uint64_t cap,
                  bool distinct, const Deadline& deadline,
                  CancellationToken cancel, ParallelStreamSink* sink)
      : slots_(num_chunks),
        buffer_rows_(std::max<uint64_t>(1, buffer_rows)),
        cap_(cap),
        distinct_(distinct),
        deadline_(deadline),
        cancel_(std::move(cancel)),
        sink_(sink) {}

  /// Called by chunk `c`'s worker for every row it produces (chunk-locally
  /// deduplicated already under DISTINCT). Returns false when the stream
  /// stopped — the worker's sink unwinds its Run.
  bool OnRow(size_t c, std::span<const VertexId> row) {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      if (stopped_) return false;
      // The head chunk may always buffer: its rows are immediately
      // drainable, so its producer must never block (deadlock freedom —
      // someone can always make progress towards draining the head).
      if (c == head_) break;
      if (slots_[c].buf.size() < buffer_rows_) break;
      if (cancel_.cancelled() || deadline_.Expired()) {
        StopLocked(StopReason::kAbort);
        return false;
      }
      cv_.wait_for(lock, std::chrono::milliseconds(2));
    }
    slots_[c].buf.emplace_back(row.begin(), row.end());
    if (c == head_ && !emitting_) PumpLocked(lock);
    return !stopped_;
  }

  /// Marks chunk `c` exhausted (its worker finished or skipped it).
  void FinishChunk(size_t c) {
    std::unique_lock<std::mutex> lock(mu_);
    slots_[c].done = true;
    if (!emitting_) PumpLocked(lock);
    cv_.notify_all();
  }

  /// Stops the stream (worker error, timeout, cancellation): wakes every
  /// blocked producer; subsequent OnRow calls return false.
  void Abort() {
    std::lock_guard<std::mutex> lock(mu_);
    StopLocked(StopReason::kAbort);
  }

  bool stopped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stopped_;
  }
  /// All chunks fully drained into the consumer.
  bool complete() const {
    std::lock_guard<std::mutex> lock(mu_);
    return head_ == slots_.size();
  }
  /// Rows delivered to the consumer (post-dedup under DISTINCT).
  uint64_t emitted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return emitted_;
  }
  StopReason stop_reason() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stop_reason_;
  }

 private:
  struct Slot {
    std::vector<std::vector<VertexId>> buf;
    bool done = false;
  };

  void StopLocked(StopReason reason) {
    if (!stopped_) {
      stopped_ = true;
      stop_reason_ = reason;
    }
    cv_.notify_all();
  }

  /// The emitter loop. Precondition: `lock` held, `emitting_` false.
  /// Drains the head chunk batch-wise (lock released around the consumer
  /// callback), advancing the head past finished chunks, until nothing is
  /// drainable — checked under the lock *while still holding the emitter
  /// role*, so a producer that buffered concurrently either gets drained
  /// here or finds `emitting_` false and pumps itself.
  void PumpLocked(std::unique_lock<std::mutex>& lock) {
    emitting_ = true;
    while (!stopped_) {
      Slot& s = slots_[head_];
      if (!s.buf.empty()) {
        std::vector<std::vector<VertexId>> batch;
        batch.swap(s.buf);
        lock.unlock();
        bool ok = true;
        for (const std::vector<VertexId>& r : batch) {
          if (distinct_ && !seen_.insert(RowDedupKey(r)).second) continue;
          ++emitted_pump_;
          if (!sink_->emit(r)) {
            ok = false;
            reason_pump_ = StopReason::kConsumer;
            break;
          }
          if (cap_ != 0 && emitted_pump_ >= cap_) {
            ok = false;
            reason_pump_ = StopReason::kCap;
            break;
          }
        }
        lock.lock();
        emitted_ = emitted_pump_;
        if (!ok) {
          StopLocked(reason_pump_);
          break;
        }
        cv_.notify_all();  // buffer space freed
        continue;
      }
      if (s.done) {
        ++head_;
        if (head_ == slots_.size()) break;  // stream complete
        cv_.notify_all();  // the new head may drain / stop blocking
        continue;
      }
      break;  // head still running with an empty buffer: nothing to drain
    }
    emitting_ = false;
    cv_.notify_all();
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  const uint64_t buffer_rows_;
  const uint64_t cap_;
  const bool distinct_;
  const Deadline deadline_;
  const CancellationToken cancel_;
  ParallelStreamSink* const sink_;

  size_t head_ = 0;       // first chunk not fully drained
  bool emitting_ = false;  // a thread currently owns the emitter role
  bool stopped_ = false;
  StopReason stop_reason_ = StopReason::kNone;
  uint64_t emitted_ = 0;
  // Emitter-private mirrors, touched only while holding the emitter role
  // (updated without the lock during a batch, published under it).
  uint64_t emitted_pump_ = 0;
  StopReason reason_pump_ = StopReason::kNone;
  std::unordered_set<std::string> seen_;  // DISTINCT global dedup
};

/// Per-chunk adapter feeding the OrderedStreamer. Under DISTINCT it
/// pre-deduplicates chunk-locally (first-occurrence order, which the
/// emitter's global dedup then refines across chunks) so buffered
/// duplicates never occupy backpressure budget. `cap` bounds forwarded
/// rows per chunk — a chunk can never contribute more than the full cap to
/// the merged prefix, so stopping there cannot change the output.
class StreamChunkSink : public EmbeddingSink {
 public:
  StreamChunkSink(OrderedStreamer* streamer, size_t chunk, bool dedup,
                  uint64_t cap)
      : streamer_(streamer), chunk_(chunk), dedup_(dedup), cap_(cap) {}

  bool wants_rows() const override { return true; }
  bool OnRow(std::span<const VertexId> row) override {
    if (dedup_ && !seen_.insert(RowDedupKey(row)).second) return true;
    if (!streamer_->OnRow(chunk_, row)) return false;
    ++forwarded_;
    return cap_ == 0 || forwarded_ < cap_;
  }
  bool OnCount(uint64_t) override { return true; }  // row mode only

 private:
  OrderedStreamer* streamer_;
  size_t chunk_;
  bool dedup_;
  uint64_t cap_;
  uint64_t forwarded_ = 0;
  std::unordered_set<std::string> seen_;
};

/// Factorized chunk sink: groups flow into the chunk-local builder, with
/// the same ordered early-cutoff OrderedChunkSink applies to rows — a
/// chunk stops once the finished prefix of earlier chunks already covers
/// the cap in represented-row units (non-DISTINCT only; DISTINCT chunks
/// pass a null prefix and rely on their builder's exact local total).
class FactorizedChunkSink : public FactorizedSink {
 public:
  FactorizedChunkSink(FactorizedBuilder* builder,
                      const std::atomic<uint64_t>* prefix_rows, uint64_t cap)
      : FactorizedSink(builder), prefix_rows_(prefix_rows), cap_(cap) {}

  bool OnRow(std::span<const VertexId> row) override {
    if (Shadowed()) return false;
    return FactorizedSink::OnRow(row);
  }
  bool OnGroup(const EmbeddingGroupView& view) override {
    if (Shadowed()) return false;
    return FactorizedSink::OnGroup(view);
  }

 private:
  bool Shadowed() const {
    return cap_ != 0 && prefix_rows_ != nullptr &&
           prefix_rows_->load(std::memory_order_acquire) >= cap_;
  }

  const std::atomic<uint64_t>* prefix_rows_;
  uint64_t cap_;
};

}  // namespace

Result<ParallelRunResult> RunMatcherParallel(
    const Multigraph& g, const IndexSet& indexes, const QueryGraph& q,
    const QueryPlan& plan, const ExecOptions& options, uint64_t cap,
    ExecStats* stats, std::vector<std::vector<VertexId>>* materialize_into,
    ParallelStreamSink* stream, ParallelFactorizeRequest* factorize) {
  const bool distinct = q.distinct();
  const bool streaming = stream != nullptr;
  const bool factorizing = factorize != nullptr;
  const bool want_rows =
      materialize_into != nullptr || streaming || factorizing;

  // ONE absolute deadline for the whole query, shared by every chunk Run:
  // ExecOptions::timeout is a per-query budget, exactly as in serial mode.
  const Deadline deadline = Deadline::After(options.timeout);

  ParallelRunResult out;

  // Ground checks and CandInit run once, on the calling thread (workers
  // skip both). The root matcher never Runs, so its hot-path counters are
  // flushed here to keep serial and parallel stats in agreement.
  Matcher root_matcher(g, indexes, q, plan, options);
  if (!root_matcher.GroundChecksPass()) {
    root_matcher.FlushHotPathStats(stats);
    return out;  // a constant pattern is absent => no rows
  }
  const std::vector<VertexId> root =
      root_matcher.ComputeRootCandidates(deadline, options.cancel);
  stats->initial_candidates = root.size();
  root_matcher.FlushHotPathStats(stats);
  if (const Matcher::InterruptKind k = root_matcher.pending_interrupt();
      k != Matcher::InterruptKind::kNone) {
    // The root CandInit scan itself was cut short: the candidate list is
    // partial, so executing over it would silently drop results. Report
    // the interrupt with zero rows instead, exactly like a pre-execution
    // expiry on the serial path.
    if (k == Matcher::InterruptKind::kCancelled) {
      stats->cancelled = true;
    } else {
      stats->timed_out = true;
    }
    return out;
  }

  if (root.empty()) return out;  // component 0 unmatchable => no rows

  const size_t num_workers =
      std::min<size_t>(static_cast<size_t>(options.num_threads), root.size());
  const size_t target_chunks =
      std::min(root.size(), num_workers * kChunksPerWorker);
  const size_t chunk_size = (root.size() + target_chunks - 1) / target_chunks;
  const size_t num_chunks = (root.size() + chunk_size - 1) / chunk_size;

  // Per-chunk output slots: written by exactly one worker, read after the
  // pool barrier (ThreadPool::Wait provides the happens-before edge).
  struct ChunkOut {
    std::vector<std::vector<VertexId>> rows;  // materializing modes
    std::unordered_set<std::string> keys;     // DISTINCT count-only mode
    uint64_t count = 0;                       // plain counting mode
    FactorizedResult fact;                    // factorized mode
  };
  std::vector<ChunkOut> chunks(num_chunks);
  std::vector<ExecStats> worker_stats(num_workers);
  std::vector<Status> worker_status(num_workers);

  std::atomic<size_t> next_chunk{0};
  // Counting budget: rows counted by the whole fleet (counting mode only).
  std::atomic<uint64_t> counted{0};
  // Ordered cutoff state: rows produced by the longest fully-finished
  // prefix of chunks. Guarded by prefix_mu; published via prefix_rows.
  std::mutex prefix_mu;
  std::vector<uint8_t> chunk_done(num_chunks, 0);
  std::vector<uint64_t> chunk_row_counts(num_chunks, 0);
  size_t prefix_next = 0;
  uint64_t prefix_total = 0;
  std::atomic<uint64_t> prefix_rows{0};

  // Streaming fan-in (stream mode only): ordered delivery with per-chunk
  // bounded buffers; replaces the materialize-then-merge machinery.
  std::optional<OrderedStreamer> streamer;
  if (streaming) {
    streamer.emplace(num_chunks, options.stream_chunk_buffer_rows, cap,
                     distinct, deadline, options.cancel, stream);
  }

  auto finish_chunk = [&](size_t c, uint64_t rows_produced) {
    std::lock_guard<std::mutex> lock(prefix_mu);
    chunk_row_counts[c] = rows_produced;
    chunk_done[c] = 1;
    while (prefix_next < num_chunks && chunk_done[prefix_next]) {
      prefix_total = SaturatingAdd(prefix_total, chunk_row_counts[prefix_next]);
      ++prefix_next;
    }
    prefix_rows.store(prefix_total, std::memory_order_release);
  };

  auto worker = [&](size_t wi) {
    // One scratch arena per worker, reused across every chunk it claims:
    // caches (LocalCandidates, component CandInit) stay warm and the
    // steady-state recursion stays allocation-free.
    MatcherScratch scratch(g, indexes, q, plan, options);
    Matcher matcher(g, indexes, q, plan, options, &scratch);
    while (true) {
      const size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      // Cooperative gate BEFORE the chunk starts: once the token trips or
      // the shared deadline fires, claimed-but-unstarted chunks are
      // abandoned (and unclaimed ones never start) — the worker records
      // the interrupt so the merged stats classify the partial result.
      if (options.cancel.cancelled() || deadline.Expired()) {
        if (options.cancel.cancelled()) {
          worker_stats[wi].cancelled = true;
        } else {
          worker_stats[wi].timed_out = true;
        }
        if (streaming) streamer->Abort();
        break;
      }
      // A stopped stream (consumer stop / cap / abort) shadows every
      // remaining chunk.
      if (streaming && streamer->stopped()) break;
      // Per-chunk fault site: a firing poisons this worker's status (the
      // whole query fails, exactly like an organic chunk error) but still
      // marks the chunk finished so sibling workers' prefix accounting
      // never deadlocks on it.
      if (Status fault =
              FaultInjector::Global().Inject(faults::kParallelChunk);
          !fault.ok()) {
        worker_status[wi] = std::move(fault);
        if (streaming) {
          // Abort BEFORE marking the chunk done: FinishChunk on a live
          // stream could advance the head past this (rowless) chunk and
          // emit a later chunk's rows, breaking the prefix guarantee.
          streamer->Abort();
          streamer->FinishChunk(c);
        } else {
          finish_chunk(c, 0);
        }
        break;
      }
      const size_t begin = c * chunk_size;
      const size_t end = std::min(root.size(), begin + chunk_size);
      const std::span<const VertexId> slice(root.data() + begin, end - begin);

      // Early cutoff. Counting: once the fleet has counted `cap` rows the
      // result is pinned at the cap, so remaining chunks are moot.
      // Materializing: a chunk is shadowed only when *earlier* chunks
      // (a superset of the finished prefix, which never reaches an
      // in-flight chunk) already hold the cap. DISTINCT chunks always run:
      // cross-chunk duplicates make their contribution unknowable here.
      if (!streaming && cap != 0 && !distinct) {
        const bool moot =
            want_rows
                ? prefix_rows.load(std::memory_order_acquire) >= cap
                : counted.load(std::memory_order_relaxed) >= cap;
        if (moot) {
          finish_chunk(c, 0);
          continue;
        }
      }

      Matcher::RunControl control;
      control.root_candidates = slice;
      control.deadline = deadline;
      control.skip_ground_checks = true;  // gated once, before dispatch

      Status status;
      uint64_t produced = 0;
      if (streaming) {
        // Stream mode: rows flow straight into the ordered fan-in (which
        // enforces order, backpressure, the cap, and — under DISTINCT —
        // the global dedup). The prefix machinery is idle here.
        control.bag_multiplicity = !distinct;
        StreamChunkSink sink(&*streamer, c, distinct, cap);
        status = matcher.Run(&sink, &worker_stats[wi], control);
        streamer->FinishChunk(c);
      } else if (factorizing) {
        // Factorized mode: collect raw groups chunk-locally. The chunk
        // builder is DISTINCT-aware only when a cap can stop it early —
        // its exact local total is what makes that stop safe (a chunk
        // holding `cap` local-distinct rows can never owe the merge more);
        // without a cap the collision bookkeeping would be wasted work
        // (the merge recomputes it from the raw groups anyway).
        control.bag_multiplicity = !distinct;
        FactorizedBuilder builder(factorize->num_slots, factorize->slot_list,
                                  distinct && cap != 0, cap);
        FactorizedChunkSink sink(&builder, distinct ? nullptr : &prefix_rows,
                                 cap);
        status = matcher.Run(&sink, &worker_stats[wi], control);
        worker_stats[wi].rows_expanded += builder.rows_expanded();
        chunks[c].fact = builder.Finish();
        produced = chunks[c].fact.total_rows;
      } else if (distinct) {
        // Local dedup per chunk. A chunk never contributes more than `cap`
        // unique rows: at most |merged prefix| of its first cap
        // local-uniques can be shadowed by earlier chunks, and the merge
        // takes at most cap - |merged prefix| new rows from it. The merge
        // needs rows (in local first-occurrence order) when materializing,
        // but only the key set when counting — |union| is order-free.
        control.bag_multiplicity = false;
        DistinctSink sink(/*keep_rows=*/want_rows, cap);
        status = matcher.Run(&sink, &worker_stats[wi], control);
        if (want_rows) {
          chunks[c].rows = sink.TakeRows();
          produced = chunks[c].rows.size();
        } else {
          chunks[c].keys = sink.TakeSeen();
          produced = chunks[c].keys.size();
        }
      } else if (want_rows) {
        OrderedChunkSink sink(cap, &prefix_rows, &chunks[c].rows);
        status = matcher.Run(&sink, &worker_stats[wi], control);
        produced = chunks[c].rows.size();
      } else {
        BudgetCountingSink sink(cap, &counted);
        status = matcher.Run(&sink, &worker_stats[wi], control);
        chunks[c].count = sink.count();
        produced = chunks[c].count;
      }
      if (!streaming) finish_chunk(c, produced);
      if (!status.ok()) {
        worker_status[wi] = std::move(status);
        if (streaming) streamer->Abort();
        break;
      }
      // Once the shared deadline fired (or the token tripped) there is no
      // point claiming further chunks; sibling workers notice the same
      // interrupt on their next claim or within one check interval inside
      // Run.
      if (worker_stats[wi].timed_out || worker_stats[wi].cancelled) {
        if (streaming) streamer->Abort();
        break;
      }
    }
  };

  if (options.pool != nullptr && num_workers > 1) {
    // Borrowed-pool mode (the serving runtime): helpers run as plain tasks
    // on the caller-owned shared pool, so no threads are spawned per query
    // and many concurrent queries can multiplex one pool. Completion is
    // tracked per query with a latch — ThreadPool::Wait() is a whole-pool
    // barrier and would wait on *other* queries' tasks too. A helper that
    // starts late (pool busy) just finds the chunk queue drained and
    // returns; worker 0 (the calling thread) always makes progress, so a
    // query never waits on another query to be admitted to the pool.
    std::latch done(static_cast<ptrdiff_t>(num_workers - 1));
    for (size_t w = 1; w < num_workers; ++w) {
      const bool submitted = options.pool->Submit([&worker, &done, w] {
        worker(w);
        done.count_down();
      });
      // A shut-down pool accepts nothing; run without that helper.
      if (!submitted) done.count_down();
    }
    worker(0);
    // The latch is both the completion barrier and the happens-before edge
    // publishing every helper's chunk outputs to this thread.
    done.wait();
  } else {
    // Spawn-per-query mode: the calling thread participates as worker 0;
    // the transient pool only holds the helpers. This saves one thread
    // spawn per query and keeps the caller's core busy.
    std::optional<ThreadPool> pool;
    if (num_workers > 1) {
      pool.emplace(num_workers - 1);
      for (size_t w = 1; w < num_workers; ++w) {
        pool->Submit([&worker, w] { worker(w); });
      }
    }
    worker(0);
    if (pool.has_value()) pool->Wait();
  }

  for (size_t w = 0; w < num_workers; ++w) {
    AMBER_RETURN_IF_ERROR(worker_status[w]);
    // initial_candidates was attributed to the root computation above.
    worker_stats[w].initial_candidates = 0;
    stats->MergeFrom(worker_stats[w]);
  }
  stats->threads_used = std::max<uint64_t>(stats->threads_used, num_workers);
  stats->tasks_dispatched += num_chunks;

  if (streaming) {
    // Rows already left through the sink in serial order; only classify.
    out.rows = streamer->emitted();
    out.truncated = cap != 0 && out.rows >= cap;
    if (!streamer->complete() && !out.truncated &&
        streamer->stop_reason() != OrderedStreamer::StopReason::kConsumer) {
      // The stream was cut short by neither the consumer nor the cap:
      // attribute the partial prefix to the token or the deadline (covers
      // producers that unwound through a sink-stop before their own tick
      // check could classify the interrupt).
      if (options.cancel.cancelled()) {
        stats->cancelled = true;
      } else if (deadline.Expired()) {
        stats->timed_out = true;
      }
    }
    return out;
  }

  if (factorizing) {
    // Re-feed every chunk's groups, in chunk order, through one global
    // builder — the code path the serial FactorizedSink drives — so
    // collision flags, exact totals and the cap cut land identically to a
    // serial run. A chunk that stopped early always holds at least as many
    // (distinct) rows as the merge can still take below the cap, so the
    // merge never runs out of groups it would have needed.
    FactorizedBuilder merged(factorize->num_slots, factorize->slot_list,
                             distinct, cap);
    bool open = true;
    for (ChunkOut& chunk : chunks) {
      if (!open) break;
      for (FactorizedResult::Group& grp : chunk.fact.groups) {
        if (!merged.Add(std::move(grp))) {
          open = false;
          break;
        }
      }
    }
    factorize->rows_expanded = merged.rows_expanded();
    FactorizedResult merged_result = merged.Finish();
    out.rows = cap == 0 ? merged_result.total_rows
                        : std::min(merged_result.total_rows, cap);
    out.truncated = merged_result.truncated;
    *factorize->out = std::move(merged_result);
    return out;
  }

  // Deterministic merge: chunk order == root candidate order == the order
  // serial enumeration visits, so these walks reproduce serial output
  // byte for byte. `truncated` mirrors the serial sinks: set exactly when
  // the merged row count reaches the cap.
  if (distinct && want_rows) {
    std::unordered_set<std::string> seen;
    uint64_t count = 0;
    for (ChunkOut& chunk : chunks) {
      if (cap != 0 && count >= cap) break;
      for (auto& row : chunk.rows) {
        if (!seen.insert(RowDedupKey(row)).second) continue;
        ++count;
        materialize_into->push_back(std::move(row));
        if (cap != 0 && count >= cap) {
          out.truncated = true;
          break;
        }
      }
    }
    out.rows = count;
  } else if (distinct) {
    // Count-only DISTINCT: |union of per-chunk key sets| is independent of
    // merge order, so splice the sets instead of replaying rows.
    std::unordered_set<std::string> seen;
    for (ChunkOut& chunk : chunks) {
      seen.merge(chunk.keys);
    }
    uint64_t count = seen.size();
    if (cap != 0 && count >= cap) {
      count = cap;
      out.truncated = true;
    }
    out.rows = count;
  } else if (want_rows) {
    uint64_t count = 0;
    for (ChunkOut& chunk : chunks) {
      if (cap != 0 && count >= cap) break;
      for (auto& row : chunk.rows) {
        materialize_into->push_back(std::move(row));
        ++count;
        if (cap != 0 && count >= cap) {
          out.truncated = true;
          break;
        }
      }
    }
    out.rows = count;
  } else {
    uint64_t total = 0;
    for (const ChunkOut& chunk : chunks) {
      total = SaturatingAdd(total, chunk.count);
    }
    if (cap != 0 && total >= cap) {
      total = cap;
      out.truncated = true;
    }
    out.rows = total;
  }
  return out;
}

}  // namespace amber
