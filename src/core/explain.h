// EXPLAIN facility: a human-readable account of how AMbER would execute a
// query — the query multigraph, the core/satellite decomposition, the
// matching order with ranking values, per-vertex constraint summaries and
// the initial candidate estimate from the S index. Production engines live
// and die by their EXPLAIN; it also makes the Section 3/5 machinery
// observable in tests and examples.

#ifndef AMBER_CORE_EXPLAIN_H_
#define AMBER_CORE_EXPLAIN_H_

#include <string>

#include "core/exec.h"
#include "core/query_plan.h"
#include "index/index_set.h"
#include "sparql/ast.h"
#include "sparql/query_graph.h"
#include "util/status.h"

namespace amber {

/// Renders the execution plan of `query` against data described by `dicts`
/// (and, when `indexes` is non-null, initial candidate counts from S).
/// When `exec` is non-null, also reports how the parallel online stage
/// would run under those execution options (partition unit, worker count,
/// determinism contract) — or that execution stays serial — and which
/// result form (flat rows vs factorized answer graph) the options select
/// for this plan. When `stats` is additionally non-null, reports the
/// factorization outcome of an actual execution: groups emitted, rows
/// represented vs expanded, and the compression ratio.
Result<std::string> ExplainQuery(const SelectQuery& query,
                                 const RdfDictionaries& dicts,
                                 const IndexSet* indexes,
                                 const PlanOptions& options = {},
                                 const ExecOptions* exec = nullptr,
                                 const ExecStats* stats = nullptr);

}  // namespace amber

#endif  // AMBER_CORE_EXPLAIN_H_
