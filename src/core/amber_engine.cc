#include "core/amber_engine.h"

#include "core/factorized.h"
#include "core/matcher.h"
#include "core/parallel_exec.h"
#include "core/query_plan.h"
#include "rdf/ntriples.h"
#include "util/amf.h"
#include "util/clock.h"
#include "util/fault_injector.h"
#include "util/serde.h"
#include "util/thread_pool.h"

namespace amber {

namespace {
constexpr uint32_t kEngineMagic = 0x414D4245;  // "AMBE"
// v2: attribute-predicate dictionary + value index appended (FILTER
// pushdown artifacts).
constexpr uint32_t kEngineVersion = 2;

/// Serial streaming sink: forwards rows to `deliver` as the matcher finds
/// them, deduplicating (DISTINCT) and capping on delivered rows. The cap
/// counts rows the consumer accepted, so truncation means exactly "cap
/// delivered".
class StreamingSink : public EmbeddingSink {
 public:
  StreamingSink(bool dedup, uint64_t cap,
                const std::function<bool(std::span<const VertexId>)>& deliver)
      : dedup_(dedup), cap_(cap), deliver_(deliver) {}

  bool wants_rows() const override { return true; }
  bool OnRow(std::span<const VertexId> row) override {
    if (dedup_ && !seen_.insert(RowDedupKey(row)).second) return true;
    if (!deliver_(row)) return false;
    ++count_;
    return cap_ == 0 || count_ < cap_;
  }
  bool OnCount(uint64_t) override { return true; }  // row mode only

 private:
  bool dedup_;
  uint64_t cap_;
  const std::function<bool(std::span<const VertexId>)>& deliver_;
  uint64_t count_ = 0;
  std::unordered_set<std::string> seen_;
};
}  // namespace

Result<AmberEngine> AmberEngine::Build(const std::vector<Triple>& triples,
                                       const BuildOptions& options) {
  Stopwatch sw;
  AMBER_ASSIGN_OR_RETURN(EncodedDataset dataset,
                         EncodedDataset::Encode(triples));
  double encode_s = sw.ElapsedSeconds();
  AmberEngine engine = FromEncoded(std::move(dataset), options);
  engine.timings_.encode_seconds = encode_s;
  return engine;
}

AmberEngine AmberEngine::FromEncoded(EncodedDataset dataset,
                                     const BuildOptions& options) {
  AmberEngine engine;
  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(
        static_cast<size_t>(options.num_threads));
  }
  Stopwatch sw;
  engine.graph_ = Multigraph::FromDataset(dataset, pool.get());
  engine.timings_.graph_seconds = sw.ElapsedSeconds();
  sw.Reset();
  engine.indexes_ = IndexSet::Build(
      engine.graph_, dataset.attribute_values,
      dataset.dictionaries.attr_predicates().size(), pool.get());
  engine.timings_.index_seconds = sw.ElapsedSeconds();
  engine.dicts_ = std::move(dataset.dictionaries);
  return engine;
}

Result<AmberEngine> AmberEngine::BuildFromFile(const std::string& path) {
  AMBER_ASSIGN_OR_RETURN(std::vector<Triple> triples,
                         NTriplesParser::ParseFile(path));
  return Build(triples);
}

Result<uint64_t> AmberEngine::Execute(
    const SelectQuery& query, const ExecOptions& options, ExecStats* stats,
    std::vector<std::vector<VertexId>>* materialize_into) {
  // Transient-fault site: chaos tests inject kUnavailable / allocation
  // pressure here; the serving layer's retry policy treats the injected
  // Status exactly like an organic engine failure.
  AMBER_RETURN_IF_ERROR(
      FaultInjector::Global().Inject(faults::kEngineExecute));
  Stopwatch sw;
  AMBER_ASSIGN_OR_RETURN(QueryGraph qg, QueryGraph::Build(query, dicts_));
  const uint64_t cap = EffectiveRowCap(query, options);

  uint64_t rows = 0;
  if (!qg.unsatisfiable()) {
    // Selectivity-aware ordering only when pushdown is on, so the
    // post-filter ablation measures residual evaluation under the paper's
    // plan, not a different plan.
    QueryPlan plan = PlanQuery(qg, options.plan,
                               options.use_value_index ? &indexes_.value
                                                       : nullptr,
                               graph_.NumVertices());

    // The parallel mode covers every execution shape except fully ground
    // queries (no components => nothing to partition): results are
    // bit-identical to serial by the deterministic chunk-order merge of
    // parallel_exec.h.
    const bool parallel =
        options.num_threads > 1 && !plan.components.empty();
    if (materialize_into != nullptr &&
        UseFactorizedForm(options.result_form, plan)) {
      // Factorized route to the same flat rows: collect the answer graph,
      // then expand lazily up to the cap. Row order and truncation match
      // the direct sinks by construction (docs/ARCHITECTURE.md,
      // "Factorized answer graphs").
      const uint32_t num_slots =
          static_cast<uint32_t>(qg.projection().size());
      std::vector<uint32_t> slot_list =
          BuildSlotList(qg.projection(), plan.is_core);
      FactorizedResult fact;
      if (parallel) {
        ParallelFactorizeRequest req;
        req.num_slots = num_slots;
        req.slot_list = slot_list;
        req.out = &fact;
        AMBER_ASSIGN_OR_RETURN(
            ParallelRunResult pr,
            RunMatcherParallel(graph_, indexes_, qg, plan, options, cap,
                               stats, nullptr, nullptr, &req));
        stats->rows_expanded += req.rows_expanded;
        stats->truncated = stats->truncated || pr.truncated;
      } else {
        Matcher matcher(graph_, indexes_, qg, plan, options);
        FactorizedBuilder builder(num_slots, slot_list, qg.distinct(), cap);
        FactorizedSink fsink(&builder);
        AMBER_RETURN_IF_ERROR(
            matcher.Run(&fsink, stats, std::nullopt,
                        /*bag_multiplicity=*/!qg.distinct()));
        stats->rows_expanded += builder.rows_expanded();
        fact = builder.Finish();
        stats->truncated = stats->truncated || fact.truncated;
      }
      stats->bytes_factorized += fact.ByteSize();
      FactorizedResult::Cursor cur = fact.Expand();
      while ((cap == 0 || materialize_into->size() < cap) && cur.Next()) {
        materialize_into->emplace_back(cur.Row().begin(), cur.Row().end());
      }
      stats->rows_expanded += cur.rows_expanded();
      rows = materialize_into->size();
    } else if (parallel) {
      AMBER_ASSIGN_OR_RETURN(
          ParallelRunResult pr,
          RunMatcherParallel(graph_, indexes_, qg, plan, options, cap, stats,
                             materialize_into));
      rows = pr.rows;
      stats->truncated = stats->truncated || pr.truncated;
    } else {
      Matcher matcher(graph_, indexes_, qg, plan, options);
      if (materialize_into != nullptr) {
        if (qg.distinct()) {
          DistinctSink sink(/*keep_rows=*/true, cap);
          AMBER_RETURN_IF_ERROR(matcher.Run(&sink, stats, std::nullopt,
                                            /*bag_multiplicity=*/false));
          *materialize_into = sink.TakeRows();
          rows = sink.count();
        } else {
          CollectingSink sink(cap);
          AMBER_RETURN_IF_ERROR(matcher.Run(&sink, stats));
          *materialize_into = std::move(sink.TakeRows());
          rows = materialize_into->size();
        }
      } else if (qg.distinct()) {
        DistinctSink sink(/*keep_rows=*/false, cap);
        AMBER_RETURN_IF_ERROR(matcher.Run(&sink, stats, std::nullopt,
                                          /*bag_multiplicity=*/false));
        rows = sink.count();
      } else {
        CountingSink sink(cap);
        AMBER_RETURN_IF_ERROR(matcher.Run(&sink, stats));
        rows = sink.count();
      }
    }
  }

  stats->rows = rows;
  stats->elapsed_ms = sw.ElapsedMillis();
  return rows;
}

Result<CountResult> AmberEngine::Count(const SelectQuery& query,
                                       const ExecOptions& options) {
  CountResult result;
  AMBER_ASSIGN_OR_RETURN(result.count,
                         Execute(query, options, &result.stats, nullptr));
  return result;
}

Result<MaterializedRows> AmberEngine::Materialize(const SelectQuery& query,
                                                  const ExecOptions& options) {
  MaterializedRows result;
  std::vector<std::vector<VertexId>> raw;
  AMBER_RETURN_IF_ERROR(
      Execute(query, options, &result.stats, &raw).status());

  // Recover variable names in projection order.
  AMBER_ASSIGN_OR_RETURN(QueryGraph qg, QueryGraph::Build(query, dicts_));
  for (uint32_t u : qg.projection()) {
    result.var_names.push_back(qg.vertices()[u].name);
  }
  result.rows.reserve(raw.size());
  for (const auto& row : raw) {
    result.rows.push_back(TranslateRow(row));
  }
  return result;
}

Result<FactorizedRows> AmberEngine::Factorize(const SelectQuery& query,
                                              const ExecOptions& options) {
  Stopwatch sw;
  AMBER_ASSIGN_OR_RETURN(QueryGraph qg, QueryGraph::Build(query, dicts_));
  const uint64_t cap = EffectiveRowCap(query, options);
  const uint32_t num_slots = static_cast<uint32_t>(qg.projection().size());

  FactorizedRows out;
  for (uint32_t u : qg.projection()) {
    out.var_names.push_back(qg.vertices()[u].name);
  }

  if (qg.unsatisfiable()) {
    out.result.num_slots = num_slots;
    out.result.slot_list.assign(num_slots, kNoGroupList);
    out.result.distinct = qg.distinct();
    out.result.row_limit = cap;
    out.stats.elapsed_ms = sw.ElapsedMillis();
    return out;
  }

  QueryPlan plan = PlanQuery(qg, options.plan,
                             options.use_value_index ? &indexes_.value
                                                     : nullptr,
                             graph_.NumVertices());

  if (!UseFactorizedForm(options.result_form, plan)) {
    // Flat-resolved form: run the ordinary row pipeline (which owns the
    // fault site) and wrap each resolved row as a singleton group, so
    // every form hands back a usable answer-graph handle.
    std::vector<std::vector<VertexId>> raw;
    AMBER_RETURN_IF_ERROR(
        Execute(query, options, &out.stats, &raw).status());
    FactorizedBuilder builder(num_slots,
                              std::vector<uint32_t>(num_slots, kNoGroupList),
                              /*distinct=*/false, /*cap=*/0);
    for (std::vector<VertexId>& row : raw) {
      FactorizedResult::Group grp;
      grp.fixed = std::move(row);
      builder.Add(std::move(grp));
    }
    out.result = builder.Finish();
    out.result.distinct = qg.distinct();
    out.result.row_limit = cap;
    out.result.truncated = out.stats.truncated;
    out.stats.groups_emitted += out.result.groups.size();
    out.stats.factorized_rows_represented = SaturatingAdd(
        out.stats.factorized_rows_represented, out.result.total_rows);
    out.stats.bytes_factorized += out.result.ByteSize();
    out.stats.elapsed_ms = sw.ElapsedMillis();
    return out;
  }

  // Factorized form: groups come straight from the matcher. This path does
  // not pass through Execute, so it owns the transient-fault site.
  AMBER_RETURN_IF_ERROR(
      FaultInjector::Global().Inject(faults::kEngineExecute));
  std::vector<uint32_t> slot_list =
      BuildSlotList(qg.projection(), plan.is_core);
  const bool parallel = options.num_threads > 1 && !plan.components.empty();
  if (parallel) {
    ParallelFactorizeRequest req;
    req.num_slots = num_slots;
    req.slot_list = slot_list;
    req.out = &out.result;
    AMBER_ASSIGN_OR_RETURN(
        ParallelRunResult pr,
        RunMatcherParallel(graph_, indexes_, qg, plan, options, cap,
                           &out.stats, nullptr, nullptr, &req));
    out.stats.rows = pr.rows;
    out.stats.truncated = out.stats.truncated || pr.truncated;
    out.stats.rows_expanded += req.rows_expanded;
  } else {
    Matcher matcher(graph_, indexes_, qg, plan, options);
    FactorizedBuilder builder(num_slots, slot_list, qg.distinct(), cap);
    FactorizedSink fsink(&builder);
    AMBER_RETURN_IF_ERROR(matcher.Run(&fsink, &out.stats, std::nullopt,
                                      /*bag_multiplicity=*/!qg.distinct()));
    out.stats.rows_expanded += builder.rows_expanded();
    out.result = builder.Finish();
    out.stats.rows = cap == 0 ? out.result.total_rows
                              : std::min(out.result.total_rows, cap);
    out.stats.truncated = out.stats.truncated || out.result.truncated;
  }
  out.stats.bytes_factorized += out.result.ByteSize();
  out.stats.elapsed_ms = sw.ElapsedMillis();
  return out;
}

Result<StreamResult> AmberEngine::Stream(const SelectQuery& query,
                                         const ExecOptions& options,
                                         RowSink* sink) {
  // Same fault site as Execute: a streamed request fails identically to a
  // materializing one under chaos schedules.
  AMBER_RETURN_IF_ERROR(
      FaultInjector::Global().Inject(faults::kEngineExecute));
  Stopwatch sw;
  AMBER_ASSIGN_OR_RETURN(QueryGraph qg, QueryGraph::Build(query, dicts_));
  const uint64_t cap = EffectiveRowCap(query, options);

  StreamResult out;
  for (uint32_t u : qg.projection()) {
    out.var_names.push_back(qg.vertices()[u].name);
  }

  // Translation + forwarding. Never invoked concurrently (the serial
  // matcher is single-threaded; the parallel fan-in serializes its
  // emitter), so one reusable text buffer suffices.
  uint64_t delivered = 0;
  std::vector<std::string> row_text;
  auto deliver = [&](std::span<const VertexId> row) -> bool {
    row_text.clear();
    for (VertexId v : row) row_text.emplace_back(dicts_.VertexToken(v));
    if (!sink->OnRow(row_text)) {
      out.sink_stopped = true;
      return false;
    }
    ++delivered;
    return true;
  };
  const std::function<bool(std::span<const VertexId>)> deliver_fn = deliver;

  if (!qg.unsatisfiable()) {
    QueryPlan plan = PlanQuery(qg, options.plan,
                               options.use_value_index ? &indexes_.value
                                                       : nullptr,
                               graph_.NumVertices());
    const bool parallel =
        options.num_threads > 1 && !plan.components.empty();
    if (parallel) {
      ParallelStreamSink stream{deliver_fn};
      AMBER_RETURN_IF_ERROR(
          RunMatcherParallel(graph_, indexes_, qg, plan, options, cap,
                             &out.stats, nullptr, &stream)
              .status());
    } else {
      Matcher matcher(graph_, indexes_, qg, plan, options);
      StreamingSink ssink(qg.distinct(), cap, deliver_fn);
      AMBER_RETURN_IF_ERROR(matcher.Run(&ssink, &out.stats, std::nullopt,
                                        /*bag_multiplicity=*/!qg.distinct()));
    }
  }

  out.rows = delivered;
  out.stats.rows = delivered;
  // Uniform truncation semantics for streams: set exactly when the cap
  // stopped delivery (a sink stop or an interrupt is NOT a truncation).
  out.stats.truncated = cap != 0 && delivered >= cap;
  out.stats.elapsed_ms = sw.ElapsedMillis();
  return out;
}

std::vector<std::string> AmberEngine::TranslateRow(
    std::span<const VertexId> row) const {
  std::vector<std::string> out;
  out.reserve(row.size());
  for (VertexId v : row) {
    out.emplace_back(dicts_.VertexToken(v));
  }
  return out;
}

Status AmberEngine::Save(std::ostream& os) const {
  serde::WriteHeader(os, kEngineMagic, kEngineVersion);
  dicts_.Save(os);
  graph_.Save(os);
  indexes_.Save(os);
  if (!os.good()) return Status::IOError("failed writing engine artifacts");
  return Status::OK();
}

Result<AmberEngine> AmberEngine::Load(std::istream& is) {
  AMBER_RETURN_IF_ERROR(serde::CheckHeader(is, kEngineMagic, kEngineVersion));
  AmberEngine engine;
  AMBER_RETURN_IF_ERROR(engine.dicts_.Load(is));
  AMBER_RETURN_IF_ERROR(engine.graph_.Load(is));
  AMBER_RETURN_IF_ERROR(engine.indexes_.Load(is));
  return engine;
}

Status AmberEngine::SaveFile(const std::string& path) const {
  amf::Writer writer;
  dicts_.SaveAmf(&writer);
  graph_.SaveAmf(&writer);
  indexes_.SaveAmf(&writer);
  return writer.WriteTo(path);
}

Result<AmberEngine> AmberEngine::OpenFile(const std::string& path) {
  AMBER_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  auto mapping = std::make_shared<MappedFile>(std::move(file));
  AMBER_ASSIGN_OR_RETURN(amf::Reader reader,
                         amf::Reader::Open(mapping->data()));
  AmberEngine engine;
  AMBER_RETURN_IF_ERROR(engine.dicts_.LoadAmf(reader));
  AMBER_RETURN_IF_ERROR(engine.graph_.LoadAmf(reader));
  AMBER_RETURN_IF_ERROR(
      engine.indexes_.LoadAmf(reader, engine.graph_.NumVertices()));
  // Cross-component consistency: the indexes and dictionaries must cover
  // the graph's id spaces, or the first query indexes past their ends.
  if (engine.indexes_.neighborhood.NumVertices() !=
          engine.graph_.NumVertices() ||
      engine.indexes_.signature.NumVertices() !=
          engine.graph_.NumVertices()) {
    return Status::Corruption("index/graph vertex count mismatch");
  }
  if (engine.dicts_.vertices().size() < engine.graph_.NumVertices() ||
      engine.dicts_.edge_types().size() < engine.graph_.NumEdgeTypes() ||
      engine.dicts_.attributes().size() < engine.graph_.NumAttributes()) {
    return Status::Corruption("dictionary/graph id space mismatch");
  }
  if (engine.indexes_.value.NumAttributes() <
          engine.graph_.NumAttributes() ||
      engine.indexes_.value.NumPredicates() !=
          engine.dicts_.attr_predicates().size()) {
    return Status::Corruption("value index/dictionary id space mismatch");
  }
  engine.mapping_ = std::move(mapping);
  return engine;
}

}  // namespace amber
