#include "core/matcher.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

#include "core/factorized.h"

namespace amber {

namespace {

// Materialize-vs-probe cutover. A constraint's neighbour list is probed per
// candidate instead of materialized when its O(1) size bound exceeds the
// step's smallest bound by this factor — probing at most |smallest bound|
// candidates (each an O(log) trie seek on the candidate's own small trie)
// then beats walking and sorting a hub-sized list. Lists under the absolute
// floor are always materialized: they are nearly free to build and the
// galloping kernels handle them well.
constexpr uint32_t kProbeSkewFactor = 8;
constexpr uint32_t kProbeMinBound = 64;

template <typename T>
uint64_t VectorBytes(const std::vector<T>& v) {
  return static_cast<uint64_t>(v.capacity()) * sizeof(T);
}

}  // namespace

MatcherScratch::MatcherScratch(const Multigraph& g, const IndexSet& indexes,
                               const QueryGraph& q, const QueryPlan& plan,
                               const ExecOptions& options) {
  core_match.assign(q.NumVertices(), kInvalidId);
  sat_match.assign(q.NumVertices(), {});
  size_t total_depth = 0;
  for (const ComponentPlan& cp : plan.components) {
    depth_base.push_back(total_depth);
    total_depth += cp.core_order.size();
    for (const auto& sats : cp.satellites) {
      satellite_list.insert(satellite_list.end(), sats.begin(), sats.end());
    }
  }
  depths.resize(total_depth);
  row_buffer.resize(q.projection().size());

  local_state.assign(q.NumVertices(), LocalState::kUnknown);
  local_cache.resize(q.NumVertices());
  preds_pushed.resize(q.NumVertices());
  for (uint32_t u = 0; u < q.NumVertices(); ++u) {
    const std::vector<PredicateConstraint>& preds = q.vertices()[u].preds;
    preds_pushed[u].resize(preds.size(), 0);
    for (size_t i = 0; i < preds.size(); ++i) {
      preds_pushed[u][i] =
          options.use_value_index && plan.is_core[u] &&
          RangeScanWorthPushing(
              indexes.value.EstimateRange(preds[i].predicate,
                                          preds[i].comparisons),
              g.NumVertices());
    }
  }
  comp_cand_cached.assign(plan.components.size(), false);
  comp_cand_cache.resize(plan.components.size());

  // Projected satellites (unique), in first-appearance order; Emit()'s
  // odometer runs over these.
  for (uint32_t u : q.projection()) {
    if (!plan.is_core[u] &&
        std::find(expand.begin(), expand.end(), u) == expand.end()) {
      expand.push_back(u);
    }
  }
  pick.resize(expand.size());
  slot_list = BuildSlotList(q.projection(), plan.is_core);
  group_views.resize(expand.size());
}

uint64_t MatcherScratch::ArenaBytes() const {
  uint64_t total = 0;
  for (const DepthScratch& ds : depths) {
    total += VectorBytes(ds.constraints) + VectorBytes(ds.views) +
             VectorBytes(ds.cursors) + VectorBytes(ds.cand);
    for (const std::vector<VertexId>& list : ds.lists) {
      total += VectorBytes(list);
    }
  }
  for (const std::vector<VertexId>& list : sat_match) {
    total += VectorBytes(list);
  }
  for (const std::vector<VertexId>& list : local_cache) {
    total += VectorBytes(list);
  }
  for (const std::vector<VertexId>& list : comp_cand_cache) {
    total += VectorBytes(list);
  }
  total += VectorBytes(sat_tmp) + VectorBytes(range_tmp) +
           VectorBytes(core_match) + VectorBytes(row_buffer) +
           VectorBytes(pick) + nbr_scratch.ByteSize();
  return total;
}

Matcher::Matcher(const Multigraph& g, const IndexSet& indexes,
                 const QueryGraph& q, const QueryPlan& plan,
                 const ExecOptions& options, MatcherScratch* scratch)
    : g_(g),
      indexes_(indexes),
      q_(q),
      plan_(plan),
      options_(options),
      s_(scratch) {
  assert(s_ != nullptr);
}

Matcher::Matcher(const Multigraph& g, const IndexSet& indexes,
                 const QueryGraph& q, const QueryPlan& plan,
                 const ExecOptions& options)
    : g_(g),
      indexes_(indexes),
      q_(q),
      plan_(plan),
      options_(options),
      owned_scratch_(
          std::make_unique<MatcherScratch>(g, indexes, q, plan, options)),
      s_(owned_scratch_.get()) {}

Matcher::Flow Matcher::CheckInterruptNow() {
  // Token before clock: checking the token is one relaxed load, and a
  // cancelled query should report kCancelled even when its deadline
  // happens to expire in the same tick window.
  if (cancel_.cancelled()) return Flow::kCancelled;
  if (deadline_.Expired()) return Flow::kTimeout;
  return Flow::kContinue;
}

Matcher::Flow Matcher::CheckInterrupt() {
  // An interrupt recorded by a scan loop outranks the tick: it already
  // paid for the real check.
  if (pending_ != InterruptKind::kNone) return TakePendingInterrupt();
  // Amortize the clock read: every 64th check actually reads the clock
  // (and the cancellation token).
  if ((++deadline_tick_ & 63u) != 0) return Flow::kContinue;
  return CheckInterruptNow();
}

void Matcher::PollInterrupt() {
  if (pending_ != InterruptKind::kNone) return;
  if ((++deadline_tick_ & 63u) != 0) return;
  switch (CheckInterruptNow()) {
    case Flow::kCancelled:
      pending_ = InterruptKind::kCancelled;
      break;
    case Flow::kTimeout:
      pending_ = InterruptKind::kTimeout;
      break;
    default:
      break;
  }
}

Matcher::Flow Matcher::TakePendingInterrupt() {
  const InterruptKind kind = pending_;
  pending_ = InterruptKind::kNone;
  switch (kind) {
    case InterruptKind::kCancelled:
      return Flow::kCancelled;
    case InterruptKind::kTimeout:
      return Flow::kTimeout;
    default:
      return Flow::kContinue;
  }
}

void Matcher::PairCandidates(const QueryEdge& e, bool u_is_from, VertexId vn,
                             std::vector<VertexId>* out) {
  // u --types--> un: candidates must appear among vn's in-neighbours with a
  // superset multi-edge; un --types--> u: among vn's out-neighbours.
  const Direction d = u_is_from ? Direction::kIn : Direction::kOut;
  indexes_.neighborhood.SupersetNeighbors(vn, d, e.types, out,
                                          &s_->nbr_scratch);
}

void Matcher::ProbeFilter(const QueryEdge& e, bool u_is_from, VertexId vn,
                          std::vector<VertexId>* cand) {
  // Seen from a candidate c, the edge orientation flips: the query edge
  // leaving u makes vn an out-neighbour of c. Probing c's trie instead of
  // materializing vn's neighbour list is the whole point — c is one of few
  // surviving candidates and usually low-degree, vn is the hub.
  const Direction d = u_is_from ? Direction::kOut : Direction::kIn;
  s_->probe_checks += cand->size();
  std::erase_if(*cand, [&](VertexId c) {
    return !indexes_.neighborhood.Contains(c, d, e.types, vn,
                                           &s_->nbr_scratch);
  });
  s_->probe_hits += cand->size();
}

const std::vector<VertexId>* Matcher::CachedLocalCandidates(uint32_t u) {
  if (s_->local_state[u] == MatcherScratch::LocalState::kNone) return nullptr;
  if (s_->local_state[u] == MatcherScratch::LocalState::kCached) {
    return &s_->local_cache[u];
  }

  const QueryVertex& qv = q_.vertices()[u];
  // FILTER constraints only enter the cached list when pushed; residual
  // constraints are evaluated per candidate in RefineByVertex instead (a
  // satellite's paired candidates are usually far smaller than a range,
  // and a wide range costs more to materialize than to check).
  bool push_preds = false;
  for (size_t i = 0; i < qv.preds.size(); ++i) {
    if (ConstraintPushed(u, i)) {
      push_preds = true;
      break;
    }
  }
  if (qv.attrs.empty() && qv.iris.empty() && !push_preds) {
    s_->local_state[u] = MatcherScratch::LocalState::kNone;
    return nullptr;
  }
  // Cold path: computed once per query vertex per scratch, then served from
  // the cache for every subsequent refinement (RefineByVertex used to
  // recompute this per satellite per embedding).
  std::vector<VertexId>& result = s_->local_cache[u];
  result.clear();
  std::vector<VertexId> tmp;
  bool first = true;

  if (!qv.attrs.empty()) {
    result = indexes_.attribute.Candidates(qv.attrs);  // C^A_u
    first = false;
    PollInterrupt();
  }
  if (push_preds) {
    for (size_t i = 0; i < qv.preds.size(); ++i) {  // C^P_u
      if (!ConstraintPushed(u, i)) continue;  // residual, see below
      if (pending_ != InterruptKind::kNone) break;
      const PredicateConstraint& pc = qv.preds[i];
      ValueIndex::ScanStats scan_stats;
      if (first) {
        indexes_.value.RangeScan(pc.predicate, pc.comparisons, &result,
                                 &scan_stats);
        first = false;
      } else if (!result.empty()) {
        indexes_.value.RangeScan(pc.predicate, pc.comparisons, &s_->range_tmp,
                                 &scan_stats);
        IntersectInPlace(&result, std::span<const VertexId>(s_->range_tmp),
                         &s_->icounters);
      }
      s_->range_scans += scan_stats.scans;
      s_->range_scan_elements += scan_stats.elements;
      // Deadline/cancellation poll between range scans: one scan is the
      // interrupt granularity of CandInit, not the whole pipeline.
      PollInterrupt();
    }
  }
  auto refine = [&](VertexId anchor, Direction d,
                    std::span<const EdgeTypeId> types) {
    if (pending_ != InterruptKind::kNone) return;
    if (first) {
      indexes_.neighborhood.SupersetNeighbors(anchor, d, types, &result,
                                              &s_->nbr_scratch);
      first = false;
    } else if (!result.empty()) {
      tmp.clear();
      indexes_.neighborhood.SupersetNeighbors(anchor, d, types, &tmp,
                                              &s_->nbr_scratch);
      IntersectInPlace(&result, std::span<const VertexId>(tmp),
                       &s_->icounters);
    }
    PollInterrupt();
  };
  for (const IriConstraint& c : qv.iris) {  // C^I_u
    // u --out_types--> anchor: u is an in-neighbour of the anchor, and
    // anchor --in_types--> u: u is an out-neighbour of the anchor.
    if (!c.out_types.empty()) refine(c.anchor, Direction::kIn, c.out_types);
    if (!c.in_types.empty()) refine(c.anchor, Direction::kOut, c.in_types);
  }
  if (pending_ != InterruptKind::kNone) {
    // Interrupted mid-computation: hand back the partial list (the caller
    // aborts via CheckInterrupt) but do NOT cache it — a later run with a
    // fresh budget must recompute. local_state stays kUnknown.
    return &result;
  }
  s_->local_state[u] = MatcherScratch::LocalState::kCached;
  return &result;
}

void Matcher::RefineByVertex(uint32_t u, std::vector<VertexId>* cand) {
  if (cand->empty()) return;
  const std::vector<VertexId>* local = CachedLocalCandidates(u);
  if (local != nullptr) {
    IntersectInPlace(cand, std::span<const VertexId>(*local), &s_->icounters);
  }
  const QueryVertex& qv = q_.vertices()[u];
  if (!qv.self_types.empty()) {
    std::erase_if(*cand, [&](VertexId v) {
      return !g_.HasMultiEdgeSuperset(v, Direction::kOut, v, qv.self_types);
    });
  }
  // Residual FILTER evaluation: constraints not served by a pushed range
  // scan are checked per candidate against the vertex's own attributes.
  for (size_t i = 0; i < qv.preds.size(); ++i) {
    if (cand->empty()) break;
    if (ConstraintPushed(u, i)) continue;  // already intersected above
    const PredicateConstraint& pc = qv.preds[i];
    s_->predicate_checks += cand->size();
    std::erase_if(*cand, [&](VertexId v) {
      return !indexes_.value.VertexMatches(g_.Attributes(v), pc.predicate,
                                           pc.comparisons);
    });
  }
}

std::vector<VertexId> Matcher::InitialCandidates(uint32_t uinit) {
  const Synopsis syn = q_.VertexSynopsis(uinit);
  std::vector<VertexId> cand;
  if (options_.use_signature_index) {
    cand = indexes_.signature.Candidates(syn);  // QuerySynIndex via R-tree
  } else {
    // Ablation B: same complete filter, evaluated by a full scan. The scan
    // runs below the Recurse tick check, so it polls the deadline/token
    // itself — without this a large graph overshoots the budget by a full
    // O(V) pass before the first recursion step notices.
    cand.reserve(64);
    for (VertexId v = 0; v < g_.NumVertices(); ++v) {
      PollInterrupt();
      if (pending_ != InterruptKind::kNone) break;
      if (indexes_.signature.Of(v).Dominates(syn)) cand.push_back(v);
    }
  }
  if (pending_ == InterruptKind::kNone) RefineByVertex(uinit, &cand);
  return cand;
}

const std::vector<VertexId>& Matcher::CachedComponentCandidates(size_t ci) {
  // Components after the first are re-entered once per upstream embedding;
  // their CandInit does not depend on earlier assignments, so compute it
  // once per run.
  if (!s_->comp_cand_cached[ci]) {
    s_->comp_cand_cache[ci] =
        InitialCandidates(plan_.components[ci].core_order[0]);
    // Never cache a scan the deadline/token cut short — the next upstream
    // embedding (or a fresh run reusing this scratch) must recompute.
    if (pending_ == InterruptKind::kNone) s_->comp_cand_cached[ci] = true;
  }
  return s_->comp_cand_cache[ci];
}

std::vector<VertexId> Matcher::ComputeRootCandidates() {
  return ComputeRootCandidates(Deadline::After(options_.timeout),
                               options_.cancel);
}

std::vector<VertexId> Matcher::ComputeRootCandidates(
    const Deadline& deadline, const CancellationToken& cancel) {
  if (plan_.components.empty()) return {};
  deadline_ = deadline;
  cancel_ = cancel;
  deadline_tick_ = 0;
  pending_ = InterruptKind::kNone;
  return InitialCandidates(plan_.components[0].core_order[0]);
}

bool Matcher::MatchSatellites(const std::vector<uint32_t>& sats, uint32_t uc,
                              VertexId vc) {
  for (uint32_t us : sats) {
    std::vector<VertexId>& cand = s_->sat_match[us];
    cand.clear();
    const std::vector<std::pair<uint32_t, bool>>& incident =
        q_.IncidentEdges(us);

    // Seed from the smallest-bound incident edge (same cutover as the core
    // path), so a bidirectional satellite never materializes the hub side
    // of vc just because it came first in edge order.
    size_t seed = incident.size();
    size_t seed_bound = SIZE_MAX;
    for (size_t k = 0; k < incident.size(); ++k) {
      const Direction d =
          incident[k].second ? Direction::kIn : Direction::kOut;
      const size_t bound = indexes_.neighborhood.NeighborCount(vc, d);
      if (bound < seed_bound) {
        seed_bound = bound;
        seed = k;
      }
    }
    if (seed == incident.size()) {
      // Satellite without variable edges cannot occur (degree is 1), but
      // guard against it: fall back to local constraints only.
      const std::vector<VertexId>* local = CachedLocalCandidates(us);
      if (local != nullptr) cand.assign(local->begin(), local->end());
      if (cand.empty()) return false;
      continue;
    }

    PairCandidates(q_.edges()[incident[seed].first], incident[seed].second,
                   vc, &cand);
    ++s_->lists_materialized;
    for (size_t idx = 0; idx < incident.size() && !cand.empty(); ++idx) {
      if (idx == seed) continue;
      const auto& [edge_idx, us_is_from] = incident[idx];
      const QueryEdge& e = q_.edges()[edge_idx];
      const uint32_t other = us_is_from ? e.to : e.from;
      assert(other == uc);
      (void)uc;
      (void)other;
      // Further (bidirectional) satellite edges: probe the survivors when
      // the list is hub-sized relative to them, else materialize and
      // intersect in place.
      const Direction d = us_is_from ? Direction::kIn : Direction::kOut;
      const size_t bound = indexes_.neighborhood.NeighborCount(vc, d);
      if (bound > kProbeMinBound && bound / kProbeSkewFactor > cand.size()) {
        ProbeFilter(e, us_is_from, vc, &cand);
      } else {
        s_->sat_tmp.clear();
        PairCandidates(e, us_is_from, vc, &s_->sat_tmp);
        ++s_->lists_materialized;
        IntersectInPlace(&cand, std::span<const VertexId>(s_->sat_tmp),
                         &s_->icounters);
      }
    }
    RefineByVertex(us, &cand);
    if (cand.empty()) return false;  // no solution possible for this vc
  }
  return true;
}

Matcher::Flow Matcher::Emit() {
  ++stats_->embeddings_found;

  if (!sink_->wants_rows()) {
    // GenEmb fast path: |embeddings| = product of satellite set sizes —
    // counting is factorized by nature, so the group counters tick here
    // too and rows_expanded stays zero.
    uint64_t count = 1;
    for (uint32_t us : s_->satellite_list) {
      count = SaturatingMul(count, s_->sat_match[us].size());
    }
    ++stats_->groups_emitted;
    stats_->factorized_rows_represented =
        SaturatingAdd(stats_->factorized_rows_represented, count);
    return sink_->OnCount(count) ? Flow::kContinue : Flow::kStop;
  }

  // Projected satellites (expand) enumerate their sets; the multiplicity
  // of non-projected satellites repeats rows (bag semantics) unless the
  // sink deduplicates (DISTINCT).
  const std::vector<uint32_t>& proj = q_.projection();
  uint64_t multiplicity = 1;
  if (bag_multiplicity_) {
    for (uint32_t us : s_->satellite_list) {
      if (std::find(s_->expand.begin(), s_->expand.end(), us) ==
          s_->expand.end()) {
        multiplicity = SaturatingMul(multiplicity, s_->sat_match[us].size());
      }
    }
  }

  if (sink_->wants_groups()) {
    // Factorized emission: hand the sink the solution record itself (core
    // slots + per-projected-satellite candidate lists) and never enter the
    // odometer. The spans borrow matcher scratch — valid only during the
    // OnGroup call.
    uint64_t card = multiplicity;
    for (size_t i = 0; i < proj.size(); ++i) {
      const uint32_t u = proj[i];
      s_->row_buffer[i] = plan_.is_core[u] ? s_->core_match[u] : kInvalidId;
    }
    for (size_t j = 0; j < s_->expand.size(); ++j) {
      const std::vector<VertexId>& list = s_->sat_match[s_->expand[j]];
      s_->group_views[j] = std::span<const VertexId>(list);
      card = SaturatingMul(card, list.size());
    }
    ++stats_->groups_emitted;
    stats_->factorized_rows_represented =
        SaturatingAdd(stats_->factorized_rows_represented, card);
    EmbeddingGroupView view{s_->row_buffer, s_->slot_list, s_->group_views,
                            multiplicity};
    return sink_->OnGroup(view) ? Flow::kContinue : Flow::kStop;
  }

  // Odometer over the projected satellite sets (flat cross-product).
  s_->pick.assign(s_->expand.size(), 0);
  while (true) {
    for (size_t i = 0; i < proj.size(); ++i) {
      const uint32_t u = proj[i];
      if (plan_.is_core[u]) {
        s_->row_buffer[i] = s_->core_match[u];
      } else {
        const size_t slot = static_cast<size_t>(
            std::find(s_->expand.begin(), s_->expand.end(), u) -
            s_->expand.begin());
        s_->row_buffer[i] = s_->sat_match[u][s_->pick[slot]];
      }
    }
    for (uint64_t m = 0; m < multiplicity; ++m) {
      ++stats_->rows_expanded;
      if (!sink_->OnRow(s_->row_buffer)) return Flow::kStop;
      // Bag multiplicity can repeat one row millions of times with no
      // recursion in between; tick per emitted row so the Cartesian
      // expansion honours the deadline/token too.
      if (Flow f = CheckInterrupt(); f != Flow::kContinue) return f;
    }
    // Advance the odometer.
    size_t d = 0;
    while (d < s_->expand.size()) {
      if (++s_->pick[d] < s_->sat_match[s_->expand[d]].size()) break;
      s_->pick[d] = 0;
      ++d;
    }
    if (d == s_->expand.size()) break;
  }
  return Flow::kContinue;
}

Matcher::Flow Matcher::MatchComponent(
    size_t ci, const std::optional<std::span<const VertexId>>& root) {
  if (ci == plan_.components.size()) return Emit();
  const ComponentPlan& cp = plan_.components[ci];
  const uint32_t uinit = cp.core_order[0];

  const std::span<const VertexId> cand =
      (ci == 0 && root.has_value())
          ? *root
          : std::span<const VertexId>(CachedComponentCandidates(ci));
  if (ci == 0) stats_->initial_candidates += cand.size();

  for (VertexId vinit : cand) {
    if (Flow f = CheckInterrupt(); f != Flow::kContinue) return f;
    if (!cp.satellites[0].empty() &&
        !MatchSatellites(cp.satellites[0], uinit, vinit)) {
      continue;
    }
    s_->core_match[uinit] = vinit;
    Flow f = Recurse(ci, 1);
    s_->core_match[uinit] = kInvalidId;
    if (f != Flow::kContinue) return f;
  }
  return Flow::kContinue;
}

Matcher::Flow Matcher::Recurse(size_t ci, size_t depth) {
  ++stats_->recursion_calls;
  const ComponentPlan& cp = plan_.components[ci];
  if (depth == cp.core_order.size()) {
    return MatchComponent(ci + 1, std::nullopt);
  }
  if (Flow f = CheckInterrupt(); f != Flow::kContinue) return f;

  const uint32_t unxt = cp.core_order[depth];
  MatcherScratch::DepthScratch& ds = s_->depths[s_->depth_base[ci] + depth];

  // Constraints from every already-matched core neighbour (Algorithm 4
  // lines 5-7), each with the O(1) neighbour-count upper bound on its
  // candidate list.
  ds.constraints.clear();
  uint32_t min_bound = UINT32_MAX;
  for (const auto& [edge_idx, u_is_from] : q_.IncidentEdges(unxt)) {
    const QueryEdge& e = q_.edges()[edge_idx];
    const uint32_t other = u_is_from ? e.to : e.from;
    const VertexId vn = s_->core_match[other];
    if (vn == kInvalidId) continue;  // satellite or not yet matched
    const Direction d = u_is_from ? Direction::kIn : Direction::kOut;
    const uint32_t bound =
        static_cast<uint32_t>(indexes_.neighborhood.NeighborCount(vn, d));
    if (bound == 0) return Flow::kContinue;
    ds.constraints.push_back(
        MatcherScratch::Constraint{&e, vn, bound, u_is_from});
    min_bound = std::min(min_bound, bound);
  }
  assert(!ds.constraints.empty() && "ordering guarantees a matched neighbour");

  // Cutover: materialize the cheap lists into the arena, defer hub-sized
  // ones (bound ≫ the smallest bound) to the probe path. The smallest-
  // bound constraint always materializes, so there is always a seed.
  ds.views.clear();
  size_t used = 0;
  for (MatcherScratch::Constraint& c : ds.constraints) {
    c.probe =
        c.bound > kProbeMinBound && c.bound / kProbeSkewFactor > min_bound;
    if (c.probe) continue;
    if (used == ds.lists.size()) ds.lists.emplace_back();
    std::vector<VertexId>& list = ds.lists[used];
    list.clear();
    PairCandidates(*c.edge, c.u_is_from, c.vn, &list);
    ++s_->lists_materialized;
    if (list.empty()) return Flow::kContinue;
    ds.views.emplace_back(list.data(), list.size());
    ++used;
  }

  if (ds.views.size() == 1) {
    // Single materialized list: adopt its buffer outright (both are arena
    // storage, so this is a pointer swap, not a copy).
    std::swap(ds.cand, ds.lists[0]);
  } else {
    IntersectKWay(std::span<const std::span<const VertexId>>(ds.views),
                  &ds.cursors, &ds.cand, &s_->icounters);
  }
  if (ds.cand.empty()) return Flow::kContinue;
  RefineByVertex(unxt, &ds.cand);

  // Probe the deferred hub constraints against the (now small) survivor
  // set — per-candidate trie seeks instead of hub-sized materialization.
  for (const MatcherScratch::Constraint& c : ds.constraints) {
    if (!c.probe || ds.cand.empty()) continue;
    ProbeFilter(*c.edge, c.u_is_from, c.vn, &ds.cand);
  }
  if (ds.cand.empty()) return Flow::kContinue;

  const std::vector<uint32_t>& sats = cp.satellites[depth];
  for (VertexId vnxt : ds.cand) {
    if (Flow f = CheckInterrupt(); f != Flow::kContinue) return f;
    if (!sats.empty() && !MatchSatellites(sats, unxt, vnxt)) continue;
    s_->core_match[unxt] = vnxt;
    Flow f = Recurse(ci, depth + 1);
    s_->core_match[unxt] = kInvalidId;
    if (f != Flow::kContinue) return f;
  }
  return Flow::kContinue;
}

void Matcher::FlushHotPathStats(ExecStats* stats) {
  stats->lists_materialized += s_->lists_materialized;
  stats->galloped_elements += s_->icounters.galloped_elements;
  stats->scanned_elements += s_->icounters.scanned_elements;
  stats->probe_checks += s_->probe_checks;
  stats->probe_hits += s_->probe_hits;
  stats->range_scans += s_->range_scans;
  stats->range_scan_elements += s_->range_scan_elements;
  stats->predicate_checks += s_->predicate_checks;
  stats->peak_arena_bytes =
      std::max(stats->peak_arena_bytes, s_->ArenaBytes());
  s_->lists_materialized = 0;
  s_->probe_checks = 0;
  s_->probe_hits = 0;
  s_->range_scans = 0;
  s_->range_scan_elements = 0;
  s_->predicate_checks = 0;
  s_->icounters = IntersectCounters{};
}

bool Matcher::GroundChecksPass() {
  // Ground checks (patterns without variables) gate the whole query.
  for (const GroundEdge& e : q_.ground_edges()) {
    if (!g_.HasEdge(e.subject, e.predicate, e.object)) return false;
  }
  for (const GroundAttribute& a : q_.ground_attributes()) {
    std::span<const AttributeId> attrs = g_.Attributes(a.subject);
    if (!std::binary_search(attrs.begin(), attrs.end(), a.attribute)) {
      return false;
    }
  }
  for (const GroundPredicate& gp : q_.ground_predicates()) {
    ++s_->predicate_checks;
    if (!indexes_.value.VertexMatches(g_.Attributes(gp.subject),
                                      gp.predicate, gp.comparisons)) {
      return false;
    }
  }
  return true;
}

Status Matcher::Run(EmbeddingSink* sink, ExecStats* stats,
                    const RunControl& control) {
  sink_ = sink;
  stats_ = stats;
  bag_multiplicity_ = control.bag_multiplicity;
  deadline_ = control.deadline.has_value()
                  ? *control.deadline
                  : Deadline::After(options_.timeout);
  cancel_ = control.cancel.has_value() ? *control.cancel : options_.cancel;
  deadline_tick_ = 0;
  pending_ = InterruptKind::kNone;

  if (!control.skip_ground_checks && !GroundChecksPass()) {
    FlushHotPathStats(stats_);
    return Status::OK();
  }

  if (plan_.components.empty()) {
    // Fully ground query: all checks passed above.
    if (sink_->wants_rows()) {
      sink_->OnRow(std::span<const VertexId>{});
    } else {
      sink_->OnCount(1);
    }
    FlushHotPathStats(stats_);
    return Status::OK();
  }

  Flow f = MatchComponent(0, control.root_candidates);
  if (f == Flow::kTimeout) stats_->timed_out = true;
  if (f == Flow::kStop) stats_->truncated = true;
  if (f == Flow::kCancelled) stats_->cancelled = true;
  FlushHotPathStats(stats_);
  return Status::OK();
}

}  // namespace amber
