#include "core/matcher.h"

#include <algorithm>
#include <cassert>

namespace amber {

Matcher::Matcher(const Multigraph& g, const IndexSet& indexes,
                 const QueryGraph& q, const QueryPlan& plan,
                 const ExecOptions& options)
    : g_(g), indexes_(indexes), q_(q), plan_(plan), options_(options) {
  core_match_.assign(q_.NumVertices(), kInvalidId);
  sat_match_.assign(q_.NumVertices(), {});
  for (const ComponentPlan& cp : plan_.components) {
    for (const auto& sats : cp.satellites) {
      satellite_list_.insert(satellite_list_.end(), sats.begin(), sats.end());
    }
  }
  row_buffer_.resize(q_.projection().size());
}

bool Matcher::DeadlineExpired() {
  // Amortize the clock read: every 64th check actually reads the clock.
  if ((++deadline_tick_ & 63u) != 0) return false;
  return deadline_.Expired();
}

void Matcher::PairCandidates(const QueryEdge& e, bool u_is_from, VertexId vn,
                             std::vector<VertexId>* out) const {
  // u --types--> un: candidates must appear among vn's in-neighbours with a
  // superset multi-edge; un --types--> u: among vn's out-neighbours.
  const Direction d = u_is_from ? Direction::kIn : Direction::kOut;
  indexes_.neighborhood.SupersetNeighbors(vn, d, e.types, out);
}

std::optional<std::vector<VertexId>> Matcher::LocalCandidates(uint32_t u) {
  const QueryVertex& qv = q_.vertices()[u];
  if (!qv.HasLocalConstraints()) return std::nullopt;

  std::vector<VertexId> result;
  bool first = true;

  if (!qv.attrs.empty()) {
    result = indexes_.attribute.Candidates(qv.attrs);  // C^A_u
    first = false;
  }
  for (const IriConstraint& c : qv.iris) {  // C^I_u
    if (!c.out_types.empty()) {
      // u --out_types--> anchor: u is an in-neighbour of the anchor.
      std::vector<VertexId> list =
          indexes_.neighborhood.Superset(c.anchor, Direction::kIn,
                                         c.out_types);
      result = first ? std::move(list) : IntersectSorted(result, list);
      first = false;
      if (result.empty()) return result;
    }
    if (!c.in_types.empty()) {
      // anchor --in_types--> u: u is an out-neighbour of the anchor.
      std::vector<VertexId> list =
          indexes_.neighborhood.Superset(c.anchor, Direction::kOut,
                                         c.in_types);
      result = first ? std::move(list) : IntersectSorted(result, list);
      first = false;
      if (result.empty()) return result;
    }
  }
  return result;
}

void Matcher::RefineByVertex(uint32_t u, std::vector<VertexId>* cand) {
  if (cand->empty()) return;
  std::optional<std::vector<VertexId>> local = LocalCandidates(u);
  if (local.has_value()) {
    *cand = IntersectSorted(*cand, *local);
  }
  const std::vector<EdgeTypeId>& self = q_.vertices()[u].self_types;
  if (!self.empty()) {
    std::erase_if(*cand, [&](VertexId v) {
      return !g_.HasMultiEdgeSuperset(v, Direction::kOut, v, self);
    });
  }
}

std::vector<VertexId> Matcher::InitialCandidates(uint32_t uinit) {
  const Synopsis syn = q_.VertexSynopsis(uinit);
  std::vector<VertexId> cand;
  if (options_.use_signature_index) {
    cand = indexes_.signature.Candidates(syn);  // QuerySynIndex via R-tree
  } else {
    // Ablation B: same complete filter, evaluated by a full scan.
    cand.reserve(64);
    for (VertexId v = 0; v < g_.NumVertices(); ++v) {
      if (indexes_.signature.Of(v).Dominates(syn)) cand.push_back(v);
    }
  }
  RefineByVertex(uinit, &cand);
  return cand;
}

std::vector<VertexId> Matcher::ComputeRootCandidates() {
  if (plan_.components.empty()) return {};
  return InitialCandidates(plan_.components[0].core_order[0]);
}

bool Matcher::MatchSatellites(const std::vector<uint32_t>& sats, uint32_t uc,
                              VertexId vc) {
  for (uint32_t us : sats) {
    std::vector<VertexId> cand;
    bool first = true;
    for (const auto& [edge_idx, us_is_from] : q_.IncidentEdges(us)) {
      const QueryEdge& e = q_.edges()[edge_idx];
      const uint32_t other = us_is_from ? e.to : e.from;
      assert(other == uc);
      (void)uc;
      (void)other;
      std::vector<VertexId> list;
      PairCandidates(e, us_is_from, vc, &list);
      cand = first ? std::move(list) : IntersectSorted(cand, list);
      first = false;
      if (cand.empty()) break;
    }
    if (first) {
      // Satellite without variable edges cannot occur (degree is 1), but
      // guard against it: fall back to local constraints only.
      std::optional<std::vector<VertexId>> local = LocalCandidates(us);
      if (local.has_value()) cand = std::move(*local);
    } else {
      RefineByVertex(us, &cand);
    }
    if (cand.empty()) return false;  // no solution possible for this vc
    sat_match_[us] = std::move(cand);
  }
  return true;
}

Matcher::Flow Matcher::Emit() {
  ++stats_->embeddings_found;

  if (!sink_->wants_rows()) {
    // GenEmb fast path: |embeddings| = product of satellite set sizes.
    uint64_t count = 1;
    for (uint32_t us : satellite_list_) {
      count = SaturatingMul(count, sat_match_[us].size());
    }
    return sink_->OnCount(count) ? Flow::kContinue : Flow::kStop;
  }

  // Cartesian expansion. Projected satellites enumerate their sets; the
  // multiplicity of non-projected satellites repeats rows (bag semantics)
  // unless the sink deduplicates (DISTINCT).
  const std::vector<uint32_t>& proj = q_.projection();
  std::vector<uint32_t> expand;  // projected satellites (unique)
  for (uint32_t u : proj) {
    if (!plan_.is_core[u] &&
        std::find(expand.begin(), expand.end(), u) == expand.end()) {
      expand.push_back(u);
    }
  }
  uint64_t multiplicity = 1;
  if (bag_multiplicity_) {
    for (uint32_t us : satellite_list_) {
      if (std::find(expand.begin(), expand.end(), us) == expand.end()) {
        multiplicity = SaturatingMul(multiplicity, sat_match_[us].size());
      }
    }
  }

  // Odometer over the projected satellite sets.
  std::vector<size_t> pick(expand.size(), 0);
  while (true) {
    for (size_t i = 0; i < proj.size(); ++i) {
      const uint32_t u = proj[i];
      if (plan_.is_core[u]) {
        row_buffer_[i] = core_match_[u];
      } else {
        const size_t slot = static_cast<size_t>(
            std::find(expand.begin(), expand.end(), u) - expand.begin());
        row_buffer_[i] = sat_match_[u][pick[slot]];
      }
    }
    for (uint64_t m = 0; m < multiplicity; ++m) {
      if (!sink_->OnRow(row_buffer_)) return Flow::kStop;
    }
    // Advance the odometer.
    size_t d = 0;
    while (d < expand.size()) {
      if (++pick[d] < sat_match_[expand[d]].size()) break;
      pick[d] = 0;
      ++d;
    }
    if (d == expand.size()) break;
  }
  return Flow::kContinue;
}

Matcher::Flow Matcher::MatchComponent(size_t ci,
                                      const std::vector<VertexId>* root) {
  if (ci == plan_.components.size()) return Emit();
  const ComponentPlan& cp = plan_.components[ci];
  const uint32_t uinit = cp.core_order[0];

  std::vector<VertexId> local_cand;
  const std::vector<VertexId>* cand = nullptr;
  if (ci == 0 && root != nullptr) {
    cand = root;
  } else {
    // CandInit for this component (Algorithm 3, lines 4-5).
    local_cand = InitialCandidates(uinit);
    cand = &local_cand;
  }
  if (ci == 0) stats_->initial_candidates += cand->size();

  for (VertexId vinit : *cand) {
    if (DeadlineExpired()) return Flow::kTimeout;
    if (!cp.satellites[0].empty() &&
        !MatchSatellites(cp.satellites[0], uinit, vinit)) {
      continue;
    }
    core_match_[uinit] = vinit;
    Flow f = Recurse(ci, 1);
    core_match_[uinit] = kInvalidId;
    if (f != Flow::kContinue) return f;
  }
  return Flow::kContinue;
}

Matcher::Flow Matcher::Recurse(size_t ci, size_t depth) {
  ++stats_->recursion_calls;
  const ComponentPlan& cp = plan_.components[ci];
  if (depth == cp.core_order.size()) {
    return MatchComponent(ci + 1, nullptr);
  }
  if (DeadlineExpired()) return Flow::kTimeout;

  const uint32_t unxt = cp.core_order[depth];

  // Candidates constrained by every already-matched core neighbour
  // (Algorithm 4 lines 5-7). Lists are intersected smallest-first so a
  // selective neighbour caps the work done on hub-sized lists.
  std::vector<std::vector<VertexId>> lists;
  for (const auto& [edge_idx, u_is_from] : q_.IncidentEdges(unxt)) {
    const QueryEdge& e = q_.edges()[edge_idx];
    const uint32_t other = u_is_from ? e.to : e.from;
    const VertexId vn = core_match_[other];
    if (vn == kInvalidId) continue;  // satellite or not yet matched
    std::vector<VertexId> list;
    PairCandidates(e, u_is_from, vn, &list);
    if (list.empty()) return Flow::kContinue;
    lists.push_back(std::move(list));
  }
  assert(!lists.empty() && "ordering guarantees a matched neighbour");
  std::sort(lists.begin(), lists.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  std::vector<VertexId> cand = std::move(lists[0]);
  for (size_t i = 1; i < lists.size() && !cand.empty(); ++i) {
    cand = IntersectSorted(cand, lists[i]);
  }
  if (cand.empty()) return Flow::kContinue;
  RefineByVertex(unxt, &cand);

  const std::vector<uint32_t>& sats = cp.satellites[depth];
  for (VertexId vnxt : cand) {
    if (DeadlineExpired()) return Flow::kTimeout;
    if (!sats.empty() && !MatchSatellites(sats, unxt, vnxt)) continue;
    core_match_[unxt] = vnxt;
    Flow f = Recurse(ci, depth + 1);
    core_match_[unxt] = kInvalidId;
    if (f != Flow::kContinue) return f;
  }
  return Flow::kContinue;
}

Status Matcher::Run(EmbeddingSink* sink, ExecStats* stats,
                    const std::vector<VertexId>* root_candidates,
                    bool bag_multiplicity) {
  sink_ = sink;
  stats_ = stats;
  bag_multiplicity_ = bag_multiplicity;
  deadline_ = Deadline::After(options_.timeout);
  deadline_tick_ = 0;

  // Ground checks (patterns without variables) gate the whole query.
  for (const GroundEdge& e : q_.ground_edges()) {
    if (!g_.HasEdge(e.subject, e.predicate, e.object)) return Status::OK();
  }
  for (const GroundAttribute& a : q_.ground_attributes()) {
    std::span<const AttributeId> attrs = g_.Attributes(a.subject);
    if (!std::binary_search(attrs.begin(), attrs.end(), a.attribute)) {
      return Status::OK();
    }
  }

  if (plan_.components.empty()) {
    // Fully ground query: all checks passed above.
    if (sink_->wants_rows()) {
      sink_->OnRow(std::span<const VertexId>{});
    } else {
      sink_->OnCount(1);
    }
    return Status::OK();
  }

  Flow f = MatchComponent(0, root_candidates);
  if (f == Flow::kTimeout) stats_->timed_out = true;
  if (f == Flow::kStop) stats_->truncated = true;
  return Status::OK();
}

}  // namespace amber
