#include "core/matcher.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

namespace amber {

namespace {

// Materialize-vs-probe cutover. A constraint's neighbour list is probed per
// candidate instead of materialized when its O(1) size bound exceeds the
// step's smallest bound by this factor — probing at most |smallest bound|
// candidates (each an O(log) trie seek on the candidate's own small trie)
// then beats walking and sorting a hub-sized list. Lists under the absolute
// floor are always materialized: they are nearly free to build and the
// galloping kernels handle them well.
constexpr uint32_t kProbeSkewFactor = 8;
constexpr uint32_t kProbeMinBound = 64;

template <typename T>
uint64_t VectorBytes(const std::vector<T>& v) {
  return static_cast<uint64_t>(v.capacity()) * sizeof(T);
}

}  // namespace

Matcher::Matcher(const Multigraph& g, const IndexSet& indexes,
                 const QueryGraph& q, const QueryPlan& plan,
                 const ExecOptions& options)
    : g_(g), indexes_(indexes), q_(q), plan_(plan), options_(options) {
  core_match_.assign(q_.NumVertices(), kInvalidId);
  sat_match_.assign(q_.NumVertices(), {});
  size_t total_depth = 0;
  for (const ComponentPlan& cp : plan_.components) {
    depth_base_.push_back(total_depth);
    total_depth += cp.core_order.size();
    for (const auto& sats : cp.satellites) {
      satellite_list_.insert(satellite_list_.end(), sats.begin(), sats.end());
    }
  }
  scratch_.resize(total_depth);
  row_buffer_.resize(q_.projection().size());

  local_state_.assign(q_.NumVertices(), LocalState::kUnknown);
  local_cache_.resize(q_.NumVertices());
  preds_pushed_.resize(q_.NumVertices());
  for (uint32_t u = 0; u < q_.NumVertices(); ++u) {
    const std::vector<PredicateConstraint>& preds = q_.vertices()[u].preds;
    preds_pushed_[u].resize(preds.size(), 0);
    for (size_t i = 0; i < preds.size(); ++i) {
      preds_pushed_[u][i] =
          options_.use_value_index && plan_.is_core[u] &&
          RangeScanWorthPushing(
              indexes_.value.EstimateRange(preds[i].predicate,
                                           preds[i].comparisons),
              g_.NumVertices());
    }
  }
  comp_cand_cached_.assign(plan_.components.size(), false);
  comp_cand_cache_.resize(plan_.components.size());

  // Projected satellites (unique), in first-appearance order; Emit()'s
  // odometer runs over these.
  for (uint32_t u : q_.projection()) {
    if (!plan_.is_core[u] &&
        std::find(expand_.begin(), expand_.end(), u) == expand_.end()) {
      expand_.push_back(u);
    }
  }
  pick_.resize(expand_.size());
}

bool Matcher::DeadlineExpired() {
  // Amortize the clock read: every 64th check actually reads the clock.
  if ((++deadline_tick_ & 63u) != 0) return false;
  return deadline_.Expired();
}

void Matcher::PairCandidates(const QueryEdge& e, bool u_is_from, VertexId vn,
                             std::vector<VertexId>* out) {
  // u --types--> un: candidates must appear among vn's in-neighbours with a
  // superset multi-edge; un --types--> u: among vn's out-neighbours.
  const Direction d = u_is_from ? Direction::kIn : Direction::kOut;
  indexes_.neighborhood.SupersetNeighbors(vn, d, e.types, out, &nbr_scratch_);
}

void Matcher::ProbeFilter(const QueryEdge& e, bool u_is_from, VertexId vn,
                          std::vector<VertexId>* cand) {
  // Seen from a candidate c, the edge orientation flips: the query edge
  // leaving u makes vn an out-neighbour of c. Probing c's trie instead of
  // materializing vn's neighbour list is the whole point — c is one of few
  // surviving candidates and usually low-degree, vn is the hub.
  const Direction d = u_is_from ? Direction::kOut : Direction::kIn;
  probe_checks_ += cand->size();
  std::erase_if(*cand, [&](VertexId c) {
    return !indexes_.neighborhood.Contains(c, d, e.types, vn, &nbr_scratch_);
  });
  probe_hits_ += cand->size();
}

const std::vector<VertexId>* Matcher::CachedLocalCandidates(uint32_t u) {
  if (local_state_[u] == LocalState::kNone) return nullptr;
  if (local_state_[u] == LocalState::kCached) return &local_cache_[u];

  const QueryVertex& qv = q_.vertices()[u];
  // FILTER constraints only enter the cached list when pushed; residual
  // constraints are evaluated per candidate in RefineByVertex instead (a
  // satellite's paired candidates are usually far smaller than a range,
  // and a wide range costs more to materialize than to check).
  bool push_preds = false;
  for (size_t i = 0; i < qv.preds.size(); ++i) {
    if (ConstraintPushed(u, i)) {
      push_preds = true;
      break;
    }
  }
  if (qv.attrs.empty() && qv.iris.empty() && !push_preds) {
    local_state_[u] = LocalState::kNone;
    return nullptr;
  }
  // Cold path: computed once per query vertex per Matcher, then served from
  // the cache for every subsequent refinement (RefineByVertex used to
  // recompute this per satellite per embedding).
  std::vector<VertexId>& result = local_cache_[u];
  result.clear();
  std::vector<VertexId> tmp;
  bool first = true;

  if (!qv.attrs.empty()) {
    result = indexes_.attribute.Candidates(qv.attrs);  // C^A_u
    first = false;
  }
  if (push_preds) {
    for (size_t i = 0; i < qv.preds.size(); ++i) {  // C^P_u
      if (!ConstraintPushed(u, i)) continue;  // residual, see below
      const PredicateConstraint& pc = qv.preds[i];
      ValueIndex::ScanStats scan_stats;
      if (first) {
        indexes_.value.RangeScan(pc.predicate, pc.comparisons, &result,
                                 &scan_stats);
        first = false;
      } else if (!result.empty()) {
        indexes_.value.RangeScan(pc.predicate, pc.comparisons, &range_tmp_,
                                 &scan_stats);
        IntersectInPlace(&result, std::span<const VertexId>(range_tmp_),
                         &icounters_);
      }
      range_scans_ += scan_stats.scans;
      range_scan_elements_ += scan_stats.elements;
    }
  }
  auto refine = [&](VertexId anchor, Direction d,
                    std::span<const EdgeTypeId> types) {
    if (first) {
      indexes_.neighborhood.SupersetNeighbors(anchor, d, types, &result,
                                              &nbr_scratch_);
      first = false;
    } else if (!result.empty()) {
      tmp.clear();
      indexes_.neighborhood.SupersetNeighbors(anchor, d, types, &tmp,
                                              &nbr_scratch_);
      IntersectInPlace(&result, std::span<const VertexId>(tmp), &icounters_);
    }
  };
  for (const IriConstraint& c : qv.iris) {  // C^I_u
    // u --out_types--> anchor: u is an in-neighbour of the anchor, and
    // anchor --in_types--> u: u is an out-neighbour of the anchor.
    if (!c.out_types.empty()) refine(c.anchor, Direction::kIn, c.out_types);
    if (!c.in_types.empty()) refine(c.anchor, Direction::kOut, c.in_types);
  }
  local_state_[u] = LocalState::kCached;
  return &result;
}

void Matcher::RefineByVertex(uint32_t u, std::vector<VertexId>* cand) {
  if (cand->empty()) return;
  const std::vector<VertexId>* local = CachedLocalCandidates(u);
  if (local != nullptr) {
    IntersectInPlace(cand, std::span<const VertexId>(*local), &icounters_);
  }
  const QueryVertex& qv = q_.vertices()[u];
  if (!qv.self_types.empty()) {
    std::erase_if(*cand, [&](VertexId v) {
      return !g_.HasMultiEdgeSuperset(v, Direction::kOut, v, qv.self_types);
    });
  }
  // Residual FILTER evaluation: constraints not served by a pushed range
  // scan are checked per candidate against the vertex's own attributes.
  for (size_t i = 0; i < qv.preds.size(); ++i) {
    if (cand->empty()) break;
    if (ConstraintPushed(u, i)) continue;  // already intersected above
    const PredicateConstraint& pc = qv.preds[i];
    predicate_checks_ += cand->size();
    std::erase_if(*cand, [&](VertexId v) {
      return !indexes_.value.VertexMatches(g_.Attributes(v), pc.predicate,
                                           pc.comparisons);
    });
  }
}

std::vector<VertexId> Matcher::InitialCandidates(uint32_t uinit) {
  const Synopsis syn = q_.VertexSynopsis(uinit);
  std::vector<VertexId> cand;
  if (options_.use_signature_index) {
    cand = indexes_.signature.Candidates(syn);  // QuerySynIndex via R-tree
  } else {
    // Ablation B: same complete filter, evaluated by a full scan.
    cand.reserve(64);
    for (VertexId v = 0; v < g_.NumVertices(); ++v) {
      if (indexes_.signature.Of(v).Dominates(syn)) cand.push_back(v);
    }
  }
  RefineByVertex(uinit, &cand);
  return cand;
}

const std::vector<VertexId>& Matcher::CachedComponentCandidates(size_t ci) {
  // Components after the first are re-entered once per upstream embedding;
  // their CandInit does not depend on earlier assignments, so compute it
  // once per run.
  if (!comp_cand_cached_[ci]) {
    comp_cand_cache_[ci] =
        InitialCandidates(plan_.components[ci].core_order[0]);
    comp_cand_cached_[ci] = true;
  }
  return comp_cand_cache_[ci];
}

std::vector<VertexId> Matcher::ComputeRootCandidates() {
  if (plan_.components.empty()) return {};
  return InitialCandidates(plan_.components[0].core_order[0]);
}

bool Matcher::MatchSatellites(const std::vector<uint32_t>& sats, uint32_t uc,
                              VertexId vc) {
  for (uint32_t us : sats) {
    std::vector<VertexId>& cand = sat_match_[us];
    cand.clear();
    const std::vector<std::pair<uint32_t, bool>>& incident =
        q_.IncidentEdges(us);

    // Seed from the smallest-bound incident edge (same cutover as the core
    // path), so a bidirectional satellite never materializes the hub side
    // of vc just because it came first in edge order.
    size_t seed = incident.size();
    size_t seed_bound = SIZE_MAX;
    for (size_t k = 0; k < incident.size(); ++k) {
      const Direction d =
          incident[k].second ? Direction::kIn : Direction::kOut;
      const size_t bound = indexes_.neighborhood.NeighborCount(vc, d);
      if (bound < seed_bound) {
        seed_bound = bound;
        seed = k;
      }
    }
    if (seed == incident.size()) {
      // Satellite without variable edges cannot occur (degree is 1), but
      // guard against it: fall back to local constraints only.
      const std::vector<VertexId>* local = CachedLocalCandidates(us);
      if (local != nullptr) cand.assign(local->begin(), local->end());
      if (cand.empty()) return false;
      continue;
    }

    PairCandidates(q_.edges()[incident[seed].first], incident[seed].second,
                   vc, &cand);
    ++lists_materialized_;
    for (size_t idx = 0; idx < incident.size() && !cand.empty(); ++idx) {
      if (idx == seed) continue;
      const auto& [edge_idx, us_is_from] = incident[idx];
      const QueryEdge& e = q_.edges()[edge_idx];
      const uint32_t other = us_is_from ? e.to : e.from;
      assert(other == uc);
      (void)uc;
      (void)other;
      // Further (bidirectional) satellite edges: probe the survivors when
      // the list is hub-sized relative to them, else materialize and
      // intersect in place.
      const Direction d = us_is_from ? Direction::kIn : Direction::kOut;
      const size_t bound = indexes_.neighborhood.NeighborCount(vc, d);
      if (bound > kProbeMinBound && bound / kProbeSkewFactor > cand.size()) {
        ProbeFilter(e, us_is_from, vc, &cand);
      } else {
        sat_tmp_.clear();
        PairCandidates(e, us_is_from, vc, &sat_tmp_);
        ++lists_materialized_;
        IntersectInPlace(&cand, std::span<const VertexId>(sat_tmp_),
                         &icounters_);
      }
    }
    RefineByVertex(us, &cand);
    if (cand.empty()) return false;  // no solution possible for this vc
  }
  return true;
}

Matcher::Flow Matcher::Emit() {
  ++stats_->embeddings_found;

  if (!sink_->wants_rows()) {
    // GenEmb fast path: |embeddings| = product of satellite set sizes.
    uint64_t count = 1;
    for (uint32_t us : satellite_list_) {
      count = SaturatingMul(count, sat_match_[us].size());
    }
    return sink_->OnCount(count) ? Flow::kContinue : Flow::kStop;
  }

  // Cartesian expansion. Projected satellites (expand_) enumerate their
  // sets; the multiplicity of non-projected satellites repeats rows (bag
  // semantics) unless the sink deduplicates (DISTINCT).
  const std::vector<uint32_t>& proj = q_.projection();
  uint64_t multiplicity = 1;
  if (bag_multiplicity_) {
    for (uint32_t us : satellite_list_) {
      if (std::find(expand_.begin(), expand_.end(), us) == expand_.end()) {
        multiplicity = SaturatingMul(multiplicity, sat_match_[us].size());
      }
    }
  }

  // Odometer over the projected satellite sets.
  pick_.assign(expand_.size(), 0);
  while (true) {
    for (size_t i = 0; i < proj.size(); ++i) {
      const uint32_t u = proj[i];
      if (plan_.is_core[u]) {
        row_buffer_[i] = core_match_[u];
      } else {
        const size_t slot = static_cast<size_t>(
            std::find(expand_.begin(), expand_.end(), u) - expand_.begin());
        row_buffer_[i] = sat_match_[u][pick_[slot]];
      }
    }
    for (uint64_t m = 0; m < multiplicity; ++m) {
      if (!sink_->OnRow(row_buffer_)) return Flow::kStop;
    }
    // Advance the odometer.
    size_t d = 0;
    while (d < expand_.size()) {
      if (++pick_[d] < sat_match_[expand_[d]].size()) break;
      pick_[d] = 0;
      ++d;
    }
    if (d == expand_.size()) break;
  }
  return Flow::kContinue;
}

Matcher::Flow Matcher::MatchComponent(size_t ci,
                                      const std::vector<VertexId>* root) {
  if (ci == plan_.components.size()) return Emit();
  const ComponentPlan& cp = plan_.components[ci];
  const uint32_t uinit = cp.core_order[0];

  const std::vector<VertexId>* cand = (ci == 0 && root != nullptr)
                                          ? root
                                          : &CachedComponentCandidates(ci);
  if (ci == 0) stats_->initial_candidates += cand->size();

  for (VertexId vinit : *cand) {
    if (DeadlineExpired()) return Flow::kTimeout;
    if (!cp.satellites[0].empty() &&
        !MatchSatellites(cp.satellites[0], uinit, vinit)) {
      continue;
    }
    core_match_[uinit] = vinit;
    Flow f = Recurse(ci, 1);
    core_match_[uinit] = kInvalidId;
    if (f != Flow::kContinue) return f;
  }
  return Flow::kContinue;
}

Matcher::Flow Matcher::Recurse(size_t ci, size_t depth) {
  ++stats_->recursion_calls;
  const ComponentPlan& cp = plan_.components[ci];
  if (depth == cp.core_order.size()) {
    return MatchComponent(ci + 1, nullptr);
  }
  if (DeadlineExpired()) return Flow::kTimeout;

  const uint32_t unxt = cp.core_order[depth];
  DepthScratch& ds = scratch_[depth_base_[ci] + depth];

  // Constraints from every already-matched core neighbour (Algorithm 4
  // lines 5-7), each with the O(1) neighbour-count upper bound on its
  // candidate list.
  ds.constraints.clear();
  uint32_t min_bound = UINT32_MAX;
  for (const auto& [edge_idx, u_is_from] : q_.IncidentEdges(unxt)) {
    const QueryEdge& e = q_.edges()[edge_idx];
    const uint32_t other = u_is_from ? e.to : e.from;
    const VertexId vn = core_match_[other];
    if (vn == kInvalidId) continue;  // satellite or not yet matched
    const Direction d = u_is_from ? Direction::kIn : Direction::kOut;
    const uint32_t bound =
        static_cast<uint32_t>(indexes_.neighborhood.NeighborCount(vn, d));
    if (bound == 0) return Flow::kContinue;
    ds.constraints.push_back(Constraint{&e, vn, bound, u_is_from});
    min_bound = std::min(min_bound, bound);
  }
  assert(!ds.constraints.empty() && "ordering guarantees a matched neighbour");

  // Cutover: materialize the cheap lists into the arena, defer hub-sized
  // ones (bound ≫ the smallest bound) to the probe path. The smallest-
  // bound constraint always materializes, so there is always a seed.
  ds.views.clear();
  size_t used = 0;
  for (Constraint& c : ds.constraints) {
    c.probe =
        c.bound > kProbeMinBound && c.bound / kProbeSkewFactor > min_bound;
    if (c.probe) continue;
    if (used == ds.lists.size()) ds.lists.emplace_back();
    std::vector<VertexId>& list = ds.lists[used];
    list.clear();
    PairCandidates(*c.edge, c.u_is_from, c.vn, &list);
    ++lists_materialized_;
    if (list.empty()) return Flow::kContinue;
    ds.views.emplace_back(list.data(), list.size());
    ++used;
  }

  if (ds.views.size() == 1) {
    // Single materialized list: adopt its buffer outright (both are arena
    // storage, so this is a pointer swap, not a copy).
    std::swap(ds.cand, ds.lists[0]);
  } else {
    IntersectKWay(std::span<const std::span<const VertexId>>(ds.views),
                  &ds.cursors, &ds.cand, &icounters_);
  }
  if (ds.cand.empty()) return Flow::kContinue;
  RefineByVertex(unxt, &ds.cand);

  // Probe the deferred hub constraints against the (now small) survivor
  // set — per-candidate trie seeks instead of hub-sized materialization.
  for (const Constraint& c : ds.constraints) {
    if (!c.probe || ds.cand.empty()) continue;
    ProbeFilter(*c.edge, c.u_is_from, c.vn, &ds.cand);
  }
  if (ds.cand.empty()) return Flow::kContinue;

  const std::vector<uint32_t>& sats = cp.satellites[depth];
  for (VertexId vnxt : ds.cand) {
    if (DeadlineExpired()) return Flow::kTimeout;
    if (!sats.empty() && !MatchSatellites(sats, unxt, vnxt)) continue;
    core_match_[unxt] = vnxt;
    Flow f = Recurse(ci, depth + 1);
    core_match_[unxt] = kInvalidId;
    if (f != Flow::kContinue) return f;
  }
  return Flow::kContinue;
}

uint64_t Matcher::ArenaBytes() const {
  uint64_t total = 0;
  for (const DepthScratch& ds : scratch_) {
    total += VectorBytes(ds.constraints) + VectorBytes(ds.views) +
             VectorBytes(ds.cursors) + VectorBytes(ds.cand);
    for (const std::vector<VertexId>& list : ds.lists) {
      total += VectorBytes(list);
    }
  }
  for (const std::vector<VertexId>& list : sat_match_) {
    total += VectorBytes(list);
  }
  for (const std::vector<VertexId>& list : local_cache_) {
    total += VectorBytes(list);
  }
  for (const std::vector<VertexId>& list : comp_cand_cache_) {
    total += VectorBytes(list);
  }
  total += VectorBytes(sat_tmp_) + VectorBytes(range_tmp_) +
           VectorBytes(core_match_) + VectorBytes(row_buffer_) +
           VectorBytes(pick_) + nbr_scratch_.ByteSize();
  return total;
}

void Matcher::FlushHotPathStats(ExecStats* stats) {
  stats->lists_materialized += lists_materialized_;
  stats->galloped_elements += icounters_.galloped_elements;
  stats->scanned_elements += icounters_.scanned_elements;
  stats->probe_checks += probe_checks_;
  stats->probe_hits += probe_hits_;
  stats->range_scans += range_scans_;
  stats->range_scan_elements += range_scan_elements_;
  stats->predicate_checks += predicate_checks_;
  stats->peak_arena_bytes = std::max(stats->peak_arena_bytes, ArenaBytes());
  lists_materialized_ = 0;
  probe_checks_ = 0;
  probe_hits_ = 0;
  range_scans_ = 0;
  range_scan_elements_ = 0;
  predicate_checks_ = 0;
  icounters_ = IntersectCounters{};
}

Status Matcher::Run(EmbeddingSink* sink, ExecStats* stats,
                    const std::vector<VertexId>* root_candidates,
                    bool bag_multiplicity) {
  sink_ = sink;
  stats_ = stats;
  bag_multiplicity_ = bag_multiplicity;
  deadline_ = Deadline::After(options_.timeout);
  deadline_tick_ = 0;

  // Ground checks (patterns without variables) gate the whole query.
  for (const GroundEdge& e : q_.ground_edges()) {
    if (!g_.HasEdge(e.subject, e.predicate, e.object)) {
      FlushHotPathStats(stats_);
      return Status::OK();
    }
  }
  for (const GroundAttribute& a : q_.ground_attributes()) {
    std::span<const AttributeId> attrs = g_.Attributes(a.subject);
    if (!std::binary_search(attrs.begin(), attrs.end(), a.attribute)) {
      FlushHotPathStats(stats_);
      return Status::OK();
    }
  }
  for (const GroundPredicate& gp : q_.ground_predicates()) {
    ++predicate_checks_;
    if (!indexes_.value.VertexMatches(g_.Attributes(gp.subject),
                                      gp.predicate, gp.comparisons)) {
      FlushHotPathStats(stats_);
      return Status::OK();
    }
  }

  if (plan_.components.empty()) {
    // Fully ground query: all checks passed above.
    if (sink_->wants_rows()) {
      sink_->OnRow(std::span<const VertexId>{});
    } else {
      sink_->OnCount(1);
    }
    FlushHotPathStats(stats_);
    return Status::OK();
  }

  Flow f = MatchComponent(0, root_candidates);
  if (f == Flow::kTimeout) stats_->timed_out = true;
  if (f == Flow::kStop) stats_->truncated = true;
  FlushHotPathStats(stats_);
  return Status::OK();
}

}  // namespace amber
