#include "gen/lubm.h"

#include <string>

#include "util/random.h"

namespace amber {

namespace {

constexpr char kUb[] = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";
constexpr char kRdfType[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

class LubmBuilder {
 public:
  explicit LubmBuilder(const LubmOptions& options)
      : options_(options), rng_(options.seed) {}

  std::vector<Triple> Build() {
    // Pre-create university IRIs (plus a pool of "external" universities
    // that only appear as degree-granting institutions).
    const int num_universities = options_.universities;
    const int external = std::max(5, num_universities / 2);
    for (int u = 0; u < num_universities + external; ++u) {
      universities_.push_back(Iri("University" + std::to_string(u)));
    }
    for (int u = 0; u < num_universities + external; ++u) {
      AddType(universities_[u], "University");
    }
    for (int u = 0; u < num_universities; ++u) {
      GenerateUniversity(u);
    }
    return std::move(triples_);
  }

 private:
  std::string Iri(const std::string& local) {
    return "http://lubm.example.org/" + local;
  }
  std::string Pred(const std::string& local) { return kUb + local; }

  void Edge(const std::string& s, const std::string& p,
            const std::string& o) {
    triples_.emplace_back(Term::Iri(s), Term::Iri(p), Term::Iri(o));
  }
  void Attr(const std::string& s, const std::string& p,
            const std::string& value) {
    triples_.emplace_back(Term::Iri(s), Term::Iri(p), Term::Literal(value));
  }
  void AddType(const std::string& s, const std::string& cls) {
    triples_.emplace_back(Term::Iri(s), Term::Iri(kRdfType),
                          Term::Iri(Pred(cls)));
  }

  const std::string& RandomUniversity() {
    return universities_[rng_.Uniform(universities_.size())];
  }

  void GenerateUniversity(int uni) {
    const std::string& univ = universities_[uni];
    const int num_depts = static_cast<int>(rng_.UniformRange(15, 25));
    for (int d = 0; d < num_depts; ++d) {
      GenerateDepartment(univ, uni, d);
    }
  }

  void GenerateDepartment(const std::string& univ, int uni, int dept) {
    const std::string dep =
        Iri("Dept" + std::to_string(dept) + ".Univ" + std::to_string(uni));
    AddType(dep, "Department");
    Edge(dep, Pred("subOrganizationOf"), univ);
    Attr(dep, Pred("name"), "Department" + std::to_string(dept));

    // Research groups.
    const int num_groups = static_cast<int>(rng_.UniformRange(10, 20));
    for (int g = 0; g < num_groups; ++g) {
      std::string group = dep + "/ResearchGroup" + std::to_string(g);
      AddType(group, "ResearchGroup");
      Edge(group, Pred("subOrganizationOf"), dep);
    }

    // Faculty.
    struct Rank {
      const char* cls;
      int lo, hi;
    };
    const Rank ranks[] = {{"FullProfessor", 7, 10},
                          {"AssociateProfessor", 10, 14},
                          {"AssistantProfessor", 8, 11},
                          {"Lecturer", 5, 7}};
    std::vector<std::string> faculty;
    std::vector<std::string> courses;
    for (const Rank& rank : ranks) {
      const int n = static_cast<int>(rng_.UniformRange(rank.lo, rank.hi));
      for (int i = 0; i < n; ++i) {
        std::string person =
            dep + "/" + rank.cls + std::to_string(faculty.size());
        AddType(person, rank.cls);
        Edge(person, Pred("worksFor"), dep);
        Edge(person, Pred("undergraduateDegreeFrom"), RandomUniversity());
        Edge(person, Pred("mastersDegreeFrom"), RandomUniversity());
        Edge(person, Pred("doctoralDegreeFrom"), RandomUniversity());
        Attr(person, Pred("name"), rank.cls + std::to_string(i));
        Attr(person, Pred("emailAddress"),
             "mail" + std::to_string(faculty.size()) + "@dept" +
                 std::to_string(uni));
        Attr(person, Pred("telephone"),
             "555-" + std::to_string(1000 + faculty.size()));
        Attr(person, Pred("researchInterest"),
             "Research" + std::to_string(rng_.Uniform(30)));
        // Courses taught.
        const int taught = static_cast<int>(rng_.UniformRange(1, 2));
        for (int c = 0; c < taught; ++c) {
          std::string course = dep + "/Course" + std::to_string(courses.size());
          AddType(course, rng_.Chance(0.3) ? "GraduateCourse" : "Course");
          Edge(person, Pred("teacherOf"), course);
          courses.push_back(course);
        }
        // Publications.
        const int pubs = static_cast<int>(rng_.UniformRange(1, 5));
        for (int p = 0; p < pubs; ++p) {
          std::string pub =
              person + "/Publication" + std::to_string(p);
          AddType(pub, "Publication");
          Edge(pub, Pred("publicationAuthor"), person);
          Attr(pub, Pred("name"), "Pub" + std::to_string(p));
        }
        faculty.push_back(person);
      }
    }
    // Head of department: a full professor.
    Edge(faculty[0], Pred("headOf"), dep);

    // Students.
    const int undergrads = static_cast<int>(
        faculty.size() * static_cast<size_t>(rng_.UniformRange(8, 14)));
    const int grads = static_cast<int>(
        faculty.size() * static_cast<size_t>(rng_.UniformRange(3, 4)));
    for (int s = 0; s < undergrads; ++s) {
      std::string student = dep + "/UndergraduateStudent" + std::to_string(s);
      AddType(student, "UndergraduateStudent");
      Edge(student, Pred("memberOf"), dep);
      Attr(student, Pred("name"), "UndergraduateStudent" + std::to_string(s));
      const int takes = static_cast<int>(rng_.UniformRange(2, 4));
      for (int c = 0; c < takes; ++c) {
        Edge(student, Pred("takesCourse"),
             courses[rng_.Uniform(courses.size())]);
      }
      if (rng_.Chance(0.2)) {  // 1 in 5 undergrads has an advisor
        Edge(student, Pred("advisor"), faculty[rng_.Uniform(faculty.size())]);
      }
    }
    for (int s = 0; s < grads; ++s) {
      std::string student = dep + "/GraduateStudent" + std::to_string(s);
      AddType(student, "GraduateStudent");
      Edge(student, Pred("memberOf"), dep);
      Edge(student, Pred("undergraduateDegreeFrom"), RandomUniversity());
      Edge(student, Pred("advisor"), faculty[rng_.Uniform(faculty.size())]);
      Attr(student, Pred("name"), "GraduateStudent" + std::to_string(s));
      Attr(student, Pred("emailAddress"),
           "grad" + std::to_string(s) + "@dept" + std::to_string(uni));
      const int takes = static_cast<int>(rng_.UniformRange(1, 3));
      for (int c = 0; c < takes; ++c) {
        Edge(student, Pred("takesCourse"),
             courses[rng_.Uniform(courses.size())]);
      }
      if (rng_.Chance(0.25)) {
        Edge(student, Pred("teachingAssistantOf"),
             courses[rng_.Uniform(courses.size())]);
      }
      // Some graduate students co-author publications.
      if (rng_.Chance(0.3)) {
        std::string pub = student + "/Publication0";
        AddType(pub, "Publication");
        Edge(pub, Pred("publicationAuthor"), student);
      }
    }
  }

  const LubmOptions& options_;
  Rng rng_;
  std::vector<std::string> universities_;
  std::vector<Triple> triples_;
};

}  // namespace

std::vector<Triple> GenerateLubm(const LubmOptions& options) {
  LubmBuilder builder(options);
  return builder.Build();
}

}  // namespace amber
