#include "gen/scale_free.h"

#include <algorithm>

#include "util/random.h"

namespace amber {

std::vector<Triple> GenerateScaleFree(const ScaleFreeOptions& options) {
  Rng rng(options.seed);
  std::vector<Triple> triples;
  const uint64_t num_attrs = static_cast<uint64_t>(
      static_cast<double>(options.num_edge_triples) * options.attr_fraction);
  triples.reserve(options.num_edge_triples + num_attrs);

  auto entity = [&](uint64_t i) {
    return Term::Iri(options.entity_prefix + std::to_string(i));
  };
  auto predicate = [&](uint64_t i) {
    return Term::Iri(options.predicate_prefix + std::to_string(i));
  };

  ZipfSampler pred_sampler(options.num_predicates, options.predicate_zipf);
  ZipfSampler lit_pred_sampler(options.num_literal_predicates, 1.1);
  ZipfSampler lit_val_sampler(options.num_literal_values, 1.05);

  // Preferential attachment: objects are drawn from the endpoint pool with
  // probability `preferential_bias` (rich get richer), else uniformly.
  std::vector<uint32_t> endpoint_pool;
  endpoint_pool.reserve(options.num_edge_triples * 2);

  for (uint64_t e = 0; e < options.num_edge_triples; ++e) {
    uint32_t s = static_cast<uint32_t>(rng.Uniform(options.num_entities));
    uint32_t o;
    if (!endpoint_pool.empty() && rng.Chance(options.preferential_bias)) {
      o = endpoint_pool[rng.Uniform(endpoint_pool.size())];
    } else {
      o = static_cast<uint32_t>(rng.Uniform(options.num_entities));
    }
    if (o == s) {  // keep self-loops rare but legal
      if (!rng.Chance(0.02)) {
        o = static_cast<uint32_t>(rng.Uniform(options.num_entities));
      }
    }
    uint64_t p = pred_sampler.Sample(&rng);
    triples.emplace_back(entity(s), predicate(p), entity(o));
    // Price-model attachment: in-degree drives future popularity (as with
    // real-world RDF hubs); subjects enter the pool only occasionally.
    endpoint_pool.push_back(o);
    if (rng.Chance(0.15)) endpoint_pool.push_back(s);
  }

  // Literal attributes: subjects biased towards high-degree entities so
  // attribute-rich hubs exist (as in infobox data).
  for (uint64_t a = 0; a < num_attrs; ++a) {
    uint32_t s;
    if (!endpoint_pool.empty() && rng.Chance(0.5)) {
      s = endpoint_pool[rng.Uniform(endpoint_pool.size())];
    } else {
      s = static_cast<uint32_t>(rng.Uniform(options.num_entities));
    }
    // The numeric branch draws from the rng only when enabled, so the
    // default configuration reproduces the original triple stream bit for
    // bit (benchmark datasets stay comparable across PRs).
    if (options.numeric_attr_fraction > 0 &&
        rng.Chance(options.numeric_attr_fraction)) {
      uint64_t p = rng.Uniform(std::max<uint32_t>(
          1, options.num_numeric_predicates));
      uint64_t v = rng.Uniform(std::max<uint32_t>(
          1, options.numeric_value_range));
      triples.emplace_back(
          entity(s),
          Term::Iri(options.predicate_prefix + "num" + std::to_string(p)),
          Term::Literal(std::to_string(v),
                        "http://www.w3.org/2001/XMLSchema#integer"));
      continue;
    }
    uint64_t p = lit_pred_sampler.Sample(&rng);
    uint64_t v = lit_val_sampler.Sample(&rng);
    triples.emplace_back(
        entity(s), Term::Iri(options.predicate_prefix + "lit" +
                             std::to_string(p)),
        Term::Literal("Value" + std::to_string(v)));
  }
  return triples;
}

ScaleFreeOptions DbpediaProfile(double scale) {
  ScaleFreeOptions o;
  o.seed = 0xDBED1A;
  o.num_entities = static_cast<uint32_t>(60000 * scale);
  o.num_edge_triples = static_cast<uint64_t>(180000 * scale);
  o.num_predicates = 676;
  o.predicate_zipf = 1.25;
  o.attr_fraction = 0.25;
  o.num_literal_predicates = 40;
  o.num_literal_values = std::max<uint32_t>(
      200, static_cast<uint32_t>(2000 * scale));
  o.preferential_bias = 0.7;
  o.entity_prefix = "http://dbpedia.example.org/resource/E";
  o.predicate_prefix = "http://dbpedia.example.org/ontology/p";
  return o;
}

ScaleFreeOptions YagoProfile(double scale) {
  ScaleFreeOptions o;
  o.seed = 0x7A60;
  o.num_entities = static_cast<uint32_t>(55000 * scale);
  o.num_edge_triples = static_cast<uint64_t>(165000 * scale);
  o.num_predicates = 44;
  o.predicate_zipf = 1.1;
  o.attr_fraction = 0.2;
  o.num_literal_predicates = 12;
  o.num_literal_values = std::max<uint32_t>(
      150, static_cast<uint32_t>(1500 * scale));
  o.preferential_bias = 0.65;
  o.entity_prefix = "http://yago.example.org/resource/E";
  o.predicate_prefix = "http://yago.example.org/ontology/p";
  return o;
}

}  // namespace amber
