// From-scratch LUBM-style dataset generator.
//
// LUBM (the Lehigh University Benchmark) is itself a synthetic generator;
// this module re-implements its university schema and growth rules so the
// paper's LUBM100 experiments can be reproduced at laptop scale (the scaling
// factor is the number of universities, as in the original).
//
// The generated data exposes exactly 13 resource-valued predicates —
// matching the paper's Table 4 edge-type count for LUBM — plus literal
// predicates (name, emailAddress, telephone, researchInterest) that become
// vertex attributes in the multigraph.

#ifndef AMBER_GEN_LUBM_H_
#define AMBER_GEN_LUBM_H_

#include <cstdint>
#include <vector>

#include "rdf/term.h"

namespace amber {

/// Options for the LUBM-style generator.
struct LubmOptions {
  /// Scaling factor: number of universities (LUBM(N)).
  int universities = 1;
  /// RNG seed; every run with the same options is bit-identical.
  uint64_t seed = 42;
};

/// Generates a LUBM-style tripleset (~100k triples per university).
std::vector<Triple> GenerateLubm(const LubmOptions& options);

}  // namespace amber

#endif  // AMBER_GEN_LUBM_H_
