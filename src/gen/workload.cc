#include "gen/workload.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>
#include <unordered_set>

#include "rdf/literal_value.h"

namespace amber {

namespace {

// Renders a double as a SPARQL number token (integers stay integral so the
// lexer reparses them as xsd:integer; everything FILTER compares is
// numeric, so the datatype choice does not change results). Returns "" for
// values the lexer's digits-and-dot number syntax cannot express (the
// caller then keeps the literal as a constant instead of filtering).
std::string NumberToken(double v) {
  if (!std::isfinite(v)) return "";
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  for (const char* c = buf; *c; ++c) {
    if (*c == 'e' || *c == 'E') return "";
  }
  return buf;
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(const std::vector<Triple>& data)
    : data_(data) {
  auto intern = [this](const Term& t) -> uint32_t {
    std::string token = t.ToNTriples();
    auto it = entity_index_.find(token);
    if (it != entity_index_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(entities_.size());
    entities_.push_back(token);
    entity_index_.emplace(std::move(token), id);
    incident_.emplace_back();
    return id;
  };
  for (uint32_t i = 0; i < data_.size(); ++i) {
    const Triple& t = data_[i];
    uint32_t s = intern(t.subject);
    incident_[s].push_back(Incident{i, /*as_subject=*/true});
    if (t.object.is_resource()) {
      uint32_t o = intern(t.object);
      if (o != s) {
        incident_[o].push_back(Incident{i, /*as_subject=*/false});
      }
    } else {
      LiteralValue v = LiteralValueOf(t.object);
      if (v.numeric) numeric_values_[t.predicate.value].push_back(v.number);
    }
  }
  for (auto& [pred, values] : numeric_values_) {
    (void)pred;
    std::sort(values.begin(), values.end());
  }
}

std::vector<std::string> WorkloadGenerator::Generate(
    QueryShape shape, const WorkloadOptions& options) const {
  Rng rng(options.seed);
  std::vector<std::string> queries;
  int failures = 0;
  const int max_failures = options.count * 200;
  while (static_cast<int>(queries.size()) < options.count &&
         failures < max_failures) {
    std::string q;
    bool ok = (shape == QueryShape::kStar) ? BuildStar(&rng, options, &q)
                                           : BuildComplex(&rng, options, &q);
    if (ok) {
      queries.push_back(std::move(q));
    } else {
      ++failures;
    }
  }
  return queries;
}

bool WorkloadGenerator::BuildStar(Rng* rng, const WorkloadOptions& options,
                                  std::string* out) const {
  if (entities_.empty()) return false;
  const uint32_t center = static_cast<uint32_t>(rng->Uniform(entities_.size()));
  const std::vector<Incident>& inc = incident_[center];
  const size_t k = static_cast<size_t>(options.query_size);
  if (inc.size() < k) return false;  // needs >= k incident triples

  // Split incident triples into literal and edge triples so we can aim for
  // the requested literal fraction.
  std::vector<uint32_t> literal_triples, edge_triples;
  for (const Incident& i : inc) {
    if (data_[i.triple_index].object.is_literal()) {
      literal_triples.push_back(i.triple_index);
    } else {
      edge_triples.push_back(i.triple_index);
    }
  }
  size_t want_literals = std::min(
      literal_triples.size(),
      static_cast<size_t>(static_cast<double>(k) * options.literal_fraction));
  if (edge_triples.size() + want_literals < k) {
    want_literals = k - std::min(k, edge_triples.size());
    if (literal_triples.size() < want_literals) return false;
  }
  const size_t want_edges = k - want_literals;
  if (edge_triples.size() < want_edges) return false;

  std::vector<uint32_t> chosen;
  for (size_t idx : rng->Sample(literal_triples.size(), want_literals)) {
    chosen.push_back(literal_triples[idx]);
  }
  for (size_t idx : rng->Sample(edge_triples.size(), want_edges)) {
    chosen.push_back(edge_triples[idx]);
  }
  *out = Render(chosen, rng, options, entities_[center]);
  return true;
}

bool WorkloadGenerator::BuildComplex(Rng* rng, const WorkloadOptions& options,
                                     std::string* out) const {
  if (entities_.empty()) return false;
  const size_t k = static_cast<size_t>(options.query_size);
  const uint32_t start = static_cast<uint32_t>(rng->Uniform(entities_.size()));
  if (incident_[start].empty()) return false;

  std::vector<uint32_t> frontier{start};
  std::unordered_set<uint32_t> chosen_set;
  std::vector<uint32_t> chosen;

  int stall = 0;
  while (chosen.size() < k && stall < 200) {
    const uint32_t e = frontier[rng->Uniform(frontier.size())];
    const std::vector<Incident>& inc = incident_[e];
    if (inc.empty()) {
      ++stall;
      continue;
    }
    const Incident& pick = inc[rng->Uniform(inc.size())];
    if (!chosen_set.insert(pick.triple_index).second) {
      ++stall;
      continue;
    }
    stall = 0;
    chosen.push_back(pick.triple_index);
    const Triple& t = data_[pick.triple_index];
    // Extend the frontier through the other endpoint (navigating the
    // neighbourhood through predicate links, Section 7.2).
    const Term& other = pick.as_subject ? t.object : t.subject;
    if (other.is_resource()) {
      auto it = entity_index_.find(other.ToNTriples());
      if (it != entity_index_.end()) frontier.push_back(it->second);
    }
  }
  if (chosen.size() < k) return false;
  *out = Render(chosen, rng, options, /*center=*/"");
  return true;
}

std::string WorkloadGenerator::Render(const std::vector<uint32_t>& chosen,
                                      Rng* rng,
                                      const WorkloadOptions& options,
                                      const std::string& center) const {
  // Assign variables to entities in first-use order; the star center (if
  // any) is always ?X0 and never a constant.
  std::unordered_map<std::string, std::string> var_of;
  std::vector<std::string> var_order;
  std::unordered_set<std::string> constants;

  if (!center.empty()) {
    // The star's central vertex is always ?X0 (paper convention).
    var_order.push_back("?X0");
    var_of.emplace(center, "?X0");
  }

  auto slot_token = [&](const Term& term) -> std::string {
    std::string token = term.ToNTriples();
    if (constants.count(token)) return token;
    auto it = var_of.find(token);
    if (it != var_of.end()) return it->second;
    // First sight of this entity: maybe freeze it as a constant IRI.
    if (token != center && rng->Chance(options.constant_iri_probability)) {
      constants.insert(token);
      return token;
    }
    std::string var = "?X" + std::to_string(var_of.size());
    var_order.push_back(var);
    var_of.emplace(std::move(token), var);
    return var_of[term.ToNTriples()];
  };

  // FILTER generalization (the selectivity knob): a numeric literal
  // pattern becomes `?s <p> ?Fk` plus a FILTER window over the predicate's
  // global value list, slid to contain this triple's own value so the
  // query keeps its witness.
  std::vector<std::string> filter_lines;
  size_t next_filter_var = 0;
  auto try_filter = [&](const Triple& t) -> std::string {
    if (options.filter_probability <= 0 ||
        !rng->Chance(options.filter_probability)) {
      return "";
    }
    LiteralValue v = LiteralValueOf(t.object);
    if (!v.numeric) return "";
    auto it = numeric_values_.find(t.predicate.value);
    if (it == numeric_values_.end() || it->second.size() < 2) return "";
    const std::vector<double>& values = it->second;
    const size_t n = values.size();
    size_t width = static_cast<size_t>(
        std::lround(static_cast<double>(n) * options.filter_selectivity));
    width = std::min(n, std::max<size_t>(1, width));
    // Window [start, start+width) containing this value's position.
    size_t pos = static_cast<size_t>(
        std::lower_bound(values.begin(), values.end(), v.number) -
        values.begin());
    size_t start = pos >= width / 2 ? pos - width / 2 : 0;
    start = std::min(start, n - width);
    std::string lo = NumberToken(values[start]);
    std::string hi = NumberToken(values[start + width - 1]);
    if (lo.empty() || hi.empty()) return "";
    std::string var = "?F" + std::to_string(next_filter_var++);
    filter_lines.push_back("  FILTER(" + var + " >= " + lo + " && " + var +
                           " <= " + hi + ")\n");
    return var;
  };

  std::string body;
  for (uint32_t idx : chosen) {
    const Triple& t = data_[idx];
    std::string s = slot_token(t.subject);
    std::string o;
    if (t.object.is_literal()) {
      o = try_filter(t);
      if (o.empty()) o = t.object.ToNTriples();
    } else {
      o = slot_token(t.object);
    }
    body += "  " + s + " " + t.predicate.ToNTriples() + " " + o + " .\n";
  }
  for (const std::string& line : filter_lines) body += line;

  // Guarantee at least one variable (an all-constant query is legal but
  // pointless as a benchmark): demote one constant if necessary.
  if (var_order.empty()) {
    // Rebuild with the first subject as a variable (FILTER generalizations
    // are dropped with the body: their patterns revert to constants).
    filter_lines.clear();
    const Triple& t = data_[chosen[0]];
    std::string token = t.subject.ToNTriples();
    constants.erase(token);
    var_of.clear();
    var_order.clear();
    std::string var = "?X0";
    var_order.push_back(var);
    var_of.emplace(token, var);
    body.clear();
    for (uint32_t idx : chosen) {
      const Triple& tt = data_[idx];
      auto tok = [&](const Term& term) -> std::string {
        std::string tkn = term.ToNTriples();
        auto it = var_of.find(tkn);
        if (it != var_of.end()) return it->second;
        return tkn;
      };
      std::string o = tt.object.is_literal() ? tt.object.ToNTriples()
                                             : tok(tt.object);
      body +=
          "  " + tok(tt.subject) + " " + tt.predicate.ToNTriples() + " " + o +
          " .\n";
    }
  }

  // Factorization stressor: multiply the result cardinality by appending
  // `anchor <p> ?SFi` patterns over the anchor's highest-fanout resource
  // predicate. Purely additive and deterministic — no rng draws — so
  // satellite_fanout == 0 reproduces the exact pre-knob text.
  if (options.satellite_fanout > 0) {
    std::string anchor_token;
    std::string anchor_var;
    if (!center.empty() && var_of.count(center) > 0) {
      anchor_token = center;
      anchor_var = var_of[center];
    } else {
      for (uint32_t idx : chosen) {
        std::string tkn = data_[idx].subject.ToNTriples();
        auto it = var_of.find(tkn);
        if (it != var_of.end()) {
          anchor_token = tkn;
          anchor_var = it->second;
          break;
        }
      }
    }
    auto eit = entity_index_.find(anchor_token);
    if (!anchor_var.empty() && eit != entity_index_.end()) {
      // Ordered map: ties on count break to the lexicographically
      // smallest predicate, independent of data order.
      std::map<std::string, uint32_t> by_pred;
      for (const Incident& i : incident_[eit->second]) {
        if (!i.as_subject) continue;
        const Triple& t = data_[i.triple_index];
        if (!t.object.is_resource()) continue;
        ++by_pred[t.predicate.ToNTriples()];
      }
      std::string best;
      uint32_t best_count = 0;
      for (const auto& [pred, cnt] : by_pred) {
        if (cnt > best_count) {
          best = pred;
          best_count = cnt;
        }
      }
      if (!best.empty()) {
        for (int i = 0; i < options.satellite_fanout; ++i) {
          std::string var = "?SF" + std::to_string(i);
          var_order.push_back(var);
          body += "  " + anchor_var + " " + best + " " + var + " .\n";
        }
      }
    }
  }

  std::string head = "SELECT";
  for (const std::string& v : var_order) head += " " + v;
  return head + " WHERE {\n" + body + "}";
}

}  // namespace amber
