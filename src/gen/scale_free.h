// Scale-free RDF generator: preferential-attachment topology with
// Zipf-skewed predicate usage and a pool of shared literal values.
//
// This stands in for the real-world DBPEDIA and YAGO dumps (see
// docs/BENCHMARKS.md, "Datasets"): the properties AMbER's evaluation
// depends on — predicate diversity,
// heavy-tailed vertex degrees, star-rich neighbourhoods, selective literal
// attributes — are reproduced at configurable scale.

#ifndef AMBER_GEN_SCALE_FREE_H_
#define AMBER_GEN_SCALE_FREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/term.h"

namespace amber {

/// Options for the scale-free generator.
struct ScaleFreeOptions {
  uint64_t seed = 1;
  /// Number of distinct entities (IRIs).
  uint32_t num_entities = 60000;
  /// Number of resource-object (edge) triples to draw.
  uint64_t num_edge_triples = 180000;
  /// Number of distinct predicates used for edges.
  uint32_t num_predicates = 676;
  /// Zipf exponent of predicate usage (higher = more skew).
  double predicate_zipf = 1.25;
  /// Literal-object triples, as a fraction of num_edge_triples.
  double attr_fraction = 0.25;
  /// Distinct literal-bearing predicates.
  uint32_t num_literal_predicates = 40;
  /// Size of the shared literal value pool (smaller = denser attributes).
  uint32_t num_literal_values = 2000;
  /// Probability that an edge's object is drawn by preferential attachment
  /// (vs uniformly), controlling degree skew.
  double preferential_bias = 0.7;
  /// Fraction of attribute triples emitted as numeric typed literals
  /// ("<n>"^^xsd:integer under dedicated `<prefix>numK` predicates) — the
  /// substrate FILTER range workloads sweep over. 0 (the default) keeps
  /// the generator's output bit-identical to its pre-FILTER behaviour.
  double numeric_attr_fraction = 0.0;
  /// Distinct numeric-literal predicates.
  uint32_t num_numeric_predicates = 8;
  /// Numeric values are drawn uniformly from [0, numeric_value_range).
  uint32_t numeric_value_range = 1000;
  std::string entity_prefix = "http://example.org/resource/E";
  std::string predicate_prefix = "http://example.org/ontology/p";
};

/// Generates the tripleset (deterministic in `options.seed`).
std::vector<Triple> GenerateScaleFree(const ScaleFreeOptions& options);

/// DBpedia-like profile (676 predicates, strong skew), scaled by `scale`
/// (scale 1.0 ~ 225k triples).
ScaleFreeOptions DbpediaProfile(double scale);

/// YAGO-like profile (44 predicates, milder skew), scaled by `scale`.
ScaleFreeOptions YagoProfile(double scale);

}  // namespace amber

#endif  // AMBER_GEN_SCALE_FREE_H_
