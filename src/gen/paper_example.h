// The paper's running example: the RDF tripleset of Figure 1 and the SPARQL
// query of Figure 2, shared by the ground-truth tests and the quickstart
// example.
//
// The triples are listed so that predicates are first seen in the exact
// order t0..t8 of Table 2b, which makes the Table 3 synopsis values
// reproduce verbatim (synopses depend on edge-type ids).
//
// Two deliberate reconciliations of the paper's internal typos (the figures
// disagree with each other; we follow the multigraph figures 1c/2c and the
// worked prose of Sections 4-5, which are self-consistent):
//   * Music_Band's foundedIn value is "1994" in both data and query
//     (Fig. 1a says 1994, Fig. 1b says 1934, the query Fig. 2a says 1934 —
//     yet Fig. 2c maps it to attribute a1, which only exists if the values
//     agree).
//   * The query edge ?X0 -> ?X1 uses wasBornIn (t5) as in Fig. 2b/2c and
//     the Section 4.2/4.3 prose, not livedIn as the SPARQL text of Fig. 2a
//     (with livedIn the query provably has zero answers on the Figure 1
//     data, contradicting Section 5's walkthrough).

#ifndef AMBER_GEN_PAPER_EXAMPLE_H_
#define AMBER_GEN_PAPER_EXAMPLE_H_

namespace amber {

/// Figure 1a data as N-Triples (predicates first seen in t0..t8 order).
inline constexpr const char* kPaperExampleNTriples = R"(
<http://dbpedia.org/resource/London> <http://dbpedia.org/ontology/isPartOf> <http://dbpedia.org/resource/England> .
<http://dbpedia.org/resource/England> <http://dbpedia.org/ontology/hasCapital> <http://dbpedia.org/resource/London> .
<http://dbpedia.org/resource/London> <http://dbpedia.org/ontology/hasStadium> <http://dbpedia.org/resource/WembleyStadium> .
<http://dbpedia.org/resource/Amy_Winehouse> <http://dbpedia.org/ontology/livedIn> <http://dbpedia.org/resource/United_States> .
<http://dbpedia.org/resource/Amy_Winehouse> <http://dbpedia.org/ontology/diedIn> <http://dbpedia.org/resource/London> .
<http://dbpedia.org/resource/Amy_Winehouse> <http://dbpedia.org/ontology/wasBornIn> <http://dbpedia.org/resource/London> .
<http://dbpedia.org/resource/Music_Band> <http://dbpedia.org/ontology/wasFormedIn> <http://dbpedia.org/resource/London> .
<http://dbpedia.org/resource/Amy_Winehouse> <http://dbpedia.org/ontology/wasPartOf> <http://dbpedia.org/resource/Music_Band> .
<http://dbpedia.org/resource/Amy_Winehouse> <http://dbpedia.org/ontology/wasMarriedTo> <http://dbpedia.org/resource/Blake_Fielder-Civil> .
<http://dbpedia.org/resource/Blake_Fielder-Civil> <http://dbpedia.org/ontology/livedIn> <http://dbpedia.org/resource/United_States> .
<http://dbpedia.org/resource/Christopher_Nolan> <http://dbpedia.org/ontology/wasBornIn> <http://dbpedia.org/resource/London> .
<http://dbpedia.org/resource/Christopher_Nolan> <http://dbpedia.org/ontology/livedIn> <http://dbpedia.org/resource/England> .
<http://dbpedia.org/resource/Christopher_Nolan> <http://dbpedia.org/ontology/isPartOf> <http://dbpedia.org/resource/Dark_Knight_Trilogy> .
<http://dbpedia.org/resource/WembleyStadium> <http://dbpedia.org/ontology/hasCapacityOf> "90000" .
<http://dbpedia.org/resource/Music_Band> <http://dbpedia.org/ontology/foundedIn> "1994" .
<http://dbpedia.org/resource/Music_Band> <http://dbpedia.org/ontology/hasName> "MCA_Band" .
)";

/// Figure 2a query (with the two reconciliations described above). The one
/// embedding maps ?X1=London, ?X2=England, ?X3=Amy, ?X4=Wembley,
/// ?X5=Music_Band, ?X6=Blake; ?X0 is a satellite with candidates
/// {Amy, Christopher_Nolan} -> 2 embeddings.
inline constexpr const char* kPaperExampleQuery = R"(
PREFIX x: <http://dbpedia.org/resource/>
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?X0 ?X1 ?X2 ?X3 ?X4 ?X5 ?X6 WHERE {
  ?X0 y:wasBornIn ?X1 .
  ?X1 y:isPartOf ?X2 .
  ?X2 y:hasCapital ?X1 .
  ?X1 y:hasStadium ?X4 .
  ?X3 y:wasBornIn ?X1 .
  ?X3 y:diedIn ?X1 .
  ?X3 y:wasMarriedTo ?X6 .
  ?X3 y:wasPartOf ?X5 .
  ?X5 y:wasFormedIn ?X1 .
  ?X4 y:hasCapacityOf "90000" .
  ?X5 y:hasName "MCA_Band" .
  ?X5 y:foundedIn "1994" .
  ?X3 y:livedIn x:United_States .
}
)";

/// The literal Figure 2a variant (livedIn between ?X0 and ?X1): zero
/// answers on the Figure 1 data — used as a negative ground-truth test.
inline constexpr const char* kPaperExampleQueryLiteralFig2a = R"(
PREFIX x: <http://dbpedia.org/resource/>
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?X0 ?X1 ?X2 ?X3 ?X4 ?X5 ?X6 WHERE {
  ?X0 y:livedIn ?X1 .
  ?X1 y:isPartOf ?X2 .
  ?X2 y:hasCapital ?X1 .
  ?X1 y:hasStadium ?X4 .
  ?X3 y:wasBornIn ?X1 .
  ?X3 y:diedIn ?X1 .
  ?X3 y:wasMarriedTo ?X6 .
  ?X3 y:wasPartOf ?X5 .
  ?X5 y:wasFormedIn ?X1 .
  ?X4 y:hasCapacityOf "90000" .
  ?X5 y:hasName "MCA_Band" .
  ?X5 y:foundedIn "1994" .
  ?X3 y:livedIn x:United_States .
}
)";

}  // namespace amber

#endif  // AMBER_GEN_PAPER_EXAMPLE_H_
