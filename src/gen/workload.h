// SPARQL workload generator following Section 7.2 of the paper.
//
// Two query shapes, both grown from the data so every query has at least one
// answer (the source entities are a witness under homomorphism):
//
//   * star-shaped:    pick an initial entity with at least k incident
//                     triples; those triples form a star around the central
//                     variable ?X0;
//   * complex-shaped: random-walk the neighbourhood of an initial entity
//                     through predicate links until k triples are collected.
//
// Some object literals are kept as constants (they become query-vertex
// attributes) and some entities are kept as constant IRIs; everything else
// becomes a variable. Queries are emitted as SPARQL text so that every
// engine exercises its full parse/plan/execute path.

#ifndef AMBER_GEN_WORKLOAD_H_
#define AMBER_GEN_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"
#include "util/random.h"
#include "util/status.h"

namespace amber {

/// Query shape of Section 7.2.
enum class QueryShape { kStar, kComplex };

/// Options for one workload batch.
struct WorkloadOptions {
  uint64_t seed = 7;
  /// Query size k: number of triple patterns (10..50 in the paper).
  int query_size = 10;
  /// Number of queries to generate.
  int count = 200;
  /// Target fraction of literal-object (attribute) patterns per query.
  double literal_fraction = 0.2;
  /// Probability that a non-central entity is kept as a constant IRI.
  double constant_iri_probability = 0.1;
  /// Probability that a numeric literal-object pattern is generalized to a
  /// fresh variable plus a FILTER range (`?s <p> ?Fk . FILTER(?Fk >= lo &&
  /// ?Fk <= hi)`). Needs numeric typed literals in the data; patterns whose
  /// literal is not numeric are left as constants.
  double filter_probability = 0.0;
  /// Selectivity knob: the FILTER window covers this fraction of the
  /// predicate's global value list (0.01 = top-percentile-narrow, 0.9 =
  /// nearly everything). The window is slid to contain the source triple's
  /// own value, so the query keeps its witness and stays answerable.
  double filter_selectivity = 0.1;
  /// Factorization stressor: append this many extra patterns
  /// `anchor <p> ?SFi` (fresh projected variables) on the query's anchor
  /// vertex, all over the anchor's highest-fanout resource predicate, so
  /// the result cardinality multiplies by fanout^satellite_fanout while
  /// the factorized representation stays O(groups). Deterministic (no rng
  /// draws) and skipped when the anchor has no resource edges; 0 (the
  /// default) leaves the generated text bit-identical to before.
  int satellite_fanout = 0;
};

/// \brief Generates star-shaped and complex-shaped SPARQL workloads from a
/// tripleset.
class WorkloadGenerator {
 public:
  /// Indexes the tripleset (entity -> incident triples).
  explicit WorkloadGenerator(const std::vector<Triple>& data);

  /// Generates `options.count` queries of the given shape. Returns fewer
  /// queries only when the data cannot support the requested size at all.
  std::vector<std::string> Generate(QueryShape shape,
                                    const WorkloadOptions& options) const;

  /// Number of distinct entities (resources) indexed.
  size_t NumEntities() const { return entities_.size(); }

 private:
  struct Incident {
    uint32_t triple_index;
    bool as_subject;
  };

  bool BuildStar(Rng* rng, const WorkloadOptions& options,
                 std::string* out) const;
  bool BuildComplex(Rng* rng, const WorkloadOptions& options,
                    std::string* out) const;

  // Renders chosen triple indices as SPARQL, assigning variables/constants.
  std::string Render(const std::vector<uint32_t>& chosen, Rng* rng,
                     const WorkloadOptions& options,
                     const std::string& center) const;

  const std::vector<Triple>& data_;
  std::vector<std::string> entities_;  // entity tokens (resources)
  std::unordered_map<std::string, uint32_t> entity_index_;
  std::vector<std::vector<Incident>> incident_;  // per entity
  // Sorted numeric literal values per predicate IRI: the value lists the
  // FILTER selectivity knob slides its windows over.
  std::unordered_map<std::string, std::vector<double>> numeric_values_;
};

}  // namespace amber

#endif  // AMBER_GEN_WORKLOAD_H_
