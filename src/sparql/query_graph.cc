#include "sparql/query_graph.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "sparql/filters.h"

namespace amber {

namespace {

void SortDedup(std::vector<EdgeTypeId>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

void QueryGraph::AddEdgeType(uint32_t from, uint32_t to, EdgeTypeId type) {
  for (QueryEdge& e : edges_) {
    if (e.from == from && e.to == to) {
      e.types.push_back(type);
      return;
    }
  }
  edges_.push_back(QueryEdge{from, to, {type}});
}

Result<QueryGraph> QueryGraph::Build(const SelectQuery& query,
                                     const RdfDictionaries& dicts) {
  AMBER_ASSIGN_OR_RETURN(FilterAnalysis filters, AnalyzeFilters(query));

  QueryGraph q;
  q.distinct_ = query.distinct;
  q.limit_ = query.limit;

  auto mark_unsat = [&q](const std::string& reason) {
    if (!q.unsatisfiable_) {
      q.unsatisfiable_ = true;
      q.unsat_reason_ = reason;
    }
  };

  std::unordered_map<std::string, uint32_t> var_index;
  auto vertex_of = [&](const std::string& name) -> uint32_t {
    auto it = var_index.find(name);
    if (it != var_index.end()) return it->second;
    uint32_t idx = static_cast<uint32_t>(q.vertices_.size());
    QueryVertex v;
    v.name = name;
    q.vertices_.push_back(std::move(v));
    var_index.emplace(name, idx);
    return idx;
  };

  // Constant (IRI / blank) terms resolve through the vertex dictionary.
  auto resolve_vertex = [&](const PatternTerm& t) -> VertexId {
    auto id = dicts.vertices().Find(RdfDictionaries::VertexKey(t.ToTerm()));
    if (!id) {
      mark_unsat("unknown resource " + t.ToString());
      return kInvalidId;
    }
    return *id;
  };

  // IRI-constraint accumulation keyed by (variable, anchor).
  std::map<std::pair<uint32_t, VertexId>, IriConstraint> iri_constraints;

  for (size_t pi = 0; pi < query.patterns.size(); ++pi) {
    const TriplePattern& p = query.patterns[pi];
    if (p.predicate.is_variable()) {
      return Status::Unimplemented(
          "variable predicates are outside the paper's query model: " +
          p.ToString());
    }
    if (p.subject.is_literal()) {
      return Status::InvalidArgument("literal subject in pattern: " +
                                     p.ToString());
    }

    // FILTERed object variable: the pattern becomes a predicate constraint
    // on the subject (or a ground predicate check for constant subjects)
    // instead of an edge — see sparql/filters.h for the semantics.
    if (filters.IsFiltered(pi)) {
      const VarFilter& vf = filters.FilterFor(pi);
      auto pred_id = dicts.attr_predicates().Find(
          RdfDictionaries::PredicateKey(p.predicate.ToTerm()));
      if (p.subject.is_variable()) {
        uint32_t u = vertex_of(p.subject.value);
        if (!pred_id) {
          mark_unsat("predicate has no literal values in " + p.ToString());
          continue;
        }
        q.vertices_[u].preds.push_back(
            PredicateConstraint{*pred_id, vf.comparisons});
      } else {
        VertexId s = resolve_vertex(p.subject);
        if (s == kInvalidId) continue;
        if (!pred_id) {
          mark_unsat("predicate has no literal values in " + p.ToString());
          continue;
        }
        q.ground_preds_.push_back(
            GroundPredicate{s, *pred_id, vf.comparisons});
      }
      continue;
    }

    // Literal object: attribute on the subject (Section 2.2.1).
    if (p.object.is_literal()) {
      auto attr_id = dicts.attributes().Find(RdfDictionaries::AttributeKey(
          p.predicate.ToTerm(), p.object.ToTerm()));
      if (p.subject.is_variable()) {
        uint32_t u = vertex_of(p.subject.value);
        if (!attr_id) {
          mark_unsat("unknown <predicate, literal> pair in " + p.ToString());
          continue;
        }
        q.vertices_[u].attrs.push_back(*attr_id);
      } else {
        VertexId s = resolve_vertex(p.subject);
        if (s == kInvalidId) continue;
        if (!attr_id) {
          mark_unsat("unknown <predicate, literal> pair in " + p.ToString());
          continue;
        }
        q.ground_attrs_.push_back(GroundAttribute{s, *attr_id});
      }
      continue;
    }

    // IRI/blank object: an edge. The predicate must be a known edge type.
    auto type_id = dicts.edge_types().Find(
        RdfDictionaries::PredicateKey(p.predicate.ToTerm()));
    const bool s_var = p.subject.is_variable();
    const bool o_var = p.object.is_variable();

    if (s_var && o_var) {
      uint32_t us = vertex_of(p.subject.value);
      uint32_t uo = vertex_of(p.object.value);
      if (!type_id) {
        mark_unsat("unknown predicate in " + p.ToString());
        continue;
      }
      if (us == uo) {
        q.vertices_[us].self_types.push_back(*type_id);
      } else {
        q.AddEdgeType(us, uo, *type_id);
      }
    } else if (s_var && !o_var) {
      uint32_t u = vertex_of(p.subject.value);
      VertexId anchor = resolve_vertex(p.object);
      if (anchor == kInvalidId) continue;
      if (!type_id) {
        mark_unsat("unknown predicate in " + p.ToString());
        continue;
      }
      iri_constraints[{u, anchor}].out_types.push_back(*type_id);
    } else if (!s_var && o_var) {
      uint32_t u = vertex_of(p.object.value);
      VertexId anchor = resolve_vertex(p.subject);
      if (anchor == kInvalidId) continue;
      if (!type_id) {
        mark_unsat("unknown predicate in " + p.ToString());
        continue;
      }
      iri_constraints[{u, anchor}].in_types.push_back(*type_id);
    } else {
      VertexId s = resolve_vertex(p.subject);
      VertexId o = resolve_vertex(p.object);
      if (s == kInvalidId || o == kInvalidId) continue;
      if (!type_id) {
        mark_unsat("unknown predicate in " + p.ToString());
        continue;
      }
      q.ground_edges_.push_back(GroundEdge{s, *type_id, o});
    }
  }

  // Attach accumulated IRI constraints to their vertices.
  for (auto& [key, constraint] : iri_constraints) {
    constraint.anchor = key.second;
    SortDedup(&constraint.out_types);
    SortDedup(&constraint.in_types);
    q.vertices_[key.first].iris.push_back(std::move(constraint));
  }

  // Projection: SELECT * keeps all variables in first-appearance order.
  if (query.select_all) {
    for (uint32_t u = 0; u < q.vertices_.size(); ++u) {
      q.projection_.push_back(u);
    }
    if (q.projection_.empty()) {
      return Status::InvalidArgument("SELECT * with no variables in WHERE");
    }
  } else {
    for (const std::string& name : query.projection) {
      auto it = var_index.find(name);
      if (it == var_index.end()) {
        return Status::InvalidArgument("projected variable ?" + name +
                                       " does not occur in WHERE clause");
      }
      q.projection_.push_back(it->second);
    }
  }

  q.Finalize();
  return q;
}

void QueryGraph::Finalize() {
  for (QueryVertex& v : vertices_) {
    std::sort(v.attrs.begin(), v.attrs.end());
    v.attrs.erase(std::unique(v.attrs.begin(), v.attrs.end()), v.attrs.end());
    SortDedup(&v.self_types);
  }
  for (QueryEdge& e : edges_) {
    SortDedup(&e.types);
  }

  incident_.assign(vertices_.size(), {});
  neighbors_.assign(vertices_.size(), {});
  for (uint32_t i = 0; i < edges_.size(); ++i) {
    incident_[edges_[i].from].emplace_back(i, true);
    incident_[edges_[i].to].emplace_back(i, false);
    neighbors_[edges_[i].from].push_back(edges_[i].to);
    neighbors_[edges_[i].to].push_back(edges_[i].from);
  }
  for (auto& nbrs : neighbors_) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
}

Synopsis QueryGraph::VertexSynopsis(uint32_t u) const {
  SynopsisBuilder builder;
  for (const auto& [edge_idx, is_from] : incident_[u]) {
    const QueryEdge& e = edges_[edge_idx];
    // u --types--> other is outgoing for u; other --types--> u incoming.
    builder.AddMultiEdge(is_from ? Direction::kOut : Direction::kIn, e.types);
  }
  const QueryVertex& v = vertices_[u];
  for (const IriConstraint& c : v.iris) {
    if (!c.out_types.empty()) {
      builder.AddMultiEdge(Direction::kOut, c.out_types);
    }
    if (!c.in_types.empty()) {
      builder.AddMultiEdge(Direction::kIn, c.in_types);
    }
  }
  if (!v.self_types.empty()) {
    builder.AddMultiEdge(Direction::kOut, v.self_types);
    builder.AddMultiEdge(Direction::kIn, v.self_types);
  }
  // Query synopses must not constrain empty sides (see Synopsis docs).
  return builder.Build().NormalizedForQuery();
}

size_t QueryGraph::SignatureEdgeCount(uint32_t u) const {
  size_t count = 0;
  for (const auto& [edge_idx, is_from] : incident_[u]) {
    (void)is_from;
    count += edges_[edge_idx].types.size();
  }
  for (const IriConstraint& c : vertices_[u].iris) {
    count += c.out_types.size() + c.in_types.size();
  }
  count += 2 * vertices_[u].self_types.size();
  return count;
}

}  // namespace amber
