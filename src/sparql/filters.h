// Shared FILTER analysis: validates a query's FilterPredicates against its
// patterns and normalizes them into per-variable conjunctions.
//
// All three engines (AMbER, TripleStore, GraphBacktrack) and the test
// oracle run this exact analysis, so the supported-fragment boundary and
// the FILTER semantics cannot drift between them. The semantics are:
//
//   * a filtered variable is a *literal variable*: it binds literal values
//     of its single pattern's predicate instead of resources;
//   * the pattern `?x <p> ?v` + FILTER(?v ...) is an existential predicate
//     constraint on ?x — "x has some literal under <p> satisfying the
//     conjunction" — contributing no row multiplicity, exactly like the
//     constant-literal attribute patterns of the paper's model;
//   * consequently a filtered variable must occur exactly once, in object
//     position, under a constant predicate, and must not be projected
//     (SELECT * projects only the resource variables). Everything else is
//     Status::Unimplemented.

#ifndef AMBER_SPARQL_FILTERS_H_
#define AMBER_SPARQL_FILTERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/literal_value.h"
#include "sparql/ast.h"
#include "util/status.h"

namespace amber {

/// All FILTER comparisons of one literal variable, tied to its unique
/// pattern.
struct VarFilter {
  std::string var;
  size_t pattern_index = 0;                 // into SelectQuery::patterns
  std::vector<ValueComparison> comparisons;  // the conjunction
};

/// \brief Validated, normalized view of a query's FILTER clause.
struct FilterAnalysis {
  std::vector<VarFilter> var_filters;
  /// Per pattern: index into var_filters, or kNotFiltered.
  std::vector<uint32_t> filter_of_pattern;

  static constexpr uint32_t kNotFiltered = 0xFFFFFFFFu;

  bool HasFilters() const { return !var_filters.empty(); }
  bool IsFiltered(size_t pattern_index) const {
    return filter_of_pattern[pattern_index] != kNotFiltered;
  }
  const VarFilter& FilterFor(size_t pattern_index) const {
    return var_filters[filter_of_pattern[pattern_index]];
  }
};

/// Validates `query.filters` (see the semantics above) and groups them per
/// variable. Fails with Unimplemented for constructs outside the fragment
/// and InvalidArgument for filters on variables absent from the WHERE
/// clause.
Result<FilterAnalysis> AnalyzeFilters(const SelectQuery& query);

}  // namespace amber

#endif  // AMBER_SPARQL_FILTERS_H_
