// Abstract syntax for the SPARQL fragment the engines support:
// SELECT [DISTINCT] vars WHERE { basic graph pattern [FILTER...] }
// [LIMIT n] — the paper's conjunctive fragment (Section 1) extended with
// FILTER conjunctions of comparisons between a variable and a literal
// constant (`=`, `!=`, `<`, `<=`, `>`, `>=`, joined by `&&`). UNION,
// OPTIONAL, GROUP BY, FILTER disjunction/negation/functions/arithmetic
// stay out of scope and are rejected as Unimplemented.

#ifndef AMBER_SPARQL_AST_H_
#define AMBER_SPARQL_AST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/literal_value.h"
#include "rdf/term.h"

namespace amber {

/// One slot of a triple pattern: a variable or a concrete RDF term.
struct PatternTerm {
  enum class Kind : uint8_t { kVariable, kIri, kLiteral, kBlank };

  Kind kind = Kind::kVariable;
  std::string value;     // variable name (no '?'), IRI, lexical form, label
  std::string datatype;  // literals only
  std::string lang;      // literals only

  static PatternTerm Variable(std::string name) {
    PatternTerm t;
    t.kind = Kind::kVariable;
    t.value = std::move(name);
    return t;
  }
  static PatternTerm Iri(std::string iri) {
    PatternTerm t;
    t.kind = Kind::kIri;
    t.value = std::move(iri);
    return t;
  }
  static PatternTerm Literal(std::string lexical, std::string datatype = "",
                             std::string lang = "") {
    PatternTerm t;
    t.kind = Kind::kLiteral;
    t.value = std::move(lexical);
    t.datatype = std::move(datatype);
    t.lang = std::move(lang);
    return t;
  }
  static PatternTerm Blank(std::string label) {
    PatternTerm t;
    t.kind = Kind::kBlank;
    t.value = std::move(label);
    return t;
  }

  bool is_variable() const { return kind == Kind::kVariable; }
  bool is_iri() const { return kind == Kind::kIri; }
  bool is_literal() const { return kind == Kind::kLiteral; }

  /// The concrete RDF term for non-variable slots.
  Term ToTerm() const;

  /// SPARQL surface form ("?x", "<iri>", literal token).
  std::string ToString() const;

  bool operator==(const PatternTerm& o) const {
    return kind == o.kind && value == o.value && datatype == o.datatype &&
           lang == o.lang;
  }
};

/// One triple pattern of the WHERE clause.
struct TriplePattern {
  PatternTerm subject;
  PatternTerm predicate;
  PatternTerm object;

  std::string ToString() const {
    return subject.ToString() + " " + predicate.ToString() + " " +
           object.ToString() + " .";
  }

  bool operator==(const TriplePattern& o) const {
    return subject == o.subject && predicate == o.predicate &&
           object == o.object;
  }
};

/// One FILTER comparison, normalized to `?var op constant` (the parser
/// mirrors `constant op ?var`). `&&` conjunctions are flattened into
/// several FilterPredicates; the constant is always a literal.
struct FilterPredicate {
  std::string var;                    // variable name without '?'
  CompareOp op = CompareOp::kEq;
  PatternTerm value;                  // Kind::kLiteral constant

  /// SPARQL surface form: `FILTER(?age > 25)`. Numeric constants are
  /// rendered as bare numbers when their lexical form allows it.
  std::string ToString() const;

  bool operator==(const FilterPredicate& o) const {
    return var == o.var && op == o.op && value == o.value;
  }
};

/// A parsed SELECT query.
struct SelectQuery {
  bool select_all = false;                 // SELECT *
  bool distinct = false;                   // SELECT DISTINCT
  std::vector<std::string> projection;     // variable names, '?' stripped
  std::vector<TriplePattern> patterns;     // the basic graph pattern
  std::vector<FilterPredicate> filters;    // conjunction over the patterns
  uint64_t limit = 0;                      // 0 = no LIMIT clause

  /// Query size in the paper's sense: the number of triple patterns.
  size_t size() const { return patterns.size(); }
};

}  // namespace amber

#endif  // AMBER_SPARQL_AST_H_
