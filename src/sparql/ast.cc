#include "sparql/ast.h"

namespace amber {

Term PatternTerm::ToTerm() const {
  switch (kind) {
    case Kind::kIri:
      return Term::Iri(value);
    case Kind::kLiteral:
      return Term::Literal(value, datatype, lang);
    case Kind::kBlank:
      return Term::Blank(value);
    case Kind::kVariable:
      break;
  }
  return Term();  // variables have no term form
}

std::string PatternTerm::ToString() const {
  if (is_variable()) return "?" + value;
  return ToTerm().ToNTriples();
}

}  // namespace amber
