#include "sparql/ast.h"

namespace amber {

Term PatternTerm::ToTerm() const {
  switch (kind) {
    case Kind::kIri:
      return Term::Iri(value);
    case Kind::kLiteral:
      return Term::Literal(value, datatype, lang);
    case Kind::kBlank:
      return Term::Blank(value);
    case Kind::kVariable:
      break;
  }
  return Term();  // variables have no term form
}

std::string PatternTerm::ToString() const {
  if (is_variable()) return "?" + value;
  return ToTerm().ToNTriples();
}

std::string FilterPredicate::ToString() const {
  std::string out = "FILTER(?" + var + " ";
  out += CompareOpToken(op);
  out += " ";
  // Bare-number rendering keeps machine-generated FILTERs readable and
  // round-trips through the lexer's number token (which re-attaches the
  // same xsd datatype).
  const bool integer_dt =
      value.datatype == "http://www.w3.org/2001/XMLSchema#integer";
  const bool decimal_dt =
      value.datatype == "http://www.w3.org/2001/XMLSchema#decimal";
  bool bare = (integer_dt || decimal_dt) && !value.value.empty();
  if (bare) {
    size_t i = value.value[0] == '-' ? 1 : 0;
    // The lexer only starts a number token at a digit.
    if (i == value.value.size() || value.value[i] < '0' ||
        value.value[i] > '9') {
      bare = false;
    }
    bool seen_dot = false;
    for (; bare && i < value.value.size(); ++i) {
      char c = value.value[i];
      if (c == '.') {
        if (seen_dot || !decimal_dt) bare = false;
        seen_dot = true;
      } else if (c < '0' || c > '9') {
        bare = false;
      }
    }
    // The lexer maps dotted numbers to decimal, plain ones to integer;
    // only render bare when the reparse reproduces this exact term.
    if (bare && (seen_dot != decimal_dt)) bare = false;
    if (bare && value.value.back() == '.') bare = false;
  }
  out += bare ? value.value : value.ToString();
  out += ")";
  return out;
}

}  // namespace amber
