#include "sparql/filters.h"

#include <algorithm>
#include <unordered_map>

namespace amber {

Result<FilterAnalysis> AnalyzeFilters(const SelectQuery& query) {
  FilterAnalysis analysis;
  analysis.filter_of_pattern.assign(query.patterns.size(),
                                    FilterAnalysis::kNotFiltered);
  if (query.filters.empty()) return analysis;

  // Group the flattened conjunction per variable.
  std::unordered_map<std::string, uint32_t> filter_of_var;
  for (const FilterPredicate& f : query.filters) {
    if (!f.value.is_literal()) {
      return Status::Unimplemented(
          "FILTER comparisons are only supported against literal "
          "constants: " +
          f.ToString());
    }
    auto [it, inserted] = filter_of_var.emplace(
        f.var, static_cast<uint32_t>(analysis.var_filters.size()));
    if (inserted) {
      analysis.var_filters.push_back(VarFilter{f.var, 0, {}});
    }
    analysis.var_filters[it->second].comparisons.push_back(
        ValueComparison{f.op, LiteralValueOf(f.value.ToTerm())});
  }

  // Tie each filtered variable to its unique object-position occurrence.
  for (VarFilter& vf : analysis.var_filters) {
    size_t occurrences = 0;
    for (size_t pi = 0; pi < query.patterns.size(); ++pi) {
      const TriplePattern& p = query.patterns[pi];
      if (p.subject.is_variable() && p.subject.value == vf.var) {
        return Status::Unimplemented(
            "FILTER on a variable used in subject position is not "
            "supported: ?" +
            vf.var);
      }
      if (p.predicate.is_variable() && p.predicate.value == vf.var) {
        return Status::Unimplemented(
            "FILTER on a predicate variable is not supported: ?" + vf.var);
      }
      if (p.object.is_variable() && p.object.value == vf.var) {
        ++occurrences;
        if (occurrences > 1) {
          return Status::Unimplemented(
              "FILTER variable joined across several patterns is not "
              "supported: ?" +
              vf.var);
        }
        if (p.predicate.is_variable()) {
          return Status::Unimplemented(
              "FILTER under a variable predicate is not supported: ?" +
              vf.var);
        }
        vf.pattern_index = pi;
        analysis.filter_of_pattern[pi] =
            static_cast<uint32_t>(&vf - analysis.var_filters.data());
      }
    }
    if (occurrences == 0) {
      return Status::InvalidArgument("FILTER variable ?" + vf.var +
                                     " does not occur in the WHERE clause");
    }
    if (std::find(query.projection.begin(), query.projection.end(),
                  vf.var) != query.projection.end()) {
      return Status::Unimplemented(
          "projecting a FILTERed literal variable is not supported: ?" +
          vf.var);
    }
  }
  return analysis;
}

}  // namespace amber
