#include "sparql/formatter.h"

namespace amber {

std::string FormatQuery(const SelectQuery& query) {
  std::string out = "SELECT";
  if (query.distinct) out += " DISTINCT";
  if (query.select_all) {
    out += " *";
  } else {
    for (const std::string& v : query.projection) {
      out += " ?" + v;
    }
  }
  out += " WHERE {\n";
  for (const TriplePattern& p : query.patterns) {
    out += "  " + p.ToString() + "\n";
  }
  for (const FilterPredicate& f : query.filters) {
    out += "  " + f.ToString() + "\n";
  }
  out += "}";
  if (query.limit != 0) {
    out += " LIMIT " + std::to_string(query.limit);
  }
  return out;
}

}  // namespace amber
