#include "sparql/parser.h"

#include <cctype>
#include <map>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace amber {
namespace {

constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
constexpr std::string_view kXsdDecimal =
    "http://www.w3.org/2001/XMLSchema#decimal";

enum class TokenKind {
  kEof,
  kIdent,    // bare word: SELECT, WHERE, a, ...
  kVar,      // ?name or $name
  kIriRef,   // <...> (value = unescaped IRI)
  kPName,    // prefix:local (value = "prefix:local", colon position kept)
  kLiteral,  // "..." with optional @lang / ^^type (handled by parser)
  kNumber,   // bare numeric literal
  kPunct,    // one of { } . ; , * ( )
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string value;
  char punct = 0;
  size_t offset = 0;  // for error messages
};

bool IsPNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Status Tokenize(std::vector<Token>* out) {
    while (true) {
      SkipSpaceAndComments();
      if (pos_ >= text_.size()) break;
      size_t start = pos_;
      char c = text_[pos_];

      if (c == '?' || c == '$') {
        ++pos_;
        std::string name = TakeWhile(
            [](char ch) { return IsPNameChar(ch) && ch != '.' && ch != '-'; });
        if (name.empty()) {
          return Error(start, "empty variable name");
        }
        out->push_back({TokenKind::kVar, std::move(name), 0, start});
      } else if (c == '<') {
        // '<' opens an IRI only when a '>' closes it before any whitespace
        // or quote (IRIs cannot contain either); otherwise it is the FILTER
        // comparison operator '<' or '<='.
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
          pos_ += 2;
          out->push_back({TokenKind::kPunct, "<=", '<', start});
          continue;
        }
        bool is_iri = false;
        for (size_t scan = pos_ + 1; scan < text_.size(); ++scan) {
          char ch = text_[scan];
          if (ch == '>') {
            is_iri = true;
            break;
          }
          // IRIs may contain parentheses (DBpedia!) but never whitespace,
          // quotes or curly braces; a '<' not closed before one is a
          // comparison. Inside a FILTER's parentheses the expression's own
          // '(' / ')' terminate the scan too, so minified queries like
          // `FILTER(?y<5).?x<urn:q>?z` lex the first '<' as an operator.
          if (IsSpaceAscii(ch) || ch == '"' || ch == '{' || ch == '}' ||
              (filter_depth_ > 0 && (ch == '(' || ch == ')'))) {
            break;
          }
        }
        if (!is_iri) {
          ++pos_;
          out->push_back({TokenKind::kPunct, "<", '<', start});
          continue;
        }
        ++pos_;
        size_t end = text_.find('>', pos_);
        if (end == std::string_view::npos) {
          return Error(start, "unterminated IRI");
        }
        std::string iri;
        if (!UnescapeNTriples(text_.substr(pos_, end - pos_), &iri)) {
          return Error(start, "bad escape in IRI");
        }
        pos_ = end + 1;
        out->push_back({TokenKind::kIriRef, std::move(iri), 0, start});
      } else if (c == '"') {
        ++pos_;
        std::string raw;
        bool closed = false;
        bool escaped = false;
        while (pos_ < text_.size()) {
          char ch = text_[pos_];
          if (escaped) {
            raw += ch;
            escaped = false;
          } else if (ch == '\\') {
            raw += ch;
            escaped = true;
          } else if (ch == '"') {
            closed = true;
            ++pos_;
            break;
          } else {
            raw += ch;
          }
          ++pos_;
        }
        if (!closed) return Error(start, "unterminated literal");
        std::string lexical;
        if (!UnescapeNTriples(raw, &lexical)) {
          return Error(start, "bad escape in literal");
        }
        out->push_back({TokenKind::kLiteral, std::move(lexical), 0, start});
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < text_.size() &&
                  std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        std::string num;
        if (c == '-') {
          num += c;
          ++pos_;
        }
        num += TakeWhile([](char ch) {
          return std::isdigit(static_cast<unsigned char>(ch)) || ch == '.';
        });
        // A trailing '.' is the statement terminator, not part of the number.
        while (!num.empty() && num.back() == '.') {
          num.pop_back();
          --pos_;
        }
        out->push_back({TokenKind::kNumber, std::move(num), 0, start});
      } else if (c == '>' || c == '!' || c == '&' || c == '|') {
        // FILTER comparison/connective operators, possibly two-character.
        ++pos_;
        std::string op(1, c);
        const char second = (c == '>') ? '=' : (c == '!') ? '=' : c;
        if (pos_ < text_.size() && text_[pos_] == second) {
          op += text_[pos_];
          ++pos_;
        }
        out->push_back({TokenKind::kPunct, std::move(op), c, start});
      } else if (c == '{' || c == '}' || c == '.' || c == ';' || c == ',' ||
                 c == '*' || c == '(' || c == ')' || c == '=' || c == '+' ||
                 c == '/') {
        // Remaining punctuation: structure characters plus the operators
        // the FILTER parser names in Unimplemented diagnostics. Paren
        // depth inside FILTER steers the '<' operator-vs-IRI heuristic.
        if (c == '(') {
          if (filter_pending_ || filter_depth_ > 0) ++filter_depth_;
          filter_pending_ = false;
        } else if (c == ')') {
          if (filter_depth_ > 0) --filter_depth_;
        } else {
          filter_pending_ = false;
        }
        ++pos_;
        out->push_back({TokenKind::kPunct, std::string(1, c), c, start});
      } else if (c == '^') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '^') {
          pos_ += 2;
          out->push_back({TokenKind::kPunct, "^^", '^', start});
        } else {
          return Error(start, "stray '^'");
        }
      } else if (c == '@') {
        ++pos_;
        std::string tag = TakeWhile([](char ch) {
          return std::isalnum(static_cast<unsigned char>(ch)) || ch == '-';
        });
        if (tag.empty()) return Error(start, "empty language tag");
        out->push_back({TokenKind::kPunct, "@" + tag, '@', start});
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
                 c == ':') {
        // Bare word, possibly a prefixed name (contains ':').
        std::string word = TakeWhile(
            [](char ch) { return IsPNameChar(ch) || ch == ':'; });
        // A trailing '.' terminates the statement rather than the name.
        while (!word.empty() && word.back() == '.') {
          word.pop_back();
          --pos_;
        }
        if (word.find(':') != std::string::npos) {
          out->push_back({TokenKind::kPName, std::move(word), 0, start});
        } else {
          filter_pending_ = EqualsIgnoreCase(word, "FILTER");
          out->push_back({TokenKind::kIdent, std::move(word), 0, start});
        }
      } else {
        return Error(start, std::string("unexpected character '") + c + "'");
      }
    }
    out->push_back({TokenKind::kEof, "", 0, text_.size()});
    return Status::OK();
  }

 private:
  template <typename Pred>
  std::string TakeWhile(Pred pred) {
    size_t start = pos_;
    while (pos_ < text_.size() && pred(text_[pos_])) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (IsSpaceAscii(c)) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Status Error(size_t offset, std::string_view what) const {
    return Status::InvalidArgument("SPARQL lex error at offset " +
                                   std::to_string(offset) + ": " +
                                   std::string(what));
  }

  std::string_view text_;
  size_t pos_ = 0;
  // FILTER-expression paren tracking for the '<' operator heuristic.
  bool filter_pending_ = false;
  size_t filter_depth_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectQuery> Run() {
    SelectQuery query;
    AMBER_RETURN_IF_ERROR(ParsePrologue());
    AMBER_RETURN_IF_ERROR(ParseSelectClause(&query));
    AMBER_RETURN_IF_ERROR(ParseWhereClause(&query));
    AMBER_RETURN_IF_ERROR(ParseModifiers(&query));
    if (Peek().kind != TokenKind::kEof) {
      return Error("trailing input after query");
    }
    return query;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Next() {
    const Token& t = tokens_[std::min(pos_, tokens_.size() - 1)];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool ConsumePunct(char p) {
    if (Peek().kind == TokenKind::kPunct && Peek().punct == p &&
        Peek().value.size() == 1) {
      Next();
      return true;
    }
    return false;
  }
  bool PeekOp(std::string_view op) const {
    return Peek().kind == TokenKind::kPunct && Peek().value == op;
  }
  bool ConsumeOp(std::string_view op) {
    if (PeekOp(op)) {
      Next();
      return true;
    }
    return false;
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (Peek().kind == TokenKind::kIdent &&
        EqualsIgnoreCase(Peek().value, kw)) {
      Next();
      return true;
    }
    return false;
  }
  Status Error(std::string_view what) const {
    return Status::InvalidArgument("SPARQL parse error near offset " +
                                   std::to_string(Peek().offset) + ": " +
                                   std::string(what));
  }

  Status ParsePrologue() {
    while (ConsumeKeyword("PREFIX")) {
      const Token& name = Peek();
      std::string prefix;
      if (name.kind == TokenKind::kPName && name.value.back() == ':') {
        prefix = name.value.substr(0, name.value.size() - 1);
        Next();
      } else if (name.kind == TokenKind::kPName) {
        return Error("prefix declaration must end with ':'");
      } else {
        return Error("expected prefix name after PREFIX");
      }
      if (Peek().kind != TokenKind::kIriRef) {
        return Error("expected <iri> in prefix declaration");
      }
      prefixes_[prefix] = Next().value;
    }
    return Status::OK();
  }

  Status ParseSelectClause(SelectQuery* query) {
    if (!ConsumeKeyword("SELECT")) return Error("expected SELECT");
    if (ConsumeKeyword("DISTINCT")) query->distinct = true;
    if (ConsumePunct('*')) {
      query->select_all = true;
      return Status::OK();
    }
    while (Peek().kind == TokenKind::kVar) {
      query->projection.push_back(Next().value);
    }
    if (query->projection.empty()) {
      return Error("SELECT needs at least one variable or '*'");
    }
    return Status::OK();
  }

  Status ParseWhereClause(SelectQuery* query) {
    ConsumeKeyword("WHERE");  // WHERE keyword is optional in SPARQL
    if (!ConsumePunct('{')) return Error("expected '{'");

    while (!ConsumePunct('}')) {
      if (Peek().kind == TokenKind::kEof) return Error("unterminated '{'");
      if (Peek().kind == TokenKind::kIdent &&
          (EqualsIgnoreCase(Peek().value, "OPTIONAL") ||
           EqualsIgnoreCase(Peek().value, "UNION") ||
           EqualsIgnoreCase(Peek().value, "GRAPH") ||
           EqualsIgnoreCase(Peek().value, "MINUS"))) {
        return Status::Unimplemented(
            "SPARQL operator not supported by AMbER (paper scope is "
            "SELECT/WHERE basic graph patterns): " +
            Peek().value);
      }
      if (ConsumeKeyword("FILTER")) {
        AMBER_RETURN_IF_ERROR(ParseFilter(query));
      } else {
        AMBER_RETURN_IF_ERROR(ParseTriplesSameSubject(query));
      }
      // Optional '.' separators (possibly several) between blocks.
      while (ConsumePunct('.')) {
      }
    }
    if (query->patterns.empty()) {
      return Error("empty WHERE clause");
    }
    return Status::OK();
  }

  Status ParseTriplesSameSubject(SelectQuery* query) {
    PatternTerm subject;
    AMBER_RETURN_IF_ERROR(ParseTermSlot(/*predicate_position=*/false,
                                        &subject));
    while (true) {
      PatternTerm predicate;
      AMBER_RETURN_IF_ERROR(ParseTermSlot(/*predicate_position=*/true,
                                          &predicate));
      while (true) {
        PatternTerm object;
        AMBER_RETURN_IF_ERROR(ParseTermSlot(/*predicate_position=*/false,
                                            &object));
        query->patterns.push_back(TriplePattern{subject, predicate, object});
        if (!ConsumePunct(',')) break;  // same subject + predicate
      }
      if (!ConsumePunct(';')) break;  // same subject
      // Permit a dangling ';' before '.' or '}' (common in the wild).
      if (Peek().kind == TokenKind::kPunct &&
          (Peek().punct == '.' || Peek().punct == '}')) {
        break;
      }
    }
    return Status::OK();
  }

  // FILTER(comparison (&& comparison)*) — the supported fragment. Each
  // comparison is `?var op literal` or `literal op ?var`; anything else
  // (||, !, functions, arithmetic, var-var or IRI comparisons) is
  // Unimplemented so callers can distinguish "out of scope" from a typo.
  Status ParseFilter(SelectQuery* query) {
    if (!ConsumePunct('(')) return Error("expected '(' after FILTER");
    while (true) {
      AMBER_RETURN_IF_ERROR(ParseFilterComparison(query));
      if (ConsumeOp("&&")) continue;
      if (PeekOp("||")) {
        return Status::Unimplemented(
            "FILTER disjunction (||) is not supported");
      }
      break;
    }
    if (!ConsumePunct(')')) return Error("expected ')' closing FILTER");
    return Status::OK();
  }

  // One operand of a FILTER comparison: a variable or a literal constant.
  Status ParseFilterOperand(bool* is_var, std::string* var,
                            PatternTerm* constant) {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kVar:
        *is_var = true;
        *var = Next().value;
        return Status::OK();
      case TokenKind::kLiteral:
      case TokenKind::kNumber:
        *is_var = false;
        return ParseTermSlot(/*predicate_position=*/false, constant);
      case TokenKind::kIriRef:
      case TokenKind::kPName:
        return Status::Unimplemented(
            "FILTER comparisons against IRIs are not supported");
      case TokenKind::kIdent:
        return Status::Unimplemented(
            "FILTER functions are not supported: " + t.value);
      case TokenKind::kPunct:
        if (t.value == "!") {
          return Status::Unimplemented("FILTER negation is not supported");
        }
        if (t.value == "(") {
          return Status::Unimplemented(
              "nested FILTER expressions are not supported");
        }
        return Error("expected FILTER operand");
      default:
        return Error("expected FILTER operand");
    }
  }

  Status ParseFilterComparison(SelectQuery* query) {
    bool left_is_var = false;
    std::string left_var;
    PatternTerm left_const;
    AMBER_RETURN_IF_ERROR(
        ParseFilterOperand(&left_is_var, &left_var, &left_const));

    const Token& op_token = Peek();
    if (op_token.kind != TokenKind::kPunct) {
      return Error("expected comparison operator in FILTER");
    }
    CompareOp op;
    if (op_token.value == "=") {
      op = CompareOp::kEq;
    } else if (op_token.value == "!=") {
      op = CompareOp::kNe;
    } else if (op_token.value == "<") {
      op = CompareOp::kLt;
    } else if (op_token.value == "<=") {
      op = CompareOp::kLe;
    } else if (op_token.value == ">") {
      op = CompareOp::kGt;
    } else if (op_token.value == ">=") {
      op = CompareOp::kGe;
    } else if (op_token.value == "+" || op_token.value == "-" ||
               op_token.value == "*" || op_token.value == "/") {
      return Status::Unimplemented(
          "FILTER arithmetic is not supported: " + op_token.value);
    } else {
      return Error("expected comparison operator in FILTER");
    }
    Next();

    bool right_is_var = false;
    std::string right_var;
    PatternTerm right_const;
    AMBER_RETURN_IF_ERROR(
        ParseFilterOperand(&right_is_var, &right_var, &right_const));

    if (left_is_var && right_is_var) {
      return Status::Unimplemented(
          "FILTER variable-to-variable comparisons are not supported");
    }
    if (!left_is_var && !right_is_var) {
      return Status::Unimplemented(
          "FILTER constant-to-constant comparisons are not supported");
    }
    FilterPredicate f;
    if (left_is_var) {
      f.var = std::move(left_var);
      f.op = op;
      f.value = std::move(right_const);
    } else {
      f.var = std::move(right_var);
      f.op = FlipCompareOp(op);
      f.value = std::move(left_const);
    }
    query->filters.push_back(std::move(f));
    return Status::OK();
  }

  Status ResolvePName(const std::string& pname, std::string* iri) const {
    size_t colon = pname.find(':');
    std::string prefix = pname.substr(0, colon);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Status::InvalidArgument("undeclared prefix '" + prefix + ":'");
    }
    *iri = it->second + pname.substr(colon + 1);
    return Status::OK();
  }

  Status ParseTermSlot(bool predicate_position, PatternTerm* out) {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kVar:
        *out = PatternTerm::Variable(Next().value);
        return Status::OK();
      case TokenKind::kIriRef:
        *out = PatternTerm::Iri(Next().value);
        return Status::OK();
      case TokenKind::kPName: {
        if (t.value.compare(0, 2, "_:") == 0) {
          if (predicate_position) {
            return Error("blank node cannot be a predicate");
          }
          *out = PatternTerm::Blank(Next().value.substr(2));
          return Status::OK();
        }
        std::string iri;
        AMBER_RETURN_IF_ERROR(ResolvePName(t.value, &iri));
        Next();
        *out = PatternTerm::Iri(std::move(iri));
        return Status::OK();
      }
      case TokenKind::kIdent:
        if (t.value == "a" && predicate_position) {
          Next();
          *out = PatternTerm::Iri(std::string(kRdfType));
          return Status::OK();
        }
        return Error("unexpected identifier '" + t.value + "'");
      case TokenKind::kLiteral: {
        if (predicate_position) return Error("literal cannot be a predicate");
        std::string lexical = Next().value;
        std::string datatype, lang;
        if (Peek().kind == TokenKind::kPunct && Peek().punct == '@') {
          lang = Next().value.substr(1);
        } else if (Peek().kind == TokenKind::kPunct && Peek().punct == '^') {
          Next();
          if (Peek().kind == TokenKind::kIriRef) {
            datatype = Next().value;
          } else if (Peek().kind == TokenKind::kPName) {
            AMBER_RETURN_IF_ERROR(ResolvePName(Peek().value, &datatype));
            Next();
          } else {
            return Error("expected datatype IRI after '^^'");
          }
        }
        *out = PatternTerm::Literal(std::move(lexical), std::move(datatype),
                                    std::move(lang));
        return Status::OK();
      }
      case TokenKind::kNumber: {
        if (predicate_position) return Error("number cannot be a predicate");
        std::string lexical = Next().value;
        bool decimal = lexical.find('.') != std::string::npos;
        *out = PatternTerm::Literal(
            std::move(lexical),
            std::string(decimal ? kXsdDecimal : kXsdInteger));
        return Status::OK();
      }
      default:
        return Error("expected term");
    }
  }

  Status ParseModifiers(SelectQuery* query) {
    if (ConsumeKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kNumber) {
        return Error("expected integer after LIMIT");
      }
      const std::string& num = Next().value;
      uint64_t limit = 0;
      for (char c : num) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          return Error("LIMIT must be a non-negative integer");
        }
        limit = limit * 10 + static_cast<uint64_t>(c - '0');
      }
      query->limit = limit;
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::map<std::string, std::string> prefixes_;
};

}  // namespace

Result<SelectQuery> SparqlParser::Parse(std::string_view text) {
  std::vector<Token> tokens;
  Lexer lexer(text);
  AMBER_RETURN_IF_ERROR(lexer.Tokenize(&tokens));
  Parser parser(std::move(tokens));
  return parser.Run();
}

}  // namespace amber
