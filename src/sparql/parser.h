// Recursive-descent parser for the supported SPARQL fragment.
//
// Supported surface syntax:
//   PREFIX ns: <iri>            (any number, before SELECT)
//   SELECT [DISTINCT] (?v ... | *) [WHERE] { patterns } [LIMIT n]
//   triple patterns with '.' separators, plus the ';' (same subject) and
//   ',' (same subject+predicate) abbreviations,
//   'a' as rdf:type, prefixed names, <iri>s, _:blank nodes,
//   "literal", "literal"@lang, "literal"^^<dt>, "lit"^^ns:dt,
//   bare integer / decimal literals (xsd:integer / xsd:decimal),
//   FILTER(?v op constant [&& ...]) with op in = != < <= > >= and a
//   literal/number constant on either side of the operator.
//
// Unsupported constructs return Status::Unimplemented where they are part of
// SPARQL (OPTIONAL, UNION, FILTER ||/!/functions/arithmetic; variable
// predicates are rejected later by the planner) and InvalidArgument where
// they are syntax errors.

#ifndef AMBER_SPARQL_PARSER_H_
#define AMBER_SPARQL_PARSER_H_

#include <string_view>

#include "sparql/ast.h"
#include "util/status.h"

namespace amber {

/// \brief Parser entry point.
class SparqlParser {
 public:
  /// Parses `text` into a SelectQuery.
  static Result<SelectQuery> Parse(std::string_view text);
};

}  // namespace amber

#endif  // AMBER_SPARQL_PARSER_H_
