// Recursive-descent parser for the paper's SPARQL fragment.
//
// Supported surface syntax:
//   PREFIX ns: <iri>            (any number, before SELECT)
//   SELECT [DISTINCT] (?v ... | *) [WHERE] { patterns } [LIMIT n]
//   triple patterns with '.' separators, plus the ';' (same subject) and
//   ',' (same subject+predicate) abbreviations,
//   'a' as rdf:type, prefixed names, <iri>s, _:blank nodes,
//   "literal", "literal"@lang, "literal"^^<dt>, "lit"^^ns:dt,
//   bare integer / decimal literals (xsd:integer / xsd:decimal).
//
// Unsupported constructs return Status::Unimplemented where they are part of
// SPARQL (FILTER, OPTIONAL, UNION, variable predicates are rejected later by
// the planner) and InvalidArgument where they are syntax errors.

#ifndef AMBER_SPARQL_PARSER_H_
#define AMBER_SPARQL_PARSER_H_

#include <string_view>

#include "sparql/ast.h"
#include "util/status.h"

namespace amber {

/// \brief Parser entry point.
class SparqlParser {
 public:
  /// Parses `text` into a SelectQuery.
  static Result<SelectQuery> Parse(std::string_view text);
};

}  // namespace amber

#endif  // AMBER_SPARQL_PARSER_H_
