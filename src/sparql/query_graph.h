// The query multigraph Q of Section 2.2.1.
//
// Mapping from a parsed SELECT query (against the data dictionaries):
//   * each variable                  -> a query vertex u_i,
//   * predicate IRIs                 -> edge-type ids (Me),
//   * literal objects                -> vertex attributes on the subject
//                                       variable (Ma of <predicate,literal>),
//   * FILTERed object variables      -> predicate constraints u.P on the
//                                       subject variable: an attribute
//                                       predicate plus a comparison
//                                       conjunction over its typed values
//                                       (existential semantics, see
//                                       sparql/filters.h),
//   * constant subject/object IRIs   -> IRI anchor constraints u.R: the
//                                       anchor's unique data vertex plus the
//                                       multi-edge connecting it to u,
//   * patterns between two constants -> ground checks evaluated once.
//
// Any constant that is missing from a dictionary makes the query
// *unsatisfiable*: it provably has zero results on this dataset, which the
// engines report without running the matcher.

#ifndef AMBER_SPARQL_QUERY_GRAPH_H_
#define AMBER_SPARQL_QUERY_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/synopsis.h"
#include "rdf/encoded_dataset.h"
#include "sparql/ast.h"
#include "util/status.h"

namespace amber {

/// Constraint tying a query vertex to a constant IRI neighbour (u.R in the
/// paper). `out_types` are edge types on u -> anchor, `in_types` on
/// anchor -> u; both sorted ascending.
struct IriConstraint {
  VertexId anchor = kInvalidId;
  std::vector<EdgeTypeId> out_types;
  std::vector<EdgeTypeId> in_types;
};

/// FILTER-derived constraint on a query vertex (u.P): the vertex must own
/// some literal under `predicate` whose value satisfies the conjunction.
struct PredicateConstraint {
  AttrPredId predicate = kInvalidId;
  std::vector<ValueComparison> comparisons;
};

/// One query vertex (an unknown variable ?X_i).
struct QueryVertex {
  std::string name;                      // variable name without '?'
  std::vector<AttributeId> attrs;        // sorted, deduped (u.A)
  std::vector<EdgeTypeId> self_types;    // self-loop types u -> u, sorted
  std::vector<IriConstraint> iris;       // anchors (u.R)
  std::vector<PredicateConstraint> preds;  // FILTER constraints (u.P)

  bool HasLocalConstraints() const {
    return !attrs.empty() || !iris.empty() || !preds.empty();
  }
};

/// Directed multi-edge between two distinct query vertices.
struct QueryEdge {
  uint32_t from = 0;  // query-vertex index
  uint32_t to = 0;
  std::vector<EdgeTypeId> types;  // sorted, deduped
};

/// A fully ground pattern (both endpoints constant): verified directly
/// against the data multigraph before matching starts.
struct GroundEdge {
  VertexId subject;
  EdgeTypeId predicate;
  VertexId object;
};

/// A ground attribute check: constant subject with a literal object.
struct GroundAttribute {
  VertexId subject;
  AttributeId attribute;
};

/// A ground FILTER check: constant subject whose literal values under
/// `predicate` must contain one satisfying the conjunction.
struct GroundPredicate {
  VertexId subject;
  AttrPredId predicate;
  std::vector<ValueComparison> comparisons;
};

/// \brief The query multigraph plus projection/modifier info.
class QueryGraph {
 public:
  /// Builds Q from a parsed query against the data dictionaries. Fails with
  /// Unimplemented for variable predicates (outside the paper's scope) and
  /// InvalidArgument for projected variables that never occur in the WHERE
  /// clause.
  static Result<QueryGraph> Build(const SelectQuery& query,
                                  const RdfDictionaries& dicts);

  /// True when some constant is absent from the data dictionaries: the
  /// query has zero solutions on this dataset.
  bool unsatisfiable() const { return unsatisfiable_; }
  const std::string& unsatisfiable_reason() const { return unsat_reason_; }

  const std::vector<QueryVertex>& vertices() const { return vertices_; }
  const std::vector<QueryEdge>& edges() const { return edges_; }
  const std::vector<GroundEdge>& ground_edges() const { return ground_edges_; }
  const std::vector<GroundAttribute>& ground_attributes() const {
    return ground_attrs_;
  }
  const std::vector<GroundPredicate>& ground_predicates() const {
    return ground_preds_;
  }

  /// Projected query-vertex indices, in SELECT order.
  const std::vector<uint32_t>& projection() const { return projection_; }
  bool distinct() const { return distinct_; }
  uint64_t limit() const { return limit_; }

  /// Edges incident to vertex `u` as (edge index, u-is-from) pairs.
  const std::vector<std::pair<uint32_t, bool>>& IncidentEdges(
      uint32_t u) const {
    return incident_[u];
  }

  /// Distinct variable neighbours of `u` (sorted; excludes u itself).
  const std::vector<uint32_t>& Neighbors(uint32_t u) const {
    return neighbors_[u];
  }

  /// Degree in the paper's sense: number of distinct variable neighbours.
  size_t Degree(uint32_t u) const { return neighbors_[u].size(); }

  /// The synopsis of query vertex `u`, over its *full* signature: edges to
  /// variables, edges to IRI anchors, and self-loops (Section 4.2).
  Synopsis VertexSynopsis(uint32_t u) const;

  /// Total number of edge types over all multi-edges incident to `u`
  /// (the ranking function r2 of Section 5.3).
  size_t SignatureEdgeCount(uint32_t u) const;

  size_t NumVertices() const { return vertices_.size(); }

 private:
  void AddEdgeType(uint32_t from, uint32_t to, EdgeTypeId type);
  void Finalize();

  std::vector<QueryVertex> vertices_;
  std::vector<QueryEdge> edges_;
  std::vector<GroundEdge> ground_edges_;
  std::vector<GroundAttribute> ground_attrs_;
  std::vector<GroundPredicate> ground_preds_;
  std::vector<uint32_t> projection_;
  std::vector<std::vector<std::pair<uint32_t, bool>>> incident_;
  std::vector<std::vector<uint32_t>> neighbors_;
  bool distinct_ = false;
  uint64_t limit_ = 0;
  bool unsatisfiable_ = false;
  std::string unsat_reason_;
};

}  // namespace amber

#endif  // AMBER_SPARQL_QUERY_GRAPH_H_
