// SPARQL pretty-printer: renders a parsed SelectQuery (patterns and FILTER
// predicates) back to canonical query text. Round-trip stable
// (Parse(Format(q)) == q), which the tests exploit as a property; used by
// tooling to normalize machine-generated queries and by EXPLAIN output.

#ifndef AMBER_SPARQL_FORMATTER_H_
#define AMBER_SPARQL_FORMATTER_H_

#include <string>

#include "sparql/ast.h"

namespace amber {

/// Canonical text form of `query` (full IRIs, one pattern per line).
std::string FormatQuery(const SelectQuery& query);

}  // namespace amber

#endif  // AMBER_SPARQL_FORMATTER_H_
