#include "server/wire.h"

#include <limits>
#include <utility>

#include "core/exec.h"
#include "util/json.h"

namespace amber {
namespace wire {

namespace {

/// Typed field extraction helpers over the parsed request object. Each
/// returns kInvalidArgument naming the field on a type mismatch, so a
/// client sees exactly what it got wrong.
Status WrongType(std::string_view key, const char* want) {
  return Status::InvalidArgument("request field \"" + std::string(key) +
                                 "\" must be " + want);
}

Status ReadUInt(const json::Value& v, std::string_view key, uint64_t* out) {
  if (!v.is_number() || !v.is_uint) {
    return WrongType(key, "a non-negative integer");
  }
  *out = v.uint_v;
  return Status::OK();
}

Status ReadBool(const json::Value& v, std::string_view key, bool* out) {
  if (!v.is_bool()) return WrongType(key, "a boolean");
  *out = v.bool_v;
  return Status::OK();
}

void WriteRows(json::Writer* w,
               const std::vector<std::vector<std::string>>& rows) {
  w->BeginArray();
  for (const std::vector<std::string>& row : rows) {
    w->BeginArray();
    for (const std::string& cell : row) w->String(cell);
    w->EndArray();
  }
  w->EndArray();
}

void WriteStrings(json::Writer* w, const std::vector<std::string>& v) {
  w->BeginArray();
  for (const std::string& s : v) w->String(s);
  w->EndArray();
}

void WriteSlotList(json::Writer* w, const std::vector<uint32_t>& slot_list) {
  w->BeginArray();
  for (uint32_t s : slot_list) {
    if (s == kNoGroupList) {
      w->Null();
    } else {
      w->UInt(s);
    }
  }
  w->EndArray();
}

void WriteGroups(json::Writer* w, const std::vector<uint32_t>& slot_list,
                 const std::vector<ResultGroup>& groups) {
  w->BeginArray();
  for (const ResultGroup& g : groups) {
    w->BeginObject();
    w->Key("fixed");
    w->BeginArray();
    for (size_t i = 0; i < g.fixed.size(); ++i) {
      const bool satellite =
          i < slot_list.size() && slot_list[i] != kNoGroupList;
      if (satellite) {
        w->Null();
      } else {
        w->String(g.fixed[i]);
      }
    }
    w->EndArray();
    w->Key("lists");
    w->BeginArray();
    for (const std::vector<std::string>& list : g.lists) WriteStrings(w, list);
    w->EndArray();
    w->KV("multiplicity", g.multiplicity);
    w->EndObject();
  }
  w->EndArray();
}

void WriteExecStats(json::Writer* w, const ExecStats& s) {
  w->BeginObject();
  w->KV("rows", s.rows);
  w->KV("timed_out", s.timed_out);
  w->KV("truncated", s.truncated);
  w->KV("cancelled", s.cancelled);
  w->KV("elapsed_ms", s.elapsed_ms);
  w->KV("recursion_calls", s.recursion_calls);
  w->KV("initial_candidates", s.initial_candidates);
  w->KV("embeddings_found", s.embeddings_found);
  w->KV("lists_materialized", s.lists_materialized);
  w->KV("galloped_elements", s.galloped_elements);
  w->KV("scanned_elements", s.scanned_elements);
  w->KV("probe_checks", s.probe_checks);
  w->KV("probe_hits", s.probe_hits);
  w->KV("range_scans", s.range_scans);
  w->KV("range_scan_elements", s.range_scan_elements);
  w->KV("predicate_checks", s.predicate_checks);
  w->KV("peak_arena_bytes", s.peak_arena_bytes);
  w->KV("threads_used", s.threads_used);
  w->KV("tasks_dispatched", s.tasks_dispatched);
  w->KV("groups_emitted", s.groups_emitted);
  w->KV("factorized_rows_represented", s.factorized_rows_represented);
  w->KV("rows_expanded", s.rows_expanded);
  w->KV("bytes_factorized", s.bytes_factorized);
  w->EndObject();
}

Status ParseRows(const json::Value& v,
                 std::vector<std::vector<std::string>>* out) {
  if (!v.is_array()) return WrongType("rows", "an array of string arrays");
  out->reserve(v.array.size());
  for (const json::Value& row : v.array) {
    if (!row.is_array()) {
      return WrongType("rows", "an array of string arrays");
    }
    std::vector<std::string> cells;
    cells.reserve(row.array.size());
    for (const json::Value& cell : row.array) {
      if (!cell.is_string()) {
        return WrongType("rows", "an array of string arrays");
      }
      cells.push_back(cell.str_v);
    }
    out->push_back(std::move(cells));
  }
  return Status::OK();
}

}  // namespace

Result<WireRequest> ParseRequest(std::string_view body) {
  AMBER_ASSIGN_OR_RETURN(json::Value doc, json::Parse(body));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  WireRequest req;
  bool have_query = false;
  for (const auto& [key, value] : doc.object) {
    if (key == "query") {
      if (!value.is_string()) return WrongType(key, "a string");
      req.query = value.str_v;
      have_query = true;
    } else if (key == "deadline_ms") {
      uint64_t ms = 0;
      AMBER_RETURN_IF_ERROR(ReadUInt(value, key, &ms));
      req.options.deadline = std::chrono::milliseconds(ms);
    } else if (key == "thread_budget") {
      uint64_t budget = 0;
      AMBER_RETURN_IF_ERROR(ReadUInt(value, key, &budget));
      if (budget > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
        return WrongType(key, "a small non-negative integer");
      }
      req.options.thread_budget = static_cast<int>(budget);
    } else if (key == "offset") {
      AMBER_RETURN_IF_ERROR(ReadUInt(value, key, &req.options.offset));
    } else if (key == "limit") {
      AMBER_RETURN_IF_ERROR(ReadUInt(value, key, &req.options.limit));
    } else if (key == "count_only") {
      AMBER_RETURN_IF_ERROR(ReadBool(value, key, &req.options.count_only));
    } else if (key == "bypass_cache") {
      AMBER_RETURN_IF_ERROR(ReadBool(value, key, &req.options.bypass_cache));
    } else if (key == "result_form") {
      if (!value.is_string()) return WrongType(key, "\"rows\" or \"groups\"");
      if (value.str_v == "groups") {
        req.options.want_groups = true;
      } else if (value.str_v != "rows") {
        return WrongType(key, "\"rows\" or \"groups\"");
      }
    } else if (key == "include_stats") {
      AMBER_RETURN_IF_ERROR(ReadBool(value, key, &req.include_stats));
    } else {
      // Reject instead of ignoring: a typo'd option that silently does
      // nothing is the worst protocol failure mode.
      return Status::InvalidArgument("unknown request field \"" + key + "\"");
    }
  }
  if (!have_query) {
    return Status::InvalidArgument("request field \"query\" is required");
  }
  return req;
}

std::string SerializeResponse(const QueryResponse& resp, bool include_stats) {
  json::Writer w;
  w.BeginObject();
  const bool count_form = resp.var_names.empty() && resp.rows.empty() &&
                          !resp.groups_form;
  if (count_form) {
    w.KV("result_form", "count");
    w.KV("total_rows", resp.total_rows);
    w.KV("timed_out", resp.timed_out);
    w.KV("cancelled", resp.cancelled);
  } else if (resp.groups_form) {
    w.KV("result_form", "groups");
    w.Key("var_names");
    WriteStrings(&w, resp.var_names);
    w.Key("slot_list");
    WriteSlotList(&w, resp.slot_list);
    w.Key("groups");
    WriteGroups(&w, resp.slot_list, resp.groups);
    w.KV("total_rows", resp.total_rows);
    w.KV("truncated", resp.truncated);
    w.KV("timed_out", resp.timed_out);
    w.KV("cancelled", resp.cancelled);
  } else {
    w.KV("result_form", "rows");
    w.Key("var_names");
    WriteStrings(&w, resp.var_names);
    w.Key("rows");
    WriteRows(&w, resp.rows);
    w.KV("total_rows", resp.total_rows);
    w.KV("truncated", resp.truncated);
    w.KV("timed_out", resp.timed_out);
    w.KV("cancelled", resp.cancelled);
  }
  if (include_stats) {
    w.KV("cache_hit", resp.cache_hit);
    w.Key("stats");
    WriteExecStats(&w, resp.stats);
  }
  w.EndObject();
  return w.Take();
}

std::string SerializeStreamPage(const StreamPage& page) {
  if (page.rows.empty() && page.groups.empty()) {
    // A pure terminator frame: the summary line is the wire terminator.
    return std::string();
  }
  json::Writer w;
  w.BeginObject();
  w.KV("first_row", page.first_row);
  if (!page.groups.empty()) {
    w.Key("groups");
    // Pages carry no slot_list (it rides in the summary line), so fixed
    // slots ship verbatim — satellite slots as empty strings the client
    // ignores in favor of the lists.
    WriteGroups(&w, /*slot_list=*/{}, page.groups);
  } else {
    w.Key("rows");
    WriteRows(&w, page.rows);
  }
  w.EndObject();
  return w.Take();
}

std::string SerializeStreamSummary(const StreamResponse& resp,
                                   bool include_stats) {
  json::Writer w;
  w.BeginObject();
  w.Key("summary");
  w.BeginObject();
  w.KV("result_form", resp.groups_form ? "groups" : "rows");
  w.Key("var_names");
  WriteStrings(&w, resp.var_names);
  if (resp.groups_form) {
    w.Key("slot_list");
    WriteSlotList(&w, resp.slot_list);
  }
  w.KV("rows_streamed", resp.rows_streamed);
  w.KV("pages", resp.pages);
  w.KV("complete", resp.complete);
  w.KV("cancelled", resp.cancelled);
  w.KV("timed_out", resp.timed_out);
  w.KV("truncated", resp.truncated);
  if (include_stats) {
    w.KV("peak_buffered_bytes", resp.peak_buffered_bytes);
    w.Key("stats");
    WriteExecStats(&w, resp.stats);
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

std::string SerializeError(const Status& status) {
  json::Writer w;
  w.BeginObject();
  w.Key("error");
  w.BeginObject();
  w.KV("code", StatusCodeName(status.code()));
  w.KV("http", static_cast<uint64_t>(StatusCodeToHttp(status.code())));
  w.KV("message", status.message());
  w.EndObject();
  w.EndObject();
  return w.Take();
}

std::string ExecStatsToJson(const ExecStats& stats) {
  json::Writer w;
  WriteExecStats(&w, stats);
  return w.Take();
}

std::string ServiceStatsToJson(const ServiceStats& stats) {
  json::Writer w;
  w.BeginObject();
  w.KV("queries", stats.queries);
  w.KV("rejected", stats.rejected);
  w.KV("shutdown_rejects", stats.shutdown_rejects);
  w.KV("timed_out", stats.timed_out);
  w.KV("cancelled", stats.cancelled);
  w.KV("orphaned_flights", stats.orphaned_flights);
  w.KV("cache_hits", stats.cache_hits);
  w.KV("cache_misses", stats.cache_misses);
  w.KV("cache_evictions", stats.cache_evictions);
  w.KV("cache_entries", stats.cache_entries);
  w.KV("bytes_cached", stats.bytes_cached);
  w.KV("single_flight_hits", stats.single_flight_hits);
  w.KV("factorized_hits", stats.factorized_hits);
  w.KV("retries", stats.retries);
  w.KV("shed_thread_budgets", stats.shed_thread_budgets);
  w.KV("rows_served", stats.rows_served);
  w.KV("peak_in_flight", stats.peak_in_flight);
  w.KV("in_flight", stats.in_flight);
  w.KV("queued", stats.queued);
  w.Key("exec");
  WriteExecStats(&w, stats.exec);
  w.EndObject();
  return w.Take();
}

Result<QueryResponse> ParseResponse(std::string_view body) {
  AMBER_ASSIGN_OR_RETURN(json::Value doc, json::Parse(body));
  if (!doc.is_object()) {
    return Status::InvalidArgument("response body must be a JSON object");
  }
  QueryResponse resp;
  const json::Value* form = doc.Find("result_form");
  if (form == nullptr || !form->is_string()) {
    return Status::InvalidArgument("response missing \"result_form\"");
  }
  if (const json::Value* v = doc.Find("total_rows");
      v != nullptr && v->is_uint) {
    resp.total_rows = v->uint_v;
  }
  auto read_flag = [&doc](std::string_view key, bool* out) {
    const json::Value* v = doc.Find(key);
    if (v != nullptr && v->is_bool()) *out = v->bool_v;
  };
  read_flag("truncated", &resp.truncated);
  read_flag("timed_out", &resp.timed_out);
  read_flag("cancelled", &resp.cancelled);
  read_flag("cache_hit", &resp.cache_hit);
  if (form->str_v == "count") return resp;
  if (const json::Value* v = doc.Find("var_names");
      v != nullptr && v->is_array()) {
    for (const json::Value& name : v->array) {
      if (!name.is_string()) {
        return Status::InvalidArgument("var_names must hold strings");
      }
      resp.var_names.push_back(name.str_v);
    }
  }
  if (form->str_v == "rows") {
    if (const json::Value* v = doc.Find("rows"); v != nullptr) {
      AMBER_RETURN_IF_ERROR(ParseRows(*v, &resp.rows));
    }
    return resp;
  }
  if (form->str_v != "groups") {
    return Status::InvalidArgument("unknown result_form \"" + form->str_v +
                                   "\"");
  }
  resp.groups_form = true;
  if (const json::Value* v = doc.Find("slot_list");
      v != nullptr && v->is_array()) {
    for (const json::Value& s : v->array) {
      if (s.is_null()) {
        resp.slot_list.push_back(kNoGroupList);
      } else if (s.is_uint) {
        resp.slot_list.push_back(static_cast<uint32_t>(s.uint_v));
      } else {
        return Status::InvalidArgument("slot_list entries must be null or "
                                       "non-negative integers");
      }
    }
  }
  const json::Value* groups = doc.Find("groups");
  if (groups == nullptr || !groups->is_array()) {
    return Status::InvalidArgument("groups response missing \"groups\"");
  }
  for (const json::Value& gv : groups->array) {
    if (!gv.is_object()) {
      return Status::InvalidArgument("groups entries must be objects");
    }
    ResultGroup g;
    if (const json::Value* f = gv.Find("fixed");
        f != nullptr && f->is_array()) {
      for (const json::Value& cell : f->array) {
        if (cell.is_null()) {
          g.fixed.emplace_back();  // satellite slot
        } else if (cell.is_string()) {
          g.fixed.push_back(cell.str_v);
        } else {
          return Status::InvalidArgument("group fixed slots must be "
                                         "strings or null");
        }
      }
    }
    if (const json::Value* l = gv.Find("lists");
        l != nullptr && l->is_array()) {
      AMBER_RETURN_IF_ERROR(ParseRows(*l, &g.lists));
    }
    if (const json::Value* m = gv.Find("multiplicity");
        m != nullptr && m->is_uint) {
      g.multiplicity = m->uint_v;
    }
    resp.groups.push_back(std::move(g));
  }
  return resp;
}

std::vector<std::vector<std::string>> ExpandGroups(
    const std::vector<uint32_t>& slot_list,
    const std::vector<ResultGroup>& groups, uint64_t limit_rows) {
  std::vector<std::vector<std::string>> rows;
  const uint64_t cap =
      limit_rows == 0 ? std::numeric_limits<uint64_t>::max() : limit_rows;
  std::vector<uint64_t> pick;
  for (const ResultGroup& g : groups) {
    if (rows.size() >= cap) break;
    bool any_empty = false;
    for (const std::vector<std::string>& list : g.lists) {
      if (list.empty()) any_empty = true;
    }
    if (any_empty) continue;  // zero-cardinality group (defensive)
    pick.assign(g.lists.size(), 0);
    while (true) {
      std::vector<std::string> row(slot_list.size());
      for (size_t i = 0; i < slot_list.size(); ++i) {
        if (slot_list[i] == kNoGroupList) {
          row[i] = i < g.fixed.size() ? g.fixed[i] : std::string();
        } else if (slot_list[i] < g.lists.size()) {
          row[i] = g.lists[slot_list[i]][pick[slot_list[i]]];
        }
      }
      for (uint64_t rep = 0; rep < g.multiplicity && rows.size() < cap;
           ++rep) {
        rows.push_back(row);
      }
      if (rows.size() >= cap) break;
      // Odometer: list 0 advances fastest (the engine's expansion order).
      size_t d = 0;
      for (; d < pick.size(); ++d) {
        if (++pick[d] < g.lists[d].size()) break;
        pick[d] = 0;
      }
      if (d == pick.size()) break;  // wrapped: group exhausted
    }
  }
  return rows;
}

}  // namespace wire
}  // namespace amber
