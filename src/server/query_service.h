// The query-serving runtime: one QueryService per engine turns the
// one-query-at-a-time AMbER engine into a request-serving layer built for
// sustained concurrent traffic (docs/ARCHITECTURE.md, "Serving runtime").
//
// Four responsibilities sit above the immutable engine:
//
//  1. Pool ownership. The service owns ONE persistent util/thread_pool.h
//     pool shared across every request. Parallel executions borrow helper
//     workers from it (ExecOptions::pool) instead of spawning a thread
//     pool per query — thread spawn is ~0.1 ms, visible on microsecond
//     queries. Requests execute on the calling client thread; only the
//     extra workers of a multi-threaded request come from the pool.
//
//  2. Admission control. At most `max_in_flight` requests execute
//     concurrently; up to `max_queued` more wait for a slot. Beyond that,
//     Query() fails fast with Status::kResourceExhausted — load sheds at
//     the door instead of collapsing under a convoy. A request's deadline
//     is a per-QUERY budget that starts at Query() entry: time spent
//     queued is charged against it, and a request whose budget expires in
//     the queue returns `timed_out` without ever touching the engine.
//
//  3. Plan/result cache. An LRU cache keyed on *normalized* query text
//     (parse -> canonical variable renaming -> canonical formatting, so
//     whitespace, comments and variable names don't fragment the key
//     space) retains the parsed query plus a handle to its full result
//     set. Repeats — including LIMIT/OFFSET pages over the same query —
//     are served from the handle without re-execution. Results produced
//     by a timed-out (partial) run are never cached. The cache is
//     bounded twice over: by entry count AND by a byte budget
//     (`cache_bytes`) accounted over retained rows, cells and variable
//     names; eviction walks the LRU tail until both bounds hold, and an
//     entry alone bigger than the whole byte budget bypasses the cache
//     instead of wiping it. Concurrent misses of one key are
//     single-flighted: one leader executes, followers block on its
//     result under their OWN deadlines (a follower whose budget expires
//     returns `timed_out` without cancelling the leader; a leader
//     failure propagates to every follower and is never cached).
//
//  4. Fault tolerance. Each execution attempt passes the
//     `service.execute` fault-injection site (util/fault_injector.h).
//     Transient failures — injected or organic kUnavailable — are
//     retried up to `max_retries` times with bounded exponential
//     backoff, but only while the request's remaining deadline budget
//     still covers the backoff sleep; a request never burns its last
//     milliseconds sleeping. Under overload (in-flight above
//     `shed_high_water`) the service degrades gracefully by shedding
//     PARALLELISM, not requests: new queries run with a reduced
//     `shed_thread_budget` before the hard kResourceExhausted wall.
//
//  5. Cancellation & streaming (docs/ARCHITECTURE.md, "Streaming &
//     cancellation"). Every request runs under a CancellationSource that
//     merges the client's RequestOptions::cancel token with the service's
//     internal abort signals; a tripped token unwinds the engine within
//     one matcher tick window and answers `cancelled` (never cached).
//     QueryStream() delivers results as ordered pages through a PageSink
//     with bounded in-flight buffering (`stream_page_rows`,
//     `stream_buffer_bytes`): peak service memory is O(page buffer), not
//     O(result). A sink abort or client abandonment trips the token; an
//     orphaned single-flight leader — zero waiters left and its own
//     client's budget expired — is cancelled instead of running to
//     completion.
//
// Thread-safety: Query() may be called concurrently from any number of
// client threads. Responses are bit-identical to what a serial,
// single-client run of the underlying engine would return (the parallel
// online stage's determinism contract extends through the service), so a
// cached response, an uncached response and a serial reference can be
// compared byte for byte.

#ifndef AMBER_SERVER_QUERY_SERVICE_H_
#define AMBER_SERVER_QUERY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/exec.h"
#include "core/query_engine.h"
#include "sparql/ast.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace amber {

/// Service-wide configuration, fixed at construction.
struct ServiceOptions {
  /// Worker threads in the persistent pool (helpers for multi-threaded
  /// requests; every request additionally runs on its client thread).
  int pool_threads = 4;

  /// Admission: requests executing concurrently. <= 0 disables the limit.
  int max_in_flight = 8;

  /// Admission: requests allowed to wait for an execution slot before
  /// Query() rejects with kResourceExhausted. <= 0 means no waiting room
  /// (reject as soon as max_in_flight is reached).
  int max_queued = 8;

  /// Online-stage workers for requests that don't ask for a budget
  /// (RequestOptions::thread_budget == 0). 1 = serial execution.
  int default_thread_budget = 1;

  /// Hard cap on any request's thread budget. <= 0 defaults to
  /// pool_threads + 1 (all helpers plus the client thread).
  int max_thread_budget = 0;

  /// Ablation knob (bench/throughput.cc): when false, executions do NOT
  /// borrow from the persistent pool — each multi-threaded query spawns
  /// and tears down its own transient helpers, the pre-service behavior.
  /// Everything else (normalization, admission, caching, response
  /// assembly) is unchanged, isolating the pool strategy.
  bool share_pool = true;

  /// Deadline for requests that don't set one. Zero = unlimited.
  std::chrono::milliseconds default_deadline{0};

  /// LRU plan/result cache capacity in entries. 0 disables the cache.
  size_t cache_entries = 64;

  /// Byte budget over every retained cache entry (rows, cells, variable
  /// names, key). Eviction walks the LRU tail until the total fits; an
  /// entry alone exceeding the budget bypasses the cache entirely (it
  /// would evict everything else and then itself). 0 = unbounded.
  uint64_t cache_bytes = 64ull << 20;  // 64 MiB

  /// Coalesce concurrent cache misses of one normalized key: one leader
  /// executes, followers wait for its result under their own deadlines.
  bool single_flight = true;

  /// Transient-failure (kUnavailable) retries per request. 0 disables
  /// retrying: the first failure is returned as-is.
  int max_retries = 0;

  /// First retry backoff; doubles per retry. A retry is attempted only
  /// while the request's remaining deadline budget exceeds the backoff.
  std::chrono::milliseconds initial_backoff{10};

  /// Overload threshold: a request admitted while MORE than this many
  /// requests are executing (itself included) has its thread budget
  /// clamped to `shed_thread_budget` — degrade parallelism before the
  /// admission wall rejects outright. <= 0 disables shedding.
  int shed_high_water = 0;

  /// The reduced per-query thread budget under overload (min 1).
  int shed_thread_budget = 1;

  /// Row cap on the retained result handle of one materializing
  /// execution (0 = unlimited). A handle truncated by this cap is cached
  /// with `truncated` set; pages beyond it report truncation.
  uint64_t max_result_rows = 0;

  /// Streaming (QueryStream): rows per page before the in-flight page is
  /// flushed to the PageSink. Min 1.
  uint64_t stream_page_rows = 256;

  /// Streaming: byte budget of the in-flight page (accounted over cell
  /// payloads and headers); a page flushes when EITHER bound is hit, so
  /// peak buffered memory stays O(min of the two) regardless of result
  /// cardinality. 0 = rows bound only.
  uint64_t stream_buffer_bytes = 256 << 10;  // 256 KiB

  /// Result representation requested from the engine (core/exec.h). Under
  /// kFactorized / kAuto, materializing executions retain the FACTORIZED
  /// answer graph instead of expanded rows: the cache charges the handle
  /// at its (much smaller) factorized byte size, counts are answered
  /// without expansion, and pages expand only the rows they return (a
  /// deep-OFFSET page skips whole groups instead of re-enumerating its
  /// prefix). Engines that cannot factorize fall back to flat handles
  /// transparently. Responses are bit-identical either way.
  ResultForm result_form = ResultForm::kFlat;
};

/// Per-request knobs (the ExecutionOptions-style surface).
struct RequestOptions {
  /// Per-query wall-clock budget starting at Query() entry (queue wait
  /// included). Zero = the service default.
  std::chrono::milliseconds deadline{0};

  /// Online-stage workers for this request (1 = serial; capped by
  /// ServiceOptions::max_thread_budget). Zero = the service default.
  int thread_budget = 0;

  /// Pagination over the retained result handle: skip `offset` rows, then
  /// return up to `limit` rows (0 = all remaining). Pagination is a view
  /// over the full result — it does not change what is executed or
  /// cached, so every page of one query comes from one handle.
  uint64_t offset = 0;
  uint64_t limit = 0;

  /// Count rows instead of materializing them (no row payload in the
  /// response; served from a complete cached handle when possible).
  bool count_only = false;

  /// Skip the cache entirely (no lookup, no insert). Differential tests
  /// use this to compare cached and uncached responses.
  bool bypass_cache = false;

  /// Client-abandonment token: cancelling it makes the request unwind
  /// within one matcher tick window and answer `cancelled` (a response,
  /// not an error — mirrors the timeout contract). The service merges it
  /// with its own internal abort signals (sink abort, orphaned-flight
  /// retirement), so the client source never observes service-internal
  /// cancellations. Default: never cancelled.
  CancellationToken cancel;

  /// Ship the FACTORIZED answer graph (core embedding + per-satellite
  /// candidate lists) instead of expanded rows: the response carries
  /// ResultGroups whose client-side expansion — list 0 fastest, each row
  /// repeated `multiplicity` times — reproduces the flat rows exactly.
  /// This is the wire form of PR 9's compression ("result_form":"groups"
  /// over HTTP): a satellite-heavy result ships O(groups) tokens, not
  /// the cross-product. The service falls back to rows transparently
  /// when no factorized handle is available (baseline engines, or a
  /// DISTINCT result whose groups collide and need row-level dedup — a
  /// client cannot replay that filter), so callers must branch on
  /// QueryResponse::groups_form, not on this flag. Invalid combined with
  /// count_only or with a non-zero offset/limit (groups are not
  /// row-addressable without expanding; paginate in rows mode instead).
  bool want_groups = false;
};

/// One factorized solution record in transport form (all data vertices
/// translated back to tokens). Expansion order is the odometer of
/// core/factorized.h: lists[0] advances fastest, each emitted row repeats
/// `multiplicity` times consecutively.
struct ResultGroup {
  /// One entry per projection slot; satellite slots (those with a list
  /// index in QueryResponse::slot_list) hold an empty string and draw
  /// from `lists` instead.
  std::vector<std::string> fixed;
  /// One candidate-token list per distinct projected satellite.
  std::vector<std::vector<std::string>> lists;
  /// Row repetitions from non-projected satellites (1 under DISTINCT).
  uint64_t multiplicity = 1;
};

/// One answered request.
struct QueryResponse {
  /// Projected variable names in the REQUEST's own spelling (cache hits
  /// against a variable-renamed equivalent query are mapped back).
  /// Empty for count_only requests.
  std::vector<std::string> var_names;

  /// The requested page: rows [offset, offset+limit) of the result set.
  std::vector<std::vector<std::string>> rows;

  /// Rows in the full retained result set (before pagination), or the
  /// count for count_only requests.
  uint64_t total_rows = 0;

  /// The retained set was cut short (query LIMIT or max_result_rows).
  bool truncated = false;

  /// The per-query budget expired (in the queue or inside the engine).
  /// Mirrors the engine contract: a timeout is a response, not an error.
  bool timed_out = false;

  /// The request's cancellation token tripped mid-execution: rows (if
  /// any) are a partial prefix and were NOT cached.
  bool cancelled = false;

  /// Served from the plan/result cache without executing.
  bool cache_hit = false;

  /// The response carries `groups` instead of `rows` (a granted
  /// RequestOptions::want_groups). total_rows still counts EXPANDED rows;
  /// truncated means expansion must be trimmed to total_rows.
  bool groups_form = false;
  /// groups_form only: per projection slot, the index into each group's
  /// `lists`, or kNoGroupList (core/exec.h) for core-bound slots.
  std::vector<uint32_t> slot_list;
  /// groups_form only: the factorized result, in emission order.
  std::vector<ResultGroup> groups;

  /// Stats of the execution that produced the retained handle (for cache
  /// hits: the original miss's execution).
  ExecStats stats;
};

/// Monotonic service-level counters; Stats() returns a consistent snapshot.
struct ServiceStats {
  /// Requests answered (cache hits, executions, and in-budget timeouts).
  uint64_t queries = 0;
  /// Requests rejected with kResourceExhausted at admission.
  uint64_t rejected = 0;
  /// Requests rejected with kUnavailable because Shutdown() had begun.
  uint64_t shutdown_rejects = 0;
  /// Requests whose budget expired (queued or executing).
  uint64_t timed_out = 0;
  /// Requests (and streams) that ended cancelled — client token, sink
  /// abort, or orphaned-flight retirement.
  uint64_t cancelled = 0;
  /// Single-flight leaders cancelled after their last follower departed
  /// with the leader's own client budget already expired.
  uint64_t orphaned_flights = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  /// Entries currently retained (gauge, not a counter).
  uint64_t cache_entries = 0;
  /// Accounted bytes currently retained by the cache (gauge).
  uint64_t bytes_cached = 0;
  /// Requests served by attaching to another request's in-flight
  /// execution of the same key (single-flight followers).
  uint64_t single_flight_hits = 0;
  /// Requests answered from a factorized (unexpanded) result handle —
  /// cache hits and single-flight followers whose page or count came from
  /// the answer graph rather than retained flat rows.
  uint64_t factorized_hits = 0;
  /// Execution attempts beyond the first (transient-failure retries).
  uint64_t retries = 0;
  /// Requests whose thread budget was clamped by overload shedding.
  uint64_t shed_thread_budgets = 0;
  /// Page rows returned to clients.
  uint64_t rows_served = 0;
  /// High-water mark of concurrently executing requests.
  uint64_t peak_in_flight = 0;
  /// Requests executing / waiting right now (gauges).
  uint64_t in_flight = 0;
  uint64_t queued = 0;
  /// Engine-level counters merged over every execution the service ran.
  ExecStats exec;
};

/// One in-order slice of a streamed result (QueryStream).
struct StreamPage {
  /// Index of rows[0] within the full delivered stream (post-offset), so
  /// a sink can verify it never missed a page. On a groups page: the
  /// index of the first row the page's groups EXPAND to.
  uint64_t first_row = 0;
  std::vector<std::vector<std::string>> rows;
  /// Groups-mode streams (RequestOptions::want_groups granted) fill
  /// `groups` instead of `rows`; the slot_list arrives in the
  /// StreamResponse summary. A page carries one form, never both.
  std::vector<ResultGroup> groups;
  /// Set on the final page of a COMPLETE stream (the terminator: possibly
  /// empty). Cancelled and timed-out streams end without a last page.
  bool last = false;
};

/// \brief Consumer of a streamed result.
///
/// OnPage is invoked synchronously from inside the stream (never
/// concurrently); returning false abandons the stream — the execution
/// token trips and the matcher unwinds like a cancellation.
class PageSink {
 public:
  virtual ~PageSink() = default;
  virtual bool OnPage(StreamPage&& page) = 0;
};

/// Terminal summary of one QueryStream call. The rows already left
/// through the PageSink.
struct StreamResponse {
  /// Projected variable names in the request's own spelling.
  std::vector<std::string> var_names;
  /// The stream delivered groups pages (want_groups granted; empty pages
  /// aside, every page carried `groups`). rows_streamed then counts the
  /// rows those groups REPRESENT, not payload entries.
  bool groups_form = false;
  /// groups_form only: the slot → list mapping shared by every group.
  std::vector<uint32_t> slot_list;
  /// Rows delivered across every page.
  uint64_t rows_streamed = 0;
  /// Pages delivered (including the final terminator page).
  uint64_t pages = 0;
  /// Exactly one of complete / cancelled / timed_out describes the end
  /// state. A truncated stream (row cap / LIMIT reached) is complete.
  bool complete = false;
  bool cancelled = false;
  bool timed_out = false;
  /// The row cap (request limit / query LIMIT) stopped delivery.
  bool truncated = false;
  /// High-water mark of bytes buffered in the in-flight page — the
  /// O(buffer) memory bound the streaming path guarantees.
  uint64_t peak_buffered_bytes = 0;
  ExecStats stats;
};

/// A parse with canonical variable names: the cache-key form.
struct NormalizedQuery {
  /// Canonical text — the cache key. Whitespace, comments and variable
  /// spellings are erased by construction; everything semantic (pattern
  /// list, filters, projection order, DISTINCT, LIMIT) survives, so
  /// distinct keys never alias distinct semantics.
  std::string key;
  /// The query with variables renamed to v0, v1, ... in first-appearance
  /// order (patterns, then filters, then projection).
  SelectQuery query;
  /// Canonical name -> this request's original spelling, for mapping
  /// response var_names back.
  std::unordered_map<std::string, std::string> canon_to_orig;
};

/// Parses and canonicalizes `text`. Two texts normalize to the same key
/// iff they are the same query up to whitespace, comments and variable
/// renaming. Exposed for the cache-correctness tests.
Result<NormalizedQuery> NormalizeQuery(std::string_view text);

/// \brief The serving runtime over one engine. See file comment.
class QueryService {
 public:
  /// `engine` is borrowed and must outlive the service. Any QueryEngine
  /// works; only AMbER uses the shared pool (baselines run serially).
  QueryService(QueryEngine* engine, const ServiceOptions& options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Answers one request. Blocking; safe to call from many client threads
  /// concurrently. Errors: kResourceExhausted (admission), or whatever
  /// the parser/engine reports. Timeouts are responses, not errors.
  Result<QueryResponse> Query(std::string_view text,
                              const RequestOptions& request = {});

  /// Streams the result as ordered pages into `sink` with bounded
  /// in-flight buffering (peak memory O(stream_page_rows ∧
  /// stream_buffer_bytes), not O(result)). Page contents concatenated
  /// equal the rows a materializing Query of the same request would
  /// return (offset/limit included) — the determinism contract extends
  /// to streamed prefixes. Streams bypass the cache and single-flight:
  /// rows leave incrementally, so there is no handle to retain or share
  /// (and a cancelled partial stream can never be cached).
  /// `request.count_only` is invalid here. Timeouts and cancellations
  /// are responses, not errors.
  Result<StreamResponse> QueryStream(std::string_view text,
                                     const RequestOptions& request,
                                     PageSink* sink);

  /// Consistent snapshot of the service counters.
  ServiceStats Stats() const;

  /// Drains the service. The contract, in order:
  ///
  ///   1. From the moment Shutdown() begins, every NEW Query/QueryStream
  ///      call fails fast with Status::kUnavailable (counted in
  ///      ServiceStats::shutdown_rejects) — permanently; a shut-down
  ///      service never serves again.
  ///   2. Requests already inside the service get `grace` to finish
  ///      normally (grace 0 = none).
  ///   3. Past the grace budget, every in-flight request's cancellation
  ///      source is tripped: executions unwind within one matcher tick
  ///      window and answer `cancelled`; queued requests drain as the
  ///      cancelled ones release their slots; single-flight followers are
  ///      resolved by their (cancelled) leader's publication.
  ///   4. Shutdown() returns only when no request remains inside the
  ///      service.
  ///
  /// The pool and the cache stay intact (the destructor tears them
  /// down); Stats() remains callable. Idempotent and thread-safe, but
  /// callers must ensure no PageSink can block forever ignoring its
  /// stream's cancellation — the HTTP server shuts client sockets before
  /// calling this, so in-flight page writes fail promptly.
  void Shutdown(std::chrono::milliseconds grace = std::chrono::milliseconds(0));

  const ServiceOptions& options() const { return options_; }

  /// The service's persistent worker pool. The HTTP transport dispatches
  /// connection handlers onto it (server/http_server.h documents the
  /// capacity headroom that keeps exec helper tasks schedulable).
  ThreadPool* pool() { return &pool_; }

 private:
  /// Retained per-key state: the parsed plan plus the result handle(s).
  struct CacheEntry {
    SelectQuery query;  // canonical names (the plan half of the cache)
    bool have_rows = false;
    bool have_count = false;
    /// A factorized answer-graph handle (core/factorized.h): pages expand
    /// lazily through a cursor; accounted at its factorized byte size.
    bool have_fact = false;
    std::vector<std::string> var_names;  // canonical spelling
    std::vector<std::vector<std::string>> rows;
    FactorizedResult fact;
    bool truncated = false;
    uint64_t count = 0;
    ExecStats exec_stats;  // the execution that produced the handle
    /// Accounted size (EntryBytes at last insert/merge).
    uint64_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  /// One in-flight execution of a (key, mode) pair. Followers wait on
  /// `cv` (paired with mu_) until the leader publishes `done` plus either
  /// an error `status` or a result `entry` — a timed-out leader publishes
  /// an entry whose exec_stats.timed_out is set, so followers answer
  /// `timed_out` exactly like the leader did.
  struct Flight {
    bool done = false;
    int waiters = 0;  // followers currently blocked (skip the result
                      // copy when nobody is left to read it)
    Status status = Status::OK();
    std::shared_ptr<const CacheEntry> entry;
    std::condition_variable cv;
    /// The leader's execution cancel source (shared state with the
    /// leader's ExecOptions token): the orphan path cancels through it.
    CancellationSource leader_cancel;
    /// When the leader's own client budget expires. A departing last
    /// follower past this point cancels the leader — nobody is left who
    /// could use the result.
    std::chrono::steady_clock::time_point leader_deadline =
        std::chrono::steady_clock::time_point::max();
  };

  enum class Admission { kAdmitted, kRejected, kExpired };

  /// Blocks until an execution slot is free, the queue overflows, or the
  /// deadline passes. On kAdmitted the caller owns one slot and `*shed`
  /// says whether overload shedding applies to this request.
  Admission Admit(std::chrono::steady_clock::time_point start,
                  std::chrono::milliseconds budget, bool* shed);
  void Release();

  /// Cache lookup; touches the LRU. Caller holds mu_.
  CacheEntry* LookupLocked(const std::string& key);
  /// Insert-or-merge `fresh` under `key`; evicts past the entry and byte
  /// budgets. Caller holds mu_.
  void UpsertLocked(const std::string& key, CacheEntry&& fresh);
  /// Evicts LRU-tail entries until both cache bounds hold. Caller holds
  /// mu_.
  void EvictLocked();
  /// Resolves `flight` for its followers and retires it from flights_.
  /// Caller holds mu_.
  void PublishFlightLocked(const std::string& flight_key, Flight* flight,
                           Status status,
                           std::shared_ptr<const CacheEntry> entry);
  /// Accounted bytes of an entry: rows, cells, variable names, key.
  static uint64_t EntryBytes(const std::string& key, const CacheEntry& e);

  /// Builds the paginated response for this request from an entry.
  QueryResponse BuildResponse(const CacheEntry& entry,
                              const NormalizedQuery& nq,
                              const RequestOptions& request, bool cache_hit);

  /// Translates one factorized group into transport form: core slots and
  /// candidate lists become tokens, satellite `fixed` slots become empty
  /// strings.
  ResultGroup TranslateGroup(const FactorizedResult& fact,
                             const FactorizedResult::Group& g);
  /// Translates a whole handle into QueryResponse::groups
  /// (BuildResponse's groups-form path).
  void FillGroups(const FactorizedResult& fact, QueryResponse* resp);

  /// Registers a request in the drain registry (Shutdown cancels
  /// through it). Fails with kUnavailable once Shutdown() has begun.
  /// On success the caller must call UnregisterRequest exactly once.
  Result<uint64_t> RegisterRequest(const CancellationSource& cancel);
  void UnregisterRequest(uint64_t id);

  /// RAII over Register/UnregisterRequest.
  struct DrainGuard {
    QueryService* s = nullptr;
    uint64_t id = 0;
    ~DrainGuard() {
      if (s != nullptr) s->UnregisterRequest(id);
    }
  };

  QueryEngine* engine_;
  const ServiceOptions options_;
  ThreadPool pool_;

  mutable std::mutex mu_;
  std::condition_variable admission_cv_;
  int in_flight_ = 0;
  int queued_ = 0;
  ServiceStats stats_;

  // LRU cache: map owns the entries; lru_ front = most recent.
  std::unordered_map<std::string, CacheEntry> cache_;
  std::list<std::string> lru_;
  /// Sum of CacheEntry::bytes over cache_ (the byte-budget gauge).
  uint64_t cache_bytes_used_ = 0;

  /// In-flight executions by "key#mode" (rows and counts of one query
  /// are distinct flights — their results are not interchangeable).
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;

  // Shutdown drain state (all under mu_): every request registers its
  // cancellation source for the duration of its Query/QueryStream call;
  // Shutdown trips the registered sources past the grace budget and
  // waits on drain_cv_ until the registry empties.
  bool shutting_down_ = false;
  uint64_t next_request_id_ = 0;
  std::unordered_map<uint64_t, CancellationSource> active_requests_;
  std::condition_variable drain_cv_;
};

}  // namespace amber

#endif  // AMBER_SERVER_QUERY_SERVICE_H_
