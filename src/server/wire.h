// The transport-neutral wire layer of the serving runtime
// (docs/ARCHITECTURE.md, "Transport"): request/response DTOs with
// Parse/Serialize that map 1:1 onto RequestOptions / QueryResponse, so
// ANY transport (the HTTP server of http_server.h today, shard RPCs
// tomorrow) speaks the same schema and the server itself stays a thin
// socket loop.
//
// Schema (one JSON object per message, field order fixed by the
// serializers so equal payloads are equal BYTES — the Query-vs-HTTP
// bit-identity tests depend on it):
//
//   request   {"query": s, "deadline_ms": u, "thread_budget": u,
//              "offset": u, "limit": u, "count_only": b,
//              "bypass_cache": b, "result_form": "rows"|"groups",
//              "include_stats": b}
//              — "query" required, everything else optional; unknown
//              keys are rejected (a typo'd option silently ignored is a
//              protocol bug).
//
//   response  {"result_form": "rows"|"count"|"groups", "var_names": [s],
//              "rows": [[s]] | "groups": [...] + "slot_list": [u|null],
//              "total_rows": u, "truncated": b, "timed_out": b,
//              "cancelled": b (, "cache_hit": b, "stats": {...})}
//              — stats/cache_hit appear only when the request asked
//              (include_stats): they are nondeterministic (elapsed_ms),
//              and the default payload is deterministic byte for byte.
//
//   group     {"fixed": [s|null], "lists": [[s]], "multiplicity": u}
//              — null fixed slots are satellites drawing from the list
//              slot_list[i] names; client-side expansion (ExpandGroups)
//              replays the engine's odometer order exactly, trimmed to
//              total_rows (a truncated handle keeps its boundary group
//              whole).
//
//   stream    one NDJSON line per page {"first_row": u, "rows": [[s]]}
//              (or "groups": [...]), then one summary line
//              {"summary": {...}} carrying var_names / slot_list /
//              end-state flags. A stream that dies mid-flight simply
//              never delivers its summary line.
//
//   error     {"error": {"code": s, "http": u, "message": s}}
//
// Everything here is pure string <-> struct transformation — no sockets,
// no service calls — so it fuzzes in-process (tests/http_server_test.cc).

#ifndef AMBER_SERVER_WIRE_H_
#define AMBER_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "server/query_service.h"
#include "util/status.h"

namespace amber {
namespace wire {

/// One parsed request: the query text plus its 1:1-mapped RequestOptions.
struct WireRequest {
  std::string query;
  RequestOptions options;
  /// Response should carry stats + cache_hit (nondeterministic fields —
  /// opt-in so the default payload stays byte-deterministic).
  bool include_stats = false;
};

/// Parses a /query request body. Every malformed input — bad JSON, a
/// wrong-typed field, an unknown key, "query" missing — returns
/// kInvalidArgument (HTTP 400 through StatusCodeToHttp), never crashes.
Result<WireRequest> ParseRequest(std::string_view body);

/// Serializes a QueryService::Query response. Field order is fixed;
/// without `include_stats` the payload depends only on the result.
std::string SerializeResponse(const QueryResponse& resp,
                              bool include_stats = false);

/// One NDJSON stream-page line (no trailing newline). Empty terminator
/// pages serialize to an empty string — the summary line is the real
/// terminator on the wire.
std::string SerializeStreamPage(const StreamPage& page);

/// The stream's trailing summary line (no trailing newline).
std::string SerializeStreamSummary(const StreamResponse& resp,
                                   bool include_stats = false);

/// The error body every non-2xx response carries.
std::string SerializeError(const Status& status);

/// Stats objects (GET /stats; reused inside SerializeResponse).
std::string ExecStatsToJson(const ExecStats& stats);
std::string ServiceStatsToJson(const ServiceStats& stats);

/// Client-side decode of a /query response body (HttpClient, tests, the
/// example). Fills rows or groups according to the payload's
/// result_form; "stats" is ignored (count responses set total_rows
/// only).
Result<QueryResponse> ParseResponse(std::string_view body);

/// Client-side replay of the factorized expansion order (list 0 advances
/// fastest; each row repeats `multiplicity` times consecutively),
/// trimmed to `limit_rows` (0 = no trim). With the groups a "groups"
/// response ships, this reproduces the rows-mode payload exactly.
std::vector<std::vector<std::string>> ExpandGroups(
    const std::vector<uint32_t>& slot_list,
    const std::vector<ResultGroup>& groups, uint64_t limit_rows = 0);

}  // namespace wire
}  // namespace amber

#endif  // AMBER_SERVER_WIRE_H_
