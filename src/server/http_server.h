// A dependency-free HTTP/1.1 transport over POSIX sockets for
// QueryService (docs/ARCHITECTURE.md, "Transport"). The server is a thin
// socket loop: every request/response byte layout lives in wire.h, every
// error maps through StatusCodeToHttp — one error path, no ad-hoc JSON.
//
// Endpoints:
//
//   POST /query          wire request -> wire response (one JSON object)
//   POST /query/stream   wire request -> chunked application/x-ndjson:
//                        one line per StreamPage flush, then a summary
//                        line, then the 0-chunk terminator. The PageSink
//                        handoff writes the page to the socket BEFORE the
//                        matcher advances, so a slow client exerts real
//                        TCP backpressure on the engine. A cancelled or
//                        timed-out stream still carries its summary line
//                        (flags set) but ends WITHOUT the 0-chunk
//                        terminator; a stream whose socket died ends with
//                        neither (the client sees a truncated body).
//   GET  /stats          {"service": ServiceStatsToJson, "server": {...}}
//   GET  /healthz        200 {"status":"ok"} (503 "draining" during Stop)
//
// Threading model: one blocking accept thread; each accepted connection
// runs its handler (read -> service call -> write, keep-alive loop) as a
// task on the SERVICE's ThreadPool. A connection holds its worker for
// its lifetime, so the capacity invariant is load-bearing:
// max_connections MUST stay below pool_threads — the spare worker
// guarantees parallel executions' borrowed helper tasks (which are
// transient) always eventually run, or their completion latch could wait
// on a worker that is itself a parked connection. Start() enforces it.
// Overflow connections are answered 503 from the accept thread and
// closed — load sheds at the door, exactly like admission control.
//
// Client abandonment: a watchdog thread polls executing connections'
// sockets for hangup (POLLRDHUP) every ~20 ms and trips the request's
// CancellationToken — a closed laptop lid cancels its query within one
// matcher tick window, and ServiceStats::cancelled counts it. Mid-write
// failures (and firings of the `server.write` fault site) abort the
// connection the same way.
//
// Stop() drain contract, in order: (1) stop accepting; (2) in-flight
// connections get `drain_grace` to finish naturally; (3) past it, their
// request tokens trip AND their sockets shut down, so blocked reads and
// writes fail immediately; (4) once every connection has unwound, the
// service itself is drained via QueryService::Shutdown() — afterwards
// the service rejects new work with kUnavailable permanently.

#ifndef AMBER_SERVER_HTTP_SERVER_H_
#define AMBER_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>

#include "server/query_service.h"
#include "util/status.h"

namespace amber {

struct HttpServerOptions {
  /// Bind address; tests and the bench use loopback.
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral (read the chosen port back from port()).
  uint16_t port = 0;
  int listen_backlog = 64;

  /// Concurrent connections served (each holds one service-pool worker).
  /// 0 = pool_threads - 1, the largest safe value; Start() rejects any
  /// setting that would leave no spare worker (see file comment).
  int max_connections = 0;

  /// Request hard bounds: the header block and the whole request
  /// (headers + body). Oversized requests answer 431 / 413 and close.
  uint64_t max_header_bytes = 8ull << 10;   // 8 KiB
  uint64_t max_request_bytes = 1ull << 20;  // 1 MiB

  /// Reading an idle keep-alive connection gives up after this long (the
  /// connection closes quietly). Also bounds mid-request read stalls.
  std::chrono::milliseconds read_timeout{10'000};
  /// A single blocked socket write gives up after this long (the
  /// connection aborts; a streaming client that stopped reading trips
  /// the request's token through the page-write failure).
  std::chrono::milliseconds write_timeout{10'000};

  /// Stop(): how long in-flight connections may finish naturally before
  /// their tokens trip and their sockets shut down.
  std::chrono::milliseconds drain_grace{1'000};
};

/// Monotonic transport counters (GET /stats ships them under "server").
struct HttpServerStats {
  uint64_t connections_accepted = 0;
  /// Connections answered 503 at the door (over max_connections).
  uint64_t connections_rejected = 0;
  uint64_t requests = 0;
  /// Requests rejected at the transport layer (malformed framing,
  /// bounds, unknown route/method) before reaching the service.
  uint64_t bad_requests = 0;
  /// Responses abandoned mid-write (client gone, write timeout, or the
  /// server.write fault site).
  uint64_t aborted_responses = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

/// \brief The HTTP/1.1 transport over one QueryService. See file comment.
class HttpServer {
 public:
  /// `service` is borrowed and must outlive the server. Stop() drains the
  /// service too (QueryService::Shutdown) — a stopped server leaves the
  /// service permanently rejecting, so give each server its own service.
  HttpServer(QueryService* service, const HttpServerOptions& options = {});
  ~HttpServer();  // calls Stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the accept + watchdog threads. Errors:
  /// kInvalidArgument (capacity invariant violated), kIOError (bind).
  Status Start();

  /// Graceful drain (see file comment). Idempotent; called by ~HttpServer.
  void Stop();

  /// The bound port (after Start(); useful with port = 0).
  uint16_t port() const { return bound_port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  HttpServerStats stats() const;

 private:
  /// Per-connection state, registered for the watchdog and Stop().
  struct Conn {
    int fd = -1;
    /// The in-flight request's cancel source while a service call is
    /// executing (watchdog and Stop() trip it); empty between requests.
    std::optional<CancellationSource> active_cancel;
  };

  /// The chunked-NDJSON PageSink of POST /query/stream (defined in the
  /// .cc; nested for private access to WriteAll and the stats).
  class StreamSink;

  void AcceptLoop();
  void WatchdogLoop();
  /// The keep-alive request loop of one connection (a pool task).
  void ServeConnection(uint64_t conn_id, int fd);
  /// One request/response exchange. Returns false when the connection
  /// must close (error framing, Connection: close, abort, stop).
  bool ServeOneRequest(uint64_t conn_id, int fd, std::string* rbuf);
  /// POST /query and POST /query/stream (the service-backed routes).
  /// Return the keep-the-connection verdict like ServeOneRequest.
  bool HandleQuery(uint64_t conn_id, int fd, const std::string& body,
                   bool keep_alive);
  bool HandleQueryStream(uint64_t conn_id, int fd, const std::string& body,
                         bool keep_alive);

  /// Writes one buffered JSON response (passes the server.write fault
  /// site first). False = the connection aborted mid-write.
  bool WriteResponse(int fd, int code, std::string_view body,
                     bool keep_alive);

  // Socket helpers (poll-sliced so Stop() interrupts promptly).
  bool ReadMore(int fd, std::string* buf,
                std::chrono::steady_clock::time_point deadline);
  bool WriteAll(int fd, std::string_view data);

  QueryService* service_;
  HttpServerOptions options_;
  int effective_max_connections_ = 0;

  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::thread watchdog_thread_;

  mutable std::mutex mu_;
  std::condition_variable conn_cv_;  // signalled when a connection exits
  uint64_t next_conn_id_ = 0;
  std::unordered_map<uint64_t, Conn> conns_;
  HttpServerStats stats_;
};

}  // namespace amber

#endif  // AMBER_SERVER_HTTP_SERVER_H_
