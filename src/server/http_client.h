// A minimal blocking HTTP/1.1 client over POSIX sockets — the in-process
// counterpart of server/http_server.h, used by the transport tests, the
// examples and the bench closed loop. Deliberately small: keep-alive with
// transparent reconnect, Content-Length and chunked bodies, NDJSON
// line-by-line streaming, and a raw-bytes escape hatch for framing fuzz.
// Not a general-purpose client (no TLS, no redirects, no proxies).

#ifndef AMBER_SERVER_HTTP_CLIENT_H_
#define AMBER_SERVER_HTTP_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace amber {

/// One decoded HTTP response.
struct HttpResponse {
  int status = 0;
  /// Header keys lowercased, in arrival order.
  std::vector<std::pair<std::string, std::string>> headers;
  /// The decoded body (chunked transfer reassembled).
  std::string body;
  /// Chunked bodies only: the 0-chunk terminator arrived. The server
  /// withholds it from cancelled/timed-out/aborted streams, so false
  /// means "incomplete stream", not "client bug".
  bool chunked_complete = true;

  /// Lowercase header lookup; nullptr when absent.
  const std::string* Header(std::string_view key) const;
  /// The body split on newlines (NDJSON lines; empty lines dropped).
  std::vector<std::string> Lines() const;
};

/// \brief Blocking loopback client. Not thread-safe; one per thread.
class HttpClient {
 public:
  explicit HttpClient(uint16_t port, std::string host = "127.0.0.1");
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  Result<HttpResponse> Get(const std::string& path);
  Result<HttpResponse> Post(const std::string& path, std::string_view body);

  /// POST whose response is consumed line by line as chunks arrive:
  /// `on_line` sees each NDJSON line (no trailing newline) the moment its
  /// chunk is decoded. Returning false ABANDONS the stream — the socket
  /// closes immediately (the server's next page write fails and trips the
  /// request's cancellation), and the call returns what arrived so far
  /// with chunked_complete = false. The full body accumulates in the
  /// response either way.
  Result<HttpResponse> PostStream(
      const std::string& path, std::string_view body,
      const std::function<bool(std::string_view)>& on_line);

  /// Sends `bytes` verbatim on a FRESH connection, half-closes the write
  /// side, and reads one response (framing-fuzz tests). An error means
  /// the server closed without answering — for malformed framing that is
  /// an acceptable outcome alongside a 4xx.
  Result<HttpResponse> Raw(std::string_view bytes);

  /// How long one blocking read may stall before the call errors out.
  void set_recv_timeout(std::chrono::milliseconds t) { recv_timeout_ = t; }

  /// Drops the kept-alive connection (next call reconnects).
  void Close();

 private:
  Status EnsureConnected();
  Status SendAll(std::string_view data);
  /// Reads one response (headers + body) from the connection. Interim
  /// 100-continue responses are skipped. `on_line` may be null.
  Result<HttpResponse> ReadResponse(
      const std::function<bool(std::string_view)>* on_line);
  /// Appends more bytes to rbuf_; false on EOF (eof_ set) or error.
  Status FillMore(bool* eof);
  Result<HttpResponse> RoundTrip(
      const std::string& request,
      const std::function<bool(std::string_view)>* on_line);

  std::string host_;
  uint16_t port_;
  int fd_ = -1;
  std::string rbuf_;
  std::chrono::milliseconds recv_timeout_{10'000};
};

}  // namespace amber

#endif  // AMBER_SERVER_HTTP_CLIENT_H_
