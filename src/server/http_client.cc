#include "server/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstring>

namespace amber {
namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// The marker ReadResponse uses for "stale keep-alive socket": RoundTrip
// retries exactly this failure on a fresh connection.
constexpr char kClosedWithoutResponse[] = "connection closed without response";

}  // namespace

const std::string* HttpResponse::Header(std::string_view key) const {
  for (const auto& [k, v] : headers) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::vector<std::string> HttpResponse::Lines() const {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t nl = body.find('\n', pos);
    if (nl == std::string::npos) nl = body.size();
    if (nl > pos) lines.emplace_back(body.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

HttpClient::HttpClient(uint16_t port, std::string host)
    : host_(std::move(host)), port_(port) {}

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

Status HttpClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket(): " + std::string(strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(recv_timeout_.count() / 1000);
  tv.tv_usec =
      static_cast<suseconds_t>((recv_timeout_.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host: " + host_);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = strerror(errno);
    ::close(fd);
    return Status::IOError("connect(" + host_ + ":" +
                           std::to_string(port_) + "): " + err);
  }
  fd_ = fd;
  return Status::OK();
}

Status HttpClient::SendAll(std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError("send(): " + std::string(strerror(errno)));
  }
  return Status::OK();
}

Status HttpClient::FillMore(bool* eof) {
  *eof = false;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      rbuf_.append(chunk, static_cast<size_t>(n));
      return Status::OK();
    }
    if (n == 0) {
      *eof = true;
      return Status::OK();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Timeout("recv timed out");
    }
    return Status::IOError("recv(): " + std::string(strerror(errno)));
  }
}

Result<HttpResponse> HttpClient::ReadResponse(
    const std::function<bool(std::string_view)>* on_line) {
  // --- Head (looped: interim 100-continue responses are skipped).
  HttpResponse resp;
  while (true) {
    size_t head_end;
    while ((head_end = rbuf_.find("\r\n\r\n")) == std::string::npos) {
      bool eof = false;
      AMBER_RETURN_IF_ERROR(FillMore(&eof));
      if (eof) {
        return rbuf_.empty() ? Status::IOError(kClosedWithoutResponse)
                             : Status::IOError("truncated response head");
      }
    }
    const std::string_view head = std::string_view(rbuf_).substr(0, head_end);
    const size_t line_end = head.find("\r\n");
    const std::string_view status_line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);
    const size_t sp1 = status_line.find(' ');
    if (sp1 == std::string_view::npos) {
      return Status::IOError("malformed status line");
    }
    const std::string_view code_sv = Trim(status_line.substr(sp1 + 1, 3));
    int code = 0;
    const auto [ptr, ec] =
        std::from_chars(code_sv.data(), code_sv.data() + code_sv.size(), code);
    if (ec != std::errc() || ptr != code_sv.data() + code_sv.size()) {
      return Status::IOError("malformed status code");
    }

    resp = HttpResponse{};
    resp.status = code;
    size_t pos =
        line_end == std::string_view::npos ? head.size() : line_end + 2;
    while (pos < head.size()) {
      size_t eol = head.find("\r\n", pos);
      if (eol == std::string_view::npos) eol = head.size();
      const std::string_view line = head.substr(pos, eol - pos);
      pos = eol + 2;
      const size_t colon = line.find(':');
      if (colon == std::string_view::npos) continue;
      resp.headers.emplace_back(ToLower(line.substr(0, colon)),
                                std::string(Trim(line.substr(colon + 1))));
    }
    rbuf_.erase(0, head_end + 4);
    if (resp.status != 100) break;
  }

  // --- Body.
  const std::string* te = resp.Header("transfer-encoding");
  const bool chunked =
      te != nullptr && ToLower(*te).find("chunked") != std::string::npos;
  if (chunked) {
    resp.chunked_complete = false;
    std::string pending;  // decoded bytes not yet emitted as lines
    while (true) {
      // Chunk-size line.
      size_t crlf;
      bool dead = false;
      while ((crlf = rbuf_.find("\r\n")) == std::string::npos) {
        bool eof = false;
        const Status s = FillMore(&eof);
        if (!s.ok() || eof) {
          dead = true;
          break;
        }
      }
      if (dead) break;  // incomplete stream: return what arrived
      std::string_view size_sv = std::string_view(rbuf_).substr(0, crlf);
      const size_t semi = size_sv.find(';');
      if (semi != std::string_view::npos) size_sv = size_sv.substr(0, semi);
      uint64_t chunk_size = 0;
      const auto [p, ec] = std::from_chars(
          size_sv.data(), size_sv.data() + size_sv.size(), chunk_size, 16);
      if (ec != std::errc() || p != size_sv.data() + size_sv.size()) {
        return Status::IOError("malformed chunk size");
      }
      rbuf_.erase(0, crlf + 2);

      if (chunk_size == 0) {
        // Terminator; consume the trailing CRLF when it arrives.
        while (rbuf_.size() < 2) {
          bool eof = false;
          const Status s = FillMore(&eof);
          if (!s.ok() || eof) break;
        }
        if (rbuf_.size() >= 2 && rbuf_[0] == '\r' && rbuf_[1] == '\n') {
          rbuf_.erase(0, 2);
        }
        resp.chunked_complete = true;
        break;
      }

      // Chunk payload + its CRLF.
      while (rbuf_.size() < chunk_size + 2) {
        bool eof = false;
        const Status s = FillMore(&eof);
        if (!s.ok() || eof) {
          dead = true;
          break;
        }
      }
      if (dead) break;
      const std::string_view data =
          std::string_view(rbuf_).substr(0, chunk_size);
      resp.body.append(data);
      if (on_line != nullptr) {
        pending.append(data);
        size_t nl;
        while ((nl = pending.find('\n')) != std::string::npos) {
          const std::string_view line(pending.data(), nl);
          if (!line.empty() && !(*on_line)(line)) {
            // Abandon: close immediately so the server's next page write
            // fails and the request's token trips.
            Close();
            return resp;
          }
          pending.erase(0, nl + 1);
        }
      }
      rbuf_.erase(0, chunk_size + 2);
    }
    if (!resp.chunked_complete) Close();  // the socket is unusable now
    return resp;
  }

  if (const std::string* cl = resp.Header("content-length")) {
    uint64_t content_length = 0;
    const auto [p, ec] =
        std::from_chars(cl->data(), cl->data() + cl->size(), content_length);
    if (ec != std::errc() || p != cl->data() + cl->size()) {
      return Status::IOError("malformed Content-Length");
    }
    while (rbuf_.size() < content_length) {
      bool eof = false;
      AMBER_RETURN_IF_ERROR(FillMore(&eof));
      if (eof) return Status::IOError("truncated response body");
    }
    resp.body = rbuf_.substr(0, content_length);
    rbuf_.erase(0, content_length);
  } else {
    // Read-to-EOF body (the server always frames, but Raw peers may not).
    while (true) {
      bool eof = false;
      AMBER_RETURN_IF_ERROR(FillMore(&eof));
      if (eof) break;
    }
    resp.body = std::move(rbuf_);
    rbuf_.clear();
  }

  if (const std::string* conn = resp.Header("connection")) {
    if (ToLower(*conn).find("close") != std::string::npos) Close();
  }
  return resp;
}

Result<HttpResponse> HttpClient::RoundTrip(
    const std::string& request,
    const std::function<bool(std::string_view)>* on_line) {
  const bool reused = fd_ >= 0;
  AMBER_RETURN_IF_ERROR(EnsureConnected());
  const Status sent = SendAll(request);
  if (sent.ok()) {
    Result<HttpResponse> resp = ReadResponse(on_line);
    if (resp.ok()) return resp;
    // Only a kept-alive socket the server closed BETWEEN requests (so no
    // response byte arrived) is safely retryable on a fresh connection.
    if (!reused || resp.status().message() != kClosedWithoutResponse) {
      Close();
      return resp;
    }
  } else if (!reused) {
    Close();
    return sent;
  }
  Close();
  AMBER_RETURN_IF_ERROR(EnsureConnected());
  AMBER_RETURN_IF_ERROR(SendAll(request));
  Result<HttpResponse> resp = ReadResponse(on_line);
  if (!resp.ok()) Close();
  return resp;
}

Result<HttpResponse> HttpClient::Get(const std::string& path) {
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host_ +
                              "\r\nConnection: keep-alive\r\n\r\n";
  return RoundTrip(request, nullptr);
}

Result<HttpResponse> HttpClient::Post(const std::string& path,
                                      std::string_view body) {
  std::string request = "POST " + path + " HTTP/1.1\r\nHost: " + host_ +
                        "\r\nContent-Type: application/json\r\n"
                        "Content-Length: " +
                        std::to_string(body.size()) +
                        "\r\nConnection: keep-alive\r\n\r\n";
  request.append(body);
  return RoundTrip(request, nullptr);
}

Result<HttpResponse> HttpClient::PostStream(
    const std::string& path, std::string_view body,
    const std::function<bool(std::string_view)>& on_line) {
  std::string request = "POST " + path + " HTTP/1.1\r\nHost: " + host_ +
                        "\r\nContent-Type: application/json\r\n"
                        "Content-Length: " +
                        std::to_string(body.size()) +
                        "\r\nConnection: keep-alive\r\n\r\n";
  request.append(body);
  return RoundTrip(request, &on_line);
}

Result<HttpResponse> HttpClient::Raw(std::string_view bytes) {
  Close();
  AMBER_RETURN_IF_ERROR(EnsureConnected());
  AMBER_RETURN_IF_ERROR(SendAll(bytes));
  // Half-close the write side: a server waiting for more request bytes
  // sees EOF instead of stalling out its read timeout.
  ::shutdown(fd_, SHUT_WR);
  Result<HttpResponse> resp = ReadResponse(nullptr);
  Close();
  return resp;
}

}  // namespace amber
