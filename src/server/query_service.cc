#include "server/query_service.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "sparql/formatter.h"
#include "sparql/parser.h"
#include "util/fault_injector.h"

namespace amber {

namespace {

/// Remaining budget at `now`, or a negative value when expired. Zero
/// budget means unlimited and always returns zero.
std::chrono::milliseconds RemainingBudget(
    std::chrono::steady_clock::time_point start,
    std::chrono::milliseconds budget,
    std::chrono::steady_clock::time_point now) {
  if (budget.count() <= 0) return std::chrono::milliseconds(0);
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - start);
  return budget - elapsed;
}

}  // namespace

Result<NormalizedQuery> NormalizeQuery(std::string_view text) {
  AMBER_ASSIGN_OR_RETURN(SelectQuery q, SparqlParser::Parse(text));
  NormalizedQuery out;
  std::unordered_map<std::string, std::string> orig_to_canon;
  auto canon = [&](std::string* name) {
    auto [it, inserted] = orig_to_canon.try_emplace(*name);
    if (inserted) {
      // First appearance: assign the next canonical name.
      it->second = "v" + std::to_string(orig_to_canon.size() - 1);
      out.canon_to_orig.emplace(it->second, *name);
    }
    *name = it->second;
  };
  // First-appearance order over patterns, then filters, then projection:
  // any two queries equal up to variable renaming visit their variables in
  // corresponding order, so they canonicalize identically.
  for (TriplePattern& p : q.patterns) {
    if (p.subject.is_variable()) canon(&p.subject.value);
    if (p.predicate.is_variable()) canon(&p.predicate.value);
    if (p.object.is_variable()) canon(&p.object.value);
  }
  for (FilterPredicate& f : q.filters) canon(&f.var);
  for (std::string& v : q.projection) canon(&v);
  out.key = FormatQuery(q);
  out.query = std::move(q);
  return out;
}

QueryService::QueryService(QueryEngine* engine, const ServiceOptions& options)
    : engine_(engine),
      options_(options),
      pool_(static_cast<size_t>(std::max(options.pool_threads, 1))) {}

QueryService::~QueryService() { pool_.Shutdown(); }

QueryService::Admission QueryService::Admit(
    std::chrono::steady_clock::time_point start,
    std::chrono::milliseconds budget, bool* shed) {
  std::unique_lock<std::mutex> lock(mu_);
  // Overload shedding decision belongs to the admission moment: the
  // request counts itself, so with shed_high_water = H the (H+1)th
  // concurrent execution is the first to run degraded.
  auto admit_locked = [this, shed] {
    ++in_flight_;
    stats_.peak_in_flight = std::max<uint64_t>(
        stats_.peak_in_flight, static_cast<uint64_t>(in_flight_));
    *shed = options_.shed_high_water > 0 &&
            in_flight_ > options_.shed_high_water;
  };
  if (options_.max_in_flight <= 0 || in_flight_ < options_.max_in_flight) {
    admit_locked();
    return Admission::kAdmitted;
  }
  if (queued_ >= std::max(options_.max_queued, 0)) {
    return Admission::kRejected;
  }
  ++queued_;
  const bool bounded = budget.count() > 0;
  const auto wait_deadline = start + budget;
  bool got_slot;
  if (bounded) {
    got_slot = admission_cv_.wait_until(lock, wait_deadline, [this] {
      return in_flight_ < options_.max_in_flight;
    });
  } else {
    admission_cv_.wait(
        lock, [this] { return in_flight_ < options_.max_in_flight; });
    got_slot = true;
  }
  --queued_;
  if (!got_slot) {
    // Budget expired while waiting. Wake the next waiter in case a slot
    // freed concurrently with the timeout.
    admission_cv_.notify_one();
    return Admission::kExpired;
  }
  admit_locked();
  return Admission::kAdmitted;
}

void QueryService::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  admission_cv_.notify_one();
}

Result<uint64_t> QueryService::RegisterRequest(
    const CancellationSource& cancel) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutting_down_) {
    ++stats_.shutdown_rejects;
    return Status::Unavailable("query service is shutting down");
  }
  const uint64_t id = next_request_id_++;
  active_requests_.emplace(id, cancel);
  return id;
}

void QueryService::UnregisterRequest(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  active_requests_.erase(id);
  if (active_requests_.empty()) drain_cv_.notify_all();
}

void QueryService::Shutdown(std::chrono::milliseconds grace) {
  std::unique_lock<std::mutex> lock(mu_);
  shutting_down_ = true;  // new requests now fail fast with kUnavailable
  auto drained = [this] { return active_requests_.empty(); };
  if (grace.count() > 0) {
    drain_cv_.wait_for(lock, grace, drained);
  }
  while (!drained()) {
    // Past the grace budget: trip every in-flight request's source.
    // Cancel() runs OUTSIDE mu_ — a tripped token can wake code that
    // immediately re-locks mu_ to unregister. Executions unwind within
    // one matcher tick window; queued requests drain as the cancelled
    // ones release their admission slots (woken below); single-flight
    // followers resolve through their leader's publication. Sources are
    // sticky, so re-cancelling on a later iteration is a no-op.
    std::vector<CancellationSource> to_cancel;
    to_cancel.reserve(active_requests_.size());
    for (auto& [id, src] : active_requests_) to_cancel.push_back(src);
    lock.unlock();
    for (CancellationSource& src : to_cancel) src.Cancel();
    admission_cv_.notify_all();
    lock.lock();
    drain_cv_.wait_for(lock, std::chrono::milliseconds(10), drained);
  }
}

QueryService::CacheEntry* QueryService::LookupLocked(const std::string& key) {
  auto it = cache_.find(key);
  if (it == cache_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // touch
  return &it->second;
}

uint64_t QueryService::EntryBytes(const std::string& key,
                                  const CacheEntry& e) {
  // Deterministic O(cells) accounting of what the entry retains: row and
  // cell payloads plus per-object header overhead (sizes, not
  // capacities, so the figure is reproducible across allocators).
  uint64_t bytes = sizeof(CacheEntry) + key.size();
  bytes += e.var_names.size() * sizeof(std::string);
  for (const std::string& name : e.var_names) bytes += name.size();
  bytes += e.rows.size() * sizeof(std::vector<std::string>);
  for (const auto& row : e.rows) {
    bytes += row.size() * sizeof(std::string);
    for (const std::string& cell : row) bytes += cell.size();
  }
  // A factorized handle is charged at its true (group) storage — the
  // whole point of retaining it instead of the expanded cross-product.
  if (e.have_fact) bytes += e.fact.ByteSize();
  return bytes;
}

void QueryService::EvictLocked() {
  while (!cache_.empty() &&
         (cache_.size() > options_.cache_entries ||
          (options_.cache_bytes > 0 &&
           cache_bytes_used_ > options_.cache_bytes))) {
    auto it = cache_.find(lru_.back());
    cache_bytes_used_ -= it->second.bytes;
    cache_.erase(it);
    lru_.pop_back();
    ++stats_.cache_evictions;
  }
}

void QueryService::UpsertLocked(const std::string& key, CacheEntry&& fresh) {
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    fresh.bytes = EntryBytes(key, fresh);
    // Oversized bypass: an entry alone bigger than the whole byte budget
    // would evict every other entry and then itself — serve it once and
    // keep the cache for results that fit.
    if (options_.cache_bytes > 0 && fresh.bytes > options_.cache_bytes) {
      return;
    }
    lru_.push_front(key);
    fresh.lru_it = lru_.begin();
    cache_bytes_used_ += fresh.bytes;
    cache_.emplace(key, std::move(fresh));
    EvictLocked();
    return;
  }
  // Merge: a concurrent miss (or the other mode of the same query) may
  // have filled one half already; keep whatever is present — both runs
  // computed identical results by the determinism contract.
  CacheEntry& e = it->second;
  bool grew = false;
  if (fresh.have_rows && !e.have_rows) {
    e.have_rows = true;
    e.var_names = fresh.var_names;
    e.rows = std::move(fresh.rows);
    e.truncated = fresh.truncated;
    grew = true;
  }
  if (fresh.have_fact && !e.have_fact) {
    e.have_fact = true;
    e.fact = std::move(fresh.fact);
    if (!e.have_rows) {
      e.var_names = fresh.var_names;
      e.truncated = fresh.truncated;
    }
    grew = true;
  }
  if (fresh.have_count && !e.have_count) {
    e.have_count = true;
    e.count = fresh.count;
    grew = true;
  }
  if (grew) {
    cache_bytes_used_ -= e.bytes;
    e.bytes = EntryBytes(key, e);
    cache_bytes_used_ += e.bytes;
  }
  lru_.splice(lru_.begin(), lru_, e.lru_it);  // touch
  // A merge can push past the byte budget; the merged entry was just
  // touched to the LRU front, so it is evicted only if nothing else
  // remains to give back.
  EvictLocked();
}

void QueryService::PublishFlightLocked(
    const std::string& flight_key, Flight* flight, Status status,
    std::shared_ptr<const CacheEntry> entry) {
  flight->status = std::move(status);
  flight->entry = std::move(entry);
  flight->done = true;
  // Retiring the flight and resolving it are one atomic step under mu_:
  // any later request either found this flight (and wakes here) or will
  // miss it and consult the cache / lead its own flight. Erase only the
  // flight we own: the orphan path may have retired it already AND a
  // newer flight for the same key may have taken its place.
  auto it = flights_.find(flight_key);
  if (it != flights_.end() && it->second.get() == flight) {
    flights_.erase(it);
  }
  flight->cv.notify_all();
}

ResultGroup QueryService::TranslateGroup(const FactorizedResult& fact,
                                         const FactorizedResult::Group& g) {
  ResultGroup out;
  out.multiplicity = g.multiplicity;
  out.fixed.resize(g.fixed.size());
  std::vector<VertexId> one(1);
  for (size_t i = 0; i < g.fixed.size(); ++i) {
    if (i < fact.slot_list.size() && fact.slot_list[i] != kNoGroupList) {
      continue;  // satellite slot: unspecified, ships as the empty string
    }
    one[0] = g.fixed[i];
    out.fixed[i] = std::move(engine_->TranslateRow(one)[0]);
  }
  out.lists.reserve(g.lists.size());
  for (const std::vector<VertexId>& list : g.lists) {
    out.lists.push_back(engine_->TranslateRow(list));
  }
  return out;
}

void QueryService::FillGroups(const FactorizedResult& fact,
                              QueryResponse* resp) {
  resp->groups_form = true;
  resp->slot_list = fact.slot_list;
  resp->groups.reserve(fact.groups.size());
  for (const FactorizedResult::Group& g : fact.groups) {
    resp->groups.push_back(TranslateGroup(fact, g));
  }
}

QueryResponse QueryService::BuildResponse(const CacheEntry& entry,
                                          const NormalizedQuery& nq,
                                          const RequestOptions& request,
                                          bool cache_hit) {
  QueryResponse resp;
  resp.cache_hit = cache_hit;
  resp.stats = entry.exec_stats;
  resp.timed_out = entry.exec_stats.timed_out;
  resp.cancelled = entry.exec_stats.cancelled;
  if (request.count_only) {
    // A complete (untruncated) handle is an exact count too — for a
    // factorized one the count is product-of-list-sizes arithmetic
    // (FactorizedResult::total_rows), no expansion involved.
    if (entry.have_count) {
      resp.total_rows = entry.count;
    } else if (entry.have_rows && !entry.truncated) {
      resp.total_rows = entry.rows.size();
    } else {
      resp.total_rows = entry.fact.total_rows;
    }
    return resp;
  }
  resp.truncated = entry.truncated;
  // Map the canonical variable spellings back to this request's own.
  resp.var_names.reserve(entry.var_names.size());
  for (const std::string& canon : entry.var_names) {
    auto it = nq.canon_to_orig.find(canon);
    resp.var_names.push_back(it != nq.canon_to_orig.end() ? it->second
                                                          : canon);
  }
  if (request.want_groups && entry.have_fact &&
      !entry.fact.needs_row_dedup) {
    // Granted groups form: ship the factorized records themselves. A
    // DISTINCT handle with colliding groups is excluded above — its
    // expansion routes through a row-level dedup set no client could
    // replay — and falls through to expanded rows instead.
    const uint64_t retained =
        entry.fact.row_limit == 0
            ? entry.fact.total_rows
            : std::min(entry.fact.total_rows, entry.fact.row_limit);
    resp.total_rows = retained;
    FillGroups(entry.fact, &resp);
    return resp;
  }
  if (!entry.have_rows && entry.have_fact) {
    // Factorized handle: the retained set is the row_limit clamp of the
    // full cardinality; the page expands ONLY rows [offset, offset+limit)
    // — Skip() jumps whole groups, so a deep-OFFSET page never
    // re-enumerates its prefix.
    const uint64_t retained =
        entry.fact.row_limit == 0
            ? entry.fact.total_rows
            : std::min(entry.fact.total_rows, entry.fact.row_limit);
    resp.total_rows = retained;
    const uint64_t begin = std::min<uint64_t>(request.offset, retained);
    uint64_t end = retained;
    if (request.limit != 0) {
      end = std::min<uint64_t>(begin + request.limit, end);
    }
    FactorizedResult::Cursor cur = entry.fact.Expand();
    cur.Skip(begin);
    resp.rows.reserve(static_cast<size_t>(end - begin));
    for (uint64_t i = begin; i < end && cur.Next(); ++i) {
      resp.rows.push_back(engine_->TranslateRow(cur.Row()));
    }
    resp.stats.rows_expanded += cur.rows_expanded();
    return resp;
  }
  resp.total_rows = entry.rows.size();
  // The page: rows [offset, offset+limit) of the retained handle.
  const uint64_t begin =
      std::min<uint64_t>(request.offset, entry.rows.size());
  uint64_t end = entry.rows.size();
  if (request.limit != 0) {
    end = std::min<uint64_t>(begin + request.limit, end);
  }
  resp.rows.assign(entry.rows.begin() + static_cast<ptrdiff_t>(begin),
                   entry.rows.begin() + static_cast<ptrdiff_t>(end));
  return resp;
}

Result<QueryResponse> QueryService::Query(std::string_view text,
                                          const RequestOptions& request) {
  const auto start = std::chrono::steady_clock::now();
  const std::chrono::milliseconds budget = request.deadline.count() > 0
                                               ? request.deadline
                                               : options_.default_deadline;

  if (request.want_groups) {
    if (request.count_only) {
      return Status::InvalidArgument(
          "want_groups cannot combine with count_only");
    }
    if (request.offset != 0 || request.limit != 0) {
      return Status::InvalidArgument(
          "want_groups responses are not row-addressable: offset/limit "
          "must be zero (paginate in rows mode instead)");
    }
  }
  AMBER_ASSIGN_OR_RETURN(NormalizedQuery nq, NormalizeQuery(text));

  // One merged cancel scope per request: the client's token plus every
  // internal abort signal (orphaned-flight retirement cancels through the
  // flight's copy of this source). The engine sees its token.
  CancellationSource exec_cancel(request.cancel);

  // Drain registry: Shutdown() rejects us here or can cancel us later.
  AMBER_ASSIGN_OR_RETURN(const uint64_t drain_id,
                         RegisterRequest(exec_cancel));
  DrainGuard drain_guard{this, drain_id};

  const bool use_cache = options_.cache_entries > 0 && !request.bypass_cache;
  // Rows and counts of one query are distinct flights: a count result
  // cannot answer a materializing follower or vice versa.
  const std::string flight_key =
      nq.key + (request.count_only ? "#count" : "#rows");
  std::shared_ptr<Flight> flight;  // set iff this request leads a flight

  // Whether an answer for this request would come from a factorized
  // handle (rather than retained flat rows / a stored count) — the
  // ServiceStats::factorized_hits accounting predicate, mirroring the
  // handle preference order of BuildResponse.
  auto fact_served = [&request](const CacheEntry& e) {
    if (!e.have_fact) return false;
    if (request.count_only) {
      return !e.have_count && !(e.have_rows && !e.truncated);
    }
    if (request.want_groups && !e.fact.needs_row_dedup) return true;
    return !e.have_rows;
  };

  if (use_cache) {
    std::unique_lock<std::mutex> lock(mu_);
    CacheEntry* entry = LookupLocked(nq.key);
    // A hit must actually be able to answer this request's mode: rows (or
    // a factorized handle, expanded per page) for a materializing
    // request; an exact count (stored, or derivable from a complete
    // handle of either form) for a counting one.
    const bool usable =
        entry != nullptr &&
        (request.count_only
             ? (entry->have_count ||
                (entry->have_rows && !entry->truncated) ||
                (entry->have_fact && !entry->truncated))
             : (entry->have_rows || entry->have_fact));
    if (usable) {
      ++stats_.cache_hits;
      ++stats_.queries;
      if (fact_served(*entry)) ++stats_.factorized_hits;
      QueryResponse resp = BuildResponse(*entry, nq, request, true);
      stats_.rows_served += resp.rows.size();
      return resp;
    }
    ++stats_.cache_misses;

    if (options_.single_flight) {
      auto [it, inserted] =
          flights_.try_emplace(flight_key, std::make_shared<Flight>());
      if (!inserted) {
        // Follower: another request is already executing this exact
        // (key, mode). Wait for its published outcome under OUR deadline
        // — an expired follower answers timed_out on its own without
        // cancelling the leader.
        std::shared_ptr<Flight> lead = it->second;
        ++stats_.single_flight_hits;
        ++lead->waiters;
        bool resolved;
        if (budget.count() > 0) {
          resolved = lead->cv.wait_until(lock, start + budget,
                                         [&] { return lead->done; });
        } else {
          lead->cv.wait(lock, [&] { return lead->done; });
          resolved = true;
        }
        --lead->waiters;
        if (!resolved) {
          // Orphan check: if this was the LAST follower and the leader's
          // own client budget has expired too, nobody is left who could
          // use the result — cancel the leader's execution and retire
          // the flight so later requests lead fresh ones.
          if (!lead->done && lead->waiters == 0 &&
              std::chrono::steady_clock::now() >= lead->leader_deadline) {
            lead->leader_cancel.Cancel();
            ++stats_.orphaned_flights;
            auto fit = flights_.find(flight_key);
            if (fit != flights_.end() && fit->second == lead) {
              flights_.erase(fit);
            }
          }
          ++stats_.timed_out;
          ++stats_.queries;
          QueryResponse resp;
          resp.timed_out = true;
          return resp;
        }
        // Leader failure propagates to every waiter; it is never cached.
        if (!lead->status.ok()) return lead->status;
        ++stats_.queries;
        if (lead->entry->exec_stats.timed_out) ++stats_.timed_out;
        if (lead->entry->exec_stats.cancelled) ++stats_.cancelled;
        if (fact_served(*lead->entry)) ++stats_.factorized_hits;
        QueryResponse resp = BuildResponse(*lead->entry, nq, request, true);
        stats_.rows_served += resp.rows.size();
        return resp;
      }
      flight = it->second;  // leader: must publish on EVERY exit below
      // Bind the orphan machinery: the flight's source shares state with
      // this request's exec token, and the leader counts as gone once its
      // own budget has elapsed (never, when unbounded).
      flight->leader_cancel = exec_cancel;
      if (budget.count() > 0) flight->leader_deadline = start + budget;
    }
  }

  // Admission: acquire an execution slot inside the request's own budget.
  bool shed = false;
  switch (Admit(start, budget, &shed)) {
    case Admission::kRejected: {
      Status status = Status::ResourceExhausted(
          "query service saturated (max_in_flight=" +
          std::to_string(options_.max_in_flight) +
          ", max_queued=" + std::to_string(options_.max_queued) + ")");
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rejected;
      if (flight != nullptr) {
        PublishFlightLocked(flight_key, flight.get(), status, nullptr);
      }
      return status;
    }
    case Admission::kExpired: {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.timed_out;
      ++stats_.queries;
      if (flight != nullptr) {
        auto marker = std::make_shared<CacheEntry>();
        marker->exec_stats.timed_out = true;
        PublishFlightLocked(flight_key, flight.get(), Status::OK(),
                            std::move(marker));
      }
      QueryResponse resp;
      resp.timed_out = true;
      return resp;
    }
    case Admission::kAdmitted:
      break;
  }
  struct SlotGuard {
    QueryService* s;
    ~SlotGuard() { s->Release(); }
  } slot_guard{this};

  ExecOptions exec;
  const int max_budget = options_.max_thread_budget > 0
                             ? options_.max_thread_budget
                             : options_.pool_threads + 1;
  const int want = request.thread_budget > 0 ? request.thread_budget
                                             : options_.default_thread_budget;
  exec.num_threads = std::clamp(want, 1, max_budget);
  const int shed_budget = std::max(options_.shed_thread_budget, 1);
  if (shed && exec.num_threads > shed_budget) {
    // Overload: degrade gracefully by shedding PARALLELISM, not the
    // request — it still runs, on a reduced thread budget.
    exec.num_threads = shed_budget;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shed_thread_budgets;
  }
  if (options_.share_pool) exec.pool = &pool_;
  if (!request.count_only) exec.max_rows = options_.max_result_rows;
  exec.cancel = exec_cancel.token();

  // One execution attempt on the canonical parse (the plan half of the
  // cache): results depend on variables positionally, never on their
  // spelling. Fills `*out` on success.
  auto execute_once = [&](CacheEntry* out) -> Status {
    AMBER_RETURN_IF_ERROR(
        FaultInjector::Global().Inject(faults::kServiceExecute));
    if (request.count_only) {
      Result<CountResult> cr = engine_->Count(nq.query, exec);
      if (!cr.ok()) return cr.status();
      out->have_count = true;
      out->count = cr->count;
      out->exec_stats = cr->stats;
      return Status::OK();
    }
    // A want_groups request upgrades a flat-configured service to kAuto
    // for ITS execution: the factorized handle it needs gets retained
    // (and cached) without changing what other requests run under.
    const ResultForm form =
        options_.result_form != ResultForm::kFlat
            ? options_.result_form
            : (request.want_groups ? ResultForm::kAuto : ResultForm::kFlat);
    if (form != ResultForm::kFlat) {
      // Retain the factorized answer graph instead of expanded rows.
      // Engines that cannot factorize (the baselines) report
      // kUnimplemented ONCE and this service instance could pin that,
      // but the probe is cheap — fall through to the flat handle.
      ExecOptions fexec = exec;
      fexec.result_form = form;
      Result<FactorizedRows> fr = engine_->Factorize(nq.query, fexec);
      if (fr.ok()) {
        out->have_fact = true;
        out->var_names = std::move(fr->var_names);
        out->fact = std::move(fr->result);
        out->truncated = fr->stats.truncated;
        out->exec_stats = fr->stats;
        return Status::OK();
      }
      if (!fr.status().IsUnimplemented()) return fr.status();
    }
    Result<MaterializedRows> mr = engine_->Materialize(nq.query, exec);
    if (!mr.ok()) return mr.status();
    out->have_rows = true;
    out->var_names = std::move(mr->var_names);
    out->rows = std::move(mr->rows);
    out->truncated = mr->stats.truncated;
    out->exec_stats = mr->stats;
    return Status::OK();
  };

  // Retry loop: transient (kUnavailable) failures are re-attempted with
  // doubling backoff, but only while the remaining budget covers the
  // sleep — the last milliseconds of a deadline are spent querying, not
  // waiting. The deadline is a per-query budget from Query() entry:
  // whatever the queue (and earlier attempts) consumed is gone.
  CacheEntry fresh;
  Status exec_status = Status::OK();
  uint64_t retries_done = 0;
  bool expired = false;
  std::chrono::milliseconds backoff =
      options_.initial_backoff.count() > 0 ? options_.initial_backoff
                                           : std::chrono::milliseconds(1);
  for (int attempt = 0;; ++attempt) {
    if (budget.count() > 0) {
      const auto remaining =
          RemainingBudget(start, budget, std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        expired = true;
        break;
      }
      exec.timeout = remaining;
    }
    if (exec_cancel.cancelled()) {
      // Abandoned before this attempt started: answer cancelled without
      // touching the engine.
      fresh = CacheEntry();
      fresh.exec_stats.cancelled = true;
      exec_status = Status::OK();
      break;
    }
    fresh = CacheEntry();  // drop any state from a failed attempt
    exec_status = execute_once(&fresh);
    if (exec_status.ok()) break;
    if (!exec_status.IsUnavailable() || attempt >= options_.max_retries) {
      break;
    }
    if (budget.count() > 0 &&
        RemainingBudget(start, budget, std::chrono::steady_clock::now()) <=
            backoff) {
      break;  // the budget no longer covers the backoff: fail now
    }
    if (exec_cancel.token().WaitFor(backoff)) {
      // The token tripped during the backoff sleep: wake immediately and
      // answer cancelled instead of burning the rest of the sleep and
      // another attempt.
      fresh = CacheEntry();
      fresh.exec_stats.cancelled = true;
      exec_status = Status::OK();
      break;
    }
    backoff *= 2;
    ++retries_done;
  }

  if (expired) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.retries += retries_done;
    ++stats_.timed_out;
    ++stats_.queries;
    if (flight != nullptr) {
      auto marker = std::make_shared<CacheEntry>();
      marker->exec_stats.timed_out = true;
      PublishFlightLocked(flight_key, flight.get(), Status::OK(),
                          std::move(marker));
    }
    QueryResponse resp;
    resp.timed_out = true;
    return resp;
  }
  if (!exec_status.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.retries += retries_done;
    if (flight != nullptr) {
      PublishFlightLocked(flight_key, flight.get(), exec_status, nullptr);
    }
    return exec_status;
  }

  std::lock_guard<std::mutex> lock(mu_);
  stats_.retries += retries_done;
  ++stats_.queries;
  if (fresh.exec_stats.timed_out) ++stats_.timed_out;
  if (fresh.exec_stats.cancelled) ++stats_.cancelled;
  stats_.exec.MergeFrom(fresh.exec_stats);
  QueryResponse resp = BuildResponse(fresh, nq, request, false);
  stats_.rows_served += resp.rows.size();
  if (flight != nullptr) {
    // Copy the result for the waiters only when someone is still there
    // to read it (the lone-miss fast path pays no copy). Timed-out
    // results reach followers this way yet are never cached below.
    std::shared_ptr<const CacheEntry> published;
    if (flight->waiters > 0) {
      published = std::make_shared<const CacheEntry>(fresh);
    } else {
      auto marker = std::make_shared<CacheEntry>();
      marker->exec_stats = fresh.exec_stats;
      published = std::move(marker);
    }
    PublishFlightLocked(flight_key, flight.get(), Status::OK(),
                        std::move(published));
  }
  // A timed-out or cancelled run holds partial results; caching it would
  // poison every later hit. Complete runs are upserted (plan + result
  // handle).
  if (use_cache && !fresh.exec_stats.timed_out &&
      !fresh.exec_stats.cancelled) {
    fresh.query = std::move(nq.query);
    UpsertLocked(nq.key, std::move(fresh));
  }
  return resp;
}

namespace {

/// RowSink → PageSink adapter: skips the request offset, accumulates rows
/// into ONE in-flight page bounded by rows AND bytes, and hands finished
/// pages to the client synchronously (the matcher does not advance while a
/// page is being consumed — that handoff IS the backpressure, so peak
/// buffered memory is O(page), never O(result)). A page-handoff fault or a
/// sink abort trips the execution token and stops the stream.
class PagingSink final : public RowSink {
 public:
  PagingSink(PageSink* out, uint64_t offset, uint64_t page_rows,
             uint64_t page_bytes, CancellationSource* cancel)
      : out_(out),
        skip_(offset),
        page_rows_(std::max<uint64_t>(1, page_rows)),
        page_bytes_(page_bytes),
        cancel_(cancel) {}

  bool OnRow(std::span<const std::string> row) override {
    if (skip_ > 0) {
      --skip_;
      return true;
    }
    buf_bytes_ += row.size() * sizeof(std::string);
    for (const std::string& cell : row) buf_bytes_ += cell.size();
    buf_.emplace_back(row.begin(), row.end());
    peak_bytes_ = std::max(peak_bytes_, buf_bytes_);
    if (buf_.size() >= page_rows_ ||
        (page_bytes_ > 0 && buf_bytes_ >= page_bytes_)) {
      return Flush(/*last=*/false);
    }
    return true;
  }

  /// Hands the in-flight page to the client. `last` also flushes an empty
  /// terminator page. Returns false when the stream must stop.
  bool Flush(bool last) {
    if (buf_.empty() && !last) return true;
    // Page-handoff fault site: a firing aborts the stream exactly like a
    // client that stopped consuming.
    if (Status fault = FaultInjector::Global().Inject(faults::kServiceStream);
        !fault.ok()) {
      status_ = std::move(fault);
      cancel_->Cancel();
      return false;
    }
    StreamPage page;
    page.first_row = delivered_;
    page.rows = std::move(buf_);
    page.last = last;
    buf_.clear();
    buf_bytes_ = 0;
    delivered_ += page.rows.size();
    ++pages_;
    if (!out_->OnPage(std::move(page))) {
      aborted_ = true;
      cancel_->Cancel();
      return false;
    }
    return true;
  }

  uint64_t delivered() const { return delivered_; }
  uint64_t pages() const { return pages_; }
  uint64_t peak_bytes() const { return peak_bytes_; }
  bool aborted() const { return aborted_; }
  const Status& status() const { return status_; }

 private:
  PageSink* out_;
  uint64_t skip_;
  const uint64_t page_rows_;
  const uint64_t page_bytes_;
  CancellationSource* cancel_;
  std::vector<std::vector<std::string>> buf_;
  uint64_t buf_bytes_ = 0;
  uint64_t delivered_ = 0;
  uint64_t pages_ = 0;
  uint64_t peak_bytes_ = 0;
  bool aborted_ = false;
  Status status_ = Status::OK();
};

}  // namespace

Result<StreamResponse> QueryService::QueryStream(std::string_view text,
                                                 const RequestOptions& request,
                                                 PageSink* sink) {
  const auto start = std::chrono::steady_clock::now();
  const std::chrono::milliseconds budget = request.deadline.count() > 0
                                               ? request.deadline
                                               : options_.default_deadline;
  if (request.count_only) {
    return Status::InvalidArgument(
        "count_only requests cannot stream; use Query()");
  }
  if (request.want_groups && (request.offset != 0 || request.limit != 0)) {
    return Status::InvalidArgument(
        "want_groups streams are not row-addressable: offset/limit must "
        "be zero (stream in rows mode instead)");
  }
  AMBER_ASSIGN_OR_RETURN(NormalizedQuery nq, NormalizeQuery(text));

  // Client token merged with the service's internal abort signals (sink
  // abort, page-handoff fault). Streams bypass the cache and single-flight
  // entirely: rows leave incrementally, so there is no materialized handle
  // to retain or share — and a cancelled partial stream can never be
  // cached by construction.
  CancellationSource exec_cancel(request.cancel);

  // Drain registry: Shutdown() rejects us here or can cancel us later.
  AMBER_ASSIGN_OR_RETURN(const uint64_t drain_id,
                         RegisterRequest(exec_cancel));
  DrainGuard drain_guard{this, drain_id};

  bool shed = false;
  switch (Admit(start, budget, &shed)) {
    case Admission::kRejected: {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rejected;
      return Status::ResourceExhausted(
          "query service saturated (max_in_flight=" +
          std::to_string(options_.max_in_flight) +
          ", max_queued=" + std::to_string(options_.max_queued) + ")");
    }
    case Admission::kExpired: {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.timed_out;
      ++stats_.queries;
      StreamResponse resp;
      resp.timed_out = true;
      return resp;
    }
    case Admission::kAdmitted:
      break;
  }
  struct SlotGuard {
    QueryService* s;
    ~SlotGuard() { s->Release(); }
  } slot_guard{this};

  ExecOptions exec;
  const int max_budget = options_.max_thread_budget > 0
                             ? options_.max_thread_budget
                             : options_.pool_threads + 1;
  const int want = request.thread_budget > 0 ? request.thread_budget
                                             : options_.default_thread_budget;
  exec.num_threads = std::clamp(want, 1, max_budget);
  const int shed_budget = std::max(options_.shed_thread_budget, 1);
  if (shed && exec.num_threads > shed_budget) {
    exec.num_threads = shed_budget;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shed_thread_budgets;
  }
  if (options_.share_pool) exec.pool = &pool_;
  exec.cancel = exec_cancel.token();
  // Pagination folds into the engine's row cap: enumeration stops once
  // offset + limit rows exist, instead of materializing the full result
  // and slicing.
  if (request.limit != 0) {
    exec.max_rows = SaturatingAdd(request.offset, request.limit);
  }
  if (budget.count() > 0) {
    const auto remaining =
        RemainingBudget(start, budget, std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.timed_out;
      ++stats_.queries;
      StreamResponse resp;
      resp.timed_out = true;
      return resp;
    }
    exec.timeout = remaining;
  }

  // Single attempt — no retries for streams: pages already delivered
  // cannot be unsent, so a mid-stream failure is surfaced, not retried.
  AMBER_RETURN_IF_ERROR(
      FaultInjector::Global().Inject(faults::kServiceExecute));

  const ResultForm stream_form =
      options_.result_form != ResultForm::kFlat
          ? options_.result_form
          : (request.want_groups ? ResultForm::kAuto : ResultForm::kFlat);
  if (stream_form != ResultForm::kFlat) {
    ExecOptions fexec = exec;
    fexec.result_form = stream_form;
    Result<FactorizedRows> fr = engine_->Factorize(nq.query, fexec);
    if (!fr.ok() && !fr.status().IsUnimplemented()) return fr.status();
    if (fr.ok()) {
      // Stream by expanding the factorized handle: the offset is
      // pre-skipped through the cursor (whole groups at a time), so a
      // deep-OFFSET stream never re-enumerates its prefix; pages then
      // leave through the same bounded PagingSink as the flat path.
      StreamResponse resp;
      resp.stats = fr->stats;
      resp.var_names.reserve(fr->var_names.size());
      for (const std::string& canon : fr->var_names) {
        auto it = nq.canon_to_orig.find(canon);
        resp.var_names.push_back(it != nq.canon_to_orig.end() ? it->second
                                                              : canon);
      }
      if (fr->stats.timed_out || fr->stats.cancelled) {
        // Partial handle — end like a timed-out / cancelled flat stream:
        // no pages, no terminator.
        resp.cancelled = fr->stats.cancelled;
        resp.timed_out = !resp.cancelled && fr->stats.timed_out;
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.queries;
        if (resp.cancelled) ++stats_.cancelled;
        if (resp.timed_out) ++stats_.timed_out;
        stats_.exec.MergeFrom(resp.stats);
        return resp;
      }
      const FactorizedResult& fact = fr->result;
      const uint64_t retained =
          fact.row_limit == 0 ? fact.total_rows
                              : std::min(fact.total_rows, fact.row_limit);
      if (request.want_groups && !fact.needs_row_dedup) {
        // Groups page path: ship the factorized records themselves, one
        // page per flush, never expanding. Pages flush on the
        // REPRESENTED-row bound (so a wire page covers about as many
        // logical rows as a rows-mode page) or on the byte budget over
        // retained tokens, whichever trips first — buffered memory stays
        // O(page) of GROUP payload, the whole point. DISTINCT handles
        // whose groups collide (needs_row_dedup) are excluded: their
        // expansion routes through a dedup set no client could replay —
        // they fall through to the expanded-row stream below.
        resp.groups_form = true;
        resp.slot_list = fact.slot_list;
        StreamPage page;
        uint64_t page_rep = 0;    // rows represented by the in-flight page
        uint64_t page_bytes = 0;  // token bytes buffered in it
        uint64_t delivered = 0;   // represented rows already delivered
        uint64_t pages = 0;
        uint64_t peak_bytes = 0;
        Status fault_status = Status::OK();
        auto flush = [&](bool last) -> bool {
          if (page.groups.empty() && !last) return true;
          if (Status fault =
                  FaultInjector::Global().Inject(faults::kServiceStream);
              !fault.ok()) {
            fault_status = std::move(fault);
            exec_cancel.Cancel();
            return false;
          }
          page.first_row = delivered;
          page.last = last;
          const uint64_t rep = page_rep;
          ++pages;
          page_rep = 0;
          page_bytes = 0;
          StreamPage out_page = std::move(page);
          page = StreamPage();
          if (!sink->OnPage(std::move(out_page))) {
            exec_cancel.Cancel();
            return false;
          }
          delivered += rep;
          return true;
        };
        bool open = true;
        for (const FactorizedResult::Group& g : fact.groups) {
          if (exec_cancel.cancelled()) {
            open = false;
            break;
          }
          ResultGroup out = TranslateGroup(fact, g);
          uint64_t gbytes =
              sizeof(ResultGroup) + out.fixed.size() * sizeof(std::string);
          for (const std::string& cell : out.fixed) gbytes += cell.size();
          for (const std::vector<std::string>& list : out.lists) {
            gbytes += sizeof(list) + list.size() * sizeof(std::string);
            for (const std::string& cell : list) gbytes += cell.size();
          }
          page_rep = SaturatingAdd(page_rep, g.Cardinality());
          page_bytes += gbytes;
          page.groups.push_back(std::move(out));
          peak_bytes = std::max(peak_bytes, page_bytes);
          if (page_rep >= options_.stream_page_rows ||
              (options_.stream_buffer_bytes > 0 &&
               page_bytes >= options_.stream_buffer_bytes)) {
            if (!(open = flush(/*last=*/false))) break;
          }
        }
        if (!fault_status.ok()) return fault_status;
        resp.cancelled = !open || exec_cancel.cancelled();
        resp.complete = !resp.cancelled;
        if (resp.complete && !flush(/*last=*/true)) {
          if (!fault_status.ok()) return fault_status;
          resp.cancelled = true;
          resp.complete = false;
        }
        // The group crossing a row cap is delivered whole; the summary's
        // rows_streamed is clamped so clients trim expansion to it.
        resp.truncated = fact.truncated;
        resp.rows_streamed = std::min(delivered, retained);
        resp.pages = pages;
        resp.peak_buffered_bytes = peak_bytes;
        resp.stats.rows = resp.rows_streamed;
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.queries;
        if (resp.cancelled) ++stats_.cancelled;
        ++stats_.factorized_hits;
        stats_.exec.MergeFrom(resp.stats);
        stats_.rows_served += resp.rows_streamed;
        return resp;
      }
      const uint64_t skip = std::min<uint64_t>(request.offset, retained);
      uint64_t remaining = retained - skip;
      if (request.limit != 0) remaining = std::min(remaining, request.limit);
      PagingSink pager(sink, /*offset=*/0, options_.stream_page_rows,
                       options_.stream_buffer_bytes, &exec_cancel);
      FactorizedResult::Cursor cur = fact.Expand();
      cur.Skip(skip);
      bool open = true;
      std::vector<std::string> row_text;
      for (uint64_t i = 0; i < remaining && open && cur.Next(); ++i) {
        row_text = engine_->TranslateRow(cur.Row());
        open = pager.OnRow(row_text);
      }
      resp.stats.rows_expanded += cur.rows_expanded();
      if (!pager.status().ok()) return pager.status();  // page-handoff fault
      resp.cancelled = pager.aborted() || exec_cancel.cancelled();
      resp.complete = !resp.cancelled;
      if (resp.complete && !pager.Flush(/*last=*/true)) {
        if (!pager.status().ok()) return pager.status();
        resp.cancelled = true;
        resp.complete = false;
      }
      const uint64_t cap = EffectiveRowCap(nq.query, exec);
      resp.truncated = cap != 0 && skip + pager.delivered() >= cap;
      resp.rows_streamed = pager.delivered();
      resp.pages = pager.pages();
      resp.peak_buffered_bytes = pager.peak_bytes();
      resp.stats.rows = pager.delivered();
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.queries;
      if (resp.cancelled) ++stats_.cancelled;
      stats_.exec.MergeFrom(resp.stats);
      stats_.rows_served += pager.delivered();
      return resp;
    }
    // Engine cannot factorize (kUnimplemented): fall through to the flat
    // stream path — without a second kServiceExecute injection.
  }

  PagingSink pager(sink, request.offset, options_.stream_page_rows,
                   options_.stream_buffer_bytes, &exec_cancel);
  Result<StreamResult> sr = engine_->Stream(nq.query, exec, &pager);
  if (!sr.ok()) return sr.status();
  if (!pager.status().ok()) return pager.status();  // page-handoff fault

  StreamResponse resp;
  resp.stats = sr->stats;
  resp.truncated = sr->stats.truncated;
  resp.var_names.reserve(sr->var_names.size());
  for (const std::string& canon : sr->var_names) {
    auto it = nq.canon_to_orig.find(canon);
    resp.var_names.push_back(it != nq.canon_to_orig.end() ? it->second
                                                          : canon);
  }
  // End-state classification (exactly one of the three): a sink abort or
  // tripped token means cancelled; otherwise an engine timeout stands; a
  // truncated (cap-reached) stream satisfied the request and is complete.
  resp.cancelled =
      pager.aborted() || sr->stats.cancelled ||
      (sr->sink_stopped && exec_cancel.cancelled());
  resp.timed_out = !resp.cancelled && sr->stats.timed_out;
  resp.complete = !resp.cancelled && !resp.timed_out;
  if (resp.complete) {
    // Terminator: flush the final partial page with last=true (an empty
    // page when the stream ended on a page boundary or had no rows).
    if (!pager.Flush(/*last=*/true)) {
      if (!pager.status().ok()) return pager.status();
      resp.cancelled = true;
      resp.complete = false;
    }
  }
  resp.rows_streamed = pager.delivered();
  resp.pages = pager.pages();
  resp.peak_buffered_bytes = pager.peak_bytes();
  resp.stats.rows = pager.delivered();

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.queries;
  if (resp.cancelled) ++stats_.cancelled;
  if (resp.timed_out) ++stats_.timed_out;
  stats_.exec.MergeFrom(sr->stats);
  stats_.rows_served += pager.delivered();
  return resp;
}

ServiceStats QueryService::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats out = stats_;
  out.cache_entries = cache_.size();
  out.bytes_cached = cache_bytes_used_;
  out.in_flight = static_cast<uint64_t>(in_flight_);
  out.queued = static_cast<uint64_t>(queued_);
  return out;
}

}  // namespace amber
