#include "server/query_service.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "sparql/formatter.h"
#include "sparql/parser.h"
#include "util/fault_injector.h"

namespace amber {

namespace {

/// Remaining budget at `now`, or a negative value when expired. Zero
/// budget means unlimited and always returns zero.
std::chrono::milliseconds RemainingBudget(
    std::chrono::steady_clock::time_point start,
    std::chrono::milliseconds budget,
    std::chrono::steady_clock::time_point now) {
  if (budget.count() <= 0) return std::chrono::milliseconds(0);
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - start);
  return budget - elapsed;
}

}  // namespace

Result<NormalizedQuery> NormalizeQuery(std::string_view text) {
  AMBER_ASSIGN_OR_RETURN(SelectQuery q, SparqlParser::Parse(text));
  NormalizedQuery out;
  std::unordered_map<std::string, std::string> orig_to_canon;
  auto canon = [&](std::string* name) {
    auto [it, inserted] = orig_to_canon.try_emplace(*name);
    if (inserted) {
      // First appearance: assign the next canonical name.
      it->second = "v" + std::to_string(orig_to_canon.size() - 1);
      out.canon_to_orig.emplace(it->second, *name);
    }
    *name = it->second;
  };
  // First-appearance order over patterns, then filters, then projection:
  // any two queries equal up to variable renaming visit their variables in
  // corresponding order, so they canonicalize identically.
  for (TriplePattern& p : q.patterns) {
    if (p.subject.is_variable()) canon(&p.subject.value);
    if (p.predicate.is_variable()) canon(&p.predicate.value);
    if (p.object.is_variable()) canon(&p.object.value);
  }
  for (FilterPredicate& f : q.filters) canon(&f.var);
  for (std::string& v : q.projection) canon(&v);
  out.key = FormatQuery(q);
  out.query = std::move(q);
  return out;
}

QueryService::QueryService(QueryEngine* engine, const ServiceOptions& options)
    : engine_(engine),
      options_(options),
      pool_(static_cast<size_t>(std::max(options.pool_threads, 1))) {}

QueryService::~QueryService() { pool_.Shutdown(); }

QueryService::Admission QueryService::Admit(
    std::chrono::steady_clock::time_point start,
    std::chrono::milliseconds budget, bool* shed) {
  std::unique_lock<std::mutex> lock(mu_);
  // Overload shedding decision belongs to the admission moment: the
  // request counts itself, so with shed_high_water = H the (H+1)th
  // concurrent execution is the first to run degraded.
  auto admit_locked = [this, shed] {
    ++in_flight_;
    stats_.peak_in_flight = std::max<uint64_t>(
        stats_.peak_in_flight, static_cast<uint64_t>(in_flight_));
    *shed = options_.shed_high_water > 0 &&
            in_flight_ > options_.shed_high_water;
  };
  if (options_.max_in_flight <= 0 || in_flight_ < options_.max_in_flight) {
    admit_locked();
    return Admission::kAdmitted;
  }
  if (queued_ >= std::max(options_.max_queued, 0)) {
    return Admission::kRejected;
  }
  ++queued_;
  const bool bounded = budget.count() > 0;
  const auto wait_deadline = start + budget;
  bool got_slot;
  if (bounded) {
    got_slot = admission_cv_.wait_until(lock, wait_deadline, [this] {
      return in_flight_ < options_.max_in_flight;
    });
  } else {
    admission_cv_.wait(
        lock, [this] { return in_flight_ < options_.max_in_flight; });
    got_slot = true;
  }
  --queued_;
  if (!got_slot) {
    // Budget expired while waiting. Wake the next waiter in case a slot
    // freed concurrently with the timeout.
    admission_cv_.notify_one();
    return Admission::kExpired;
  }
  admit_locked();
  return Admission::kAdmitted;
}

void QueryService::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  admission_cv_.notify_one();
}

QueryService::CacheEntry* QueryService::LookupLocked(const std::string& key) {
  auto it = cache_.find(key);
  if (it == cache_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // touch
  return &it->second;
}

uint64_t QueryService::EntryBytes(const std::string& key,
                                  const CacheEntry& e) {
  // Deterministic O(cells) accounting of what the entry retains: row and
  // cell payloads plus per-object header overhead (sizes, not
  // capacities, so the figure is reproducible across allocators).
  uint64_t bytes = sizeof(CacheEntry) + key.size();
  bytes += e.var_names.size() * sizeof(std::string);
  for (const std::string& name : e.var_names) bytes += name.size();
  bytes += e.rows.size() * sizeof(std::vector<std::string>);
  for (const auto& row : e.rows) {
    bytes += row.size() * sizeof(std::string);
    for (const std::string& cell : row) bytes += cell.size();
  }
  return bytes;
}

void QueryService::EvictLocked() {
  while (!cache_.empty() &&
         (cache_.size() > options_.cache_entries ||
          (options_.cache_bytes > 0 &&
           cache_bytes_used_ > options_.cache_bytes))) {
    auto it = cache_.find(lru_.back());
    cache_bytes_used_ -= it->second.bytes;
    cache_.erase(it);
    lru_.pop_back();
    ++stats_.cache_evictions;
  }
}

void QueryService::UpsertLocked(const std::string& key, CacheEntry&& fresh) {
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    fresh.bytes = EntryBytes(key, fresh);
    // Oversized bypass: an entry alone bigger than the whole byte budget
    // would evict every other entry and then itself — serve it once and
    // keep the cache for results that fit.
    if (options_.cache_bytes > 0 && fresh.bytes > options_.cache_bytes) {
      return;
    }
    lru_.push_front(key);
    fresh.lru_it = lru_.begin();
    cache_bytes_used_ += fresh.bytes;
    cache_.emplace(key, std::move(fresh));
    EvictLocked();
    return;
  }
  // Merge: a concurrent miss (or the other mode of the same query) may
  // have filled one half already; keep whatever is present — both runs
  // computed identical results by the determinism contract.
  CacheEntry& e = it->second;
  bool grew = false;
  if (fresh.have_rows && !e.have_rows) {
    e.have_rows = true;
    e.var_names = std::move(fresh.var_names);
    e.rows = std::move(fresh.rows);
    e.truncated = fresh.truncated;
    grew = true;
  }
  if (fresh.have_count && !e.have_count) {
    e.have_count = true;
    e.count = fresh.count;
    grew = true;
  }
  if (grew) {
    cache_bytes_used_ -= e.bytes;
    e.bytes = EntryBytes(key, e);
    cache_bytes_used_ += e.bytes;
  }
  lru_.splice(lru_.begin(), lru_, e.lru_it);  // touch
  // A merge can push past the byte budget; the merged entry was just
  // touched to the LRU front, so it is evicted only if nothing else
  // remains to give back.
  EvictLocked();
}

void QueryService::PublishFlightLocked(
    const std::string& flight_key, Flight* flight, Status status,
    std::shared_ptr<const CacheEntry> entry) {
  flight->status = std::move(status);
  flight->entry = std::move(entry);
  flight->done = true;
  // Retiring the flight and resolving it are one atomic step under mu_:
  // any later request either found this flight (and wakes here) or will
  // miss it and consult the cache / lead its own flight.
  flights_.erase(flight_key);
  flight->cv.notify_all();
}

QueryResponse QueryService::BuildResponse(const CacheEntry& entry,
                                          const NormalizedQuery& nq,
                                          const RequestOptions& request,
                                          bool cache_hit) {
  QueryResponse resp;
  resp.cache_hit = cache_hit;
  resp.stats = entry.exec_stats;
  resp.timed_out = entry.exec_stats.timed_out;
  if (request.count_only) {
    // A complete (untruncated) row handle is an exact count too.
    resp.total_rows =
        entry.have_count ? entry.count : static_cast<uint64_t>(
                                             entry.rows.size());
    return resp;
  }
  resp.truncated = entry.truncated;
  resp.total_rows = entry.rows.size();
  // Map the canonical variable spellings back to this request's own.
  resp.var_names.reserve(entry.var_names.size());
  for (const std::string& canon : entry.var_names) {
    auto it = nq.canon_to_orig.find(canon);
    resp.var_names.push_back(it != nq.canon_to_orig.end() ? it->second
                                                          : canon);
  }
  // The page: rows [offset, offset+limit) of the retained handle.
  const uint64_t begin =
      std::min<uint64_t>(request.offset, entry.rows.size());
  uint64_t end = entry.rows.size();
  if (request.limit != 0) {
    end = std::min<uint64_t>(begin + request.limit, end);
  }
  resp.rows.assign(entry.rows.begin() + static_cast<ptrdiff_t>(begin),
                   entry.rows.begin() + static_cast<ptrdiff_t>(end));
  return resp;
}

Result<QueryResponse> QueryService::Query(std::string_view text,
                                          const RequestOptions& request) {
  const auto start = std::chrono::steady_clock::now();
  const std::chrono::milliseconds budget = request.deadline.count() > 0
                                               ? request.deadline
                                               : options_.default_deadline;

  AMBER_ASSIGN_OR_RETURN(NormalizedQuery nq, NormalizeQuery(text));

  const bool use_cache = options_.cache_entries > 0 && !request.bypass_cache;
  // Rows and counts of one query are distinct flights: a count result
  // cannot answer a materializing follower or vice versa.
  const std::string flight_key =
      nq.key + (request.count_only ? "#count" : "#rows");
  std::shared_ptr<Flight> flight;  // set iff this request leads a flight

  if (use_cache) {
    std::unique_lock<std::mutex> lock(mu_);
    CacheEntry* entry = LookupLocked(nq.key);
    // A hit must actually be able to answer this request's mode: rows for
    // a materializing request; an exact count (stored, or derivable from a
    // complete row handle) for a counting one.
    const bool usable =
        entry != nullptr &&
        (request.count_only
             ? (entry->have_count || (entry->have_rows && !entry->truncated))
             : entry->have_rows);
    if (usable) {
      ++stats_.cache_hits;
      ++stats_.queries;
      QueryResponse resp = BuildResponse(*entry, nq, request, true);
      stats_.rows_served += resp.rows.size();
      return resp;
    }
    ++stats_.cache_misses;

    if (options_.single_flight) {
      auto [it, inserted] =
          flights_.try_emplace(flight_key, std::make_shared<Flight>());
      if (!inserted) {
        // Follower: another request is already executing this exact
        // (key, mode). Wait for its published outcome under OUR deadline
        // — an expired follower answers timed_out on its own without
        // cancelling the leader.
        std::shared_ptr<Flight> lead = it->second;
        ++stats_.single_flight_hits;
        ++lead->waiters;
        bool resolved;
        if (budget.count() > 0) {
          resolved = lead->cv.wait_until(lock, start + budget,
                                         [&] { return lead->done; });
        } else {
          lead->cv.wait(lock, [&] { return lead->done; });
          resolved = true;
        }
        --lead->waiters;
        if (!resolved) {
          ++stats_.timed_out;
          ++stats_.queries;
          QueryResponse resp;
          resp.timed_out = true;
          return resp;
        }
        // Leader failure propagates to every waiter; it is never cached.
        if (!lead->status.ok()) return lead->status;
        ++stats_.queries;
        if (lead->entry->exec_stats.timed_out) ++stats_.timed_out;
        QueryResponse resp = BuildResponse(*lead->entry, nq, request, true);
        stats_.rows_served += resp.rows.size();
        return resp;
      }
      flight = it->second;  // leader: must publish on EVERY exit below
    }
  }

  // Admission: acquire an execution slot inside the request's own budget.
  bool shed = false;
  switch (Admit(start, budget, &shed)) {
    case Admission::kRejected: {
      Status status = Status::ResourceExhausted(
          "query service saturated (max_in_flight=" +
          std::to_string(options_.max_in_flight) +
          ", max_queued=" + std::to_string(options_.max_queued) + ")");
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rejected;
      if (flight != nullptr) {
        PublishFlightLocked(flight_key, flight.get(), status, nullptr);
      }
      return status;
    }
    case Admission::kExpired: {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.timed_out;
      ++stats_.queries;
      if (flight != nullptr) {
        auto marker = std::make_shared<CacheEntry>();
        marker->exec_stats.timed_out = true;
        PublishFlightLocked(flight_key, flight.get(), Status::OK(),
                            std::move(marker));
      }
      QueryResponse resp;
      resp.timed_out = true;
      return resp;
    }
    case Admission::kAdmitted:
      break;
  }
  struct SlotGuard {
    QueryService* s;
    ~SlotGuard() { s->Release(); }
  } slot_guard{this};

  ExecOptions exec;
  const int max_budget = options_.max_thread_budget > 0
                             ? options_.max_thread_budget
                             : options_.pool_threads + 1;
  const int want = request.thread_budget > 0 ? request.thread_budget
                                             : options_.default_thread_budget;
  exec.num_threads = std::clamp(want, 1, max_budget);
  const int shed_budget = std::max(options_.shed_thread_budget, 1);
  if (shed && exec.num_threads > shed_budget) {
    // Overload: degrade gracefully by shedding PARALLELISM, not the
    // request — it still runs, on a reduced thread budget.
    exec.num_threads = shed_budget;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shed_thread_budgets;
  }
  if (options_.share_pool) exec.pool = &pool_;
  if (!request.count_only) exec.max_rows = options_.max_result_rows;

  // One execution attempt on the canonical parse (the plan half of the
  // cache): results depend on variables positionally, never on their
  // spelling. Fills `*out` on success.
  auto execute_once = [&](CacheEntry* out) -> Status {
    AMBER_RETURN_IF_ERROR(
        FaultInjector::Global().Inject(faults::kServiceExecute));
    if (request.count_only) {
      Result<CountResult> cr = engine_->Count(nq.query, exec);
      if (!cr.ok()) return cr.status();
      out->have_count = true;
      out->count = cr->count;
      out->exec_stats = cr->stats;
    } else {
      Result<MaterializedRows> mr = engine_->Materialize(nq.query, exec);
      if (!mr.ok()) return mr.status();
      out->have_rows = true;
      out->var_names = std::move(mr->var_names);
      out->rows = std::move(mr->rows);
      out->truncated = mr->stats.truncated;
      out->exec_stats = mr->stats;
    }
    return Status::OK();
  };

  // Retry loop: transient (kUnavailable) failures are re-attempted with
  // doubling backoff, but only while the remaining budget covers the
  // sleep — the last milliseconds of a deadline are spent querying, not
  // waiting. The deadline is a per-query budget from Query() entry:
  // whatever the queue (and earlier attempts) consumed is gone.
  CacheEntry fresh;
  Status exec_status = Status::OK();
  uint64_t retries_done = 0;
  bool expired = false;
  std::chrono::milliseconds backoff =
      options_.initial_backoff.count() > 0 ? options_.initial_backoff
                                           : std::chrono::milliseconds(1);
  for (int attempt = 0;; ++attempt) {
    if (budget.count() > 0) {
      const auto remaining =
          RemainingBudget(start, budget, std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        expired = true;
        break;
      }
      exec.timeout = remaining;
    }
    fresh = CacheEntry();  // drop any state from a failed attempt
    exec_status = execute_once(&fresh);
    if (exec_status.ok()) break;
    if (!exec_status.IsUnavailable() || attempt >= options_.max_retries) {
      break;
    }
    if (budget.count() > 0 &&
        RemainingBudget(start, budget, std::chrono::steady_clock::now()) <=
            backoff) {
      break;  // the budget no longer covers the backoff: fail now
    }
    std::this_thread::sleep_for(backoff);
    backoff *= 2;
    ++retries_done;
  }

  if (expired) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.retries += retries_done;
    ++stats_.timed_out;
    ++stats_.queries;
    if (flight != nullptr) {
      auto marker = std::make_shared<CacheEntry>();
      marker->exec_stats.timed_out = true;
      PublishFlightLocked(flight_key, flight.get(), Status::OK(),
                          std::move(marker));
    }
    QueryResponse resp;
    resp.timed_out = true;
    return resp;
  }
  if (!exec_status.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.retries += retries_done;
    if (flight != nullptr) {
      PublishFlightLocked(flight_key, flight.get(), exec_status, nullptr);
    }
    return exec_status;
  }

  std::lock_guard<std::mutex> lock(mu_);
  stats_.retries += retries_done;
  ++stats_.queries;
  if (fresh.exec_stats.timed_out) ++stats_.timed_out;
  stats_.exec.MergeFrom(fresh.exec_stats);
  QueryResponse resp = BuildResponse(fresh, nq, request, false);
  stats_.rows_served += resp.rows.size();
  if (flight != nullptr) {
    // Copy the result for the waiters only when someone is still there
    // to read it (the lone-miss fast path pays no copy). Timed-out
    // results reach followers this way yet are never cached below.
    std::shared_ptr<const CacheEntry> published;
    if (flight->waiters > 0) {
      published = std::make_shared<const CacheEntry>(fresh);
    } else {
      auto marker = std::make_shared<CacheEntry>();
      marker->exec_stats = fresh.exec_stats;
      published = std::move(marker);
    }
    PublishFlightLocked(flight_key, flight.get(), Status::OK(),
                        std::move(published));
  }
  // A timed-out run holds partial results; caching it would poison every
  // later hit. Complete runs are upserted (plan + result handle).
  if (use_cache && !fresh.exec_stats.timed_out) {
    fresh.query = std::move(nq.query);
    UpsertLocked(nq.key, std::move(fresh));
  }
  return resp;
}

ServiceStats QueryService::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats out = stats_;
  out.cache_entries = cache_.size();
  out.bytes_cached = cache_bytes_used_;
  out.in_flight = static_cast<uint64_t>(in_flight_);
  out.queued = static_cast<uint64_t>(queued_);
  return out;
}

}  // namespace amber
