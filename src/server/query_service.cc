#include "server/query_service.h"

#include <algorithm>
#include <utility>

#include "sparql/formatter.h"
#include "sparql/parser.h"

namespace amber {

namespace {

/// Remaining budget at `now`, or a negative value when expired. Zero
/// budget means unlimited and always returns zero.
std::chrono::milliseconds RemainingBudget(
    std::chrono::steady_clock::time_point start,
    std::chrono::milliseconds budget,
    std::chrono::steady_clock::time_point now) {
  if (budget.count() <= 0) return std::chrono::milliseconds(0);
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - start);
  return budget - elapsed;
}

}  // namespace

Result<NormalizedQuery> NormalizeQuery(std::string_view text) {
  AMBER_ASSIGN_OR_RETURN(SelectQuery q, SparqlParser::Parse(text));
  NormalizedQuery out;
  std::unordered_map<std::string, std::string> orig_to_canon;
  auto canon = [&](std::string* name) {
    auto [it, inserted] = orig_to_canon.try_emplace(*name);
    if (inserted) {
      // First appearance: assign the next canonical name.
      it->second = "v" + std::to_string(orig_to_canon.size() - 1);
      out.canon_to_orig.emplace(it->second, *name);
    }
    *name = it->second;
  };
  // First-appearance order over patterns, then filters, then projection:
  // any two queries equal up to variable renaming visit their variables in
  // corresponding order, so they canonicalize identically.
  for (TriplePattern& p : q.patterns) {
    if (p.subject.is_variable()) canon(&p.subject.value);
    if (p.predicate.is_variable()) canon(&p.predicate.value);
    if (p.object.is_variable()) canon(&p.object.value);
  }
  for (FilterPredicate& f : q.filters) canon(&f.var);
  for (std::string& v : q.projection) canon(&v);
  out.key = FormatQuery(q);
  out.query = std::move(q);
  return out;
}

QueryService::QueryService(QueryEngine* engine, const ServiceOptions& options)
    : engine_(engine),
      options_(options),
      pool_(static_cast<size_t>(std::max(options.pool_threads, 1))) {}

QueryService::~QueryService() { pool_.Shutdown(); }

QueryService::Admission QueryService::Admit(
    std::chrono::steady_clock::time_point start,
    std::chrono::milliseconds budget) {
  std::unique_lock<std::mutex> lock(mu_);
  if (options_.max_in_flight <= 0 || in_flight_ < options_.max_in_flight) {
    ++in_flight_;
    stats_.peak_in_flight = std::max<uint64_t>(
        stats_.peak_in_flight, static_cast<uint64_t>(in_flight_));
    return Admission::kAdmitted;
  }
  if (queued_ >= std::max(options_.max_queued, 0)) {
    return Admission::kRejected;
  }
  ++queued_;
  const bool bounded = budget.count() > 0;
  const auto wait_deadline = start + budget;
  bool got_slot;
  if (bounded) {
    got_slot = admission_cv_.wait_until(lock, wait_deadline, [this] {
      return in_flight_ < options_.max_in_flight;
    });
  } else {
    admission_cv_.wait(
        lock, [this] { return in_flight_ < options_.max_in_flight; });
    got_slot = true;
  }
  --queued_;
  if (!got_slot) {
    // Budget expired while waiting. Wake the next waiter in case a slot
    // freed concurrently with the timeout.
    admission_cv_.notify_one();
    return Admission::kExpired;
  }
  ++in_flight_;
  stats_.peak_in_flight = std::max<uint64_t>(
      stats_.peak_in_flight, static_cast<uint64_t>(in_flight_));
  return Admission::kAdmitted;
}

void QueryService::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  admission_cv_.notify_one();
}

QueryService::CacheEntry* QueryService::LookupLocked(const std::string& key) {
  auto it = cache_.find(key);
  if (it == cache_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // touch
  return &it->second;
}

void QueryService::UpsertLocked(const std::string& key, CacheEntry&& fresh) {
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    lru_.push_front(key);
    fresh.lru_it = lru_.begin();
    cache_.emplace(key, std::move(fresh));
    while (cache_.size() > options_.cache_entries) {
      cache_.erase(lru_.back());
      lru_.pop_back();
      ++stats_.cache_evictions;
    }
    return;
  }
  // Merge: a concurrent miss (or the other mode of the same query) may
  // have filled one half already; keep whatever is present — both runs
  // computed identical results by the determinism contract.
  CacheEntry& e = it->second;
  if (fresh.have_rows && !e.have_rows) {
    e.have_rows = true;
    e.var_names = std::move(fresh.var_names);
    e.rows = std::move(fresh.rows);
    e.truncated = fresh.truncated;
  }
  if (fresh.have_count && !e.have_count) {
    e.have_count = true;
    e.count = fresh.count;
  }
  lru_.splice(lru_.begin(), lru_, e.lru_it);  // touch
}

QueryResponse QueryService::BuildResponse(const CacheEntry& entry,
                                          const NormalizedQuery& nq,
                                          const RequestOptions& request,
                                          bool cache_hit) {
  QueryResponse resp;
  resp.cache_hit = cache_hit;
  resp.stats = entry.exec_stats;
  resp.timed_out = entry.exec_stats.timed_out;
  if (request.count_only) {
    // A complete (untruncated) row handle is an exact count too.
    resp.total_rows =
        entry.have_count ? entry.count : static_cast<uint64_t>(
                                             entry.rows.size());
    return resp;
  }
  resp.truncated = entry.truncated;
  resp.total_rows = entry.rows.size();
  // Map the canonical variable spellings back to this request's own.
  resp.var_names.reserve(entry.var_names.size());
  for (const std::string& canon : entry.var_names) {
    auto it = nq.canon_to_orig.find(canon);
    resp.var_names.push_back(it != nq.canon_to_orig.end() ? it->second
                                                          : canon);
  }
  // The page: rows [offset, offset+limit) of the retained handle.
  const uint64_t begin =
      std::min<uint64_t>(request.offset, entry.rows.size());
  uint64_t end = entry.rows.size();
  if (request.limit != 0) {
    end = std::min<uint64_t>(begin + request.limit, end);
  }
  resp.rows.assign(entry.rows.begin() + static_cast<ptrdiff_t>(begin),
                   entry.rows.begin() + static_cast<ptrdiff_t>(end));
  return resp;
}

Result<QueryResponse> QueryService::Query(std::string_view text,
                                          const RequestOptions& request) {
  const auto start = std::chrono::steady_clock::now();
  const std::chrono::milliseconds budget = request.deadline.count() > 0
                                               ? request.deadline
                                               : options_.default_deadline;

  AMBER_ASSIGN_OR_RETURN(NormalizedQuery nq, NormalizeQuery(text));

  const bool use_cache = options_.cache_entries > 0 && !request.bypass_cache;
  if (use_cache) {
    std::lock_guard<std::mutex> lock(mu_);
    CacheEntry* entry = LookupLocked(nq.key);
    // A hit must actually be able to answer this request's mode: rows for
    // a materializing request; an exact count (stored, or derivable from a
    // complete row handle) for a counting one.
    const bool usable =
        entry != nullptr &&
        (request.count_only
             ? (entry->have_count || (entry->have_rows && !entry->truncated))
             : entry->have_rows);
    if (usable) {
      ++stats_.cache_hits;
      ++stats_.queries;
      QueryResponse resp = BuildResponse(*entry, nq, request, true);
      stats_.rows_served += resp.rows.size();
      return resp;
    }
    ++stats_.cache_misses;
  }

  // Admission: acquire an execution slot inside the request's own budget.
  switch (Admit(start, budget)) {
    case Admission::kRejected: {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rejected;
      return Status::ResourceExhausted(
          "query service saturated (max_in_flight=" +
          std::to_string(options_.max_in_flight) +
          ", max_queued=" + std::to_string(options_.max_queued) + ")");
    }
    case Admission::kExpired: {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.timed_out;
      ++stats_.queries;
      QueryResponse resp;
      resp.timed_out = true;
      return resp;
    }
    case Admission::kAdmitted:
      break;
  }
  struct SlotGuard {
    QueryService* s;
    ~SlotGuard() { s->Release(); }
  } slot_guard{this};

  // The deadline is a per-query budget from Query() entry: whatever the
  // queue consumed is gone. Re-check before touching the engine.
  ExecOptions exec;
  if (budget.count() > 0) {
    const auto remaining =
        RemainingBudget(start, budget, std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.timed_out;
      ++stats_.queries;
      QueryResponse resp;
      resp.timed_out = true;
      return resp;
    }
    exec.timeout = remaining;
  }
  const int max_budget = options_.max_thread_budget > 0
                             ? options_.max_thread_budget
                             : options_.pool_threads + 1;
  const int want = request.thread_budget > 0 ? request.thread_budget
                                             : options_.default_thread_budget;
  exec.num_threads = std::clamp(want, 1, max_budget);
  if (options_.share_pool) exec.pool = &pool_;

  // Execute on the canonical parse (the plan half of the cache): results
  // depend on variables positionally, never on their spelling.
  CacheEntry fresh;
  if (request.count_only) {
    AMBER_ASSIGN_OR_RETURN(CountResult cr, engine_->Count(nq.query, exec));
    fresh.have_count = true;
    fresh.count = cr.count;
    fresh.exec_stats = cr.stats;
  } else {
    exec.max_rows = options_.max_result_rows;
    AMBER_ASSIGN_OR_RETURN(MaterializedRows mr,
                           engine_->Materialize(nq.query, exec));
    fresh.have_rows = true;
    fresh.var_names = std::move(mr.var_names);
    fresh.rows = std::move(mr.rows);
    fresh.truncated = mr.stats.truncated;
    fresh.exec_stats = mr.stats;
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.queries;
  if (fresh.exec_stats.timed_out) ++stats_.timed_out;
  stats_.exec.MergeFrom(fresh.exec_stats);
  QueryResponse resp = BuildResponse(fresh, nq, request, false);
  stats_.rows_served += resp.rows.size();
  // A timed-out run holds partial results; caching it would poison every
  // later hit. Complete runs are upserted (plan + result handle).
  if (use_cache && !fresh.exec_stats.timed_out) {
    fresh.query = std::move(nq.query);
    UpsertLocked(nq.key, std::move(fresh));
  }
  return resp;
}

ServiceStats QueryService::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats out = stats_;
  out.cache_entries = cache_.size();
  out.in_flight = static_cast<uint64_t>(in_flight_);
  out.queued = static_cast<uint64_t>(queued_);
  return out;
}

}  // namespace amber
