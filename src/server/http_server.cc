#include "server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <utility>
#include <vector>

#include "server/wire.h"
#include "util/fault_injector.h"
#include "util/json.h"

namespace amber {
namespace {

// Half-closed peers report POLLRDHUP where available (Linux); elsewhere
// the watchdog only sees full hangups/errors and mid-write failures
// carry the detection instead.
#ifdef POLLRDHUP
constexpr short kHangupEvents = POLLRDHUP;
constexpr short kHangupRevents = POLLRDHUP | POLLHUP | POLLERR | POLLNVAL;
#else
constexpr short kHangupEvents = 0;
constexpr short kHangupRevents = POLLHUP | POLLERR | POLLNVAL;
#endif

constexpr std::chrono::milliseconds kPollSlice{100};
constexpr std::chrono::milliseconds kWatchdogPeriod{20};

std::string_view ReasonPhrase(int code) {
  switch (code) {
    case 100: return "Continue";
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Status";
  }
}

// Transport-level errors (no Status behind them) reuse the error shape of
// wire::SerializeError so clients have ONE error schema to parse.
std::string ErrorBody(int http, std::string_view code,
                      std::string_view message) {
  json::Writer w;
  w.BeginObject();
  w.Key("error");
  w.BeginObject();
  w.KV("code", code);
  w.KV("http", static_cast<uint64_t>(http));
  w.KV("message", message);
  w.EndObject();
  w.EndObject();
  return w.Take();
}

struct HttpRequest {
  std::string method;
  std::string path;  // query string stripped
  std::string version;
  std::vector<std::pair<std::string, std::string>> headers;  // keys lowered
  std::string body;
};

const std::string* FindHeader(const HttpRequest& req, std::string_view key) {
  for (const auto& [k, v] : req.headers) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses the request line + header block (everything before the blank
/// line). Returns false on any framing violation.
bool ParseRequestHead(std::string_view head, HttpRequest* req) {
  const size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return false;
  const size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return false;
  if (request_line.find(' ', sp2 + 1) != std::string_view::npos) return false;
  req->method = std::string(request_line.substr(0, sp1));
  std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t q = target.find('?');
  if (q != std::string_view::npos) target = target.substr(0, q);
  if (target.empty() || target[0] != '/') return false;
  req->version = std::string(request_line.substr(sp2 + 1));
  req->path = std::string(target);

  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    req->headers.emplace_back(ToLower(line.substr(0, colon)),
                              std::string(Trim(line.substr(colon + 1))));
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// StreamSink: the chunked NDJSON writer behind POST /query/stream. Each
// flushed StreamPage becomes exactly one HTTP chunk, written BEFORE the
// engine advances — the TCP send buffer is the only slack between a slow
// client and the matcher.
class HttpServer::StreamSink : public PageSink {
 public:
  StreamSink(HttpServer* server, int fd) : server_(server), fd_(fd) {}

  bool OnPage(StreamPage&& page) override {
    const std::string line = wire::SerializeStreamPage(page);
    // Pure terminator frames carry no payload; the summary line is the
    // on-wire terminator.
    if (line.empty()) return true;
    return WriteChunk(line);
  }

  /// Writes one NDJSON line as one chunk (response head first when this
  /// is the stream's first byte). False = the connection is dead.
  bool WriteChunk(std::string_view line) {
    if (write_failed_) return false;
    if (!FaultInjector::Global().Inject(faults::kServerWrite).ok()) {
      write_failed_ = true;
      return false;
    }
    std::string out;
    out.reserve(line.size() + 128);
    if (!headers_sent_) {
      // Attempted counts as sent: after a partial head we can no longer
      // switch to a clean buffered error response.
      headers_sent_ = true;
      out +=
          "HTTP/1.1 200 OK\r\n"
          "Content-Type: application/x-ndjson\r\n"
          "Transfer-Encoding: chunked\r\n"
          "Connection: keep-alive\r\n\r\n";
    }
    char size_hex[32];
    std::snprintf(size_hex, sizeof size_hex, "%zx",
                  line.size() + 1);  // +1: the NDJSON newline
    out += size_hex;
    out += "\r\n";
    out += line;
    out += "\n\r\n";
    if (!server_->WriteAll(fd_, out)) {
      write_failed_ = true;
      return false;
    }
    return true;
  }

  bool headers_sent() const { return headers_sent_; }
  bool write_failed() const { return write_failed_; }

 private:
  HttpServer* server_;
  int fd_;
  bool headers_sent_ = false;
  bool write_failed_ = false;
};

// ---------------------------------------------------------------------------

HttpServer::HttpServer(QueryService* service, const HttpServerOptions& options)
    : service_(service), options_(options) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }
  const int pool_threads = std::max(1, service_->options().pool_threads);
  effective_max_connections_ = options_.max_connections > 0
                                   ? options_.max_connections
                                   : pool_threads - 1;
  if (effective_max_connections_ < 1 ||
      effective_max_connections_ >= pool_threads) {
    // The spare-worker invariant (file comment in the header): every
    // connection parks one pool worker, and parallel executions need at
    // least one unparked worker for their transient helper tasks.
    return Status::InvalidArgument(
        "max_connections must stay below the service's pool_threads "
        "(need >= 2 pool threads to serve HTTP)");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket(): " + std::string(strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind_address: " +
                                   options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = strerror(errno);
    ::close(fd);
    return Status::IOError("bind(" + options_.bind_address + ":" +
                           std::to_string(options_.port) + "): " + err);
  }
  if (::listen(fd, options_.listen_backlog) != 0) {
    const std::string err = strerror(errno);
    ::close(fd);
    return Status::IOError("listen(): " + err);
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) != 0) {
    const std::string err = strerror(errno);
    ::close(fd);
    return Status::IOError("getsockname(): " + err);
  }
  bound_port_ = ntohs(bound.sin_port);

  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);

  // 1. Stop accepting: shutdown() wakes the blocking accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  {
    std::unique_lock<std::mutex> lock(mu_);
    // 2. Grace: in-flight connections may finish naturally (handlers
    // notice stopping_ between requests and close).
    conn_cv_.wait_for(lock, options_.drain_grace,
                      [this] { return conns_.empty(); });
    // 3. Hard-abort the stragglers: trip their request tokens and shut
    // their sockets so blocked reads/writes fail now. Looped — a handler
    // may register its active_cancel after one scan.
    while (!conns_.empty()) {
      for (auto& [id, conn] : conns_) {
        if (conn.active_cancel.has_value()) conn.active_cancel->Cancel();
        ::shutdown(conn.fd, SHUT_RDWR);
      }
      conn_cv_.wait_for(lock, std::chrono::milliseconds(10));
    }
  }
  if (watchdog_thread_.joinable()) watchdog_thread_.join();

  // 4. Connections are gone; drain the service itself.
  service_->Shutdown(std::chrono::milliseconds(0));
}

HttpServerStats HttpServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void HttpServer::AcceptLoop() {
  // A full canned response for the at-the-door overflow answer (written
  // from the accept thread; the rejected socket never reaches the pool).
  const std::string reject_body = ErrorBody(
      503, "Unavailable", "connection limit reached, retry with backoff");
  const std::string reject_response =
      "HTTP/1.1 503 Service Unavailable\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: " +
      std::to_string(reject_body.size()) +
      "\r\n"
      "Connection: close\r\n\r\n" +
      reject_body;

  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Out of descriptors or a listener error: back off instead of
      // spinning; Stop() still interrupts via stopping_.
      std::this_thread::sleep_for(kPollSlice);
      continue;
    }

    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    // Blocking sends time out per slice; WriteAll loops them under its
    // own overall deadline.
    timeval tv{};
    tv.tv_usec = static_cast<suseconds_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(kPollSlice)
            .count());
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

    uint64_t id = 0;
    bool rejected = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (static_cast<int>(conns_.size()) >= effective_max_connections_) {
        rejected = true;
        ++stats_.connections_rejected;
      } else {
        id = ++next_conn_id_;
        conns_.emplace(id, Conn{fd, std::nullopt});
        ++stats_.connections_accepted;
      }
    }
    if (rejected) {
      WriteAll(fd, reject_response);
      ::close(fd);
      continue;
    }
    if (!service_->pool()->Submit(
            [this, id, fd] { ServeConnection(id, fd); })) {
      // Pool already shut down (service torn down under us).
      {
        std::lock_guard<std::mutex> lock(mu_);
        conns_.erase(id);
        --stats_.connections_accepted;
        ++stats_.connections_rejected;
      }
      conn_cv_.notify_all();
      WriteAll(fd, reject_response);
      ::close(fd);
    }
  }
}

void HttpServer::WatchdogLoop() {
  std::vector<std::pair<uint64_t, int>> watched;
  std::vector<pollfd> pfds;
  while (!stopping_.load(std::memory_order_acquire)) {
    watched.clear();
    pfds.clear();
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [id, conn] : conns_) {
        if (conn.active_cancel.has_value()) {
          watched.emplace_back(id, conn.fd);
        }
      }
    }
    if (!watched.empty()) {
      for (const auto& [id, fd] : watched) {
        pfds.push_back(pollfd{fd, kHangupEvents, 0});
      }
      if (::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 0) > 0) {
        std::lock_guard<std::mutex> lock(mu_);
        for (size_t i = 0; i < pfds.size(); ++i) {
          if ((pfds[i].revents & kHangupRevents) == 0) continue;
          auto it = conns_.find(watched[i].first);
          // Re-check under the lock: the request may have finished (and
          // the fd even been recycled) since the snapshot.
          if (it != conns_.end() && it->second.fd == watched[i].second &&
              it->second.active_cancel.has_value()) {
            it->second.active_cancel->Cancel();
          }
        }
      }
    }
    std::this_thread::sleep_for(kWatchdogPeriod);
  }
}

void HttpServer::ServeConnection(uint64_t conn_id, int fd) {
  std::string rbuf;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (!ServeOneRequest(conn_id, fd, &rbuf)) break;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns_.erase(conn_id);
  }
  conn_cv_.notify_all();
  // Erase-then-close: Stop() only ever shutdown()s fds still registered,
  // so a recycled descriptor number can never be hit by mistake.
  ::close(fd);
}

bool HttpServer::ServeOneRequest(uint64_t conn_id, int fd,
                                 std::string* rbuf) {
  const auto deadline =
      std::chrono::steady_clock::now() + options_.read_timeout;

  // --- Read the header block (pipelined bytes may already be buffered).
  size_t header_end;
  while ((header_end = rbuf->find("\r\n\r\n")) == std::string::npos) {
    if (rbuf->size() > options_.max_header_bytes) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.bad_requests;
      }
      WriteResponse(fd, 431,
                    ErrorBody(431, "ResourceExhausted",
                              "header block exceeds max_header_bytes"),
                    /*keep_alive=*/false);
      return false;
    }
    // Idle close, read timeout, peer error, or Stop(): close quietly.
    if (!ReadMore(fd, rbuf, deadline)) return false;
  }
  // The bound holds even when the whole oversized head lands in one read.
  if (header_end > options_.max_header_bytes) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.bad_requests;
    }
    WriteResponse(fd, 431,
                  ErrorBody(431, "ResourceExhausted",
                            "header block exceeds max_header_bytes"),
                  /*keep_alive=*/false);
    return false;
  }

  HttpRequest req;
  if (!ParseRequestHead(std::string_view(*rbuf).substr(0, header_end),
                        &req)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.bad_requests;
    }
    WriteResponse(fd, 400,
                  ErrorBody(400, "InvalidArgument", "malformed request head"),
                  /*keep_alive=*/false);
    return false;
  }

  // --- Framing: explicit lengths only; bounded body.
  if (req.version != "HTTP/1.1" && req.version != "HTTP/1.0") {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.bad_requests;
    }
    WriteResponse(
        fd, 505,
        ErrorBody(505, "InvalidArgument", "unsupported HTTP version"),
        /*keep_alive=*/false);
    return false;
  }
  if (FindHeader(req, "transfer-encoding") != nullptr) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.bad_requests;
    }
    WriteResponse(fd, 411,
                  ErrorBody(411, "InvalidArgument",
                            "chunked request bodies are not supported; "
                            "send Content-Length"),
                  /*keep_alive=*/false);
    return false;
  }
  uint64_t content_length = 0;
  if (const std::string* cl = FindHeader(req, "content-length")) {
    const char* begin = cl->data();
    const char* end = begin + cl->size();
    auto [ptr, ec] = std::from_chars(begin, end, content_length);
    if (cl->empty() || ec != std::errc() || ptr != end) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.bad_requests;
      }
      WriteResponse(fd, 400,
                    ErrorBody(400, "InvalidArgument", "bad Content-Length"),
                    /*keep_alive=*/false);
      return false;
    }
  }
  if (content_length > options_.max_request_bytes) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.bad_requests;
    }
    WriteResponse(fd, 413,
                  ErrorBody(413, "ResourceExhausted",
                            "request body exceeds max_request_bytes"),
                  /*keep_alive=*/false);
    return false;
  }

  bool keep_alive = req.version == "HTTP/1.1";
  if (const std::string* conn_hdr = FindHeader(req, "connection")) {
    const std::string lowered = ToLower(*conn_hdr);
    if (lowered.find("close") != std::string::npos) keep_alive = false;
    if (lowered.find("keep-alive") != std::string::npos) keep_alive = true;
  }

  if (const std::string* expect = FindHeader(req, "expect")) {
    if (ToLower(*expect).find("100-continue") != std::string::npos) {
      if (!WriteAll(fd, "HTTP/1.1 100 Continue\r\n\r\n")) return false;
    }
  }

  // --- Read the body; consume the framed request from the buffer.
  const size_t total = header_end + 4 + content_length;
  while (rbuf->size() < total) {
    if (!ReadMore(fd, rbuf, deadline)) return false;
  }
  req.body = rbuf->substr(header_end + 4, content_length);
  rbuf->erase(0, total);

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
  }
  // A drain that began mid-read still answers this request, but the
  // connection closes right after.
  if (stopping_.load(std::memory_order_acquire)) keep_alive = false;

  // --- Route.
  if (req.method == "GET" && req.path == "/healthz") {
    const bool draining = stopping_.load(std::memory_order_acquire);
    json::Writer w;
    w.BeginObject();
    w.KV("status", draining ? "draining" : "ok");
    w.EndObject();
    return WriteResponse(fd, draining ? 503 : 200, w.str(), keep_alive) &&
           keep_alive;
  }
  if (req.method == "GET" && req.path == "/stats") {
    std::string body = "{\"service\":";
    body += wire::ServiceStatsToJson(service_->Stats());
    body += ",\"server\":";
    {
      const HttpServerStats snap = stats();
      json::Writer w;
      w.BeginObject();
      w.KV("connections_accepted", snap.connections_accepted);
      w.KV("connections_rejected", snap.connections_rejected);
      w.KV("requests", snap.requests);
      w.KV("bad_requests", snap.bad_requests);
      w.KV("aborted_responses", snap.aborted_responses);
      w.KV("bytes_read", snap.bytes_read);
      w.KV("bytes_written", snap.bytes_written);
      w.EndObject();
      body += w.str();
    }
    body += "}";
    return WriteResponse(fd, 200, body, keep_alive) && keep_alive;
  }
  if (req.path == "/query" || req.path == "/query/stream") {
    if (req.method != "POST") {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.bad_requests;
      }
      return WriteResponse(fd, 405,
                           ErrorBody(405, "InvalidArgument",
                                     "use POST on this route"),
                           keep_alive) &&
             keep_alive;
    }
    return req.path == "/query"
               ? HandleQuery(conn_id, fd, req.body, keep_alive)
               : HandleQueryStream(conn_id, fd, req.body, keep_alive);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.bad_requests;
  }
  return WriteResponse(fd, 404,
                       wire::SerializeError(Status::NotFound(
                           "no such endpoint: " + req.path)),
                       keep_alive) &&
         keep_alive;
}

bool HttpServer::HandleQuery(uint64_t conn_id, int fd,
                             const std::string& body, bool keep_alive) {
  Result<wire::WireRequest> wr = wire::ParseRequest(body);
  if (!wr.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.bad_requests;
    }
    return WriteResponse(fd, StatusCodeToHttp(wr.status().code()),
                         wire::SerializeError(wr.status()), keep_alive) &&
           keep_alive;
  }

  // The request runs under a connection-scoped source (merging any token
  // the wire options may one day carry): the watchdog and Stop() cancel
  // through it when the client disappears.
  CancellationSource source(wr->options.cancel);
  wr->options.cancel = source.token();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(conn_id);
    if (it != conns_.end()) it->second.active_cancel = source;
  }
  Result<QueryResponse> resp = service_->Query(wr->query, wr->options);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(conn_id);
    if (it != conns_.end()) it->second.active_cancel.reset();
  }

  if (!resp.ok()) {
    return WriteResponse(fd, StatusCodeToHttp(resp.status().code()),
                         wire::SerializeError(resp.status()), keep_alive) &&
           keep_alive;
  }
  return WriteResponse(fd, 200,
                       wire::SerializeResponse(*resp, wr->include_stats),
                       keep_alive) &&
         keep_alive;
}

bool HttpServer::HandleQueryStream(uint64_t conn_id, int fd,
                                   const std::string& body,
                                   bool keep_alive) {
  Result<wire::WireRequest> wr = wire::ParseRequest(body);
  if (!wr.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.bad_requests;
    }
    return WriteResponse(fd, StatusCodeToHttp(wr.status().code()),
                         wire::SerializeError(wr.status()), keep_alive) &&
           keep_alive;
  }

  CancellationSource source(wr->options.cancel);
  wr->options.cancel = source.token();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(conn_id);
    if (it != conns_.end()) it->second.active_cancel = source;
  }
  StreamSink sink(this, fd);
  Result<StreamResponse> sr =
      service_->QueryStream(wr->query, wr->options, &sink);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(conn_id);
    if (it != conns_.end()) it->second.active_cancel.reset();
  }

  if (!sr.ok()) {
    if (sink.headers_sent()) {
      // Mid-stream error after bytes already left: nothing clean to send.
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.aborted_responses;
      return false;
    }
    return WriteResponse(fd, StatusCodeToHttp(sr.status().code()),
                         wire::SerializeError(sr.status()), keep_alive) &&
           keep_alive;
  }
  if (sink.write_failed()) {
    // The client went away (or server.write fired) mid-stream; the sink
    // already tripped the execution via its false return.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.aborted_responses;
    return false;
  }

  const std::string summary =
      wire::SerializeStreamSummary(*sr, wr->include_stats);
  if (!sink.WriteChunk(summary)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.aborted_responses;
    return false;
  }
  if (!sr->complete) {
    // Cancelled / timed out: the summary line carries the flags, but the
    // chunked body stays unterminated — transports and clients both see
    // an incomplete stream.
    return false;
  }
  if (!WriteAll(fd, "0\r\n\r\n")) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.aborted_responses;
    return false;
  }
  return keep_alive;
}

bool HttpServer::WriteResponse(int fd, int code, std::string_view body,
                               bool keep_alive) {
  if (!FaultInjector::Global().Inject(faults::kServerWrite).ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.aborted_responses;
    return false;
  }
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(code);
  out += ' ';
  out += ReasonPhrase(code);
  out += "\r\nContent-Type: application/json\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                    : "\r\nConnection: close\r\n\r\n";
  out += body;
  if (!WriteAll(fd, out)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.aborted_responses;
    return false;
  }
  return true;
}

bool HttpServer::ReadMore(int fd, std::string* buf,
                          std::chrono::steady_clock::time_point deadline) {
  while (true) {
    if (stopping_.load(std::memory_order_acquire)) return false;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    pollfd p{fd, POLLIN, 0};
    const int r = ::poll(
        &p, 1, static_cast<int>(std::min(remaining, kPollSlice).count()));
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) continue;  // slice expired; re-check stopping_/deadline
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return false;  // EOF or socket error
    buf->append(chunk, static_cast<size_t>(n));
    std::lock_guard<std::mutex> lock(mu_);
    stats_.bytes_read += static_cast<uint64_t>(n);
    return true;
  }
}

bool HttpServer::WriteAll(int fd, std::string_view data) {
  const auto deadline =
      std::chrono::steady_clock::now() + options_.write_timeout;
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      std::lock_guard<std::mutex> lock(mu_);
      stats_.bytes_written += static_cast<uint64_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_SNDTIMEO sliced the blocking send; keep retrying until the
      // overall write deadline (a hard-aborted socket fails the send
      // with EPIPE instead, so Stop() is never held up here).
      if (std::chrono::steady_clock::now() >= deadline) return false;
      continue;
    }
    return false;
  }
  return true;
}

}  // namespace amber
