#include "baseline/graph_backtrack.h"

#include <algorithm>
#include <cassert>

#include "index/attribute_index.h"
#include "util/clock.h"

namespace amber {

Result<GraphBacktrackEngine> GraphBacktrackEngine::Build(
    const std::vector<Triple>& triples) {
  AMBER_ASSIGN_OR_RETURN(EncodedDataset dataset,
                         EncodedDataset::Encode(triples));
  GraphBacktrackEngine engine;
  engine.graph_ = Multigraph::FromDataset(dataset);
  engine.dicts_ = std::move(dataset.dictionaries);
  engine.attr_values_ = std::move(dataset.attribute_values);
  return engine;
}

/// Stateful executor for one query.
class GraphBacktrackExec {
 public:
  GraphBacktrackExec(const GraphBacktrackEngine& engine,
                     const QueryGraph& q, const ExecOptions& options)
      : g_(engine.graph_),
        attr_values_(engine.attr_values_),
        q_(q),
        options_(options) {}

  void Run(EmbeddingSink* sink, ExecStats* stats) {
    sink_ = sink;
    stats_ = stats;
    deadline_ = Deadline::After(options_.timeout);
    match_.assign(q_.NumVertices(), kInvalidId);
    row_buffer_.resize(q_.projection().size());

    // Ground checks first.
    for (const GroundEdge& e : q_.ground_edges()) {
      if (!g_.HasEdge(e.subject, e.predicate, e.object)) return;
    }
    for (const GroundAttribute& a : q_.ground_attributes()) {
      std::span<const AttributeId> attrs = g_.Attributes(a.subject);
      if (!std::binary_search(attrs.begin(), attrs.end(), a.attribute)) {
        return;
      }
    }
    for (const GroundPredicate& gp : q_.ground_predicates()) {
      if (!HasQualifyingLiteral(gp.subject, gp.predicate, gp.comparisons)) {
        return;
      }
    }
    if (q_.NumVertices() == 0) {
      if (sink_->wants_rows()) {
        sink_->OnRow(std::span<const VertexId>{});
      } else {
        sink_->OnCount(1);
      }
      return;
    }

    ComputeOrder();
    Recurse(0);
  }

 private:
  // Connectivity-constrained greedy order over ALL variables, ranked by
  // signature richness (no core/satellite split — that is AMbER's trick).
  void ComputeOrder() {
    const size_t n = q_.NumVertices();
    std::vector<bool> chosen(n, false), frontier(n, false);
    order_.clear();
    for (size_t step = 0; step < n; ++step) {
      uint32_t best = kInvalidId;
      bool best_connected = false;
      for (uint32_t u = 0; u < n; ++u) {
        if (chosen[u]) continue;
        bool connected = frontier[u];
        if (best == kInvalidId || (connected && !best_connected) ||
            (connected == best_connected &&
             q_.SignatureEdgeCount(u) > q_.SignatureEdgeCount(best))) {
          best = u;
          best_connected = connected;
        }
      }
      chosen[best] = true;
      order_.push_back(best);
      for (uint32_t w : q_.Neighbors(best)) frontier[w] = true;
    }
  }

  /// Residual FILTER check over the vertex's own attributes (no index).
  bool HasQualifyingLiteral(VertexId v, AttrPredId pred,
                            std::span<const ValueComparison> cmps) const {
    for (AttributeId a : g_.Attributes(v)) {
      if (a >= attr_values_.size()) continue;
      const AttributeValueInfo& info = attr_values_[a];
      if (info.predicate == pred && SatisfiesAll(info.value, cmps)) {
        return true;
      }
    }
    return false;
  }

  bool CheckLocal(uint32_t u, VertexId v) const {
    const QueryVertex& qv = q_.vertices()[u];
    std::span<const AttributeId> have = g_.Attributes(v);
    for (AttributeId a : qv.attrs) {
      if (!std::binary_search(have.begin(), have.end(), a)) return false;
    }
    for (const PredicateConstraint& pc : qv.preds) {
      if (!HasQualifyingLiteral(v, pc.predicate, pc.comparisons)) {
        return false;
      }
    }
    for (const IriConstraint& c : qv.iris) {
      if (!c.out_types.empty() &&
          !g_.HasMultiEdgeSuperset(v, Direction::kOut, c.anchor,
                                   c.out_types)) {
        return false;
      }
      if (!c.in_types.empty() &&
          !g_.HasMultiEdgeSuperset(v, Direction::kIn, c.anchor, c.in_types)) {
        return false;
      }
    }
    if (!qv.self_types.empty() &&
        !g_.HasMultiEdgeSuperset(v, Direction::kOut, v, qv.self_types)) {
      return false;
    }
    return true;
  }

  // All edges between u and already-matched variables must be satisfiable.
  bool CheckEdges(uint32_t u, VertexId v) const {
    for (const auto& [edge_idx, u_is_from] : q_.IncidentEdges(u)) {
      const QueryEdge& e = q_.edges()[edge_idx];
      const uint32_t other = u_is_from ? e.to : e.from;
      const VertexId w = match_[other];
      if (w == kInvalidId) continue;
      const Direction d = u_is_from ? Direction::kOut : Direction::kIn;
      if (!g_.HasMultiEdgeSuperset(v, d, w, e.types)) return false;
    }
    return true;
  }

  bool Expired() {
    if ((++tick_ & 63u) != 0) return false;
    if (deadline_.Expired()) {
      stats_->timed_out = true;
      return true;
    }
    return false;
  }

  bool Emit() {
    ++stats_->embeddings_found;
    const std::vector<uint32_t>& proj = q_.projection();
    for (size_t i = 0; i < proj.size(); ++i) {
      row_buffer_[i] = match_[proj[i]];
    }
    bool keep_going = sink_->wants_rows() ? sink_->OnRow(row_buffer_)
                                          : sink_->OnCount(1);
    if (!keep_going) stats_->truncated = true;
    return keep_going;
  }

  // Returns false to stop the whole enumeration.
  bool Recurse(size_t depth) {
    if (depth == order_.size()) return Emit();
    if (Expired()) return false;
    ++stats_->recursion_calls;

    const uint32_t u = order_[depth];

    // Candidate generation: from the smallest matched-neighbour adjacency
    // if one exists, otherwise a full vertex scan (no indexes).
    std::vector<VertexId> cand;
    bool have_anchor = false;
    for (const auto& [edge_idx, u_is_from] : q_.IncidentEdges(u)) {
      const QueryEdge& e = q_.edges()[edge_idx];
      const uint32_t other = u_is_from ? e.to : e.from;
      const VertexId w = match_[other];
      if (w == kInvalidId) continue;
      // u_is_from: psi(u) --types--> w, so scan w's in-neighbours.
      const Direction d = u_is_from ? Direction::kIn : Direction::kOut;
      std::vector<VertexId> list;
      const size_t groups = g_.GroupCount(w, d);
      list.reserve(groups);
      for (size_t i = 0; i < groups; ++i) {
        GroupView view = g_.Group(w, d, i);
        // Linear containment check over the group's sorted types.
        size_t k = 0;
        bool contains = true;
        for (EdgeTypeId t : e.types) {
          while (k < view.types.size() && view.types[k] < t) ++k;
          if (k == view.types.size() || view.types[k] != t) {
            contains = false;
            break;
          }
          ++k;
        }
        if (contains) list.push_back(view.neighbor);
      }
      std::sort(list.begin(), list.end());
      cand = have_anchor ? IntersectSorted(cand, list) : std::move(list);
      have_anchor = true;
      if (cand.empty()) return true;
    }

    if (have_anchor) {
      for (VertexId v : cand) {
        if (Expired()) return false;
        if (!CheckLocal(u, v)) continue;
        match_[u] = v;
        bool cont = Recurse(depth + 1);
        match_[u] = kInvalidId;
        if (!cont) return false;
      }
      return true;
    }

    // No matched neighbour (first vertex of a component): full scan.
    const uint32_t stats_candidates_base = depth == 0 ? 1 : 0;
    uint64_t initial = 0;
    for (VertexId v = 0; v < g_.NumVertices(); ++v) {
      if (Expired()) return false;
      if (!CheckLocal(u, v)) continue;
      if (!CheckEdges(u, v)) continue;
      ++initial;
      match_[u] = v;
      bool cont = Recurse(depth + 1);
      match_[u] = kInvalidId;
      if (!cont) return false;
    }
    if (stats_candidates_base) stats_->initial_candidates += initial;
    return true;
  }

  const Multigraph& g_;
  const std::vector<AttributeValueInfo>& attr_values_;
  const QueryGraph& q_;
  const ExecOptions& options_;

  std::vector<uint32_t> order_;
  std::vector<VertexId> match_;
  std::vector<VertexId> row_buffer_;
  EmbeddingSink* sink_ = nullptr;
  ExecStats* stats_ = nullptr;
  Deadline deadline_;
  uint32_t tick_ = 0;
};

namespace {

Result<uint64_t> RunQuery(const GraphBacktrackEngine& engine,
                          const Multigraph& graph,
                          const RdfDictionaries& dicts,
                          const SelectQuery& query, const ExecOptions& options,
                          ExecStats* stats,
                          std::vector<std::vector<VertexId>>* rows_out) {
  (void)graph;
  Stopwatch sw;
  AMBER_ASSIGN_OR_RETURN(QueryGraph qg, QueryGraph::Build(query, dicts));
  const uint64_t cap = EffectiveRowCap(query, options);
  uint64_t rows = 0;
  if (!qg.unsatisfiable()) {
    GraphBacktrackExec exec(engine, qg, options);
    if (rows_out != nullptr) {
      if (qg.distinct()) {
        DistinctSink sink(/*keep_rows=*/true, cap);
        exec.Run(&sink, stats);
        *rows_out = sink.rows();
        rows = sink.count();
      } else {
        CollectingSink sink(cap);
        exec.Run(&sink, stats);
        *rows_out = std::move(sink.TakeRows());
        rows = rows_out->size();
      }
    } else if (qg.distinct()) {
      DistinctSink sink(/*keep_rows=*/false, cap);
      exec.Run(&sink, stats);
      rows = sink.count();
    } else {
      CountingSink sink(cap);
      exec.Run(&sink, stats);
      rows = sink.count();
    }
  }
  stats->rows = rows;
  stats->elapsed_ms = sw.ElapsedMillis();
  return rows;
}

}  // namespace

Result<CountResult> GraphBacktrackEngine::Count(const SelectQuery& query,
                                                const ExecOptions& options) {
  CountResult result;
  AMBER_ASSIGN_OR_RETURN(
      result.count,
      RunQuery(*this, graph_, dicts_, query, options, &result.stats, nullptr));
  return result;
}

Result<MaterializedRows> GraphBacktrackEngine::Materialize(
    const SelectQuery& query, const ExecOptions& options) {
  MaterializedRows result;
  std::vector<std::vector<VertexId>> raw;
  AMBER_RETURN_IF_ERROR(
      RunQuery(*this, graph_, dicts_, query, options, &result.stats, &raw)
          .status());
  AMBER_ASSIGN_OR_RETURN(QueryGraph qg, QueryGraph::Build(query, dicts_));
  for (uint32_t u : qg.projection()) {
    result.var_names.push_back(qg.vertices()[u].name);
  }
  for (const auto& row : raw) {
    std::vector<std::string> cooked;
    cooked.reserve(row.size());
    for (VertexId v : row) cooked.emplace_back(dicts_.VertexToken(v));
    result.rows.push_back(std::move(cooked));
  }
  return result;
}

}  // namespace amber
