#include "baseline/triple_store.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "sparql/filters.h"
#include "util/clock.h"

namespace amber {

namespace {

// Component order of each permutation, as indices into (s, p, o).
constexpr int kPermOrder[6][3] = {
    {0, 1, 2},  // SPO
    {0, 2, 1},  // SOP
    {1, 0, 2},  // PSO
    {1, 2, 0},  // POS
    {2, 0, 1},  // OSP
    {2, 1, 0},  // OPS
};

// One slot of a compiled pattern: constant term id, variable slot, or a
// FILTERed literal position (matches literals passing the conjunction
// without binding anything).
struct Slot {
  bool is_var = false;
  bool is_filter = false;
  uint32_t value = 0;  // term id (const) or variable index (var)
};

struct CompiledPattern {
  Slot slot[3];  // s, p, o
  // Non-null for the single pattern of a FILTERed literal variable: the
  // comparison conjunction its object literals must pass. The pattern is
  // then an existential semi-join (sparql/filters.h): it constrains or
  // enumerates subjects but never multiplies rows per literal.
  const std::vector<ValueComparison>* filter = nullptr;
};

uint32_t Component(const TripleStoreEngine* unused, uint32_t s, uint32_t p,
                   uint32_t o, int which) {
  (void)unused;
  return which == 0 ? s : (which == 1 ? p : o);
}

}  // namespace

Result<TripleStoreEngine> TripleStoreEngine::Build(
    const std::vector<Triple>& triples, const Options& options) {
  TripleStoreEngine store;
  store.options_ = options;

  std::vector<Row> rows;
  rows.reserve(triples.size());
  for (const Triple& t : triples) {
    if (t.subject.is_literal()) {
      return Status::InvalidArgument("literal subject: " + t.ToNTriples());
    }
    if (!t.predicate.is_iri()) {
      return Status::InvalidArgument("non-IRI predicate: " + t.ToNTriples());
    }
    auto intern = [&store](const Term& term) {
      DictId id = store.terms_.GetOrAdd(term.ToNTriples());
      if (id >= store.is_literal_.size()) {
        store.is_literal_.resize(id + 1, false);
        store.literal_values_.resize(id + 1);
      }
      if (term.is_literal()) {
        store.is_literal_[id] = true;
        store.literal_values_[id] = LiteralValueOf(term);
      }
      return id;
    };
    Row r;
    r.s = intern(t.subject);
    r.p = intern(t.predicate);
    r.o = intern(t.object);
    rows.push_back(r);
  }

  // Deduplicate (RDF set semantics), then materialize all six sort orders.
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.s != b.s) return a.s < b.s;
    if (a.p != b.p) return a.p < b.p;
    return a.o < b.o;
  });
  rows.erase(std::unique(rows.begin(), rows.end(),
                         [](const Row& a, const Row& b) {
                           return a.s == b.s && a.p == b.p && a.o == b.o;
                         }),
             rows.end());
  store.num_triples_ = rows.size();

  for (int perm = 0; perm < kNumPerms; ++perm) {
    store.perms_[perm] = rows;
    const int* order = kPermOrder[perm];
    std::sort(store.perms_[perm].begin(), store.perms_[perm].end(),
              [order](const Row& a, const Row& b) {
                for (int i = 0; i < 3; ++i) {
                  uint32_t av = Component(nullptr, a.s, a.p, a.o, order[i]);
                  uint32_t bv = Component(nullptr, b.s, b.p, b.o, order[i]);
                  if (av != bv) return av < bv;
                }
                return false;
              });
  }
  return store;
}

uint64_t TripleStoreEngine::ByteSize() const {
  uint64_t total = terms_.ByteSize() + is_literal_.capacity() / 8 +
                   literal_values_.capacity() * sizeof(LiteralValue);
  for (const auto& perm : perms_) total += perm.capacity() * sizeof(Row);
  return total;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Stateful executor for one query (friend of the store).
class TripleStoreExec {
 public:
  TripleStoreExec(const TripleStoreEngine& store, const SelectQuery& query,
                  const ExecOptions& options)
      : store_(store), query_(query), options_(options) {}

  Result<CountResult> Count() {
    CountResult result;
    AMBER_RETURN_IF_ERROR(Prepare());
    Stopwatch sw;
    if (!unsatisfiable_) {
      if (query_.distinct) {
        DistinctSink sink(/*keep_rows=*/false,
                          EffectiveRowCap(query_, options_));
        RunInto(&sink);
        result.count = sink.count();
      } else {
        CountingSink sink(EffectiveRowCap(query_, options_));
        RunInto(&sink);
        result.count = sink.count();
      }
    }
    result.stats = stats_;
    result.stats.rows = result.count;
    result.stats.elapsed_ms = sw.ElapsedMillis();
    return result;
  }

  Result<MaterializedRows> Materialize() {
    MaterializedRows result;
    AMBER_RETURN_IF_ERROR(Prepare());
    Stopwatch sw;
    std::vector<std::vector<VertexId>> raw;
    if (!unsatisfiable_) {
      if (query_.distinct) {
        DistinctSink sink(/*keep_rows=*/true, EffectiveRowCap(query_, options_));
        RunInto(&sink);
        raw = sink.rows();
      } else {
        CollectingSink sink(EffectiveRowCap(query_, options_));
        RunInto(&sink);
        raw = std::move(sink.TakeRows());
      }
    }
    for (uint32_t v : projection_) result.var_names.push_back(var_names_[v]);
    for (const auto& row : raw) {
      std::vector<std::string> cooked;
      cooked.reserve(row.size());
      for (uint32_t id : row) cooked.emplace_back(store_.terms_.Lookup(id));
      result.rows.push_back(std::move(cooked));
    }
    result.stats = stats_;
    result.stats.rows = raw.size();
    result.stats.elapsed_ms = sw.ElapsedMillis();
    return result;
  }

 private:
  using Row = TripleStoreEngine::Row;

  // Resolves terms against the dictionary and compiles patterns; computes
  // the join order.
  Status Prepare() {
    AMBER_ASSIGN_OR_RETURN(filters_, AnalyzeFilters(query_));
    for (size_t pi = 0; pi < query_.patterns.size(); ++pi) {
      const TriplePattern& p = query_.patterns[pi];
      if (p.predicate.is_variable()) {
        return Status::Unimplemented(
            "variable predicates are outside the paper's query model");
      }
      if (p.subject.is_literal()) {
        return Status::InvalidArgument("literal subject in pattern");
      }
      const bool filtered = filters_.IsFiltered(pi);
      CompiledPattern cp;
      const PatternTerm* slots[3] = {&p.subject, &p.predicate, &p.object};
      for (int i = 0; i < 3; ++i) {
        if (filtered && i == 2) {
          // The FILTERed literal variable: never interned, never bound.
          cp.slot[i].is_filter = true;
          continue;
        }
        if (slots[i]->is_variable()) {
          cp.slot[i].is_var = true;
          cp.slot[i].value = VarIndex(slots[i]->value);
        } else {
          auto id = store_.terms_.Find(slots[i]->ToTerm().ToNTriples());
          if (!id) {
            unsatisfiable_ = true;  // constant unknown to this dataset
            cp.slot[i].value = kInvalidDictId;
          } else {
            cp.slot[i].value = *id;
          }
          cp.slot[i].is_var = false;
        }
      }
      if (filtered) cp.filter = &filters_.FilterFor(pi).comparisons;
      patterns_.push_back(cp);
    }

    // Projection.
    if (query_.select_all) {
      for (uint32_t v = 0; v < var_names_.size(); ++v) {
        projection_.push_back(v);
      }
      if (projection_.empty()) {
        return Status::InvalidArgument("SELECT * with no variables");
      }
    } else {
      for (const std::string& name : query_.projection) {
        auto it = var_index_.find(name);
        if (it == var_index_.end()) {
          return Status::InvalidArgument("projected variable ?" + name +
                                         " does not occur in WHERE clause");
        }
        projection_.push_back(it->second);
      }
    }

    ComputeJoinOrder();
    return Status::OK();
  }

  uint32_t VarIndex(const std::string& name) {
    auto it = var_index_.find(name);
    if (it != var_index_.end()) return it->second;
    uint32_t idx = static_cast<uint32_t>(var_names_.size());
    var_names_.push_back(name);
    var_index_.emplace(name, idx);
    return idx;
  }

  // Picks the permutation whose sort order starts with the bound slots and
  // returns the matching row range.
  std::pair<const Row*, const Row*> ScanRange(const CompiledPattern& cp,
                                              const uint32_t* bindings) const {
    uint32_t value[3];
    bool bound[3];
    for (int i = 0; i < 3; ++i) {
      if (cp.slot[i].is_filter) {
        bound[i] = false;
        value[i] = kInvalidDictId;
      } else if (cp.slot[i].is_var) {
        uint32_t b = bindings ? bindings[cp.slot[i].value] : kInvalidDictId;
        bound[i] = (b != kInvalidDictId);
        value[i] = b;
      } else {
        bound[i] = true;
        value[i] = cp.slot[i].value;
      }
    }
    // Select the permutation with the longest bound prefix.
    int best_perm = 0, best_len = -1;
    for (int perm = 0; perm < TripleStoreEngine::kNumPerms; ++perm) {
      int len = 0;
      for (int i = 0; i < 3 && bound[kPermOrder[perm][i]]; ++i) ++len;
      if (len > best_len) {
        best_len = len;
        best_perm = perm;
      }
    }
    const std::vector<Row>& data = store_.perms_[best_perm];
    const int* order = kPermOrder[best_perm];

    // Binary search the bound prefix.
    auto key_less = [&](const Row& r, int prefix_len, bool upper) {
      for (int i = 0; i < prefix_len; ++i) {
        uint32_t rv = Component(nullptr, r.s, r.p, r.o, order[i]);
        uint32_t kv = value[order[i]];
        if (rv != kv) return rv < kv;
      }
      return upper;  // equal prefix: "less" for upper_bound semantics
    };
    const Row* lo = data.data();
    const Row* hi = data.data() + data.size();
    // Manual binary searches over the prefix.
    {
      const Row* first = lo;
      size_t count = static_cast<size_t>(hi - lo);
      while (count > 0) {
        size_t step = count / 2;
        const Row* mid = first + step;
        if (key_less(*mid, best_len, /*upper=*/false)) {
          first = mid + 1;
          count -= step + 1;
        } else {
          count = step;
        }
      }
      lo = first;
    }
    {
      const Row* first = lo;
      size_t count = static_cast<size_t>(data.data() + data.size() - lo);
      while (count > 0) {
        size_t step = count / 2;
        const Row* mid = first + step;
        if (key_less(*mid, best_len, /*upper=*/true)) {
          first = mid + 1;
          count -= step + 1;
        } else {
          count = step;
        }
      }
      hi = first;
    }
    return {lo, hi};
  }

  uint64_t EstimateCardinality(const CompiledPattern& cp,
                               const std::vector<bool>& var_bound) const {
    // Range size treating bound-variable slots as bound with unknown value:
    // approximate by the constant-only range divided by nothing — a simple,
    // monotone estimate good enough for greedy ordering.
    uint32_t bindings_stub[1];
    (void)bindings_stub;
    // Build a binding array marking bound vars with a fake value so the
    // permutation choice is right; for the estimate we use constants only.
    auto [lo, hi] = ScanRange(cp, nullptr);
    uint64_t base = static_cast<uint64_t>(hi - lo);
    // Each bound variable slot narrows the scan; discount heuristically.
    for (int i = 0; i < 3; ++i) {
      if (cp.slot[i].is_var && var_bound[cp.slot[i].value]) {
        base = std::max<uint64_t>(1, base / 16);
      }
    }
    return base;
  }

  void ComputeJoinOrder() {
    const size_t n = patterns_.size();
    order_.clear();
    if (!store_.options_.reorder_patterns) {
      for (size_t i = 0; i < n; ++i) order_.push_back(i);
      return;
    }
    std::vector<bool> used(n, false);
    std::vector<bool> var_bound(var_names_.size(), false);
    for (size_t step = 0; step < n; ++step) {
      size_t best = n;
      uint64_t best_cost = 0;
      bool best_connected = false;
      for (size_t i = 0; i < n; ++i) {
        if (used[i]) continue;
        bool connected = false;
        for (int s = 0; s < 3; ++s) {
          if (patterns_[i].slot[s].is_var &&
              var_bound[patterns_[i].slot[s].value]) {
            connected = true;
          }
        }
        uint64_t cost = EstimateCardinality(patterns_[i], var_bound);
        // Prefer connected patterns; among them the cheapest.
        if (best == n || (connected && !best_connected) ||
            (connected == best_connected && cost < best_cost)) {
          best = i;
          best_cost = cost;
          best_connected = connected;
        }
      }
      used[best] = true;
      order_.push_back(best);
      for (int s = 0; s < 3; ++s) {
        if (patterns_[best].slot[s].is_var) {
          var_bound[patterns_[best].slot[s].value] = true;
        }
      }
    }
  }

  void RunInto(EmbeddingSink* sink) {
    deadline_ = Deadline::After(options_.timeout);
    bindings_.assign(var_names_.size(), kInvalidDictId);
    sink_ = sink;
    row_buffer_.resize(projection_.size());
    Recurse(0);
  }

  // Existential semi-join for a FILTERed pattern (sparql/filters.h): a
  // bound subject needs one witness literal; a free subject variable
  // enumerates each witness subject exactly once (no per-literal row
  // multiplicity). Returns false to stop enumeration.
  bool RecurseFiltered(const CompiledPattern& cp, size_t depth) {
    auto [lo, hi] = ScanRange(cp, bindings_.data());
    const bool subj_free = cp.slot[0].is_var &&
                           bindings_[cp.slot[0].value] == kInvalidDictId;
    uint32_t last_subject = kInvalidDictId;
    for (const Row* r = lo; r != hi; ++r) {
      if ((++tick_ & 63u) == 0 && deadline_.Expired()) {
        stats_.timed_out = true;
        return false;
      }
      const uint32_t rv[3] = {r->s, r->p, r->o};
      bool ok = true;
      for (int i = 0; i < 2 && ok; ++i) {  // subject + predicate slots
        if (cp.slot[i].is_var) {
          uint32_t b = bindings_[cp.slot[i].value];
          if (b != kInvalidDictId) ok = (b == rv[i]);
        } else {
          ok = (rv[i] == cp.slot[i].value);
        }
      }
      if (!ok) continue;
      if (rv[2] >= store_.is_literal_.size() || !store_.is_literal_[rv[2]]) {
        continue;  // resource object: FILTERed variables bind literals only
      }
      if (!SatisfiesAll(store_.literal_values_[rv[2]], *cp.filter)) continue;
      if (!subj_free) {
        // One witness suffices; the pattern binds nothing.
        return Recurse(depth + 1);
      }
      // Free subject: the range is served by a permutation whose sort
      // order continues with the subject after the bound prefix, so equal
      // subjects are consecutive and a one-row memory deduplicates them.
      if (rv[0] == last_subject) continue;
      last_subject = rv[0];
      const uint32_t var = cp.slot[0].value;
      bindings_[var] = rv[0];
      bool cont = Recurse(depth + 1);
      bindings_[var] = kInvalidDictId;
      if (!cont) return false;
    }
    return true;
  }

  // Returns false to stop enumeration (limit hit or timeout).
  bool Recurse(size_t depth) {
    if ((++tick_ & 63u) == 0 && deadline_.Expired()) {
      stats_.timed_out = true;
      return false;
    }
    if (depth == order_.size()) {
      for (size_t i = 0; i < projection_.size(); ++i) {
        row_buffer_[i] = bindings_[projection_[i]];
      }
      if (!sink_->OnRow(row_buffer_)) {
        stats_.truncated = true;
        return false;
      }
      return true;
    }
    ++stats_.recursion_calls;
    const CompiledPattern& cp = patterns_[order_[depth]];
    if (cp.filter != nullptr) return RecurseFiltered(cp, depth);
    auto [lo, hi] = ScanRange(cp, bindings_.data());
    for (const Row* r = lo; r != hi; ++r) {
      if ((++tick_ & 63u) == 0 && deadline_.Expired()) {
        stats_.timed_out = true;
        return false;
      }
      uint32_t rv[3] = {r->s, r->p, r->o};
      // Check bound slots and bind free ones.
      uint32_t newly_bound[3];
      int num_new = 0;
      bool ok = true;
      for (int i = 0; i < 3 && ok; ++i) {
        if (!cp.slot[i].is_var) {
          ok = (rv[i] == cp.slot[i].value);
          continue;
        }
        uint32_t var = cp.slot[i].value;
        if (bindings_[var] != kInvalidDictId) {
          ok = (bindings_[var] == rv[i]);
          continue;
        }
        // Paper model: variables bind resources, never literals.
        if (rv[i] < store_.is_literal_.size() && store_.is_literal_[rv[i]]) {
          ok = false;
          continue;
        }
        bindings_[var] = rv[i];
        newly_bound[num_new++] = var;
      }
      if (ok && !Recurse(depth + 1)) {
        for (int i = 0; i < num_new; ++i) {
          bindings_[newly_bound[i]] = kInvalidDictId;
        }
        return false;
      }
      for (int i = 0; i < num_new; ++i) {
        bindings_[newly_bound[i]] = kInvalidDictId;
      }
    }
    return true;
  }

  const TripleStoreEngine& store_;
  const SelectQuery& query_;
  const ExecOptions& options_;

  FilterAnalysis filters_;  // owns the comparisons patterns_ point into
  std::vector<CompiledPattern> patterns_;
  std::vector<std::string> var_names_;
  std::unordered_map<std::string, uint32_t> var_index_;
  std::vector<uint32_t> projection_;
  std::vector<size_t> order_;
  std::vector<uint32_t> bindings_;
  std::vector<VertexId> row_buffer_;
  EmbeddingSink* sink_ = nullptr;
  Deadline deadline_;
  ExecStats stats_;
  uint32_t tick_ = 0;
  bool unsatisfiable_ = false;
};

Result<CountResult> TripleStoreEngine::Count(const SelectQuery& query,
                                             const ExecOptions& options) {
  TripleStoreExec exec(*this, query, options);
  return exec.Count();
}

Result<MaterializedRows> TripleStoreEngine::Materialize(
    const SelectQuery& query, const ExecOptions& options) {
  TripleStoreExec exec(*this, query, options);
  return exec.Materialize();
}

}  // namespace amber
