// Graph-based baseline: subgraph homomorphism evaluated directly on the
// data multigraph with NO auxiliary indexes (no A/S/N) and no core/satellite
// decomposition — every variable is matched inside the recursion.
//
// This represents the graph-engine competitors (gStore, TurboHom++) of
// Section 6 at the level the paper distinguishes itself from them, and
// doubles as the headline ablation: AMbER minus its indexes and minus
// Lemma-2 satellite batching. Candidate generation walks raw adjacency
// lists; the initial candidate set is a full vertex scan with per-vertex
// checks.

#ifndef AMBER_BASELINE_GRAPH_BACKTRACK_H_
#define AMBER_BASELINE_GRAPH_BACKTRACK_H_

#include <string>
#include <vector>

#include "core/query_engine.h"
#include "graph/multigraph.h"
#include "rdf/encoded_dataset.h"
#include "rdf/term.h"
#include "sparql/query_graph.h"
#include "util/status.h"

namespace amber {

/// \brief Index-free homomorphic matching over the data multigraph.
class GraphBacktrackEngine : public QueryEngine {
 public:
  /// Builds the multigraph (but no indexes) from a tripleset.
  static Result<GraphBacktrackEngine> Build(
      const std::vector<Triple>& triples);

  std::string name() const override { return "GraphBT"; }

  Result<CountResult> Count(const SelectQuery& query,
                            const ExecOptions& options) override;
  Result<MaterializedRows> Materialize(const SelectQuery& query,
                                       const ExecOptions& options) override;

  const Multigraph& graph() const { return graph_; }
  const RdfDictionaries& dictionaries() const { return dicts_; }

 private:
  friend class GraphBacktrackExec;

  GraphBacktrackEngine() = default;

  RdfDictionaries dicts_;
  Multigraph graph_;
  // Typed value of each attribute id: the residual-evaluation source for
  // FILTER predicate constraints (this engine has no ValueIndex, matching
  // its no-auxiliary-indexes charter).
  std::vector<AttributeValueInfo> attr_values_;
};

}  // namespace amber

#endif  // AMBER_BASELINE_GRAPH_BACKTRACK_H_
