// Relational-style baseline: a dictionary-encoded triple table with all six
// sorted permutation indexes (SPO, SOP, PSO, POS, OSP, OPS) and
// selectivity-ordered index-nested-loop joins.
//
// This is the architecture family of the paper's competitors x-RDF-3X,
// Virtuoso and Jena (Section 6): every triple pattern is a range scan over
// the permutation whose sort order starts with the pattern's bound slots,
// and the basic graph pattern is evaluated as a left-deep join. The
// `reorder_patterns` option toggles the greedy selectivity-based join
// ordering; disabling it yields the weakest-competitor behaviour (textual
// pattern order).
//
// Semantics match AMbER's query model: variables bind resources only
// (never literals), literals occur as constants, and FILTERed literal
// variables are existential predicate constraints (sparql/filters.h)
// evaluated as semi-join scans over the (subject, predicate) range of the
// relevant permutation. See docs/ARCHITECTURE.md, "Baselines".

#ifndef AMBER_BASELINE_TRIPLE_STORE_H_
#define AMBER_BASELINE_TRIPLE_STORE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/query_engine.h"
#include "rdf/dictionary.h"
#include "rdf/literal_value.h"
#include "rdf/term.h"
#include "util/status.h"

namespace amber {

/// \brief Six-permutation triple store with index-nested-loop joins.
class TripleStoreEngine : public QueryEngine {
 public:
  struct Options {
    /// Greedy selectivity-based join ordering (on = RDF-3X-like, off =
    /// naive textual order).
    bool reorder_patterns = true;
    /// Display name used in benchmark tables.
    std::string display_name = "TripleStore";
  };

  /// Builds the store: one unified term dictionary plus six sorted copies.
  static Result<TripleStoreEngine> Build(const std::vector<Triple>& triples,
                                         const Options& options);
  static Result<TripleStoreEngine> Build(const std::vector<Triple>& triples) {
    return Build(triples, Options{});
  }

  std::string name() const override { return options_.display_name; }

  Result<CountResult> Count(const SelectQuery& query,
                            const ExecOptions& options) override;
  Result<MaterializedRows> Materialize(const SelectQuery& query,
                                       const ExecOptions& options) override;

  uint64_t NumTriples() const { return num_triples_; }
  uint64_t ByteSize() const;

 private:
  friend class TripleStoreExec;

  // Permutation order: value of perm p at row r is triples in sorted order
  // of (component perm[0], perm[1], perm[2]).
  enum Perm { kSPO = 0, kSOP, kPSO, kPOS, kOSP, kOPS, kNumPerms };

  struct Row {
    uint32_t s, p, o;
  };

  TripleStoreEngine() = default;

  Options options_;
  StringDictionary terms_;         // all terms, keyed by N-Triples token
  std::vector<bool> is_literal_;   // per term id
  std::vector<LiteralValue> literal_values_;  // per term id (literals only)
  std::array<std::vector<Row>, kNumPerms> perms_;
  uint64_t num_triples_ = 0;
};

}  // namespace amber

#endif  // AMBER_BASELINE_TRIPLE_STORE_H_
