#include "index/signature_index.h"

namespace amber {

SignatureIndex SignatureIndex::Build(const Multigraph& g) {
  SignatureIndex index;
  std::vector<Synopsis> synopses = ComputeAllSynopses(g);
  index.tree_ = SynopsisRTree::Build(synopses);
  return index;
}

}  // namespace amber
