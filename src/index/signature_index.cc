#include "index/signature_index.h"

#include "util/thread_pool.h"

namespace amber {

SignatureIndex SignatureIndex::Build(const Multigraph& g, ThreadPool* pool) {
  SignatureIndex index;
  std::vector<Synopsis> synopses = ComputeAllSynopses(g, pool);
  index.tree_ = SynopsisRTree::Build(synopses);
  return index;
}

}  // namespace amber
