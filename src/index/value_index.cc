#include "index/value_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

#include "util/serde.h"

namespace amber {

namespace {

constexpr uint32_t kValueIndexMagic = 0x414D4256;  // "AMBV"
constexpr uint32_t kValueIndexVersion = 1;

// AMF section ids (namespace 0x60xx).
constexpr uint32_t kAmfAttrPred = 0x6000;
constexpr uint32_t kAmfAttrKind = 0x6001;
constexpr uint32_t kAmfAttrNum = 0x6002;
constexpr uint32_t kAmfAttrTextOffsets = 0x6003;
constexpr uint32_t kAmfAttrTextBlob = 0x6004;
constexpr uint32_t kAmfNumOffsets = 0x6005;
constexpr uint32_t kAmfNumValues = 0x6006;
constexpr uint32_t kAmfNumVertices = 0x6007;
constexpr uint32_t kAmfStrOffsets = 0x6008;
constexpr uint32_t kAmfStrAttrs = 0x6009;
constexpr uint32_t kAmfStrVertices = 0x600A;

/// Bounds of a numeric range implied by a comparison conjunction.
struct NumericRange {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_open = false;
  bool hi_open = false;

  void TightenLo(double v, bool open) {
    if (v > lo || (v == lo && open)) {
      lo = v;
      lo_open = open;
    }
  }
  void TightenHi(double v, bool open) {
    if (v < hi || (v == hi && open)) {
      hi = v;
      hi_open = open;
    }
  }
  bool Empty() const { return lo > hi || (lo == hi && (lo_open || hi_open)); }
};

/// Bounds of a lexical range. Views point into the comparisons.
struct StringRange {
  bool has_lo = false, has_hi = false;
  std::string_view lo, hi;
  bool lo_open = false, hi_open = false;

  void TightenLo(std::string_view v, bool open) {
    if (!has_lo || v > lo || (v == lo && open)) {
      has_lo = true;
      lo = v;
      lo_open = open;
    }
  }
  void TightenHi(std::string_view v, bool open) {
    if (!has_hi || v < hi || (v == hi && open)) {
      has_hi = true;
      hi = v;
      hi_open = open;
    }
  }
  bool Empty() const {
    return has_lo && has_hi && (lo > hi || (lo == hi && (lo_open || hi_open)));
  }
};

/// Splits a conjunction into range bounds + '!=' exclusions. Returns false
/// when the conjunction mixes numeric and string constants (unsatisfiable
/// under the shared kind-matching semantics).
bool SplitConjunction(std::span<const ValueComparison> cmps, bool* numeric,
                      NumericRange* nrange, StringRange* srange,
                      std::vector<const LiteralValue*>* exclusions) {
  bool any_num = false, any_str = false;
  for (const ValueComparison& c : cmps) {
    (c.value.numeric ? any_num : any_str) = true;
  }
  if (any_num && any_str) return false;
  *numeric = any_num;
  for (const ValueComparison& c : cmps) {
    switch (c.op) {
      case CompareOp::kEq:
        if (any_num) {
          nrange->TightenLo(c.value.number, false);
          nrange->TightenHi(c.value.number, false);
        } else {
          srange->TightenLo(c.value.text, false);
          srange->TightenHi(c.value.text, false);
        }
        break;
      case CompareOp::kNe:
        exclusions->push_back(&c.value);
        break;
      case CompareOp::kLt:
        any_num ? nrange->TightenHi(c.value.number, true)
                : srange->TightenHi(c.value.text, true);
        break;
      case CompareOp::kLe:
        any_num ? nrange->TightenHi(c.value.number, false)
                : srange->TightenHi(c.value.text, false);
        break;
      case CompareOp::kGt:
        any_num ? nrange->TightenLo(c.value.number, true)
                : srange->TightenLo(c.value.text, true);
        break;
      case CompareOp::kGe:
        any_num ? nrange->TightenLo(c.value.number, false)
                : srange->TightenLo(c.value.text, false);
        break;
    }
  }
  return true;
}

}  // namespace

ValueIndex ValueIndex::Build(const Multigraph& g,
                             std::span<const AttributeValueInfo> attr_values,
                             size_t num_predicates) {
  ValueIndex index;
  const size_t num_attrs = attr_values.size();

  // Attribute value table.
  std::vector<AttrPredId> attr_pred(num_attrs);
  std::vector<uint8_t> attr_kind(num_attrs, kKindString);
  std::vector<double> attr_num(num_attrs, 0.0);
  std::vector<uint64_t> text_offsets;
  text_offsets.reserve(num_attrs + 1);
  text_offsets.push_back(0);
  std::vector<char> text_blob;
  for (size_t a = 0; a < num_attrs; ++a) {
    attr_pred[a] = attr_values[a].predicate;
    if (attr_values[a].value.numeric) {
      attr_kind[a] = kKindNumber;
      attr_num[a] = attr_values[a].value.number;
    } else {
      const std::string& text = attr_values[a].value.text;
      text_blob.insert(text_blob.end(), text.begin(), text.end());
    }
    text_offsets.push_back(text_blob.size());
  }

  // Collect (predicate, value, vertex) entries from the attribute CSR.
  struct NumEntry {
    AttrPredId pred;
    double value;
    VertexId vertex;
  };
  struct StrEntry {
    AttrPredId pred;
    AttributeId attr;
    VertexId vertex;
  };
  std::vector<NumEntry> nums;
  std::vector<StrEntry> strs;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (AttributeId a : g.Attributes(v)) {
      if (a >= num_attrs) continue;  // graph/dict mismatch: be defensive
      if (attr_kind[a] == kKindNumber) {
        nums.push_back(NumEntry{attr_pred[a], attr_num[a], v});
      } else {
        strs.push_back(StrEntry{attr_pred[a], a, v});
      }
    }
  }
  std::sort(nums.begin(), nums.end(), [](const NumEntry& a, const NumEntry& b) {
    return std::tie(a.pred, a.value, a.vertex) <
           std::tie(b.pred, b.value, b.vertex);
  });
  auto text_of = [&](AttributeId a) {
    return std::string_view(text_blob.data() + text_offsets[a],
                            text_offsets[a + 1] - text_offsets[a]);
  };
  std::sort(strs.begin(), strs.end(),
            [&](const StrEntry& a, const StrEntry& b) {
              return std::forward_as_tuple(a.pred, text_of(a.attr), a.vertex,
                                           a.attr) <
                     std::forward_as_tuple(b.pred, text_of(b.attr), b.vertex,
                                           b.attr);
            });

  // CSR columns over the dense predicate id space.
  std::vector<uint64_t> num_offsets(num_predicates + 1, 0);
  std::vector<double> num_values(nums.size());
  std::vector<VertexId> num_vertices(nums.size());
  for (size_t i = 0; i < nums.size(); ++i) {
    ++num_offsets[nums[i].pred + 1];
    num_values[i] = nums[i].value;
    num_vertices[i] = nums[i].vertex;
  }
  std::vector<uint64_t> str_offsets(num_predicates + 1, 0);
  std::vector<AttributeId> str_attrs(strs.size());
  std::vector<VertexId> str_vertices(strs.size());
  for (size_t i = 0; i < strs.size(); ++i) {
    ++str_offsets[strs[i].pred + 1];
    str_attrs[i] = strs[i].attr;
    str_vertices[i] = strs[i].vertex;
  }
  for (size_t p = 0; p < num_predicates; ++p) {
    num_offsets[p + 1] += num_offsets[p];
    str_offsets[p + 1] += str_offsets[p];
  }

  index.attr_pred_ = std::move(attr_pred);
  index.attr_kind_ = std::move(attr_kind);
  index.attr_num_ = std::move(attr_num);
  index.attr_text_offsets_ = std::move(text_offsets);
  index.attr_text_blob_ = std::move(text_blob);
  index.num_offsets_ = std::move(num_offsets);
  index.num_values_ = std::move(num_values);
  index.num_vertices_ = std::move(num_vertices);
  index.str_offsets_ = std::move(str_offsets);
  index.str_attrs_ = std::move(str_attrs);
  index.str_vertices_ = std::move(str_vertices);
  return index;
}

void ValueIndex::ResolveConjunction(
    AttrPredId pred, std::span<const ValueComparison> cmps,
    uint64_t* num_begin, uint64_t* num_end, uint64_t* str_begin,
    uint64_t* str_end, std::vector<const LiteralValue*>* exclusions) const {
  *num_begin = *num_end = 0;
  *str_begin = *str_end = 0;
  if (pred >= NumPredicates()) return;
  bool numeric = false;
  NumericRange nrange;
  StringRange srange;
  if (!SplitConjunction(cmps, &numeric, &nrange, &srange, exclusions)) {
    return;  // mixed-kind conjunction: unsatisfiable
  }
  // An empty conjunction ("any value") spans both columns.
  if ((numeric || cmps.empty()) && !nrange.Empty()) {
    const double* base = num_values_.data();
    const double* first = base + num_offsets_[pred];
    const double* last = base + num_offsets_[pred + 1];
    const double* b = nrange.lo_open ? std::upper_bound(first, last, nrange.lo)
                                     : std::lower_bound(first, last,
                                                        nrange.lo);
    const double* e = nrange.hi_open ? std::lower_bound(b, last, nrange.hi)
                                     : std::upper_bound(b, last, nrange.hi);
    *num_begin = static_cast<uint64_t>(b - base);
    *num_end = static_cast<uint64_t>(e - base);
  }
  if (!numeric && !srange.Empty()) {
    const AttributeId* base = str_attrs_.data();
    const AttributeId* first = base + str_offsets_[pred];
    const AttributeId* last = base + str_offsets_[pred + 1];
    const AttributeId* b = first;
    if (srange.has_lo) {
      b = srange.lo_open
              ? std::upper_bound(first, last, srange.lo,
                                 [this](std::string_view s, AttributeId a) {
                                   return s < AttrText(a);
                                 })
              : std::lower_bound(first, last, srange.lo,
                                 [this](AttributeId a, std::string_view s) {
                                   return AttrText(a) < s;
                                 });
    }
    const AttributeId* e = last;
    if (srange.has_hi) {
      e = srange.hi_open
              ? std::lower_bound(b, last, srange.hi,
                                 [this](AttributeId a, std::string_view s) {
                                   return AttrText(a) < s;
                                 })
              : std::upper_bound(b, last, srange.hi,
                                 [this](std::string_view s, AttributeId a) {
                                   return s < AttrText(a);
                                 });
    }
    *str_begin = static_cast<uint64_t>(b - base);
    *str_end = static_cast<uint64_t>(e - base);
  }
}

void ValueIndex::RangeScan(AttrPredId pred,
                           std::span<const ValueComparison> cmps,
                           std::vector<VertexId>* out,
                           ScanStats* stats) const {
  out->clear();
  if (pred >= NumPredicates()) return;
  uint64_t nb, ne, sb, se;
  std::vector<const LiteralValue*> exclusions;
  ResolveConjunction(pred, cmps, &nb, &ne, &sb, &se, &exclusions);
  if (stats != nullptr) {
    ++stats->scans;
    stats->elements += (ne - nb) + (se - sb);
  }

  for (uint64_t i = nb; i < ne; ++i) {
    bool excluded = false;
    for (const LiteralValue* x : exclusions) {
      if (x->numeric && num_values_[i] == x->number) {
        excluded = true;
        break;
      }
    }
    if (!excluded) out->push_back(num_vertices_[i]);
  }
  for (uint64_t i = sb; i < se; ++i) {
    bool excluded = false;
    for (const LiteralValue* x : exclusions) {
      if (!x->numeric && AttrText(str_attrs_[i]) == x->text) {
        excluded = true;
        break;
      }
    }
    if (!excluded) out->push_back(str_vertices_[i]);
  }

  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

uint64_t ValueIndex::EstimateRange(AttrPredId pred,
                                   std::span<const ValueComparison> cmps) const {
  uint64_t nb, ne, sb, se;
  std::vector<const LiteralValue*> exclusions;
  ResolveConjunction(pred, cmps, &nb, &ne, &sb, &se, &exclusions);
  return (ne - nb) + (se - sb);
}

bool ValueIndex::VertexMatches(std::span<const AttributeId> attrs,
                               AttrPredId pred,
                               std::span<const ValueComparison> cmps) const {
  for (AttributeId a : attrs) {
    if (a >= attr_pred_.size() || attr_pred_[a] != pred) continue;
    if (SatisfiesAll(ViewOf(a), cmps)) return true;
  }
  return false;
}

LiteralValue ValueIndex::ValueOf(AttributeId a) const {
  LiteralValue v;
  if (attr_kind_[a] == kKindNumber) {
    v.numeric = true;
    v.number = attr_num_[a];
  } else {
    v.text = std::string(AttrText(a));
  }
  return v;
}

uint64_t ValueIndex::ByteSize() const {
  return attr_pred_.ByteSize() + attr_kind_.ByteSize() + attr_num_.ByteSize() +
         attr_text_offsets_.ByteSize() + attr_text_blob_.ByteSize() +
         num_offsets_.ByteSize() + num_values_.ByteSize() +
         num_vertices_.ByteSize() + str_offsets_.ByteSize() +
         str_attrs_.ByteSize() + str_vertices_.ByteSize();
}

Status ValueIndex::Validate(uint64_t num_vertices,
                            bool check_vertex_range) const {
  const size_t num_attrs = attr_pred_.size();
  if (attr_kind_.size() != num_attrs || attr_num_.size() != num_attrs) {
    return Status::Corruption("value index attribute table size mismatch");
  }
  if (attr_text_offsets_.size() != num_attrs + 1) {
    return Status::Corruption("value index text offsets size mismatch");
  }
  AMBER_RETURN_IF_ERROR(amf::ValidateOffsets(
      attr_text_offsets_.span(), attr_text_blob_.size(), "value index text"));
  if (num_offsets_.empty() || str_offsets_.size() != num_offsets_.size()) {
    return Status::Corruption("value index column offsets size mismatch");
  }
  const size_t num_preds = num_offsets_.size() - 1;
  for (size_t a = 0; a < num_attrs; ++a) {
    if (attr_kind_[a] != kKindString && attr_kind_[a] != kKindNumber) {
      return Status::Corruption("value index attribute kind out of range");
    }
    if (attr_pred_[a] >= num_preds) {
      return Status::Corruption("value index attribute predicate "
                                "out of range");
    }
  }
  if (num_values_.size() != num_vertices_.size()) {
    return Status::Corruption("value index numeric column size mismatch");
  }
  AMBER_RETURN_IF_ERROR(amf::ValidateOffsets(
      num_offsets_.span(), num_values_.size(), "value index numeric column"));
  if (str_attrs_.size() != str_vertices_.size()) {
    return Status::Corruption("value index string column size mismatch");
  }
  AMBER_RETURN_IF_ERROR(amf::ValidateOffsets(
      str_offsets_.span(), str_attrs_.size(), "value index string column"));

  for (size_t p = 0; p < num_preds; ++p) {
    for (uint64_t i = num_offsets_[p]; i + 1 < num_offsets_[p + 1]; ++i) {
      if (num_values_[i] > num_values_[i + 1] ||
          (num_values_[i] == num_values_[i + 1] &&
           num_vertices_[i] > num_vertices_[i + 1])) {
        return Status::Corruption("value index numeric column not sorted");
      }
    }
    for (uint64_t i = str_offsets_[p]; i < str_offsets_[p + 1]; ++i) {
      const AttributeId a = str_attrs_[i];
      if (a >= num_attrs) {
        return Status::Corruption("value index string entry out of range");
      }
      if (attr_kind_[a] != kKindString || attr_pred_[a] != p) {
        return Status::Corruption("value index string entry inconsistent");
      }
      if (i + 1 < str_offsets_[p + 1]) {
        const AttributeId b = str_attrs_[i + 1];
        if (b >= num_attrs) {
          return Status::Corruption("value index string entry out of range");
        }
        if (AttrText(a) > AttrText(b) ||
            (AttrText(a) == AttrText(b) &&
             str_vertices_[i] > str_vertices_[i + 1])) {
          return Status::Corruption("value index string column not sorted");
        }
      }
    }
  }
  if (check_vertex_range) {
    for (VertexId v : num_vertices_.span()) {
      if (v >= num_vertices) {
        return Status::Corruption("value index vertex id out of range");
      }
    }
    for (VertexId v : str_vertices_.span()) {
      if (v >= num_vertices) {
        return Status::Corruption("value index vertex id out of range");
      }
    }
  }
  return Status::OK();
}

void ValueIndex::Save(std::ostream& os) const {
  serde::WriteHeader(os, kValueIndexMagic, kValueIndexVersion);
  serde::WriteSpan(os, attr_pred_.span());
  serde::WriteSpan(os, attr_kind_.span());
  serde::WriteSpan(os, attr_num_.span());
  serde::WriteSpan(os, attr_text_offsets_.span());
  serde::WriteSpan(os, attr_text_blob_.span());
  serde::WriteSpan(os, num_offsets_.span());
  serde::WriteSpan(os, num_values_.span());
  serde::WriteSpan(os, num_vertices_.span());
  serde::WriteSpan(os, str_offsets_.span());
  serde::WriteSpan(os, str_attrs_.span());
  serde::WriteSpan(os, str_vertices_.span());
}

Status ValueIndex::Load(std::istream& is) {
  AMBER_RETURN_IF_ERROR(
      serde::CheckHeader(is, kValueIndexMagic, kValueIndexVersion));
  std::vector<AttrPredId> attr_pred;
  std::vector<uint8_t> attr_kind;
  std::vector<double> attr_num;
  std::vector<uint64_t> text_offsets;
  std::vector<char> text_blob;
  std::vector<uint64_t> num_offsets;
  std::vector<double> num_values;
  std::vector<VertexId> num_vertices;
  std::vector<uint64_t> str_offsets;
  std::vector<AttributeId> str_attrs;
  std::vector<VertexId> str_vertices;
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &attr_pred));
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &attr_kind));
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &attr_num));
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &text_offsets));
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &text_blob));
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &num_offsets));
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &num_values));
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &num_vertices));
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &str_offsets));
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &str_attrs));
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &str_vertices));
  attr_pred_ = std::move(attr_pred);
  attr_kind_ = std::move(attr_kind);
  attr_num_ = std::move(attr_num);
  attr_text_offsets_ = std::move(text_offsets);
  attr_text_blob_ = std::move(text_blob);
  num_offsets_ = std::move(num_offsets);
  num_values_ = std::move(num_values);
  num_vertices_ = std::move(num_vertices);
  str_offsets_ = std::move(str_offsets);
  str_attrs_ = std::move(str_attrs);
  str_vertices_ = std::move(str_vertices);
  return Validate(0, /*check_vertex_range=*/false);
}

void ValueIndex::SaveAmf(amf::Writer* w) const {
  w->AddArray(kAmfAttrPred, attr_pred_.span());
  w->AddArray(kAmfAttrKind, attr_kind_.span());
  w->AddArray(kAmfAttrNum, attr_num_.span());
  w->AddArray(kAmfAttrTextOffsets, attr_text_offsets_.span());
  w->AddArray(kAmfAttrTextBlob, attr_text_blob_.span());
  w->AddArray(kAmfNumOffsets, num_offsets_.span());
  w->AddArray(kAmfNumValues, num_values_.span());
  w->AddArray(kAmfNumVertices, num_vertices_.span());
  w->AddArray(kAmfStrOffsets, str_offsets_.span());
  w->AddArray(kAmfStrAttrs, str_attrs_.span());
  w->AddArray(kAmfStrVertices, str_vertices_.span());
}

Status ValueIndex::LoadAmf(const amf::Reader& r, uint64_t num_vertices) {
  AMBER_ASSIGN_OR_RETURN(std::span<const AttrPredId> attr_pred,
                         r.Array<AttrPredId>(kAmfAttrPred));
  AMBER_ASSIGN_OR_RETURN(std::span<const uint8_t> attr_kind,
                         r.Array<uint8_t>(kAmfAttrKind));
  AMBER_ASSIGN_OR_RETURN(std::span<const double> attr_num,
                         r.Array<double>(kAmfAttrNum));
  AMBER_ASSIGN_OR_RETURN(std::span<const uint64_t> text_offsets,
                         r.Array<uint64_t>(kAmfAttrTextOffsets));
  AMBER_ASSIGN_OR_RETURN(std::span<const char> text_blob,
                         r.Array<char>(kAmfAttrTextBlob));
  AMBER_ASSIGN_OR_RETURN(std::span<const uint64_t> num_offsets,
                         r.Array<uint64_t>(kAmfNumOffsets));
  AMBER_ASSIGN_OR_RETURN(std::span<const double> num_values,
                         r.Array<double>(kAmfNumValues));
  AMBER_ASSIGN_OR_RETURN(std::span<const VertexId> num_vertices_arr,
                         r.Array<VertexId>(kAmfNumVertices));
  AMBER_ASSIGN_OR_RETURN(std::span<const uint64_t> str_offsets,
                         r.Array<uint64_t>(kAmfStrOffsets));
  AMBER_ASSIGN_OR_RETURN(std::span<const AttributeId> str_attrs,
                         r.Array<AttributeId>(kAmfStrAttrs));
  AMBER_ASSIGN_OR_RETURN(std::span<const VertexId> str_vertices,
                         r.Array<VertexId>(kAmfStrVertices));
  attr_pred_ = ArrayRef<AttrPredId>::Borrowed(attr_pred);
  attr_kind_ = ArrayRef<uint8_t>::Borrowed(attr_kind);
  attr_num_ = ArrayRef<double>::Borrowed(attr_num);
  attr_text_offsets_ = ArrayRef<uint64_t>::Borrowed(text_offsets);
  attr_text_blob_ = ArrayRef<char>::Borrowed(text_blob);
  num_offsets_ = ArrayRef<uint64_t>::Borrowed(num_offsets);
  num_values_ = ArrayRef<double>::Borrowed(num_values);
  num_vertices_ = ArrayRef<VertexId>::Borrowed(num_vertices_arr);
  str_offsets_ = ArrayRef<uint64_t>::Borrowed(str_offsets);
  str_attrs_ = ArrayRef<AttributeId>::Borrowed(str_attrs);
  str_vertices_ = ArrayRef<VertexId>::Borrowed(str_vertices);
  return Validate(num_vertices, /*check_vertex_range=*/true);
}

}  // namespace amber
