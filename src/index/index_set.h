// The ensemble I := {A, S, N, V} of the offline stage: the paper's three
// indexes (Section 4) plus the value index V serving FILTER range
// predicates (docs/ARCHITECTURE.md, "The FILTER pipeline").

#ifndef AMBER_INDEX_INDEX_SET_H_
#define AMBER_INDEX_INDEX_SET_H_

#include <cstdint>
#include <iosfwd>
#include <span>

#include "graph/multigraph.h"
#include "index/attribute_index.h"
#include "index/neighborhood_index.h"
#include "index/signature_index.h"
#include "index/value_index.h"
#include "util/status.h"

namespace amber {

/// \brief The AMbER indexes, built together from a data multigraph.
struct IndexSet {
  AttributeIndex attribute;        // A  (Section 4.1)
  SignatureIndex signature;        // S  (Section 4.2)
  NeighborhoodIndex neighborhood;  // N  (Section 4.3)
  ValueIndex value;                // V  (FILTER range predicates)

  /// Builds all four indexes (offline stage). `attr_values` /
  /// `num_attr_predicates` come from the encoded dataset (the typed
  /// literal values V is sorted by). With a pool, the per-vertex work
  /// inside the signature and neighborhood builds is sharded across
  /// workers; every parallel path is bit-identical to the serial build, so
  /// the persisted artifact does not depend on num_threads.
  static IndexSet Build(const Multigraph& g,
                        std::span<const AttributeValueInfo> attr_values,
                        size_t num_attr_predicates,
                        ThreadPool* pool = nullptr) {
    IndexSet set;
    set.attribute = AttributeIndex::Build(g);
    set.signature = SignatureIndex::Build(g, pool);
    set.neighborhood = NeighborhoodIndex::Build(g, pool);
    set.value = ValueIndex::Build(g, attr_values, num_attr_predicates);
    return set;
  }

  uint64_t ByteSize() const {
    return attribute.ByteSize() + signature.ByteSize() +
           neighborhood.ByteSize() + value.ByteSize();
  }

  void Save(std::ostream& os) const {
    attribute.Save(os);
    signature.Save(os);
    neighborhood.Save(os);
    value.Save(os);
  }

  Status Load(std::istream& is) {
    AMBER_RETURN_IF_ERROR(attribute.Load(is));
    AMBER_RETURN_IF_ERROR(signature.Load(is));
    AMBER_RETURN_IF_ERROR(neighborhood.Load(is));
    return value.Load(is);
  }

  void SaveAmf(amf::Writer* w) const {
    attribute.SaveAmf(w);
    signature.SaveAmf(w);
    neighborhood.SaveAmf(w);
    value.SaveAmf(w);
  }

  /// `num_vertices` is the owning graph's vertex count, used to bound the
  /// vertex ids stored in the index pools.
  Status LoadAmf(const amf::Reader& r, uint64_t num_vertices) {
    AMBER_RETURN_IF_ERROR(attribute.LoadAmf(r, num_vertices));
    AMBER_RETURN_IF_ERROR(signature.LoadAmf(r));
    AMBER_RETURN_IF_ERROR(neighborhood.LoadAmf(r));
    return value.LoadAmf(r, num_vertices);
  }
};

}  // namespace amber

#endif  // AMBER_INDEX_INDEX_SET_H_
