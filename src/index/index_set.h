// The ensemble I := {A, S, N} of Section 4: everything AMbER builds in the
// offline stage besides the multigraph itself.

#ifndef AMBER_INDEX_INDEX_SET_H_
#define AMBER_INDEX_INDEX_SET_H_

#include <cstdint>
#include <iosfwd>

#include "graph/multigraph.h"
#include "index/attribute_index.h"
#include "index/neighborhood_index.h"
#include "index/signature_index.h"
#include "util/status.h"

namespace amber {

/// \brief The three AMbER indexes, built together from a data multigraph.
struct IndexSet {
  AttributeIndex attribute;      // A  (Section 4.1)
  SignatureIndex signature;      // S  (Section 4.2)
  NeighborhoodIndex neighborhood;  // N  (Section 4.3)

  /// Builds all three indexes (offline stage). With a pool, the per-vertex
  /// work inside the signature and neighborhood builds is sharded across
  /// workers; every parallel path is bit-identical to the serial build, so
  /// the persisted artifact does not depend on num_threads.
  static IndexSet Build(const Multigraph& g, ThreadPool* pool = nullptr) {
    IndexSet set;
    set.attribute = AttributeIndex::Build(g);
    set.signature = SignatureIndex::Build(g, pool);
    set.neighborhood = NeighborhoodIndex::Build(g, pool);
    return set;
  }

  uint64_t ByteSize() const {
    return attribute.ByteSize() + signature.ByteSize() +
           neighborhood.ByteSize();
  }

  void Save(std::ostream& os) const {
    attribute.Save(os);
    signature.Save(os);
    neighborhood.Save(os);
  }

  Status Load(std::istream& is) {
    AMBER_RETURN_IF_ERROR(attribute.Load(is));
    AMBER_RETURN_IF_ERROR(signature.Load(is));
    return neighborhood.Load(is);
  }

  void SaveAmf(amf::Writer* w) const {
    attribute.SaveAmf(w);
    signature.SaveAmf(w);
    neighborhood.SaveAmf(w);
  }

  /// `num_vertices` is the owning graph's vertex count, used to bound the
  /// vertex ids stored in the index pools.
  Status LoadAmf(const amf::Reader& r, uint64_t num_vertices) {
    AMBER_RETURN_IF_ERROR(attribute.LoadAmf(r, num_vertices));
    AMBER_RETURN_IF_ERROR(signature.LoadAmf(r));
    return neighborhood.LoadAmf(r);
  }
};

}  // namespace amber

#endif  // AMBER_INDEX_INDEX_SET_H_
