// An 8-dimensional R-tree over vertex synopses (Section 4.2).
//
// Each synopsis is a point in Z^8; the paper views it as the axis-parallel
// rectangle [0, f_1] x ... x [0, f_8] and asks for rectangle containment.
// Equivalently, the query for a query-vertex synopsis q is a *dominance*
// search: report every point p with q[i] <= p[i] for all i.
//
// The tree is bulk-loaded (sort-tile-recursive flavoured: each level
// partitions along the next dimension round-robin) into a flat, cache-
// friendly layout where every subtree owns one contiguous range of entries.
// That makes the two dominance prunes cheap:
//   * skip a subtree when  exists i : q[i] > mbr_max[i]   (nothing matches),
//   * bulk-accept it when  forall i : q[i] <= mbr_min[i]  (everything does).

#ifndef AMBER_INDEX_RTREE_H_
#define AMBER_INDEX_RTREE_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "graph/synopsis.h"
#include "util/amf.h"
#include "util/status.h"
#include "util/storage.h"

namespace amber {

/// \brief Bulk-loaded R-tree over synopsis points, supporting dominance
/// queries.
class SynopsisRTree {
 public:
  /// Tuning knobs for bulk load.
  struct Options {
    /// Maximum points per leaf.
    uint32_t leaf_capacity = 64;
    /// Maximum children per internal node.
    uint32_t fanout = 16;
  };

  SynopsisRTree() = default;

  /// Bulk-loads the tree; `points[i]` belongs to id `i`.
  static SynopsisRTree Build(std::span<const Synopsis> points,
                             const Options& options);
  /// Bulk-loads with default Options.
  static SynopsisRTree Build(std::span<const Synopsis> points) {
    return Build(points, Options{});
  }

  /// Appends to `*out` the ids of all points dominating `q`
  /// (component-wise q.f[i] <= p.f[i]). Output is sorted ascending.
  void QueryDominating(const Synopsis& q, std::vector<uint32_t>* out) const;

  size_t NumPoints() const { return points_.size(); }
  size_t NumNodes() const { return nodes_.size(); }
  const Synopsis& PointAt(uint32_t id) const { return points_[id]; }

  uint64_t ByteSize() const {
    return nodes_.ByteSize() + entries_.ByteSize() + child_pool_.ByteSize() +
           points_.ByteSize();
  }

  void Save(std::ostream& os) const;
  Status Load(std::istream& is);

  void SaveAmf(amf::Writer* w) const;
  Status LoadAmf(const amf::Reader& r);

 private:
  struct Node {
    int32_t mbr_min[Synopsis::kNumFields];
    int32_t mbr_max[Synopsis::kNumFields];
    uint32_t entry_begin;     // subtree's contiguous range in entries_
    uint32_t entry_end;
    uint32_t children_begin;  // into child_pool_; count==0 => leaf
    uint32_t children_count;
  };

  // Mutable state of one bulk load (defined in rtree.cc); the finished
  // vectors are adopted by the tree's ArrayRef storage.
  struct Bulk;

  void CollectRange(uint32_t begin, uint32_t end,
                    std::vector<uint32_t>* out) const;

  ArrayRef<Synopsis> points_;
  ArrayRef<Node> nodes_;         // root is nodes_.back() when non-empty
  ArrayRef<uint32_t> entries_;   // point ids, grouped by subtree
  ArrayRef<uint32_t> child_pool_;
  uint32_t root_ = 0;
};

}  // namespace amber

#endif  // AMBER_INDEX_RTREE_H_
