// Attribute index A (Section 4.1): an inverted list mapping each vertex
// attribute a_i (a <predicate, literal> pair) to the sorted list of data
// vertices carrying it. Candidate retrieval for a query vertex with several
// attributes is a sorted-list intersection, smallest list first.

#ifndef AMBER_INDEX_ATTRIBUTE_INDEX_H_
#define AMBER_INDEX_ATTRIBUTE_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "graph/multigraph.h"
#include "util/amf.h"
#include "util/status.h"
#include "util/storage.h"

namespace amber {

/// \brief Inverted list index over vertex attributes.
class AttributeIndex {
 public:
  AttributeIndex() = default;

  /// Builds the inverted lists from the data multigraph (offline stage).
  static AttributeIndex Build(const Multigraph& g);

  /// Sorted vertices carrying attribute `a`; empty for unknown ids.
  std::span<const VertexId> Vertices(AttributeId a) const {
    if (a + 1 >= offsets_.size()) return {};
    return {pool_.data() + offsets_[a], offsets_[a + 1] - offsets_[a]};
  }

  /// Sorted vertices carrying *all* of `attrs` (C^A_u of the paper). An
  /// unknown attribute yields the empty set.
  std::vector<VertexId> Candidates(std::span<const AttributeId> attrs) const;

  /// True iff vertex `v` carries all of `attrs` (uses the inverted lists).
  bool VertexHasAll(VertexId v, std::span<const AttributeId> attrs) const;

  size_t NumAttributes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  uint64_t ByteSize() const {
    return offsets_.ByteSize() + pool_.ByteSize();
  }

  void Save(std::ostream& os) const;
  Status Load(std::istream& is);

  void SaveAmf(amf::Writer* w) const;
  /// `num_vertices` bounds the pool entries (they are graph vertex ids the
  /// matcher feeds straight into CSR lookups).
  Status LoadAmf(const amf::Reader& r, uint64_t num_vertices);

  bool operator==(const AttributeIndex& o) const {
    return offsets_ == o.offsets_ && pool_ == o.pool_;
  }

 private:
  ArrayRef<uint64_t> offsets_;  // size NumAttributes()+1
  ArrayRef<VertexId> pool_;     // sorted per attribute
};

/// Intersects two sorted id lists into a fresh vector. Cold-path
/// convenience over the allocation-free kernels in util/intersect.h, which
/// the hot path uses directly.
std::vector<VertexId> IntersectSorted(std::span<const VertexId> a,
                                      std::span<const VertexId> b);

}  // namespace amber

#endif  // AMBER_INDEX_ATTRIBUTE_INDEX_H_
