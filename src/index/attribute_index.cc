#include "index/attribute_index.h"

#include <algorithm>

#include "util/intersect.h"
#include "util/serde.h"

namespace amber {

namespace {
constexpr uint32_t kAttrIndexMagic = 0x414D4241;  // "AMBA"
constexpr uint32_t kAttrIndexVersion = 1;

// AMF section ids (namespace 0x20xx).
constexpr uint32_t kAmfAttrOffsets = 0x2000;
constexpr uint32_t kAmfAttrPool = 0x2001;
}  // namespace

AttributeIndex AttributeIndex::Build(const Multigraph& g) {
  AttributeIndex index;
  const size_t num_attrs = g.NumAttributes();
  std::vector<uint64_t> offsets(num_attrs + 1, 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (AttributeId a : g.Attributes(v)) {
      ++offsets[a + 1];
    }
  }
  for (size_t a = 0; a < num_attrs; ++a) {
    offsets[a + 1] += offsets[a];
  }
  std::vector<VertexId> pool(offsets[num_attrs]);
  std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  // Vertices are visited in ascending order, so each list ends up sorted.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (AttributeId a : g.Attributes(v)) {
      pool[cursor[a]++] = v;
    }
  }
  index.offsets_ = std::move(offsets);
  index.pool_ = std::move(pool);
  return index;
}

std::vector<VertexId> IntersectSorted(std::span<const VertexId> a,
                                      std::span<const VertexId> b) {
  std::vector<VertexId> out;
  out.reserve(std::min(a.size(), b.size()));
  IntersectSortedAppend(a, b, &out);
  return out;
}

std::vector<VertexId> AttributeIndex::Candidates(
    std::span<const AttributeId> attrs) const {
  if (attrs.empty()) return {};
  std::vector<std::span<const VertexId>> lists;
  lists.reserve(attrs.size());
  for (AttributeId a : attrs) lists.push_back(Vertices(a));
  std::vector<const VertexId*> cursors;
  std::vector<VertexId> result;
  IntersectKWay(std::span<const std::span<const VertexId>>(lists), &cursors,
                &result);
  return result;
}

bool AttributeIndex::VertexHasAll(VertexId v,
                                  std::span<const AttributeId> attrs) const {
  for (AttributeId a : attrs) {
    std::span<const VertexId> list = Vertices(a);
    if (!std::binary_search(list.begin(), list.end(), v)) return false;
  }
  return true;
}

void AttributeIndex::Save(std::ostream& os) const {
  serde::WriteHeader(os, kAttrIndexMagic, kAttrIndexVersion);
  serde::WriteSpan(os, offsets_.span());
  serde::WriteSpan(os, pool_.span());
}

Status AttributeIndex::Load(std::istream& is) {
  AMBER_RETURN_IF_ERROR(
      serde::CheckHeader(is, kAttrIndexMagic, kAttrIndexVersion));
  std::vector<uint64_t> offsets;
  std::vector<VertexId> pool;
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &offsets));
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &pool));
  offsets_ = std::move(offsets);
  pool_ = std::move(pool);
  return Status::OK();
}

void AttributeIndex::SaveAmf(amf::Writer* w) const {
  w->AddArray(kAmfAttrOffsets, offsets_.span());
  w->AddArray(kAmfAttrPool, pool_.span());
}

Status AttributeIndex::LoadAmf(const amf::Reader& r, uint64_t num_vertices) {
  AMBER_ASSIGN_OR_RETURN(std::span<const uint64_t> offsets,
                         r.Array<uint64_t>(kAmfAttrOffsets));
  AMBER_ASSIGN_OR_RETURN(std::span<const VertexId> pool,
                         r.Array<VertexId>(kAmfAttrPool));
  if (offsets.empty()) {
    if (!pool.empty()) {
      return Status::Corruption("attribute index pool without offsets");
    }
  } else {
    AMBER_RETURN_IF_ERROR(
        amf::ValidateOffsets(offsets, pool.size(), "attribute index"));
  }
  for (VertexId v : pool) {
    if (v >= num_vertices) {
      return Status::Corruption("attribute index pool entry out of range");
    }
  }
  offsets_ = ArrayRef<uint64_t>::Borrowed(offsets);
  pool_ = ArrayRef<VertexId>::Borrowed(pool);
  return Status::OK();
}

}  // namespace amber
