#include "index/attribute_index.h"

#include <algorithm>

#include "util/intersect.h"
#include "util/serde.h"

namespace amber {

namespace {
constexpr uint32_t kAttrIndexMagic = 0x414D4241;  // "AMBA"
constexpr uint32_t kAttrIndexVersion = 1;
}  // namespace

AttributeIndex AttributeIndex::Build(const Multigraph& g) {
  AttributeIndex index;
  const size_t num_attrs = g.NumAttributes();
  index.offsets_.assign(num_attrs + 1, 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (AttributeId a : g.Attributes(v)) {
      ++index.offsets_[a + 1];
    }
  }
  for (size_t a = 0; a < num_attrs; ++a) {
    index.offsets_[a + 1] += index.offsets_[a];
  }
  index.pool_.resize(index.offsets_[num_attrs]);
  std::vector<uint64_t> cursor(index.offsets_.begin(),
                               index.offsets_.end() - 1);
  // Vertices are visited in ascending order, so each list ends up sorted.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (AttributeId a : g.Attributes(v)) {
      index.pool_[cursor[a]++] = v;
    }
  }
  return index;
}

std::vector<VertexId> IntersectSorted(std::span<const VertexId> a,
                                      std::span<const VertexId> b) {
  std::vector<VertexId> out;
  out.reserve(std::min(a.size(), b.size()));
  IntersectSortedAppend(a, b, &out);
  return out;
}

std::vector<VertexId> AttributeIndex::Candidates(
    std::span<const AttributeId> attrs) const {
  if (attrs.empty()) return {};
  std::vector<std::span<const VertexId>> lists;
  lists.reserve(attrs.size());
  for (AttributeId a : attrs) lists.push_back(Vertices(a));
  std::vector<const VertexId*> cursors;
  std::vector<VertexId> result;
  IntersectKWay(std::span<const std::span<const VertexId>>(lists), &cursors,
                &result);
  return result;
}

bool AttributeIndex::VertexHasAll(VertexId v,
                                  std::span<const AttributeId> attrs) const {
  for (AttributeId a : attrs) {
    std::span<const VertexId> list = Vertices(a);
    if (!std::binary_search(list.begin(), list.end(), v)) return false;
  }
  return true;
}

void AttributeIndex::Save(std::ostream& os) const {
  serde::WriteHeader(os, kAttrIndexMagic, kAttrIndexVersion);
  serde::WriteVector(os, offsets_);
  serde::WriteVector(os, pool_);
}

Status AttributeIndex::Load(std::istream& is) {
  AMBER_RETURN_IF_ERROR(
      serde::CheckHeader(is, kAttrIndexMagic, kAttrIndexVersion));
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &offsets_));
  return serde::ReadVector(is, &pool_);
}

}  // namespace amber
