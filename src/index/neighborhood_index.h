// Vertex neighbourhood index N (Section 4.3): per data vertex, two OTIL
// structures — Ordered Trie with Inverted List, after Terrovitis et al.
// (CIKM'06) — one for incoming ('+', N+) and one for outgoing ('-', N-)
// edges.
//
// For a vertex v, each neighbour group (the sorted multi-edge type set shared
// with one neighbour) is inserted as a root-anchored path in the trie; the
// neighbour id is appended to the inverted list of the node where its path
// ends. The core query is:
//
//   Superset(v, dir, T') = { v' in N_dir(v) : T' subseteq L_E(v,v') }
//
// answered by walking the trie and matching the sorted T' as a subsequence of
// node labels. Because labels are sorted along paths *and* across siblings,
// a node labelled greater than the next unmatched query type prunes itself
// and all its later siblings; once every query type is matched, the whole
// subtree (one contiguous node/list range in our flat layout) is accepted.
//
// The entire forest of tries is stored in four flat arrays per direction —
// no per-node allocation, cheap to serialize, and subtree acceptance is a
// single memcpy-style append.

#ifndef AMBER_INDEX_NEIGHBORHOOD_INDEX_H_
#define AMBER_INDEX_NEIGHBORHOOD_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "graph/multigraph.h"
#include "util/amf.h"
#include "util/status.h"
#include "util/storage.h"

namespace amber {

class ThreadPool;

/// \brief OTIL-based neighbourhood index over a data multigraph.
class NeighborhoodIndex {
 public:
  /// Reusable workspace for the trie walks (the DFS frame stack). Callers
  /// on the matching hot path keep one Scratch per Matcher so repeated
  /// SupersetNeighbors/Contains calls perform no heap allocation once the
  /// stack has grown to the deepest trie visited.
  class Scratch {
   public:
    Scratch() = default;

    /// Heap footprint of the reusable stack (for arena accounting).
    uint64_t ByteSize() const {
      return static_cast<uint64_t>(frames.capacity()) * sizeof(Frame);
    }

   private:
    friend class NeighborhoodIndex;
    struct Frame {
      uint32_t node;
      uint32_t limit;  // one past the last sibling in this chain
      uint32_t qi;     // matched query-prefix length
    };
    std::vector<Frame> frames;
  };

  NeighborhoodIndex() = default;

  /// Builds N+ and N- for every vertex (offline stage). With a pool, the
  /// per-vertex trie construction is sharded into fixed-size vertex chunks
  /// built concurrently and concatenated in order, which makes the result
  /// bit-identical to the serial build regardless of thread count.
  static NeighborhoodIndex Build(const Multigraph& g,
                                 ThreadPool* pool = nullptr);

  /// Appends to `*out` every neighbour v' of `v` on side `d` whose
  /// multi-edge with `v` is a superset of `types` (sorted ascending).
  /// With empty `types`, all neighbours on that side are returned.
  /// The appended range is sorted and duplicate-free. When `scratch` is
  /// non-null its stack is reused instead of allocating one per call.
  void SupersetNeighbors(VertexId v, Direction d,
                         std::span<const EdgeTypeId> types,
                         std::vector<VertexId>* out,
                         Scratch* scratch = nullptr) const;

  /// Convenience wrapper returning a fresh vector.
  std::vector<VertexId> Superset(VertexId v, Direction d,
                                 std::span<const EdgeTypeId> types) const {
    std::vector<VertexId> out;
    SupersetNeighbors(v, d, types, &out);
    return out;
  }

  /// True iff `neighbor` would appear in Superset(v, d, types): the
  /// multi-edge between `v` and `neighbor` on side `d` covers `types`.
  /// Seeks through the trie (pruned exactly like SupersetNeighbors, plus a
  /// binary search of each accepted node's inverted list) without
  /// materializing any neighbour list — the probe-without-materialize
  /// primitive of the matcher's hot path.
  bool Contains(VertexId v, Direction d, std::span<const EdgeTypeId> types,
                VertexId neighbor, Scratch* scratch = nullptr) const;

  /// Exact number of distinct neighbours of `v` on side `d`, in O(1); an
  /// upper bound on |Superset(v, d, types)| for any `types`. The matcher's
  /// materialize-vs-probe cutover is driven by this bound.
  size_t NeighborCount(VertexId v, Direction d) const {
    const DirIndex& dir = dirs_[static_cast<int>(d)];
    if (v + 1 >= dir.pool_offsets.size()) return 0;
    return static_cast<size_t>(dir.pool_offsets[v + 1] -
                               dir.pool_offsets[v]);
  }

  size_t NumVertices() const {
    return dirs_[0].node_offsets.empty() ? 0
                                         : dirs_[0].node_offsets.size() - 1;
  }

  uint64_t ByteSize() const;

  void Save(std::ostream& os) const;
  Status Load(std::istream& is);

  void SaveAmf(amf::Writer* w) const;
  Status LoadAmf(const amf::Reader& r);

 private:
  // One trie node. Children of node i are the maximal chain
  // i+1, subtree_end(i+1), ... inside (i, subtree_end(i)); both node and
  // inverted-list storage of a subtree are contiguous.
  struct Node {
    EdgeTypeId type;
    uint32_t subtree_end;  // absolute node index one past the subtree
    uint32_t list_begin;   // own inverted list in `pool`
    uint32_t list_end;
  };

  struct DirIndex {
    ArrayRef<uint64_t> node_offsets;  // per vertex, size V+1
    ArrayRef<uint64_t> pool_offsets;  // per vertex, size V+1
    ArrayRef<Node> nodes;
    ArrayRef<VertexId> pool;          // inverted lists, DFS order
  };

  // Recursive trie construction over the sorted groups [lo, hi), appending
  // to chunk-local node/pool vectors.
  static void BuildChildren(
      const std::vector<std::pair<std::span<const EdgeTypeId>, VertexId>>&
          groups,
      size_t lo, size_t hi, size_t depth, std::vector<Node>* nodes,
      std::vector<VertexId>* pool);

  DirIndex dirs_[2];  // indexed by Direction
};

}  // namespace amber

#endif  // AMBER_INDEX_NEIGHBORHOOD_INDEX_H_
