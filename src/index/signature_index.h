// Vertex signature index S (Section 4.2): the synopses of all data vertices
// stored in an R-tree. Querying with the synopsis of a (query) vertex u
// returns every data vertex whose synopsis dominates u's — a superset of the
// exact candidate set (Lemma 1), used to seed the recursion for the initial
// query vertex.

#ifndef AMBER_INDEX_SIGNATURE_INDEX_H_
#define AMBER_INDEX_SIGNATURE_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "graph/multigraph.h"
#include "graph/synopsis.h"
#include "index/rtree.h"
#include "util/status.h"

namespace amber {

class ThreadPool;

/// \brief R-tree backed index over all vertex synopses.
class SignatureIndex {
 public:
  SignatureIndex() = default;

  /// Computes all synopses and bulk-loads the R-tree (offline stage). With
  /// a pool, the per-vertex synopsis computation is parallelized; the
  /// bulk load itself stays serial, so the result is bit-identical.
  static SignatureIndex Build(const Multigraph& g, ThreadPool* pool = nullptr);

  /// C^S_u: sorted data vertices whose synopsis dominates `query`.
  std::vector<VertexId> Candidates(const Synopsis& query) const {
    std::vector<VertexId> out;
    tree_.QueryDominating(query, &out);
    return out;
  }

  /// Direct synopsis access (used by tests and the no-index baseline).
  const Synopsis& Of(VertexId v) const { return tree_.PointAt(v); }

  size_t NumVertices() const { return tree_.NumPoints(); }

  uint64_t ByteSize() const { return tree_.ByteSize(); }

  void Save(std::ostream& os) const { tree_.Save(os); }
  Status Load(std::istream& is) { return tree_.Load(is); }

  void SaveAmf(amf::Writer* w) const { tree_.SaveAmf(w); }
  Status LoadAmf(const amf::Reader& r) { return tree_.LoadAmf(r); }

 private:
  SynopsisRTree tree_;
};

}  // namespace amber

#endif  // AMBER_INDEX_SIGNATURE_INDEX_H_
