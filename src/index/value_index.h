// Value index V: per-predicate value-ordered columns over the vertex
// attributes, serving FILTER range predicates with binary-searched scans.
//
// Layout (all flat arrays, AMF-able like the other indexes):
//
//   * an attribute value table, indexed by AttributeId: the attribute's
//     predicate (AttrPredId), kind (string/number), numeric value, and a
//     (blob, offsets) pair holding the lexical forms of string values;
//   * per predicate, a numeric column — parallel (value, vertex) arrays
//     sorted by (value, vertex) — addressed by a CSR offsets table over
//     the dense AttrPredId space;
//   * per predicate, a string column — parallel (attribute, vertex)
//     arrays sorted by (lexical form, vertex), the lexical form resolved
//     through the value table so string bytes are stored once.
//
// A range scan binary-searches the bounds implied by a comparison
// conjunction inside one predicate's column, collects the vertices in
// range, and returns them sorted and deduplicated — ready for the
// matcher's intersection kernels. `!=` comparisons are applied while
// collecting (the range itself stays contiguous). EstimateRange returns
// the entry count the scan would visit, which the planner uses as a
// selectivity signal; VertexMatches is the residual per-vertex check the
// matcher uses on satellite vertices and the post-filter ablation uses
// everywhere.

#ifndef AMBER_INDEX_VALUE_INDEX_H_
#define AMBER_INDEX_VALUE_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string_view>
#include <vector>

#include "graph/multigraph.h"
#include "rdf/literal_value.h"
#include "util/amf.h"
#include "util/status.h"
#include "util/storage.h"

namespace amber {

/// Pushdown cutover: a range scan is worth materializing only when its
/// estimated entry count is small relative to the graph — wide ranges cost
/// more to collect/sort/intersect than evaluating the predicate residually
/// on candidates that other constraints produce anyway. Shared by the
/// matcher and EXPLAIN so the reported plan cannot drift from execution.
inline constexpr uint64_t kRangePushMinEntries = 64;
inline constexpr uint64_t kRangePushVertexFraction = 16;

inline bool RangeScanWorthPushing(uint64_t estimate, uint64_t num_vertices) {
  const uint64_t cap = kRangePushMinEntries > num_vertices /
                                                  kRangePushVertexFraction
                           ? kRangePushMinEntries
                           : num_vertices / kRangePushVertexFraction;
  return estimate <= cap;
}

/// \brief Value-ordered attribute index for FILTER range predicates.
class ValueIndex {
 public:
  ValueIndex() = default;

  /// Builds the columns from the graph's attribute CSR and the typed
  /// values surfaced by EncodedDataset::Encode. `num_predicates` is the
  /// attribute-predicate dictionary size (the dense column id space).
  /// Deterministic: identical inputs produce identical arrays.
  static ValueIndex Build(const Multigraph& g,
                          std::span<const AttributeValueInfo> attr_values,
                          size_t num_predicates);

  /// Counters a scan reports into ExecStats.
  struct ScanStats {
    uint64_t scans = 0;
    uint64_t elements = 0;  // column entries visited
  };

  /// Appends to `*out` the sorted, deduplicated vertices carrying a
  /// literal under `pred` that satisfies every comparison of the
  /// conjunction. Unknown predicates yield nothing.
  void RangeScan(AttrPredId pred, std::span<const ValueComparison> cmps,
                 std::vector<VertexId>* out, ScanStats* stats = nullptr) const;

  /// Number of column entries RangeScan would visit — the planner's
  /// selectivity estimate (two binary searches, no materialization).
  uint64_t EstimateRange(AttrPredId pred,
                         std::span<const ValueComparison> cmps) const;

  /// Residual check: true iff some attribute of `attrs` (a vertex's sorted
  /// attribute list) lies under `pred` with a satisfying value.
  bool VertexMatches(std::span<const AttributeId> attrs, AttrPredId pred,
                     std::span<const ValueComparison> cmps) const;

  /// Typed value of attribute `a` (copies string bytes; diagnostics only).
  LiteralValue ValueOf(AttributeId a) const;

  size_t NumAttributes() const { return attr_pred_.size(); }
  size_t NumPredicates() const {
    return num_offsets_.empty() ? 0 : num_offsets_.size() - 1;
  }
  /// Total (value, vertex) entries over all columns.
  uint64_t NumEntries() const {
    return num_vertices_.size() + str_vertices_.size();
  }

  uint64_t ByteSize() const;

  void Save(std::ostream& os) const;
  Status Load(std::istream& is);

  void SaveAmf(amf::Writer* w) const;
  /// Borrows every array from the mapping and validates the full structure
  /// (offset tables, sort orders, id ranges against `num_vertices`) so a
  /// corrupt artifact fails with Status instead of crashing a query.
  Status LoadAmf(const amf::Reader& r, uint64_t num_vertices);

  bool operator==(const ValueIndex& o) const {
    return attr_pred_ == o.attr_pred_ && attr_kind_ == o.attr_kind_ &&
           attr_num_ == o.attr_num_ &&
           attr_text_offsets_ == o.attr_text_offsets_ &&
           attr_text_blob_ == o.attr_text_blob_ &&
           num_offsets_ == o.num_offsets_ && num_values_ == o.num_values_ &&
           num_vertices_ == o.num_vertices_ &&
           str_offsets_ == o.str_offsets_ && str_attrs_ == o.str_attrs_ &&
           str_vertices_ == o.str_vertices_;
  }

 private:
  static constexpr uint8_t kKindString = 0;
  static constexpr uint8_t kKindNumber = 1;

  std::string_view AttrText(AttributeId a) const {
    return {attr_text_blob_.data() + attr_text_offsets_[a],
            static_cast<size_t>(attr_text_offsets_[a + 1] -
                                attr_text_offsets_[a])};
  }
  LiteralValueView ViewOf(AttributeId a) const {
    if (attr_kind_[a] == kKindNumber) {
      return LiteralValueView(true, attr_num_[a], {});
    }
    return LiteralValueView(false, 0.0, AttrText(a));
  }

  /// Structural validation shared by both load paths.
  Status Validate(uint64_t num_vertices, bool check_vertex_range) const;

  /// Shared by RangeScan and EstimateRange: resolves a conjunction into
  /// entry-index ranges of `pred`'s two columns ([*num_begin, *num_end)
  /// numeric, [*str_begin, *str_end) string; empty when that kind cannot
  /// satisfy) and collects the '!=' exclusions (pointers into `cmps`).
  void ResolveConjunction(AttrPredId pred,
                          std::span<const ValueComparison> cmps,
                          uint64_t* num_begin, uint64_t* num_end,
                          uint64_t* str_begin, uint64_t* str_end,
                          std::vector<const LiteralValue*>* exclusions) const;

  // -- Attribute value table (indexed by AttributeId).
  ArrayRef<AttrPredId> attr_pred_;
  ArrayRef<uint8_t> attr_kind_;
  ArrayRef<double> attr_num_;           // 0.0 for strings
  ArrayRef<uint64_t> attr_text_offsets_;  // size NumAttributes()+1
  ArrayRef<char> attr_text_blob_;

  // -- Numeric columns (CSR over AttrPredId).
  ArrayRef<uint64_t> num_offsets_;  // size NumPredicates()+1
  ArrayRef<double> num_values_;
  ArrayRef<VertexId> num_vertices_;

  // -- String columns (CSR over AttrPredId; text via the value table).
  ArrayRef<uint64_t> str_offsets_;  // size NumPredicates()+1
  ArrayRef<AttributeId> str_attrs_;
  ArrayRef<VertexId> str_vertices_;
};

}  // namespace amber

#endif  // AMBER_INDEX_VALUE_INDEX_H_
